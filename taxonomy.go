package mrmcminh

import "github.com/metagenomics/mrmcminh/internal/taxonomy"

// Taxonomic annotation of clusters — the post-binning step: classify each
// cluster's consensus sequence against labelled references by k-mer
// containment, with lowest-common-ancestor backoff for ambiguous hits.

// Lineage is an ordered taxonomy path, coarsest rank first.
type Lineage = taxonomy.Lineage

// TaxonomyOptions tunes the reference classifier.
type TaxonomyOptions = taxonomy.Options

// TaxonomyAssignment is one classification outcome.
type TaxonomyAssignment = taxonomy.Assignment

// TaxonomyClassifier matches sequences against labelled references.
type TaxonomyClassifier = taxonomy.Classifier

// NewTaxonomyClassifier builds an empty classifier; register references
// with AddReference, then Classify reads or ClassifyAll consensus
// sequences.
func NewTaxonomyClassifier(opt TaxonomyOptions) (*TaxonomyClassifier, error) {
	return taxonomy.NewClassifier(opt)
}
