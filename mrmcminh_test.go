package mrmcminh

import (
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// sampleReads builds a small three-species community through the public
// simulate package.
func sampleReads(t *testing.T) ([]Record, []string) {
	t.Helper()
	spec, err := simulate.TableIISpec("S9")
	if err != nil {
		t.Fatal(err)
	}
	reads, truth, err := simulate.BuildWholeMetagenome(spec, 0.008, 0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	return reads, truth
}

func TestClusterPublicAPIGreedy(t *testing.T) {
	reads, truth := sampleReads(t)
	res, err := Cluster(reads, Options{K: 20, NumHashes: 100, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(reads) {
		t.Fatalf("assignments %d for %d reads", len(res.Assignments), len(reads))
	}
	ev, err := Evaluate(res, truth, reads)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.HasAcc || ev.WAcc < 90 {
		t.Fatalf("evaluation %+v", ev)
	}
}

func TestClusterPublicAPIHierarchical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-pipeline run")
	}
	reads, truth := sampleReads(t)
	res, err := Cluster(reads, Options{
		K: 20, NumHashes: 100, Theta: 0.55, Mode: Hierarchical,
		Linkage: SingleLinkage, Canonical: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(res, truth, reads)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.HasAcc || ev.WAcc < 95 {
		t.Fatalf("evaluation %+v", ev)
	}
	if res.Virtual <= 0 {
		t.Fatal("no model time reported")
	}
}

func TestEvaluateWithoutTruth(t *testing.T) {
	reads, _ := sampleReads(t)
	res, err := Cluster(reads, Options{K: 20, NumHashes: 50, Theta: 0.3, Mode: Greedy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(res, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.HasAcc || ev.HasSim {
		t.Fatalf("unexpected metrics %+v", ev)
	}
	if ev.NumClusters < 1 {
		t.Fatal("no clusters")
	}
	if _, err := Evaluate(res, nil, reads[:1]); err == nil {
		t.Fatal("read/assignment mismatch accepted")
	}
}

func TestParseAndReadFasta(t *testing.T) {
	recs, err := ParseFasta(strings.NewReader(">a\nACGT\n>b\nTTTT\n"))
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if _, err := ReadFasta("/does/not/exist.fa"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEstimateJaccard(t *testing.T) {
	a := Record{ID: "a", Seq: []byte("ACGTACGTACGTACGTACGTACGT")}
	j, err := EstimateJaccard(a, a, 8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Fatalf("self Jaccard %v", j)
	}
	b := Record{ID: "b", Seq: []byte("GGGGGGGGCCCCCCCCAAAATTTT")}
	j, err = EstimateJaccard(a, b, 8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j > 0.2 {
		t.Fatalf("unrelated Jaccard %v", j)
	}
	if _, err := EstimateJaccard(a, b, 0, 100, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EstimateJaccard(a, b, 8, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestModelRuntimePublic(t *testing.T) {
	c := DefaultCluster
	if ModelRuntime(100000, c, Hierarchical, 100) <= ModelRuntime(1000, c, Hierarchical, 100) {
		t.Fatal("model not monotone in reads")
	}
}

func TestEvaluateExternalMetrics(t *testing.T) {
	reads, truth := sampleReads(t)
	res, err := Cluster(reads, Options{K: 20, NumHashes: 100, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(res, truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.HasAcc {
		t.Fatal("no accuracy")
	}
	if ev.NMI <= 0 || ev.NMI > 1 {
		t.Fatalf("NMI %v", ev.NMI)
	}
	if ev.ARI <= 0 || ev.ARI > 1 {
		t.Fatalf("ARI %v", ev.ARI)
	}
	// A shuffled truth should drop both scores.
	shuffled := append([]string{}, truth...)
	for i := range shuffled {
		shuffled[i] = truth[(i+7)%len(truth)]
	}
	ev2, err := Evaluate(res, shuffled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.ARI >= ev.ARI {
		t.Fatalf("shuffled ARI %v not below %v", ev2.ARI, ev.ARI)
	}
}
