module github.com/metagenomics/mrmcminh

go 1.22
