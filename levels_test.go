package mrmcminh

import (
	"testing"
)

func TestClusterLevelsNestedCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-pipeline run")
	}
	reads, _ := sampleReads(t)
	res, err := ClusterLevels(reads, Options{
		K: 20, NumHashes: 100, Mode: Hierarchical, Linkage: SingleLinkage,
		Canonical: true, Seed: 1,
	}, []float64{0.3, 0.55, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("got %d levels", len(res.Levels))
	}
	if res.Levels[0].Theta != 0.8 || res.Levels[2].Theta != 0.3 {
		t.Fatalf("levels not finest-first: %v %v", res.Levels[0].Theta, res.Levels[2].Theta)
	}
	prev := 1 << 30
	for _, lv := range res.Levels {
		n := lv.Assignments.NumClusters()
		if n > prev {
			t.Fatalf("coarser level has more clusters (%d > %d)", n, prev)
		}
		prev = n
	}
	if res.Jobs != 2 {
		t.Fatalf("jobs %d, want 2 (one matrix, many cuts)", res.Jobs)
	}
}

func TestClusterLevelsValidation(t *testing.T) {
	if _, err := ClusterLevels(nil, Options{}, nil); err == nil {
		t.Fatal("no thresholds accepted")
	}
	if _, err := ClusterLevels(nil, Options{}, []float64{1.5}); err == nil {
		t.Fatal("bad threshold accepted")
	}
}

func TestRepresentativesPublic(t *testing.T) {
	reads, _ := sampleReads(t)
	opt := Options{K: 20, NumHashes: 60, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1}
	res, err := Cluster(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := Representatives(reads, res, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != res.NumClusters() {
		t.Fatalf("%d reps for %d clusters", len(reps), res.NumClusters())
	}
	for id, idx := range reps {
		if res.Assignments[idx] != id {
			t.Fatalf("representative %d not in cluster %d", idx, id)
		}
	}
	if _, err := Representatives(reads[:1], res, opt); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDiversityPublic(t *testing.T) {
	reads, _ := sampleReads(t)
	res, err := Cluster(reads, Options{K: 20, NumHashes: 60, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := Diversity(res)
	if p.Total != len(reads) {
		t.Fatalf("profile total %d for %d reads", p.Total, len(reads))
	}
	if p.Richness() != res.NumClusters() {
		t.Fatalf("richness %d vs clusters %d", p.Richness(), res.NumClusters())
	}
	if p.Chao1() < float64(p.Richness()) {
		t.Fatal("Chao1 below observed richness")
	}
}

func TestConsensusPublic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-pipeline run")
	}
	reads, _ := sampleReads(t)
	opt := Options{K: 20, NumHashes: 60, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1}
	res, err := Cluster(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Consensus(reads, res, opt, ConsensusOptions{MaxMembers: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != res.NumClusters() {
		t.Fatalf("%d consensi for %d clusters", len(cons), res.NumClusters())
	}
	for id, seq := range cons {
		if len(seq) == 0 {
			t.Fatalf("cluster %d has empty consensus", id)
		}
	}
}

func TestChimeraPublic(t *testing.T) {
	reads, _ := sampleReads(t)
	refs := reads[:5]
	det, err := NewChimeraDetector(refs, ChimeraOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chimeras, _, err := SimulateChimeras(refs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	flaggedCount := 0
	for _, c := range chimeras {
		v, err := det.Check(c.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if v.Chimeric {
			flaggedCount++
		}
	}
	if flaggedCount < 2 {
		t.Fatalf("only %d/3 simulated chimeras flagged", flaggedCount)
	}
}

func TestTaxonomyPublic(t *testing.T) {
	c, err := NewTaxonomyClassifier(TaxonomyOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ref := []byte("ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACGAATTCCGGAAGG")
	if err := c.AddReference("refA", Lineage{"Bacteria", "TestPhylum"}, ref); err != nil {
		t.Fatal(err)
	}
	other := []byte("TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTT")
	if err := c.AddReference("refB", Lineage{"Bacteria", "OtherPhylum"}, other); err != nil {
		t.Fatal(err)
	}
	a, err := c.Classify(ref[5:40])
	if err != nil {
		t.Fatal(err)
	}
	if !a.Classified || a.Reference != "refA" {
		t.Fatalf("assignment %+v", a)
	}
}
