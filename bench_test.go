// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §5 for the experiment index). These
// run the same code paths as cmd/experiments at laptop scales; raise
// -scale there for paper-sized runs. Regenerate everything with
//
//	go test -bench=. -benchmem
package mrmcminh

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/bench"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// table3Config is a scaled-down Table III configuration.
func table3Config() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.006
	cfg.SimOptions.MaxPairsPerCluster = 30
	return cfg
}

// BenchmarkTable3 regenerates Table III (whole-metagenome comparison of
// MrMC-MinH^h, MrMC-MinH^g and MetaCluster) on a representative subset.
func BenchmarkTable3(b *testing.B) {
	if testing.Short() {
		b.Skip("slow full-table benchmark")
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(table3Config(), []string{"S1", "S9", "R1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (16S simulated set at 3%/5% error,
// all eight methods).
func BenchmarkTable4(b *testing.B) {
	if testing.Short() {
		b.Skip("slow full-table benchmark")
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.0006
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table V (16S environmental samples, all
// eight methods) on one representative sample.
func BenchmarkTable5(b *testing.B) {
	if testing.Short() {
		b.Skip("slow full-table benchmark")
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.015
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(cfg, []string{"53R"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 runtime-vs-nodes-and-size
// grid (small sizes executed, large sizes modelled).
func BenchmarkFigure2(b *testing.B) {
	cfg := bench.Figure2Config{
		Nodes:        []int{2, 4, 8, 12},
		Reads:        []int{1000, 100000, 10000000},
		ExecuteLimit: 1000,
		Seed:         1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThetaHashes regenerates experiment E5 (θ and hash-count
// sweep over greedy and hierarchical modes).
func BenchmarkAblationThetaHashes(b *testing.B) {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.002
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationThetaHashes(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimator regenerates experiment E6 (Jaccard estimator
// accuracy vs hash count).
func BenchmarkAblationEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.EstimatorAblation(100, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterGreedy measures the public-API greedy path end to end.
func BenchmarkClusterGreedy(b *testing.B) {
	spec, err := simulate.TableIISpec("S1")
	if err != nil {
		b.Fatal(err)
	}
	reads, _, err := simulate.BuildWholeMetagenome(spec, 0.01, 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(reads, Options{K: 20, NumHashes: 100, Theta: 0.3, Mode: Greedy, Canonical: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterHierarchical measures the public-API hierarchical path.
func BenchmarkClusterHierarchical(b *testing.B) {
	if testing.Short() {
		b.Skip("slow end-to-end benchmark")
	}
	spec, err := simulate.TableIISpec("S1")
	if err != nil {
		b.Fatal(err)
	}
	reads, _, err := simulate.BuildWholeMetagenome(spec, 0.01, 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(reads, Options{K: 20, NumHashes: 100, Theta: 0.55, Mode: Hierarchical, Canonical: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
