package mrmcminh_test

import (
	"fmt"
	"log"
	"strings"

	"github.com/metagenomics/mrmcminh"
)

// Example clusters six short reads with the greedy algorithm.
func Example() {
	reads, err := mrmcminh.ParseFasta(strings.NewReader(`>a1
ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACG
>a2
ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACC
>b1
TTGACCATGGCCAATTGACCGGTTAACGGTCCATGGACCT
>b2
TTGACCATGGCCAATTGACCGGTTAACGGTCCATGGACCA
`))
	if err != nil {
		log.Fatal(err)
	}
	res, err := mrmcminh.Cluster(reads, mrmcminh.Options{
		K: 8, NumHashes: 100, Theta: 0.5, Mode: mrmcminh.Greedy, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.NumClusters(), "clusters")
	// Output: 2 clusters
}

// ExampleEstimateJaccard shows the core minhash primitive directly.
func ExampleEstimateJaccard() {
	a := mrmcminh.Record{ID: "a", Seq: []byte("ACGTACGGTTCAGGCATTACGGATCAGG")}
	j, err := mrmcminh.EstimateJaccard(a, a, 8, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self similarity %.1f\n", j)
	// Output: self similarity 1.0
}

// ExampleCluster_hierarchical runs Algorithm 2 and inspects the result.
func ExampleCluster_hierarchical() {
	reads := []mrmcminh.Record{
		{ID: "x1", Seq: []byte("ACGTACGGTTCAGGCATTACGGATCAGGTTAC")},
		{ID: "x2", Seq: []byte("ACGTACGGTTCAGGCATTACGGATCAGGTTAG")},
		{ID: "y1", Seq: []byte("GGGGCCCCAAAATTTTGGGGCCCCAAAATTTT")},
	}
	res, err := mrmcminh.Cluster(reads, mrmcminh.Options{
		K: 8, NumHashes: 100, Theta: 0.5,
		Mode: mrmcminh.Hierarchical, Linkage: mrmcminh.AverageLinkage, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("x1 with x2:", res.Assignments[0] == res.Assignments[1])
	fmt.Println("x1 with y1:", res.Assignments[0] == res.Assignments[2])
	// Output:
	// x1 with x2: true
	// x1 with y1: false
}
