-- The paper's Algorithm 3 (MrMC-MinH) as executable Pig text — identical
-- to the canonical script embedded in the library (core.Algorithm3Script).
-- Run with:
--
--   go run ./cmd/pigrun -script scripts/algorithm3.pig \
--     -stage reads.fa=/in/reads.fa \
--     -p INPUT=/in/reads.fa -p OUTPUT1=/out/h -p OUTPUT2=/out/g \
--     -p KMER=15 -p NUMHASH=50 -p DIV=1073741827 -p LINK=average -p CUTOFF=0.3
A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV)) AS (minwise:long, seqid3:chararray);
F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);
I = GROUP F ALL;
J = FOREACH F GENERATE CalculatePairwiseSimilarity(minwise, seqid3, I.F) AS similaritymatrix:double;
K = FOREACH J GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, $LINK, $NUMHASH, $CUTOFF)) AS (seqid4:chararray, clusterlabel:int);
L = FOREACH I GENERATE FLATTEN(GreedyClustering(F, $NUMHASH, $CUTOFF)) AS (seqid5:chararray, clusterlabel:int);
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
