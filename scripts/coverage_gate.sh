#!/usr/bin/env bash
# Coverage gate for the fault-tolerance core: the MapReduce engine (task
# scheduling, recovery, re-execution, output commit), the fault injector,
# the stage-checkpoint journal, the clustering kernels (greedy/LSH/
# connected components — the stages the LSH pipeline re-executes under
# faults), the sharded signature store, and the serving layer (WAL,
# crash-safe drain/recovery, backpressured ingest) must stay above the
# floor, so regressions in the chaos and
# resume paths show up as uncovered lines before they show up as lost
# jobs. Wired as a blocking CI step; run locally with:
#
#   ./scripts/coverage_gate.sh
set -euo pipefail
cd "$(dirname "$0")/.."

FLOOR="${COVERAGE_FLOOR:-75}"
PKGS="./internal/mapreduce/... ./internal/faults/... ./internal/checkpoint/... ./internal/cluster/... ./internal/sigstore/... ./internal/ingest/... ./internal/serve/..."

# shellcheck disable=SC2086
go test -count=1 -coverprofile=coverage.out -covermode=atomic $PKGS

total=$(go tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
echo "total coverage: ${total}% (floor ${FLOOR}%)"

awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "FAIL: coverage ${total}% is below the ${FLOOR}% floor" >&2
    echo "run 'go tool cover -html=coverage.out' to see uncovered lines" >&2
    exit 1
}
echo "coverage gate passed"
