#!/usr/bin/env bash
# Bench smoke check: run every benchmark for exactly one iteration so CI
# notices benchmarks that fail to compile, panic, or error — without
# gating anything on timing. Wired as a non-blocking CI step; run locally
# with:
#
#   ./scripts/bench_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# -run '^$' skips all tests so only benchmarks execute.
exec go test -run '^$' -bench . -benchtime 1x ./...
