-- Classic wordcount over the simulated Hadoop stack. Run with:
--
--   go run ./cmd/pigrun -script scripts/wordcount.pig \
--     -stage input.txt=/in/text -p INPUT=/in/text -p OUTPUT=/out/counts \
--     -dump /out/counts
--
-- Requires the builtin functions (pigrun registers them alongside the
-- paper's UDFs).
Lines = LOAD '$INPUT';
Words = FOREACH Lines GENERATE FLATTEN(TOKENIZE(line)) AS word;
G     = GROUP Words BY word;
Out   = FOREACH G GENERATE group, COUNT(Words);
Top   = ORDER Out BY f1 DESC;
STORE Top INTO '$OUTPUT';
