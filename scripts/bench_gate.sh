#!/usr/bin/env bash
# Perf-regression gate: reruns the full benchmark recorder
# (scripts/bench_json.sh) into a scratch directory and compares each
# fresh file against its committed baseline with cmd/benchgate. The
# build fails on a >30% ns/op regression or on any allocs/op increase
# in a kernel whose baseline is zero-alloc. This runs as a BLOCKING CI
# step — unlike the old continue-on-error bench smoke, a perf
# regression now stops the merge.
#
#   ./scripts/bench_gate.sh
#
# Knobs:
#   BENCH_GATE_MAX_REGRESS  ns/op slack for the micro-benchmarks
#                           (default 0.30 = +30%)
#   BENCH_GATE_MAX_REGRESS_MACRO
#                           slack for the 1-shot LSH macro runs, which
#                           are far noisier (default 1.00 = +100%)
#   BENCH_GATE_MAX_REGRESS_SERVING
#                           slack for the serving benchmarks, which go
#                           through real HTTP + WAL fsyncs and inherit
#                           the runner's disk/scheduler jitter
#                           (default 1.00 = +100%)
#   BENCHTIME               per-benchmark budget (default 0.5s)
#
# After an intentional perf change, refresh the baselines in the same
# commit: ./scripts/bench_json.sh && git add BENCH_*.json
set -euo pipefail
cd "$(dirname "$0")/.."

macro_regress="${BENCH_GATE_MAX_REGRESS_MACRO:-1.00}"
serving_regress="${BENCH_GATE_MAX_REGRESS_SERVING:-1.00}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/benchgate" ./cmd/benchgate

./scripts/bench_json.sh \
  "$tmp/kernels.json" "$tmp/shuffle.json" "$tmp/lsh.json" "$tmp/sigstore.json" \
  "$tmp/serving.json"

status=0
gate() { # gate <baseline> <current> [extra benchgate args...]
  local baseline=$1 current=$2
  shift 2
  if "$tmp/benchgate" -baseline "$baseline" -current "$current" "$@"; then
    :
  else
    status=1
  fi
}

gate BENCH_kernels.json "$tmp/kernels.json"
gate BENCH_shuffle.json "$tmp/shuffle.json"
gate BENCH_sigstore.json "$tmp/sigstore.json"
# The LSH scaling file holds single-shot whole-pipeline timings; gate
# them loosely — the sub-quadratic *shape* is asserted by the scale
# tests, this only catches order-of-magnitude blowups.
gate BENCH_lsh.json "$tmp/lsh.json" -max-regress "$macro_regress"
# The serving path crosses the HTTP stack and fsyncs the WAL on every
# commit, so per-op time is dominated by I/O jitter; gate loosely to
# catch real throughput collapses, not disk noise.
gate BENCH_serving.json "$tmp/serving.json" -max-regress "$serving_regress"

# Keep the fresh results around for the CI artifact upload.
for f in kernels shuffle lsh sigstore serving; do
  cp "$tmp/$f.json" "BENCH_${f}.current.json"
done

if [ "$status" -ne 0 ]; then
  echo "bench_gate: FAILED — see FAIL lines above" >&2
  echo "bench_gate: if the regression is intentional, refresh baselines with ./scripts/bench_json.sh" >&2
  exit 1
fi
echo "bench_gate: all baselines hold"
