#!/usr/bin/env bash
# Benchmark recorder: runs the kernel benchmarks of internal/minhash and
# internal/cluster (similarity / sketch / matrix build) plus the shuffle
# benchmarks of internal/mapreduce (in-memory vs external spill-and-merge,
# reducer sort before/after, k-way merge) with allocation stats, and
# writes them as BENCH_kernels.json and BENCH_shuffle.json, plus the
# end-to-end scaling comparison of the exact all-pairs pipeline vs the
# LSH+connected-components pipeline (internal/core) as BENCH_lsh.json, so
# the perf trajectory of the hot paths — and the sub-quadratic claim —
# is recorded per commit. CI uploads all three files as workflow
# artifacts; run locally with:
#
#   ./scripts/bench_json.sh [kernels.json [shuffle.json [lsh.json]]]
#
# BENCHTIME overrides the per-benchmark budget (default 0.5s). The LSH
# scaling runs are whole-pipeline macro-benchmarks and always run once
# each (-benchtime 1x): quadrupling N should ~16x the exact path but
# stay well under 8x for the LSH path.
set -euo pipefail
cd "$(dirname "$0")/.."

kernels_out="${1:-BENCH_kernels.json}"
shuffle_out="${2:-BENCH_shuffle.json}"
lsh_out="${3:-BENCH_lsh.json}"
benchtime="${BENCHTIME:-0.5s}"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# to_json converts `go test -bench` output on stdin into the benchmark
# JSON schema shared by both output files.
to_json() {
  awk -v commit="$commit" -v stamp="$stamp" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", commit, stamp
  first = 1
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix (absent at 1)
  sub(/^Benchmark/, "", name)
  iters = $2
  ns = ""; bytes = "null"; allocs = "null"
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  if (!first) printf ",\n"
  first = 0
  printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, iters, ns, bytes, allocs
}
END { print "\n  ]\n}" }
'
}

go test -run '^$' -bench 'Similarity|Sketch|BuildMatrix|Greedy1000|Hierarchical500' \
  -benchmem -benchtime "$benchtime" ./internal/minhash/ ./internal/cluster/ |
  to_json > "$kernels_out"
echo "wrote $kernels_out"

go test -run '^$' -bench 'Shuffle|PartitionSort|MergeRuns' \
  -benchmem -benchtime "$benchtime" ./internal/mapreduce/ |
  to_json > "$shuffle_out"
echo "wrote $shuffle_out"

go test -run '^$' -bench 'ClusterExactScale|ClusterLSHCCScale' \
  -benchtime 1x -timeout 30m ./internal/core/ |
  to_json > "$lsh_out"
echo "wrote $lsh_out"
