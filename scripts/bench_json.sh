#!/usr/bin/env bash
# Kernel benchmark recorder: runs the similarity / sketch / matrix-build
# benchmarks of internal/minhash and internal/cluster with allocation
# stats and writes them as BENCH_kernels.json, so the perf trajectory of
# the paper's dominant kernels is recorded per commit. CI uploads the
# file as a workflow artifact; run locally with:
#
#   ./scripts/bench_json.sh [output.json]
#
# BENCHTIME overrides the per-benchmark budget (default 0.5s).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_kernels.json}"
benchtime="${BENCHTIME:-0.5s}"

raw=$(go test -run '^$' -bench 'Similarity|Sketch|BuildMatrix|Greedy1000|Hierarchical500' \
  -benchmem -benchtime "$benchtime" ./internal/minhash/ ./internal/cluster/)

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v commit="$commit" -v stamp="$stamp" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", commit, stamp
  first = 1
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix (absent at 1)
  sub(/^Benchmark/, "", name)
  iters = $2
  ns = ""; bytes = "null"; allocs = "null"
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  if (!first) printf ",\n"
  first = 0
  printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, iters, ns, bytes, allocs
}
END { print "\n  ]\n}" }
' <<<"$raw" > "$out"

echo "wrote $out"
