#!/usr/bin/env bash
# Benchmark recorder: runs the kernel benchmarks of internal/minhash and
# internal/cluster (similarity / sketch / matrix build) plus the shuffle
# benchmarks of internal/mapreduce (in-memory vs external spill-and-merge,
# reducer sort before/after, k-way merge) with allocation stats, and
# writes them as BENCH_kernels.json and BENCH_shuffle.json; the
# end-to-end scaling comparison of the exact all-pairs pipeline vs the
# LSH+connected-components pipeline (internal/core) as BENCH_lsh.json;
# and the sharded signature-store benchmarks (put throughput, borrowed
# similarity/band-hash latency, snapshot cost, full vs b-bit packed) as
# BENCH_sigstore.json; and the serving benchmarks of internal/serve —
# sustained concurrent HTTP submit load through the full WAL-acked
# commit path, plus a multi-worker connection-multiplexed query mix
# (point lookups + cluster listings + diversity) against the lock-free
# epoch-published read view — as BENCH_serving.json.
# Custom metrics reported via b.ReportMetric — e.g. the store's resident
# "sig-bytes/read" or the server's "p99-ns/req" tail latency — land in
# each benchmark's "extra" object. scripts/bench_gate.sh replays this
# script and fails CI when the hot paths regress vs the committed
# baselines; run locally with:
#
#   ./scripts/bench_json.sh [kernels.json [shuffle.json [lsh.json [sigstore.json [serving.json]]]]]
#
# BENCHTIME overrides the per-benchmark budget (default 0.5s). The LSH
# scaling runs are whole-pipeline macro-benchmarks and always run once
# each (-benchtime 1x): quadrupling N should ~16x the exact path but
# stay well under 8x for the LSH path. BENCH_ONLY restricts which suites
# run (comma list of kernels,shuffle,lsh,sigstore,serving; default all)
# — suites not listed keep their positional slot but are skipped.
set -euo pipefail
cd "$(dirname "$0")/.."

only="${BENCH_ONLY:-kernels,shuffle,lsh,sigstore,serving}"
wants() { case ",$only," in *",$1,"*) return 0 ;; *) return 1 ;; esac }

kernels_out="${1:-BENCH_kernels.json}"
shuffle_out="${2:-BENCH_shuffle.json}"
lsh_out="${3:-BENCH_lsh.json}"
sigstore_out="${4:-BENCH_sigstore.json}"
serving_out="${5:-BENCH_serving.json}"
benchtime="${BENCHTIME:-0.5s}"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# to_json converts `go test -bench` output on stdin into the benchmark
# JSON schema shared by all output files. The standard columns become
# ns_per_op / bytes_per_op / allocs_per_op (null when the run did not
# report them); any other `value unit` pair — custom b.ReportMetric
# units like "sig-bytes/read" — is collected into an "extra" object.
to_json() {
  awk -v commit="$commit" -v stamp="$stamp" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", commit, stamp
  first = 1
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix (absent at 1)
  sub(/^Benchmark/, "", name)
  iters = $2
  ns = ""; bytes = "null"; allocs = "null"; extra = ""
  for (i = 3; i < NF; i++) {
    unit = $(i+1)
    if (unit == "ns/op")          { ns = $i; i++ }
    else if (unit == "B/op")      { bytes = $i; i++ }
    else if (unit == "allocs/op") { allocs = $i; i++ }
    else if (unit ~ /\//) {       # custom ReportMetric unit, e.g. sig-bytes/read
      if (extra != "") extra = extra ", "
      extra = extra sprintf("\"%s\": %s", unit, $i)
      i++
    }
  }
  if (ns == "") next
  if (!first) printf ",\n"
  first = 0
  printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
    name, iters, ns, bytes, allocs
  if (extra != "") printf ", \"extra\": {%s}", extra
  printf "}"
}
END { print "\n  ]\n}" }
'
}

if wants kernels; then
  go test -run '^$' -bench 'Similarity|Sketch|BuildMatrix|Greedy1000|Hierarchical500' \
    -benchmem -benchtime "$benchtime" ./internal/minhash/ ./internal/cluster/ |
    to_json > "$kernels_out"
  echo "wrote $kernels_out"
fi

if wants shuffle; then
  go test -run '^$' -bench 'Shuffle|PartitionSort|MergeRuns' \
    -benchmem -benchtime "$benchtime" ./internal/mapreduce/ |
    to_json > "$shuffle_out"
  echo "wrote $shuffle_out"
fi

if wants lsh; then
  go test -run '^$' -bench 'ClusterExactScale|ClusterLSHCCScale' \
    -benchtime 1x -timeout 30m ./internal/core/ |
    to_json > "$lsh_out"
  echo "wrote $lsh_out"
fi

if wants sigstore; then
  go test -run '^$' -bench 'SigStore' \
    -benchmem -benchtime "$benchtime" ./internal/sigstore/ |
    to_json > "$sigstore_out"
  echo "wrote $sigstore_out"
fi

if wants serving; then
  go test -run '^$' -bench 'Serving' \
    -benchmem -benchtime "$benchtime" ./internal/serve/ |
    to_json > "$serving_out"
  echo "wrote $serving_out"
fi
