package mrmcminh

import "github.com/metagenomics/mrmcminh/internal/chimera"

// PCR-chimera tooling — simulation of spliced artefact reads and
// UCHIME-style detection against reference (or cluster-representative)
// sequences. Chimera removal before clustering prevents spurious OTUs.

// ChimeraOptions tunes chimera detection.
type ChimeraOptions = chimera.DetectorOptions

// ChimeraVerdict is one detection outcome.
type ChimeraVerdict = chimera.Verdict

// ChimeraDetector checks reads against indexed references.
type ChimeraDetector = chimera.Detector

// NewChimeraDetector indexes references (e.g. cluster consensus
// sequences) for chimera checks.
func NewChimeraDetector(refs []Record, opt ChimeraOptions) (*ChimeraDetector, error) {
	return chimera.NewDetector(refs, opt)
}

// SimulateChimeras splices artificial chimeric reads from parent
// sequences — useful for validating detection settings.
func SimulateChimeras(parents []Record, count int, seed int64) ([]Record, [][2]int, error) {
	return chimera.Simulate(parents, count, seed)
}
