// Full post-clustering pipeline: cluster shotgun reads, build one
// consensus sequence per cluster, then assign taxonomy to each cluster by
// classifying its consensus against a labelled reference collection —
// binning, denoising and annotation in one pass.
//
//	go run ./examples/annotate
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/metagenomics/mrmcminh"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Reference collection: three "known" genomes with lineages.
	refs := []struct {
		name    string
		lineage mrmcminh.Lineage
		genome  []byte
	}{
		{"Gluconobacter oxydans", mrmcminh.Lineage{"Bacteria", "Proteobacteria", "Acetobacteraceae", "Gluconobacter"}, randomGenome(rng, 8000)},
		{"Nitrobacter hamburgensis", mrmcminh.Lineage{"Bacteria", "Proteobacteria", "Bradyrhizobiaceae", "Nitrobacter"}, randomGenome(rng, 8000)},
		{"Bacillus anthracis", mrmcminh.Lineage{"Bacteria", "Firmicutes", "Bacillaceae", "Bacillus"}, randomGenome(rng, 8000)},
	}
	classifier, err := mrmcminh.NewTaxonomyClassifier(mrmcminh.TaxonomyOptions{K: 12})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range refs {
		if err := classifier.AddReference(r.name, r.lineage, r.genome); err != nil {
			log.Fatal(err)
		}
	}

	// Community: reads from two of the references plus one novel genome
	// absent from the reference collection.
	novel := randomGenome(rng, 8000)
	sources := [][]byte{refs[0].genome, refs[2].genome, novel}
	sourceNames := []string{refs[0].name, refs[2].name, "novel organism"}
	var reads []mrmcminh.Record
	for i := 0; i < 900; i++ {
		src := rng.Intn(3)
		start := rng.Intn(len(sources[src]) - 400)
		seq := append([]byte{}, sources[src][start:start+400]...)
		for p := range seq {
			if rng.Float64() < 0.01 {
				seq[p] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, mrmcminh.Record{
			ID:          fmt.Sprintf("read_%04d", i),
			Description: sourceNames[src],
			Seq:         seq,
		})
	}

	// 1. Cluster.
	opt := mrmcminh.Options{
		K: 20, NumHashes: 100, Theta: 0.4,
		Mode: mrmcminh.Hierarchical, Linkage: mrmcminh.SingleLinkage,
		Canonical: true, Seed: 1,
	}
	res, err := mrmcminh.Cluster(reads, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d reads into %d bins\n\n", len(reads), res.NumClusters())

	// 2. Consensus per cluster.
	cons, err := mrmcminh.Consensus(reads, res, opt, mrmcminh.ConsensusOptions{MaxMembers: 20})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Annotate each cluster's consensus.
	assignments, err := classifier.ClassifyAll(cons)
	if err != nil {
		log.Fatal(err)
	}

	sizes := res.Assignments.Sizes()
	ids := make([]int, 0, len(assignments))
	for id := range assignments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return sizes[ids[a]] > sizes[ids[b]] })
	fmt.Printf("%-8s %6s %-30s %11s\n", "cluster", "reads", "assignment", "containment")
	shown := 0
	for _, id := range ids {
		if sizes[id] < 3 {
			continue // dust
		}
		a := assignments[id]
		label := "unclassified (novel?)"
		if a.Classified {
			label = a.Lineage.String()
			if a.Ambiguous {
				label += " (LCA)"
			}
		}
		fmt.Printf("%-8d %6d %-30.60s %10.2f\n", id, sizes[id], label, a.Containment)
		shown++
		if shown >= 10 {
			break
		}
	}
	fmt.Println("\nclusters from reference organisms annotate to their lineage;")
	fmt.Println("the novel organism's clusters stay unclassified — candidate new taxa.")
}

// randomGenome draws a uniform DNA sequence.
func randomGenome(rng *rand.Rand, n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}
