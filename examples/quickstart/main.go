// Quickstart: cluster a handful of reads with both MrMC-MinH algorithms
// and print the resulting groups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/metagenomics/mrmcminh"
)

// Two tight read families (a/b differ by a whole variable block) plus one
// unrelated read — enough to see clustering do something.
const demoFasta = `
>frag1a source=geneA
ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACGAATTCCGGAAGGTTACGATCAGGACTTCAGGCA
>frag1b source=geneA one substitution
ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACGAATTCCGGAAGGTTACGATCAGGACTTCAGGCT
>frag1c source=geneA two substitutions
ACGTACGGTTCAGGCATTACGGATCTGGTTACGGATTACGAATTCCGGAAGGTTACGATCAGGACTTCAGGCT
>frag2a source=geneB
TTGACCATGGCCAATTGACCGGTTAACGGTCCATGGACCTTGGAACCGGTTAAGGCCTTAACCGGATTCCAA
>frag2b source=geneB one substitution
TTGACCATGGCCAATTGACCGGTTAACGGTCCATGGACCTTGGAACCGGTTAAGGCCTTAACCGGATTCCAT
>lonely source=neither
GGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCC
`

func main() {
	reads, err := mrmcminh.ParseFasta(strings.NewReader(strings.TrimSpace(demoFasta)))
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []mrmcminh.Mode{mrmcminh.Greedy, mrmcminh.Hierarchical} {
		res, err := mrmcminh.Cluster(reads, mrmcminh.Options{
			K:         8,    // k-mer size
			NumHashes: 100,  // signature length
			Theta:     0.35, // Jaccard threshold
			Mode:      mode,
			Linkage:   mrmcminh.AverageLinkage,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: %d reads -> %d clusters (modelled 8-node time %v)\n",
			mode, len(reads), res.NumClusters(), res.Virtual.Round(1e9))
		for id, members := range res.ClustersByID() {
			fmt.Printf("  cluster %d: %v\n", id, members)
		}
	}

	// The core primitive is also exposed directly: estimate the Jaccard
	// similarity of two reads from their minhash sketches.
	j, err := mrmcminh.EstimateJaccard(reads[0], reads[1], 8, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated k-mer Jaccard(frag1a, frag1b) = %.2f\n", j)
}
