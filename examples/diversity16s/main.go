// 16S diversity profiling: simulate a seawater-style amplicon sample with
// a rare-biosphere abundance tail, then cluster at several similarity
// thresholds to produce OTU (operational taxonomic unit) counts per level
// — the species-richness workflow the paper's environmental benchmark
// (Table V) comes from.
//
//	go run ./examples/diversity16s
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/metagenomics/mrmcminh"
)

func main() {
	reads := simulateAmplicons(800, 60, 120, 77)
	fmt.Printf("simulated %d amplicon reads (60 bp, skewed across 120 taxa)\n\n", len(reads))
	fmt.Printf("%-28s %8s %10s\n", "level (approx identity)", "theta_J", "OTUs")

	// Identity levels conventionally mapped to taxonomy: 97% ~ species,
	// 95% ~ genus, 90% ~ family. Convert to Jaccard space for k=15
	// sketches: J = t^k / (2 - t^k).
	const k = 15
	for _, level := range []struct {
		name     string
		identity float64
	}{
		{"species-level (97%)", 0.97},
		{"genus-level (95%)", 0.95},
		{"family-level (90%)", 0.90},
	} {
		tk := math.Pow(level.identity, k)
		theta := tk / (2 - tk)
		res, err := mrmcminh.Cluster(reads, mrmcminh.Options{
			K:         k,
			NumHashes: 50,
			Theta:     theta,
			Mode:      mrmcminh.Hierarchical,
			Linkage:   mrmcminh.AverageLinkage,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.3f %10d\n", level.name, theta, res.NumClusters())
	}

	fmt.Println("\nOTU counts shrink as the threshold loosens — the dendrogram")
	fmt.Println("cut rises toward coarser taxonomic levels (paper §III-B).")
}

// simulateAmplicons builds primer-anchored 16S-style reads: a shared
// conserved prefix followed by a taxon-specific variable region, with
// Zipf-skewed taxon abundances and up to 2% per-read error.
func simulateAmplicons(count, readLen, taxa int, seed int64) []mrmcminh.Record {
	rng := rand.New(rand.NewSource(seed))
	conserved := randomSeq(rng, 20)
	variable := make([][]byte, taxa)
	for t := range variable {
		variable[t] = randomSeq(rng, readLen)
	}
	weights := make([]float64, taxa)
	total := 0.0
	for t := range weights {
		weights[t] = 1 / math.Pow(float64(t+1), 0.8)
		total += weights[t]
	}
	var reads []mrmcminh.Record
	for i := 0; i < count; i++ {
		r := rng.Float64() * total
		taxon := taxa - 1
		for t, w := range weights {
			if r < w {
				taxon = t
				break
			}
			r -= w
		}
		gene := append(append([]byte{}, conserved...), variable[taxon]...)
		seq := append([]byte{}, gene[:readLen]...)
		errRate := rng.Float64() * 0.02
		for p := range seq {
			if rng.Float64() < errRate {
				seq[p] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, mrmcminh.Record{ID: fmt.Sprintf("amp_%04d", i), Seq: seq})
	}
	return reads
}

// randomSeq draws a uniform DNA string.
func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}
