// Cluster representatives and diversity: cluster a skewed amplicon sample,
// extract one medoid read per OTU (the pre-processing reduction the paper
// motivates — downstream tools analyze representatives, not all reads),
// and print the standard diversity statistics with a rarefaction curve.
//
//	go run ./examples/representatives
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/metagenomics/mrmcminh"
)

func main() {
	reads := simulateSample(600, 70, 40, 99)
	fmt.Printf("simulated %d amplicon reads across 40 taxa\n\n", len(reads))

	opt := mrmcminh.Options{
		K:         15,
		NumHashes: 50,
		Theta:     0.30,
		Mode:      mrmcminh.Hierarchical,
		Linkage:   mrmcminh.AverageLinkage,
		Seed:      1,
	}
	res, err := mrmcminh.Cluster(reads, opt)
	if err != nil {
		log.Fatal(err)
	}

	// One representative per cluster: the medoid under minhash similarity.
	reps, err := mrmcminh.Representatives(reads, res, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced %d reads to %d representatives (%.1fx reduction)\n\n",
		len(reads), len(reps), float64(len(reads))/float64(len(reps)))

	// Diversity statistics over the OTU profile.
	profile := mrmcminh.Diversity(res)
	fmt.Println(profile.Report())

	// Rarefaction: how fast does OTU discovery saturate with depth?
	depths := []int{50, 100, 200, 400, 600}
	points, err := profile.Rarefaction(depths, 25, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rarefaction (expected OTUs at subsampled depth):")
	for _, p := range points {
		bar := ""
		for i := 0; i < int(p.OTUs/2); i++ {
			bar += "#"
		}
		fmt.Printf("  %5d reads %6.1f OTUs %s\n", p.Depth, p.OTUs, bar)
	}
}

// simulateSample builds primer-anchored amplicons with Zipf-skewed taxa.
func simulateSample(count, readLen, taxa int, seed int64) []mrmcminh.Record {
	rng := rand.New(rand.NewSource(seed))
	primer := randomDNA(rng, 15)
	variable := make([][]byte, taxa)
	for t := range variable {
		variable[t] = randomDNA(rng, readLen)
	}
	weights := make([]float64, taxa)
	total := 0.0
	for t := range weights {
		weights[t] = 1 / math.Pow(float64(t+1), 0.9)
		total += weights[t]
	}
	reads := make([]mrmcminh.Record, 0, count)
	for i := 0; i < count; i++ {
		r := rng.Float64() * total
		taxon := taxa - 1
		for t, w := range weights {
			if r < w {
				taxon = t
				break
			}
			r -= w
		}
		gene := append(append([]byte{}, primer...), variable[taxon]...)
		seq := append([]byte{}, gene[:readLen]...)
		errRate := rng.Float64() * 0.02
		for p := range seq {
			if rng.Float64() < errRate {
				seq[p] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, mrmcminh.Record{ID: fmt.Sprintf("r%04d", i), Seq: seq})
	}
	return reads
}

// randomDNA draws a uniform DNA string.
func randomDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}
