// Scaling study: reproduce the shape of the paper's Figure 2 — runtime of
// the hierarchical pipeline as the simulated cluster grows from 2 to 12
// nodes, for inputs from one thousand to ten million reads.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"github.com/metagenomics/mrmcminh"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

func main() {
	nodes := []int{2, 4, 6, 8, 10, 12}
	sizes := []int{1000, 10000, 100000, 1000000, 10000000}

	fmt.Println("modelled runtime (minutes) of MrMC-MinH^h on the simulated cluster")
	fmt.Printf("%-12s", "reads\\nodes")
	for _, n := range nodes {
		fmt.Printf("%8d", n)
	}
	fmt.Println()
	for _, reads := range sizes {
		fmt.Printf("%-12d", reads)
		for _, n := range nodes {
			c := mrmcminh.ClusterConfig{Nodes: n, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
			rt := mrmcminh.ModelRuntime(reads, c, mrmcminh.Hierarchical, 100)
			fmt.Printf("%8.1f", rt.Minutes())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Two regimes, as in the paper's Figure 2:")
	fmt.Println("  - 1,000 reads: flat across node counts — job startup dominates,")
	fmt.Println("    extra machines have nothing to do;")
	fmt.Println("  - 10,000,000 reads: runtime keeps dropping through 12 nodes —")
	fmt.Println("    the row-partitioned similarity phase parallelizes cleanly.")
}
