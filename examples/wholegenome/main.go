// Whole-metagenome binning: simulate a three-species community with an
// 1:1:8 abundance skew (the shape of the paper's S9/S10 benchmarks),
// cluster the shotgun reads hierarchically, and evaluate against the known
// species labels.
//
//	go run ./examples/wholegenome
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/metagenomics/mrmcminh"
)

func main() {
	reads, truth := simulateCommunity(600, 500, 42)
	fmt.Printf("simulated %d shotgun reads from 3 species (1:1:8 abundance)\n\n", len(reads))

	res, err := mrmcminh.Cluster(reads, mrmcminh.Options{
		K:         20,
		NumHashes: 100,
		Theta:     0.55,
		Mode:      mrmcminh.Hierarchical,
		Linkage:   mrmcminh.SingleLinkage, // chains overlapping reads along each genome
		Canonical: true,                   // shotgun reads come from both strands
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	ev, err := mrmcminh.Evaluate(res, truth, reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d   W.Acc: %.2f%%", ev.NumClusters, ev.WAcc)
	if ev.HasSim {
		fmt.Printf("   W.Sim: %.2f%%", ev.WSim)
	}
	fmt.Printf("\nmodelled 8-node Hadoop time: %v   measured local time: %v\n\n",
		res.Virtual.Round(1e9), res.Real.Round(1e6))

	// Per-cluster composition report.
	composition := map[int]map[string]int{}
	for i, label := range res.Assignments {
		if composition[label] == nil {
			composition[label] = map[string]int{}
		}
		composition[label][truth[i]]++
	}
	ids := make([]int, 0, len(composition))
	for id := range composition {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		return clusterSize(composition[ids[a]]) > clusterSize(composition[ids[b]])
	})
	fmt.Println("largest clusters by species composition:")
	for _, id := range ids[:min(5, len(ids))] {
		fmt.Printf("  cluster %-3d %v\n", id, composition[id])
	}
}

// simulateCommunity builds three divergent genomes and draws reads with an
// 1:1:8 abundance ratio, error rate 0.5%.
func simulateCommunity(count, readLen int, seed int64) ([]mrmcminh.Record, []string) {
	rng := rand.New(rand.NewSource(seed))
	genomeLen := count * readLen / 36 // ~12x pooled coverage over 3 genomes
	species := []string{"Gluconobacter-like", "Granulobacter-like", "Nitrobacter-like"}
	weights := []float64{1, 1, 8}
	genomes := make([][]byte, len(species))
	for gi := range genomes {
		g := make([]byte, genomeLen)
		for i := range g {
			g[i] = "ACGT"[rng.Intn(4)]
		}
		genomes[gi] = g
	}
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	var reads []mrmcminh.Record
	var truth []string
	for i := 0; i < count; i++ {
		r := rng.Float64() * totalW
		gi := len(weights) - 1
		for j, w := range weights {
			if r < w {
				gi = j
				break
			}
			r -= w
		}
		start := rng.Intn(genomeLen - readLen)
		seq := append([]byte{}, genomes[gi][start:start+readLen]...)
		for p := range seq {
			if rng.Float64() < 0.005 {
				seq[p] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, mrmcminh.Record{ID: fmt.Sprintf("read_%04d", i), Seq: seq})
		truth = append(truth, species[gi])
	}
	return reads, truth
}

// clusterSize sums a composition map.
func clusterSize(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
