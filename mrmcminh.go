// Package mrmcminh is a Go reproduction of "A Map-Reduce Framework for
// Clustering Metagenomes" (Rasheed & Rangwala, 2013): MinHash-based
// clustering of metagenome sequence reads on a simulated Hadoop/Pig stack.
//
// The package exposes the paper's two algorithms through one entry point:
//
//	reads, _ := mrmcminh.ReadFasta("sample.fa")
//	res, _ := mrmcminh.Cluster(reads, mrmcminh.Options{
//		K:         5,
//		NumHashes: 100,
//		Theta:     0.9,
//		Mode:      mrmcminh.Hierarchical,
//	})
//	fmt.Println(res.NumClusters())
//
// Greedy mode is the paper's Algorithm 1 (incremental,
// representative-based); Hierarchical mode is Algorithm 2 (all-pairs
// minhash similarity matrix, computed with row-partitioned map tasks, then
// agglomerative linkage cut at θ). Runtime figures reported in Result
// come from the simulated cluster's virtual clock, mirroring the paper's
// Amazon EMR deployments.
package mrmcminh

import (
	"fmt"
	"io"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Mode selects the clustering algorithm.
type Mode = core.Mode

// Clustering algorithm modes.
const (
	// Greedy is MrMC-MinH^g (Algorithm 1).
	Greedy = core.GreedyMode
	// Hierarchical is MrMC-MinH^h (Algorithm 2).
	Hierarchical = core.HierarchicalMode
)

// CandidateGen selects how candidate read pairs are discovered: the exact
// all-pairs path or the sub-quadratic LSH+connected-components path.
type CandidateGen = core.CandidateGen

// Candidate generators for Options.Candidate.
const (
	// CandidateExact is the paper's O(N²) all-pairs path (the default and
	// the equivalence oracle for CandidateLSH).
	CandidateExact = core.CandidateExact
	// CandidateLSH generates candidate pairs with banded MinHash buckets,
	// verifies them at θ, finds connected components in logarithmic
	// MapReduce rounds, and runs the exact algorithm per component.
	CandidateLSH = core.CandidateLSH
)

// ParseCandidateGen maps the CLIs' -candidate flag values ("", "exact",
// "lsh") onto CandidateGen values.
func ParseCandidateGen(s string) (CandidateGen, error) {
	return core.ParseCandidateGen(s)
}

// Linkage selects the hierarchical merge rule.
type Linkage = cluster.Linkage

// Hierarchical linkage policies.
const (
	SingleLinkage   = cluster.Single
	AverageLinkage  = cluster.Average
	CompleteLinkage = cluster.Complete
)

// Record is one FASTA sequence read.
type Record = fasta.Record

// Options parameterizes a clustering run. Zero values select the paper's
// whole-metagenome defaults (k=5, n=100, θ=0.9, average linkage, 8-node
// simulated cluster).
type Options = core.Options

// Result is a completed clustering run.
type Result = core.Result

// ClusterConfig describes the simulated Hadoop deployment used for the
// run's virtual-clock timings.
type ClusterConfig = mapreduce.Cluster

// ResumeMode controls how Options.Checkpoint's journal is consulted.
type ResumeMode = core.ResumeMode

// Resume modes for Options.Resume.
const (
	// ResumeOff ignores any existing checkpoint journal (still journals).
	ResumeOff = core.ResumeOff
	// ResumeOn skips stages whose manifest entries validate, erroring on
	// a missing or mismatched manifest.
	ResumeOn = core.ResumeOn
	// ResumeForce discards the journal and runs from scratch.
	ResumeForce = core.ResumeForce
)

// Checkpoint is a stage journal for crash-consistent pipeline runs.
type Checkpoint = checkpoint.Journal

// OpenCheckpointDir opens (creating if needed) a checkpoint journal
// backed by a local directory, the durable medium behind the CLIs'
// --checkpoint-dir flag: the journal survives the driver process, so a
// run killed between stages resumes from its last committed stage.
func OpenCheckpointDir(dir string) (*Checkpoint, error) {
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return checkpoint.Open(store, "/")
}

// DefaultCluster mirrors the paper's 8-node Amazon EMR deployment.
var DefaultCluster = mapreduce.DefaultCluster

// Cluster groups the reads with MrMC-MinH and returns per-read cluster
// assignments plus modelled runtime.
func Cluster(reads []Record, opt Options) (*Result, error) {
	return core.Run(reads, opt)
}

// ReadFasta loads all records from a FASTA file on the local file system.
func ReadFasta(path string) ([]Record, error) {
	return fasta.ReadFile(path)
}

// ParseFasta loads all records from FASTA text on a reader.
func ParseFasta(r io.Reader) ([]Record, error) {
	return fasta.ReadAll(r)
}

// Evaluation holds external quality metrics for a clustering result,
// matching the paper's reported columns.
type Evaluation struct {
	NumClusters int
	// WAcc is the weighted cluster accuracy (%); valid when HasAcc.
	WAcc   float64
	HasAcc bool
	// WSim is the weighted intra-cluster alignment similarity (%); valid
	// when HasSim.
	WSim   float64
	HasSim bool
	// NMI and ARI are normalized mutual information and adjusted Rand
	// index against the ground truth; valid when HasAcc.
	NMI float64
	ARI float64
}

// Evaluate scores a result against optional ground-truth labels (one per
// read, same order) and the read sequences (for alignment similarity).
// Pass nil for either to skip that metric.
func Evaluate(res *Result, truth []string, reads []Record) (Evaluation, error) {
	ev := Evaluation{NumClusters: res.NumClusters()}
	if truth != nil {
		acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
		if err != nil {
			return ev, err
		}
		ev.WAcc, ev.HasAcc = acc, true
		if ev.NMI, err = metrics.NMI(res.Assignments, truth); err != nil {
			return ev, err
		}
		if ev.ARI, err = metrics.ARI(res.Assignments, truth); err != nil {
			return ev, err
		}
	}
	if reads != nil {
		if len(reads) != len(res.Assignments) {
			return ev, fmt.Errorf("mrmcminh: %d reads for %d assignments", len(reads), len(res.Assignments))
		}
		seqs := make([][]byte, len(reads))
		for i := range reads {
			seqs[i] = reads[i].Seq
		}
		sim, ok, err := metrics.WeightedSimilarity(res.Assignments, seqs, metrics.DefaultSimilarityOptions)
		if err != nil {
			return ev, err
		}
		ev.WSim, ev.HasSim = sim, ok
	}
	return ev, nil
}

// EstimateJaccard estimates the Jaccard similarity between two reads from
// n minwise hashes over k-mers — the paper's core primitive, exposed for
// ad-hoc use.
func EstimateJaccard(a, b Record, k, n int, seed int64) (float64, error) {
	sk, err := minhash.NewSketcher(n, k, seed)
	if err != nil {
		return 0, err
	}
	ex, err := newExtractor(k)
	if err != nil {
		return 0, err
	}
	sa := sk.Sketch(ex.Set(a.Seq))
	sb := sk.Sketch(ex.Set(b.Seq))
	return minhash.MatchedPositions.Similarity(sa, sb), nil
}

// ModelRuntime reports the modelled wall time of clustering numReads reads
// on a simulated cluster — the quantity behind the paper's Figure 2.
func ModelRuntime(numReads int, c ClusterConfig, mode Mode, numHashes int) time.Duration {
	return core.ModelRuntime(numReads, c, mode, numHashes)
}
