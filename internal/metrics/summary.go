package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary bundles the paper's reported measures for one run:
// cluster count, W.Acc, W.Sim and wall time.
type Summary struct {
	Name        string
	NumClusters int
	WAcc        float64 // percentage; NaN-free, HasAcc gates validity
	HasAcc      bool
	WSim        float64 // percentage; HasSim gates validity
	HasSim      bool
	Elapsed     time.Duration
}

// Evaluate computes a Summary for a clustering. truth may be nil (real
// samples without ground truth, e.g. R1); seqs may be nil to skip W.Sim.
func Evaluate(name string, c Clustering, truth []string, seqs [][]byte, opt SimilarityOptions, elapsed time.Duration) (Summary, error) {
	s := Summary{Name: name, NumClusters: c.NumClusters(), Elapsed: elapsed}
	if truth != nil {
		acc, err := WeightedAccuracy(c, truth)
		if err != nil {
			return s, err
		}
		s.WAcc, s.HasAcc = acc, true
	}
	if seqs != nil {
		sim, ok, err := WeightedSimilarity(c, seqs, opt)
		if err != nil {
			return s, err
		}
		s.WSim, s.HasSim = sim, ok
	}
	return s, nil
}

// Row renders the summary as a fixed-width table row matching the paper's
// column layout: #Cluster, W.Acc, W.Sim, Time.
func (s Summary) Row() string {
	acc := "-"
	if s.HasAcc {
		acc = fmt.Sprintf("%.2f", s.WAcc)
	}
	sim := "-"
	if s.HasSim {
		sim = fmt.Sprintf("%.2f", s.WSim)
	}
	return fmt.Sprintf("%-24s %9d %8s %8s %12s", s.Name, s.NumClusters, acc, sim, FormatDuration(s.Elapsed))
}

// HeaderRow returns the table header matching Row's layout.
func HeaderRow() string {
	return fmt.Sprintf("%-24s %9s %8s %8s %12s", "Method", "#Cluster", "W.Acc", "W.Sim", "Time")
}

// FormatDuration renders a duration in the paper's style: "4m 25s" for
// minutes-scale values and "8.4s" / "161.0s" for seconds-scale values.
func FormatDuration(d time.Duration) string {
	if d >= time.Minute {
		m := int(d.Minutes())
		s := int(d.Seconds()) - 60*m
		return fmt.Sprintf("%dm %02ds", m, s)
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// ClusterSizeHistogram returns "size -> #clusters of that size" sorted
// ascending as a printable string, useful in example programs.
func ClusterSizeHistogram(c Clustering) string {
	bySize := make(map[int]int)
	for _, n := range c.Sizes() {
		bySize[n]++
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	var sb strings.Builder
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%d reads x %d clusters\n", s, bySize[s])
	}
	return sb.String()
}
