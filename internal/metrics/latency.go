package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyBuckets is the fixed bucket count of a LatencyHistogram: 4
// log2 sub-buckets per octave from 1µs to ~1.2h covers any request the
// serving layer answers, at ≤ ~19% relative quantile error.
const (
	latencyBuckets   = 4 * 32
	latencyBase      = float64(time.Microsecond)
	latencyPerOctave = 4
)

// LatencyHistogram is a concurrent log-scale latency histogram: Observe
// is one atomic add (safe from any number of request goroutines), and
// quantiles are read without stopping writers. The zero value is ready
// to use.
type LatencyHistogram struct {
	counts [latencyBuckets]atomic.Int64
	total  atomic.Int64
}

// bucketOf maps a duration to its log-scale bucket.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := int(math.Floor(latencyPerOctave * math.Log2(float64(d)/latencyBase)))
	if idx < 0 {
		return 0
	}
	if idx >= latencyBuckets {
		return latencyBuckets - 1
	}
	return idx
}

// boundOf returns the upper bound of a bucket, the value quantiles
// report.
func boundOf(idx int) time.Duration {
	return time.Duration(latencyBase * math.Pow(2, float64(idx+1)/latencyPerOctave))
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
}

// Count returns the number of samples recorded.
func (h *LatencyHistogram) Count() int64 { return h.total.Load() }

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1) as the upper
// bound of the bucket holding that rank, or 0 with no samples. The
// log-scale buckets bound the relative error at 2^(1/4)-1 ≈ 19%.
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < latencyBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return boundOf(i)
		}
	}
	return boundOf(latencyBuckets - 1)
}
