package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	// 90 fast samples, 10 slow ones: p50 must sit near 1ms, p99 near
	// 100ms, each within the documented ~19% bucket error.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d", got)
	}
	checkNear := func(name string, got, want time.Duration) {
		t.Helper()
		lo := time.Duration(float64(want) * 0.95)
		hi := time.Duration(float64(want) * 1.25)
		if got < lo || got > hi {
			t.Fatalf("%s = %v, want within [%v,%v]", name, got, lo, hi)
		}
	}
	checkNear("p50", h.Quantile(0.50), time.Millisecond)
	checkNear("p99", h.Quantile(0.99), 100*time.Millisecond)
	if h.Quantile(0) == 0 || h.Quantile(1) < h.Quantile(0.5) {
		t.Fatal("extreme quantiles inconsistent")
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i+1) * time.Microsecond)
				_ = h.Quantile(0.99) // readers race with writers safely
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestLatencyHistogramClamps(t *testing.T) {
	var h LatencyHistogram
	h.Observe(-time.Second)   // below range -> first bucket
	h.Observe(10 * time.Hour) // above range -> last bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(1) < time.Hour {
		t.Fatalf("overflow sample quantile = %v", h.Quantile(1))
	}
}
