// Package metrics implements the paper's external evaluation measures:
// weighted cluster accuracy (W.Acc) against ground-truth taxonomy labels and
// weighted intra-cluster global-alignment similarity (W.Sim).
package metrics

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/metagenomics/mrmcminh/internal/align"
)

// Clustering is an assignment of N sequences to clusters. Values are
// arbitrary non-negative cluster ids; -1 marks an unassigned sequence.
type Clustering []int

// NumClusters returns the number of distinct non-negative cluster ids.
func (c Clustering) NumClusters() int {
	seen := make(map[int]struct{})
	for _, id := range c {
		if id >= 0 {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}

// Sizes returns cluster id -> member count.
func (c Clustering) Sizes() map[int]int {
	sizes := make(map[int]int)
	for _, id := range c {
		if id >= 0 {
			sizes[id]++
		}
	}
	return sizes
}

// Members returns cluster id -> member sequence indices (ascending).
func (c Clustering) Members() map[int][]int {
	m := make(map[int][]int)
	for i, id := range c {
		if id >= 0 {
			m[id] = append(m[id], i)
		}
	}
	return m
}

// NumClustersAtLeast counts clusters with at least minSize members. The
// paper reports cluster counts "after applying threshold on number of
// clusters", i.e. ignoring dust clusters.
func (c Clustering) NumClustersAtLeast(minSize int) int {
	n := 0
	for _, size := range c.Sizes() {
		if size >= minSize {
			n++
		}
	}
	return n
}

// WeightedAccuracy computes W.Acc: each cluster is designated the most
// frequent ground-truth class among its members; the per-cluster accuracy
// is the fraction of members carrying the designated class; the reported
// value is the average across clusters weighted by cluster size, as a
// percentage in [0,100].
func WeightedAccuracy(c Clustering, truth []string) (float64, error) {
	if len(c) != len(truth) {
		return 0, fmt.Errorf("metrics: clustering has %d items but truth has %d", len(c), len(truth))
	}
	members := c.Members()
	if len(members) == 0 {
		return 0, nil
	}
	correct, total := 0, 0
	for _, idx := range members {
		counts := make(map[string]int)
		for _, i := range idx {
			counts[truth[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
		total += len(idx)
	}
	return 100 * float64(correct) / float64(total), nil
}

// SimilarityOptions controls W.Sim evaluation.
type SimilarityOptions struct {
	// MinClusterSize excludes clusters with at most this many members from
	// the score (the paper uses clusters with >50 sequences).
	MinClusterSize int
	// MaxPairsPerCluster caps the number of sampled pairs aligned per
	// cluster (0 = all pairs). Exact all-pairs alignment is quadratic;
	// like the paper's own runtime concessions we sample deterministically.
	MaxPairsPerCluster int
	// Seed drives pair sampling.
	Seed int64
	// Band enables banded global alignment with the given half-width
	// (0 = full Needleman–Wunsch).
	Band int
}

// DefaultSimilarityOptions mirrors the paper: clusters > 50 reads, sampled
// pairs for tractability.
var DefaultSimilarityOptions = SimilarityOptions{
	MinClusterSize:     50,
	MaxPairsPerCluster: 200,
	Seed:               1,
	Band:               32,
}

// WeightedSimilarity computes W.Sim: the average global-alignment identity
// of (sampled) intra-cluster pairs, averaged across qualifying clusters
// weighted by cluster size, as a percentage in [0,100]. The boolean result
// reports whether any cluster qualified.
func WeightedSimilarity(c Clustering, seqs [][]byte, opt SimilarityOptions) (float64, bool, error) {
	if len(c) != len(seqs) {
		return 0, false, fmt.Errorf("metrics: clustering has %d items but %d sequences given", len(c), len(seqs))
	}
	members := c.Members()
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic iteration
	rng := rand.New(rand.NewSource(opt.Seed))

	var weighted, weightSum float64
	for _, id := range ids {
		idx := members[id]
		if len(idx) <= opt.MinClusterSize || len(idx) < 2 {
			continue
		}
		sim := clusterSimilarity(idx, seqs, opt, rng)
		weighted += sim * float64(len(idx))
		weightSum += float64(len(idx))
	}
	if weightSum == 0 {
		return 0, false, nil
	}
	return 100 * weighted / weightSum, true, nil
}

// clusterSimilarity averages pairwise identity within one cluster.
func clusterSimilarity(idx []int, seqs [][]byte, opt SimilarityOptions, rng *rand.Rand) float64 {
	n := len(idx)
	totalPairs := n * (n - 1) / 2
	alignPair := func(i, j int) float64 {
		a, b := seqs[idx[i]], seqs[idx[j]]
		if opt.Band > 0 {
			return align.GlobalBanded(a, b, align.DefaultScoring, opt.Band).Identity()
		}
		return align.Global(a, b, align.DefaultScoring).Identity()
	}
	if opt.MaxPairsPerCluster <= 0 || totalPairs <= opt.MaxPairsPerCluster {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += alignPair(i, j)
			}
		}
		return sum / float64(totalPairs)
	}
	sum := 0.0
	for p := 0; p < opt.MaxPairsPerCluster; p++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		sum += alignPair(i, j)
	}
	return sum / float64(opt.MaxPairsPerCluster)
}
