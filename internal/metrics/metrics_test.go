package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNumClusters(t *testing.T) {
	c := Clustering{0, 0, 1, 2, 2, -1}
	if got := c.NumClusters(); got != 3 {
		t.Fatalf("NumClusters = %d, want 3", got)
	}
	if got := (Clustering{}).NumClusters(); got != 0 {
		t.Fatalf("empty NumClusters = %d", got)
	}
}

func TestSizesAndMembers(t *testing.T) {
	c := Clustering{0, 1, 0, -1, 1, 1}
	sizes := c.Sizes()
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("Sizes = %v", sizes)
	}
	members := c.Members()
	if len(members[1]) != 3 || members[1][0] != 1 || members[1][2] != 5 {
		t.Fatalf("Members = %v", members)
	}
	if _, ok := members[-1]; ok {
		t.Fatal("unassigned items must not form a cluster")
	}
}

func TestNumClustersAtLeast(t *testing.T) {
	c := Clustering{0, 0, 0, 1, 2, 2}
	if got := c.NumClustersAtLeast(2); got != 2 {
		t.Fatalf("NumClustersAtLeast(2) = %d, want 2", got)
	}
	if got := c.NumClustersAtLeast(4); got != 0 {
		t.Fatalf("NumClustersAtLeast(4) = %d, want 0", got)
	}
}

func TestWeightedAccuracyPerfect(t *testing.T) {
	c := Clustering{0, 0, 1, 1}
	truth := []string{"a", "a", "b", "b"}
	acc, err := WeightedAccuracy(c, truth)
	if err != nil || acc != 100 {
		t.Fatalf("acc = %v err = %v", acc, err)
	}
}

func TestWeightedAccuracyMixedCluster(t *testing.T) {
	// One cluster of 4 with 3 'a' and 1 'b' -> 75%.
	c := Clustering{0, 0, 0, 0}
	truth := []string{"a", "a", "a", "b"}
	acc, err := WeightedAccuracy(c, truth)
	if err != nil || acc != 75 {
		t.Fatalf("acc = %v err = %v", acc, err)
	}
}

func TestWeightedAccuracyWeighting(t *testing.T) {
	// Cluster 0: 2 members all correct. Cluster 1: 8 members, 4 correct.
	// Weighted: (2*100 + 8*50)/10 = 60.
	c := Clustering{0, 0, 1, 1, 1, 1, 1, 1, 1, 1}
	truth := []string{"x", "x", "a", "a", "a", "a", "b", "b", "b", "b"}
	acc, err := WeightedAccuracy(c, truth)
	if err != nil || acc != 60 {
		t.Fatalf("acc = %v err = %v", acc, err)
	}
}

func TestWeightedAccuracyLengthMismatch(t *testing.T) {
	if _, err := WeightedAccuracy(Clustering{0}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestWeightedAccuracyEmptyClustering(t *testing.T) {
	acc, err := WeightedAccuracy(Clustering{-1, -1}, []string{"a", "b"})
	if err != nil || acc != 0 {
		t.Fatalf("acc = %v err = %v", acc, err)
	}
}

func TestWeightedAccuracyRange(t *testing.T) {
	f := func(assign []uint8, labels []uint8) bool {
		n := len(assign)
		if len(labels) < n {
			n = len(labels)
		}
		c := make(Clustering, n)
		truth := make([]string, n)
		for i := 0; i < n; i++ {
			c[i] = int(assign[i] % 5)
			truth[i] = string(rune('a' + labels[i]%3))
		}
		acc, err := WeightedAccuracy(c, truth)
		if err != nil {
			return false
		}
		return acc >= 0 && acc <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func makeCluster(n int, seq string) ([][]byte, Clustering) {
	seqs := make([][]byte, n)
	c := make(Clustering, n)
	for i := range seqs {
		seqs[i] = []byte(seq)
		c[i] = 0
	}
	return seqs, c
}

func TestWeightedSimilarityIdenticalReads(t *testing.T) {
	seqs, c := makeCluster(60, "ACGTACGTACGTACGT")
	opt := SimilarityOptions{MinClusterSize: 50, MaxPairsPerCluster: 50, Seed: 1}
	sim, ok, err := WeightedSimilarity(c, seqs, opt)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if sim != 100 {
		t.Fatalf("sim = %v, want 100", sim)
	}
}

func TestWeightedSimilaritySkipsSmallClusters(t *testing.T) {
	seqs, c := makeCluster(10, "ACGT")
	opt := SimilarityOptions{MinClusterSize: 50}
	_, ok, err := WeightedSimilarity(c, seqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("small cluster should not qualify")
	}
}

func TestWeightedSimilarityAllPairsSmall(t *testing.T) {
	// 3 reads, one mismatching half: verify exact all-pairs mode.
	seqs := [][]byte{[]byte("AAAAAAAA"), []byte("AAAAAAAA"), []byte("AAAATTTT")}
	c := Clustering{0, 0, 0}
	opt := SimilarityOptions{MinClusterSize: 2, MaxPairsPerCluster: 0}
	sim, ok, err := WeightedSimilarity(c, seqs, opt)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// pairs: (0,1)=1.0, (0,2)=0.5, (1,2)=0.5 -> mean 2/3.
	want := 100 * 2.0 / 3.0
	if sim < want-0.01 || sim > want+0.01 {
		t.Fatalf("sim = %v, want %v", sim, want)
	}
}

func TestWeightedSimilarityDeterministicSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	seqs := make([][]byte, n)
	c := make(Clustering, n)
	for i := range seqs {
		s := make([]byte, 50)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		seqs[i] = s
		c[i] = 0
	}
	opt := SimilarityOptions{MinClusterSize: 50, MaxPairsPerCluster: 40, Seed: 7}
	s1, _, _ := WeightedSimilarity(c, seqs, opt)
	s2, _, _ := WeightedSimilarity(c, seqs, opt)
	if s1 != s2 {
		t.Fatalf("same seed produced %v then %v", s1, s2)
	}
}

func TestWeightedSimilarityLengthMismatch(t *testing.T) {
	if _, _, err := WeightedSimilarity(Clustering{0}, nil, DefaultSimilarityOptions); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestEvaluateAndRow(t *testing.T) {
	seqs, c := makeCluster(60, "ACGTACGT")
	truth := make([]string, 60)
	for i := range truth {
		truth[i] = "sp1"
	}
	opt := SimilarityOptions{MinClusterSize: 50, MaxPairsPerCluster: 20, Seed: 1}
	s, err := Evaluate("test-method", c, truth, seqs, opt, 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasAcc || s.WAcc != 100 || !s.HasSim || s.WSim != 100 || s.NumClusters != 1 {
		t.Fatalf("summary %+v", s)
	}
	row := s.Row()
	for _, frag := range []string{"test-method", "100.00", "1m 30s"} {
		if !strings.Contains(row, frag) {
			t.Fatalf("row %q missing %q", row, frag)
		}
	}
	if !strings.Contains(HeaderRow(), "#Cluster") {
		t.Fatal("header missing column")
	}
}

func TestEvaluateNoTruthNoSeqs(t *testing.T) {
	s, err := Evaluate("m", Clustering{0, 0}, nil, nil, DefaultSimilarityOptions, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasAcc || s.HasSim {
		t.Fatalf("summary %+v should have no metrics", s)
	}
	if !strings.Contains(s.Row(), "-") {
		t.Fatal("row should render '-' for missing metrics")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		265 * time.Second:        "4m 25s",
		8400 * time.Millisecond:  "8.4s",
		161 * time.Second:        "2m 41s",
		500 * time.Millisecond:   "0.5s",
		60 * time.Second:         "1m 00s",
		59900 * time.Millisecond: "59.9s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestClusterSizeHistogram(t *testing.T) {
	c := Clustering{0, 0, 1, 2}
	h := ClusterSizeHistogram(c)
	if !strings.Contains(h, "1 reads x 2 clusters") || !strings.Contains(h, "2 reads x 1 clusters") {
		t.Fatalf("histogram %q", h)
	}
}
