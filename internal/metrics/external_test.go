package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func perfectCase() (Clustering, []string) {
	return Clustering{0, 0, 1, 1, 2, 2}, []string{"a", "a", "b", "b", "c", "c"}
}

func TestPurity(t *testing.T) {
	c, truth := perfectCase()
	p, err := Purity(c, truth)
	if err != nil || p != 1 {
		t.Fatalf("p=%v err=%v", p, err)
	}
	mixed := Clustering{0, 0, 0, 0}
	p, err = Purity(mixed, []string{"a", "a", "a", "b"})
	if err != nil || p != 0.75 {
		t.Fatalf("p=%v err=%v", p, err)
	}
}

func TestNMIPerfect(t *testing.T) {
	c, truth := perfectCase()
	v, err := NMI(c, truth)
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI=%v err=%v", v, err)
	}
}

func TestNMIPermutedLabelsStillPerfect(t *testing.T) {
	// Cluster ids renamed arbitrarily: NMI is label-invariant.
	c := Clustering{7, 7, 3, 3, 9, 9}
	_, truth := perfectCase()
	v, err := NMI(c, truth)
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI=%v err=%v", v, err)
	}
}

func TestNMIDegenerate(t *testing.T) {
	// One cluster, several classes -> 0.
	v, err := NMI(Clustering{0, 0, 0, 0}, []string{"a", "a", "b", "b"})
	if err != nil || v != 0 {
		t.Fatalf("NMI=%v err=%v", v, err)
	}
	// One cluster, one class -> 1.
	v, err = NMI(Clustering{0, 0}, []string{"a", "a"})
	if err != nil || v != 1 {
		t.Fatalf("NMI=%v err=%v", v, err)
	}
	// Empty clustering.
	v, err = NMI(Clustering{-1, -1}, []string{"a", "b"})
	if err != nil || v != 0 {
		t.Fatalf("NMI=%v err=%v", v, err)
	}
}

func TestNMISplitBelowPerfect(t *testing.T) {
	// Truth classes split across clusters: strictly between 0 and 1.
	c := Clustering{0, 1, 2, 3}
	truth := []string{"a", "a", "b", "b"}
	v, err := NMI(c, truth)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= 1 {
		t.Fatalf("NMI=%v want in (0,1)", v)
	}
}

func TestARIPerfectAndRandom(t *testing.T) {
	c, truth := perfectCase()
	v, err := ARI(c, truth)
	if err != nil || math.Abs(v-1) > 1e-12 {
		t.Fatalf("ARI=%v err=%v", v, err)
	}
	// All singletons vs two classes: ARI 0 (no pair agreements possible
	// beyond chance).
	v, err = ARI(Clustering{0, 1, 2, 3}, []string{"a", "a", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("singleton ARI=%v", v)
	}
}

func TestARIWorseThanChanceCanBeNegative(t *testing.T) {
	// Anti-correlated partition.
	c := Clustering{0, 1, 0, 1}
	truth := []string{"a", "a", "b", "b"}
	v, err := ARI(c, truth)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0 {
		t.Fatalf("anti-correlated ARI=%v, want <= 0", v)
	}
}

func TestARIDegenerateIdentical(t *testing.T) {
	// Both all-singletons.
	v, err := ARI(Clustering{0, 1, 2}, []string{"x", "y", "z"})
	if err != nil || v != 1 {
		t.Fatalf("ARI=%v err=%v", v, err)
	}
	// Too few points.
	v, err = ARI(Clustering{0}, []string{"a"})
	if err != nil || v != 0 {
		t.Fatalf("ARI=%v err=%v", v, err)
	}
}

func TestExternalMetricsLengthMismatch(t *testing.T) {
	if _, err := NMI(Clustering{0}, []string{"a", "b"}); err == nil {
		t.Error("NMI mismatch accepted")
	}
	if _, err := ARI(Clustering{0}, []string{"a", "b"}); err == nil {
		t.Error("ARI mismatch accepted")
	}
	if _, err := Purity(Clustering{0}, []string{"a", "b"}); err == nil {
		t.Error("Purity mismatch accepted")
	}
}

func TestExternalMetricsBoundsProperty(t *testing.T) {
	f := func(assign, labels []uint8) bool {
		n := len(assign)
		if len(labels) < n {
			n = len(labels)
		}
		if n == 0 {
			return true
		}
		c := make(Clustering, n)
		truth := make([]string, n)
		for i := 0; i < n; i++ {
			c[i] = int(assign[i] % 6)
			truth[i] = string(rune('a' + labels[i]%4))
		}
		nmi, err1 := NMI(c, truth)
		ari, err2 := ARI(c, truth)
		pur, err3 := Purity(c, truth)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if nmi < -1e-9 || nmi > 1+1e-9 {
			return false
		}
		if ari < -1-1e-9 || ari > 1+1e-9 {
			return false
		}
		return pur >= 0 && pur <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
