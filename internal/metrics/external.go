package metrics

import (
	"fmt"
	"math"
)

// Additional external quality measures beyond the paper's W.Acc: purity,
// normalized mutual information (NMI) and adjusted Rand index (ARI) — the
// standard trio in clustering literature, useful when comparing against
// modern binning tools whose papers report them.

// contingency builds the cluster × class contingency table.
func contingency(c Clustering, truth []string) (table map[int]map[string]int, clusterSizes map[int]int, classSizes map[string]int, n int, err error) {
	if len(c) != len(truth) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: clustering has %d items but truth has %d", len(c), len(truth))
	}
	table = make(map[int]map[string]int)
	clusterSizes = make(map[int]int)
	classSizes = make(map[string]int)
	for i, label := range c {
		if label < 0 {
			continue
		}
		if table[label] == nil {
			table[label] = make(map[string]int)
		}
		table[label][truth[i]]++
		clusterSizes[label]++
		classSizes[truth[i]]++
		n++
	}
	return table, clusterSizes, classSizes, n, nil
}

// Purity is the fraction of reads assigned to their cluster's majority
// class — numerically identical to W.Acc/100 but returned in [0,1].
func Purity(c Clustering, truth []string) (float64, error) {
	acc, err := WeightedAccuracy(c, truth)
	if err != nil {
		return 0, err
	}
	return acc / 100, nil
}

// NMI computes normalized mutual information between the clustering and
// the ground-truth classes: I(C;T) / sqrt(H(C)·H(T)), in [0,1]. A
// clustering identical to the truth scores 1; independent labelings score
// ~0. Degenerate cases (single cluster or single class) return 0 unless
// both sides are single, which scores 1.
func NMI(c Clustering, truth []string) (float64, error) {
	table, clusterSizes, classSizes, n, err := contingency(c, truth)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if len(clusterSizes) == 1 && len(classSizes) == 1 {
		return 1, nil
	}
	hc := entropy(clusterSizes, n)
	ht := entropyStr(classSizes, n)
	if hc == 0 || ht == 0 {
		return 0, nil
	}
	mi := 0.0
	fn := float64(n)
	for cl, row := range table {
		pc := float64(clusterSizes[cl]) / fn
		for cls, cnt := range row {
			pct := float64(cnt) / fn
			pt := float64(classSizes[cls]) / fn
			mi += pct * math.Log(pct/(pc*pt))
		}
	}
	return mi / math.Sqrt(hc*ht), nil
}

// entropy over integer-keyed size map.
func entropy(sizes map[int]int, n int) float64 {
	h := 0.0
	for _, s := range sizes {
		p := float64(s) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// entropyStr over string-keyed size map.
func entropyStr(sizes map[string]int, n int) float64 {
	h := 0.0
	for _, s := range sizes {
		p := float64(s) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// ARI computes the adjusted Rand index: pair-counting agreement between
// clustering and truth, corrected for chance. 1 = identical partitions,
// ~0 = random relation, negative = worse than chance.
func ARI(c Clustering, truth []string) (float64, error) {
	table, clusterSizes, classSizes, n, err := contingency(c, truth)
	if err != nil {
		return 0, err
	}
	if n < 2 {
		return 0, nil
	}
	var sumComb, sumClusterComb, sumClassComb float64
	for _, row := range table {
		for _, cnt := range row {
			sumComb += choose2(cnt)
		}
	}
	for _, s := range clusterSizes {
		sumClusterComb += choose2(s)
	}
	for _, s := range classSizes {
		sumClassComb += choose2(s)
	}
	total := choose2(n)
	expected := sumClusterComb * sumClassComb / total
	maxIndex := (sumClusterComb + sumClassComb) / 2
	if maxIndex == expected {
		// Both partitions are degenerate in the same way (e.g. both all
		// singletons matching, or both one block): perfect agreement.
		return 1, nil
	}
	return (sumComb - expected) / (maxIndex - expected), nil
}

// choose2 returns n choose 2 as float64.
func choose2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}
