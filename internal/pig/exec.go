package pig

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Script is a compiled Pig program.
type Script struct {
	stmts []Stmt
}

// Compile parses src into an executable script.
func Compile(src string) (*Script, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Script{stmts: stmts}, nil
}

// MustCompile is Compile panicking on error.
func MustCompile(src string) *Script {
	s, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes the script statement by statement, launching one MapReduce
// job per FOREACH/GROUP (Pig's one-operator-one-job compilation for linear
// scripts) and accumulating the simulated cluster time. When the engine
// carries a trace recorder, every logical operator opens a span that the
// jobs it launches nest under, so the whole script renders as one
// timeline.
func (s *Script) Run(ctx *Context) (*RunResult, error) {
	if ctx.FS == nil || ctx.Engine == nil || ctx.Registry == nil {
		return nil, fmt.Errorf("pig: context requires FS, Engine and Registry")
	}
	start := time.Now()
	rec := ctx.Engine.Trace
	ex := &executor{ctx: ctx, aliases: make(map[string]*Relation)}
	res := &RunResult{Aliases: ex.aliases, Stored: make(map[string]string), Dumps: make(map[string][]string)}
	for _, st := range s.stmts {
		var ref trace.SpanRef
		if rec.Enabled() {
			ref = rec.Begin(trace.KindPigOp, stmtLabel(st))
		}
		err := ex.execStmt(st, res)
		rec.End(ref)
		if err != nil {
			return nil, err
		}
	}
	res.Real = time.Since(start)
	return res, nil
}

// execStmt dispatches one statement, accumulating job counts and modelled
// time into res.
func (ex *executor) execStmt(st Stmt, res *RunResult) error {
	switch t := st.(type) {
	case *LoadStmt:
		return ex.load(t)
	case *ForeachStmt:
		virt, err := ex.foreach(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *GroupStmt:
		virt, err := ex.group(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *StoreStmt:
		path, restored, err := ex.store(t)
		if err != nil {
			return err
		}
		res.Stored[t.Input] = path
		if restored {
			res.Restored = append(res.Restored, path)
		}
	case *FilterStmt:
		virt, err := ex.filter(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *DistinctStmt:
		virt, err := ex.distinct(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *LimitStmt:
		return ex.limit(t)
	case *UnionStmt:
		return ex.union(t)
	case *OrderStmt:
		virt, err := ex.order(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *DumpStmt:
		return ex.dump(t, res)
	case *JoinStmt:
		virt, err := ex.join(t)
		if err != nil {
			return err
		}
		res.Virtual += virt
		res.Jobs++
	case *DescribeStmt:
		return ex.describe(t, res)
	case *SampleStmt:
		return ex.sample(t)
	default:
		return fmt.Errorf("pig: unsupported statement %T", st)
	}
	return nil
}

// stmtLabel names a statement for its trace span, Pig-source style.
func stmtLabel(st Stmt) string {
	switch t := st.(type) {
	case *LoadStmt:
		return fmt.Sprintf("%s = LOAD '%s'", t.Alias, t.Path)
	case *ForeachStmt:
		return fmt.Sprintf("%s = FOREACH %s", t.Alias, t.Input)
	case *GroupStmt:
		if t.All {
			return fmt.Sprintf("%s = GROUP %s ALL", t.Alias, t.Input)
		}
		return fmt.Sprintf("%s = GROUP %s", t.Alias, t.Input)
	case *StoreStmt:
		return fmt.Sprintf("STORE %s INTO '%s'", t.Input, t.Path)
	case *FilterStmt:
		return fmt.Sprintf("%s = FILTER %s", t.Alias, t.Input)
	case *DistinctStmt:
		return fmt.Sprintf("%s = DISTINCT %s", t.Alias, t.Input)
	case *LimitStmt:
		return fmt.Sprintf("%s = LIMIT %s", t.Alias, t.Input)
	case *UnionStmt:
		return fmt.Sprintf("%s = UNION %s", t.Alias, strings.Join(t.Inputs, ", "))
	case *OrderStmt:
		return fmt.Sprintf("%s = ORDER %s", t.Alias, t.Input)
	case *DumpStmt:
		return fmt.Sprintf("DUMP %s", t.Input)
	case *JoinStmt:
		return fmt.Sprintf("%s = JOIN %s", t.Alias, strings.Join(t.Inputs, ", "))
	case *DescribeStmt:
		return fmt.Sprintf("DESCRIBE %s", t.Input)
	case *SampleStmt:
		return fmt.Sprintf("%s = SAMPLE %s", t.Alias, t.Input)
	default:
		return fmt.Sprintf("%T", st)
	}
}

// executor tracks alias state during a run.
type executor struct {
	ctx     *Context
	aliases map[string]*Relation
}

// run launches one MapReduce job with the context's shuffle settings
// applied — the single funnel every physical operator goes through.
func (ex *executor) run(job *mapreduce.Job) (*mapreduce.Result, error) {
	job.ShuffleBufferBytes = ex.ctx.ShuffleBufferBytes
	return ex.ctx.Engine.Run(job)
}

// relation resolves an alias or fails with its use-site line.
func (ex *executor) relation(name string, line int) (*Relation, error) {
	rel, ok := ex.aliases[name]
	if !ok {
		return nil, fmt.Errorf("pig: line %d: unknown alias %q", line, name)
	}
	return rel, nil
}

// substituteParams replaces $NAME holes in a string (used for paths).
func (ex *executor) substituteParams(s string, line int) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '$' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		j := i + 1
		for j < len(s) && (isIdentPart(rune(s[j]))) {
			j++
		}
		if j == i+1 {
			return "", fmt.Errorf("pig: line %d: dangling '$' in %q", line, s)
		}
		v, err := ex.ctx.Param(s[i+1 : j])
		if err != nil {
			return "", fmt.Errorf("pig: line %d: %w", line, err)
		}
		sb.WriteString(v)
		i = j
	}
	return sb.String(), nil
}

// ---- LOAD ----

func (ex *executor) load(st *LoadStmt) error {
	loader, ok := ex.ctx.Registry.Loader(st.Loader)
	if !ok {
		return fmt.Errorf("pig: line %d: unknown loader %q", st.Line, st.Loader)
	}
	path, err := ex.substituteParams(st.Path, st.Line)
	if err != nil {
		return err
	}
	args, err := ex.constArgs(st.Args, st.Line)
	if err != nil {
		return err
	}
	rel, err := loader(ex.ctx, path, args)
	if err != nil {
		return fmt.Errorf("pig: line %d: loading %q: %w", st.Line, path, err)
	}
	if len(st.As) > 0 {
		rel.Schema = st.As
	}
	ex.aliases[st.Alias] = rel
	return nil
}

// constArgs evaluates loader arguments (no tuple context).
func (ex *executor) constArgs(exprs []Expr, line int) ([]Value, error) {
	out := make([]Value, len(exprs))
	for i, e := range exprs {
		v, err := ex.evalConst(e, line)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalConst evaluates literals and params outside any tuple context.
func (ex *executor) evalConst(e Expr, line int) (Value, error) {
	switch t := e.(type) {
	case Literal:
		return t.Value, nil
	case ParamRef:
		v, err := ex.ctx.Param(t.Name)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("pig: line %d: expression %T is not constant", line, e)
	}
}

// ---- GROUP ----

func (ex *executor) group(st *GroupStmt) (time.Duration, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return 0, err
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:  fmt.Sprintf("group-%s", st.Alias),
		Input: mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			key := "all"
			if !st.All {
				kval, err := ex.evalTuple(st.By, tup, in, st.Input, st.Line)
				if err != nil {
					return err
				}
				key = FormatValue(kval)
			}
			emit(mapreduce.KeyValue{Key: key, Value: tup})
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			bag := make(Bag, 0, len(values))
			for _, v := range values {
				bag = append(bag, v.(Tuple))
			}
			emit(mapreduce.KeyValue{Key: key, Value: NewTuple(key, bag)})
			return nil
		},
		NumReducers: ex.ctx.Engine.Cluster.Nodes,
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	out := &Relation{Schema: Schema{{Name: "group", Type: "chararray"}, {Name: st.Input, Type: "bag"}}}
	// Sort by group key for deterministic output across reducers.
	sort.SliceStable(res.Output, func(i, j int) bool { return res.Output[i].Key < res.Output[j].Key })
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// ---- STORE ----

// store materializes a relation through the output-commit protocol: the
// part file is staged under the target's _temporary tree and promoted by
// an atomic rename, then the directory is finalized with a _SUCCESS
// marker — a driver dying mid-STORE never leaves partial output visible.
// With a checkpoint journal the committed bytes are also recorded under
// a "store:<path>" manifest entry; resuming validates the entry (typed
// error on mismatch) and restores its bytes instead of re-journaling.
func (ex *executor) store(st *StoreStmt) (string, bool, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return "", false, err
	}
	path, err := ex.substituteParams(st.Path, st.Line)
	if err != nil {
		return "", false, err
	}
	var sb strings.Builder
	for _, tup := range in.Tuples {
		parts := make([]string, len(tup.Fields))
		for i, f := range tup.Fields {
			parts[i] = FormatValue(f)
		}
		sb.WriteString(strings.Join(parts, "\t"))
		sb.WriteByte('\n')
	}
	data := []byte(sb.String())

	stage := "store:" + path
	restored := false
	if ck := ex.ctx.Checkpoint; ck != nil {
		if ex.ctx.Resume {
			e, ok, err := ck.Validate(stage, checkpoint.HashBytes(data), nil)
			if err != nil {
				return "", false, fmt.Errorf("pig: line %d: %w", st.Line, err)
			}
			if ok {
				if data, err = ck.Load(e); err != nil {
					return "", false, fmt.Errorf("pig: line %d: %w", st.Line, err)
				}
				restored = true
			}
		}
		if !restored {
			if _, err := ck.Commit(stage, checkpoint.HashBytes(data), nil, data); err != nil {
				return "", false, fmt.Errorf("pig: line %d: %w", st.Line, err)
			}
		}
	}

	oc := mapreduce.NewOutputCommitter(ex.ctx.FS, path)
	oc.SetTrace(ex.ctx.Engine.Trace)
	if err := oc.WriteAttemptFile(0, 0, "part-00000", data); err != nil {
		return "", false, fmt.Errorf("pig: line %d: storing %q: %w", st.Line, path, err)
	}
	if err := oc.CommitTask(0, 0); err != nil {
		return "", false, fmt.Errorf("pig: line %d: storing %q: %w", st.Line, path, err)
	}
	if err := oc.CommitJob(); err != nil {
		return "", false, fmt.Errorf("pig: line %d: storing %q: %w", st.Line, path, err)
	}
	if df := ex.ctx.Engine.Faults; df.DriverCrashAfter(stage) {
		return "", false, &faults.DriverCrashError{Stage: stage}
	}
	return path, restored, nil
}

// ---- helpers shared with FOREACH ----

// tuplesToRecords wraps tuples as MapReduce records keyed by a
// fixed-width index so lexicographic key order equals tuple order.
func tuplesToRecords(tuples Bag) []mapreduce.KeyValue {
	recs := make([]mapreduce.KeyValue, len(tuples))
	for i, t := range tuples {
		recs[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%012d", i), Value: t}
	}
	return recs
}

// splitSizeFor sizes splits so every cluster slot gets work (≥2 waves).
func splitSizeFor(n int, c mapreduce.Cluster) int {
	waves := 2 * c.TotalSlots()
	size := (n + waves - 1) / waves
	if size < 1 {
		size = 1
	}
	return size
}

// evalTuple evaluates an expression against one tuple of relation rel
// (bound to alias inputName).
func (ex *executor) evalTuple(e Expr, tup Tuple, rel *Relation, inputName string, line int) (Value, error) {
	switch t := e.(type) {
	case Literal:
		return t.Value, nil
	case ParamRef:
		v, err := ex.ctx.Param(t.Name)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		return v, nil
	case PositionalRef:
		if t.Index < 0 || t.Index >= len(tup.Fields) {
			return nil, fmt.Errorf("pig: line %d: positional $%d out of range (%d fields)", line, t.Index, len(tup.Fields))
		}
		return tup.Fields[t.Index], nil
	case FieldRef:
		idx := rel.Schema.IndexOf(t.Name)
		if idx < 0 {
			return nil, fmt.Errorf("pig: line %d: unknown field %q in schema %s", line, t.Name, rel.Schema)
		}
		if idx >= len(tup.Fields) {
			return nil, fmt.Errorf("pig: line %d: tuple too short for field %q", line, t.Name)
		}
		return tup.Fields[idx], nil
	case DottedRef:
		if t.Alias == inputName {
			return ex.evalTuple(FieldRef{Name: t.Field}, tup, rel, inputName, line)
		}
		return ex.foreignDeref(t, line)
	case Compare:
		l, err := ex.evalTuple(t.L, tup, rel, inputName, line)
		if err != nil {
			return nil, err
		}
		r, err := ex.evalTuple(t.R, tup, rel, inputName, line)
		if err != nil {
			return nil, err
		}
		ok, err := compareValues(t.Op, l, r)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		return ok, nil
	case Logic:
		l, err := ex.evalTuple(t.L, tup, rel, inputName, line)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		// Short-circuit.
		if t.Op == "and" && !lb {
			return false, nil
		}
		if t.Op == "or" && lb {
			return true, nil
		}
		r, err := ex.evalTuple(t.R, tup, rel, inputName, line)
		if err != nil {
			return nil, err
		}
		rb, err := truthy(r)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		return rb, nil
	case Not:
		x, err := ex.evalTuple(t.X, tup, rel, inputName, line)
		if err != nil {
			return nil, err
		}
		b, err := truthy(x)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: %w", line, err)
		}
		return !b, nil
	case FuncCall:
		udf, ok := ex.ctx.Registry.UDF(t.Name)
		if !ok {
			return nil, fmt.Errorf("pig: line %d: unknown UDF %q", line, t.Name)
		}
		if udf.GroupKeyArg >= 0 && udf.Eval != nil && udf.WholeRelation {
			return nil, fmt.Errorf("pig: line %d: UDF %q cannot be both grouped and whole-relation", line, t.Name)
		}
		args := make([]Value, len(t.Args))
		for i, a := range t.Args {
			v, err := ex.evalTuple(a, tup, rel, inputName, line)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := udf.Eval(ex.ctx, args)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d: UDF %s: %w", line, t.Name, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("pig: line %d: unsupported expression %T", line, e)
	}
}

// foreignDeref resolves alias.field against a different relation — Pig's
// scalar dereference. A single-tuple relation yields the field value; a
// multi-tuple relation yields a Bag of that field.
func (ex *executor) foreignDeref(ref DottedRef, line int) (Value, error) {
	rel, err := ex.relation(ref.Alias, line)
	if err != nil {
		return nil, err
	}
	idx := rel.Schema.IndexOf(ref.Field)
	if idx < 0 {
		return nil, fmt.Errorf("pig: line %d: relation %q has no field %q (schema %s)", line, ref.Alias, ref.Field, rel.Schema)
	}
	if len(rel.Tuples) == 1 {
		return rel.Tuples[0].Fields[idx], nil
	}
	bag := make(Bag, len(rel.Tuples))
	for i, t := range rel.Tuples {
		bag[i] = NewTuple(t.Fields[idx])
	}
	return bag, nil
}
