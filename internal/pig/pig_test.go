package pig

import (
	"fmt"
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// testContext builds a context with a small cluster, a populated registry
// and an in-memory DFS.
func testContext(t *testing.T) *Context {
	t.Helper()
	reg := NewRegistry()
	// ToUpper: simple per-tuple UDF.
	reg.MustRegister(UDF{
		Name:        "ToUpper",
		GroupKeyArg: -1,
		Eval: func(_ *Context, args []Value) (Value, error) {
			s, err := AsString(args[0])
			if err != nil {
				return nil, err
			}
			return strings.ToUpper(s), nil
		},
	})
	// Explode: returns a bag of (word) tuples, exercising FLATTEN.
	reg.MustRegister(UDF{
		Name:        "Explode",
		GroupKeyArg: -1,
		Eval: func(_ *Context, args []Value) (Value, error) {
			s, err := AsString(args[0])
			if err != nil {
				return nil, err
			}
			var bag Bag
			for _, w := range strings.Fields(s) {
				bag = append(bag, NewTuple(w))
			}
			return bag, nil
		},
	})
	// ConcatGroup: grouped UDF — concatenates grouped values per key.
	reg.MustRegister(UDF{
		Name:        "ConcatGroup",
		GroupKeyArg: 1,
		ValueArg:    0,
		Eval: func(_ *Context, args []Value) (Value, error) {
			vals := args[0].([]Value)
			parts := make([]string, len(vals))
			for i, v := range vals {
				parts[i], _ = AsString(v)
			}
			key, _ := AsString(args[1])
			return NewTuple(key, strings.Join(parts, "+")), nil
		},
	})
	// CountAll: whole-relation UDF — counts tuples.
	reg.MustRegister(UDF{
		Name:          "CountAll",
		GroupKeyArg:   -1,
		WholeRelation: true,
		Eval: func(_ *Context, args []Value) (Value, error) {
			vals := args[0].([]Value)
			return Bag{NewTuple(int64(len(vals)))}, nil
		},
	})
	return &Context{
		FS:       dfs.MustNew(dfs.Config{NumDataNodes: 3, BlockSize: 64, Replication: 2}),
		Engine:   mapreduce.MustEngine(mapreduce.Cluster{Nodes: 3, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}),
		Registry: reg,
		Params:   map[string]string{},
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("A = LOAD 'x/y' USING F(1, 2.5); -- comment\nB = FOREACH A GENERATE $KMER;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
	// Spot-check a few tokens.
	if toks[0].text != "A" || toks[1].kind != tokEquals || toks[3].kind != tokString || toks[3].text != "x/y" {
		t.Fatalf("tokens %v", toks[:5])
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("A = 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexAll("A = @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lexAll("A = $ ;"); err == nil {
		t.Error("dangling $ accepted")
	}
}

func TestLexerBlockComment(t *testing.T) {
	toks, err := lexAll("/* block\ncomment */ A = B;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "A" {
		t.Fatalf("first token %v", toks[0])
	}
}

func TestParserFullPaperShapes(t *testing.T) {
	src := `
A = LOAD '$INPUT' using FastaStorage as (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN (StringGenerator(seq, readid)) as (seq:chararray, seqid:chararray);
I = GROUP B ALL;
J = FOREACH B GENERATE FLATTEN (CalculatePairwiseSimilarity(seq, I.B)) as (similaritymatrix: double);
STORE J INTO '$OUTPUT1';
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Fatalf("got %d statements", len(stmts))
	}
	load := stmts[0].(*LoadStmt)
	if load.Alias != "A" || load.Loader != "FastaStorage" || len(load.As) != 4 || load.As[2].Type != "bytearray" {
		t.Fatalf("load %+v", load)
	}
	fe := stmts[1].(*ForeachStmt)
	if !fe.Items[0].Flatten || fe.Items[0].As[1].Name != "seqid" {
		t.Fatalf("foreach %+v", fe)
	}
	fc := fe.Items[0].Expr.(FuncCall)
	if fc.Name != "StringGenerator" || len(fc.Args) != 2 {
		t.Fatalf("funcall %+v", fc)
	}
	grp := stmts[2].(*GroupStmt)
	if !grp.All || grp.Input != "B" {
		t.Fatalf("group %+v", grp)
	}
	j := stmts[3].(*ForeachStmt)
	dr := j.Items[0].Expr.(FuncCall).Args[1].(DottedRef)
	if dr.Alias != "I" || dr.Field != "B" {
		t.Fatalf("dotted %+v", dr)
	}
	st := stmts[4].(*StoreStmt)
	if st.Input != "J" || st.Path != "$OUTPUT1" {
		t.Fatalf("store %+v", st)
	}
}

func TestParserGroupBy(t *testing.T) {
	stmts, err := Parse("G = GROUP X BY name;")
	if err != nil {
		t.Fatal(err)
	}
	g := stmts[0].(*GroupStmt)
	if g.All || g.By.(FieldRef).Name != "name" {
		t.Fatalf("group %+v", g)
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"A = ;",
		"A LOAD 'x';",
		"A = LOAD missing_quotes;",
		"A = FOREACH B GENERATE ;",
		"STORE X INTO missing;",
		"A = GROUP B;",
		"A = GROUP B NEITHER;",
		"A = FOREACH B GENERATE f(;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("script %q parsed without error", src)
		}
	}
}

func TestParserNumberLiterals(t *testing.T) {
	stmts, err := Parse("A = FOREACH B GENERATE f(5, 2.75);")
	if err != nil {
		t.Fatal(err)
	}
	args := stmts[0].(*ForeachStmt).Items[0].Expr.(FuncCall).Args
	if args[0].(Literal).Value.(int64) != 5 {
		t.Fatalf("int literal %+v", args[0])
	}
	if args[1].(Literal).Value.(float64) != 2.75 {
		t.Fatalf("float literal %+v", args[1])
	}
}

func TestParserPositionalRef(t *testing.T) {
	stmts, err := Parse("A = FOREACH B GENERATE $0;")
	if err != nil {
		t.Fatal(err)
	}
	if stmts[0].(*ForeachStmt).Items[0].Expr.(PositionalRef).Index != 0 {
		t.Fatal("positional ref not parsed")
	}
}

func TestRunLoadForeachStore(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in/data.txt", []string{"hello world", "foo"})
	ctx.Params["IN"] = "/in/data.txt"
	ctx.Params["OUT"] = "/out"
	script := MustCompile(`
A = LOAD '$IN';
B = FOREACH A GENERATE ToUpper(line) AS up;
STORE B INTO '$OUT';
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Aliases["B"]
	if len(b.Tuples) != 2 || b.Tuples[0].Fields[0] != "HELLO WORLD" || b.Tuples[1].Fields[0] != "FOO" {
		t.Fatalf("relation B %+v", b.Tuples)
	}
	if b.Schema[0].Name != "up" {
		t.Fatalf("schema %v", b.Schema)
	}
	lines, err := ctx.FS.ReadLines("/out/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "HELLO WORLD" {
		t.Fatalf("stored %v", lines)
	}
	if res.Jobs != 1 || res.Virtual <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestRunFlattenBag(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in", []string{"a b c", "d"})
	script := MustCompile(`
A = LOAD '/in';
W = FOREACH A GENERATE FLATTEN(Explode(line)) AS word;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Aliases["W"]
	if len(w.Tuples) != 4 {
		t.Fatalf("tuples %+v", w.Tuples)
	}
	got := []string{}
	for _, tup := range w.Tuples {
		got = append(got, tup.Fields[0].(string))
	}
	want := "a b c d"
	if strings.Join(got, " ") != want {
		t.Fatalf("words %v", got)
	}
}

func TestRunGroupAllAndForeignDeref(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in", []string{"x", "y", "z"})
	script := MustCompile(`
A = LOAD '/in';
G = GROUP A ALL;
C = FOREACH A GENERATE FLATTEN(CountAll(line)) AS n;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Aliases["G"]
	if len(g.Tuples) != 1 {
		t.Fatalf("group tuples %+v", g.Tuples)
	}
	if g.Tuples[0].Fields[0] != "all" {
		t.Fatalf("group key %v", g.Tuples[0].Fields[0])
	}
	bag := g.Tuples[0].Fields[1].(Bag)
	if len(bag) != 3 {
		t.Fatalf("grouped bag %v", bag)
	}
	c := res.Aliases["C"]
	if len(c.Tuples) != 1 || c.Tuples[0].Fields[0].(int64) != 3 {
		t.Fatalf("count %+v", c.Tuples)
	}
}

func TestRunGroupBy(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in", []string{"a 1", "b 2", "a 3"})
	script := MustCompile(`
A = LOAD '/in';
K = FOREACH A GENERATE FLATTEN(Explode(line)) AS (tag, val);
G = GROUP K BY tag;
`)
	// Explode yields one word per tuple, so K has single-field tuples;
	// redo with a two-field generate instead.
	_ = script
	script = MustCompile(`
A = LOAD '/in';
G = GROUP A BY line;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Aliases["G"]
	if len(g.Tuples) != 3 {
		t.Fatalf("group tuples %d", len(g.Tuples))
	}
	// sorted by key: "a 1", "a 3", "b 2"
	if g.Tuples[0].Fields[0] != "a 1" {
		t.Fatalf("first group %v", g.Tuples[0].Fields[0])
	}
}

func TestRunGroupedUDF(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in", []string{"k1 a", "k2 b", "k1 c"})
	// Build a two-field relation first via a per-tuple UDF.
	ctx.Registry.MustRegister(UDF{
		Name:        "SplitPair",
		GroupKeyArg: -1,
		Eval: func(_ *Context, args []Value) (Value, error) {
			s, _ := AsString(args[0])
			parts := strings.Fields(s)
			return NewTuple(parts[1], parts[0]), nil
		},
	})
	script := MustCompile(`
A = LOAD '/in';
P = FOREACH A GENERATE FLATTEN(SplitPair(line)) AS (val, key);
C = FOREACH P GENERATE FLATTEN(ConcatGroup(val, key)) AS (key2, joined);
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Aliases["C"]
	if len(c.Tuples) != 2 {
		t.Fatalf("grouped output %+v", c.Tuples)
	}
	byKey := map[string]string{}
	for _, tup := range c.Tuples {
		byKey[tup.Fields[0].(string)] = tup.Fields[1].(string)
	}
	if byKey["k1"] != "a+c" || byKey["k2"] != "b" {
		t.Fatalf("grouped values %v", byKey)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/in", []string{"x"})
	cases := map[string]string{
		"unknown alias":   "B = FOREACH MISSING GENERATE line;",
		"unknown UDF":     "A = LOAD '/in'; B = FOREACH A GENERATE NoSuchUDF(line);",
		"unknown field":   "A = LOAD '/in'; B = FOREACH A GENERATE nosuchfield;",
		"unknown loader":  "A = LOAD '/in' USING NoLoader;",
		"missing param":   "A = LOAD '$NOPE';",
		"missing file":    "A = LOAD '/does/not/exist';",
		"unknown foreign": "A = LOAD '/in'; B = FOREACH A GENERATE Q.field;",
	}
	for name, src := range cases {
		script, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: compile error %v", name, err)
		}
		if _, err := script.Run(ctx); err == nil {
			t.Errorf("%s: script ran without error", name)
		}
	}
}

func TestRunContextValidation(t *testing.T) {
	script := MustCompile("A = LOAD '/in';")
	if _, err := script.Run(&Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestParamSubstitutionInsidePath(t *testing.T) {
	ctx := testContext(t)
	ctx.FS.WriteLines("/data/sample1.txt", []string{"x"})
	ctx.Params["NAME"] = "sample1"
	script := MustCompile("A = LOAD '/data/$NAME.txt';")
	if _, err := script.Run(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"abc":       "abc",
		"42":        int64(42),
		"3.5":       3.5,
		"(a,1)":     NewTuple("a", int64(1)),
		"{(a)}":     Bag{NewTuple("a")},
		"bytes":     []byte("bytes"),
		"7":         7,
		"":          nil,
		"{(a),(b)}": Bag{NewTuple("a"), NewTuple("b")},
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCoercions(t *testing.T) {
	if n, err := AsInt("42"); err != nil || n != 42 {
		t.Fatalf("AsInt string: %v %v", n, err)
	}
	if n, err := AsInt(int64(7)); err != nil || n != 7 {
		t.Fatalf("AsInt int64: %v %v", n, err)
	}
	if _, err := AsInt(Bag{}); err == nil {
		t.Fatal("AsInt of bag accepted")
	}
	if f, err := AsFloat("0.95"); err != nil || f != 0.95 {
		t.Fatalf("AsFloat: %v %v", f, err)
	}
	if _, err := AsFloat(NewTuple()); err == nil {
		t.Fatal("AsFloat of tuple accepted")
	}
	if s, err := AsString([]byte("x")); err != nil || s != "x" {
		t.Fatalf("AsString: %v %v", s, err)
	}
	if _, err := AsString(Bag{}); err == nil {
		t.Fatal("AsString of bag accepted")
	}
}

func TestSchemaIndexOfAndString(t *testing.T) {
	s := Schema{{Name: "a", Type: "int"}, {Name: "b"}}
	if s.IndexOf("b") != 1 || s.IndexOf("z") != -1 {
		t.Fatal("IndexOf broken")
	}
	if s.String() != "(a:int, b)" {
		t.Fatalf("schema string %q", s.String())
	}
}

func TestRegistryDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	u := UDF{Name: "X", GroupKeyArg: -1, Eval: func(*Context, []Value) (Value, error) { return nil, nil }}
	if err := r.Register(u); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(u); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(UDF{Name: ""}); err == nil {
		t.Fatal("invalid UDF accepted")
	}
}

func TestVirtualTimeAccumulatesAcrossJobs(t *testing.T) {
	ctx := testContext(t)
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("line%d", i))
	}
	ctx.FS.WriteLines("/in", lines)
	one := MustCompile("A = LOAD '/in'; B = FOREACH A GENERATE ToUpper(line);")
	two := MustCompile("A = LOAD '/in'; B = FOREACH A GENERATE ToUpper(line); C = FOREACH B GENERATE ToUpper(f0);")
	r1, err := one.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := two.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Virtual <= r1.Virtual {
		t.Fatalf("two jobs %v not slower than one %v", r2.Virtual, r1.Virtual)
	}
	if r2.Jobs != 2 {
		t.Fatalf("jobs %d", r2.Jobs)
	}
}
