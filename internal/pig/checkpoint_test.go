package pig

import (
	"errors"
	"reflect"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/faults"
)

const storeScript = `
A = LOAD '$IN';
B = FOREACH A GENERATE ToUpper(line) AS up;
STORE B INTO '$OUT';
`

func storeContext(t *testing.T, journal *checkpoint.Journal, resume bool) *Context {
	t.Helper()
	ctx := testContext(t)
	ctx.FS.WriteLines("/in/data.txt", []string{"hello world", "foo"})
	ctx.Params["IN"] = "/in/data.txt"
	ctx.Params["OUT"] = "/out"
	ctx.Checkpoint = journal
	ctx.Resume = resume
	return ctx
}

func dirJournal(t *testing.T, dir string) *checkpoint.Journal {
	t.Helper()
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := checkpoint.Open(store, "/")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestStoreGoesThroughCommitProtocol(t *testing.T) {
	ctx := storeContext(t, nil, false)
	if _, err := MustCompile(storeScript).Run(ctx); err != nil {
		t.Fatal(err)
	}
	got := ctx.FS.ListOutputs("/out")
	if len(got) != 1 || got[0] != "/out/part-00000" {
		t.Fatalf("outputs = %v", got)
	}
	if !ctx.FS.Exists("/out/_SUCCESS") {
		t.Fatal("STORE did not finalize with _SUCCESS")
	}
}

func TestStoreDriverCrashAndResume(t *testing.T) {
	dir := t.TempDir()

	// First run: journal the STORE, crash right after its commit.
	ctx := storeContext(t, dirJournal(t, dir), false)
	ctx.Engine.Faults = faults.MustNew(faults.Plan{
		DriverCrashes: []faults.DriverCrash{{AfterStage: "store:/out"}},
	})
	_, err := MustCompile(storeScript).Run(ctx)
	var dce *faults.DriverCrashError
	if !errors.As(err, &dce) || dce.Stage != "store:/out" {
		t.Fatalf("planned crash: got %v", err)
	}

	// Reference bytes from a fault-free run on a fresh stack.
	ref := storeContext(t, nil, false)
	if _, err := MustCompile(storeScript).Run(ref); err != nil {
		t.Fatal(err)
	}
	want, err := ref.FS.ReadFile("/out/part-00000")
	if err != nil {
		t.Fatal(err)
	}

	// Resumed run (fresh journal over the surviving directory): the STORE
	// is restored from the checkpoint, bit-identical, and reported.
	ctx2 := storeContext(t, dirJournal(t, dir), true)
	res, err := MustCompile(storeScript).Run(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Restored, []string{"/out"}) {
		t.Fatalf("Restored = %v", res.Restored)
	}
	got, err := ctx2.FS.ReadFile("/out/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed STORE bytes differ: %q vs %q", got, want)
	}
}

func TestStoreResumeRejectsChangedInput(t *testing.T) {
	dir := t.TempDir()
	ctx := storeContext(t, dirJournal(t, dir), false)
	if _, err := MustCompile(storeScript).Run(ctx); err != nil {
		t.Fatal(err)
	}

	ctx2 := storeContext(t, dirJournal(t, dir), true)
	ctx2.FS.WriteLines("/in/data.txt", []string{"different", "content"})
	_, err := MustCompile(storeScript).Run(ctx2)
	var im *checkpoint.InputMismatchError
	if !errors.As(err, &im) || im.Stage != "store:/out" {
		t.Fatalf("want InputMismatchError for store:/out, got %v", err)
	}
}

func TestStoreOnDFSBackedJournal(t *testing.T) {
	// The journal can live on the simulated DFS itself (same-process
	// resume), exercising the structural Store implementation.
	ckfs := dfs.MustNew(dfs.Config{NumDataNodes: 2, BlockSize: 64, Replication: 1})
	j, err := checkpoint.Open(ckfs, "/ck")
	if err != nil {
		t.Fatal(err)
	}
	ctx := storeContext(t, j, false)
	if _, err := MustCompile(storeScript).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if j.Empty() || j.Stages()[0] != "store:/out" {
		t.Fatalf("journal = %v", j.Stages())
	}
}
