package pig

import (
	"fmt"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// EvalFunc is the Go implementation of a UDF.
type EvalFunc func(ctx *Context, args []Value) (Value, error)

// LoadFunc materializes a relation from a DFS path (a Pig storage UDF such
// as the paper's FastaStorage).
type LoadFunc func(ctx *Context, path string, args []Value) (*Relation, error)

// UDF describes one user-defined function.
type UDF struct {
	Name string
	// Eval is invoked with evaluated argument values. For grouped UDFs,
	// args[ValueArg] is a []Value with every grouped value and
	// args[GroupKeyArg] is the group key. For whole-relation UDFs, every
	// field-reference argument arrives as a []Value across all tuples.
	Eval EvalFunc
	// GroupKeyArg >= 0 marks an aggregating UDF: the executor runs a full
	// MapReduce job grouping the input relation by this argument.
	GroupKeyArg int
	// ValueArg is the argument collected per group (required when
	// GroupKeyArg >= 0).
	ValueArg int
	// WholeRelation marks a UDF evaluated once over the entire relation
	// (a single-reducer job), e.g. hierarchical clustering over all rows.
	WholeRelation bool
	// CostFactor scales the simulated per-record compute cost of jobs
	// that invoke this UDF (1.0 when zero).
	CostFactor float64
}

// Registry holds UDFs and loaders by name.
type Registry struct {
	udfs    map[string]*UDF
	loaders map[string]LoadFunc
}

// NewRegistry returns an empty registry with the default line loader.
func NewRegistry() *Registry {
	r := &Registry{udfs: make(map[string]*UDF), loaders: make(map[string]LoadFunc)}
	r.RegisterLoader("TextLoader", textLoader)
	return r
}

// Register adds a UDF. A GroupKeyArg defaults to -1 (tuple-at-a-time).
func (r *Registry) Register(u UDF) error {
	if u.Name == "" || u.Eval == nil {
		return fmt.Errorf("pig: UDF must have a name and an Eval function")
	}
	if _, dup := r.udfs[u.Name]; dup {
		return fmt.Errorf("pig: UDF %q already registered", u.Name)
	}
	cp := u
	r.udfs[u.Name] = &cp
	return nil
}

// MustRegister is Register panicking on error.
func (r *Registry) MustRegister(u UDF) {
	if err := r.Register(u); err != nil {
		panic(err)
	}
}

// RegisterLoader adds a storage loader.
func (r *Registry) RegisterLoader(name string, fn LoadFunc) {
	r.loaders[name] = fn
}

// UDF looks up a UDF by name.
func (r *Registry) UDF(name string) (*UDF, bool) {
	u, ok := r.udfs[name]
	return u, ok
}

// Loader looks up a loader by name; empty name yields the default.
func (r *Registry) Loader(name string) (LoadFunc, bool) {
	if name == "" {
		name = "TextLoader"
	}
	fn, ok := r.loaders[name]
	return fn, ok
}

// textLoader reads newline-separated records as single-field tuples.
func textLoader(ctx *Context, path string, _ []Value) (*Relation, error) {
	lines, err := ctx.FS.ReadLines(path)
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: Schema{{Name: "line", Type: "chararray"}}}
	for _, l := range lines {
		rel.Tuples = append(rel.Tuples, NewTuple(l))
	}
	return rel, nil
}

// Context carries the runtime environment of a script execution.
type Context struct {
	FS       *dfs.FileSystem
	Engine   *mapreduce.Engine
	Registry *Registry
	// Params maps $NAME parameters to replacement text.
	Params map[string]string
	// Seed is available to UDFs needing deterministic randomness.
	Seed int64
	// ShuffleBufferBytes caps each map task's sort buffer on every job the
	// script launches, routing them onto the engine's external
	// spill-and-merge shuffle (see mapreduce.Job.ShuffleBufferBytes).
	// 0 keeps the in-memory shuffle; script output is bit-identical
	// either way.
	ShuffleBufferBytes int
	// Checkpoint, when non-nil, journals every STORE's committed bytes
	// under a "store:<path>" manifest entry.
	Checkpoint *checkpoint.Journal
	// Resume validates each STORE against the journal before writing:
	// a matching entry restores the checkpointed bytes, a mismatched one
	// is a typed error (requires Checkpoint).
	Resume bool
	// StoreBits selects the signature backing of the clustering UDFs:
	// 0 (the default) borrows rows from a sharded full-width signature
	// store, -1 uses legacy per-call slices, 1..16 packs signatures to b
	// bits per slot (lossy b-bit minwise estimation). Script output is
	// bit-identical for 0 and -1.
	StoreBits int
}

// Param returns a parameter value or an error naming the hole.
func (c *Context) Param(name string) (string, error) {
	if v, ok := c.Params[name]; ok {
		return v, nil
	}
	return "", fmt.Errorf("pig: undefined parameter $%s", name)
}

// RunResult reports one script execution.
type RunResult struct {
	// Aliases holds every materialized relation by name.
	Aliases map[string]*Relation
	// Stored maps STORE output paths to the relation written there.
	Stored map[string]string
	// Dumps holds the rendered tuples of every DUMPed alias.
	Dumps map[string][]string
	// Virtual is the summed modelled cluster time across all jobs.
	Virtual time.Duration
	// Real is the measured execution time.
	Real time.Duration
	// Jobs is the number of MapReduce jobs launched.
	Jobs int
	// Restored lists STORE paths whose bytes were validated against and
	// restored from the checkpoint journal (nil when not resuming).
	Restored []string
}
