// Package pig implements a miniature Pig Latin: a lexer, parser and
// executor for the dialect the paper's Algorithm 3 is written in —
// LOAD ... USING loader AS (schema), FOREACH ... GENERATE FLATTEN(expr) AS
// (schema), GROUP ... ALL / BY, and STORE ... INTO. Relations execute as
// MapReduce jobs on the simulated cluster, with user-defined functions
// (UDFs) supplied through a registry, exactly as the paper layers its
// clustering UDFs over Hadoop via Pig.
package pig

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is any Pig data value: string, int64, float64, []byte, Tuple, Bag,
// or an opaque Go value produced by a UDF (e.g. a minhash signature).
type Value any

// Tuple is an ordered list of fields.
type Tuple struct {
	Fields []Value
}

// NewTuple builds a tuple from values.
func NewTuple(fields ...Value) Tuple { return Tuple{Fields: fields} }

// Bag is an unordered collection of tuples (order is preserved by the
// executor for determinism).
type Bag []Tuple

// FieldSchema names and types one tuple field.
type FieldSchema struct {
	Name string
	Type string // chararray, int, long, double, bytearray, bag — advisory
}

// Schema is an ordered field list.
type Schema []FieldSchema

// IndexOf returns the position of the named field or -1.
func (s Schema) IndexOf(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema as "(a:chararray, b:long)".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		if f.Type == "" {
			parts[i] = f.Name
		} else {
			parts[i] = f.Name + ":" + f.Type
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a materialized alias: a schema plus tuples.
type Relation struct {
	Schema Schema
	Tuples Bag
}

// FormatValue renders a value in Pig's textual output style.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case []byte:
		return string(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case Tuple:
		parts := make([]string, len(x.Fields))
		for i, f := range x.Fields {
			parts[i] = FormatValue(f)
		}
		return "(" + strings.Join(parts, ",") + ")"
	case Bag:
		parts := make([]string, len(x))
		for i, t := range x {
			parts[i] = FormatValue(t)
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		return fmt.Sprint(x)
	}
}

// AsInt coerces a numeric or numeric-string value to int.
func AsInt(v Value) (int, error) {
	switch x := v.(type) {
	case int:
		return x, nil
	case int64:
		return int(x), nil
	case float64:
		return int(x), nil
	case string:
		n, err := strconv.Atoi(strings.TrimSpace(x))
		if err != nil {
			return 0, fmt.Errorf("pig: cannot convert %q to int", x)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("pig: cannot convert %T to int", v)
	}
}

// AsFloat coerces a numeric or numeric-string value to float64.
func AsFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("pig: cannot convert %q to float", x)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("pig: cannot convert %T to float", v)
	}
}

// AsString coerces a scalar value to string.
func AsString(v Value) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case []byte:
		return string(x), nil
	case int, int64, float64:
		return FormatValue(x), nil
	default:
		return "", fmt.Errorf("pig: cannot convert %T to string", v)
	}
}
