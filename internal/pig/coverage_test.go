package pig

import (
	"strings"
	"testing"
)

// Targeted tests for evaluation edge paths.

func TestEvalTupleErrorPaths(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"x y"})
	cases := map[string]string{
		"positional out of range": "A = LOAD '/in'; B = FOREACH A GENERATE $7;",
		"tuple too short":         "A = LOAD '/in'; B = FOREACH A GENERATE missing;",
		"udf error surfaces":      "A = LOAD '/in'; B = FOREACH A GENERATE SUM(line);",
		"filter non-boolean":      "A = LOAD '/in'; B = FILTER A BY TOKENIZE(line);",
		"order eval error":        "A = LOAD '/in'; B = ORDER A BY nosuch;",
		"group by eval error":     "A = LOAD '/in'; B = GROUP A BY nosuch;",
	}
	for name, src := range cases {
		script, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if _, err := script.Run(ctx); err == nil {
			t.Errorf("%s: ran without error", name)
		}
	}
}

func TestForeignDerefMultiTupleBecomesBag(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/a", []string{"p", "q", "r"})
	ctx.FS.WriteLines("/b", []string{"z"})
	// B references multi-tuple relation A by field: yields a bag of that
	// field across A's tuples.
	script := MustCompile(`
A = LOAD '/a';
B = LOAD '/b';
C = FOREACH B GENERATE SIZE(A.line);
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Aliases["C"].Tuples[0].Fields[0].(int64); got != 3 {
		t.Fatalf("bag size %d, want 3", got)
	}
}

func TestForeignDerefUnknownField(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/a", []string{"p"})
	ctx.FS.WriteLines("/b", []string{"z"})
	script := MustCompile("A = LOAD '/a'; B = LOAD '/b'; C = FOREACH B GENERATE A.nosuch;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("unknown foreign field accepted")
	}
}

func TestEvalConstParamAndErrors(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"1", "2", "3"})
	ctx.Params["N"] = "2"
	script := MustCompile("A = LOAD '/in'; B = LIMIT A $N;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["B"].Tuples) != 2 {
		t.Fatalf("param limit %d", len(res.Aliases["B"].Tuples))
	}
	// Missing param in expression position.
	script = MustCompile("A = LOAD '/in'; B = LIMIT A $MISSING;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("missing param accepted")
	}
	// Non-constant expression where constant required.
	script = MustCompile("A = LOAD '/in'; B = LIMIT A line;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("non-constant limit accepted")
	}
}

func TestBuiltinSizeVariants(t *testing.T) {
	if v, err := builtinSize(nil, []Value{Bag{NewTuple("a"), NewTuple("b")}}); err != nil || v.(int64) != 2 {
		t.Fatalf("SIZE(bag) = %v, %v", v, err)
	}
	if v, err := builtinSize(nil, []Value{NewTuple("a", "b", "c")}); err != nil || v.(int64) != 3 {
		t.Fatalf("SIZE(tuple) = %v, %v", v, err)
	}
	if v, err := builtinSize(nil, []Value{[]byte("abcd")}); err != nil || v.(int64) != 4 {
		t.Fatalf("SIZE(bytes) = %v, %v", v, err)
	}
	if _, err := builtinLower(nil, []Value{Bag{}}); err == nil {
		t.Fatal("LOWER(bag) accepted")
	}
}

func TestTokenStrings(t *testing.T) {
	toks, err := lexAll("A = '$x' $P 5 ;")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, tok := range toks {
		joined += tok.String() + " "
	}
	for _, frag := range []string{"A", "=", "'$x'", "$P", "5", ";", "end of input"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("token strings %q missing %q", joined, frag)
		}
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := NewRegistry()
	u := UDF{Name: "Dup", GroupKeyArg: -1, Eval: func(*Context, []Value) (Value, error) { return nil, nil }}
	r.MustRegister(u)
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister(u)
}

func TestWholeRelationUDFConstraints(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"x", "y"})
	// A whole-relation UDF must be the only GENERATE item.
	script := MustCompile("A = LOAD '/in'; B = FOREACH A GENERATE CountAll(line), line;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("whole-relation UDF with sibling items accepted")
	}
	// Grouped UDF with too few arguments.
	script = MustCompile("A = LOAD '/in'; B = FOREACH A GENERATE ConcatGroup(line);")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("grouped UDF with one arg accepted")
	}
}

func TestCompareValuesStringOps(t *testing.T) {
	for _, c := range []struct {
		op   string
		l, r string
		want bool
	}{
		{">", "b", "a", true},
		{">=", "a", "a", true},
		{"!=", "a", "b", true},
		{"<=", "a", "b", true},
	} {
		got, err := compareValues(c.op, c.l, c.r)
		if err != nil || got != c.want {
			t.Errorf("%q %s %q = %v, %v", c.l, c.op, c.r, got, err)
		}
	}
	if _, err := compareValues("~", "a", "b"); err == nil {
		t.Error("unknown string operator accepted")
	}
}
