package pig

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse tokenizes and parses a Pig script into statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(tokEOF) {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("pig: empty script")
	}
	return stmts, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

// atKeyword matches a case-insensitive keyword identifier.
func (p *parser) atKeyword(kw string) bool {
	return p.at(tokIdent) && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		t := p.cur()
		return t, fmt.Errorf("pig: line %d:%d: expected %s, got %s", t.line, t.col, what, t)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		t := p.cur()
		return fmt.Errorf("pig: line %d:%d: expected %s, got %s", t.line, t.col, strings.ToUpper(kw), t)
	}
	p.advance()
	return nil
}

// statement parses one semicolon-terminated statement.
func (p *parser) statement() (Stmt, error) {
	if p.atKeyword("store") {
		return p.storeStmt()
	}
	if p.atKeyword("dump") {
		return p.dumpStmt()
	}
	if p.atKeyword("describe") {
		return p.describeStmt()
	}
	// alias = LOAD | FOREACH | GROUP | FILTER | LIMIT | DISTINCT | UNION | ORDER ...
	aliasTok, err := p.expect(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals, "'='"); err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("load"):
		return p.loadStmt(aliasTok)
	case p.atKeyword("foreach"):
		return p.foreachStmt(aliasTok)
	case p.atKeyword("group"):
		return p.groupStmt(aliasTok)
	case p.atKeyword("filter"):
		return p.filterStmt(aliasTok)
	case p.atKeyword("limit"):
		return p.limitStmt(aliasTok)
	case p.atKeyword("distinct"):
		return p.distinctStmt(aliasTok)
	case p.atKeyword("union"):
		return p.unionStmt(aliasTok)
	case p.atKeyword("order"):
		return p.orderStmt(aliasTok)
	case p.atKeyword("join"):
		return p.joinStmt(aliasTok)
	case p.atKeyword("sample"):
		return p.sampleStmt(aliasTok)
	default:
		t := p.cur()
		return nil, fmt.Errorf("pig: line %d:%d: expected a relational operator (LOAD, FOREACH, GROUP, FILTER, LIMIT, DISTINCT, UNION, ORDER, JOIN), got %s", t.line, t.col, t)
	}
}

// filterStmt parses: FILTER input BY condition;
func (p *parser) filterStmt(alias token) (Stmt, error) {
	p.advance() // FILTER
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	cond, err := p.condition()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &FilterStmt{Alias: alias.text, Input: inputTok.text, Cond: cond, Line: alias.line}, nil
}

// limitStmt parses: LIMIT input n;
func (p *parser) limitStmt(alias token) (Stmt, error) {
	p.advance() // LIMIT
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	n, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &LimitStmt{Alias: alias.text, Input: inputTok.text, N: n, Line: alias.line}, nil
}

// distinctStmt parses: DISTINCT input;
func (p *parser) distinctStmt(alias token) (Stmt, error) {
	p.advance() // DISTINCT
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &DistinctStmt{Alias: alias.text, Input: inputTok.text, Line: alias.line}, nil
}

// unionStmt parses: UNION a, b {, c};
func (p *parser) unionStmt(alias token) (Stmt, error) {
	p.advance() // UNION
	st := &UnionStmt{Alias: alias.text, Line: alias.line}
	for {
		inputTok, err := p.expect(tokIdent, "input alias")
		if err != nil {
			return nil, err
		}
		st.Inputs = append(st.Inputs, inputTok.text)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if len(st.Inputs) < 2 {
		return nil, fmt.Errorf("pig: line %d: UNION needs at least two inputs", alias.line)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// orderStmt parses: ORDER input BY expr [DESC|ASC];
func (p *parser) orderStmt(alias token) (Stmt, error) {
	p.advance() // ORDER
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return nil, err
	}
	by, err := p.expression()
	if err != nil {
		return nil, err
	}
	st := &OrderStmt{Alias: alias.text, Input: inputTok.text, By: by, Line: alias.line}
	if p.atKeyword("desc") {
		p.advance()
		st.Desc = true
	} else if p.atKeyword("asc") {
		p.advance()
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// joinStmt parses: JOIN a BY expr, b BY expr {, c BY expr};
func (p *parser) joinStmt(alias token) (Stmt, error) {
	p.advance() // JOIN
	st := &JoinStmt{Alias: alias.text, Line: alias.line}
	for {
		inputTok, err := p.expect(tokIdent, "input alias")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		key, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Inputs = append(st.Inputs, inputTok.text)
		st.Keys = append(st.Keys, key)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if len(st.Inputs) < 2 {
		return nil, fmt.Errorf("pig: line %d: JOIN needs at least two inputs", alias.line)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// describeStmt parses: DESCRIBE alias;
func (p *parser) describeStmt() (Stmt, error) {
	startTok := p.advance() // DESCRIBE
	inputTok, err := p.expect(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &DescribeStmt{Input: inputTok.text, Line: startTok.line}, nil
}

// sampleStmt parses: SAMPLE input fraction;
func (p *parser) sampleStmt(alias token) (Stmt, error) {
	p.advance() // SAMPLE
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	frac, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &SampleStmt{Alias: alias.text, Input: inputTok.text, Fraction: frac, Line: alias.line}, nil
}

// dumpStmt parses: DUMP alias;
func (p *parser) dumpStmt() (Stmt, error) {
	startTok := p.advance() // DUMP
	inputTok, err := p.expect(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &DumpStmt{Input: inputTok.text, Line: startTok.line}, nil
}

// condition parses a boolean expression: OR over AND over NOT over
// comparisons.
func (p *parser) condition() (Expr, error) {
	left, err := p.andCondition()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		right, err := p.andCondition()
		if err != nil {
			return nil, err
		}
		left = Logic{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andCondition() (Expr, error) {
	left, err := p.notCondition()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.notCondition()
		if err != nil {
			return nil, err
		}
		left = Logic{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notCondition() (Expr, error) {
	if p.atKeyword("not") {
		p.advance()
		x, err := p.notCondition()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	if p.at(tokLParen) {
		// Parenthesized sub-condition.
		save := p.pos
		p.advance()
		inner, err := p.condition()
		if err == nil && p.at(tokRParen) {
			p.advance()
			// A parenthesized condition not followed by a comparison
			// operator is complete; otherwise fall through to comparison.
			if !p.atComparison() {
				return inner, nil
			}
		}
		p.pos = save
	}
	return p.comparison()
}

// comparison parses: expr [op expr].
func (p *parser) comparison() (Expr, error) {
	left, err := p.expression()
	if err != nil {
		return nil, err
	}
	if !p.atComparison() {
		return left, nil // bare boolean expression (e.g. a UDF call)
	}
	opTok := p.advance()
	right, err := p.expression()
	if err != nil {
		return nil, err
	}
	return Compare{Op: opTok.text, L: left, R: right}, nil
}

// atComparison reports whether the cursor sits on a comparison operator.
func (p *parser) atComparison() bool {
	switch p.cur().kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return true
	}
	return false
}

// loadStmt parses: LOAD 'path' [USING Loader[(args)]] [AS (schema)];
func (p *parser) loadStmt(alias token) (Stmt, error) {
	p.advance() // LOAD
	pathTok, err := p.expect(tokString, "quoted path")
	if err != nil {
		return nil, err
	}
	st := &LoadStmt{Alias: alias.text, Path: pathTok.text, Line: alias.line}
	if p.atKeyword("using") {
		p.advance()
		nameTok, err := p.expect(tokIdent, "loader name")
		if err != nil {
			return nil, err
		}
		st.Loader = nameTok.text
		if p.at(tokLParen) {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			st.Args = args
		}
	}
	if p.atKeyword("as") {
		p.advance()
		schema, err := p.schema()
		if err != nil {
			return nil, err
		}
		st.As = schema
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// foreachStmt parses: FOREACH input GENERATE item {, item};
func (p *parser) foreachStmt(alias token) (Stmt, error) {
	p.advance() // FOREACH
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("generate"); err != nil {
		return nil, err
	}
	st := &ForeachStmt{Alias: alias.text, Input: inputTok.text, Line: alias.line}
	for {
		item, err := p.genItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// genItem parses: [FLATTEN(] expr [)] [AS (schema) | AS name[:type]]
func (p *parser) genItem() (GenItem, error) {
	var item GenItem
	if p.atKeyword("flatten") {
		p.advance()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return item, err
		}
		e, err := p.expression()
		if err != nil {
			return item, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return item, err
		}
		item.Flatten = true
		item.Expr = e
	} else {
		e, err := p.expression()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.atKeyword("as") {
		p.advance()
		if p.at(tokLParen) {
			schema, err := p.schema()
			if err != nil {
				return item, err
			}
			item.As = schema
		} else {
			f, err := p.schemaField()
			if err != nil {
				return item, err
			}
			item.As = Schema{f}
		}
	}
	return item, nil
}

// groupStmt parses: GROUP input ALL; or GROUP input BY expr;
func (p *parser) groupStmt(alias token) (Stmt, error) {
	p.advance() // GROUP
	inputTok, err := p.expect(tokIdent, "input alias")
	if err != nil {
		return nil, err
	}
	st := &GroupStmt{Alias: alias.text, Input: inputTok.text, Line: alias.line}
	switch {
	case p.atKeyword("all"):
		p.advance()
		st.All = true
	case p.atKeyword("by"):
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.By = e
	default:
		t := p.cur()
		return nil, fmt.Errorf("pig: line %d:%d: expected ALL or BY, got %s", t.line, t.col, t)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return st, nil
}

// storeStmt parses: STORE alias INTO 'path';
func (p *parser) storeStmt() (Stmt, error) {
	startTok := p.advance() // STORE
	inputTok, err := p.expect(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	pathTok, err := p.expect(tokString, "quoted path")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &StoreStmt{Input: inputTok.text, Path: pathTok.text, Line: startTok.line}, nil
}

// expression parses a primary expression: literal, param, field, dotted
// reference or function call.
func (p *parser) expression() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("pig: line %d:%d: bad number %q", t.line, t.col, t.text)
			}
			return Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pig: line %d:%d: bad number %q", t.line, t.col, t.text)
		}
		return Literal{Value: n}, nil
	case tokString:
		p.advance()
		return Literal{Value: t.text}, nil
	case tokParam:
		p.advance()
		if n, err := strconv.Atoi(t.text); err == nil {
			return PositionalRef{Index: n}, nil
		}
		return ParamRef{Name: t.text}, nil
	case tokIdent:
		p.advance()
		name := t.text
		if p.at(tokLParen) {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return FuncCall{Name: name, Args: args}, nil
		}
		if p.at(tokDot) {
			p.advance()
			fieldTok, err := p.expect(tokIdent, "field name after '.'")
			if err != nil {
				return nil, err
			}
			return DottedRef{Alias: name, Field: fieldTok.text}, nil
		}
		return FieldRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("pig: line %d:%d: unexpected %s in expression", t.line, t.col, t)
	}
}

// argList parses: ( expr {, expr} ) — possibly empty.
func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	if p.at(tokRParen) {
		p.advance()
		return args, nil
	}
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return args, nil
}

// schema parses: ( field {, field} )
func (p *parser) schema() (Schema, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var s Schema
	for {
		f, err := p.schemaField()
		if err != nil {
			return nil, err
		}
		s = append(s, f)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return s, nil
}

// schemaField parses: name[:type]
func (p *parser) schemaField() (FieldSchema, error) {
	nameTok, err := p.expect(tokIdent, "field name")
	if err != nil {
		return FieldSchema{}, err
	}
	f := FieldSchema{Name: nameTok.text}
	if p.at(tokColon) {
		p.advance()
		typeTok, err := p.expect(tokIdent, "field type")
		if err != nil {
			return FieldSchema{}, err
		}
		f.Type = strings.ToLower(typeTok.text)
	}
	return f, nil
}
