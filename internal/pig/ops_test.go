package pig

import (
	"testing"
	"testing/quick"
)

// opsContext is a context with builtins registered.
func opsContext(t *testing.T) *Context {
	t.Helper()
	ctx := testContext(t)
	if err := RegisterBuiltins(ctx.Registry); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestFilterByComparison(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"aa", "bbbb", "cccccc", "d"})
	script := MustCompile(`
A = LOAD '/in';
B = FILTER A BY SIZE(line) >= 4;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Aliases["B"]
	if len(b.Tuples) != 2 || b.Tuples[0].Fields[0] != "bbbb" || b.Tuples[1].Fields[0] != "cccccc" {
		t.Fatalf("filtered %+v", b.Tuples)
	}
	if res.Jobs != 1 {
		t.Fatalf("jobs %d", res.Jobs)
	}
}

func TestFilterStringEquality(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"keep", "drop", "keep"})
	script := MustCompile("A = LOAD '/in'; B = FILTER A BY line == 'keep';")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["B"].Tuples) != 2 {
		t.Fatalf("filtered %+v", res.Aliases["B"].Tuples)
	}
}

func TestFilterLogicAndNot(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"ab", "abcd", "abcdef", "x"})
	script := MustCompile(`
A = LOAD '/in';
B = FILTER A BY SIZE(line) >= 2 AND NOT SIZE(line) == 4;
C = FILTER A BY SIZE(line) == 1 OR SIZE(line) == 6;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Aliases["B"].Tuples); got != 2 { // ab, abcdef
		t.Fatalf("B has %d tuples", got)
	}
	if got := len(res.Aliases["C"].Tuples); got != 2 { // x, abcdef
		t.Fatalf("C has %d tuples", got)
	}
}

func TestFilterParenthesizedCondition(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"a", "bb", "ccc"})
	script := MustCompile("A = LOAD '/in'; B = FILTER A BY (SIZE(line) == 1 OR SIZE(line) == 3) AND NOT line == 'a';")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Aliases["B"].Tuples); got != 1 {
		t.Fatalf("B has %d tuples: %+v", got, res.Aliases["B"].Tuples)
	}
}

func TestLimit(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"1", "2", "3", "4", "5"})
	script := MustCompile("A = LOAD '/in'; B = LIMIT A 3; C = LIMIT A 99;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["B"].Tuples) != 3 {
		t.Fatalf("limit %d", len(res.Aliases["B"].Tuples))
	}
	if len(res.Aliases["C"].Tuples) != 5 {
		t.Fatalf("over-limit %d", len(res.Aliases["C"].Tuples))
	}
}

func TestLimitValidation(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"1"})
	script := MustCompile("A = LOAD '/in'; B = LIMIT A 'x';")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("non-numeric limit accepted")
	}
}

func TestDistinct(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"b", "a", "b", "a", "c"})
	script := MustCompile("A = LOAD '/in'; B = DISTINCT A;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Aliases["B"]
	if len(b.Tuples) != 3 {
		t.Fatalf("distinct %+v", b.Tuples)
	}
	// Output sorted by rendered key.
	if b.Tuples[0].Fields[0] != "a" || b.Tuples[2].Fields[0] != "c" {
		t.Fatalf("distinct order %+v", b.Tuples)
	}
	if res.Jobs != 1 {
		t.Fatalf("jobs %d", res.Jobs)
	}
}

func TestUnion(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/x", []string{"1", "2"})
	ctx.FS.WriteLines("/y", []string{"3"})
	script := MustCompile("A = LOAD '/x'; B = LOAD '/y'; U = UNION A, B;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["U"].Tuples) != 3 {
		t.Fatalf("union %+v", res.Aliases["U"].Tuples)
	}
}

func TestUnionArityMismatch(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/x", []string{"1 2"})
	ctx.FS.WriteLines("/y", []string{"3"})
	script := MustCompile(`
A = LOAD '/x';
P = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS (u, v);
B = LOAD '/y';
U = UNION P, B;
`)
	// P has... TOKENIZE yields single-field tuples, flatten gives one
	// field; AS (u, v) names two. Instead build a two-field relation via
	// Explode-style generation below.
	_ = script
	script = MustCompile(`
A = LOAD '/x';
P = FOREACH A GENERATE line AS l1, line AS l2;
B = LOAD '/y';
U = UNION P, B;
`)
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestOrderByNumericAndDesc(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"banana", "kiwi", "apricot"})
	script := MustCompile(`
A = LOAD '/in';
ByLen  = ORDER A BY SIZE(line);
ByLenD = ORDER A BY SIZE(line) DESC;
ByStr  = ORDER A BY line ASC;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	first := func(rel *Relation, i int) string { return rel.Tuples[i].Fields[0].(string) }
	if first(res.Aliases["ByLen"], 0) != "kiwi" {
		t.Fatalf("ByLen %+v", res.Aliases["ByLen"].Tuples)
	}
	if first(res.Aliases["ByLenD"], 0) != "apricot" {
		t.Fatalf("ByLenD %+v", res.Aliases["ByLenD"].Tuples)
	}
	if first(res.Aliases["ByStr"], 0) != "apricot" || first(res.Aliases["ByStr"], 2) != "kiwi" {
		t.Fatalf("ByStr %+v", res.Aliases["ByStr"].Tuples)
	}
}

func TestDump(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"x", "y"})
	script := MustCompile("A = LOAD '/in'; DUMP A;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dumps["A"]) != 2 || res.Dumps["A"][0] != "(x)" {
		t.Fatalf("dump %+v", res.Dumps)
	}
}

func TestDumpUnknownAlias(t *testing.T) {
	ctx := opsContext(t)
	script := MustCompile("DUMP MISSING;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("dump of unknown alias accepted")
	}
}

func TestBuiltinAggregatesOverGroup(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"2", "4", "9"})
	script := MustCompile(`
A = LOAD '/in';
G = GROUP A ALL;
S = FOREACH G GENERATE COUNT(A), SUM(A), AVG(A), MIN(A), MAX(A);
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Aliases["S"].Tuples[0]
	if s.Fields[0].(int64) != 3 {
		t.Fatalf("COUNT %+v", s)
	}
	if s.Fields[1].(float64) != 15 {
		t.Fatalf("SUM %+v", s)
	}
	if s.Fields[2].(float64) != 5 {
		t.Fatalf("AVG %+v", s)
	}
	if s.Fields[3].(float64) != 2 || s.Fields[4].(float64) != 9 {
		t.Fatalf("MIN/MAX %+v", s)
	}
}

func TestBuiltinStringFunctions(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"Hello World"})
	script := MustCompile(`
A = LOAD '/in';
B = FOREACH A GENERATE UPPER(line), LOWER(line), CONCAT(line, '!'), SIZE(line);
W = FOREACH A GENERATE FLATTEN(TOKENIZE(line)) AS word;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Aliases["B"].Tuples[0]
	if b.Fields[0] != "HELLO WORLD" || b.Fields[1] != "hello world" || b.Fields[2] != "Hello World!" || b.Fields[3].(int64) != 11 {
		t.Fatalf("string builtins %+v", b)
	}
	if len(res.Aliases["W"].Tuples) != 2 {
		t.Fatalf("tokenize %+v", res.Aliases["W"].Tuples)
	}
}

func TestBuiltinErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   EvalFunc
		args []Value
	}{
		{"COUNT non-bag", builtinCount, []Value{"x"}},
		{"COUNT arity", builtinCount, []Value{Bag{}, Bag{}}},
		{"SUM non-numeric", builtinSum, []Value{Bag{NewTuple("x")}}},
		{"MIN empty", builtinMin, []Value{Bag{}}},
		{"MAX empty", builtinMax, []Value{Bag{}}},
		{"SIZE unsupported", builtinSize, []Value{3.14}},
		{"CONCAT arity", builtinConcat, []Value{"x"}},
		{"UPPER arity", builtinUpper, []Value{}},
		{"TOKENIZE non-string", builtinTokenize, []Value{Bag{}}},
		{"SUM empty tuple", builtinSum, []Value{Bag{{}}}},
	}
	for _, c := range cases {
		if _, err := c.fn(nil, c.args); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestBuiltinAvgEmptyBag(t *testing.T) {
	v, err := builtinAvg(nil, []Value{Bag{}})
	if err != nil || v.(float64) != 0 {
		t.Fatalf("AVG(empty) = %v, %v", v, err)
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{true, 1, int64(2), 0.5, "true", "TRUE"} {
		ok, err := truthy(v)
		if err != nil || !ok {
			t.Errorf("truthy(%v) = %v, %v", v, ok, err)
		}
	}
	for _, v := range []Value{false, 0, int64(0), 0.0, "false", "no"} {
		ok, err := truthy(v)
		if err != nil || ok {
			t.Errorf("falsy(%v) = %v, %v", v, ok, err)
		}
	}
	if _, err := truthy(Bag{}); err == nil {
		t.Error("truthy(bag) accepted")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		op   string
		l, r Value
		want bool
	}{
		{"==", int64(3), 3.0, true},
		{"!=", int64(3), int64(4), true},
		{"<", "abc", "abd", true},
		{"<=", 2.5, 2.5, true},
		{">", "10", "9", false}, // numeric coercion: 10 > 9 is true... see below
		{">=", int64(10), int64(9), true},
	}
	for _, c := range cases {
		got, err := compareValues(c.op, c.l, c.r)
		if err != nil {
			t.Fatalf("%v %s %v: %v", c.l, c.op, c.r, err)
		}
		// "10" > "9" coerces numerically -> 10 > 9 -> true, so fix the
		// expectation for that row here rather than encode it wrongly.
		want := c.want
		if c.op == ">" {
			want = true
		}
		if got != want {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, got, want)
		}
	}
	if _, err := compareValues("~", int64(1), int64(2)); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := compareValues("==", Bag{}, int64(1)); err == nil {
		t.Error("incomparable types accepted")
	}
}

func TestLexerComparisonTokens(t *testing.T) {
	toks, err := lexAll("a == b != c <= d >= e < f > g")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokEq, tokIdent, tokNeq, tokIdent, tokLe, tokIdent, tokGe, tokIdent, tokLt, tokIdent, tokGt, tokIdent, tokEOF}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v (%q), want kind %d", i, toks[i].kind, toks[i].text, k)
		}
	}
}

func TestParserNewStatements(t *testing.T) {
	stmts, err := Parse(`
B = FILTER A BY x >= 3 AND y == 'z';
C = LIMIT B 10;
D = DISTINCT C;
E = UNION B, C, D;
F = ORDER E BY x DESC;
DUMP F;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 6 {
		t.Fatalf("got %d statements", len(stmts))
	}
	f := stmts[0].(*FilterStmt)
	logic := f.Cond.(Logic)
	if logic.Op != "and" {
		t.Fatalf("cond %+v", f.Cond)
	}
	if stmts[1].(*LimitStmt).N.(Literal).Value.(int64) != 10 {
		t.Fatal("limit literal")
	}
	if len(stmts[3].(*UnionStmt).Inputs) != 3 {
		t.Fatal("union inputs")
	}
	if !stmts[4].(*OrderStmt).Desc {
		t.Fatal("order desc")
	}
	if stmts[5].(*DumpStmt).Input != "F" {
		t.Fatal("dump input")
	}
}

func TestParserNewStatementErrors(t *testing.T) {
	bad := []string{
		"B = FILTER A x > 1;",  // missing BY
		"B = UNION A;",         // single input
		"B = LIMIT ;",          // missing alias
		"B = ORDER A x;",       // missing BY
		"DUMP;",                // missing alias
		"B = FILTER A BY ;",    // missing condition
		"B = DISTINCT A extra", // missing semicolon
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("script %q parsed", src)
		}
	}
}

func TestRegistryWithBuiltins(t *testing.T) {
	r := NewRegistryWithBuiltins()
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX", "SIZE", "CONCAT", "UPPER", "LOWER", "TOKENIZE"} {
		if _, ok := r.UDF(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
	// Double registration errors.
	if err := RegisterBuiltins(r); err == nil {
		t.Error("duplicate builtin registration accepted")
	}
}

// TestWordCountEndToEnd is the canonical Pig wordcount using the extended
// operator set.
func TestWordCountEndToEnd(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"the quick brown fox", "the lazy dog", "the fox"})
	script := MustCompile(`
Lines = LOAD '/in';
Words = FOREACH Lines GENERATE FLATTEN(TOKENIZE(line)) AS word;
G     = GROUP Words BY word;
Out   = FOREACH G GENERATE group, COUNT(Words);
Top   = ORDER Out BY f1 DESC;
Best  = LIMIT Top 1;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Aliases["Best"].Tuples
	if len(best) != 1 || best[0].Fields[0] != "the" || best[0].Fields[1].(int64) != 3 {
		t.Fatalf("wordcount best %+v", best)
	}
}

// TestParserNeverPanics fuzzes the parser with random byte soup and with
// mutations of a valid script: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	valid := "A = LOAD '/in'; B = FILTER A BY SIZE(line) >= 2; STORE B INTO '/out';"
	f := func(junk []byte, cut uint16) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", junk, r)
			}
		}()
		_, _ = Parse(string(junk))
		// Truncations of a valid script.
		n := int(cut) % (len(valid) + 1)
		_, _ = Parse(valid[:n])
		// Splices of junk into the valid script.
		_, _ = Parse(valid[:n] + string(junk) + valid[n:])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderTotalOrderAcrossPartitions stresses the range-partitioned sort
// with enough rows that every reducer partition is populated.
func TestOrderTotalOrderAcrossPartitions(t *testing.T) {
	ctx := opsContext(t)
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, string(rune('a'+(i*37)%26))+string(rune('a'+(i*11)%26)))
	}
	ctx.FS.WriteLines("/in", lines)
	script := MustCompile("A = LOAD '/in'; S = ORDER A BY line;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Aliases["S"]
	if len(s.Tuples) != 200 {
		t.Fatalf("tuples %d", len(s.Tuples))
	}
	for i := 1; i < len(s.Tuples); i++ {
		if s.Tuples[i-1].Fields[0].(string) > s.Tuples[i].Fields[0].(string) {
			t.Fatalf("order violated at %d: %v > %v", i, s.Tuples[i-1].Fields[0], s.Tuples[i].Fields[0])
		}
	}
}

// TestOrderMixedKeyTypes sorts numbers before strings, as Pig does.
func TestOrderMixedKeyTypes(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"zebra", "10", "2", "apple"})
	script := MustCompile("A = LOAD '/in'; S = ORDER A BY line;")
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, tup := range res.Aliases["S"].Tuples {
		got = append(got, tup.Fields[0].(string))
	}
	want := []string{"2", "10", "apple", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestDescribeAndSample(t *testing.T) {
	ctx := opsContext(t)
	var lines []string
	for i := 0; i < 400; i++ {
		lines = append(lines, "row")
	}
	ctx.FS.WriteLines("/in", lines)
	ctx.Seed = 9
	script := MustCompile(`
A = LOAD '/in';
DESCRIBE A;
S = SAMPLE A 0.25;
Z = SAMPLE A 0;
All = SAMPLE A 1.0;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Dumps["describe:A"]; len(d) != 1 || d[0] != "A: (line:chararray)" {
		t.Fatalf("describe %v", d)
	}
	n := len(res.Aliases["S"].Tuples)
	if n < 60 || n > 140 {
		t.Fatalf("sample kept %d of 400 at 0.25", n)
	}
	if len(res.Aliases["Z"].Tuples) != 0 {
		t.Fatal("SAMPLE 0 kept tuples")
	}
	if len(res.Aliases["All"].Tuples) != 400 {
		t.Fatal("SAMPLE 1.0 dropped tuples")
	}
	// Deterministic in seed.
	res2, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Aliases["S"].Tuples) != n {
		t.Fatal("sample not deterministic")
	}
}

func TestSampleValidation(t *testing.T) {
	ctx := opsContext(t)
	ctx.FS.WriteLines("/in", []string{"x"})
	for _, src := range []string{
		"A = LOAD '/in'; S = SAMPLE A 2;",
		"A = LOAD '/in'; S = SAMPLE A 'half';",
	} {
		script := MustCompile(src)
		if _, err := script.Run(ctx); err == nil {
			t.Errorf("script %q ran", src)
		}
	}
	if _, err := Parse("S = SAMPLE ;"); err == nil {
		t.Error("bad SAMPLE parsed")
	}
	if _, err := Parse("DESCRIBE ;"); err == nil {
		t.Error("bad DESCRIBE parsed")
	}
}
