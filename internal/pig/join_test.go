package pig

import (
	"strings"
	"testing"
)

// joinContext stages two small relations via per-tuple UDF splitting.
func joinContext(t *testing.T) *Context {
	t.Helper()
	ctx := testContext(t)
	if err := RegisterBuiltins(ctx.Registry); err != nil {
		t.Fatal(err)
	}
	ctx.Registry.MustRegister(UDF{
		Name:        "Pair",
		GroupKeyArg: -1,
		Eval: func(_ *Context, args []Value) (Value, error) {
			s, err := AsString(args[0])
			if err != nil {
				return nil, err
			}
			parts := strings.Fields(s)
			return NewTuple(parts[0], parts[1]), nil
		},
	})
	return ctx
}

func TestJoinInner(t *testing.T) {
	ctx := joinContext(t)
	ctx.FS.WriteLines("/reads", []string{"r1 c0", "r2 c0", "r3 c1", "r4 c9"})
	ctx.FS.WriteLines("/labels", []string{"c0 speciesA", "c1 speciesB", "c2 speciesC"})
	script := MustCompile(`
R = LOAD '/reads';
Reads = FOREACH R GENERATE FLATTEN(Pair(line)) AS (rid, cid);
L = LOAD '/labels';
Labels = FOREACH L GENERATE FLATTEN(Pair(line)) AS (cid, species);
J = JOIN Reads BY cid, Labels BY cid;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Aliases["J"]
	// r1,r2 join c0; r3 joins c1; r4's c9 and labels' c2 drop (inner).
	if len(j.Tuples) != 3 {
		t.Fatalf("join rows %+v", j.Tuples)
	}
	// Schema disambiguates the duplicate cid.
	if j.Schema.IndexOf("Reads::cid") < 0 || j.Schema.IndexOf("Labels::cid") < 0 {
		t.Fatalf("schema %v", j.Schema)
	}
	if j.Schema.IndexOf("rid") < 0 || j.Schema.IndexOf("species") < 0 {
		t.Fatalf("schema %v", j.Schema)
	}
	// Each row has 4 fields: rid, cid, cid, species.
	for _, tup := range j.Tuples {
		if len(tup.Fields) != 4 {
			t.Fatalf("row %+v", tup)
		}
		if tup.Fields[1] != tup.Fields[2] {
			t.Fatalf("join key mismatch in %+v", tup)
		}
	}
}

func TestJoinCrossProductWithinKey(t *testing.T) {
	ctx := joinContext(t)
	ctx.FS.WriteLines("/a", []string{"x 1", "x 2"})
	ctx.FS.WriteLines("/b", []string{"x 9", "x 8", "x 7"})
	script := MustCompile(`
A0 = LOAD '/a';
A = FOREACH A0 GENERATE FLATTEN(Pair(line)) AS (k, va);
B0 = LOAD '/b';
B = FOREACH B0 GENERATE FLATTEN(Pair(line)) AS (k, vb);
J = JOIN A BY k, B BY k;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["J"].Tuples) != 6 {
		t.Fatalf("cross product size %d, want 6", len(res.Aliases["J"].Tuples))
	}
	if res.Jobs < 3 { // two FOREACH jobs + join job
		t.Fatalf("jobs %d", res.Jobs)
	}
}

func TestJoinThreeWay(t *testing.T) {
	ctx := joinContext(t)
	ctx.FS.WriteLines("/a", []string{"k v1"})
	ctx.FS.WriteLines("/b", []string{"k v2"})
	ctx.FS.WriteLines("/c", []string{"k v3", "z v9"})
	script := MustCompile(`
A0 = LOAD '/a'; A = FOREACH A0 GENERATE FLATTEN(Pair(line)) AS (k, va);
B0 = LOAD '/b'; B = FOREACH B0 GENERATE FLATTEN(Pair(line)) AS (k, vb);
C0 = LOAD '/c'; C = FOREACH C0 GENERATE FLATTEN(Pair(line)) AS (k, vc);
J = JOIN A BY k, B BY k, C BY k;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Aliases["J"]
	if len(j.Tuples) != 1 || len(j.Tuples[0].Fields) != 6 {
		t.Fatalf("three-way join %+v", j.Tuples)
	}
}

func TestJoinNoMatchesEmpty(t *testing.T) {
	ctx := joinContext(t)
	ctx.FS.WriteLines("/a", []string{"x 1"})
	ctx.FS.WriteLines("/b", []string{"y 2"})
	script := MustCompile(`
A0 = LOAD '/a'; A = FOREACH A0 GENERATE FLATTEN(Pair(line)) AS (k, va);
B0 = LOAD '/b'; B = FOREACH B0 GENERATE FLATTEN(Pair(line)) AS (k, vb);
J = JOIN A BY k, B BY k;
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aliases["J"].Tuples) != 0 {
		t.Fatalf("disjoint join produced %+v", res.Aliases["J"].Tuples)
	}
}

func TestJoinParserErrors(t *testing.T) {
	bad := []string{
		"J = JOIN A BY k;",        // single input
		"J = JOIN A k, B BY k;",   // missing BY
		"J = JOIN A BY , B BY k;", // missing key
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("script %q parsed", src)
		}
	}
}

func TestJoinUnknownAlias(t *testing.T) {
	ctx := joinContext(t)
	script := MustCompile("J = JOIN A BY k, B BY k;")
	if _, err := script.Run(ctx); err == nil {
		t.Fatal("unknown aliases accepted")
	}
}
