package pig

import (
	"fmt"
	"time"

	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// foreach executes alias = FOREACH input GENERATE items...; as a MapReduce
// job. Three compilation shapes exist, mirroring how Pig plans UDFs:
//
//  1. tuple-at-a-time (map-only job) — the common case;
//  2. grouped UDF (full MR job grouping by the UDF's key argument), used
//     by CalculateMinwiseHash which folds all k-mers of one read;
//  3. whole-relation UDF (single-reducer job), used by the clustering UDFs
//     that need every row of the similarity matrix.
func (ex *executor) foreach(st *ForeachStmt) (time.Duration, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return 0, err
	}
	// Classify the statement by its UDF usage.
	var grouped, whole *FuncCall
	costFactor := 0.0
	for i := range st.Items {
		fc, ok := st.Items[i].Expr.(FuncCall)
		if !ok {
			continue
		}
		udf, ok := ex.ctx.Registry.UDF(fc.Name)
		if !ok {
			return 0, fmt.Errorf("pig: line %d: unknown UDF %q", st.Line, fc.Name)
		}
		if udf.CostFactor > costFactor {
			costFactor = udf.CostFactor
		}
		if udf.GroupKeyArg >= 0 {
			if grouped != nil || whole != nil || len(st.Items) != 1 {
				return 0, fmt.Errorf("pig: line %d: a grouped UDF must be the only GENERATE item", st.Line)
			}
			f := fc
			grouped = &f
		}
		if udf.WholeRelation {
			if grouped != nil || whole != nil || len(st.Items) != 1 {
				return 0, fmt.Errorf("pig: line %d: a whole-relation UDF must be the only GENERATE item", st.Line)
			}
			f := fc
			whole = &f
		}
	}
	switch {
	case grouped != nil:
		return ex.foreachGrouped(st, in, *grouped)
	case whole != nil:
		return ex.foreachWhole(st, in, *whole)
	default:
		return ex.foreachMapOnly(st, in, costFactor)
	}
}

// foreachMapOnly compiles the statement to a map-only job.
func (ex *executor) foreachMapOnly(st *ForeachStmt, in *Relation, costFactor float64) (time.Duration, error) {
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:          fmt.Sprintf("foreach-%s", st.Alias),
		Input:         mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		MapCostFactor: costFactor,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			rows, err := ex.generate(st, tup, in)
			if err != nil {
				return err
			}
			for _, r := range rows {
				emit(mapreduce.KeyValue{Key: kv.Key, Value: r})
			}
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	out := &Relation{Schema: ex.outputSchema(st, in)}
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// generate evaluates all GENERATE items against one tuple, applying
// FLATTEN cross-product semantics.
func (ex *executor) generate(st *ForeachStmt, tup Tuple, in *Relation) ([]Tuple, error) {
	rows := []Tuple{{}}
	for _, item := range st.Items {
		v, err := ex.evalTuple(item.Expr, tup, in, st.Input, st.Line)
		if err != nil {
			return nil, err
		}
		var expansions [][]Value
		if item.Flatten {
			switch x := v.(type) {
			case Bag:
				for _, bt := range x {
					expansions = append(expansions, bt.Fields)
				}
			case Tuple:
				expansions = [][]Value{x.Fields}
			default:
				expansions = [][]Value{{v}} // flatten of a scalar is identity
			}
		} else {
			expansions = [][]Value{{v}}
		}
		next := make([]Tuple, 0, len(rows)*len(expansions))
		for _, r := range rows {
			for _, fields := range expansions {
				nt := Tuple{Fields: append(append([]Value{}, r.Fields...), fields...)}
				next = append(next, nt)
			}
		}
		rows = next
	}
	return rows, nil
}

// outputSchema derives the schema produced by the GENERATE items.
func (ex *executor) outputSchema(st *ForeachStmt, in *Relation) Schema {
	var out Schema
	for i, item := range st.Items {
		if len(item.As) > 0 {
			out = append(out, item.As...)
			continue
		}
		switch e := item.Expr.(type) {
		case FieldRef:
			out = append(out, FieldSchema{Name: e.Name})
		case DottedRef:
			out = append(out, FieldSchema{Name: e.Field})
		default:
			out = append(out, FieldSchema{Name: fmt.Sprintf("f%d", i)})
		}
	}
	return out
}

// foreachGrouped compiles a grouped-UDF statement into a full MR job:
// map emits (key=arg[GroupKeyArg], value=arg[ValueArg]); reduce calls the
// UDF once per key with the collected values.
func (ex *executor) foreachGrouped(st *ForeachStmt, in *Relation, fc FuncCall) (time.Duration, error) {
	udf, _ := ex.ctx.Registry.UDF(fc.Name)
	if udf.GroupKeyArg >= len(fc.Args) || udf.ValueArg >= len(fc.Args) {
		return 0, fmt.Errorf("pig: line %d: UDF %s expects at least %d args, got %d",
			st.Line, fc.Name, max(udf.GroupKeyArg, udf.ValueArg)+1, len(fc.Args))
	}
	// Constant (non-field) arguments are evaluated once.
	constArgs := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		if i == udf.GroupKeyArg || i == udf.ValueArg {
			continue
		}
		v, err := ex.evalConst(a, st.Line)
		if err != nil {
			return 0, fmt.Errorf("pig: line %d: UDF %s arg %d must be constant: %w", st.Line, fc.Name, i, err)
		}
		constArgs[i] = v
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:             fmt.Sprintf("foreach-grouped-%s", st.Alias),
		Input:            mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		NumReducers:      ex.ctx.Engine.Cluster.Nodes,
		ReduceCostFactor: udf.CostFactor,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			keyV, err := ex.evalTuple(fc.Args[udf.GroupKeyArg], tup, in, st.Input, st.Line)
			if err != nil {
				return err
			}
			valV, err := ex.evalTuple(fc.Args[udf.ValueArg], tup, in, st.Input, st.Line)
			if err != nil {
				return err
			}
			emit(mapreduce.KeyValue{Key: FormatValue(keyV), Value: valV})
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			args := make([]Value, len(fc.Args))
			copy(args, constArgs)
			collected := make([]Value, len(values))
			for i, v := range values {
				collected[i] = v
			}
			args[udf.GroupKeyArg] = key
			args[udf.ValueArg] = collected
			v, err := udf.Eval(ex.ctx, args)
			if err != nil {
				return fmt.Errorf("UDF %s(%s): %w", fc.Name, key, err)
			}
			emit(mapreduce.KeyValue{Key: key, Value: v})
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	item := st.Items[0]
	out := &Relation{Schema: ex.outputSchema(st, in)}
	for _, kv := range res.Output {
		rows := expandItem(item, kv.Value)
		out.Tuples = append(out.Tuples, rows...)
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// foreachWhole compiles a whole-relation UDF statement: every
// field-reference argument is gathered into a []Value across all tuples in
// a single-reducer job, then the UDF runs once.
func (ex *executor) foreachWhole(st *ForeachStmt, in *Relation, fc FuncCall) (time.Duration, error) {
	udf, _ := ex.ctx.Registry.UDF(fc.Name)
	// Resolve which arguments are per-tuple fields.
	fieldArg := make([]bool, len(fc.Args))
	constArgs := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		switch a.(type) {
		case FieldRef, PositionalRef:
			fieldArg[i] = true
		case DottedRef:
			d := a.(DottedRef)
			if d.Alias == st.Input {
				fieldArg[i] = true
			} else {
				v, err := ex.foreignDeref(d, st.Line)
				if err != nil {
					return 0, err
				}
				constArgs[i] = v
			}
		default:
			v, err := ex.evalConst(a, st.Line)
			if err != nil {
				return 0, fmt.Errorf("pig: line %d: UDF %s arg %d: %w", st.Line, fc.Name, i, err)
			}
			constArgs[i] = v
		}
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:             fmt.Sprintf("foreach-whole-%s", st.Alias),
		Input:            mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		NumReducers:      1,
		ReduceCostFactor: udf.CostFactor,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			// Keys are fixed-width indices, so the single reducer's sorted
			// order restores tuple order.
			emit(kv)
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			for _, v := range values {
				emit(mapreduce.KeyValue{Key: key, Value: v})
			}
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	// Gather field arguments across all tuples (reducer output is sorted
	// by the fixed-width index key, restoring input order).
	args := make([]Value, len(fc.Args))
	copy(args, constArgs)
	for i, isField := range fieldArg {
		if !isField {
			continue
		}
		collected := make([]Value, 0, len(res.Output))
		for _, kv := range res.Output {
			v, err := ex.evalTuple(fc.Args[i], kv.Value.(Tuple), in, st.Input, st.Line)
			if err != nil {
				return 0, err
			}
			collected = append(collected, v)
		}
		args[i] = collected
	}
	v, err := udf.Eval(ex.ctx, args)
	if err != nil {
		return 0, fmt.Errorf("pig: line %d: UDF %s: %w", st.Line, fc.Name, err)
	}
	item := st.Items[0]
	out := &Relation{Schema: ex.outputSchema(st, in), Tuples: expandItem(item, v)}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// expandItem applies FLATTEN semantics to one produced value.
func expandItem(item GenItem, v Value) []Tuple {
	if !item.Flatten {
		return []Tuple{NewTuple(v)}
	}
	switch x := v.(type) {
	case Bag:
		out := make([]Tuple, len(x))
		copy(out, x)
		return out
	case Tuple:
		return []Tuple{x}
	default:
		return []Tuple{NewTuple(v)}
	}
}
