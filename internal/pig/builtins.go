package pig

import (
	"fmt"
	"strings"
)

// Builtin eval functions mirroring Pig's standard library subset that
// metagenome scripts touch: bag aggregates (COUNT, SUM, AVG, MIN, MAX),
// string helpers (CONCAT, UPPER, LOWER, STRSPLIT-less TOKENIZE) and SIZE.
// They register alongside user UDFs so scripts can mix both.

// RegisterBuiltins installs the builtin functions into a registry.
// Safe to call once per registry; duplicate names error.
func RegisterBuiltins(r *Registry) error {
	builtins := []UDF{
		{Name: "COUNT", GroupKeyArg: -1, Eval: builtinCount},
		{Name: "SUM", GroupKeyArg: -1, Eval: builtinSum},
		{Name: "AVG", GroupKeyArg: -1, Eval: builtinAvg},
		{Name: "MIN", GroupKeyArg: -1, Eval: builtinMin},
		{Name: "MAX", GroupKeyArg: -1, Eval: builtinMax},
		{Name: "SIZE", GroupKeyArg: -1, Eval: builtinSize},
		{Name: "CONCAT", GroupKeyArg: -1, Eval: builtinConcat},
		{Name: "UPPER", GroupKeyArg: -1, Eval: builtinUpper},
		{Name: "LOWER", GroupKeyArg: -1, Eval: builtinLower},
		{Name: "TOKENIZE", GroupKeyArg: -1, Eval: builtinTokenize},
	}
	for _, u := range builtins {
		if err := r.Register(u); err != nil {
			return err
		}
	}
	return nil
}

// NewRegistryWithBuiltins returns a registry preloaded with the builtins.
func NewRegistryWithBuiltins() *Registry {
	r := NewRegistry()
	if err := RegisterBuiltins(r); err != nil {
		panic(err) // fresh registry cannot collide
	}
	return r
}

// bagArg coerces a single UDF argument to a Bag.
func bagArg(fn string, args []Value) (Bag, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s expects one bag argument, got %d", fn, len(args))
	}
	bag, ok := args[0].(Bag)
	if !ok {
		return nil, fmt.Errorf("%s expects a bag, got %T", fn, args[0])
	}
	return bag, nil
}

// firstFields projects the first field of every tuple in a bag.
func firstFields(bag Bag) ([]Value, error) {
	out := make([]Value, len(bag))
	for i, t := range bag {
		if len(t.Fields) == 0 {
			return nil, fmt.Errorf("empty tuple in bag")
		}
		out[i] = t.Fields[0]
	}
	return out, nil
}

func builtinCount(_ *Context, args []Value) (Value, error) {
	bag, err := bagArg("COUNT", args)
	if err != nil {
		return nil, err
	}
	return int64(len(bag)), nil
}

func builtinSum(_ *Context, args []Value) (Value, error) {
	bag, err := bagArg("SUM", args)
	if err != nil {
		return nil, err
	}
	vals, err := firstFields(bag)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for _, v := range vals {
		f, err := AsFloat(v)
		if err != nil {
			return nil, err
		}
		sum += f
	}
	return sum, nil
}

func builtinAvg(_ *Context, args []Value) (Value, error) {
	bag, err := bagArg("AVG", args)
	if err != nil {
		return nil, err
	}
	if len(bag) == 0 {
		return 0.0, nil
	}
	sumV, err := builtinSum(nil, args)
	if err != nil {
		return nil, err
	}
	return sumV.(float64) / float64(len(bag)), nil
}

func builtinMin(_ *Context, args []Value) (Value, error) {
	return bagExtreme("MIN", args, func(a, b float64) bool { return a < b })
}

func builtinMax(_ *Context, args []Value) (Value, error) {
	return bagExtreme("MAX", args, func(a, b float64) bool { return a > b })
}

// bagExtreme folds a bag's first fields with a better() predicate.
func bagExtreme(fn string, args []Value, better func(a, b float64) bool) (Value, error) {
	bag, err := bagArg(fn, args)
	if err != nil {
		return nil, err
	}
	if len(bag) == 0 {
		return nil, fmt.Errorf("%s of an empty bag", fn)
	}
	vals, err := firstFields(bag)
	if err != nil {
		return nil, err
	}
	best, err := AsFloat(vals[0])
	if err != nil {
		return nil, err
	}
	for _, v := range vals[1:] {
		f, err := AsFloat(v)
		if err != nil {
			return nil, err
		}
		if better(f, best) {
			best = f
		}
	}
	return best, nil
}

func builtinSize(_ *Context, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("SIZE expects one argument, got %d", len(args))
	}
	switch x := args[0].(type) {
	case Bag:
		return int64(len(x)), nil
	case Tuple:
		return int64(len(x.Fields)), nil
	case string:
		return int64(len(x)), nil
	case []byte:
		return int64(len(x)), nil
	default:
		return nil, fmt.Errorf("SIZE of unsupported type %T", args[0])
	}
}

func builtinConcat(_ *Context, args []Value) (Value, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("CONCAT expects at least two arguments, got %d", len(args))
	}
	var sb strings.Builder
	for _, a := range args {
		s, err := AsString(a)
		if err != nil {
			return nil, err
		}
		sb.WriteString(s)
	}
	return sb.String(), nil
}

func builtinUpper(_ *Context, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("UPPER expects one argument, got %d", len(args))
	}
	s, err := AsString(args[0])
	if err != nil {
		return nil, err
	}
	return strings.ToUpper(s), nil
}

func builtinLower(_ *Context, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("LOWER expects one argument, got %d", len(args))
	}
	s, err := AsString(args[0])
	if err != nil {
		return nil, err
	}
	return strings.ToLower(s), nil
}

func builtinTokenize(_ *Context, args []Value) (Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("TOKENIZE expects one argument, got %d", len(args))
	}
	s, err := AsString(args[0])
	if err != nil {
		return nil, err
	}
	var bag Bag
	for _, w := range strings.Fields(s) {
		bag = append(bag, NewTuple(w))
	}
	return bag, nil
}
