package pig

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // '...'
	tokParam  // $NAME
	tokEquals
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokColon
	tokDot
	tokEq  // ==
	tokNeq // !=
	tokLt  // <
	tokLe  // <=
	tokGt  // >
	tokGe  // >=
)

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	case tokParam:
		return "$" + t.text
	default:
		return t.text
	}
}

// lexer produces tokens from Pig script text.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
	}
	start := token{line: lx.line, col: lx.col}
	c := lx.src[lx.pos]
	switch {
	case c == '=' && lx.peek(1) == '=':
		lx.advance(2)
		start.kind, start.text = tokEq, "=="
	case c == '=':
		lx.advance(1)
		start.kind, start.text = tokEquals, "="
	case c == '!' && lx.peek(1) == '=':
		lx.advance(2)
		start.kind, start.text = tokNeq, "!="
	case c == '<' && lx.peek(1) == '=':
		lx.advance(2)
		start.kind, start.text = tokLe, "<="
	case c == '<':
		lx.advance(1)
		start.kind, start.text = tokLt, "<"
	case c == '>' && lx.peek(1) == '=':
		lx.advance(2)
		start.kind, start.text = tokGe, ">="
	case c == '>':
		lx.advance(1)
		start.kind, start.text = tokGt, ">"
	case c == '(':
		lx.advance(1)
		start.kind, start.text = tokLParen, "("
	case c == ')':
		lx.advance(1)
		start.kind, start.text = tokRParen, ")"
	case c == ',':
		lx.advance(1)
		start.kind, start.text = tokComma, ","
	case c == ';':
		lx.advance(1)
		start.kind, start.text = tokSemi, ";"
	case c == ':':
		lx.advance(1)
		start.kind, start.text = tokColon, ":"
	case c == '.':
		lx.advance(1)
		start.kind, start.text = tokDot, "."
	case c == '\'':
		s, err := lx.lexString()
		if err != nil {
			return token{}, err
		}
		start.kind, start.text = tokString, s
	case c == '$':
		lx.advance(1)
		name := lx.lexIdentText()
		if name == "" {
			return token{}, fmt.Errorf("pig: line %d:%d: '$' must be followed by a parameter name", start.line, start.col)
		}
		start.kind, start.text = tokParam, name
	case isIdentStart(rune(c)):
		start.kind, start.text = tokIdent, lx.lexIdentText()
	case unicode.IsDigit(rune(c)):
		start.kind, start.text = tokNumber, lx.lexNumberText()
	default:
		return token{}, fmt.Errorf("pig: line %d:%d: unexpected character %q", start.line, start.col, c)
	}
	return start, nil
}

// skipSpaceAndComments consumes whitespace, -- line comments and /* */ blocks.
func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case strings.HasPrefix(lx.src[lx.pos:], "--"):
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case strings.HasPrefix(lx.src[lx.pos:], "/*"):
			lx.advance(2)
			for lx.pos < len(lx.src) && !strings.HasPrefix(lx.src[lx.pos:], "*/") {
				lx.advance(1)
			}
			if lx.pos < len(lx.src) {
				lx.advance(2)
			}
		default:
			return
		}
	}
}

// lexString consumes a '...'-quoted string (no escapes in our dialect).
func (lx *lexer) lexString() (string, error) {
	startLine, startCol := lx.line, lx.col
	lx.advance(1) // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			lx.advance(1)
			return sb.String(), nil
		}
		sb.WriteByte(c)
		lx.advance(1)
	}
	return "", fmt.Errorf("pig: line %d:%d: unterminated string", startLine, startCol)
}

// lexIdentText consumes an identifier.
func (lx *lexer) lexIdentText() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
		lx.advance(1)
	}
	return lx.src[start:lx.pos]
}

// lexNumberText consumes an integer or decimal literal.
func (lx *lexer) lexNumberText() string {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if unicode.IsDigit(rune(c)) {
			lx.advance(1)
		} else if c == '.' && !seenDot && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1])) {
			seenDot = true
			lx.advance(1)
		} else {
			break
		}
	}
	return lx.src[start:lx.pos]
}

// peek returns the byte n positions ahead, or 0 at end of input.
func (lx *lexer) peek(n int) byte {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

// advance moves n bytes, tracking line/column.
func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
