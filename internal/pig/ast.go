package pig

// AST node definitions for the supported Pig dialect.

// Stmt is one script statement.
type Stmt interface{ stmt() }

// LoadStmt: alias = LOAD 'path' USING Loader(args) AS (schema);
type LoadStmt struct {
	Alias  string
	Path   string
	Loader string
	Args   []Expr
	As     Schema
	Line   int
}

// ForeachStmt: alias = FOREACH input GENERATE items... ;
type ForeachStmt struct {
	Alias string
	Input string
	Items []GenItem
	Line  int
}

// GenItem is one GENERATE projection, optionally FLATTENed and renamed.
type GenItem struct {
	Flatten bool
	Expr    Expr
	As      Schema
}

// GroupStmt: alias = GROUP input ALL;  or  alias = GROUP input BY expr;
type GroupStmt struct {
	Alias string
	Input string
	All   bool
	By    Expr
	Line  int
}

// StoreStmt: STORE alias INTO 'path';
type StoreStmt struct {
	Input string
	Path  string
	Line  int
}

// FilterStmt: alias = FILTER input BY condition;
type FilterStmt struct {
	Alias string
	Input string
	Cond  Expr
	Line  int
}

// LimitStmt: alias = LIMIT input n;
type LimitStmt struct {
	Alias string
	Input string
	N     Expr
	Line  int
}

// DistinctStmt: alias = DISTINCT input;
type DistinctStmt struct {
	Alias string
	Input string
	Line  int
}

// UnionStmt: alias = UNION a, b, ...;
type UnionStmt struct {
	Alias  string
	Inputs []string
	Line   int
}

// OrderStmt: alias = ORDER input BY field [DESC];
type OrderStmt struct {
	Alias string
	Input string
	By    Expr
	Desc  bool
	Line  int
}

// DumpStmt: DUMP alias;
type DumpStmt struct {
	Input string
	Line  int
}

// JoinStmt: alias = JOIN a BY expr, b BY expr;
type JoinStmt struct {
	Alias  string
	Inputs []string
	Keys   []Expr // parallel to Inputs
	Line   int
}

// DescribeStmt: DESCRIBE alias;
type DescribeStmt struct {
	Input string
	Line  int
}

// SampleStmt: alias = SAMPLE input fraction;
type SampleStmt struct {
	Alias    string
	Input    string
	Fraction Expr
	Line     int
}

func (LoadStmt) stmt()     {}
func (ForeachStmt) stmt()  {}
func (GroupStmt) stmt()    {}
func (StoreStmt) stmt()    {}
func (FilterStmt) stmt()   {}
func (LimitStmt) stmt()    {}
func (DistinctStmt) stmt() {}
func (UnionStmt) stmt()    {}
func (OrderStmt) stmt()    {}
func (DumpStmt) stmt()     {}
func (JoinStmt) stmt()     {}
func (DescribeStmt) stmt() {}
func (SampleStmt) stmt()   {}

// Expr is an expression within GENERATE/BY clauses or UDF arguments.
type Expr interface{ expr() }

// FieldRef names a field of the current input tuple.
type FieldRef struct{ Name string }

// PositionalRef addresses a field by index ($0, $1, ...). In our dialect a
// bare $NAME that matches a bound parameter is substituted at execution; a
// $N with numeric N is positional.
type PositionalRef struct{ Index int }

// DottedRef is alias.field — either a field of the current tuple's
// relation (when alias is the FOREACH input) or a scalar dereference of a
// single-tuple foreign relation (the paper's I.F).
type DottedRef struct{ Alias, Field string }

// FuncCall invokes a registered UDF.
type FuncCall struct {
	Name string
	Args []Expr
}

// Literal is a constant.
type Literal struct{ Value Value }

// ParamRef is an unresolved $PARAM substituted from the parameter map at
// execution time.
type ParamRef struct{ Name string }

// Compare is a binary comparison: == != < <= > >=.
type Compare struct {
	Op   string
	L, R Expr
}

// Logic is a boolean connective: AND, OR.
type Logic struct {
	Op   string // "and" | "or"
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ X Expr }

func (FieldRef) expr()      {}
func (PositionalRef) expr() {}
func (DottedRef) expr()     {}
func (FuncCall) expr()      {}
func (Literal) expr()       {}
func (ParamRef) expr()      {}
func (Compare) expr()       {}
func (Logic) expr()         {}
func (Not) expr()           {}
