package pig

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// TestScriptTraceSpans runs a small script with tracing attached and
// checks every statement yields a pig-op span with the launched jobs (and
// their tasks) nested beneath it.
func TestScriptTraceSpans(t *testing.T) {
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 2, BlockSize: 64, Replication: 1})
	if err := fs.WriteLines("/in/words", []string{"a", "b", "a", "c", "b", "a"}); err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	fs.SetTrace(rec)
	engine := mapreduce.MustEngine(mapreduce.Cluster{Nodes: 2, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel})
	engine.Trace = rec
	ctx := &Context{FS: fs, Engine: engine, Registry: NewRegistry()}

	script := MustCompile(`
W = LOAD '/in/words';
G = GROUP W BY $0;
D = DISTINCT W;
STORE D INTO '/out/d';
`)
	res, err := script.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	byID := map[int64]trace.Span{}
	var ops, jobs []trace.Span
	for _, s := range spans {
		byID[s.ID] = s
		switch s.Kind {
		case trace.KindPigOp:
			ops = append(ops, s)
		case trace.KindJob:
			jobs = append(jobs, s)
		}
	}
	if len(ops) != 4 {
		t.Fatalf("got %d pig-op spans, want 4 (one per statement)", len(ops))
	}
	wantLabels := []string{"W = LOAD '/in/words'", "G = GROUP W", "D = DISTINCT W", "STORE D INTO '/out/d'"}
	for i, op := range ops {
		if op.Name != wantLabels[i] {
			t.Fatalf("op %d label = %q, want %q", i, op.Name, wantLabels[i])
		}
		if op.Parent != 0 {
			t.Fatalf("pig-op span %q has parent %d, want root", op.Name, op.Parent)
		}
	}
	if len(jobs) != res.Jobs {
		t.Fatalf("got %d job spans, RunResult says %d jobs", len(jobs), res.Jobs)
	}
	// Every job nests under a pig-op, and its operator's virtual duration
	// covers it.
	var opVirtual int64
	for _, op := range ops {
		opVirtual += int64(op.VDur)
	}
	if opVirtual != int64(res.Virtual) {
		t.Fatalf("pig-op spans sum to %d virtual ns, RunResult.Virtual = %d", opVirtual, int64(res.Virtual))
	}
	for _, j := range jobs {
		parent, ok := byID[j.Parent]
		if !ok || parent.Kind != trace.KindPigOp {
			t.Fatalf("job %q parent is not a pig-op span", j.Name)
		}
	}
	// DFS spans from LOAD/STORE nest under their operator spans too.
	var dfsSpans int
	for _, s := range spans {
		if s.Kind == trace.KindDFSRead || s.Kind == trace.KindDFSWrite {
			dfsSpans++
			if p, ok := byID[s.Parent]; !ok || (p.Kind != trace.KindPigOp && p.Kind != trace.KindJob) {
				t.Fatalf("DFS span %q (parent %d) not nested in the timeline", s.Name, s.Parent)
			}
		}
	}
	if dfsSpans == 0 {
		t.Fatal("no DFS spans recorded for LOAD/STORE")
	}
}

// TestScriptUntracedUnchanged pins that running without a recorder still
// works and yields the same modelled time as a traced run.
func TestScriptUntracedUnchanged(t *testing.T) {
	run := func(rec *trace.Recorder) *RunResult {
		fs := dfs.MustNew(dfs.Config{NumDataNodes: 2, BlockSize: 64, Replication: 1})
		if err := fs.WriteLines("/in/words", []string{"x", "y", "x"}); err != nil {
			t.Fatal(err)
		}
		fs.SetTrace(rec)
		engine := mapreduce.MustEngine(mapreduce.Cluster{Nodes: 2, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel})
		engine.Trace = rec
		res, err := MustCompile("W = LOAD '/in/words';\nG = GROUP W BY $0;").Run(&Context{FS: fs, Engine: engine, Registry: NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(trace.New())
	if plain.Virtual != traced.Virtual {
		t.Fatalf("tracing changed Virtual: %v vs %v", plain.Virtual, traced.Virtual)
	}
}
