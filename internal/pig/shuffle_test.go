package pig

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/trace"
)

const spillScript = `
Lines = LOAD '/in';
Words = FOREACH Lines GENERATE FLATTEN(TOKENIZE(line)) AS word;
G     = GROUP Words BY word;
Out   = FOREACH G GENERATE group, COUNT(Words);
STORE Out INTO '/out';
`

// TestSpillShuffleStoreBitIdentical runs the canonical Pig wordcount
// twice — in-memory shuffle and a sort buffer so small every grouped
// record spills — and requires the STORE files to match byte for byte.
func TestSpillShuffleStoreBitIdentical(t *testing.T) {
	lines := []string{"the quick brown fox", "the lazy dog", "the fox", "lazy lazy dog"}
	storedBytes := func(bufBytes int, rec *trace.Recorder) map[string]string {
		t.Helper()
		ctx := opsContext(t)
		ctx.FS.WriteLines("/in", lines)
		ctx.ShuffleBufferBytes = bufBytes
		ctx.Engine.Trace = rec
		if _, err := MustCompile(spillScript).Run(ctx); err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, p := range ctx.FS.ListOutputs("/out") {
			data, err := ctx.FS.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[p] = string(data)
		}
		if len(out) == 0 {
			t.Fatal("STORE produced no part files")
		}
		return out
	}

	want := storedBytes(0, nil)
	rec := trace.New()
	got := storedBytes(16, rec)
	if len(got) != len(want) {
		t.Fatalf("part files diverged: %v vs %v", got, want)
	}
	for p, data := range want {
		if got[p] != data {
			t.Fatalf("%s diverged:\n in-memory %q\n spilled   %q", p, data, got[p])
		}
	}
	var spills, merges int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.KindSpill:
			spills++
		case trace.KindMerge:
			merges++
		}
	}
	if spills == 0 || merges == 0 {
		t.Fatalf("bounded Pig run did not exercise the external shuffle (spills=%d merges=%d)", spills, merges)
	}
}
