package pig

import (
	"fmt"
	"sort"
	"time"

	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// join executes alias = JOIN a BY ka, b BY kb [, c BY kc ...]; as one
// MapReduce job — Pig's reduce-side hash equi-join: mappers tag each
// tuple with its source relation and emit under the join key; reducers
// cross the per-relation groups. Inner-join semantics: keys missing from
// any input produce nothing.
func (ex *executor) join(st *JoinStmt) (time.Duration, error) {
	k := len(st.Inputs)
	rels := make([]*Relation, k)
	for i, name := range st.Inputs {
		rel, err := ex.relation(name, st.Line)
		if err != nil {
			return 0, err
		}
		rels[i] = rel
	}
	// tagged wraps a tuple with its source relation index.
	type tagged struct {
		src int
		tup Tuple
	}
	var records []mapreduce.KeyValue
	for src, rel := range rels {
		for ti, tup := range rel.Tuples {
			records = append(records, mapreduce.KeyValue{
				Key:   fmt.Sprintf("%d/%012d", src, ti),
				Value: tagged{src: src, tup: tup},
			})
		}
	}
	job := &mapreduce.Job{
		Name:        fmt.Sprintf("join-%s", st.Alias),
		Input:       mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		NumReducers: ex.ctx.Engine.Cluster.Nodes,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tg := kv.Value.(tagged)
			keyV, err := ex.evalTuple(st.Keys[tg.src], tg.tup, rels[tg.src], st.Inputs[tg.src], st.Line)
			if err != nil {
				return err
			}
			emit(mapreduce.KeyValue{Key: FormatValue(keyV), Value: tg})
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			// Partition the group by source relation, preserving order.
			bySrc := make([][]Tuple, k)
			for _, v := range values {
				tg := v.(tagged)
				bySrc[tg.src] = append(bySrc[tg.src], tg.tup)
			}
			for _, g := range bySrc {
				if len(g) == 0 {
					return nil // inner join: all inputs must have the key
				}
			}
			// Cross product across relations.
			cross := []Tuple{{}}
			for _, g := range bySrc {
				next := make([]Tuple, 0, len(cross)*len(g))
				for _, base := range cross {
					for _, tup := range g {
						nt := Tuple{Fields: append(append([]Value{}, base.Fields...), tup.Fields...)}
						next = append(next, nt)
					}
				}
				cross = next
			}
			for _, tup := range cross {
				emit(mapreduce.KeyValue{Key: key, Value: tup})
			}
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	sort.SliceStable(res.Output, func(i, j int) bool { return res.Output[i].Key < res.Output[j].Key })
	out := &Relation{Schema: joinSchema(st.Inputs, rels)}
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// joinSchema concatenates the input schemas, disambiguating field names
// with Pig's alias::field convention.
func joinSchema(names []string, rels []*Relation) Schema {
	var out Schema
	seen := map[string]int{}
	for _, rel := range rels {
		for _, f := range rel.Schema {
			seen[f.Name]++
		}
	}
	for ri, rel := range rels {
		for _, f := range rel.Schema {
			name := f.Name
			if seen[f.Name] > 1 {
				name = names[ri] + "::" + f.Name
			}
			out = append(out, FieldSchema{Name: name, Type: f.Type})
		}
	}
	return out
}
