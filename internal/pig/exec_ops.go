package pig

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// Execution of the relational operators beyond LOAD/FOREACH/GROUP/STORE:
// FILTER compiles to a map-only job; DISTINCT to a full MapReduce job
// (dedup happens in reducers, as Pig plans it); ORDER to a sampled
// range-partitioned MR job (Hadoop's TotalOrderPartitioner); LIMIT,
// UNION, SAMPLE and DESCRIBE run on the driver.

// filter runs alias = FILTER input BY cond.
func (ex *executor) filter(st *FilterStmt) (time.Duration, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return 0, err
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:  fmt.Sprintf("filter-%s", st.Alias),
		Input: mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			v, err := ex.evalTuple(st.Cond, tup, in, st.Input, st.Line)
			if err != nil {
				return err
			}
			keep, err := truthy(v)
			if err != nil {
				return fmt.Errorf("pig: line %d: FILTER condition: %w", st.Line, err)
			}
			if keep {
				emit(kv)
			}
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	out := &Relation{Schema: in.Schema}
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// distinct runs alias = DISTINCT input as a full MR job keyed by the
// tuple's rendered form.
func (ex *executor) distinct(st *DistinctStmt) (time.Duration, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return 0, err
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:        fmt.Sprintf("distinct-%s", st.Alias),
		Input:       mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		NumReducers: ex.ctx.Engine.Cluster.Nodes,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			emit(mapreduce.KeyValue{Key: FormatValue(tup), Value: tup})
			return nil
		},
		Combine: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			emit(mapreduce.KeyValue{Key: key, Value: values[0]})
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			emit(mapreduce.KeyValue{Key: key, Value: values[0]})
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	// Deterministic output order across reducers.
	sort.SliceStable(res.Output, func(i, j int) bool { return res.Output[i].Key < res.Output[j].Key })
	out := &Relation{Schema: in.Schema}
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// limit runs alias = LIMIT input n on the driver.
func (ex *executor) limit(st *LimitStmt) error {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return err
	}
	nv, err := ex.evalConst(st.N, st.Line)
	if err != nil {
		return err
	}
	n, err := AsInt(nv)
	if err != nil || n < 0 {
		return fmt.Errorf("pig: line %d: LIMIT needs a non-negative count, got %v", st.Line, nv)
	}
	if n > len(in.Tuples) {
		n = len(in.Tuples)
	}
	out := &Relation{Schema: in.Schema, Tuples: append(Bag{}, in.Tuples[:n]...)}
	ex.aliases[st.Alias] = out
	return nil
}

// union runs alias = UNION a, b, ... on the driver. Schemas must have the
// same arity; the first input's schema wins (Pig's onschema-less UNION).
func (ex *executor) union(st *UnionStmt) error {
	var out *Relation
	for _, name := range st.Inputs {
		in, err := ex.relation(name, st.Line)
		if err != nil {
			return err
		}
		if out == nil {
			out = &Relation{Schema: in.Schema}
		} else if len(in.Schema) != len(out.Schema) {
			return fmt.Errorf("pig: line %d: UNION arity mismatch: %s has %d fields, %s has %d",
				st.Line, st.Inputs[0], len(out.Schema), name, len(in.Schema))
		}
		out.Tuples = append(out.Tuples, in.Tuples...)
	}
	ex.aliases[st.Alias] = out
	return nil
}

// order runs alias = ORDER input BY expr [DESC] as Pig plans it: a
// sampling pass picks range boundaries, a full MR job range-partitions
// tuples so partition i holds keys entirely below partition i+1 (Hadoop's
// TotalOrderPartitioner), reducers sort locally, and concatenating the
// partitions yields the total order.
func (ex *executor) order(st *OrderStmt) (time.Duration, error) {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return 0, err
	}
	// sortKey evaluates the BY expression into a comparable form.
	type sortKey struct {
		num float64
		str string
		ok  bool // numeric
	}
	keyOf := func(tup Tuple) (sortKey, error) {
		v, err := ex.evalTuple(st.By, tup, in, st.Input, st.Line)
		if err != nil {
			return sortKey{}, err
		}
		if f, err := AsFloat(v); err == nil {
			return sortKey{num: f, ok: true}, nil
		}
		s, _ := AsString(v)
		return sortKey{str: s}, nil
	}
	less := func(a, b sortKey) bool {
		if a.ok && b.ok {
			return a.num < b.num
		}
		if a.ok != b.ok {
			return a.ok // numbers sort before strings, as in Pig
		}
		return a.str < b.str
	}

	// Sampling pass: take up to R-1 quantile boundaries from a key sample
	// (here: all keys; real Pig samples — our relations are materialized).
	numRed := ex.ctx.Engine.Cluster.Nodes
	keys := make([]sortKey, len(in.Tuples))
	for i, tup := range in.Tuples {
		k, err := keyOf(tup)
		if err != nil {
			return 0, err
		}
		keys[i] = k
	}
	sorted := append([]sortKey{}, keys...)
	sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	bounds := make([]sortKey, 0, numRed-1)
	for r := 1; r < numRed && len(sorted) > 0; r++ {
		bounds = append(bounds, sorted[r*len(sorted)/numRed])
	}
	partitionOf := func(k sortKey) int {
		p := 0
		for p < len(bounds) && !less(k, bounds[p]) {
			p++
		}
		return p
	}

	type keyedTuple struct {
		key sortKey
		tup Tuple
		seq int // original index for stability
	}
	records := tuplesToRecords(in.Tuples)
	job := &mapreduce.Job{
		Name:        fmt.Sprintf("order-%s", st.Alias),
		Input:       mapreduce.MemoryInput{Records: records, SplitSize: splitSizeFor(len(records), ex.ctx.Engine.Cluster)},
		NumReducers: numRed,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			tup := kv.Value.(Tuple)
			seq := 0
			fmt.Sscanf(kv.Key, "%d", &seq)
			k := keys[seq]
			// Key by partition id; the reducer sorts its partition.
			emit(mapreduce.KeyValue{
				Key:   fmt.Sprintf("%06d", partitionOf(k)),
				Value: keyedTuple{key: k, tup: tup, seq: seq},
			})
			return nil
		},
		Reduce: func(key string, values []any, emit func(mapreduce.KeyValue)) error {
			part := make([]keyedTuple, len(values))
			for i, v := range values {
				part[i] = v.(keyedTuple)
			}
			sort.SliceStable(part, func(i, j int) bool {
				if less(part[i].key, part[j].key) {
					return true
				}
				if less(part[j].key, part[i].key) {
					return false
				}
				return part[i].seq < part[j].seq // stable on ties
			})
			for _, kt := range part {
				emit(mapreduce.KeyValue{Key: key, Value: kt.tup})
			}
			return nil
		},
	}
	res, err := ex.run(job)
	if err != nil {
		return 0, err
	}
	// Partitions come back keyed by zero-padded partition id; a stable
	// sort on that key concatenates them in range order.
	sort.SliceStable(res.Output, func(i, j int) bool { return res.Output[i].Key < res.Output[j].Key })
	out := &Relation{Schema: in.Schema, Tuples: make(Bag, 0, len(res.Output))}
	for _, kv := range res.Output {
		out.Tuples = append(out.Tuples, kv.Value.(Tuple))
	}
	if st.Desc {
		for a, b := 0, len(out.Tuples)-1; a < b; a, b = a+1, b-1 {
			out.Tuples[a], out.Tuples[b] = out.Tuples[b], out.Tuples[a]
		}
	}
	ex.aliases[st.Alias] = out
	return res.Virtual, nil
}

// describe records a relation's schema into the run's dump log under
// "describe:<alias>".
func (ex *executor) describe(st *DescribeStmt, res *RunResult) error {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return err
	}
	res.Dumps["describe:"+st.Input] = []string{st.Input + ": " + in.Schema.String()}
	return nil
}

// sample runs alias = SAMPLE input fraction: each tuple is kept
// independently with the given probability, deterministically in the
// context seed (Pig's SAMPLE is what its ORDER planner uses to pick
// range boundaries).
func (ex *executor) sample(st *SampleStmt) error {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return err
	}
	fv, err := ex.evalConst(st.Fraction, st.Line)
	if err != nil {
		return err
	}
	frac, err := AsFloat(fv)
	if err != nil || frac < 0 || frac > 1 {
		return fmt.Errorf("pig: line %d: SAMPLE needs a fraction in [0,1], got %v", st.Line, fv)
	}
	rng := rand.New(rand.NewSource(ex.ctx.Seed*31 + int64(st.Line)))
	out := &Relation{Schema: in.Schema}
	for _, tup := range in.Tuples {
		if rng.Float64() < frac {
			out.Tuples = append(out.Tuples, tup)
		}
	}
	ex.aliases[st.Alias] = out
	return nil
}

// dump renders a relation into the run's dump log.
func (ex *executor) dump(st *DumpStmt, res *RunResult) error {
	in, err := ex.relation(st.Input, st.Line)
	if err != nil {
		return err
	}
	var lines []string
	for _, tup := range in.Tuples {
		lines = append(lines, FormatValue(tup))
	}
	res.Dumps[st.Input] = lines
	return nil
}

// truthy interprets a condition result.
func truthy(v Value) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case int:
		return x != 0, nil
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	case string:
		return strings.EqualFold(x, "true"), nil
	default:
		return false, fmt.Errorf("cannot interpret %T as a boolean", v)
	}
}

// compareValues evaluates a comparison operator over two values: numeric
// when both coerce to numbers, lexicographic otherwise.
func compareValues(op string, l, r Value) (bool, error) {
	lf, lerr := AsFloat(l)
	rf, rerr := AsFloat(r)
	if lerr == nil && rerr == nil {
		switch op {
		case "==":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
		return false, fmt.Errorf("unknown comparison %q", op)
	}
	ls, lserr := AsString(l)
	rs, rserr := AsString(r)
	if lserr != nil || rserr != nil {
		return false, fmt.Errorf("cannot compare %T with %T", l, r)
	}
	switch op {
	case "==":
		return ls == rs, nil
	case "!=":
		return ls != rs, nil
	case "<":
		return ls < rs, nil
	case "<=":
		return ls <= rs, nil
	case ">":
		return ls > rs, nil
	case ">=":
		return ls >= rs, nil
	}
	return false, fmt.Errorf("unknown comparison %q", op)
}
