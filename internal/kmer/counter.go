package kmer

import (
	"math"
	"sort"
)

// Counter accumulates k-mer occurrence counts — the feature representation
// used by composition-based binners such as the MetaCluster baseline, which
// compares reads by the Spearman distance between their k-mer frequency
// rankings.
type Counter struct {
	K      int
	counts map[uint64]int
	total  int
}

// NewCounter returns an empty counter for k-mers of length k.
func NewCounter(k int) *Counter {
	return &Counter{K: k, counts: make(map[uint64]int)}
}

// Observe adds every k-mer occurrence of seq to the counter.
func (c *Counter) Observe(seq []byte, e *Extractor) {
	e.appendInto(seq, func(km uint64) {
		c.counts[km]++
		c.total++
	})
}

// Count returns the number of occurrences of km.
func (c *Counter) Count(km uint64) int { return c.counts[km] }

// Each calls fn for every distinct observed k-mer with its count.
// Iteration order is unspecified.
func (c *Counter) Each(fn func(km uint64, count int)) {
	for km, n := range c.counts {
		fn(km, n)
	}
}

// Total returns the number of observed k-mer occurrences.
func (c *Counter) Total() int { return c.total }

// Distinct returns the number of distinct observed k-mers.
func (c *Counter) Distinct() int { return len(c.counts) }

// Frequency returns the relative frequency of km.
func (c *Counter) Frequency(km uint64) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[km]) / float64(c.total)
}

// FrequencyVector returns the dense 4^k frequency vector for small k
// (k <= 8, i.e. at most 65536 entries). It panics for larger k where a
// dense representation would be wasteful.
func (c *Counter) FrequencyVector() []float64 {
	if c.K > 8 {
		panic("kmer: FrequencyVector requires k <= 8")
	}
	n := int(FeatureSpace(c.K))
	v := make([]float64, n)
	if c.total == 0 {
		return v
	}
	for km, cnt := range c.counts {
		v[km] = float64(cnt) / float64(c.total)
	}
	return v
}

// FrequencyVector computes the dense k-mer frequency vector of seq directly.
func FrequencyVector(seq []byte, k int) []float64 {
	c := NewCounter(k)
	c.Observe(seq, MustExtractor(k))
	return c.FrequencyVector()
}

// Ranks converts a vector into fractional ranks (average rank for ties),
// the preprocessing step for Spearman correlation/distance.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j], 1-based ranks
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			ranks[idx[t]] = avg
		}
		i = j + 1
	}
	return ranks
}

// SpearmanDistance returns 1 - Spearman rank correlation between two
// equal-length frequency vectors; 0 means identical rankings, values near 2
// mean perfectly opposed rankings. Constant vectors yield distance 1
// (no information).
func SpearmanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("kmer: SpearmanDistance length mismatch")
	}
	ra, rb := Ranks(a), Ranks(b)
	n := float64(len(a))
	if n == 0 {
		return 1
	}
	meanA, meanB := 0.0, 0.0
	for i := range ra {
		meanA += ra[i]
		meanB += rb[i]
	}
	meanA /= n
	meanB /= n
	var cov, varA, varB float64
	for i := range ra {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 1
	}
	rho := cov / math.Sqrt(varA*varB)
	return 1 - rho
}

// WordDistance is the k-mer (word) distance used by the ESPRIT baseline:
// d = 1 - sum_w min(c1(w), c2(w)) / (min(L1, L2) - k + 1), where c are
// occurrence counts and L sequence lengths. It approximates alignment
// distance without performing an alignment.
func WordDistance(c1, c2 *Counter, len1, len2 int) float64 {
	if c1.K != c2.K {
		panic("kmer: WordDistance k mismatch")
	}
	small, large := c1, c2
	if len(small.counts) > len(large.counts) {
		small, large = large, small
	}
	common := 0
	for km, cnt := range small.counts {
		o := large.counts[km]
		if o < cnt {
			common += o
		} else {
			common += cnt
		}
	}
	denom := len1
	if len2 < denom {
		denom = len2
	}
	denom = denom - c1.K + 1
	if denom <= 0 {
		return 1
	}
	d := 1 - float64(common)/float64(denom)
	if d < 0 {
		return 0
	}
	return d
}
