package kmer

import "sort"

// Set is a set of packed k-mers.
type Set map[uint64]struct{}

// Add inserts km into the set.
func (s Set) Add(km uint64) { s[km] = struct{}{} }

// Contains reports whether km is in the set.
func (s Set) Contains(km uint64) bool {
	_, ok := s[km]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Sorted returns the elements in ascending order.
func (s Set) Sorted() []uint64 {
	out := make([]uint64, 0, len(s))
	for km := range s {
		out = append(out, km)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Jaccard returns the exact Jaccard similarity |A∩B| / |A∪B| of two sets.
// Two empty sets have similarity 0 by convention.
func Jaccard(a, b Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for km := range small {
		if large.Contains(km) {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Intersection returns a new set containing elements present in both a and b.
func Intersection(a, b Set) Set {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	out := make(Set, len(small))
	for km := range small {
		if large.Contains(km) {
			out.Add(km)
		}
	}
	return out
}

// Union returns a new set containing elements present in either a or b.
func Union(a, b Set) Set {
	out := make(Set, len(a)+len(b))
	for km := range a {
		out.Add(km)
	}
	for km := range b {
		out.Add(km)
	}
	return out
}

// FromSlice builds a Set from a slice of packed k-mers.
func FromSlice(kms []uint64) Set {
	s := make(Set, len(kms))
	for _, km := range kms {
		s.Add(km)
	}
	return s
}
