// Package kmer extracts fixed-length subsequences (k-mers) from DNA reads
// and represents them as packed 64-bit integers.
//
// This is the paper's TranslateToKmer step: every read becomes a *set* of
// k-mer features over which minwise hashing estimates Jaccard similarity.
// A k-mer of length k <= 31 packs into a uint64 using the 2-bit code
// A=0 C=1 G=2 T=3; windows containing an ambiguous base are skipped.
package kmer

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// MaxK is the largest supported k-mer size (2 bits per base in a uint64,
// with one sentinel bit reserved so encodings of different k never collide).
const MaxK = 31

// Extractor turns sequences into k-mer feature sets.
type Extractor struct {
	// K is the k-mer length, 1..MaxK.
	K int
	// Canonical, when set, replaces each k-mer with the lexicographically
	// smaller of itself and its reverse complement so that strand
	// orientation does not affect the feature set. Whole-metagenome
	// shotgun reads come from both strands; 16S amplicons do not.
	Canonical bool
}

// NewExtractor returns an extractor for k-mers of length k.
func NewExtractor(k int) (*Extractor, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("kmer: k must be in [1,%d], got %d", MaxK, k)
	}
	return &Extractor{K: k}, nil
}

// MustExtractor is NewExtractor for known-good k, panicking otherwise.
func MustExtractor(k int) *Extractor {
	e, err := NewExtractor(k)
	if err != nil {
		panic(err)
	}
	return e
}

// Set returns the distinct k-mers of seq as packed integers.
// Windows containing ambiguous bases are skipped. The result order is
// unspecified. A sequence shorter than k yields an empty set.
func (e *Extractor) Set(seq []byte) Set {
	set := make(Set, max(0, len(seq)-e.K+1))
	e.appendInto(seq, func(km uint64) { set[km] = struct{}{} })
	return set
}

// Slice returns every k-mer occurrence of seq in order, including
// duplicates. Windows containing ambiguous bases are skipped.
func (e *Extractor) Slice(seq []byte) []uint64 {
	return e.SliceInto(make([]uint64, 0, max(0, len(seq)-e.K+1)), seq)
}

// SliceInto appends every k-mer occurrence of seq to dst and returns the
// extended slice, reusing dst's backing array when it has capacity —
// the buffer-recycling form of Slice for hot loops that process many
// sequences.
func (e *Extractor) SliceInto(dst []uint64, seq []byte) []uint64 {
	e.appendInto(seq, func(km uint64) { dst = append(dst, km) })
	return dst
}

// appendInto streams packed k-mers of seq to emit using a rolling window.
func (e *Extractor) appendInto(seq []byte, emit func(uint64)) {
	k := e.K
	if len(seq) < k {
		return
	}
	mask := uint64(1)<<(2*k) - 1
	var fwd, rc uint64
	valid := 0 // number of consecutive unambiguous bases ending at i
	rcShift := uint(2 * (k - 1))
	for i := 0; i < len(seq); i++ {
		c := fasta.BaseCode(seq[i])
		if c < 0 {
			valid = 0
			fwd, rc = 0, 0
			continue
		}
		fwd = ((fwd << 2) | uint64(c)) & mask
		rc = (rc >> 2) | (uint64(3-c) << rcShift)
		if valid < k {
			valid++
		}
		if valid == k {
			km := fwd
			if e.Canonical && rc < km {
				km = rc
			}
			emit(km)
		}
	}
}

// Pack encodes an unambiguous DNA string of length <= MaxK into a uint64.
func Pack(seq []byte) (uint64, error) {
	if len(seq) == 0 || len(seq) > MaxK {
		return 0, fmt.Errorf("kmer: cannot pack sequence of length %d", len(seq))
	}
	var v uint64
	for _, b := range seq {
		c := fasta.BaseCode(b)
		if c < 0 {
			return 0, fmt.Errorf("kmer: ambiguous base %q", b)
		}
		v = (v << 2) | uint64(c)
	}
	return v, nil
}

// Unpack decodes a packed k-mer of length k back to a DNA string.
func Unpack(km uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = fasta.CodeBase(int8(km & 3))
		km >>= 2
	}
	return out
}

// ReverseComplement returns the reverse complement of a packed k-mer.
func ReverseComplement(km uint64, k int) uint64 {
	var rc uint64
	for i := 0; i < k; i++ {
		rc = (rc << 2) | (3 - (km & 3))
		km >>= 2
	}
	return rc
}

// FeatureSpace returns the number of possible k-mers, 4^k, saturating at
// the maximum uint64 for large k (k <= MaxK keeps this exact).
func FeatureSpace(k int) uint64 {
	if k >= 32 {
		return ^uint64(0)
	}
	return uint64(1) << (2 * k)
}
