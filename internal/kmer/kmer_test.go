package kmer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewExtractorBounds(t *testing.T) {
	if _, err := NewExtractor(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewExtractor(32); err == nil {
		t.Error("k=32 should fail")
	}
	if _, err := NewExtractor(31); err != nil {
		t.Errorf("k=31 should succeed: %v", err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	seqs := []string{"A", "ACGT", "TTTTTTTT", "GATTACA", "ACGTACGTACGTACGTACGTACGTACGTACG"}
	for _, s := range seqs {
		v, err := Pack([]byte(s))
		if err != nil {
			t.Fatalf("Pack(%q): %v", s, err)
		}
		if got := string(Unpack(v, len(s))); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack([]byte("")); err == nil {
		t.Error("empty pack should fail")
	}
	if _, err := Pack([]byte("ACGN")); err == nil {
		t.Error("ambiguous pack should fail")
	}
	if _, err := Pack(make([]byte, 32)); err == nil {
		t.Error("len 32 pack should fail")
	}
}

func TestSliceOrderAndValues(t *testing.T) {
	e := MustExtractor(3)
	got := e.Slice([]byte("ACGTA"))
	want := []string{"ACG", "CGT", "GTA"}
	if len(got) != len(want) {
		t.Fatalf("got %d kmers, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(Unpack(got[i], 3)) != w {
			t.Errorf("kmer %d = %s, want %s", i, Unpack(got[i], 3), w)
		}
	}
}

func TestSliceIntoReusesBuffer(t *testing.T) {
	e := MustExtractor(3)
	buf := make([]uint64, 0, 16)
	a := e.SliceInto(buf, []byte("ACGTA"))
	if len(a) != 3 || &a[0] != &buf[:1][0] {
		t.Fatalf("SliceInto did not reuse the buffer (len %d)", len(a))
	}
	b := e.SliceInto(a[:0], []byte("TTTT"))
	want := e.Slice([]byte("TTTT"))
	if len(b) != len(want) {
		t.Fatalf("got %d kmers, want %d", len(b), len(want))
	}
	for i := range b {
		if b[i] != want[i] {
			t.Errorf("kmer %d = %d, want %d", i, b[i], want[i])
		}
	}
}

func TestAmbiguousBasesBreakWindows(t *testing.T) {
	e := MustExtractor(3)
	got := e.Slice([]byte("ACNGTA"))
	// windows: ACN, CNG, NGT all contain N -> only GTA remains
	if len(got) != 1 || string(Unpack(got[0], 3)) != "GTA" {
		t.Fatalf("got %v", got)
	}
}

func TestShortSequenceYieldsEmpty(t *testing.T) {
	e := MustExtractor(5)
	if got := e.Slice([]byte("ACGT")); len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
	if got := e.Set([]byte("ACGT")); got.Len() != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestSetDeduplicates(t *testing.T) {
	e := MustExtractor(2)
	s := e.Set([]byte("AAAA")) // AA three times
	if s.Len() != 1 {
		t.Fatalf("set size %d, want 1", s.Len())
	}
}

func TestCanonicalMatchesReverseComplement(t *testing.T) {
	e := &Extractor{K: 5, Canonical: true}
	fwd := e.Set([]byte("ACGTACGGTTCA"))
	rc := e.Set([]byte("TGAACCGTACGT")) // reverse complement of the above
	if Jaccard(fwd, rc) != 1 {
		t.Fatalf("canonical sets differ: %v vs %v", fwd.Sorted(), rc.Sorted())
	}
}

func TestRollingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		n := rng.Intn(100)
		seq := make([]byte, n)
		for i := range seq {
			seq[i] = "ACGTN"[rng.Intn(5)] // occasionally ambiguous
		}
		e := MustExtractor(k)
		got := e.Slice(seq)
		var want []uint64
		for i := 0; i+k <= n; i++ {
			v, err := Pack(seq[i : i+k])
			if err == nil {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d seq=%q: got %d kmers, want %d", k, seq, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d seq=%q: kmer %d mismatch", k, seq, i)
			}
		}
	}
}

func TestReverseComplementPacked(t *testing.T) {
	v, _ := Pack([]byte("ACGGT"))
	rc := ReverseComplement(v, 5)
	if got := string(Unpack(rc, 5)); got != "ACCGT" {
		t.Fatalf("rc = %q, want ACCGT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(v uint64) bool {
		km := v & (1<<40 - 1) // k=20
		return ReverseComplement(ReverseComplement(km, 20), 20) == km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureSpace(t *testing.T) {
	if FeatureSpace(1) != 4 || FeatureSpace(5) != 1024 || FeatureSpace(10) != 1<<20 {
		t.Fatal("FeatureSpace wrong")
	}
	if FeatureSpace(32) != ^uint64(0) {
		t.Fatal("FeatureSpace should saturate")
	}
}

func TestJaccardBasics(t *testing.T) {
	a := FromSlice([]uint64{1, 2, 3, 4})
	b := FromSlice([]uint64{3, 4, 5, 6})
	if got := Jaccard(a, b); got != 2.0/6.0 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self Jaccard should be 1")
	}
	if Jaccard(Set{}, Set{}) != 0 {
		t.Fatal("empty Jaccard should be 0")
	}
	if Jaccard(a, Set{}) != 0 {
		t.Fatal("disjoint-with-empty Jaccard should be 0")
	}
}

func TestJaccardSymmetry(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a, b := FromSlice(xs), FromSlice(ys)
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardRange(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		j := Jaccard(FromSlice(xs), FromSlice(ys))
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionUnion(t *testing.T) {
	a := FromSlice([]uint64{1, 2, 3})
	b := FromSlice([]uint64{2, 3, 4})
	if got := Intersection(a, b); got.Len() != 2 || !got.Contains(2) || !got.Contains(3) {
		t.Fatalf("Intersection = %v", got.Sorted())
	}
	if got := Union(a, b); got.Len() != 4 {
		t.Fatalf("Union = %v", got.Sorted())
	}
}

func TestSortedIsSorted(t *testing.T) {
	s := FromSlice([]uint64{9, 1, 5, 3})
	got := s.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter(2)
	c.Observe([]byte("AAAA"), MustExtractor(2)) // AA x3
	if c.Total() != 3 || c.Distinct() != 1 {
		t.Fatalf("total=%d distinct=%d", c.Total(), c.Distinct())
	}
	aa, _ := Pack([]byte("AA"))
	if c.Count(aa) != 3 || c.Frequency(aa) != 1 {
		t.Fatalf("count=%d freq=%v", c.Count(aa), c.Frequency(aa))
	}
}

func TestFrequencyVector(t *testing.T) {
	v := FrequencyVector([]byte("ACGT"), 1)
	for i := 0; i < 4; i++ {
		if v[i] != 0.25 {
			t.Fatalf("v=%v", v)
		}
	}
	sum := 0.0
	for _, x := range FrequencyVector([]byte("ACGTACGGTT"), 2) {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("frequencies sum to %v", sum)
	}
}

func TestFrequencyVectorPanicsForLargeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > 8")
		}
	}()
	c := NewCounter(9)
	c.FrequencyVector()
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 5})
	want := []float64{2, 3.5, 3.5, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := SpearmanDistance(a, a); d > 1e-12 {
		t.Fatalf("self distance %v", d)
	}
	rev := []float64{4, 3, 2, 1}
	if d := SpearmanDistance(a, rev); d < 1.99 || d > 2.01 {
		t.Fatalf("reversed distance %v, want 2", d)
	}
	flat := []float64{1, 1, 1, 1}
	if d := SpearmanDistance(a, flat); d != 1 {
		t.Fatalf("constant distance %v, want 1", d)
	}
}

func TestWordDistance(t *testing.T) {
	e := MustExtractor(3)
	c1, c2 := NewCounter(3), NewCounter(3)
	s1 := []byte("ACGTACGT")
	c1.Observe(s1, e)
	c2.Observe(s1, e)
	if d := WordDistance(c1, c2, len(s1), len(s1)); d != 0 {
		t.Fatalf("identical word distance %v", d)
	}
	c3 := NewCounter(3)
	c3.Observe([]byte("TTTTTTTT"), e)
	if d := WordDistance(c1, c3, 8, 8); d != 1 {
		t.Fatalf("disjoint word distance %v", d)
	}
}

func BenchmarkExtractSet(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	seq := make([]byte, 1000)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	e := MustExtractor(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Set(seq)
	}
}
