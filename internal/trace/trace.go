// Package trace is the observability layer of the simulated Hadoop stack:
// a low-overhead span recorder that the MapReduce engine feeds with one
// span per task (map, combine, shuffle transfer, sort, reduce), the DFS
// feeds with block-level I/O events, and the Pig interpreter feeds with
// one span per logical operator — so a whole Algorithm-3 run yields a
// single nested timeline on the virtual cluster clock.
//
// Spans carry two time axes. The virtual axis (VStart/VDur) is the
// simulated cluster's modelled wall clock — the quantity behind the
// paper's Figure 2 — advanced by the engine as jobs complete. The real
// axis (RStart/RDur) is measured local execution time, useful for finding
// where the simulation itself burns cycles.
//
// Every method is nil-safe: a nil *Recorder is the disabled state and all
// operations on it are allocation-free no-ops, so production and benchmark
// paths pay nothing when tracing is off.
package trace

import (
	"sync"
	"time"
)

// Kind classifies a span.
type Kind uint8

// Span kinds, one per instrumented stage of the stack.
const (
	KindJob Kind = iota
	KindMap
	KindCombine
	KindShuffle
	KindSort
	KindReduce
	KindDFSRead
	KindDFSWrite
	KindReplicate
	KindPigOp
	KindCommit
	KindAbort
	KindSpill
	KindMerge
	KindIngest
	KindSnapshot
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindJob:
		return "job"
	case KindMap:
		return "map"
	case KindCombine:
		return "combine"
	case KindShuffle:
		return "shuffle"
	case KindSort:
		return "sort"
	case KindReduce:
		return "reduce"
	case KindDFSRead:
		return "dfs.read"
	case KindDFSWrite:
		return "dfs.write"
	case KindReplicate:
		return "dfs.replicate"
	case KindPigOp:
		return "pig.op"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindSpill:
		return "spill"
	case KindMerge:
		return "merge"
	case KindIngest:
		return "ingest"
	case KindSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Span is one recorded event or interval.
type Span struct {
	// ID is unique within a recorder; Parent is the enclosing span's ID
	// (0 = root).
	ID     int64
	Parent int64
	Kind   Kind
	// Name labels the span (job name, "map[3]", operator text, DFS path).
	Name string
	// Node is the simulated cluster/datanode id the work ran on; -1 means
	// the driver or an unplaced event.
	Node int
	// Records and Bytes quantify the work (input records, moved bytes).
	Records int64
	Bytes   int64
	// Detail carries small freeform context (a DFS path, "local"/"remote",
	// a fault-injection failure reason).
	Detail string
	// Attempt is the 1-based task attempt number on faulted runs (0 when
	// fault injection is off — the span is the only attempt).
	Attempt int
	// Status is the attempt outcome on faulted runs ("success", "crashed",
	// "killed"; empty means success).
	Status string
	// VStart/VDur locate the span on the virtual cluster timeline.
	VStart time.Duration
	VDur   time.Duration
	// RStart/RDur locate the span on the real timeline, as offsets from
	// the recorder's creation.
	RStart time.Duration
	RDur   time.Duration
}

// SpanRef identifies an open span returned by Begin. The zero value is
// invalid and End ignores it.
type SpanRef struct {
	// ID is the referenced span's ID (0 when the recorder is disabled).
	ID  int64
	idx int64 // spans index + 1
}

// Recorder accumulates spans. It is safe for concurrent use: the engine's
// worker pool, the DFS and the Pig driver may all emit into one recorder.
// A nil Recorder is disabled; all methods are no-ops on it.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	spans  []Span
	nextID int64
	vclock time.Duration
	stack  []int64 // open Begin spans, innermost last
}

// New returns an empty, enabled recorder.
func New() *Recorder {
	return &Recorder{start: time.Now(), nextID: 1}
}

// Enabled reports whether the recorder collects spans. Call sites guard
// expensive span construction (fmt.Sprintf names, per-task timestamps)
// behind it so the disabled path stays allocation-free.
func (r *Recorder) Enabled() bool { return r != nil }

// VirtualNow returns the current position of the virtual cluster clock.
func (r *Recorder) VirtualNow() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vclock
}

// AdvanceVirtual moves the virtual clock forward by d (one job's modelled
// duration). The engine calls this once per completed job.
func (r *Recorder) AdvanceVirtual(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.vclock += d
	r.mu.Unlock()
}

// RealNow returns the offset of the real clock from the recorder's start,
// suitable for Span.RStart.
func (r *Recorder) RealNow() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Begin opens a nested span at the current virtual and real clocks and
// makes it the parent of spans emitted until the matching End. Begin/End
// pairs must come from one goroutine at a time (the engine's job level and
// the Pig driver's statement level are both sequential); Emit may be
// called concurrently from any worker goroutine in between.
func (r *Recorder) Begin(kind Kind, name string) SpanRef {
	if r == nil {
		return SpanRef{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	var parent int64
	if n := len(r.stack); n > 0 {
		parent = r.stack[n-1]
	}
	r.spans = append(r.spans, Span{
		ID:     id,
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Node:   -1,
		VStart: r.vclock,
		RStart: time.Since(r.start),
	})
	r.stack = append(r.stack, id)
	return SpanRef{ID: id, idx: int64(len(r.spans))}
}

// End closes a span opened by Begin: its virtual duration is the clock
// advance since Begin and its real duration the elapsed local time.
func (r *Recorder) End(ref SpanRef) {
	if r == nil || ref.idx == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &r.spans[ref.idx-1]
	sp.VDur = r.vclock - sp.VStart
	sp.RDur = time.Since(r.start) - sp.RStart
	// Pop the span (and anything left open above it) off the parent stack.
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == sp.ID {
			r.stack = r.stack[:i]
			break
		}
	}
}

// Emit records a completed span. The ID is assigned by the recorder; a
// zero Parent inherits the innermost open Begin span.
func (r *Recorder) Emit(s Span) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.ID = r.nextID
	r.nextID++
	if s.Parent == 0 {
		if n := len(r.stack); n > 0 {
			s.Parent = r.stack[n-1]
		}
	}
	r.spans = append(r.spans, s)
	return s.ID
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a snapshot copy of all recorded spans in emission order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
