package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event exporter. The output is the JSON object format
// understood by chrome://tracing and Perfetto: spans become complete ("X")
// events on the virtual timeline, zero-duration spans become thread-scoped
// instant ("i") events, and each simulated node renders as its own thread
// row. Timestamps are microseconds of virtual cluster time.

// chromeEvent is one trace_event entry. Field order fixes the JSON key
// order, keeping the export byte-stable for golden tests.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  int64       `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries span metadata into the trace viewer's detail pane.
type chromeArgs struct {
	ThreadName string `json:"name,omitempty"` // thread_name metadata only
	ID         int64  `json:"id,omitempty"`
	Parent     int64  `json:"parent,omitempty"`
	Records    int64  `json:"records,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	Status     string `json:"status,omitempty"`
	RealUS     int64  `json:"real_us,omitempty"`
}

// chromeTID maps a span to its thread row: tid 0 is the driver (jobs, Pig
// operators), tid n+1 is simulated node n.
func chromeTID(s Span) int {
	if s.Node < 0 {
		return 0
	}
	return s.Node + 1
}

// WriteChromeTrace renders spans as a Chrome trace_event file. Output is
// deterministic given the spans: metadata rows first (sorted by tid), then
// span events in emission order.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	tids := map[int]bool{0: true}
	for _, s := range spans {
		tids[chromeTID(s)] = true
	}
	ordered := make([]int, 0, len(tids))
	for tid := range tids {
		ordered = append(ordered, tid)
	}
	sort.Ints(ordered)

	events := make([]chromeEvent, 0, len(spans)+len(ordered))
	for _, tid := range ordered {
		name := "driver"
		if tid > 0 {
			name = fmt.Sprintf("node %d", tid-1)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: &chromeArgs{ThreadName: name},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ts:   s.VStart.Microseconds(),
			Pid:  1,
			Tid:  chromeTID(s),
			Args: &chromeArgs{
				ID:      s.ID,
				Parent:  s.Parent,
				Records: s.Records,
				Bytes:   s.Bytes,
				Detail:  s.Detail,
				Attempt: s.Attempt,
				Status:  s.Status,
				RealUS:  s.RDur.Microseconds(),
			},
		}
		if s.VDur > 0 {
			ev.Ph = "X"
			ev.Dur = s.VDur.Microseconds()
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		events = append(events, ev)
	}

	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
