package trace

import (
	"encoding/json"
	"io"
)

// JSON-lines exporter: one span object per line, for ad-hoc analysis with
// jq/awk or loading into a dataframe. Durations are microseconds.

// jsonlSpan is the serialized shape of one span.
type jsonlSpan struct {
	ID       int64  `json:"id"`
	Parent   int64  `json:"parent,omitempty"`
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	Node     int    `json:"node"`
	Records  int64  `json:"records,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Status   string `json:"status,omitempty"`
	VStartUS int64  `json:"v_start_us"`
	VDurUS   int64  `json:"v_dur_us"`
	RStartUS int64  `json:"r_start_us"`
	RDurUS   int64  `json:"r_dur_us"`
}

// WriteJSONL writes spans one JSON object per line in emission order.
func WriteJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(jsonlSpan{
			ID:       s.ID,
			Parent:   s.Parent,
			Kind:     s.Kind.String(),
			Name:     s.Name,
			Node:     s.Node,
			Records:  s.Records,
			Bytes:    s.Bytes,
			Detail:   s.Detail,
			Attempt:  s.Attempt,
			Status:   s.Status,
			VStartUS: s.VStart.Microseconds(),
			VDurUS:   s.VDur.Microseconds(),
			RStartUS: s.RStart.Microseconds(),
			RDurUS:   s.RDur.Microseconds(),
		}); err != nil {
			return err
		}
	}
	return nil
}
