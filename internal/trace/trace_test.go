package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledRecorderNoOp exercises every method on a nil recorder: all
// must be safe no-ops so call sites need no nil checks of their own.
func TestDisabledRecorderNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	ref := r.Begin(KindJob, "job")
	if ref.ID != 0 {
		t.Fatalf("nil Begin returned live ref %+v", ref)
	}
	r.End(ref)
	if id := r.Emit(Span{Kind: KindMap, Name: "m"}); id != 0 {
		t.Fatalf("nil Emit returned id %d", id)
	}
	r.AdvanceVirtual(time.Second)
	if got := r.VirtualNow(); got != 0 {
		t.Fatalf("nil VirtualNow = %v", got)
	}
	if got := r.RealNow(); got != 0 {
		t.Fatalf("nil RealNow = %v", got)
	}
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder holds spans")
	}
}

// TestDisabledRecorderZeroAlloc pins the disabled path's allocation count
// to zero — the property that keeps benchmarks honest when tracing is off.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		ref := r.Begin(KindJob, "job")
		r.Emit(Span{Kind: KindMap})
		r.AdvanceVirtual(time.Second)
		_ = r.VirtualNow()
		r.End(ref)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v per op cycle, want 0", allocs)
	}
}

// TestBeginEndNesting checks parent wiring and virtual-duration accounting
// through a job-in-operator shape.
func TestBeginEndNesting(t *testing.T) {
	r := New()
	op := r.Begin(KindPigOp, "FOREACH B")
	job := r.Begin(KindJob, "foreach-B")
	task := r.Emit(Span{Kind: KindMap, Name: "map[0]", Node: 2, VStart: r.VirtualNow(), VDur: time.Second})
	r.AdvanceVirtual(3 * time.Second)
	r.End(job)
	r.AdvanceVirtual(2 * time.Second)
	r.End(op)

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byID := map[int64]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	if byID[job.ID].Parent != op.ID {
		t.Fatalf("job parent = %d, want %d", byID[job.ID].Parent, op.ID)
	}
	if byID[task].Parent != job.ID {
		t.Fatalf("task parent = %d, want %d", byID[task].Parent, job.ID)
	}
	if got := byID[job.ID].VDur; got != 3*time.Second {
		t.Fatalf("job VDur = %v, want 3s", got)
	}
	if got := byID[op.ID].VDur; got != 5*time.Second {
		t.Fatalf("op VDur = %v, want 5s", got)
	}
	if got := r.VirtualNow(); got != 5*time.Second {
		t.Fatalf("virtual clock = %v, want 5s", got)
	}
}

// TestConcurrentEmit hammers one recorder from many goroutines — the
// engine's worker-pool shape — and must pass under -race.
func TestConcurrentEmit(t *testing.T) {
	const goroutines = 16
	const perG = 200
	r := New()
	job := r.Begin(KindJob, "stress")
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Emit(Span{Kind: KindMap, Name: "m", Node: g, Records: 1})
				_ = r.VirtualNow()
				if i%50 == 0 {
					_ = r.Spans()
				}
			}
		}(g)
	}
	wg.Wait()
	r.AdvanceVirtual(time.Second)
	r.End(job)

	spans := r.Spans()
	if want := goroutines*perG + 1; len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	seen := map[int64]bool{}
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatal("span with zero ID")
		}
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
		if s.Kind == KindMap && s.Parent != job.ID {
			t.Fatalf("worker span parent = %d, want %d", s.Parent, job.ID)
		}
	}
}

// TestEndOutOfOrder verifies that End on an outer span pops inner spans
// left open (error-path robustness).
func TestEndOutOfOrder(t *testing.T) {
	r := New()
	outer := r.Begin(KindPigOp, "op")
	_ = r.Begin(KindJob, "inner") // never ended: simulated error path
	r.End(outer)
	if id := r.Emit(Span{Kind: KindDFSRead}); id == 0 {
		t.Fatal("emit failed after out-of-order end")
	}
	spans := r.Spans()
	if got := spans[len(spans)-1].Parent; got != 0 {
		t.Fatalf("post-End emit parent = %d, want 0 (stack cleared)", got)
	}
}

// TestUtilizationSummary checks the busy-time math and that child spans do
// not double-count.
func TestUtilizationSummary(t *testing.T) {
	spans := []Span{
		{ID: 1, Kind: KindJob, Name: "j", Node: -1, VStart: 0, VDur: 10 * time.Second},
		{ID: 2, Kind: KindMap, Name: "m0", Node: 0, VStart: 0, VDur: 4 * time.Second},
		{ID: 3, Kind: KindMap, Name: "m1", Node: 1, VStart: 0, VDur: 8 * time.Second},
		{ID: 4, Kind: KindReduce, Name: "r0", Node: 0, VStart: 4 * time.Second, VDur: 2 * time.Second},
		// shuffle child inside r0's window: must not add busy time
		{ID: 5, Kind: KindShuffle, Name: "s0", Node: 0, VStart: 4 * time.Second, VDur: time.Second},
	}
	nodes, makespan := Utilization(spans)
	if makespan != 10*time.Second {
		t.Fatalf("makespan = %v, want 10s", makespan)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}
	if nodes[0].Node != 0 || nodes[0].Busy != 6*time.Second || nodes[0].Tasks != 2 {
		t.Fatalf("node 0 = %+v, want busy 6s over 2 tasks", nodes[0])
	}
	if nodes[1].Node != 1 || nodes[1].Busy != 8*time.Second {
		t.Fatalf("node 1 = %+v, want busy 8s", nodes[1])
	}
	text := UtilizationSummary(spans)
	for _, want := range []string{"virtual makespan 10s", "node", "60%", "80%"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
}

// TestUtilizationSummaryEmpty keeps the no-spans path readable.
func TestUtilizationSummaryEmpty(t *testing.T) {
	if text := UtilizationSummary(nil); !strings.Contains(text, "no node-attributed") {
		t.Fatalf("empty summary = %q", text)
	}
}
