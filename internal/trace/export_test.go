package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenSpans is a fixed miniature run: one Pig operator wrapping one job
// with two map tasks, a shuffle transfer, a reduce task and a DFS read.
func goldenSpans() []Span {
	ms := time.Millisecond
	return []Span{
		{ID: 1, Kind: KindPigOp, Name: "FOREACH B", Node: -1, VStart: 0, VDur: 26000 * ms, RDur: 1500 * time.Microsecond},
		{ID: 2, Parent: 1, Kind: KindJob, Name: "foreach-B", Node: -1, VStart: 0, VDur: 26000 * ms, RDur: 1200 * time.Microsecond},
		{ID: 3, Parent: 2, Kind: KindDFSRead, Name: "dfs.read", Node: 1, Bytes: 4096, Detail: "/in/reads.fa", VStart: 0},
		{ID: 4, Parent: 2, Kind: KindMap, Name: "foreach-B/map[0]", Node: 0, Records: 100, Bytes: 2048, VStart: 20000 * ms, VDur: 3000 * ms, RDur: 800 * time.Microsecond},
		{ID: 5, Parent: 2, Kind: KindMap, Name: "foreach-B/map[1]", Node: 1, Records: 80, Bytes: 1600, VStart: 20000 * ms, VDur: 2400 * ms, RDur: 700 * time.Microsecond},
		{ID: 6, Parent: 7, Kind: KindShuffle, Name: "foreach-B/shuffle[0]", Node: 2, Bytes: 3648, VStart: 23100 * ms, VDur: 100 * ms},
		{ID: 7, Parent: 2, Kind: KindReduce, Name: "foreach-B/reduce[0]", Node: 2, Records: 180, Bytes: 3648, VStart: 23000 * ms, VDur: 3000 * ms, RDur: 900 * time.Microsecond},
	}
}

// TestChromeTraceGolden locks the Chrome exporter's byte-exact output.
// Regenerate with: go test ./internal/trace -run Golden -update-golden
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden file.\n-- got --\n%s\n-- want --\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed parses the export and checks the trace_event
// invariants chrome://tracing relies on.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if cat, ok := ev["cat"].(string); ok {
			cats[cat]++
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("missing phases: %v", phases)
	}
	for _, want := range []string{"map", "shuffle", "reduce", "dfs.read", "pig.op", "job"} {
		if cats[want] == 0 {
			t.Fatalf("no %q events in export: %v", want, cats)
		}
	}
}

// TestWriteJSONL checks one-object-per-line output round-trips.
func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(goldenSpans()) {
		t.Fatalf("got %d lines, want %d", len(lines), len(goldenSpans()))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "pig.op" || first["v_dur_us"] != float64(26_000_000) {
		t.Fatalf("first line = %v", first)
	}
}
