package trace

import (
	"bufio"
	"os"
	"strings"
)

// WriteFile exports spans to path, picking the format from the extension:
// ".jsonl" (or ".ndjson") writes one JSON span per line, anything else
// writes the Chrome trace_event format loadable in chrome://tracing and
// Perfetto.
func WriteFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	switch {
	case strings.HasSuffix(path, ".jsonl"), strings.HasSuffix(path, ".ndjson"):
		err = WriteJSONL(w, spans)
	default:
		err = WriteChromeTrace(w, spans)
	}
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
