package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ASCII per-node utilization summary — the quick look at where virtual
// time went without leaving the terminal. Only top-level task spans (map
// and reduce) count as busy time; their children (combine, shuffle, sort)
// live inside the same window and would double-count.

// NodeUtilization aggregates one node's share of the virtual timeline.
type NodeUtilization struct {
	Node  int
	Tasks int
	Busy  time.Duration
}

// Utilization computes per-node busy time and the overall virtual
// makespan (latest span end) from a span set.
func Utilization(spans []Span) ([]NodeUtilization, time.Duration) {
	perNode := map[int]*NodeUtilization{}
	var makespan time.Duration
	for _, s := range spans {
		if end := s.VStart + s.VDur; end > makespan {
			makespan = end
		}
		if s.Node < 0 || s.VDur <= 0 {
			continue
		}
		if s.Kind != KindMap && s.Kind != KindReduce {
			continue
		}
		nu := perNode[s.Node]
		if nu == nil {
			nu = &NodeUtilization{Node: s.Node}
			perNode[s.Node] = nu
		}
		nu.Tasks++
		nu.Busy += s.VDur
	}
	out := make([]NodeUtilization, 0, len(perNode))
	for _, nu := range perNode {
		out = append(out, *nu)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, makespan
}

// UtilizationSummary renders the per-node busy-time table with bar-chart
// utilization against the virtual makespan.
func UtilizationSummary(spans []Span) string {
	nodes, makespan := Utilization(spans)
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-node utilization (virtual makespan %s, %d spans)\n",
		roundDur(makespan), len(spans))
	if len(nodes) == 0 {
		sb.WriteString("  no node-attributed task spans recorded\n")
		return sb.String()
	}
	const barWidth = 24
	fmt.Fprintf(&sb, "  %4s  %5s  %10s  %-*s %5s\n", "node", "tasks", "busy", barWidth, "", "util")
	for _, nu := range nodes {
		frac := 0.0
		if makespan > 0 {
			frac = float64(nu.Busy) / float64(makespan)
		}
		if frac > 1 {
			frac = 1
		}
		filled := int(frac*barWidth + 0.5)
		bar := strings.Repeat("#", filled) + strings.Repeat(".", barWidth-filled)
		fmt.Fprintf(&sb, "  %4d  %5d  %10s  %s %4.0f%%\n",
			nu.Node, nu.Tasks, roundDur(nu.Busy), bar, frac*100)
	}
	return sb.String()
}

// roundDur trims durations to milliseconds for display.
func roundDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
