package dfs

import (
	"bytes"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/trace"
)

// TestFileSystemTraceSpans checks block writes, local/remote reads and
// re-replication all emit spans carrying node ids, byte counts and paths.
func TestFileSystemTraceSpans(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 8, Replication: 2})
	rec := trace.New()
	fs.SetTrace(rec)

	data := bytes.Repeat([]byte("x"), 20) // 3 blocks
	if err := fs.WriteFile("/t/file", data); err != nil {
		t.Fatal(err)
	}
	writes := spansOf(rec, trace.KindDFSWrite)
	if len(writes) != 3 {
		t.Fatalf("got %d write spans, want 3", len(writes))
	}
	var written int64
	for _, s := range writes {
		if s.Detail != "/t/file" {
			t.Fatalf("write span detail = %q", s.Detail)
		}
		if s.Node < 0 {
			t.Fatalf("write span has no node: %+v", s)
		}
		written += s.Bytes
	}
	if want := fs.Stats().BytesWritten; written != want {
		t.Fatalf("write spans carry %d bytes, stats say %d", written, want)
	}

	if _, err := fs.ReadFile("/t/file"); err != nil {
		t.Fatal(err)
	}
	reads := spansOf(rec, trace.KindDFSRead)
	if len(reads) != 3 {
		t.Fatalf("got %d read spans, want 3", len(reads))
	}

	// A near-node read reports locality in the span name.
	blocks, err := fs.Blocks("/t/file")
	if err != nil {
		t.Fatal(err)
	}
	near := blocks[0].Replicas[0]
	if _, _, err := fs.ReadBlock("/t/file", 0, near); err != nil {
		t.Fatal(err)
	}
	reads = spansOf(rec, trace.KindDFSRead)
	if got := reads[len(reads)-1].Name; got != "dfs.read.local" {
		t.Fatalf("near read span name = %q, want dfs.read.local", got)
	}

	// Killing a node and re-replicating emits replicate spans.
	if err := fs.KillDataNode(near); err != nil {
		t.Fatal(err)
	}
	created, err := fs.ReReplicate()
	if err != nil {
		t.Fatal(err)
	}
	reps := spansOf(rec, trace.KindReplicate)
	if len(reps) != created {
		t.Fatalf("got %d replicate spans for %d created replicas", len(reps), created)
	}
	for _, s := range reps {
		if s.Node == near {
			t.Fatalf("replicated onto dead node %d", near)
		}
	}
}

// TestFileSystemUntraced ensures the default (no recorder) path works and
// records nothing.
func TestFileSystemUntraced(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 2, BlockSize: 16, Replication: 1})
	if err := fs.WriteFile("/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/a"); err != nil {
		t.Fatal(err)
	}
}

// spansOf filters a recorder's spans by kind.
func spansOf(rec *trace.Recorder, kind trace.Kind) []trace.Span {
	var out []trace.Span
	for _, s := range rec.Spans() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}
