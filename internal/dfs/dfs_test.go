package dfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func smallFS(t *testing.T) *FileSystem {
	t.Helper()
	fs, err := New(Config{NumDataNodes: 4, BlockSize: 16, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumDataNodes: 0, BlockSize: 10}); err == nil {
		t.Error("0 datanodes accepted")
	}
	if _, err := New(Config{NumDataNodes: 1, BlockSize: 0}); err == nil {
		t.Error("0 block size accepted")
	}
	fs, err := New(Config{NumDataNodes: 2, BlockSize: 10, Replication: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Config().Replication != 2 {
		t.Fatalf("replication not capped: %d", fs.Config().Replication)
	}
	fs2, _ := New(Config{NumDataNodes: 2, BlockSize: 10, Replication: 0})
	if fs2.Config().Replication != 1 {
		t.Fatalf("replication not defaulted: %d", fs2.Config().Replication)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := smallFS(t)
	data := []byte("The quick brown fox jumps over the lazy dog, twice over.")
	if err := fs.WriteFile("/in/reads.fa", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/in/reads.fa")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestWriteSplitsIntoBlocks(t *testing.T) {
	fs := smallFS(t)
	data := make([]byte, 50) // 16-byte blocks -> 4 blocks (16+16+16+2)
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.Len
		if len(b.Replicas) != 2 {
			t.Fatalf("block %v has %d replicas, want 2", b.ID, len(b.Replicas))
		}
	}
	if total != 50 {
		t.Fatalf("block lengths sum to %d", total)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := smallFS(t)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %q", got)
	}
	size, err := fs.Stat("/empty")
	if err != nil || size != 0 {
		t.Fatalf("size=%d err=%v", size, err)
	}
}

func TestOverwriteReleasesOldBlocks(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/f", make([]byte, 64))
	before := 0
	for _, dn := range fs.DataNodes() {
		before += dn.NumBlocks()
	}
	fs.WriteFile("/f", make([]byte, 16))
	after := 0
	for _, dn := range fs.DataNodes() {
		after += dn.NumBlocks()
	}
	if after >= before {
		t.Fatalf("overwrite leaked blocks: before=%d after=%d", before, after)
	}
	got, _ := fs.ReadFile("/f")
	if len(got) != 16 {
		t.Fatalf("overwritten file length %d", len(got))
	}
}

func TestPathValidation(t *testing.T) {
	fs := smallFS(t)
	for _, bad := range []string{"", "relative", "/a//b", "/trailing/"} {
		if err := fs.WriteFile(bad, nil); err == nil {
			t.Errorf("path %q accepted", bad)
		}
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs := smallFS(t)
	if _, err := fs.ReadFile("/nope"); err == nil {
		t.Error("ReadFile on missing file succeeded")
	}
	if _, err := fs.Stat("/nope"); err == nil {
		t.Error("Stat on missing file succeeded")
	}
	if err := fs.Remove("/nope"); err == nil {
		t.Error("Remove on missing file succeeded")
	}
	if _, err := fs.Blocks("/nope"); err == nil {
		t.Error("Blocks on missing file succeeded")
	}
	if _, _, err := fs.ReadBlock("/nope", 0, -1); err == nil {
		t.Error("ReadBlock on missing file succeeded")
	}
}

func TestRemove(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/f", []byte("data"))
	if !fs.Exists("/f") {
		t.Fatal("file should exist")
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file should be gone")
	}
	for _, dn := range fs.DataNodes() {
		if dn.NumBlocks() != 0 {
			t.Fatal("replicas leaked after remove")
		}
	}
}

func TestRename(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/a", []byte("data"))
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") || !fs.Exists("/b") {
		t.Fatal("rename did not move file")
	}
	got, _ := fs.ReadFile("/b")
	if string(got) != "data" {
		t.Fatalf("renamed contents %q", got)
	}
	fs.WriteFile("/c", []byte("x"))
	if err := fs.Rename("/b", "/c"); err == nil {
		t.Fatal("rename over existing file succeeded")
	}
	if err := fs.Rename("/nope", "/d"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

func TestList(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/out/part-0", nil)
	fs.WriteFile("/out/part-1", nil)
	fs.WriteFile("/other", nil)
	got := fs.List("/out/")
	if len(got) != 2 || got[0] != "/out/part-0" || got[1] != "/out/part-1" {
		t.Fatalf("List = %v", got)
	}
}

func TestReadBlockLocality(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/f", make([]byte, 16))
	blocks, _ := fs.Blocks("/f")
	holder := blocks[0].Replicas[0]
	nonHolder := -1
	for i := 0; i < fs.Config().NumDataNodes; i++ {
		if !hasReplica(blocks[0], i) {
			nonHolder = i
			break
		}
	}
	fs.ResetStats()
	if _, local, err := fs.ReadBlock("/f", 0, holder); err != nil || !local {
		t.Fatalf("holder read local=%v err=%v", local, err)
	}
	if _, local, err := fs.ReadBlock("/f", 0, nonHolder); err != nil || local {
		t.Fatalf("non-holder read local=%v err=%v", local, err)
	}
	st := fs.Stats()
	if st.LocalReads != 1 || st.RemoteReads != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, _, err := fs.ReadBlock("/f", 5, -1); err == nil {
		t.Fatal("out of range block accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := smallFS(t)
	fs.WriteFile("/f", make([]byte, 32)) // 2 blocks x 2 replicas
	st := fs.Stats()
	if st.BlocksWritten != 2 || st.BytesWritten != 64 {
		t.Fatalf("write stats %+v", st)
	}
	fs.ReadFile("/f")
	st = fs.Stats()
	if st.BlocksRead != 2 || st.BytesRead != 32 {
		t.Fatalf("read stats %+v", st)
	}
	fs.ResetStats()
	if fs.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestReplicaBalance(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 8, Replication: 1})
	fs.WriteFile("/f", make([]byte, 8*8)) // 8 blocks over 4 nodes
	for _, dn := range fs.DataNodes() {
		if dn.NumBlocks() != 2 {
			t.Fatalf("node %d holds %d blocks, want 2 (round-robin)", dn.ID, dn.NumBlocks())
		}
		if dn.UsedBytes() != 16 {
			t.Fatalf("node %d uses %d bytes", dn.ID, dn.UsedBytes())
		}
	}
}

func TestWriteLinesReadLines(t *testing.T) {
	fs := smallFS(t)
	lines := []string{"alpha", "beta", "gamma delta"}
	if err := fs.WriteLines("/l", lines); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadLines("/l")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "gamma delta" {
		t.Fatalf("ReadLines = %v", got)
	}
	fs.WriteLines("/e", nil)
	if got, _ := fs.ReadLines("/e"); len(got) != 0 {
		t.Fatalf("empty ReadLines = %v", got)
	}
}

func TestLineSplitsCoverAllRecordsExactlyOnce(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 3, BlockSize: 10, Replication: 2})
	var lines []string
	for i := 0; i < 25; i++ {
		lines = append(lines, fmt.Sprintf("record-%02d", i))
	}
	fs.WriteLines("/l", lines)
	splits, err := fs.LineSplits("/l")
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, sp := range splits {
		if len(sp.Hosts) != 2 {
			t.Fatalf("split hosts %v", sp.Hosts)
		}
		all = append(all, sp.Records...)
	}
	if len(all) != len(lines) {
		t.Fatalf("splits contain %d records, want %d", len(all), len(lines))
	}
	for i := range lines {
		if all[i] != lines[i] {
			t.Fatalf("record %d = %q, want %q", i, all[i], lines[i])
		}
	}
}

func TestLineSplitsProperty(t *testing.T) {
	f := func(raw []string, blockSize uint8) bool {
		bs := int(blockSize%32) + 1
		fs := MustNew(Config{NumDataNodes: 2, BlockSize: bs, Replication: 1})
		lines := make([]string, 0, len(raw))
		for _, r := range raw {
			lines = append(lines, strings.Map(func(c rune) rune {
				if c == '\n' || c == '\r' {
					return '.'
				}
				return c
			}, r))
		}
		if err := fs.WriteLines("/x", lines); err != nil {
			return false
		}
		splits, err := fs.LineSplits("/x")
		if err != nil {
			return false
		}
		var all []string
		for _, sp := range splits {
			all = append(all, sp.Records...)
		}
		if len(all) != len(lines) {
			return false
		}
		for i := range lines {
			if all[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 64, Replication: 2})
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				path := fmt.Sprintf("/w%d/f%d", w, i)
				data := make([]byte, rng.Intn(256))
				if err := fs.WriteFile(path, data); err != nil {
					done <- err
					return
				}
				got, err := fs.ReadFile(path)
				if err != nil {
					done <- err
					return
				}
				if len(got) != len(data) {
					done <- fmt.Errorf("length mismatch")
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
