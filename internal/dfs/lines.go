package dfs

import (
	"bytes"
	"strings"
)

// Text-record helpers. MapReduce input formats consume files as line
// records; FASTA records span multiple lines, so a record-aware splitter
// assigns each block's records to exactly one split (the record whose
// start falls in a block belongs to that block, as in Hadoop's
// TextInputFormat contract).

// WriteLines stores records joined by newlines at path.
func (fs *FileSystem) WriteLines(path string, lines []string) error {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return fs.WriteFile(path, buf.Bytes())
}

// ReadLines returns the newline-separated records of path.
func (fs *FileSystem) ReadLines(path string) ([]string, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return nil, nil
	}
	return strings.Split(s, "\n"), nil
}

// Split describes one input split: a contiguous run of whole records
// aligned with a block, plus the nodes that hold the underlying block.
type Split struct {
	Path  string
	Index int
	// Records are the whole text records of this split.
	Records []string
	// Hosts are datanode ids holding the block (for locality scheduling).
	Hosts []int
}

// LineSplits partitions a line-record file into one split per block,
// assigning each line to the block where it starts (Hadoop semantics: a
// mapper reads past its block boundary to finish the last record and skips
// a leading partial record).
func (fs *FileSystem) LineSplits(path string) ([]Split, error) {
	blocks, err := fs.Blocks(path)
	if err != nil {
		return nil, err
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, 0, len(blocks))
	off := 0
	// Precompute line start offsets.
	var starts []int
	for i := 0; i < len(data); i++ {
		if i == 0 || data[i-1] == '\n' {
			starts = append(starts, i)
		}
	}
	li := 0
	for bi, blk := range blocks {
		hi := off + blk.Len
		var records []string
		for li < len(starts) && starts[li] < hi {
			end := len(data)
			if li+1 < len(starts) {
				end = starts[li+1]
			}
			records = append(records, strings.TrimSuffix(string(data[starts[li]:end]), "\n"))
			li++
		}
		splits = append(splits, Split{
			Path:    path,
			Index:   bi,
			Records: records,
			Hosts:   append([]int{}, blk.Replicas...),
		})
		off = hi
	}
	return splits, nil
}
