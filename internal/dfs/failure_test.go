package dfs

import (
	"bytes"
	"testing"
)

func failFS(t *testing.T) *FileSystem {
	t.Helper()
	return MustNew(Config{NumDataNodes: 4, BlockSize: 16, Replication: 2})
}

func TestKillValidation(t *testing.T) {
	fs := failFS(t)
	if err := fs.KillDataNode(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := fs.KillDataNode(9); err == nil {
		t.Error("unknown id accepted")
	}
	if err := fs.KillDataNode(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillDataNode(0); err == nil {
		t.Error("double kill accepted")
	}
	if got := fs.DeadDataNodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("dead %v", got)
	}
}

func TestCannotKillLastNode(t *testing.T) {
	fs := failFS(t)
	for _, id := range []int{0, 1, 2} {
		if err := fs.KillDataNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.KillDataNode(3); err == nil {
		t.Fatal("killed the last live node")
	}
}

func TestReadSurvivesSingleNodeLoss(t *testing.T) {
	fs := failFS(t)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("/f")
	// Kill the primary replica holder of the first block.
	if err := fs.KillDataNode(blocks[0].Replicas[0]); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after node loss")
	}
}

func TestReadFailsWhenAllReplicasDead(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 64, Replication: 1})
	fs.WriteFile("/f", []byte("payload"))
	blocks, _ := fs.Blocks("/f")
	if err := fs.KillDataNode(blocks[0].Replicas[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f"); err == nil {
		t.Fatal("read succeeded with every replica dead")
	}
}

func TestUnderReplicatedDetection(t *testing.T) {
	fs := failFS(t)
	fs.WriteFile("/f", make([]byte, 64)) // 4 blocks x 2 replicas over 4 nodes
	if ur := fs.UnderReplicated(); len(ur) != 0 {
		t.Fatalf("healthy FS reports under-replication: %v", ur)
	}
	fs.KillDataNode(0)
	ur := fs.UnderReplicated()
	if len(ur["/f"]) == 0 {
		t.Fatal("node loss not reflected in under-replication report")
	}
}

func TestReReplicateRestoresReplication(t *testing.T) {
	fs := failFS(t)
	data := make([]byte, 80)
	for i := range data {
		data[i] = byte(i * 3)
	}
	fs.WriteFile("/f", data)
	fs.KillDataNode(1)
	created, err := fs.ReReplicate()
	if err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Fatal("no replicas created")
	}
	if ur := fs.UnderReplicated(); len(ur) != 0 {
		t.Fatalf("still under-replicated after repair: %v", ur)
	}
	// Data still intact, and still intact even if another node dies now.
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch after re-replication: %v", err)
	}
	fs.KillDataNode(2)
	got, err = fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch after second loss: %v", err)
	}
}

func TestReReplicateReportsDataLoss(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 3, BlockSize: 64, Replication: 1})
	fs.WriteFile("/f", []byte("gone"))
	blocks, _ := fs.Blocks("/f")
	fs.KillDataNode(blocks[0].Replicas[0])
	if _, err := fs.ReReplicate(); err == nil {
		t.Fatal("data loss not reported")
	}
}

func TestReviveDataNode(t *testing.T) {
	fs := failFS(t)
	fs.WriteFile("/f", make([]byte, 48))
	if err := fs.ReviveDataNode(0); err == nil {
		t.Fatal("revived a live node")
	}
	fs.KillDataNode(0)
	if err := fs.ReviveDataNode(0); err != nil {
		t.Fatal(err)
	}
	if len(fs.DeadDataNodes()) != 0 {
		t.Fatal("node still dead after revive")
	}
	// Revived node returns empty; its stale replicas are forgotten.
	if fs.DataNodes()[0].NumBlocks() != 0 {
		t.Fatal("revived node kept stale blocks")
	}
	// Re-replication can now use it again.
	if _, err := fs.ReReplicate(); err != nil {
		t.Fatal(err)
	}
	if ur := fs.UnderReplicated(); len(ur) != 0 {
		t.Fatalf("under-replicated after revive+repair: %v", ur)
	}
	if err := fs.ReviveDataNode(9); err == nil {
		t.Fatal("revived unknown node")
	}
}

func TestWritePlacementSkipsDeadNodes(t *testing.T) {
	fs := failFS(t)
	fs.KillDataNode(0)
	fs.KillDataNode(1)
	fs.WriteFile("/f", make([]byte, 32))
	blocks, _ := fs.Blocks("/f")
	for _, blk := range blocks {
		for _, host := range blk.Replicas {
			if host == 0 || host == 1 {
				t.Fatalf("block placed on dead node %d", host)
			}
		}
		if len(blk.Replicas) != 2 {
			t.Fatalf("replication %d with 2 live nodes", len(blk.Replicas))
		}
	}
}

func TestWholePipelineSurvivesNodeLossWithRepair(t *testing.T) {
	// End-to-end failure story: write, lose a node, repair, lose another,
	// still read everything.
	fs := MustNew(Config{NumDataNodes: 5, BlockSize: 8, Replication: 3})
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, "record")
	}
	if err := fs.WriteLines("/l", lines); err != nil {
		t.Fatal(err)
	}
	for _, victim := range []int{0, 3} {
		if err := fs.KillDataNode(victim); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReReplicate(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fs.ReadLines("/l")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("read %d lines, want 40", len(got))
	}
}
