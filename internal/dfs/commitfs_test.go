package dfs

import "testing"

// Tests for the rename-atomicity primitives the output committer and the
// checkpoint journal build on.

func TestReplaceOverwritesDestination(t *testing.T) {
	fs := smallFS(t)
	if err := fs.WriteFile("/old", []byte("old bytes")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/staged", []byte("new bytes")); err != nil {
		t.Fatal(err)
	}
	// Plain Rename refuses to clobber; Replace is the overwriting form.
	if err := fs.Rename("/staged", "/old"); err == nil {
		t.Fatal("Rename overwrote an existing file")
	}
	if err := fs.Replace("/staged", "/old"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/staged") {
		t.Fatal("source survived Replace")
	}
	got, err := fs.ReadFile("/old")
	if err != nil || string(got) != "new bytes" {
		t.Fatalf("destination = %q, %v", got, err)
	}
	if err := fs.Replace("/missing", "/old"); err == nil {
		t.Fatal("Replace of a missing source succeeded")
	}
}

func TestRenameDirMovesWholeTree(t *testing.T) {
	fs := smallFS(t)
	files := map[string]string{
		"/out/_temporary/attempt_0_1/part-00000":     "p0",
		"/out/_temporary/attempt_0_1/sub/part-00001": "p1",
	}
	for p, d := range files {
		if err := fs.WriteFile(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-existing destination files are replaced, not duplicated.
	if err := fs.WriteFile("/out/part-00000", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := fs.RenameDir("/out/_temporary/attempt_0_1", "/out"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/out/part-00000")
	if err != nil || string(got) != "p0" {
		t.Fatalf("promoted part = %q, %v", got, err)
	}
	if data, err := fs.ReadFile("/out/sub/part-00001"); err != nil || string(data) != "p1" {
		t.Fatalf("nested part = %q, %v", data, err)
	}
	if got := fs.List("/out/_temporary"); len(got) != 0 {
		t.Fatalf("staging survived: %v", got)
	}
	// Renaming an empty directory is a protocol violation, not a no-op.
	if err := fs.RenameDir("/out/_temporary/attempt_9_9", "/out"); err == nil {
		t.Fatal("RenameDir of an empty prefix succeeded")
	}
}

func TestRemoveAllCountsAndTolerates(t *testing.T) {
	fs := smallFS(t)
	for _, p := range []string{"/d/a", "/d/b/c", "/d2/x"} {
		if err := fs.WriteFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := fs.RemoveAll("/d"); n != 2 {
		t.Fatalf("RemoveAll removed %d, want 2", n)
	}
	if fs.Exists("/d/a") || !fs.Exists("/d2/x") {
		t.Fatal("RemoveAll scope wrong")
	}
	// Prefix matching is per-segment: /d2 must not match /d.
	if n := fs.RemoveAll("/d"); n != 0 {
		t.Fatalf("second RemoveAll removed %d", n)
	}
}

func TestListOutputsHidesUnderscoreAndDotSegments(t *testing.T) {
	fs := smallFS(t)
	visible := []string{"/out/part-00000", "/out/part-00001", "/out/nested/part-00002"}
	hidden := []string{
		"/out/_SUCCESS",
		"/out/_temporary/attempt_1_1/part-00000",
		"/out/.part-00003.tmp",
		"/out/nested/_logs/history",
	}
	for _, p := range append(append([]string{}, visible...), hidden...) {
		if err := fs.WriteFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.ListOutputs("/out")
	if len(got) != len(visible) {
		t.Fatalf("ListOutputs = %v", got)
	}
	want := map[string]bool{}
	for _, p := range visible {
		want[p] = true
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("hidden path leaked: %s", p)
		}
	}
}
