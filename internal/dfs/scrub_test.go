package dfs

import (
	"bytes"
	"testing"
)

func TestScrubCleanNamespace(t *testing.T) {
	fs := smallFS(t)
	if err := fs.WriteFile("/a", []byte("healthy data, two blocks long")); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksScanned == 0 {
		t.Fatal("scrubber scanned nothing")
	}
	if rep.Quarantined != 0 || rep.ReplicasCreated != 0 || len(rep.CorruptFiles) != 0 {
		t.Fatalf("clean namespace reported corruption: %+v", rep)
	}
	if fs.Stats().ScrubbedBlocks == 0 || fs.Stats().QuarantinedReplicas != 0 {
		t.Fatalf("stats wrong: %+v", fs.Stats())
	}
}

func TestScrubQuarantinesAndReReplicates(t *testing.T) {
	fs := smallFS(t)
	data := []byte("some content that spans multiple sixteen-byte blocks here")
	if err := fs.WriteFile("/data/f", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptReplica("/data/f", 0, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined %d replicas, want 1", rep.Quarantined)
	}
	if rep.ReplicasCreated != 1 {
		t.Fatalf("re-replicated %d, want 1", rep.ReplicasCreated)
	}
	if len(rep.CorruptFiles) != 1 || rep.CorruptFiles[0] != "/data/f" {
		t.Fatalf("corrupt files = %v", rep.CorruptFiles)
	}
	if got := fs.Stats().QuarantinedReplicas; got != 1 {
		t.Fatalf("stats.QuarantinedReplicas = %d", got)
	}
	// After the pass the namespace is fully healthy again: a second scrub
	// finds nothing and every block is back at full replication.
	rep2, err := fs.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Quarantined != 0 {
		t.Fatalf("second pass found %d corrupt replicas", rep2.Quarantined)
	}
	blocks, err := fs.Blocks("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if len(b.Replicas) != fs.Config().Replication {
			t.Fatalf("block %v at %d replicas after repair", b.ID, len(b.Replicas))
		}
	}
	got, err := fs.ReadFile("/data/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("content damaged by scrub: %v", err)
	}
}

func TestScrubAllReplicasCorrupt(t *testing.T) {
	fs := smallFS(t)
	if err := fs.WriteFile("/f", []byte("unlucky block with no healthy copy")); err != nil {
		t.Fatal(err)
	}
	// Corrupt both replicas of block 0: quarantine leaves no source.
	if err := fs.CorruptReplica("/f", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptReplica("/f", 0, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Scrub()
	if rep.Quarantined != 2 {
		t.Fatalf("quarantined %d, want 2", rep.Quarantined)
	}
	if err == nil {
		t.Fatal("losing every replica must surface as an error")
	}
}
