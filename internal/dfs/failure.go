package dfs

import (
	"fmt"
	"sort"

	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Failure injection — HDFS's defining behaviour is surviving datanode
// loss: reads fail over to surviving replicas and the namenode re-creates
// missing replicas on healthy nodes. These hooks let tests and examples
// exercise that path.

// KillDataNode marks a datanode dead: its replicas become unreadable and
// it receives no new blocks until revived. Killing an unknown or already
// dead node is an error.
func (fs *FileSystem) KillDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	if fs.dead == nil {
		fs.dead = make(map[int]bool)
	}
	if fs.dead[id] {
		return fmt.Errorf("dfs: datanode %d already dead", id)
	}
	if len(fs.dead) == len(fs.nodes)-1 {
		return fmt.Errorf("dfs: refusing to kill the last live datanode")
	}
	fs.dead[id] = true
	return nil
}

// DecommissionDataNode removes a datanode from service the hard way: the
// node is marked dead, its replicas are destroyed, and the namenode
// immediately re-replicates every affected block onto surviving nodes to
// restore the configured replication factor. It returns the number of
// replicas created. An error from re-replication (a block with no other
// surviving copy — data loss) is reported after all repairable blocks are
// fixed.
func (fs *FileSystem) DecommissionDataNode(id int) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return 0, fmt.Errorf("dfs: no datanode %d", id)
	}
	if fs.dead[id] {
		return 0, fmt.Errorf("dfs: datanode %d already dead", id)
	}
	if fs.dead == nil {
		fs.dead = make(map[int]bool)
	}
	if len(fs.dead) == len(fs.nodes)-1 {
		return 0, fmt.Errorf("dfs: refusing to decommission the last live datanode")
	}
	fs.dead[id] = true
	fs.nodes[id].dropAll()
	for path, blocks := range fs.files {
		for bi := range blocks {
			blocks[bi].Replicas = removeHost(blocks[bi].Replicas, id)
		}
		fs.files[path] = blocks
	}
	return fs.reReplicateLocked()
}

// ReviveDataNode brings a dead datanode back, empty (as if re-imaged):
// HDFS does not trust stale replicas after a restart.
func (fs *FileSystem) ReviveDataNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("dfs: no datanode %d", id)
	}
	if !fs.dead[id] {
		return fmt.Errorf("dfs: datanode %d is not dead", id)
	}
	delete(fs.dead, id)
	fs.nodes[id] = newDataNode(id)
	// Drop it from every block's replica list; re-replication will
	// repopulate it over time.
	for path, blocks := range fs.files {
		for bi := range blocks {
			blocks[bi].Replicas = removeHost(blocks[bi].Replicas, id)
		}
		fs.files[path] = blocks
	}
	return nil
}

// DeadDataNodes lists dead node ids, sorted.
func (fs *FileSystem) DeadDataNodes() []int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]int, 0, len(fs.dead))
	for id := range fs.dead {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// alive reports whether a node can serve reads/writes.
func (fs *FileSystem) alive(id int) bool { return !fs.dead[id] }

// UnderReplicated returns "path -> block indices" for blocks with fewer
// live replicas than the configured replication factor.
func (fs *FileSystem) UnderReplicated() map[string][]int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string][]int)
	for path, blocks := range fs.files {
		for bi, blk := range blocks {
			if fs.liveReplicasLocked(blk) < fs.cfg.Replication {
				out[path] = append(out[path], bi)
			}
		}
	}
	return out
}

// liveReplicasLocked counts replicas on live nodes.
func (fs *FileSystem) liveReplicasLocked(blk Block) int {
	n := 0
	for _, host := range blk.Replicas {
		if fs.alive(host) {
			if _, ok := fs.nodes[host].read(blk.ID); ok {
				n++
			}
		}
	}
	return n
}

// ReReplicate restores every under-replicated block to full replication
// by copying a surviving replica to live nodes that lack one. It returns
// the number of new replicas created. Blocks with zero surviving replicas
// are reported as errors (data loss) after all repairable blocks are
// fixed.
func (fs *FileSystem) ReReplicate() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reReplicateLocked()
}

// reReplicateLocked is ReReplicate with fs.mu held.
func (fs *FileSystem) reReplicateLocked() (int, error) {
	created := 0
	var lost []string
	for path, blocks := range fs.files {
		for bi := range blocks {
			blk := &blocks[bi]
			// Find a live, checksum-clean source replica.
			var data []byte
			var liveHosts []int
			want, hasSum := fs.checksums[blk.ID]
			for _, host := range blk.Replicas {
				if !fs.alive(host) {
					continue
				}
				if d, ok := fs.nodes[host].read(blk.ID); ok {
					if hasSum && checksumOf(d) != want {
						continue // corrupt replica: not a copy source
					}
					if data == nil {
						data = d
					}
					liveHosts = append(liveHosts, host)
				}
			}
			if data == nil {
				lost = append(lost, fmt.Sprintf("%s block %d (%s)", path, bi, blk.ID))
				continue
			}
			// Copy to live nodes lacking a replica until fully replicated.
			for target := 0; target < len(fs.nodes) && len(liveHosts) < fs.cfg.Replication; target++ {
				node := (fs.nextNode + target) % len(fs.nodes)
				if !fs.alive(node) || containsHost(liveHosts, node) {
					continue
				}
				fs.nodes[node].store(blk.ID, data)
				liveHosts = append(liveHosts, node)
				fs.stats.BytesWritten += int64(len(data))
				created++
				if fs.trace.Enabled() {
					fs.trace.Emit(trace.Span{
						Kind:   trace.KindReplicate,
						Name:   "dfs.replicate",
						Node:   node,
						Bytes:  int64(len(data)),
						Detail: fmt.Sprintf("%s block %d", path, bi),
						VStart: fs.trace.VirtualNow(),
						RStart: fs.trace.RealNow(),
					})
				}
			}
			blk.Replicas = liveHosts
		}
		fs.files[path] = blocks
	}
	if len(lost) > 0 {
		sort.Strings(lost)
		return created, fmt.Errorf("dfs: %d blocks lost all replicas: %v", len(lost), lost)
	}
	return created, nil
}

// removeHost drops id from a host list.
func removeHost(hosts []int, id int) []int {
	out := hosts[:0]
	for _, h := range hosts {
		if h != id {
			out = append(out, h)
		}
	}
	return out
}

// containsHost reports membership.
func containsHost(hosts []int, id int) bool {
	for _, h := range hosts {
		if h == id {
			return true
		}
	}
	return false
}
