package dfs

import "sort"

// Background scrubbing — HDFS datanodes run a block scanner that
// periodically re-reads every stored replica, verifies its CRC and
// reports corrupt copies to the namenode, which quarantines them and
// schedules re-replication from a healthy source. Scrub models one full
// pass of that scanner over the whole namespace.

// ScrubReport summarizes one scrubber pass.
type ScrubReport struct {
	// BlocksScanned is the number of blocks whose replicas were verified.
	BlocksScanned int
	// Quarantined is the number of corrupt replicas dropped.
	Quarantined int
	// ReplicasCreated is the number of replicas re-created afterwards to
	// restore the configured replication factor.
	ReplicasCreated int
	// CorruptFiles lists the paths that held at least one corrupt
	// replica, sorted.
	CorruptFiles []string
}

// Scrub verifies every live replica of every block against its stored
// CRC32C, quarantines (drops) corrupt replicas, and re-replicates the
// affected blocks from a healthy copy. It returns a report plus any
// re-replication error (a block whose replicas were all corrupt or dead
// — data loss — is reported after repairable blocks are fixed).
// Counters land in Stats.ScrubbedBlocks and Stats.QuarantinedReplicas.
func (fs *FileSystem) Scrub() (ScrubReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var rep ScrubReport
	corrupt := make(map[string]bool)
	for path, blocks := range fs.files {
		for bi := range blocks {
			blk := &blocks[bi]
			want, ok := fs.checksums[blk.ID]
			if !ok {
				continue
			}
			rep.BlocksScanned++
			keep := blk.Replicas[:0]
			for _, node := range blk.Replicas {
				if !fs.alive(node) {
					keep = append(keep, node)
					continue
				}
				data, has := fs.nodes[node].read(blk.ID)
				if has && checksumOf(data) != want {
					fs.nodes[node].drop(blk.ID)
					rep.Quarantined++
					corrupt[path] = true
					continue
				}
				keep = append(keep, node)
			}
			blk.Replicas = keep
		}
		fs.files[path] = blocks
	}
	fs.stats.ScrubbedBlocks += int64(rep.BlocksScanned)
	fs.stats.QuarantinedReplicas += int64(rep.Quarantined)
	for p := range corrupt {
		rep.CorruptFiles = append(rep.CorruptFiles, p)
	}
	sort.Strings(rep.CorruptFiles)
	if rep.Quarantined == 0 {
		return rep, nil
	}
	created, err := fs.reReplicateLocked()
	rep.ReplicasCreated = created
	return rep, err
}
