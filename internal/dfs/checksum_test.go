package dfs

import (
	"bytes"
	"testing"
)

func TestReadFailsOverCorruptReplica(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 3, BlockSize: 64, Replication: 2})
	data := []byte("precious sequencing data")
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptReplica("/f", 0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read returned corrupt data: %q", got)
	}
	if fs.Stats().CorruptReads == 0 {
		t.Fatal("corrupt replica read not accounted")
	}
}

func TestReadFailsWhenAllReplicasCorrupt(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 3, BlockSize: 64, Replication: 2})
	fs.WriteFile("/f", []byte("doomed"))
	if err := fs.CorruptReplica("/f", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptReplica("/f", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f"); err == nil {
		t.Fatal("read succeeded with all replicas corrupt")
	}
}

func TestCorruptReplicaValidation(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 2, BlockSize: 64, Replication: 1})
	fs.WriteFile("/f", []byte("x"))
	if err := fs.CorruptReplica("/nope", 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	if err := fs.CorruptReplica("/f", 5, 0); err == nil {
		t.Error("bad block index accepted")
	}
	if err := fs.CorruptReplica("/f", 0, 5); err == nil {
		t.Error("bad replica index accepted")
	}
	fs.WriteFile("/empty", nil)
	if err := fs.CorruptReplica("/empty", 0, 0); err == nil {
		t.Error("empty block corruption accepted")
	}
}

func TestVerifyReplicasDetectsCorruption(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 3, BlockSize: 16, Replication: 2})
	fs.WriteFile("/f", make([]byte, 48)) // 3 blocks
	if bad := fs.VerifyReplicas(); len(bad) != 0 {
		t.Fatalf("clean FS reports corruption: %v", bad)
	}
	fs.CorruptReplica("/f", 1, 0)
	bad := fs.VerifyReplicas()
	if len(bad["/f"]) != 1 || bad["/f"][0] != 1 {
		t.Fatalf("corruption report %v", bad)
	}
}

func TestQuarantineAndRepair(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 32, Replication: 2})
	data := make([]byte, 96)
	for i := range data {
		data[i] = byte(i * 7)
	}
	fs.WriteFile("/f", data)
	fs.CorruptReplica("/f", 0, 0)
	fs.CorruptReplica("/f", 2, 1)
	removed := fs.QuarantineCorrupt()
	if removed != 2 {
		t.Fatalf("quarantined %d replicas, want 2", removed)
	}
	// Under-replicated now; repair from healthy copies.
	if ur := fs.UnderReplicated(); len(ur["/f"]) != 2 {
		t.Fatalf("under-replication %v", ur)
	}
	if _, err := fs.ReReplicate(); err != nil {
		t.Fatal(err)
	}
	if bad := fs.VerifyReplicas(); len(bad) != 0 {
		t.Fatalf("still corrupt after repair: %v", bad)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data mismatch after repair: %v", err)
	}
}

func TestReReplicateNeverCopiesCorruptSource(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 64, Replication: 2})
	data := []byte("authoritative content here")
	fs.WriteFile("/f", data)
	// Corrupt the primary replica, then kill the node holding the clean
	// one; repair must fail loudly rather than propagate corruption...
	blocks, _ := fs.Blocks("/f")
	fs.CorruptReplica("/f", 0, 0)
	cleanHolder := blocks[0].Replicas[1]
	if err := fs.KillDataNode(cleanHolder); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReReplicate(); err == nil {
		t.Fatal("repair from a corrupt-only source succeeded")
	}
}
