package dfs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Config sizes the simulated file system.
type Config struct {
	// NumDataNodes is the number of simulated storage machines.
	NumDataNodes int
	// BlockSize is the maximum bytes per block (HDFS default is 64/128 MB;
	// tests use small values to exercise multi-block paths).
	BlockSize int
	// Replication is the number of replicas per block, capped at
	// NumDataNodes.
	Replication int
}

// DefaultConfig mirrors a small Hadoop deployment: 4 datanodes, 64 KiB
// blocks (scaled down from 64 MiB so unit tests split files), 3 replicas.
var DefaultConfig = Config{NumDataNodes: 4, BlockSize: 64 * 1024, Replication: 3}

// Stats accounts I/O traffic for the cost model.
type Stats struct {
	BlocksWritten int64
	BlocksRead    int64
	BytesWritten  int64 // includes replication traffic
	BytesRead     int64
	LocalReads    int64 // reads served by the preferred node
	RemoteReads   int64
	// CorruptReads counts replica reads rejected by checksum verification.
	CorruptReads int64
	// FailedReads counts replica reads that failed over to another replica
	// (dead datanode, or an injected I/O error mid-transfer). The bytes of
	// an aborted transfer are charged to BytesRead — the client paid for
	// them — so failover is visible in the I/O cost model.
	FailedReads int64
	// ScrubbedBlocks counts blocks whose replicas a Scrub pass verified.
	ScrubbedBlocks int64
	// QuarantinedReplicas counts corrupt replicas a Scrub pass removed.
	QuarantinedReplicas int64
}

// FileSystem is the namenode plus its datanodes.
type FileSystem struct {
	mu        sync.RWMutex
	cfg       Config
	nodes     []*DataNode
	files     map[string][]Block // path -> ordered blocks
	nextBlock BlockID
	nextNode  int // round-robin placement cursor
	stats     Stats
	dead      map[int]bool       // failed datanodes (see failure.go)
	checksums map[BlockID]uint32 // per-block CRC32C (see checksum.go)
	trace     *trace.Recorder    // nil = tracing disabled
	faults    *faults.Injector   // nil = fault injection disabled
}

// New creates a file system with the given configuration.
func New(cfg Config) (*FileSystem, error) {
	if cfg.NumDataNodes < 1 {
		return nil, fmt.Errorf("dfs: need at least one datanode, got %d", cfg.NumDataNodes)
	}
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("dfs: block size must be positive, got %d", cfg.BlockSize)
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.NumDataNodes {
		cfg.Replication = cfg.NumDataNodes
	}
	fs := &FileSystem{
		cfg:       cfg,
		files:     make(map[string][]Block),
		checksums: make(map[BlockID]uint32),
	}
	for i := 0; i < cfg.NumDataNodes; i++ {
		fs.nodes = append(fs.nodes, newDataNode(i))
	}
	return fs, nil
}

// MustNew is New panicking on error.
func MustNew(cfg Config) *FileSystem {
	fs, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// Config returns the file system configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetTrace attaches a span recorder: every block read, block write and
// re-replication copy emits one event. Pass nil to disable (the default);
// a disabled recorder costs nothing on the I/O paths.
func (fs *FileSystem) SetTrace(r *trace.Recorder) {
	fs.mu.Lock()
	fs.trace = r
	fs.mu.Unlock()
}

// SetFaults attaches a fault injector: block reads consult it and fail
// over to the next replica when it injects an I/O error, charging the
// aborted transfer. Pass nil to disable (the default).
func (fs *FileSystem) SetFaults(in *faults.Injector) {
	fs.mu.Lock()
	fs.faults = in
	fs.mu.Unlock()
}

// WriteFile stores data at path, replacing any existing file. Data is
// split into blocks placed round-robin with replication.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	if err := validPath(path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.removeLocked(path)
	var blocks []Block
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		blk := Block{ID: fs.nextBlock, Len: len(chunk)}
		fs.nextBlock++
		fs.checksums[blk.ID] = checksumOf(chunk)
		placed := 0
		for off := 0; off < len(fs.nodes) && placed < fs.cfg.Replication; off++ {
			node := (fs.nextNode + off) % len(fs.nodes)
			if !fs.alive(node) {
				continue
			}
			fs.nodes[node].store(blk.ID, chunk)
			blk.Replicas = append(blk.Replicas, node)
			fs.stats.BytesWritten += int64(len(chunk))
			placed++
		}
		fs.stats.BlocksWritten++
		if fs.trace.Enabled() {
			node := -1
			if len(blk.Replicas) > 0 {
				node = blk.Replicas[0]
			}
			fs.trace.Emit(trace.Span{
				Kind:   trace.KindDFSWrite,
				Name:   "dfs.write",
				Node:   node,
				Bytes:  int64(len(chunk) * placed),
				Detail: path,
				VStart: fs.trace.VirtualNow(),
				RStart: fs.trace.RealNow(),
			})
		}
		fs.nextNode = (fs.nextNode + 1) % len(fs.nodes)
		blocks = append(blocks, blk)
		if len(data) == 0 {
			break
		}
	}
	fs.files[path] = blocks
	return nil
}

// ReadFile returns the full contents of path.
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	var buf bytes.Buffer
	for _, blk := range blocks {
		data, err := fs.readBlockLocked(path, blk, -1)
		if err != nil {
			return nil, err
		}
		buf.Write(data)
	}
	return buf.Bytes(), nil
}

// ReadBlock reads one block, preferring a replica on nearNode (pass -1 for
// no preference). It reports whether the read was local to nearNode.
func (fs *FileSystem) ReadBlock(path string, index int, nearNode int) ([]byte, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks, ok := fs.files[path]
	if !ok {
		return nil, false, fmt.Errorf("dfs: no such file %q", path)
	}
	if index < 0 || index >= len(blocks) {
		return nil, false, fmt.Errorf("dfs: block index %d out of range for %q (%d blocks)", index, path, len(blocks))
	}
	blk := blocks[index]
	data, err := fs.readBlockLocked(path, blk, nearNode)
	if err != nil {
		return nil, false, err
	}
	local := nearNode >= 0 && hasReplica(blk, nearNode)
	return data, local, nil
}

// readBlockLocked fetches block data from the best replica, failing over
// past dead nodes, corrupt copies and injected I/O errors.
func (fs *FileSystem) readBlockLocked(path string, blk Block, nearNode int) ([]byte, error) {
	order := blk.Replicas
	if nearNode >= 0 && hasReplica(blk, nearNode) {
		// Prefer the near replica; drop its duplicate entry so failover
		// tries each node once.
		order = append([]int{nearNode}, removeHost(append([]int(nil), blk.Replicas...), nearNode)...)
	}
	want, hasSum := fs.checksums[blk.ID]
	for _, node := range order {
		if !fs.alive(node) {
			fs.stats.FailedReads++
			continue // fail over to the next replica
		}
		if data, ok := fs.nodes[node].read(blk.ID); ok {
			if fs.faults.FailBlockRead(path, node) {
				// Injected I/O error mid-transfer: the client still paid
				// for the aborted stream before switching replicas.
				fs.stats.FailedReads++
				fs.stats.BytesRead += int64(len(data))
				if fs.trace.Enabled() {
					fs.trace.Emit(trace.Span{
						Kind:   trace.KindDFSRead,
						Name:   "dfs.read.failed",
						Node:   node,
						Bytes:  int64(len(data)),
						Detail: path,
						Status: "failed",
						VStart: fs.trace.VirtualNow(),
						RStart: fs.trace.RealNow(),
					})
				}
				continue
			}
			if hasSum && checksumOf(data) != want {
				fs.stats.CorruptReads++
				continue // fail over to the next replica
			}
			fs.stats.BlocksRead++
			fs.stats.BytesRead += int64(len(data))
			locality := "remote"
			if nearNode >= 0 && node == nearNode {
				fs.stats.LocalReads++
				locality = "local"
			} else {
				fs.stats.RemoteReads++
			}
			if fs.trace.Enabled() {
				fs.trace.Emit(trace.Span{
					Kind:   trace.KindDFSRead,
					Name:   "dfs.read." + locality,
					Node:   node,
					Bytes:  int64(len(data)),
					Detail: path,
					VStart: fs.trace.VirtualNow(),
					RStart: fs.trace.RealNow(),
				})
			}
			return data, nil
		}
	}
	return nil, fmt.Errorf("dfs: all replicas of %s lost", blk.ID)
}

func hasReplica(blk Block, node int) bool {
	for _, r := range blk.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// Blocks returns the block metadata of path (copy).
func (fs *FileSystem) Blocks(path string) ([]Block, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	blocks, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	out := make([]Block, len(blocks))
	copy(out, blocks)
	return out, nil
}

// Stat returns the file size in bytes.
func (fs *FileSystem) Stat(path string) (int, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	blocks, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", path)
	}
	n := 0
	for _, blk := range blocks {
		n += blk.Len
	}
	return n, nil
}

// Exists reports whether path exists.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Remove deletes path. Removing a missing file is an error.
func (fs *FileSystem) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	fs.removeLocked(path)
	return nil
}

// removeLocked drops all replicas of path's blocks.
func (fs *FileSystem) removeLocked(path string) {
	for _, blk := range fs.files[path] {
		for _, node := range blk.Replicas {
			fs.nodes[node].drop(blk.ID)
		}
		delete(fs.checksums, blk.ID)
	}
	delete(fs.files, path)
}

// Rename moves a file to a new path.
func (fs *FileSystem) Rename(from, to string) error {
	if err := validPath(to); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks, ok := fs.files[from]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", from)
	}
	if _, exists := fs.files[to]; exists {
		return fmt.Errorf("dfs: destination %q exists", to)
	}
	fs.files[to] = blocks
	delete(fs.files, from)
	return nil
}

// Replace moves a file onto a possibly-existing destination in one
// metadata step: the namenode swaps the path→blocks binding under a
// single lock, so readers see either the old file or the new one, never
// a mix. This is the rename-atomicity primitive the output committer and
// the checkpoint journal rely on.
func (fs *FileSystem) Replace(from, to string) error {
	if err := validPath(to); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks, ok := fs.files[from]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", from)
	}
	if _, exists := fs.files[to]; exists {
		fs.removeLocked(to)
	}
	fs.files[to] = blocks
	delete(fs.files, from)
	return nil
}

// RenameDir atomically moves every file under the directory fromPrefix to
// the same relative path under toPrefix. The whole move happens under one
// namenode lock — a concurrent List sees either none or all of the moved
// files — which makes directory rename a valid commit operation. Existing
// files at destination paths are replaced.
func (fs *FileSystem) RenameDir(fromPrefix, toPrefix string) error {
	if err := validPath(fromPrefix); err != nil {
		return err
	}
	if err := validPath(toPrefix); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var moved []string
	for p := range fs.files {
		if strings.HasPrefix(p, fromPrefix+"/") {
			moved = append(moved, p)
		}
	}
	if len(moved) == 0 {
		return fmt.Errorf("dfs: no files under %q", fromPrefix)
	}
	sort.Strings(moved)
	for _, p := range moved {
		dst := toPrefix + strings.TrimPrefix(p, fromPrefix)
		if _, exists := fs.files[dst]; exists {
			fs.removeLocked(dst)
		}
		fs.files[dst] = fs.files[p]
		delete(fs.files, p)
	}
	return nil
}

// RemoveAll deletes every file under the directory prefix (and prefix
// itself if it names a file), returning how many files were dropped.
// Removing nothing is not an error: abort paths call this unconditionally.
func (fs *FileSystem) RemoveAll(prefix string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for p := range fs.files {
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			fs.removeLocked(p)
			n++
		}
	}
	return n
}

// List returns all paths with the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ListOutputs returns the visible output files under dir, sorted: paths
// whose relative part contains a segment starting with "_" or "." are
// hidden, matching Hadoop's convention that `_temporary` staging trees,
// `_SUCCESS` markers and dot-files are invisible to downstream readers.
func (fs *FileSystem) ListOutputs(dir string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if !strings.HasPrefix(p, dir+"/") {
			continue
		}
		rel := strings.TrimPrefix(p, dir+"/")
		hidden := false
		for _, seg := range strings.Split(rel, "/") {
			if strings.HasPrefix(seg, "_") || strings.HasPrefix(seg, ".") {
				hidden = true
				break
			}
		}
		if !hidden {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of I/O counters.
func (fs *FileSystem) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.stats
}

// ResetStats zeroes the I/O counters.
func (fs *FileSystem) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = Stats{}
}

// DataNodes exposes the simulated datanodes (for balance inspection). The
// returned slice is a snapshot: ReviveDataNode may swap entries later.
func (fs *FileSystem) DataNodes() []*DataNode {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]*DataNode, len(fs.nodes))
	copy(out, fs.nodes)
	return out
}

// validPath enforces absolute, slash-rooted HDFS-style paths.
func validPath(path string) error {
	if path == "" || !strings.HasPrefix(path, "/") {
		return fmt.Errorf("dfs: path must be absolute, got %q", path)
	}
	if strings.Contains(path, "//") || strings.HasSuffix(path, "/") {
		return fmt.Errorf("dfs: malformed path %q", path)
	}
	return nil
}
