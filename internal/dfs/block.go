// Package dfs is an in-memory simulation of a Hadoop-style distributed
// file system (HDFS): files are split into fixed-size blocks, blocks are
// replicated across datanodes, and a namenode tracks the block map.
//
// The paper stores FASTA input and clustering output as HDFS files and
// lets Hadoop schedule map tasks near their blocks. This package provides
// the same abstractions — block placement, replica-aware reads, and I/O
// accounting the MapReduce cost model consumes — without requiring a real
// cluster.
package dfs

import (
	"fmt"
	"sync"
)

// BlockID identifies one block globally.
type BlockID uint64

// Block is one replicated chunk of file data.
type Block struct {
	ID BlockID
	// Replicas lists datanode ids holding a copy, primary first.
	Replicas []int
	// Len is the number of bytes of file data in the block.
	Len int
}

// blockKey formats a BlockID for error messages.
func (id BlockID) String() string { return fmt.Sprintf("blk_%d", uint64(id)) }

// DataNode stores block payloads for one simulated machine. It carries its
// own lock: the exported inspection methods (NumBlocks, UsedBytes) are
// called without the namenode lock — e.g. by monitoring loops while the
// engine's workers read blocks — and ReviveDataNode swaps node state
// concurrently with them.
type DataNode struct {
	ID     int
	mu     sync.RWMutex
	blocks map[BlockID][]byte
}

// newDataNode returns an empty datanode.
func newDataNode(id int) *DataNode {
	return &DataNode{ID: id, blocks: make(map[BlockID][]byte)}
}

// store writes a block replica.
func (dn *DataNode) store(id BlockID, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	dn.mu.Lock()
	dn.blocks[id] = buf
	dn.mu.Unlock()
}

// read fetches a block replica. The returned slice is shared and must be
// treated as read-only.
func (dn *DataNode) read(id BlockID) ([]byte, bool) {
	dn.mu.RLock()
	b, ok := dn.blocks[id]
	dn.mu.RUnlock()
	return b, ok
}

// drop removes a block replica.
func (dn *DataNode) drop(id BlockID) {
	dn.mu.Lock()
	delete(dn.blocks, id)
	dn.mu.Unlock()
}

// dropAll wipes every replica (decommission).
func (dn *DataNode) dropAll() {
	dn.mu.Lock()
	dn.blocks = make(map[BlockID][]byte)
	dn.mu.Unlock()
}

// NumBlocks returns how many replicas this datanode holds.
func (dn *DataNode) NumBlocks() int {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return len(dn.blocks)
}

// UsedBytes returns the storage consumed on this datanode.
func (dn *DataNode) UsedBytes() int {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	n := 0
	for _, b := range dn.blocks {
		n += len(b)
	}
	return n
}
