package dfs

import (
	"bytes"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/faults"
)

// Failover accounting and fault-injection coverage: reads surviving replica
// loss must charge the failover in the I/O stats, injected mid-transfer
// errors must charge the aborted bytes, and decommissioning must restore
// the replication factor.

func TestDeadReplicaFailoverChargesStats(t *testing.T) {
	fs := smallFS(t) // 4 nodes, 16-byte blocks, replication 2
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("/f")
	primary := blocks[0].Replicas[0]
	if err := fs.KillDataNode(primary); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	got, local, err := fs.ReadBlock("/f", 0, primary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover returned wrong data")
	}
	_ = local
	st := fs.Stats()
	if st.FailedReads != 1 {
		t.Fatalf("FailedReads = %d, want 1 (dead primary skipped)", st.FailedReads)
	}
	if st.BlocksRead != 1 || st.BytesRead != 16 {
		t.Fatalf("read stats %+v, want 1 block / 16 bytes (dead node transfers nothing)", st)
	}
}

func TestInjectedReadErrorFailsOverAndChargesAbortedBytes(t *testing.T) {
	fs := smallFS(t)
	data := make([]byte, 16)
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("/f")
	primary := blocks[0].Replicas[0]
	fs.SetFaults(faults.MustNew(faults.Plan{
		BlockErrors: []faults.BlockError{{PathPrefix: "/f", Node: primary, Times: 1}},
	}))
	fs.ResetStats()
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover returned wrong data")
	}
	st := fs.Stats()
	if st.FailedReads != 1 {
		t.Fatalf("FailedReads = %d, want 1", st.FailedReads)
	}
	// The aborted transfer is charged on top of the successful re-read.
	if st.BytesRead != 32 {
		t.Fatalf("BytesRead = %d, want 32 (16 aborted + 16 served)", st.BytesRead)
	}
	if st.BlocksRead != 1 {
		t.Fatalf("BlocksRead = %d, want 1", st.BlocksRead)
	}
	// The rule's Times cap is spent: the next read is clean.
	fs.ResetStats()
	if _, err := fs.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.FailedReads != 0 || st.BytesRead != 16 {
		t.Fatalf("second read not clean: %+v", st)
	}
}

func TestReadFailsWhenEveryReplicaErrors(t *testing.T) {
	fs := smallFS(t)
	if err := fs.WriteFile("/f", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(faults.MustNew(faults.Plan{
		BlockErrors: []faults.BlockError{{PathPrefix: "/f", Node: -1}},
	}))
	if _, err := fs.ReadFile("/f"); err == nil {
		t.Fatal("read should fail when every replica read errors")
	}
}

func TestProbabilisticReadFaultsAreSeedDeterministic(t *testing.T) {
	run := func(seed int64) Stats {
		fs := MustNew(Config{NumDataNodes: 4, BlockSize: 8, Replication: 3})
		if err := fs.WriteFile("/p", make([]byte, 8*16)); err != nil {
			t.Fatal(err)
		}
		fs.SetFaults(faults.MustNew(faults.Plan{Seed: seed, BlockReadErrorProb: 0.3}))
		fs.ResetStats()
		for i := 0; i < 4; i++ {
			// With p=0.3 a block can lose all three replica reads; that is
			// a legitimate outcome — only determinism matters here.
			_, _ = fs.ReadFile("/p")
		}
		return fs.Stats()
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.FailedReads == 0 {
		t.Fatal("p=0.3 over 256 replica reads injected nothing")
	}
	if c := run(12); c == a {
		t.Fatalf("different seeds produced identical stats: %+v", c)
	}
}

func TestDecommissionRestoresReplication(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 4, BlockSize: 8, Replication: 2})
	data := make([]byte, 8*8) // 8 blocks
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	created, err := fs.DecommissionDataNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Fatal("decommission of a replica holder created no new replicas")
	}
	if under := fs.UnderReplicated(); len(under) != 0 {
		t.Fatalf("blocks still under-replicated after decommission: %v", under)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by decommission")
	}
	// Replica-balance check: the dead node holds nothing, the survivors
	// hold all blocks at full replication.
	blocks, _ := fs.Blocks("/f")
	nodes := fs.DataNodes()
	if n := nodes[1].NumBlocks(); n != 0 {
		t.Fatalf("decommissioned node still holds %d blocks", n)
	}
	total := 0
	for _, dn := range nodes {
		total += dn.NumBlocks()
	}
	if want := len(blocks) * fs.Config().Replication; total != want {
		t.Fatalf("cluster holds %d replicas, want %d", total, want)
	}
	for _, blk := range blocks {
		if len(blk.Replicas) != fs.Config().Replication {
			t.Fatalf("block %s has %d replicas, want %d", blk.ID, len(blk.Replicas), fs.Config().Replication)
		}
		for _, host := range blk.Replicas {
			if host == 1 {
				t.Fatalf("block %s still mapped to the decommissioned node", blk.ID)
			}
		}
	}
}

func TestDecommissionValidation(t *testing.T) {
	fs := MustNew(Config{NumDataNodes: 2, BlockSize: 8, Replication: 2})
	if _, err := fs.DecommissionDataNode(7); err == nil {
		t.Fatal("unknown node should error")
	}
	if _, err := fs.DecommissionDataNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.DecommissionDataNode(0); err == nil {
		t.Fatal("double decommission should error")
	}
	if _, err := fs.DecommissionDataNode(1); err == nil {
		t.Fatal("decommissioning the last live node should error")
	}
}
