package dfs

import (
	"fmt"
	"hash/crc32"
)

// Block checksums — HDFS stores a CRC per block and verifies it on every
// read; a corrupt replica is skipped (and reported to the namenode) while
// the read fails over to a healthy copy. The simulation keeps a CRC32C
// per block and exposes corruption injection for tests.

// crcTable is the Castagnoli polynomial used by HDFS.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksumOf computes the block CRC.
func checksumOf(data []byte) uint32 {
	return crc32.Checksum(data, crcTable)
}

// CorruptReplica flips a byte in one replica of the given block, as disk
// rot would. Errors if the path, block index or replica index is invalid,
// or if the block is empty.
func (fs *FileSystem) CorruptReplica(path string, blockIdx, replicaIdx int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	if blockIdx < 0 || blockIdx >= len(blocks) {
		return fmt.Errorf("dfs: block index %d out of range", blockIdx)
	}
	blk := blocks[blockIdx]
	if replicaIdx < 0 || replicaIdx >= len(blk.Replicas) {
		return fmt.Errorf("dfs: replica index %d out of range (%d replicas)", replicaIdx, len(blk.Replicas))
	}
	node := blk.Replicas[replicaIdx]
	data, ok := fs.nodes[node].read(blk.ID)
	if !ok {
		return fmt.Errorf("dfs: replica %d of %s missing from node %d", replicaIdx, blk.ID, node)
	}
	if len(data) == 0 {
		return fmt.Errorf("dfs: cannot corrupt empty block %s", blk.ID)
	}
	mutated := make([]byte, len(data))
	copy(mutated, data)
	mutated[0] ^= 0xFF
	fs.nodes[node].store(blk.ID, mutated)
	return nil
}

// VerifyReplicas scans every replica of every block against the stored
// checksum and returns "path -> block indices" with at least one corrupt
// replica. Dead nodes are skipped.
func (fs *FileSystem) VerifyReplicas() map[string][]int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string][]int)
	for path, blocks := range fs.files {
		for bi, blk := range blocks {
			want, ok := fs.checksums[blk.ID]
			if !ok {
				continue
			}
			for _, node := range blk.Replicas {
				if !fs.alive(node) {
					continue
				}
				if data, ok := fs.nodes[node].read(blk.ID); ok {
					if checksumOf(data) != want {
						out[path] = append(out[path], bi)
						break
					}
				}
			}
		}
	}
	return out
}

// QuarantineCorrupt drops every corrupt replica (leaving healthy ones) and
// returns the number removed. Combine with ReReplicate to restore full
// replication from the surviving copies.
func (fs *FileSystem) QuarantineCorrupt() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	removed := 0
	for path, blocks := range fs.files {
		for bi := range blocks {
			blk := &blocks[bi]
			want, ok := fs.checksums[blk.ID]
			if !ok {
				continue
			}
			keep := blk.Replicas[:0]
			for _, node := range blk.Replicas {
				data, has := fs.nodes[node].read(blk.ID)
				if has && fs.alive(node) && checksumOf(data) != want {
					fs.nodes[node].drop(blk.ID)
					removed++
					continue
				}
				keep = append(keep, node)
			}
			blk.Replicas = keep
		}
		fs.files[path] = blocks
	}
	return removed
}
