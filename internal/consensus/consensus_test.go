package consensus

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// mutate returns seq with substitutions at the given positions.
func mutate(seq []byte, positions ...int) []byte {
	out := append([]byte{}, seq...)
	for _, p := range positions {
		switch out[p] {
		case 'A':
			out[p] = 'C'
		default:
			out[p] = 'A'
		}
	}
	return out
}

func TestConsensusOutvotesErrors(t *testing.T) {
	truth := []byte("ACGTACGGTTCAGGCATTACGGATCAGG")
	reads := []fasta.Record{
		{ID: "r0", Seq: append([]byte{}, truth...)},
		{ID: "r1", Seq: mutate(truth, 3)},
		{ID: "r2", Seq: mutate(truth, 10)},
		{ID: "r3", Seq: mutate(truth, 20)},
		{ID: "r4", Seq: mutate(truth, 25)},
	}
	labels := metrics.Clustering{0, 0, 0, 0, 0}
	reps := map[int]int{0: 0}
	cons, err := Build(reads, labels, reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cons[0], truth) {
		t.Fatalf("consensus %s != truth %s", cons[0], truth)
	}
}

func TestConsensusErrorInRepresentativeCorrected(t *testing.T) {
	truth := []byte("ACGTACGGTTCAGGCATTAC")
	// The representative itself carries an error at position 5; the four
	// clean members outvote it.
	reads := []fasta.Record{
		{ID: "rep", Seq: mutate(truth, 5)},
		{ID: "r1", Seq: append([]byte{}, truth...)},
		{ID: "r2", Seq: append([]byte{}, truth...)},
		{ID: "r3", Seq: append([]byte{}, truth...)},
	}
	labels := metrics.Clustering{0, 0, 0, 0}
	cons, err := Build(reads, labels, map[int]int{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cons[0], truth) {
		t.Fatalf("consensus %s != truth %s", cons[0], truth)
	}
}

func TestConsensusHandlesIndels(t *testing.T) {
	truth := []byte("ACGGTTCAGGCATTACGGAT")
	withDel := append(append([]byte{}, truth[:8]...), truth[9:]...) // one deletion
	withIns := append(append(append([]byte{}, truth[:12]...), 'G'), truth[12:]...)
	reads := []fasta.Record{
		{ID: "rep", Seq: append([]byte{}, truth...)},
		{ID: "del", Seq: withDel},
		{ID: "ins", Seq: withIns},
	}
	labels := metrics.Clustering{0, 0, 0}
	cons, err := Build(reads, labels, map[int]int{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cons[0], truth) {
		t.Fatalf("consensus %s != truth %s", cons[0], truth)
	}
}

func TestConsensusOverhangTrimming(t *testing.T) {
	core := []byte("ACGGTTCAGGCATTAC")
	long := append(append([]byte{}, core...), []byte("GGGGGGGG")...)
	// Representative is long; most members only cover the core, so the
	// overhang columns fall below the support floor.
	reads := []fasta.Record{
		{ID: "rep", Seq: long},
		{ID: "r1", Seq: append([]byte{}, core...)},
		{ID: "r2", Seq: append([]byte{}, core...)},
		{ID: "r3", Seq: append([]byte{}, core...)},
	}
	labels := metrics.Clustering{0, 0, 0, 0}
	cons, err := Build(reads, labels, map[int]int{0: 0}, Options{MinColumnSupport: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cons[0], core) {
		t.Fatalf("consensus %q, want trimmed core %q", cons[0], core)
	}
}

func TestConsensusMultipleClusters(t *testing.T) {
	a := []byte("AAAACCCCGGGGTTTTAAAA")
	b := []byte("TTTTGGGGCCCCAAAATTTT")
	reads := []fasta.Record{
		{ID: "a0", Seq: append([]byte{}, a...)},
		{ID: "a1", Seq: mutate(a, 2)},
		{ID: "b0", Seq: append([]byte{}, b...)},
		{ID: "b1", Seq: mutate(b, 7)},
	}
	labels := metrics.Clustering{0, 0, 1, 1}
	cons, err := Build(reads, labels, map[int]int{0: 0, 1: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("%d consensi", len(cons))
	}
	if !bytes.Equal(cons[0], a) || !bytes.Equal(cons[1], b) {
		t.Fatalf("consensi %q / %q", cons[0], cons[1])
	}
}

func TestConsensusValidation(t *testing.T) {
	reads := []fasta.Record{{ID: "a", Seq: []byte("ACGT")}}
	if _, err := Build(reads, metrics.Clustering{0, 0}, nil, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Build(reads, metrics.Clustering{0}, map[int]int{}, Options{}); err == nil {
		t.Error("missing representative accepted")
	}
	if _, err := Build(reads, metrics.Clustering{0}, map[int]int{0: 9}, Options{}); err == nil {
		t.Error("out-of-range representative accepted")
	}
	if _, err := Build(reads, metrics.Clustering{0}, map[int]int{0: 0}, Options{MinColumnSupport: 2}); err == nil {
		t.Error("bad support accepted")
	}
}

func TestConsensusMaxMembersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := make([]byte, 60)
	for i := range truth {
		truth[i] = "ACGT"[rng.Intn(4)]
	}
	var reads []fasta.Record
	labels := metrics.Clustering{}
	for i := 0; i < 30; i++ {
		seq := append([]byte{}, truth...)
		if rng.Float64() < 0.5 {
			seq = mutate(seq, rng.Intn(len(seq)))
		}
		reads = append(reads, fasta.Record{ID: "r", Seq: seq})
		labels = append(labels, 0)
	}
	opt := Options{MaxMembers: 10}
	c1, err := Build(reads, labels, map[int]int{0: 0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(reads, labels, map[int]int{0: 0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1[0], c2[0]) {
		t.Fatal("capped consensus not deterministic")
	}
	if !bytes.Equal(c1[0], truth) {
		t.Fatalf("capped consensus %q != truth", c1[0])
	}
}
