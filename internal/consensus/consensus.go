// Package consensus derives a representative consensus sequence per
// cluster: members are pairwise-aligned to the cluster medoid (a star
// alignment) and each consensus column takes the majority base. OTU
// pipelines feed such consensus sequences to downstream taxonomy search
// instead of raw error-laden reads — the post-clustering step the paper's
// introduction gestures at ("analysis of cluster representatives").
package consensus

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// Options tunes consensus building.
type Options struct {
	// MinColumnSupport is the minimum fraction of members that must cover
	// a consensus column for it to be emitted (columns seen by fewer
	// members — overhangs — are trimmed). Default 0.5.
	MinColumnSupport float64
	// MaxMembers caps how many members vote (0 = all); large clusters use
	// the first MaxMembers in index order for determinism.
	MaxMembers int
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.MinColumnSupport == 0 {
		o.MinColumnSupport = 0.5
	}
	return o
}

// Build returns clusterID -> consensus sequence for every cluster, using
// reps (clusterID -> medoid read index) as star centers.
func Build(reads []fasta.Record, labels metrics.Clustering, reps map[int]int, opt Options) (map[int][]byte, error) {
	opt = opt.withDefaults()
	if len(reads) != len(labels) {
		return nil, fmt.Errorf("consensus: %d reads for %d labels", len(reads), len(labels))
	}
	if opt.MinColumnSupport < 0 || opt.MinColumnSupport > 1 {
		return nil, fmt.Errorf("consensus: MinColumnSupport %v out of [0,1]", opt.MinColumnSupport)
	}
	members := labels.Members()
	out := make(map[int][]byte, len(members))
	for id, idx := range members {
		rep, ok := reps[id]
		if !ok {
			return nil, fmt.Errorf("consensus: no representative for cluster %d", id)
		}
		if rep < 0 || rep >= len(reads) {
			return nil, fmt.Errorf("consensus: representative %d out of range", rep)
		}
		voters := idx
		if opt.MaxMembers > 0 && len(voters) > opt.MaxMembers {
			voters = voters[:opt.MaxMembers]
		}
		out[id] = starConsensus(reads, rep, voters, opt.MinColumnSupport)
	}
	return out, nil
}

// starConsensus votes member bases onto the representative's coordinates.
// Insertions relative to the representative are dropped (star alignments
// cannot place them consistently without an MSA); deletions leave the
// column's vote to other members and the representative.
func starConsensus(reads []fasta.Record, rep int, members []int, minSupport float64) []byte {
	ref := reads[rep].Seq
	n := len(ref)
	// counts[i][code] votes for base code at reference column i;
	// coverage[i] counts members whose alignment spans column i.
	counts := make([][4]int, n)
	coverage := make([]int, n)
	for _, m := range members {
		path := alignPath(ref, reads[m].Seq)
		for _, step := range path {
			if step.refPos < 0 {
				continue // insertion relative to the representative
			}
			if step.base >= 0 {
				// A deletion (base < 0) is *absence* of coverage: a member
				// that skips a column gets no say in it, and overhang
				// columns beyond short members stay unsupported.
				coverage[step.refPos]++
				counts[step.refPos][step.base]++
			}
		}
	}
	minVotes := int(minSupport * float64(len(members)))
	if minVotes < 1 {
		minVotes = 1
	}
	var consensus []byte
	for i := 0; i < n; i++ {
		if coverage[i] < minVotes {
			continue
		}
		best, bestN := -1, 0
		for c := 0; c < 4; c++ {
			if counts[i][c] > bestN {
				best, bestN = c, counts[i][c]
			}
		}
		// Ties break toward the representative's own base — the medoid is
		// the cluster's least-error member by construction.
		if rc := fasta.BaseCode(ref[i]); rc >= 0 && counts[i][rc] == bestN {
			best = int(rc)
		}
		if best < 0 {
			continue
		}
		consensus = append(consensus, fasta.CodeBase(int8(best)))
	}
	return consensus
}

// pathStep maps one alignment column: refPos is the reference coordinate
// (-1 for an insertion in the member), base is the member's base code
// (-1 for a deletion or ambiguous base).
type pathStep struct {
	refPos int
	base   int8
}

// alignPath reruns the banded global alignment with a traceback that
// yields reference-coordinate steps.
func alignPath(ref, member []byte) []pathStep {
	n, m := len(ref), len(member)
	if n == 0 || m == 0 {
		return nil
	}
	// Full DP with direction matrix (reads are short; clarity over the
	// rolling-band variant used in metric scoring).
	const (
		diag = byte(0)
		up   = byte(1) // consume ref (deletion in member)
		left = byte(2) // consume member (insertion in member)
	)
	sc := align.DefaultScoring
	trace := make([]byte, (n+1)*(m+1))
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = int32(sc.Gap) * int32(j)
		trace[j] = left
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(sc.Gap) * int32(i)
		trace[i*(m+1)] = up
		for j := 1; j <= m; j++ {
			sub := int32(sc.Mismatch)
			if ref[i-1] == member[j-1] {
				sub = int32(sc.Match)
			}
			best, dir := prev[j-1]+sub, diag
			if u := prev[j] + int32(sc.Gap); u > best {
				best, dir = u, up
			}
			if l := cur[j-1] + int32(sc.Gap); l > best {
				best, dir = l, left
			}
			cur[j] = best
			trace[i*(m+1)+j] = dir
		}
		prev, cur = cur, prev
	}
	var rev []pathStep
	i, j := n, m
	for i > 0 || j > 0 {
		switch trace[i*(m+1)+j] {
		case diag:
			rev = append(rev, pathStep{refPos: i - 1, base: fasta.BaseCode(member[j-1])})
			i--
			j--
		case up:
			rev = append(rev, pathStep{refPos: i - 1, base: -1})
			i--
		default:
			rev = append(rev, pathStep{refPos: -1, base: fasta.BaseCode(member[j-1])})
			j--
		}
	}
	// Reverse in place.
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}
