package faults

import (
	"strings"
	"testing"
)

func TestParseDriverCrash(t *testing.T) {
	plan, err := ParsePlan("driver-crash:after=similarity", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.DriverCrashes) != 1 || plan.DriverCrashes[0].AfterStage != "similarity" {
		t.Fatalf("parsed wrong: %+v", plan.DriverCrashes)
	}
	if plan.Empty() {
		t.Fatal("a driver-crash plan is not empty")
	}
	// The rendered plan reparses to itself.
	again, err := ParsePlan(plan.String(), 1)
	if err != nil {
		t.Fatalf("round-trip: %v (spec %q)", err, plan.String())
	}
	if again.String() != plan.String() {
		t.Fatalf("round-trip mismatch: %q vs %q", again.String(), plan.String())
	}
	// Stage names may contain ':' and '/' (Pig STORE stages do).
	plan2, err := ParsePlan("driver-crash:after=store:/out/hierarchical", 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.DriverCrashes[0].AfterStage != "store:/out/hierarchical" {
		t.Fatalf("store stage parsed wrong: %+v", plan2.DriverCrashes)
	}
	if _, err := ParsePlan("driver-crash:after=", 1); err == nil {
		t.Fatal("empty stage accepted")
	}
}

func TestDriverCrashAfter(t *testing.T) {
	in := MustNew(Plan{DriverCrashes: []DriverCrash{{AfterStage: "sketch"}}})
	if !in.DriverCrashAfter("sketch") {
		t.Fatal("planned crash did not fire")
	}
	if in.DriverCrashAfter("cluster") {
		t.Fatal("crash fired on the wrong stage")
	}
	if got := in.Counts()["driver.crash"]; got != 1 {
		t.Fatalf("driver.crash counter = %d", got)
	}
	var nilInj *Injector
	if nilInj.DriverCrashAfter("sketch") {
		t.Fatal("nil injector crashed the driver")
	}
}

func TestDriverCrashErrorMessage(t *testing.T) {
	err := &DriverCrashError{Stage: "similarity"}
	if !strings.Contains(err.Error(), "similarity") || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("message unhelpful: %s", err.Error())
	}
}
