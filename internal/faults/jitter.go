package faults

import "time"

// Jitter derives a deterministic delay in [0, max) from (seed, site, n)
// through the same FNV-1a+SplitMix64 site hash that drives every other
// injection decision. Retry loops add it to their base backoff so
// concurrent retries de-synchronize (no thundering herd) while staying a
// pure function of the site identity: a chaos run with one seed sleeps
// the same virtual (or wall) intervals on every execution, independent
// of goroutine scheduling. n is the attempt or round ordinal.
func Jitter(seed int64, site string, n int, limit time.Duration) time.Duration {
	if limit <= 0 {
		return 0
	}
	return time.Duration(unit(siteHash(seed, "jitter", site, "", n, 0)) * float64(limit))
}

// Backoff computes the delay before retry attempt n (1-based: n is how
// many failures have occurred) of the named site: base*factor^(n-1)
// capped at ceiling (0 = uncapped), plus a deterministic seeded jitter
// of up to half the capped value. Both the engine's task-retry
// scheduling and the ingest source retries route through this one
// function, so faulted timings everywhere are scheduling-independent.
func Backoff(seed int64, site string, n int, base time.Duration, factor float64, ceiling time.Duration) time.Duration {
	if n < 1 {
		n = 1
	}
	if factor < 1 {
		factor = 1
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= factor
		if ceiling > 0 && d >= float64(ceiling) {
			break
		}
	}
	if ceiling > 0 && d > float64(ceiling) {
		d = float64(ceiling)
	}
	backoff := time.Duration(d)
	return backoff + Jitter(seed, site, n, backoff/2)
}
