package faults

import (
	"testing"
	"time"
)

// Two injectors built from the same plan must agree on every decision —
// the property the whole recovery stack's reproducibility rests on.
func TestCrashAttemptDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, TaskCrashProb: 0.3}
	a := MustNew(plan)
	b := MustNew(plan)
	crashes := 0
	for task := 0; task < 50; task++ {
		for attempt := 1; attempt <= 4; attempt++ {
			ca, fa := a.CrashAttempt("job", PhaseMap, task, attempt, 0)
			cb, fb := b.CrashAttempt("job", PhaseMap, task, attempt, 0)
			if ca != cb || fa != fb {
				t.Fatalf("task %d attempt %d: injectors disagree (%v/%v vs %v/%v)", task, attempt, ca, fa, cb, fb)
			}
			if ca {
				crashes++
				if fa <= 0 || fa > 1 {
					t.Fatalf("fail point %v out of (0,1]", fa)
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatal("30% crash probability over 200 sites injected nothing")
	}
}

// Different seeds must actually change the decision pattern.
func TestSeedChangesDecisions(t *testing.T) {
	a := MustNew(Plan{Seed: 1, TaskCrashProb: 0.5})
	b := MustNew(Plan{Seed: 2, TaskCrashProb: 0.5})
	same := true
	for task := 0; task < 64; task++ {
		ca, _ := a.CrashAttempt("j", PhaseMap, task, 1, 0)
		cb, _ := b.CrashAttempt("j", PhaseMap, task, 1, 0)
		if ca != cb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical crash patterns over 64 sites")
	}
}

func TestMaxCrashesPerTask(t *testing.T) {
	in := MustNew(Plan{Seed: 7, TaskCrashProb: 1, MaxCrashesPerTask: 2})
	if c, _ := in.CrashAttempt("j", PhaseMap, 0, 1, 0); !c {
		t.Fatal("attempt 1 with prob 1 should crash")
	}
	if c, _ := in.CrashAttempt("j", PhaseMap, 0, 2, 1); !c {
		t.Fatal("attempt 2 with one prior crash should crash")
	}
	if c, _ := in.CrashAttempt("j", PhaseMap, 0, 3, 2); c {
		t.Fatal("attempt 3 exceeds MaxCrashesPerTask=2, must succeed")
	}
}

func TestTargetedCrashes(t *testing.T) {
	in := MustNew(Plan{Crashes: []TaskCrash{{Job: "wc", Phase: PhaseMap, Task: 3, UpToAttempt: 2}}})
	if c, _ := in.CrashAttempt("wc", PhaseMap, 3, 1, 0); !c {
		t.Fatal("targeted attempt 1 should crash")
	}
	if c, _ := in.CrashAttempt("wc", PhaseMap, 3, 2, 1); !c {
		t.Fatal("targeted attempt 2 should crash")
	}
	if c, _ := in.CrashAttempt("wc", PhaseMap, 3, 3, 2); c {
		t.Fatal("attempt 3 is past UpToAttempt, must succeed")
	}
	if c, _ := in.CrashAttempt("wc", PhaseMap, 4, 1, 0); c {
		t.Fatal("task 4 is not targeted")
	}
	if c, _ := in.CrashAttempt("other", PhaseMap, 3, 1, 0); c {
		t.Fatal("job selector must filter")
	}
	if c, _ := in.CrashAttempt("wc", PhaseReduce, 3, 1, 0); c {
		t.Fatal("phase selector must filter")
	}
}

func TestNodeDeathsAndSlowFactor(t *testing.T) {
	in := MustNew(Plan{
		NodeDeaths: []NodeDeath{{Node: 2, At: 90 * time.Second}, {Node: 2, At: 40 * time.Second}, {Node: 0, At: 10 * time.Second}},
		SlowNodes:  []SlowNode{{Node: 1, Factor: 2.5}},
	})
	if at, ok := in.DeathOf(2); !ok || at != 40*time.Second {
		t.Fatalf("DeathOf(2) = %v,%v want 40s,true (earliest death wins)", at, ok)
	}
	if _, ok := in.DeathOf(5); ok {
		t.Fatal("node 5 has no planned death")
	}
	deaths := in.NodeDeaths()
	if len(deaths) != 3 || deaths[0].Node != 0 || deaths[1].At != 40*time.Second {
		t.Fatalf("NodeDeaths not sorted by time: %+v", deaths)
	}
	if f := in.SlowFactor(1); f != 2.5 {
		t.Fatalf("SlowFactor(1) = %v want 2.5", f)
	}
	if f := in.SlowFactor(0); f != 1 {
		t.Fatalf("SlowFactor(0) = %v want 1", f)
	}
}

func TestBlockErrorsTimesLimit(t *testing.T) {
	in := MustNew(Plan{BlockErrors: []BlockError{{PathPrefix: "/data", Node: 1, Times: 2}}})
	fails := 0
	for i := 0; i < 5; i++ {
		if in.FailBlockRead("/data/reads.fa", 1) {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("Times=2 rule fired %d times", fails)
	}
	if in.FailBlockRead("/other/file", 1) {
		t.Fatal("path prefix must filter")
	}
	if in.FailBlockRead("/data/reads.fa", 0) {
		t.Fatal("node selector must filter")
	}
	if got := in.Counts()["dfs.read.targeted"]; got != 2 {
		t.Fatalf("counter dfs.read.targeted = %d want 2", got)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if c, _ := in.CrashAttempt("j", PhaseMap, 0, 1, 0); c {
		t.Fatal("nil injector crashed an attempt")
	}
	if in.FailBlockRead("/p", 0) {
		t.Fatal("nil injector failed a read")
	}
	if f := in.SlowFactor(0); f != 1 {
		t.Fatalf("nil injector slow factor %v", f)
	}
	if in.Injected() != 0 || in.Counts() != nil || in.NodeDeaths() != nil {
		t.Fatal("nil injector leaked state")
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("crash=0.1,maxcrash=2,kill=3@90s,slow=1@2.0,dfsfail=0.05,taskfail=wc:map:*:3,blockerr=/data:*:1", 9)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || plan.TaskCrashProb != 0.1 || plan.MaxCrashesPerTask != 2 {
		t.Fatalf("probabilistic fields wrong: %+v", plan)
	}
	if len(plan.NodeDeaths) != 1 || plan.NodeDeaths[0] != (NodeDeath{Node: 3, At: 90 * time.Second}) {
		t.Fatalf("kill parsed wrong: %+v", plan.NodeDeaths)
	}
	if len(plan.SlowNodes) != 1 || plan.SlowNodes[0] != (SlowNode{Node: 1, Factor: 2}) {
		t.Fatalf("slow parsed wrong: %+v", plan.SlowNodes)
	}
	if plan.BlockReadErrorProb != 0.05 {
		t.Fatalf("dfsfail parsed wrong: %v", plan.BlockReadErrorProb)
	}
	if len(plan.Crashes) != 1 || plan.Crashes[0] != (TaskCrash{Job: "wc", Phase: PhaseMap, Task: -1, UpToAttempt: 3}) {
		t.Fatalf("taskfail parsed wrong: %+v", plan.Crashes)
	}
	if len(plan.BlockErrors) != 1 || plan.BlockErrors[0] != (BlockError{PathPrefix: "/data", Node: -1, Times: 1}) {
		t.Fatalf("blockerr parsed wrong: %+v", plan.BlockErrors)
	}

	if _, err := ParsePlan("crash=1.5", 1); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := ParsePlan("bogus=1", 1); err == nil {
		t.Fatal("unknown directive accepted")
	}
	if _, err := ParsePlan("kill=abc", 1); err == nil {
		t.Fatal("malformed kill accepted")
	}
	if _, err := ParsePlan("taskfail=a:b", 1); err == nil {
		t.Fatal("short taskfail accepted")
	}

	chaos, err := ParsePlan("chaos", 5)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.TaskCrashProb != ChaosPlan(5).TaskCrashProb || chaos.Seed != 5 {
		t.Fatalf("chaos directive wrong: %+v", chaos)
	}

	empty, err := ParsePlan("  ", 1)
	if err != nil || !empty.Empty() {
		t.Fatalf("blank spec should give empty plan, got %+v, %v", empty, err)
	}
	if got := empty.String(); got != "none" {
		t.Fatalf("empty plan String() = %q", got)
	}
	if got := plan.String(); got == "" || got == "none" {
		t.Fatalf("plan String() = %q", got)
	}
	// Rendered plans must reparse to the same plan.
	again, err := ParsePlan(plan.String(), 9)
	if err != nil {
		t.Fatalf("String() round-trip: %v (spec %q)", err, plan.String())
	}
	if again.String() != plan.String() {
		t.Fatalf("round-trip mismatch: %q vs %q", again.String(), plan.String())
	}
}
