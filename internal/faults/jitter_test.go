package faults

import (
	"testing"
	"time"
)

func TestJitterDeterministicAndBounded(t *testing.T) {
	const limit = time.Second
	for n := 1; n <= 64; n++ {
		a := Jitter(7, "ingest/file", n, limit)
		b := Jitter(7, "ingest/file", n, limit)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", n, a, b)
		}
		if a < 0 || a >= limit {
			t.Fatalf("attempt %d: jitter %v out of [0,%v)", n, a, limit)
		}
	}
}

func TestJitterVariesAcrossSites(t *testing.T) {
	seen := make(map[time.Duration]bool)
	sites := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, s := range sites {
		seen[Jitter(1, s, 1, time.Hour)] = true
	}
	if len(seen) < len(sites)-1 {
		t.Fatalf("jitter nearly constant across sites: %d distinct of %d", len(seen), len(sites))
	}
	if Jitter(1, "a", 1, time.Hour) == Jitter(2, "a", 1, time.Hour) {
		t.Fatal("jitter ignores the seed")
	}
}

func TestJitterZeroLimit(t *testing.T) {
	if d := Jitter(1, "x", 1, 0); d != 0 {
		t.Fatalf("zero limit gave %v", d)
	}
	if d := Jitter(1, "x", 1, -time.Second); d != 0 {
		t.Fatalf("negative limit gave %v", d)
	}
}

func TestBackoffGrowsThenCaps(t *testing.T) {
	const (
		base    = 100 * time.Millisecond
		ceiling = time.Second
	)
	prev := time.Duration(0)
	for n := 1; n <= 12; n++ {
		d := Backoff(3, "src", n, base, 2, ceiling)
		// Jitter adds at most half the capped base, so the hard bound is
		// ceiling * 1.5.
		if d > ceiling+ceiling/2 {
			t.Fatalf("attempt %d: backoff %v exceeds jittered ceiling %v", n, d, ceiling+ceiling/2)
		}
		if d < base {
			t.Fatalf("attempt %d: backoff %v below base %v", n, d, base)
		}
		if n <= 3 && d <= prev/2 { // exponential region keeps growing
			t.Fatalf("attempt %d: backoff %v did not grow from %v", n, d, prev)
		}
		prev = d
	}
	// Determinism across calls.
	if Backoff(3, "src", 5, base, 2, ceiling) != Backoff(3, "src", 5, base, 2, ceiling) {
		t.Fatal("Backoff not deterministic")
	}
}

func TestBackoffUncapped(t *testing.T) {
	base := 10 * time.Millisecond
	d := Backoff(1, "s", 10, base, 2, 0)
	if d < base*512 {
		t.Fatalf("uncapped backoff %v below 2^9*base", d)
	}
}

func TestServiceCrashPlanParseAndFire(t *testing.T) {
	plan, err := ParsePlan("service-crash:after=100", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ServiceCrashes) != 1 || plan.ServiceCrashes[0].AfterReads != 100 {
		t.Fatalf("parsed %+v", plan.ServiceCrashes)
	}
	if plan.Empty() {
		t.Fatal("plan with a service crash reported Empty")
	}
	if got := plan.String(); got != "service-crash:after=100" {
		t.Fatalf("String() = %q", got)
	}
	in := MustNew(plan)
	if in.ServiceCrashNow(99) {
		t.Fatal("fired below threshold")
	}
	if !in.ServiceCrashNow(100) {
		t.Fatal("did not fire at threshold")
	}
	if !in.ServiceCrashNow(250) {
		t.Fatal("did not fire above threshold")
	}
	if in.Counts()["service.crash"] != 2 {
		t.Fatalf("counts %v", in.Counts())
	}
	var nilInj *Injector
	if nilInj.ServiceCrashNow(1 << 30) {
		t.Fatal("nil injector fired")
	}
}

func TestServiceCrashValidate(t *testing.T) {
	if _, err := ParsePlan("service-crash:after=0", 1); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := ParsePlan("service-crash:after=x", 1); err == nil {
		t.Fatal("non-numeric threshold accepted")
	}
}
