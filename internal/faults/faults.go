// Package faults is the deterministic fault-injection layer of the
// simulated Hadoop stack. A seeded Injector owns a Plan of fault sites —
// task-attempt crashes, node deaths at a virtual time, slow nodes, and DFS
// block-read errors — and both the MapReduce engine and the DFS consult it
// on their hot paths. Every decision is a pure function of the plan seed
// and the site identity (job, phase, task, attempt, path, node), never of
// goroutine scheduling order, so a faulted run is bit-reproducible: the
// same seed yields the same crashes, the same recovery schedule, and —
// because recovery is lossless — the same job output as the fault-free
// run.
//
// The package is a leaf: it imports neither the engine nor the DFS, so
// both can depend on it without cycles.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phases a task-level fault can target.
const (
	PhaseMap    = "map"
	PhaseReduce = "reduce"
)

// TaskCrash declares targeted attempt crashes: attempts 1..UpToAttempt of
// the matching task fail, so attempt UpToAttempt+1 (if the retry budget
// allows one) succeeds. Empty/negative selector fields match anything.
type TaskCrash struct {
	// Job matches the job name exactly; "" matches every job.
	Job string
	// Phase is PhaseMap or PhaseReduce; "" matches both.
	Phase string
	// Task is the task index within the phase; -1 matches every task.
	Task int
	// UpToAttempt is the last attempt number that crashes (1-based).
	UpToAttempt int
}

func (tc TaskCrash) matches(job, phase string, task int) bool {
	if tc.Job != "" && tc.Job != job {
		return false
	}
	if tc.Phase != "" && tc.Phase != phase {
		return false
	}
	if tc.Task >= 0 && tc.Task != task {
		return false
	}
	return true
}

// NodeDeath kills a simulated cluster node at a point on the global
// virtual clock. The node never comes back: running attempts on it are
// killed, completed map output it holds is lost, and it receives no
// further work.
type NodeDeath struct {
	Node int
	At   time.Duration
}

// SlowNode models a flaky machine: every attempt placed on Node runs
// Factor times longer than nominal (Factor ≥ 1).
type SlowNode struct {
	Node   int
	Factor float64
}

// BlockError declares DFS block-read failures: reads of blocks of files
// under PathPrefix served by Node fail (an I/O error mid-transfer), at
// most Times times (0 = every read).
type BlockError struct {
	// PathPrefix selects files; "" matches every path.
	PathPrefix string
	// Node selects the serving datanode; -1 matches every node.
	Node int
	// Times caps how often this rule fires; 0 means unlimited.
	Times int
}

// DriverCrash kills the pipeline driver immediately after the named stage
// has committed its checkpoint — the cross-job failure class that stage
// checkpointing exists for. The crash fires only when the stage actually
// executes, so a resumed run that skips the stage from its manifest sails
// past the crash site (the model is a one-time process death, not a
// deterministic repeating crash).
type DriverCrash struct {
	// AfterStage names the pipeline stage ("sketch", "similarity",
	// "greedy", "cluster", or a Pig "store:<path>" stage).
	AfterStage string
}

// DriverCrashError is returned by a pipeline whose driver was killed by an
// injected DriverCrash. The stage's output is already committed; re-running
// with resume enabled continues from the next stage. Use errors.As to
// detect it.
type DriverCrashError struct {
	// Stage is the stage after whose commit the driver died.
	Stage string
}

// Error formats the crash.
func (e *DriverCrashError) Error() string {
	return fmt.Sprintf("faults: driver crashed after stage %q (checkpoint committed; re-run with resume)", e.Stage)
}

// ServiceCrash kills the always-on clustering daemon (mrmcminhd) once it
// has acknowledged at least AfterReads reads — the mid-ingest process
// death the service's WAL + snapshot recovery exists for. Acknowledged
// reads are WAL-durable by definition, so a restarted server with
// --resume must recover every one of them bit-identically; the crash is
// a one-time process death (a resumed run that starts past the
// threshold does not re-fire it — the daemon consults the site only for
// reads it acknowledges itself).
type ServiceCrash struct {
	// AfterReads is the acknowledged-read count that triggers the kill
	// (>= 1).
	AfterReads int
}

// ServiceCrashError is returned by the serving state when an injected
// ServiceCrash fires. Every read acknowledged so far is WAL-durable;
// restarting the daemon with --resume recovers all of them. Use
// errors.As to detect it.
type ServiceCrashError struct {
	// Acked is how many reads had been acknowledged when the service
	// died.
	Acked int64
}

// Error formats the crash.
func (e *ServiceCrashError) Error() string {
	return fmt.Sprintf("faults: service crashed after %d acknowledged reads (WAL is durable; restart with --resume)", e.Acked)
}

// Plan declares everything an Injector will break. The zero Plan injects
// nothing; all probabilistic sites are derived deterministically from
// Seed.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// TaskCrashProb is the chance a given task attempt crashes, decided by
	// hashing (seed, job, phase, task, attempt) — independent of execution
	// order.
	TaskCrashProb float64
	// MaxCrashesPerTask caps probabilistic crashes of one task, so a plan
	// with MaxCrashesPerTask below the engine's retry budget always lets
	// the job finish. 0 means unbounded (targeted TaskCrash entries are
	// exempt: they state their own attempt bound).
	MaxCrashesPerTask int
	// Crashes are targeted attempt failures.
	Crashes []TaskCrash
	// NodeDeaths kill cluster nodes at virtual times.
	NodeDeaths []NodeDeath
	// SlowNodes dilate task durations per node.
	SlowNodes []SlowNode
	// BlockReadErrorProb is the chance a single DFS replica read fails,
	// decided by hashing (seed, path, node, ordinal).
	BlockReadErrorProb float64
	// BlockErrors are targeted DFS read failures.
	BlockErrors []BlockError
	// DriverCrashes kill the pipeline driver after named stages commit.
	DriverCrashes []DriverCrash
	// ServiceCrashes kill the serving daemon after acknowledged-read
	// thresholds.
	ServiceCrashes []ServiceCrash
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.TaskCrashProb == 0 && len(p.Crashes) == 0 &&
		len(p.NodeDeaths) == 0 && len(p.SlowNodes) == 0 &&
		p.BlockReadErrorProb == 0 && len(p.BlockErrors) == 0 &&
		len(p.DriverCrashes) == 0 && len(p.ServiceCrashes) == 0
}

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	if p.TaskCrashProb < 0 || p.TaskCrashProb > 1 {
		return fmt.Errorf("faults: crash probability %v out of [0,1]", p.TaskCrashProb)
	}
	if p.BlockReadErrorProb < 0 || p.BlockReadErrorProb > 1 {
		return fmt.Errorf("faults: block-read error probability %v out of [0,1]", p.BlockReadErrorProb)
	}
	for _, s := range p.SlowNodes {
		if s.Factor < 1 {
			return fmt.Errorf("faults: slow node %d factor %v must be >= 1", s.Node, s.Factor)
		}
	}
	for _, d := range p.NodeDeaths {
		if d.Node < 0 {
			return fmt.Errorf("faults: node death on negative node %d", d.Node)
		}
	}
	for _, dc := range p.DriverCrashes {
		if dc.AfterStage == "" {
			return fmt.Errorf("faults: driver crash needs a stage name")
		}
	}
	for _, sc := range p.ServiceCrashes {
		if sc.AfterReads < 1 {
			return fmt.Errorf("faults: service crash threshold %d must be >= 1", sc.AfterReads)
		}
	}
	return nil
}

// Injector answers fault queries for one plan. It is safe for concurrent
// use; a nil *Injector is the disabled state and every method on it is an
// inject-nothing no-op.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	counts     map[string]int64
	blockFired []int          // per-BlockError fire count
	blockSeen  map[string]int // path/node -> reads observed (probabilistic ordinal)
}

// New returns an injector for the plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:       plan,
		counts:     make(map[string]int64),
		blockFired: make([]int, len(plan.BlockErrors)),
		blockSeen:  make(map[string]int),
	}, nil
}

// MustNew is New panicking on error.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Enabled reports whether the injector can inject anything.
func (in *Injector) Enabled() bool { return in != nil && !in.plan.Empty() }

// CrashAttempt reports whether the given attempt of a task crashes, and
// if so how far through its work the crash lands (a fraction in
// (0,1]). priorCrashes is how many attempts of this task have already
// crashed; the probabilistic path uses it to honor MaxCrashesPerTask.
// The decision is a pure function of (seed, job, phase, task, attempt).
func (in *Injector) CrashAttempt(job, phase string, task, attempt, priorCrashes int) (bool, float64) {
	if in == nil {
		return false, 0
	}
	for _, tc := range in.plan.Crashes {
		if tc.matches(job, phase, task) && attempt <= tc.UpToAttempt {
			in.count("task.crash.targeted")
			return true, failPoint(in.plan.Seed, job, phase, task, attempt)
		}
	}
	if p := in.plan.TaskCrashProb; p > 0 {
		if in.plan.MaxCrashesPerTask > 0 && priorCrashes >= in.plan.MaxCrashesPerTask {
			return false, 0
		}
		h := siteHash(in.plan.Seed, "crash", job, phase, task, attempt)
		if unit(h) < p {
			in.count("task.crash.random")
			return true, failPoint(in.plan.Seed, job, phase, task, attempt)
		}
	}
	return false, 0
}

// DeathOf returns the earliest planned death time of a cluster node on
// the global virtual clock.
func (in *Injector) DeathOf(node int) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	var at time.Duration
	found := false
	for _, d := range in.plan.NodeDeaths {
		if d.Node == node && (!found || d.At < at) {
			at, found = d.At, true
		}
	}
	return at, found
}

// NodeDeaths returns all planned deaths sorted by (time, node).
func (in *Injector) NodeDeaths() []NodeDeath {
	if in == nil {
		return nil
	}
	out := make([]NodeDeath, len(in.plan.NodeDeaths))
	copy(out, in.plan.NodeDeaths)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// DriverCrashAfter reports whether the plan kills the driver after the
// named stage executes and commits. The pipeline driver calls this once
// per executed stage (skipped stages never consult it) and returns a
// *DriverCrashError when it fires.
func (in *Injector) DriverCrashAfter(stage string) bool {
	if in == nil {
		return false
	}
	for _, dc := range in.plan.DriverCrashes {
		if dc.AfterStage == stage {
			in.count("driver.crash")
			return true
		}
	}
	return false
}

// ServiceCrashNow reports whether the plan kills the serving daemon
// given that acked reads have been acknowledged so far. The daemon's
// committer calls this after each acknowledged batch; the site fires
// once (the model is a one-time process death).
func (in *Injector) ServiceCrashNow(acked int64) bool {
	if in == nil {
		return false
	}
	for _, sc := range in.plan.ServiceCrashes {
		if acked >= int64(sc.AfterReads) {
			in.count("service.crash")
			return true
		}
	}
	return false
}

// SlowFactor returns the duration multiplier for a node (1.0 when the
// node is healthy).
func (in *Injector) SlowFactor(node int) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, s := range in.plan.SlowNodes {
		if s.Node == node && s.Factor > f {
			f = s.Factor
		}
	}
	return f
}

// FailBlockRead reports whether a DFS read of a block of path served by
// datanode node fails. Targeted BlockErrors fire first (bounded by their
// Times); the probabilistic site hashes (seed, path, node, ordinal) where
// ordinal counts reads of that path/node pair.
func (in *Injector) FailBlockRead(path string, node int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, be := range in.plan.BlockErrors {
		if be.PathPrefix != "" && !strings.HasPrefix(path, be.PathPrefix) {
			continue
		}
		if be.Node >= 0 && be.Node != node {
			continue
		}
		if be.Times > 0 && in.blockFired[i] >= be.Times {
			continue
		}
		in.blockFired[i]++
		in.counts["dfs.read.targeted"]++
		return true
	}
	if p := in.plan.BlockReadErrorProb; p > 0 {
		key := fmt.Sprintf("%s#%d", path, node)
		ord := in.blockSeen[key]
		in.blockSeen[key] = ord + 1
		h := siteHash(in.plan.Seed, "dfsread", path, "", node, ord)
		if unit(h) < p {
			in.counts["dfs.read.random"]++
			return true
		}
	}
	return false
}

// count bumps an injection counter.
func (in *Injector) count(name string) {
	in.mu.Lock()
	in.counts[name]++
	in.mu.Unlock()
}

// Counts snapshots how many faults of each kind have been injected.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Injected totals all injected faults.
func (in *Injector) Injected() int64 {
	var n int64
	for _, v := range in.Counts() {
		n += v
	}
	return n
}

// failPoint derives a crash point in [0.1, 0.95] of the attempt's nominal
// duration from the site identity.
func failPoint(seed int64, job, phase string, task, attempt int) float64 {
	return 0.1 + 0.85*unit(siteHash(seed, "failpoint", job, phase, task, attempt))
}

// siteHash folds a fault site's identity into 64 bits, FNV-1a over the
// textual fields then SplitMix64-finalized with the numeric ones.
func siteHash(seed int64, kind, a, b string, x, y int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mix(kind)
	mix(a)
	mix(b)
	z := h ^ uint64(seed) ^ uint64(x)<<32 ^ uint64(uint32(y))
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
