package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ChaosPlan is the moderate random-fault profile the CI chaos matrix runs
// across seeds: attempts crash with 8% probability (at most twice per
// task, inside the engine's default four-attempt budget) and single DFS
// replica reads fail with 3% probability. Deaths and slow nodes are
// site-specific, so callers add them per cluster shape.
func ChaosPlan(seed int64) Plan {
	return Plan{
		Seed:               seed,
		TaskCrashProb:      0.08,
		MaxCrashesPerTask:  2,
		BlockReadErrorProb: 0.03,
	}
}

// ParsePlan builds a plan from a comma-separated spec string, the format
// behind the CLIs' --faults flag. Directives:
//
//	chaos                     moderate random profile (see ChaosPlan)
//	crash=P                   attempt crash probability in [0,1]
//	maxcrash=N                cap probabilistic crashes per task
//	taskfail=JOB:PHASE:T:N    attempts 1..N of task T crash ("*" wildcards)
//	kill=NODE@DUR             node death at virtual time DUR (e.g. 2@90s)
//	slow=NODE@FACTOR          node runs FACTOR× slower (e.g. 1@2.5)
//	dfsfail=P                 single replica-read failure probability
//	blockerr=PREFIX:NODE:N    N reads of PREFIX via NODE fail ("*" wildcards)
//	driver-crash:after=STAGE  kill the driver after STAGE commits its checkpoint
//	service-crash:after=N     kill the serving daemon after N acknowledged reads
//
// The seed parameter feeds every probabilistic site; an empty spec returns
// the zero plan.
func ParsePlan(spec string, seed int64) (Plan, error) {
	plan := Plan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, dir := range strings.Split(spec, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		if dir == "chaos" {
			c := ChaosPlan(seed)
			plan.TaskCrashProb = c.TaskCrashProb
			plan.MaxCrashesPerTask = c.MaxCrashesPerTask
			plan.BlockReadErrorProb = c.BlockReadErrorProb
			continue
		}
		key, val, ok := strings.Cut(dir, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: directive %q is not key=value", dir)
		}
		var err error
		switch key {
		case "crash":
			plan.TaskCrashProb, err = parseProb(val)
		case "maxcrash":
			plan.MaxCrashesPerTask, err = strconv.Atoi(val)
		case "dfsfail":
			plan.BlockReadErrorProb, err = parseProb(val)
		case "taskfail":
			var tc TaskCrash
			tc, err = parseTaskFail(val)
			plan.Crashes = append(plan.Crashes, tc)
		case "kill":
			var nd NodeDeath
			nd, err = parseNodeAt(val)
			plan.NodeDeaths = append(plan.NodeDeaths, nd)
		case "slow":
			var sn SlowNode
			sn, err = parseSlow(val)
			plan.SlowNodes = append(plan.SlowNodes, sn)
		case "blockerr":
			var be BlockError
			be, err = parseBlockErr(val)
			plan.BlockErrors = append(plan.BlockErrors, be)
		case "driver-crash:after":
			plan.DriverCrashes = append(plan.DriverCrashes, DriverCrash{AfterStage: val})
		case "service-crash:after":
			var n int
			n, err = strconv.Atoi(val)
			plan.ServiceCrashes = append(plan.ServiceCrashes, ServiceCrash{AfterReads: n})
		default:
			return Plan{}, fmt.Errorf("faults: unknown directive %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: directive %q: %w", dir, err)
		}
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// String renders the plan in ParsePlan's grammar (probabilistic and
// targeted sites; useful for logging the active chaos profile).
func (p Plan) String() string {
	var parts []string
	if p.TaskCrashProb > 0 {
		parts = append(parts, fmt.Sprintf("crash=%g", p.TaskCrashProb))
	}
	if p.MaxCrashesPerTask > 0 {
		parts = append(parts, fmt.Sprintf("maxcrash=%d", p.MaxCrashesPerTask))
	}
	for _, tc := range p.Crashes {
		parts = append(parts, fmt.Sprintf("taskfail=%s:%s:%s:%d",
			wildcardStr(tc.Job), wildcardStr(tc.Phase), wildcardInt(tc.Task), tc.UpToAttempt))
	}
	for _, nd := range p.NodeDeaths {
		parts = append(parts, fmt.Sprintf("kill=%d@%s", nd.Node, nd.At))
	}
	for _, sn := range p.SlowNodes {
		parts = append(parts, fmt.Sprintf("slow=%d@%g", sn.Node, sn.Factor))
	}
	if p.BlockReadErrorProb > 0 {
		parts = append(parts, fmt.Sprintf("dfsfail=%g", p.BlockReadErrorProb))
	}
	for _, be := range p.BlockErrors {
		parts = append(parts, fmt.Sprintf("blockerr=%s:%s:%d",
			wildcardStr(be.PathPrefix), wildcardInt(be.Node), be.Times))
	}
	for _, dc := range p.DriverCrashes {
		parts = append(parts, fmt.Sprintf("driver-crash:after=%s", dc.AfterStage))
	}
	for _, sc := range p.ServiceCrashes {
		parts = append(parts, fmt.Sprintf("service-crash:after=%d", sc.AfterReads))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

func wildcardStr(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

func wildcardInt(i int) string {
	if i < 0 {
		return "*"
	}
	return strconv.Itoa(i)
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

// parseTaskFail parses JOB:PHASE:TASK:UPTO with "*" wildcards.
func parseTaskFail(val string) (TaskCrash, error) {
	parts := strings.Split(val, ":")
	if len(parts) != 4 {
		return TaskCrash{}, fmt.Errorf("want JOB:PHASE:TASK:UPTO, got %d fields", len(parts))
	}
	tc := TaskCrash{Job: starEmpty(parts[0]), Phase: starEmpty(parts[1]), Task: -1}
	if tc.Phase != "" && tc.Phase != PhaseMap && tc.Phase != PhaseReduce {
		return TaskCrash{}, fmt.Errorf("phase %q is not map/reduce/*", parts[1])
	}
	if parts[2] != "*" {
		t, err := strconv.Atoi(parts[2])
		if err != nil {
			return TaskCrash{}, err
		}
		tc.Task = t
	}
	upTo, err := strconv.Atoi(parts[3])
	if err != nil {
		return TaskCrash{}, err
	}
	if upTo < 1 {
		return TaskCrash{}, fmt.Errorf("up-to attempt %d must be >= 1", upTo)
	}
	tc.UpToAttempt = upTo
	return tc, nil
}

// parseNodeAt parses NODE@DURATION.
func parseNodeAt(val string) (NodeDeath, error) {
	nodeStr, durStr, ok := strings.Cut(val, "@")
	if !ok {
		return NodeDeath{}, fmt.Errorf("want NODE@DURATION")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return NodeDeath{}, err
	}
	at, err := time.ParseDuration(durStr)
	if err != nil {
		return NodeDeath{}, err
	}
	return NodeDeath{Node: node, At: at}, nil
}

// parseSlow parses NODE@FACTOR.
func parseSlow(val string) (SlowNode, error) {
	nodeStr, facStr, ok := strings.Cut(val, "@")
	if !ok {
		return SlowNode{}, fmt.Errorf("want NODE@FACTOR")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return SlowNode{}, err
	}
	factor, err := strconv.ParseFloat(facStr, 64)
	if err != nil {
		return SlowNode{}, err
	}
	return SlowNode{Node: node, Factor: factor}, nil
}

// parseBlockErr parses PREFIX:NODE:TIMES with "*" wildcards.
func parseBlockErr(val string) (BlockError, error) {
	parts := strings.Split(val, ":")
	if len(parts) != 3 {
		return BlockError{}, fmt.Errorf("want PREFIX:NODE:TIMES, got %d fields", len(parts))
	}
	be := BlockError{PathPrefix: starEmpty(parts[0]), Node: -1}
	if parts[1] != "*" {
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return BlockError{}, err
		}
		be.Node = n
	}
	times, err := strconv.Atoi(parts[2])
	if err != nil {
		return BlockError{}, err
	}
	if times < 0 {
		return BlockError{}, fmt.Errorf("times %d must be >= 0", times)
	}
	be.Times = times
	return be, nil
}

func starEmpty(s string) string {
	if s == "*" {
		return ""
	}
	return s
}
