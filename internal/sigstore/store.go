package sigstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// DefaultShards is the shard fan-out when Config.Shards is zero: wide
// enough that a worker pool of map tasks rarely collides on a shard
// lock, small enough that per-shard overhead stays negligible.
const DefaultShards = 64

// Config fixes a store's geometry. Every signature in a store shares one
// geometry, which is what lets rows live at a fixed stride in contiguous
// arenas and lets packed similarity skip all per-pair validation.
type Config struct {
	// NumHashes is the signature length n (required, >= 1).
	NumHashes int
	// Bits selects the representation: 0 stores full 64-bit signatures;
	// 1..16 stores b-bit packed sketches at ceil(n*b/64) words per read.
	Bits int
	// Shards is the shard count (power of two; 0 means DefaultShards).
	Shards int
}

func (c Config) validate() (Config, error) {
	if c.NumHashes < 1 {
		return c, fmt.Errorf("sigstore: NumHashes must be >= 1, got %d", c.NumHashes)
	}
	if c.Bits < 0 || c.Bits > 16 {
		return c, fmt.Errorf("sigstore: Bits must be in [0,16], got %d", c.Bits)
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.Shards < 1 || c.Shards&(c.Shards-1) != 0 {
		return c, fmt.Errorf("sigstore: Shards must be a power of two, got %d", c.Shards)
	}
	return c, nil
}

// stride returns the arena words per stored signature.
func (c Config) stride() int {
	if c.Bits == 0 {
		return c.NumHashes
	}
	return minhash.PackedWords(c.NumHashes, c.Bits)
}

// Store is a concurrent signature store sharded by read-ID hash. Each
// shard owns a contiguous []uint64 arena holding one fixed-stride row per
// signature, an insertion-ordered dense-ID list (the deterministic
// snapshot order), and a position map. Reads take the owning shard's
// RLock; writers its Lock — independent shards never contend.
type Store struct {
	cfg    Config
	stride int
	mask   uint32
	shards []storeShard
	trans  *Translator
	count  atomic.Int64
	// zeroRow is a read-only stride-length run of zeros appended when a
	// shard arena grows, so Put performs no per-read make.
	zeroRow []uint64
}

type storeShard struct {
	mu    sync.RWMutex
	words []uint64         // arena: stride words per row
	ids   []uint32         // row -> dense id, insertion order
	pos   map[uint32]int32 // dense id -> row
	empty []bool           // row -> source signature was empty
}

// New creates an empty store with the given geometry.
func New(cfg Config) (*Store, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:     cfg,
		stride:  cfg.stride(),
		mask:    uint32(cfg.Shards - 1),
		shards:  make([]storeShard, cfg.Shards),
		trans:   NewTranslator(),
		zeroRow: make([]uint64, cfg.stride()),
	}
	for i := range s.shards {
		s.shards[i].pos = make(map[uint32]int32)
	}
	return s, nil
}

// NumHashes returns the signature length n.
func (s *Store) NumHashes() int { return s.cfg.NumHashes }

// Bits returns 0 for full storage or the packing width b.
func (s *Store) Bits() int { return s.cfg.Bits }

// Translator returns the store's read-ID translator.
func (s *Store) Translator() *Translator { return s.trans }

// Len returns the number of stored signatures.
func (s *Store) Len() int { return int(s.count.Load()) }

// mix32 finalizes a 32-bit hash (the lowbias32 constants), spreading
// sequential dense IDs across shards.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

func (s *Store) shardFor(id uint32) *storeShard {
	return &s.shards[mix32(id)&s.mask]
}

// Put stores sig under the dense ID, overwriting any previous row for
// that ID in place. len(sig) must equal the store's NumHashes.
func (s *Store) Put(id uint32, sig minhash.Signature) error {
	if len(sig) != s.cfg.NumHashes {
		return fmt.Errorf("sigstore: signature length %d != store NumHashes %d", len(sig), s.cfg.NumHashes)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	row, ok := sh.pos[id]
	if !ok {
		row = int32(len(sh.ids))
		sh.ids = append(sh.ids, id)
		sh.pos[id] = row
		sh.words = append(sh.words, s.zeroRow...)
		sh.empty = append(sh.empty, false)
		s.count.Add(1)
	}
	dst := sh.words[int(row)*s.stride : (int(row)+1)*s.stride]
	if s.cfg.Bits == 0 {
		copy(dst, sig)
	} else {
		clear(dst) // CompactInto ORs bits in; overwrites need a clean row
		minhash.CompactInto(dst, sig, s.cfg.Bits)
	}
	sh.empty[row] = sig.Empty()
	return nil
}

// PutBatch stores sigs[i] under dense ID base+i — the ingest shape of the
// pipeline, where dense IDs are read indices.
func (s *Store) PutBatch(base uint32, sigs []minhash.Signature) error {
	for i, sig := range sigs {
		if err := s.Put(base+uint32(i), sig); err != nil {
			return err
		}
	}
	return nil
}

// Ingest translates the string read IDs and stores their signatures,
// returning the dense IDs in key order (appended to dst, reused when it
// has capacity). This is the one call the pipeline makes after the
// sketch stage.
func (s *Store) Ingest(dst []uint32, keys []string, sigs []minhash.Signature) ([]uint32, error) {
	if len(keys) != len(sigs) {
		return nil, fmt.Errorf("sigstore: %d keys vs %d signatures", len(keys), len(sigs))
	}
	dst = s.trans.TranslateBatch(dst, keys)
	for i, sig := range sigs {
		if err := s.Put(dst[i], sig); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// row returns the borrowed arena row and empty flag for a dense ID.
func (s *Store) row(id uint32) ([]uint64, bool, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	row, ok := sh.pos[id]
	if !ok {
		return nil, false, false
	}
	return sh.words[int(row)*s.stride : (int(row)+1)*s.stride : (int(row)+1)*s.stride], sh.empty[row], true
}

// Has reports whether a dense ID is stored.
func (s *Store) Has(id uint32) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.pos[id]
	sh.mu.RUnlock()
	return ok
}

// GetInto appends borrowed full signatures for ids to dst (pass dst[:0]
// to reuse). The returned slice headers alias the shard arenas: they are
// valid until the owning row is overwritten, and share no memory with
// each other. Full-storage stores only.
func (s *Store) GetInto(dst []minhash.Signature, ids []uint32) ([]minhash.Signature, error) {
	if s.cfg.Bits != 0 {
		return nil, fmt.Errorf("sigstore: GetInto on a %d-bit packed store (use PackedInto)", s.cfg.Bits)
	}
	for _, id := range ids {
		w, _, ok := s.row(id)
		if !ok {
			return nil, fmt.Errorf("sigstore: id %d not stored", id)
		}
		dst = append(dst, minhash.Signature(w))
	}
	return dst, nil
}

// PackedInto appends borrowed packed signatures for ids to dst. Packed
// stores only; the views alias the shard arenas like GetInto's.
func (s *Store) PackedInto(dst []minhash.BBitSignature, ids []uint32) ([]minhash.BBitSignature, error) {
	if s.cfg.Bits == 0 {
		return nil, fmt.Errorf("sigstore: PackedInto on a full store (use GetInto)")
	}
	for _, id := range ids {
		w, empty, ok := s.row(id)
		if !ok {
			return nil, fmt.Errorf("sigstore: id %d not stored", id)
		}
		dst = append(dst, minhash.Borrow(s.cfg.Bits, s.cfg.NumHashes, w, empty))
	}
	return dst, nil
}

// ResidentBytes returns the resident signature-arena footprint: the
// number the memory table in the README and the sig-bytes/read benchmark
// metric report. Translator keys and shard bookkeeping are excluded —
// they are identical across representations; the arenas are what b-bit
// packing shrinks.
func (s *Store) ResidentBytes() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += int64(len(sh.words)) * 8
		sh.mu.RUnlock()
	}
	return total
}
