package sigstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// randSigs builds n deterministic signatures of length numHashes, with
// every emptyEvery-th one empty (0 disables).
func randSigs(t testing.TB, n, numHashes, emptyEvery int, seed int64) []minhash.Signature {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]minhash.Signature, n)
	for i := range sigs {
		sig := make(minhash.Signature, numHashes)
		if emptyEvery > 0 && i%emptyEvery == emptyEvery-1 {
			for j := range sig {
				sig[j] = minhash.EmptyMin
			}
		} else {
			for j := range sig {
				sig[j] = rng.Uint64() % (1 << 61)
			}
		}
		sigs[i] = sig
	}
	return sigs
}

func keysFor(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("read_%06d", i)
	}
	return keys
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{NumHashes: 0},
		{NumHashes: 10, Bits: -1},
		{NumHashes: 10, Bits: 17},
		{NumHashes: 10, Shards: 3},
		{NumHashes: 10, Shards: -4},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v): expected error", bad)
		}
	}
	s, err := New(Config{NumHashes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.shards); got != DefaultShards {
		t.Fatalf("default shards = %d, want %d", got, DefaultShards)
	}
}

func TestPutGetRoundTripFull(t *testing.T) {
	sigs := randSigs(t, 200, 24, 7, 1)
	s, err := New(Config{NumHashes: 24, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(0, sigs); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(sigs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sigs))
	}
	ids := make([]uint32, len(sigs))
	for i := range ids {
		ids[i] = uint32(i)
	}
	got, err := s.GetInto(nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range sigs {
		if !got[i].Equal(sig) {
			t.Fatalf("signature %d mismatch", i)
		}
	}
	if _, err := s.PackedInto(nil, ids); err == nil {
		t.Fatal("PackedInto on a full store: expected error")
	}
	if _, err := s.GetInto(nil, []uint32{9999}); err == nil {
		t.Fatal("GetInto of a missing id: expected error")
	}
}

func TestPutGetRoundTripPacked(t *testing.T) {
	sigs := randSigs(t, 200, 24, 7, 2)
	s, err := New(Config{NumHashes: 24, Bits: 4, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(0, sigs); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint32, len(sigs))
	for i := range ids {
		ids[i] = uint32(i)
	}
	got, err := s.PackedInto(nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range sigs {
		want, err := minhash.Compact(sig, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Empty() != sig.Empty() {
			t.Fatalf("signature %d: empty flag mismatch", i)
		}
		for w, word := range want.Words {
			if got[i].Words[w] != word {
				t.Fatalf("signature %d word %d: %x != %x", i, w, got[i].Words[w], word)
			}
		}
	}
	if _, err := s.GetInto(nil, ids); err == nil {
		t.Fatal("GetInto on a packed store: expected error")
	}
}

func TestPutOverwritesInPlace(t *testing.T) {
	for _, bits := range []int{0, 3, 4} {
		s, err := New(Config{NumHashes: 16, Bits: bits, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		first := randSigs(t, 50, 16, 0, 3)
		second := randSigs(t, 50, 16, 5, 4)
		if err := s.PutBatch(0, first); err != nil {
			t.Fatal(err)
		}
		bytesBefore := s.ResidentBytes()
		if err := s.PutBatch(0, second); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 50 {
			t.Fatalf("bits=%d: Len after overwrite = %d, want 50", bits, s.Len())
		}
		if got := s.ResidentBytes(); got != bytesBefore {
			t.Fatalf("bits=%d: overwrite grew arena %d -> %d", bits, bytesBefore, got)
		}
		// The overwritten rows must carry the new values, not an OR of both.
		for i, sig := range second {
			w, empty, ok := s.row(uint32(i))
			if !ok {
				t.Fatalf("bits=%d: id %d missing", bits, i)
			}
			if empty != sig.Empty() {
				t.Fatalf("bits=%d: id %d empty flag stale", bits, i)
			}
			if bits == 0 {
				if !minhash.Signature(w).Equal(sig) {
					t.Fatalf("bits=%d: id %d holds stale words", bits, i)
				}
			} else {
				want, _ := minhash.Compact(sig, bits)
				for k, word := range want.Words {
					if w[k] != word {
						t.Fatalf("bits=%d: id %d word %d stale", bits, i, k)
					}
				}
			}
		}
	}
}

func TestPutRejectsWrongLength(t *testing.T) {
	s, _ := New(Config{NumHashes: 8})
	if err := s.Put(0, make(minhash.Signature, 7)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestIngestTranslatesKeys(t *testing.T) {
	sigs := randSigs(t, 100, 12, 0, 5)
	keys := keysFor(100)
	s, err := New(Config{NumHashes: 12, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Ingest(nil, keys, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != uint32(i) {
			t.Fatalf("ingest order broken: key %d got id %d", i, id)
		}
		back, ok := s.Translator().Key(id)
		if !ok || back != keys[i] {
			t.Fatalf("Key(%d) = %q, %v; want %q", id, back, ok, keys[i])
		}
		if got, ok := s.Translator().Lookup(keys[i]); !ok || got != id {
			t.Fatalf("Lookup(%q) = %d, %v; want %d", keys[i], got, ok, id)
		}
	}
	if _, ok := s.Translator().Lookup("never_seen"); ok {
		t.Fatal("Lookup of an unknown key succeeded")
	}
	if _, ok := s.Translator().Key(9999); ok {
		t.Fatal("Key of an unallocated id succeeded")
	}
	if _, err := s.Ingest(nil, keys[:3], sigs[:2]); err == nil {
		t.Fatal("mismatched keys/sigs lengths: expected error")
	}
}

func TestTranslatorConcurrentStableIDs(t *testing.T) {
	tr := NewTranslator()
	keys := keysFor(500)
	const goroutines = 8
	got := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = tr.TranslateBatch(nil, keys)
		}(g)
	}
	wg.Wait()
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for g := 1; g < goroutines; g++ {
		for i := range keys {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw id %d for key %d, goroutine 0 saw %d",
					g, got[g][i], i, got[0][i])
			}
		}
	}
	// Every id maps back to its key.
	for i, k := range keys {
		if back, ok := tr.Key(got[0][i]); !ok || back != k {
			t.Fatalf("Key(%d) = %q, want %q", got[0][i], back, k)
		}
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	sigs := randSigs(t, 400, 16, 9, 6)
	s, err := New(Config{NumHashes: 16, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 100; i < (g+1)*100; i++ {
				if err := s.Put(uint32(i), sigs[i]); err != nil {
					t.Error(err)
					return
				}
				if !s.Has(uint32(i)) {
					t.Errorf("id %d vanished", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

func TestViewFullMatchesSlicePath(t *testing.T) {
	sigs := randSigs(t, 150, 20, 6, 7)
	for _, est := range []minhash.Estimator{minhash.SetOverlap, minhash.MatchedPositions} {
		s, err := New(Config{NumHashes: 20, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(nil, keysFor(len(sigs)), sigs); err != nil {
			t.Fatal(err)
		}
		v, err := s.View(est)
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != len(sigs) || v.NumHashes() != 20 {
			t.Fatalf("view geometry %d/%d", v.Len(), v.NumHashes())
		}
		prep := minhash.PrepareAll(sigs)
		for i := 0; i < len(sigs); i++ {
			if v.Empty(i) != sigs[i].Empty() {
				t.Fatalf("Empty(%d) mismatch", i)
			}
			if !v.Sig(i).Equal(sigs[i]) {
				t.Fatalf("Sig(%d) mismatch", i)
			}
			for b := 0; b < 4; b++ {
				if v.BandHash(i, b, 5) != minhash.BandHash(sigs[i], b, 5) {
					t.Fatalf("BandHash(%d, %d) mismatch", i, b)
				}
			}
			for j := i + 1; j < len(sigs); j += 17 {
				want := est.SimilarityPrepared(prep[i], prep[j])
				if got := v.Similarity(i, j); got != want {
					t.Fatalf("est %v Similarity(%d,%d) = %v, want %v (must be bit-identical)",
						est, i, j, got, want)
				}
			}
		}
	}
}

func TestViewPackedMatchesCompact(t *testing.T) {
	sigs := randSigs(t, 120, 20, 6, 8)
	for _, bits := range []int{1, 3, 4, 8} {
		s, err := New(Config{NumHashes: 20, Bits: bits, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch(0, sigs); err != nil {
			t.Fatal(err)
		}
		v, err := s.View(minhash.SetOverlap)
		if err != nil {
			t.Fatal(err)
		}
		packed := make([]minhash.BBitSignature, len(sigs))
		for i, sig := range sigs {
			packed[i], err = minhash.Compact(sig, bits)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := range sigs {
			if v.Empty(i) != sigs[i].Empty() {
				t.Fatalf("b=%d: Empty(%d) mismatch", bits, i)
			}
			for b := 0; b < 4; b++ {
				if v.BandHash(i, b, 5) != packed[i].BandHash(b, 5) {
					t.Fatalf("b=%d: BandHash(%d,%d) mismatch", bits, i, b)
				}
			}
			for j := i + 1; j < len(sigs); j += 13 {
				want, err := packed[i].Similarity(packed[j])
				if err != nil {
					t.Fatal(err)
				}
				if got := v.Similarity(i, j); got != want {
					t.Fatalf("b=%d: Similarity(%d,%d) = %v, want %v", bits, i, j, got, want)
				}
			}
		}
	}
}

func TestViewRequiresDenseIDs(t *testing.T) {
	s, _ := New(Config{NumHashes: 8})
	if err := s.Put(5, make(minhash.Signature, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(minhash.SetOverlap); err == nil {
		t.Fatal("sparse id space: expected View error")
	}
}

// TestPackedResidentBytesRatio pins the headline compression claim: b=4
// packing stores the same corpus in >= 8x fewer resident signature bytes
// than full 64-bit storage (at n=100 the exact ratio is 800/56 ≈ 14.3x).
func TestPackedResidentBytesRatio(t *testing.T) {
	sigs := randSigs(t, 256, 100, 0, 9)
	full, err := New(Config{NumHashes: 100})
	if err != nil {
		t.Fatal(err)
	}
	b4, err := New(Config{NumHashes: 100, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.PutBatch(0, sigs); err != nil {
		t.Fatal(err)
	}
	if err := b4.PutBatch(0, sigs); err != nil {
		t.Fatal(err)
	}
	fb, pb := full.ResidentBytes(), b4.ResidentBytes()
	if fb != int64(len(sigs))*100*8 {
		t.Fatalf("full store resident bytes = %d, want %d", fb, len(sigs)*800)
	}
	if pb != int64(len(sigs))*7*8 {
		t.Fatalf("b=4 store resident bytes = %d, want %d", pb, len(sigs)*56)
	}
	if ratio := float64(fb) / float64(pb); ratio < 8 {
		t.Fatalf("compression ratio %.2fx < 8x", ratio)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, bits := range []int{0, 1, 4} {
		sigs := randSigs(t, 300, 24, 11, 10)
		s, err := New(Config{NumHashes: 24, Bits: bits, Shards: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(nil, keysFor(len(sigs)), sigs); err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		r, err := Restore(snap)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if r.Len() != s.Len() || r.NumHashes() != 24 || r.Bits() != bits {
			t.Fatalf("bits=%d: restored geometry %d/%d/%d", bits, r.Len(), r.NumHashes(), r.Bits())
		}
		if k, ok := r.Translator().Key(7); !ok || k != "read_000007" {
			t.Fatalf("bits=%d: translator lost key 7 (%q)", bits, k)
		}
		// The restored store must re-snapshot byte-identically: the
		// property that makes --resume bit-identical.
		resnap := r.Snapshot()
		if len(resnap) != len(snap) {
			t.Fatalf("bits=%d: re-snapshot length %d != %d", bits, len(resnap), len(snap))
		}
		for i := range snap {
			if snap[i] != resnap[i] {
				t.Fatalf("bits=%d: re-snapshot differs at byte %d", bits, i)
			}
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	sigs := randSigs(t, 64, 16, 0, 11)
	s, err := New(Config{NumHashes: 16, Bits: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(nil, keysFor(len(sigs)), sigs); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	// Any single flipped bit must be caught by the overall hash.
	for _, off := range []int{0, len(snap) / 3, len(snap) / 2, len(snap) - 40} {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x40
		if _, err := Restore(bad); err == nil {
			t.Fatalf("flip at %d: restore succeeded on corrupt snapshot", off)
		}
	}
	// A shard blob flipped together with a recomputed overall hash must be
	// caught by that shard's own manifest entry. Walk the layout to the
	// first shard blob: magic, three u64s, then the translator section.
	off := len(snapshotMagic) + 3*8
	keyCount := int(binary.LittleEndian.Uint64(snap[off:]))
	off += 8
	for i := 0; i < keyCount; i++ {
		off += 8 + int(binary.LittleEndian.Uint64(snap[off:]))
	}
	bad := append([]byte(nil), snap[:len(snap)-32]...) // drop overall hash
	bad[off+8] ^= 0x01                                 // first byte inside shard 0's blob
	sum := sha256.Sum256(bad)
	bad = append(bad, sum[:]...)
	_, err = Restore(bad)
	if err == nil {
		t.Fatal("restore succeeded on shard-corrupt snapshot")
	}
	var corrupt *CorruptSnapshotError
	if !errors.As(err, &corrupt) {
		t.Fatalf("shard corruption surfaced as %v, want CorruptSnapshotError", err)
	}
	if corrupt.Section != "shard 0" {
		t.Fatalf("corruption attributed to %q, want \"shard 0\"", corrupt.Section)
	}

	if _, err := Restore([]byte("BOGUS")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
	if _, err := Restore(snap[:len(snap)-3]); err == nil {
		t.Fatal("restore of truncated snapshot succeeded")
	}
}
