package sigstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// TestSnapshotUnderConcurrentReaders pins the serving-layer contract:
// Snapshot may run while other goroutines read rows, look up
// translations, and ingest NEW reads concurrently. The snapshot must be
// internally consistent (Restore succeeds, hashes verify) and hold at
// least the reads committed before the snapshot started. Run under
// -race in CI.
func TestSnapshotUnderConcurrentReaders(t *testing.T) {
	const numHashes = 32
	s, err := New(Config{NumHashes: numHashes})
	if err != nil {
		t.Fatal(err)
	}
	mkSig := func(i int) minhash.Signature {
		sig := make(minhash.Signature, numHashes)
		for j := range sig {
			sig[j] = uint64(i)*1000003 + uint64(j)
		}
		return sig
	}
	const pre = 150
	for i := 0; i < pre; i++ {
		if _, err := s.Ingest(nil, []string{fmt.Sprintf("pre-%d", i)}, []minhash.Signature{mkSig(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: keeps ingesting new reads during the snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := pre; i < pre+2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Ingest(nil, []string{fmt.Sprintf("live-%d", i)}, []minhash.Signature{mkSig(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: borrowed-row access and translator lookups.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var rows []minhash.Signature
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint32((i + r*131) % pre)
				rows = rows[:0]
				rows, err := s.GetInto(rows, []uint32{id})
				if err != nil {
					t.Error(err)
					return
				}
				if rows[0][0] != uint64(id)*1000003 {
					t.Errorf("row %d content torn", id)
					return
				}
				if _, ok := s.Translator().Lookup(fmt.Sprintf("pre-%d", id)); !ok {
					t.Errorf("key pre-%d vanished", id)
					return
				}
			}
		}(r)
	}

	// Snapshots race with all of the above.
	for k := 0; k < 4; k++ {
		blob := s.Snapshot()
		restored, err := Restore(blob)
		if err != nil {
			t.Fatalf("snapshot %d failed to restore: %v", k, err)
		}
		if restored.Len() < pre {
			t.Fatalf("snapshot %d holds %d reads, want >= %d", k, restored.Len(), pre)
		}
		// Every pre-existing read must be present with intact content.
		rows, err := restored.GetInto(nil, []uint32{0, pre / 2, pre - 1})
		if err != nil {
			t.Fatal(err)
		}
		for n, id := range []int{0, pre / 2, pre - 1} {
			if rows[n][0] != uint64(id)*1000003 {
				t.Fatalf("snapshot %d: read %d corrupted", k, id)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent now: snapshotting twice must be byte-identical (the
	// determinism --resume relies on).
	a, b := s.Snapshot(), s.Snapshot()
	if !bytes.Equal(a, b) {
		t.Fatal("quiescent snapshots differ")
	}
}
