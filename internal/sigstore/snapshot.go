package sigstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Snapshot format (all integers little-endian):
//
//	magic "SIGSNAP1"                    8 bytes
//	numHashes, bits, shardCount         u64 each
//	translator: keyCount u64, then per key: len u64 + raw bytes
//	per shard (shard order): blobLen u64 + blob
//	manifest: per shard a 32-byte SHA-256 of its blob
//	32-byte SHA-256 over everything above
//
// Each shard blob is rowCount u64, dense IDs (u32 each, insertion
// order), an empty-flag bitset ((rows+7)/8 bytes), then the arena words
// (rowCount*stride u64). Shards serialize in shard order and rows in
// insertion order, so a store built by a deterministic ingest — or
// rebuilt by Restore, which replays that order — snapshots to
// byte-identical blobs. The trailing per-shard hash list is the
// content-addressed manifest: Restore re-hashes every blob against it
// (and the whole prefix against the final hash) before trusting a byte,
// so a torn or bit-flipped checkpoint surfaces as a typed corruption
// error instead of silently wrong clusters.

const snapshotMagic = "SIGSNAP1"

// CorruptSnapshotError reports a snapshot whose content hashes do not
// match its manifest.
type CorruptSnapshotError struct {
	Section string // "manifest" or "shard N"
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("sigstore: snapshot corrupt (%s hash mismatch)", e.Section)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// Snapshot serializes the store (signatures and translator) into a
// self-verifying blob.
func (s *Store) Snapshot() []byte {
	out := []byte(snapshotMagic)
	out = appendU64(out, uint64(s.cfg.NumHashes))
	out = appendU64(out, uint64(s.cfg.Bits))
	out = appendU64(out, uint64(s.cfg.Shards))

	s.trans.mu.RLock()
	out = appendU64(out, uint64(len(s.trans.keys)))
	for _, k := range s.trans.keys {
		out = appendU64(out, uint64(len(k)))
		out = append(out, k...)
	}
	s.trans.mu.RUnlock()

	hashes := make([]byte, 0, 32*s.cfg.Shards)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		blob := make([]byte, 0, 8+4*len(sh.ids)+(len(sh.ids)+7)/8+8*len(sh.words))
		blob = appendU64(blob, uint64(len(sh.ids)))
		for _, id := range sh.ids {
			blob = appendU32(blob, id)
		}
		bitset := make([]byte, (len(sh.ids)+7)/8)
		for row, e := range sh.empty {
			if e {
				bitset[row/8] |= 1 << uint(row%8)
			}
		}
		blob = append(blob, bitset...)
		for _, w := range sh.words {
			blob = appendU64(blob, w)
		}
		sh.mu.RUnlock()
		out = appendU64(out, uint64(len(blob)))
		out = append(out, blob...)
		h := sha256.Sum256(blob)
		hashes = append(hashes, h[:]...)
	}
	out = append(out, hashes...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// snapReader walks a snapshot blob with bounds checks.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("sigstore: snapshot truncated at offset %d (+%d)", r.off, n)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *snapReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Restore rebuilds a store from Snapshot bytes, verifying the overall
// hash and every shard's manifest entry first. The rebuilt store
// re-snapshots byte-identically — the property --resume relies on.
func Restore(data []byte) (*Store, error) {
	if len(data) < len(snapshotMagic)+32 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("sigstore: not a signature-store snapshot")
	}
	body, tail := data[:len(data)-32], data[len(data)-32:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, &CorruptSnapshotError{Section: "manifest"}
	}
	r := &snapReader{b: body, off: len(snapshotMagic)}
	numHashes, err := r.u64()
	if err != nil {
		return nil, err
	}
	bits, err := r.u64()
	if err != nil {
		return nil, err
	}
	shards, err := r.u64()
	if err != nil {
		return nil, err
	}
	s, err := New(Config{NumHashes: int(numHashes), Bits: int(bits), Shards: int(shards)})
	if err != nil {
		return nil, err
	}

	keyCount, err := r.u64()
	if err != nil {
		return nil, err
	}
	if keyCount > uint64(len(body)) { // cheap sanity bound before allocating
		return nil, fmt.Errorf("sigstore: snapshot claims %d keys in %d bytes", keyCount, len(body))
	}
	keys := make([]string, keyCount)
	for i := range keys {
		klen, err := r.u64()
		if err != nil {
			return nil, err
		}
		kb, err := r.take(int(klen))
		if err != nil {
			return nil, err
		}
		keys[i] = string(kb)
	}
	if err := s.trans.restoreKeys(keys); err != nil {
		return nil, err
	}

	blobs := make([][]byte, s.cfg.Shards)
	for i := range blobs {
		blobLen, err := r.u64()
		if err != nil {
			return nil, err
		}
		blob, err := r.take(int(blobLen))
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	for i, blob := range blobs {
		want, err := r.take(32)
		if err != nil {
			return nil, err
		}
		if got := sha256.Sum256(blob); !bytes.Equal(got[:], want) {
			return nil, &CorruptSnapshotError{Section: fmt.Sprintf("shard %d", i)}
		}
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("sigstore: %d trailing snapshot bytes", len(body)-r.off)
	}

	for i, blob := range blobs {
		if err := s.shards[i].restore(blob, s.stride); err != nil {
			return nil, fmt.Errorf("sigstore: shard %d: %w", i, err)
		}
		s.count.Add(int64(len(s.shards[i].ids)))
	}
	return s, nil
}

// restore fills one shard from its snapshot blob.
func (sh *storeShard) restore(blob []byte, stride int) error {
	r := &snapReader{b: blob}
	rows64, err := r.u64()
	if err != nil {
		return err
	}
	rows := int(rows64)
	idBytes, err := r.take(4 * rows)
	if err != nil {
		return err
	}
	bitset, err := r.take((rows + 7) / 8)
	if err != nil {
		return err
	}
	wordBytes, err := r.take(8 * rows * stride)
	if err != nil {
		return err
	}
	if r.off != len(blob) {
		return fmt.Errorf("%d trailing bytes", len(blob)-r.off)
	}
	sh.ids = make([]uint32, rows)
	sh.empty = make([]bool, rows)
	sh.words = make([]uint64, rows*stride)
	sh.pos = make(map[uint32]int32, rows)
	for i := range sh.ids {
		id := binary.LittleEndian.Uint32(idBytes[4*i:])
		if _, dup := sh.pos[id]; dup {
			return fmt.Errorf("duplicate id %d", id)
		}
		sh.ids[i] = id
		sh.pos[id] = int32(i)
		sh.empty[i] = bitset[i/8]&(1<<uint(i%8)) != 0
	}
	for i := range sh.words {
		sh.words[i] = binary.LittleEndian.Uint64(wordBytes[8*i:])
	}
	return nil
}
