// Package sigstore holds a corpus of minwise signatures resident in
// memory: a concurrent store sharded by read-ID hash, keeping either full
// 64-bit signatures or b-bit packed sketches (Li & König) in contiguous
// per-shard arenas that the clustering kernels borrow from without
// copying. A Translator maps external string read IDs onto the dense
// uint32 IDs that index the arenas, and the whole store snapshots to a
// content-addressed byte blob that rides through internal/checkpoint for
// bit-identical --resume. This is the storage layer that lets a single
// process keep millions of reads sketchable in RAM (paper §II's
// terabyte-scale collections): at n=100 hashes a full signature is 800
// bytes per read, while b=4 packing stores the same corpus at 56 bytes
// per read.
package sigstore

import (
	"fmt"
	"sync"
)

// translatorShardCount is the fixed fan-out of the Translator's key maps.
// Key lookup takes one shard RLock; dense-ID allocation additionally
// takes the global keys lock, so unrelated keys only contend on the
// (short) allocation append.
const translatorShardCount = 64

// Translator maps external string read IDs to dense uint32 IDs and back —
// the key-translation idiom of columnar ingest frameworks (cf. pdk's
// Translator): dense IDs index arenas and bitmaps directly, so nothing
// downstream of ingest ever touches the string key space. Lookups shard
// by FNV-1a of the key; dense IDs are allocated by a global append so
// they stay compact (0..Len-1).
type Translator struct {
	mu     sync.RWMutex // guards keys
	keys   []string     // dense id -> key, in allocation order
	shards [translatorShardCount]translatorShard
}

type translatorShard struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

// NewTranslator returns an empty translator.
func NewTranslator() *Translator {
	t := &Translator{}
	for i := range t.shards {
		t.shards[i].ids = make(map[string]uint32)
	}
	return t
}

// fnv1a32 is the 32-bit FNV-1a hash of s, the shard selector for keys.
func fnv1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func (t *Translator) shardFor(key string) *translatorShard {
	return &t.shards[fnv1a32(key)%translatorShardCount]
}

// Translate returns the dense ID for key, allocating the next free ID on
// first sight. Concurrent translates of distinct keys may interleave
// allocation order; single-goroutine batch ingest (the pipeline) gets
// IDs in call order.
func (t *Translator) Translate(key string) uint32 {
	sh := t.shardFor(key)
	sh.mu.RLock()
	id, ok := sh.ids[key]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[key]; ok { // lost the race to another writer
		return id
	}
	t.mu.Lock()
	id = uint32(len(t.keys))
	t.keys = append(t.keys, key)
	t.mu.Unlock()
	sh.ids[key] = id
	return id
}

// TranslateBatch translates keys into dst (reused when it has capacity)
// and returns the dense IDs in key order.
func (t *Translator) TranslateBatch(dst []uint32, keys []string) []uint32 {
	if cap(dst) < len(keys) {
		dst = make([]uint32, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = t.Translate(k)
	}
	return dst
}

// Lookup returns the dense ID for key without allocating one.
func (t *Translator) Lookup(key string) (uint32, bool) {
	sh := t.shardFor(key)
	sh.mu.RLock()
	id, ok := sh.ids[key]
	sh.mu.RUnlock()
	return id, ok
}

// Key returns the external key for a dense ID.
func (t *Translator) Key(id uint32) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.keys) {
		return "", false
	}
	return t.keys[id], true
}

// Len returns the number of allocated dense IDs.
func (t *Translator) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.keys)
}

// restoreKeys rebuilds the translator from a snapshot's dense key list.
func (t *Translator) restoreKeys(keys []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.keys) != 0 {
		return fmt.Errorf("sigstore: restore into non-empty translator")
	}
	t.keys = keys
	for i, k := range keys {
		sh := t.shardFor(k)
		if _, dup := sh.ids[k]; dup {
			return fmt.Errorf("sigstore: duplicate key %q in snapshot", k)
		}
		sh.ids[k] = uint32(i)
	}
	return nil
}
