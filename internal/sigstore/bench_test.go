package sigstore

import (
	"fmt"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// The sigstore benchmarks feed BENCH_sigstore.json: put throughput and
// borrowed-view similarity/band-hash latency for full vs b-bit packed
// storage, each reporting resident sig-bytes/read — the metric behind
// the >=8x compression acceptance bar (b=4 at n=100: 56 vs 800).

const benchHashes = 100

func benchStore(b *testing.B, bits, n int) (*Store, []minhash.Signature) {
	b.Helper()
	sigs := randSigs(b, n, benchHashes, 13, 42)
	s, err := New(Config{NumHashes: benchHashes, Bits: bits})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.PutBatch(0, sigs); err != nil {
		b.Fatal(err)
	}
	return s, sigs
}

func BenchmarkSigStorePut(b *testing.B) {
	for _, bits := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("b%d", bits), func(b *testing.B) {
			const n = 4096
			sigs := randSigs(b, n, benchHashes, 13, 42)
			s, err := New(Config{NumHashes: benchHashes, Bits: bits})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(uint32(i%n), sigs[i%n]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(s.ResidentBytes())/float64(s.Len()), "sig-bytes/read")
		})
	}
}

func BenchmarkSigStoreViewSimilarity(b *testing.B) {
	for _, bits := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("b%d", bits), func(b *testing.B) {
			const n = 1024
			s, _ := benchStore(b, bits, n)
			v, err := s.View(minhash.SetOverlap)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += v.Similarity(i%n, (i*7+1)%n)
			}
			b.StopTimer()
			_ = sink
			b.ReportMetric(float64(s.ResidentBytes())/float64(s.Len()), "sig-bytes/read")
		})
	}
}

func BenchmarkSigStoreViewBandHash(b *testing.B) {
	for _, bits := range []int{0, 4} {
		b.Run(fmt.Sprintf("b%d", bits), func(b *testing.B) {
			const n = 1024
			s, _ := benchStore(b, bits, n)
			v, err := s.View(minhash.SetOverlap)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= v.BandHash(i%n, i%20, 5)
			}
			b.StopTimer()
			_ = sink
		})
	}
}

func BenchmarkSigStoreSnapshot(b *testing.B) {
	for _, bits := range []int{0, 4} {
		b.Run(fmt.Sprintf("b%d", bits), func(b *testing.B) {
			s, _ := benchStore(b, bits, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := s.Snapshot()
				if i == 0 {
					b.SetBytes(int64(len(snap)))
				}
			}
		})
	}
}
