package sigstore

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// View is an index-aligned, read-only projection of a store whose dense
// IDs are contiguous (0..Len-1 — the pipeline's ingest order): element i
// of the view is dense ID i. Construction materializes borrowed row
// views (and, for full stores, the Prepared caches the zero-alloc
// kernels need) exactly once, so the O(N²) pair loops downstream index
// plain slices with no locking and no per-pair allocation.
//
// A View satisfies cluster.SigSource. It assumes the store is quiescent:
// ingest finishes before clustering begins, which is the pipeline's
// stage order. For a full store, Similarity returns floats bit-identical
// to the slice-backed Estimator.SimilarityPrepared path; for a packed
// store it applies the b-bit collision-corrected estimator over the
// packed words.
type View struct {
	est       minhash.Estimator
	bits      int
	numHashes int
	// Full storage:
	sigs []minhash.Signature
	prep []minhash.Prepared
	// Packed storage:
	packed []minhash.BBitSignature
}

// View builds a projection over dense IDs 0..Len-1. It errors if any ID
// in that range is missing (sparse ID spaces have no index alignment).
func (s *Store) View(est minhash.Estimator) (*View, error) {
	n := s.Len()
	v := &View{est: est, bits: s.cfg.Bits, numHashes: s.cfg.NumHashes}
	if s.cfg.Bits == 0 {
		v.sigs = make([]minhash.Signature, n)
	} else {
		v.packed = make([]minhash.BBitSignature, n)
	}
	seen := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for row, id := range sh.ids {
			if int(id) >= n {
				sh.mu.RUnlock()
				return nil, fmt.Errorf("sigstore: view needs dense IDs 0..%d, found %d", n-1, id)
			}
			w := sh.words[row*s.stride : (row+1)*s.stride : (row+1)*s.stride]
			if s.cfg.Bits == 0 {
				v.sigs[id] = minhash.Signature(w)
			} else {
				v.packed[id] = minhash.Borrow(s.cfg.Bits, s.cfg.NumHashes, w, sh.empty[row])
			}
			seen++
		}
		sh.mu.RUnlock()
	}
	if seen != n {
		return nil, fmt.Errorf("sigstore: view saw %d rows for %d IDs", seen, n)
	}
	if s.cfg.Bits == 0 {
		v.prep = minhash.PrepareAll(v.sigs)
	}
	return v, nil
}

// Len returns the number of signatures in the view.
func (v *View) Len() int {
	if v.bits == 0 {
		return len(v.sigs)
	}
	return len(v.packed)
}

// NumHashes returns the signature length n.
func (v *View) NumHashes() int { return v.numHashes }

// Empty reports whether signature i came from an empty feature set.
func (v *View) Empty(i int) bool {
	if v.bits == 0 {
		return v.sigs[i].Empty()
	}
	return v.packed[i].Empty()
}

// Similarity estimates the Jaccard similarity of signatures i and j.
func (v *View) Similarity(i, j int) float64 {
	if v.bits == 0 {
		return v.est.SimilarityPrepared(v.prep[i], v.prep[j])
	}
	return v.packed[i].SimilarityFast(v.packed[j])
}

// BandHash returns the LSH band hash of signature i.
func (v *View) BandHash(i, band, rows int) uint64 {
	if v.bits == 0 {
		return minhash.BandHash(v.sigs[i], band, rows)
	}
	return v.packed[i].BandHash(band, rows)
}

// Sig returns the borrowed full signature for i (nil on packed views) —
// the payload the pipeline's shuffle emits without copying.
func (v *View) Sig(i int) minhash.Signature {
	if v.bits == 0 {
		return v.sigs[i]
	}
	return nil
}

// PackedSig returns the borrowed packed signature for i (zero value on
// full views).
func (v *View) PackedSig(i int) minhash.BBitSignature {
	if v.bits != 0 {
		return v.packed[i]
	}
	return minhash.BBitSignature{}
}

// Prepared returns the cached Prepared view for i (full views only; the
// zero value on packed views).
func (v *View) Prepared(i int) minhash.Prepared {
	if v.bits == 0 {
		return v.prep[i]
	}
	return minhash.Prepared{}
}
