// Package taxonomy assigns taxonomic labels to reads or cluster-consensus
// sequences against a labelled reference collection — the "taxonomic
// annotation" step that follows binning (cf. MetaCluster, which the paper
// benchmarks against). Queries are scored by k-mer *containment*
// (|query ∩ reference| / |query|, the Kraken/CLARK-style statistic) rather
// than Jaccard: a short fragment of a long genome has near-total
// containment but negligible Jaccard, so containment is the right match
// score for read-vs-genome comparisons. Ambiguous hits back off to the
// lowest common ancestor of the near-best references.
package taxonomy

import (
	"fmt"
	"sort"

	"github.com/metagenomics/mrmcminh/internal/kmer"
)

// Lineage is an ordered taxonomy path, coarsest first
// (e.g. ["Bacteria", "Proteobacteria", ..., "Escherichia coli"]).
type Lineage []string

// LCA returns the shared prefix of two lineages.
func (l Lineage) LCA(other Lineage) Lineage {
	n := len(l)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && l[i] == other[i] {
		i++
	}
	return l[:i]
}

// String renders the lineage as a semicolon path.
func (l Lineage) String() string {
	out := ""
	for i, r := range l {
		if i > 0 {
			out += ";"
		}
		out += r
	}
	return out
}

// Options tunes the classifier.
type Options struct {
	// K is the k-mer size of the reference index.
	K int
	// MinContainment is the floor below which a query is Unclassified.
	MinContainment float64
	// AmbiguityBand: references scoring within this fraction of the best
	// hit are considered co-optimal and trigger LCA backoff.
	AmbiguityBand float64
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 12
	}
	if o.MinContainment == 0 {
		o.MinContainment = 0.3
	}
	if o.AmbiguityBand == 0 {
		o.AmbiguityBand = 0.1
	}
	return o
}

// Classifier matches query sequences against a reference k-mer index.
type Classifier struct {
	opt      Options
	ex       *kmer.Extractor
	names    []string
	lineages []Lineage
	sets     []kmer.Set
}

// NewClassifier builds an empty classifier.
func NewClassifier(opt Options) (*Classifier, error) {
	opt = opt.withDefaults()
	if opt.K < 1 || opt.K > kmer.MaxK {
		return nil, fmt.Errorf("taxonomy: k=%d out of range", opt.K)
	}
	if opt.MinContainment < 0 || opt.MinContainment > 1 {
		return nil, fmt.Errorf("taxonomy: MinContainment %v out of [0,1]", opt.MinContainment)
	}
	if opt.AmbiguityBand < 0 || opt.AmbiguityBand > 1 {
		return nil, fmt.Errorf("taxonomy: AmbiguityBand %v out of [0,1]", opt.AmbiguityBand)
	}
	return &Classifier{
		opt: opt,
		ex:  &kmer.Extractor{K: opt.K, Canonical: true},
	}, nil
}

// AddReference registers one labelled reference genome or marker gene.
func (c *Classifier) AddReference(name string, lineage Lineage, seq []byte) error {
	if name == "" {
		return fmt.Errorf("taxonomy: reference needs a name")
	}
	if len(lineage) == 0 {
		return fmt.Errorf("taxonomy: reference %q needs a lineage", name)
	}
	set := c.ex.Set(seq)
	if set.Len() == 0 {
		return fmt.Errorf("taxonomy: reference %q has no usable k-mers", name)
	}
	c.names = append(c.names, name)
	c.lineages = append(c.lineages, lineage)
	c.sets = append(c.sets, set)
	return nil
}

// NumReferences returns the registered reference count.
func (c *Classifier) NumReferences() int { return len(c.names) }

// Assignment is one classification outcome.
type Assignment struct {
	// Classified is false when no reference reached MinContainment.
	Classified bool
	// Reference is the best-hit name (empty after LCA backoff).
	Reference string
	// Lineage is the assigned path — full for an unambiguous hit, the LCA
	// prefix when several references tie.
	Lineage Lineage
	// Containment is the best hit's |query ∩ ref| / |query|.
	Containment float64
	// Ambiguous reports that LCA backoff occurred.
	Ambiguous bool
}

// Classify assigns one query sequence.
func (c *Classifier) Classify(seq []byte) (Assignment, error) {
	if len(c.sets) == 0 {
		return Assignment{}, fmt.Errorf("taxonomy: classifier has no references")
	}
	q := c.ex.Set(seq)
	if q.Len() == 0 {
		return Assignment{}, nil
	}
	type hit struct {
		idx  int
		cont float64
	}
	hits := make([]hit, 0, len(c.sets))
	for i, ref := range c.sets {
		shared := 0
		for km := range q {
			if ref.Contains(km) {
				shared++
			}
		}
		hits = append(hits, hit{idx: i, cont: float64(shared) / float64(q.Len())})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].cont > hits[b].cont })
	best := hits[0]
	if best.cont < c.opt.MinContainment {
		return Assignment{Containment: best.cont}, nil
	}
	// Collect co-optimal references.
	floor := best.cont * (1 - c.opt.AmbiguityBand)
	lca := c.lineages[best.idx]
	ambiguous := false
	for _, h := range hits[1:] {
		if h.cont < floor {
			break
		}
		shared := lca.LCA(c.lineages[h.idx])
		if len(shared) < len(lca) {
			lca = shared
			ambiguous = true
		}
	}
	a := Assignment{
		Classified:  true,
		Lineage:     lca,
		Containment: best.cont,
		Ambiguous:   ambiguous,
	}
	if !ambiguous {
		a.Reference = c.names[best.idx]
	}
	return a, nil
}

// ClassifyAll assigns a batch of sequences keyed by an integer id (e.g.
// cluster consensus sequences keyed by cluster label).
func (c *Classifier) ClassifyAll(seqs map[int][]byte) (map[int]Assignment, error) {
	out := make(map[int]Assignment, len(seqs))
	ids := make([]int, 0, len(seqs))
	for id := range seqs {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic error order
	for _, id := range ids {
		a, err := c.Classify(seqs[id])
		if err != nil {
			return nil, err
		}
		out[id] = a
	}
	return out, nil
}
