package taxonomy

import (
	"testing"

	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// buildRefs makes two related genomes (same genus) and one distant one,
// returning the classifier and genomes.
func buildRefs(t *testing.T) (*Classifier, []*simulate.Genome) {
	t.Helper()
	c, err := NewClassifier(Options{K: 12})
	if err != nil {
		t.Fatal(err)
	}
	coli, err := simulate.GenerateGenome("E. coli", 20000, 0.51, 10)
	if err != nil {
		t.Fatal(err)
	}
	ferg, err := simulate.DeriveRelative(coli, "E. fergusonii", simulate.RankSpecies.Divergence(), 11)
	if err != nil {
		t.Fatal(err)
	}
	bacillus, err := simulate.GenerateGenome("B. subtilis", 20000, 0.44, 12)
	if err != nil {
		t.Fatal(err)
	}
	refs := []*simulate.Genome{coli, ferg, bacillus}
	lineages := []Lineage{
		{"Bacteria", "Proteobacteria", "Enterobacteriaceae", "Escherichia", "Escherichia coli"},
		{"Bacteria", "Proteobacteria", "Enterobacteriaceae", "Escherichia", "Escherichia fergusonii"},
		{"Bacteria", "Firmicutes", "Bacillaceae", "Bacillus", "Bacillus subtilis"},
	}
	for i, g := range refs {
		if err := c.AddReference(g.Name, lineages[i], g.Seq); err != nil {
			t.Fatal(err)
		}
	}
	return c, refs
}

func TestClassifyExactFragment(t *testing.T) {
	c, refs := buildRefs(t)
	a, err := c.Classify(refs[2].Seq[3000:4000])
	if err != nil {
		t.Fatal(err)
	}
	if !a.Classified || a.Ambiguous {
		t.Fatalf("assignment %+v", a)
	}
	if a.Reference != "B. subtilis" {
		t.Fatalf("assigned %q", a.Reference)
	}
	if a.Lineage[len(a.Lineage)-1] != "Bacillus subtilis" {
		t.Fatalf("lineage %v", a.Lineage)
	}
}

func TestClassifyAmbiguousBacksOffToLCA(t *testing.T) {
	c, refs := buildRefs(t)
	// A fragment of the shared ancestor region: both Escherichia refs
	// score nearly identically (2% divergence), forcing LCA backoff to
	// the genus.
	a, err := c.Classify(refs[0].Seq[5000:6000])
	if err != nil {
		t.Fatal(err)
	}
	if !a.Classified {
		t.Fatalf("assignment %+v", a)
	}
	if !a.Ambiguous {
		// Depending on sketch noise the species may separate; accept a
		// confident species hit but require the genus to be right.
		if a.Lineage[3] != "Escherichia" {
			t.Fatalf("lineage %v", a.Lineage)
		}
		return
	}
	if got := a.Lineage.String(); got != "Bacteria;Proteobacteria;Enterobacteriaceae;Escherichia" {
		t.Fatalf("LCA %q", got)
	}
	if a.Reference != "" {
		t.Fatalf("ambiguous hit kept reference %q", a.Reference)
	}
}

func TestClassifyUnrelatedIsUnclassified(t *testing.T) {
	c, _ := buildRefs(t)
	random, err := simulate.GenerateGenome("novel organism", 1000, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Classify(random.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classified {
		t.Fatalf("random sequence classified as %+v", a)
	}
}

func TestClassifyEmptyQuery(t *testing.T) {
	c, _ := buildRefs(t)
	a, err := c.Classify([]byte("NNNNN"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Classified {
		t.Fatalf("empty feature set classified: %+v", a)
	}
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(Options{K: 99}); err == nil {
		t.Error("bad k accepted")
	}
	if _, err := NewClassifier(Options{MinContainment: 2}); err == nil {
		t.Error("bad MinContainment accepted")
	}
	if _, err := NewClassifier(Options{AmbiguityBand: -1}); err == nil {
		t.Error("bad AmbiguityBand accepted")
	}
	c, err := NewClassifier(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddReference("", Lineage{"x"}, []byte("ACGTACGTACGTACGT")); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.AddReference("x", nil, []byte("ACGTACGTACGTACGT")); err == nil {
		t.Error("empty lineage accepted")
	}
	if err := c.AddReference("x", Lineage{"a"}, []byte("NN")); err == nil {
		t.Error("featureless reference accepted")
	}
	if _, err := c.Classify([]byte("ACGT")); err == nil {
		t.Error("classification without references accepted")
	}
}

func TestClassifyAll(t *testing.T) {
	c, refs := buildRefs(t)
	queries := map[int][]byte{
		0: refs[0].Seq[100:900],
		1: refs[2].Seq[100:900],
	}
	out, err := c.ClassifyAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d assignments", len(out))
	}
	if !out[1].Classified || out[1].Lineage[1] != "Firmicutes" {
		t.Fatalf("cluster 1 assignment %+v", out[1])
	}
	if c.NumReferences() != 3 {
		t.Fatalf("refs %d", c.NumReferences())
	}
}

func TestLineageLCA(t *testing.T) {
	a := Lineage{"k", "p", "c", "s1"}
	b := Lineage{"k", "p", "d", "s2"}
	if got := a.LCA(b).String(); got != "k;p" {
		t.Fatalf("LCA %q", got)
	}
	if got := a.LCA(a).String(); got != "k;p;c;s1" {
		t.Fatalf("self LCA %q", got)
	}
	if got := a.LCA(Lineage{"x"}).String(); got != "" {
		t.Fatalf("disjoint LCA %q", got)
	}
}
