package baselines

import (
	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// Dotur reimplements DOTUR's core (Schloss & Handelsman 2005): an exact
// all-pairs *alignment* distance matrix followed by hierarchical
// clustering — the method's defining cost, and why the paper's Table V
// shows it thousands of times slower than sketch-based approaches. DOTUR's
// default OTU definition is furthest neighbor (complete linkage).
type Dotur struct{}

// Name implements Method.
func (Dotur) Name() string { return "DOTUR" }

// Cluster implements Method.
func (Dotur) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	return alignmentMatrixClustering(reads, opt, cluster.Complete, false)
}

// Mothur reimplements the clustering path of mothur (Schloss et al. 2009),
// DOTUR's successor: the same all-pairs alignment distance matrix and
// hierarchical clustering, with average linkage as the modern default and
// a heavier distance pipeline (mothur computes full rather than banded
// alignments).
type Mothur struct{}

// Name implements Method.
func (Mothur) Name() string { return "Mothur" }

// Cluster implements Method.
func (Mothur) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	return alignmentMatrixClustering(reads, opt, cluster.Average, true)
}

// alignmentMatrixClustering is the shared DOTUR/mothur skeleton. The
// all-pairs alignment matrix — the methods' defining cost — is built
// with the tiled parallel kernel over all cores (alignments of distinct
// pairs are independent).
func alignmentMatrixClustering(reads []fasta.Record, opt Options, link cluster.Linkage, fullAlignment bool) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	m := cluster.BuildMatrixParallelFunc(len(reads), 0, func(i, j int) float64 {
		var res align.Result
		if fullAlignment {
			res = align.Global(reads[i].Seq, reads[j].Seq, align.DefaultScoring)
		} else {
			res = align.GlobalBanded(reads[i].Seq, reads[j].Seq, align.DefaultScoring, bandFor(opt.Threshold, len(reads[i].Seq)))
		}
		return res.Identity()
	})
	dend, err := cluster.Hierarchical(m, cluster.HierarchicalOptions{Linkage: link})
	if err != nil {
		return nil, err
	}
	return dend.CutAt(opt.Threshold), nil
}
