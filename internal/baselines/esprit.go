package baselines

import (
	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// Esprit reimplements ESPRIT's core (Sun et al. 2009): the k-mer ("word")
// distance screens every sequence pair cheaply; only pairs passing the
// screen get a (banded) global alignment, and complete-linkage
// hierarchical clustering runs on the alignment similarities. Screened-out
// pairs keep similarity 0, which is what makes ESPRIT an order of
// magnitude faster than DOTUR/Mothur while clustering nearly as well.
type Esprit struct{}

// Name implements Method.
func (Esprit) Name() string { return "ESPRIT" }

// espritPruneSlack is the heuristic pruning margin: pairs with word
// distance beyond (1-threshold) + slack are treated as unrelated and never
// considered for merging (their similarity stays 0).
const espritPruneSlack = 0.25

// Cluster implements Method.
func (Esprit) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	w := opt.WordSize
	if w == 0 {
		w = 6 // ESPRIT's default word size
	}
	n := len(reads)
	e := kmer.MustExtractor(w)
	counters := make([]*kmer.Counter, n)
	for i := range reads {
		counters[i] = kmer.NewCounter(w)
		counters[i].Observe(reads[i].Seq, e)
	}
	limit := (1 - opt.Threshold) + espritPruneSlack
	// Screen + align per pair, fanned out over all cores by the tiled
	// parallel matrix builder (counters are read-only here).
	m := cluster.BuildMatrixParallelFunc(n, 0, func(i, j int) float64 {
		d := kmer.WordDistance(counters[i], counters[j], len(reads[i].Seq), len(reads[j].Seq))
		if d > limit {
			return 0 // screened out: unrelated
		}
		res := align.GlobalBanded(reads[i].Seq, reads[j].Seq, align.DefaultScoring, bandFor(opt.Threshold, len(reads[i].Seq)))
		return res.Identity()
	})
	dend, err := cluster.Hierarchical(m, cluster.HierarchicalOptions{Linkage: cluster.Complete})
	if err != nil {
		return nil, err
	}
	return dend.CutAt(opt.Threshold), nil
}
