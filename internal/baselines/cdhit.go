package baselines

import (
	"sort"

	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// CDHit reimplements CD-HIT's core (Li & Godzik 2006): sort sequences by
// length descending; the first sequence seeds a cluster; each subsequent
// sequence is compared against existing cluster representatives using a
// short-word count filter — if the shared-word count cannot reach the
// identity threshold the expensive alignment is skipped — and joins the
// first representative whose banded global alignment identity reaches the
// threshold, else seeds a new cluster.
type CDHit struct{}

// Name implements Method.
func (CDHit) Name() string { return "CD-HIT" }

// Cluster implements Method.
func (CDHit) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	w := opt.WordSize
	if w == 0 {
		w = 5 // CD-HIT's default word size for DNA at high identity
	}
	n := len(reads)
	assign := freshClustering(n)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(reads[order[a]].Seq) > len(reads[order[b]].Seq)
	})

	e := kmer.MustExtractor(w)
	counters := make([]*kmer.Counter, n)
	counter := func(i int) *kmer.Counter {
		if counters[i] == nil {
			c := kmer.NewCounter(w)
			c.Observe(reads[i].Seq, e)
			counters[i] = c
		}
		return counters[i]
	}

	var reps []int
	next := 0
	for _, i := range order {
		placed := false
		for _, rep := range reps {
			if !wordFilterPass(counter(i), counter(rep), len(reads[i].Seq), len(reads[rep].Seq), w, opt.Threshold) {
				continue
			}
			res := align.GlobalBanded(reads[i].Seq, reads[rep].Seq, align.DefaultScoring, bandFor(opt.Threshold, len(reads[i].Seq)))
			if res.Identity() >= opt.Threshold {
				assign[i] = assign[rep]
				placed = true
				break
			}
		}
		if !placed {
			assign[i] = next
			next++
			reps = append(reps, i)
		}
	}
	return assign, nil
}

// wordFilterPass is CD-HIT's short-word filter: two sequences at identity
// >= t over the shorter length L share at least L - k*(1-t)*L*k words
// approximately; we use the standard bound shared >= L-w+1 - (1-t)*L*w.
func wordFilterPass(a, b *kmer.Counter, lenA, lenB, w int, t float64) bool {
	shorter := lenA
	if lenB < shorter {
		shorter = lenB
	}
	words := shorter - w + 1
	if words <= 0 {
		return true // too short to filter; let the alignment decide
	}
	required := float64(words) - (1-t)*float64(shorter)*float64(w)
	if required <= 0 {
		return true
	}
	shared := sharedWordCount(a, b)
	return float64(shared) >= required
}

// sharedWordCount sums min occurrence counts over common words.
func sharedWordCount(a, b *kmer.Counter) int {
	// WordDistance already computes the shared count internally; recompute
	// here to avoid exposing internals: d = 1 - shared/(minLen - k + 1).
	// Instead we exploit Counter's public surface.
	shared := 0
	small, large := a, b
	if small.Distinct() > large.Distinct() {
		small, large = large, small
	}
	for _, w := range smallWords(small) {
		ca, cb := small.Count(w), large.Count(w)
		if cb < ca {
			shared += cb
		} else {
			shared += ca
		}
	}
	return shared
}

// smallWords lists the distinct words of a counter.
func smallWords(c *kmer.Counter) []uint64 {
	out := make([]uint64, 0, c.Distinct())
	c.Each(func(w uint64, _ int) { out = append(out, w) })
	return out
}

// bandFor sizes the alignment band from the identity threshold: at
// identity t a pair has at most (1-t)*L indels, so a band slightly wider
// is safe and much faster.
func bandFor(t float64, length int) int {
	band := int((1-t)*float64(length)) + 8
	if band < 8 {
		band = 8
	}
	return band
}
