package baselines

import (
	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// UClust reimplements USEARCH/UCLUST's core (Edgar 2010): process
// sequences in input order; for each sequence rank the existing cluster
// representatives by shared-k-mer count ("U-sort"), align against the top
// candidates only, and join the first representative reaching the identity
// threshold ("first acceptable hit", not best hit); otherwise become a new
// representative.
type UClust struct{}

// Name implements Method.
func (UClust) Name() string { return "UCLUST" }

// maxAccepts/maxRejects follow USEARCH defaults (1 accept, 8 rejects).
const (
	uclustMaxRejects = 8
)

// Cluster implements Method.
func (UClust) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	w := opt.WordSize
	if w == 0 {
		w = 8 // USEARCH default word length for nucleotides
	}
	n := len(reads)
	assign := freshClustering(n)
	sets := kmerSets(reads, w)

	var reps []int
	next := 0
	for i := 0; i < n; i++ {
		// Rank reps by shared-word count (descending).
		var cands []cand
		for _, rep := range reps {
			s := sharedSetCount(sets[i], sets[rep])
			if s > 0 {
				cands = append(cands, cand{rep: rep, shared: s})
			}
		}
		sortCands(cands)
		placed := false
		rejects := 0
		for _, c := range cands {
			res := align.GlobalBanded(reads[i].Seq, reads[c.rep].Seq, align.DefaultScoring, bandFor(opt.Threshold, len(reads[i].Seq)))
			if res.Identity() >= opt.Threshold {
				assign[i] = assign[c.rep]
				placed = true
				break
			}
			rejects++
			if rejects >= uclustMaxRejects {
				break
			}
		}
		if !placed {
			assign[i] = next
			next++
			reps = append(reps, i)
		}
	}
	return assign, nil
}

// sharedSetCount counts common distinct words.
func sharedSetCount(a, b kmer.Set) int {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	n := 0
	for w := range small {
		if large.Contains(w) {
			n++
		}
	}
	return n
}

// cand is a ranked representative candidate.
type cand struct {
	rep    int
	shared int
}

// sortCands orders candidates by shared count descending, rep ascending
// for determinism (insertion sort; candidate lists are short).
func sortCands(cands []cand) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.shared > a.shared || (b.shared == a.shared && b.rep < a.rep) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
}
