package baselines

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// testSample builds a small whole-metagenome-like sample with well
// separated groups (order-level divergence) for recovery tests.
func testSample(t *testing.T, groups, perGroup, readLen int, seed int64) ([]fasta.Record, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base, err := simulate.GenerateGenome("g0", 20*readLen, 0.35+0.3*rng.Float64(), seed)
	if err != nil {
		t.Fatal(err)
	}
	genomes := []*simulate.Genome{base}
	for gi := 1; gi < groups; gi++ {
		g, err := simulate.GenerateGenome(fmt.Sprintf("g%d", gi), 20*readLen, 0.35+0.3*rng.Float64(), seed+int64(gi))
		if err != nil {
			t.Fatal(err)
		}
		genomes = append(genomes, g)
	}
	weights := make([]float64, groups)
	for i := range weights {
		weights[i] = 1
	}
	comm, err := simulate.NewCommunity(genomes, weights)
	if err != nil {
		t.Fatal(err)
	}
	reads, truth, err := comm.Reads(simulate.ReadOptions{
		Count: groups * perGroup, Length: readLen, Jitter: readLen / 20,
		ErrorRate: 0.005, Seed: seed + 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reads, truth
}

// amplicon16S builds a small 16S-style sample: near-identical reads per
// taxon (alignment identity within taxon >> across taxa).
func amplicon16S(t *testing.T, taxa, per int, errRate float64, seed int64) ([]fasta.Record, []string) {
	t.Helper()
	reads, truth, err := simulate.Amplicons(simulate.AmpliconOptions{
		Taxa: taxa, ReadsPerTaxon: per, ReadLength: 80, ErrorRate: errRate, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reads, truth
}

func accuracyOf(t *testing.T, c metrics.Clustering, truth []string) float64 {
	t.Helper()
	acc, err := metrics.WeightedAccuracy(c, truth)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestAllMethodsListed(t *testing.T) {
	methods := All()
	if len(methods) != 7 {
		t.Fatalf("got %d methods, want 7", len(methods))
	}
	names := map[string]bool{}
	for _, m := range methods {
		names[m.Name()] = true
	}
	for _, want := range []string{"CD-HIT", "UCLUST", "ESPRIT", "DOTUR", "Mothur", "MC-LSH", "MetaCluster"} {
		if !names[want] {
			t.Errorf("method %s missing", want)
		}
	}
	if _, err := ByName("UCLUST"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	for _, m := range All() {
		if _, err := m.Cluster(nil, Options{Threshold: -1}); err == nil {
			t.Errorf("%s accepted bad threshold", m.Name())
		}
	}
	if err := (Options{Threshold: 0.5, WordSize: 99}).Validate(); err == nil {
		t.Error("bad word size accepted")
	}
}

func TestAllMethodsAssignEveryRead(t *testing.T) {
	reads, _ := amplicon16S(t, 5, 8, 0.01, 1)
	for _, m := range All() {
		c, err := m.Cluster(reads, Options{Threshold: 0.9, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(c) != len(reads) {
			t.Fatalf("%s: %d assignments for %d reads", m.Name(), len(c), len(reads))
		}
		for i, l := range c {
			if l < 0 {
				t.Fatalf("%s: read %d unassigned", m.Name(), i)
			}
		}
	}
}

func TestAlignmentBasedMethodsRecoverTaxa(t *testing.T) {
	reads, truth := amplicon16S(t, 6, 10, 0.01, 2)
	for _, m := range []Method{CDHit{}, UClust{}, Dotur{}, Mothur{}, Esprit{}} {
		c, err := m.Cluster(reads, Options{Threshold: 0.9, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if acc := accuracyOf(t, c, truth); acc < 95 {
			t.Errorf("%s: accuracy %.1f", m.Name(), acc)
		}
		nc := c.NumClusters()
		// ESPRIT's word distance over-estimates alignment distance, so it
		// over-clusters heavily (paper Table IV: 180 clusters for 43 taxa).
		limit := 18
		if m.Name() == "ESPRIT" {
			limit = 45
		}
		if nc < 6 || nc > limit {
			t.Errorf("%s: %d clusters for 6 taxa", m.Name(), nc)
		}
	}
}

func TestMCLSHRecoversTaxa(t *testing.T) {
	reads, truth := amplicon16S(t, 6, 10, 0.005, 3)
	c, err := MCLSH{}.Cluster(reads, Options{Threshold: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, c, truth); acc < 90 {
		t.Errorf("MC-LSH accuracy %.1f", acc)
	}
}

func TestMetaClusterSeparatesByComposition(t *testing.T) {
	// Two genomes with very different GC: composition binning should
	// separate their reads.
	a, _ := simulate.GenerateGenome("lowGC", 20000, 0.25, 4)
	b, _ := simulate.GenerateGenome("highGC", 20000, 0.70, 5)
	comm, _ := simulate.NewCommunity([]*simulate.Genome{a, b}, []float64{1, 1})
	reads, truth, err := comm.Reads(simulate.ReadOptions{Count: 60, Length: 800, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := MetaCluster{}.Cluster(reads, Options{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, c, truth); acc < 90 {
		t.Errorf("MetaCluster accuracy %.1f with clusters=%d", acc, c.NumClusters())
	}
}

func TestMetaClusterEmptyInput(t *testing.T) {
	c, err := MetaCluster{}.Cluster(nil, Options{Threshold: 0.9})
	if err != nil || len(c) != 0 {
		t.Fatalf("c=%v err=%v", c, err)
	}
}

func TestCDHitLongestFirstRepresentatives(t *testing.T) {
	// CD-HIT clusters around the longest sequence: feed a short fragment
	// of a long read; the long read should seed the cluster.
	long := []byte("ACGTACGGTTCAGGCATTACGGATCAGGTTACGGATTACGAATTCCGGAAGGTTACGATC")
	short := long[:40]
	reads := []fasta.Record{
		{ID: "short", Seq: short},
		{ID: "long", Seq: long},
	}
	c, err := CDHit{}.Cluster(reads, Options{Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != c[1] {
		t.Fatalf("fragment did not join its source: %v", c)
	}
}

func TestGreedyOrderSensitivityDiffersAcrossMethods(t *testing.T) {
	// UCLUST processes input order, CD-HIT length order — with mixed
	// lengths they can produce different cluster counts; both remain valid
	// partitions of all reads.
	reads, _ := testSample(t, 3, 15, 300, 7)
	u, err := UClust{}.Cluster(reads, Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := CDHit{}.Cluster(reads, Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != len(d) {
		t.Fatal("length mismatch")
	}
}

func TestEspritPruningStillSeparates(t *testing.T) {
	reads, truth := testSample(t, 4, 8, 200, 8)
	c, err := Esprit{}.Cluster(reads, Options{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Reads from distinct random genomes share few words; ESPRIT should
	// not merge across genomes.
	if acc := accuracyOf(t, c, truth); acc < 95 {
		t.Errorf("ESPRIT accuracy %.1f", acc)
	}
}

// TestRuntimeOrdering verifies the paper's Table V runtime shape on a
// small 16S sample: sketch/greedy methods are much faster than the
// alignment-matrix methods (DOTUR/Mothur).
func TestRuntimeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime comparison skipped in -short mode")
	}
	reads, _ := amplicon16S(t, 20, 15, 0.01, 9)
	timeOf := func(m Method, opt Options) time.Duration {
		start := time.Now()
		if _, err := m.Cluster(reads, opt); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := timeOf(MCLSH{}, Options{Threshold: 0.5, Seed: 9})
	slow := timeOf(Mothur{}, Options{Threshold: 0.9})
	if slow < fast {
		t.Errorf("Mothur (%v) faster than MC-LSH (%v) — Table V shape broken", slow, fast)
	}
}

func BenchmarkCDHit300Reads(b *testing.B) {
	reads, _, err := simulate.Amplicons(simulate.AmpliconOptions{Taxa: 20, ReadsPerTaxon: 15, ReadLength: 80, ErrorRate: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CDHit{}).Cluster(reads, Options{Threshold: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDotur300Reads(b *testing.B) {
	reads, _, err := simulate.Amplicons(simulate.AmpliconOptions{Taxa: 20, ReadsPerTaxon: 15, ReadLength: 80, ErrorRate: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Dotur{}).Cluster(reads, Options{Threshold: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}
