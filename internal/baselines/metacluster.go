package baselines

import (
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// MetaCluster reimplements MetaCluster's two-phase core (Yang et al.
// 2010): reads are represented by k-mer (k=4) frequency vectors compared
// with Spearman rank distance; a top-down phase over-partitions the reads
// into tight composition groups, and a bottom-up phase merges groups whose
// centroid distance is small. Composition-based binning separates genomes
// by GC/oligonucleotide signature rather than sequence overlap.
type MetaCluster struct{}

// Name implements Method.
func (MetaCluster) Name() string { return "MetaCluster" }

// metaClusterK is the composition word size (MetaCluster uses 4-mers).
const metaClusterK = 4

// Cluster implements Method. Threshold maps onto the phase-1 Spearman
// radius: tighter thresholds yield more initial groups; the phase-2 merge
// radius is fixed relative to phase 1 as in the original (merge distance
// ~1.5x the split distance).
func (MetaCluster) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := len(reads)
	if n == 0 {
		return metrics.Clustering{}, nil
	}
	// Spearman distance radius from similarity threshold: high thresholds
	// mean tight composition groups. Distance ranges [0,2].
	splitRadius := 2 * (1 - opt.Threshold)
	if splitRadius <= 0 {
		splitRadius = 0.05
	}
	mergeRadius := splitRadius * 1.5

	vecs := make([][]float64, n)
	for i := range reads {
		vecs[i] = kmer.FrequencyVector(reads[i].Seq, metaClusterK)
	}

	// Phase 1: top-down greedy over-partitioning by composition.
	assign := freshClustering(n)
	var reps []int
	next := 0
	for i := 0; i < n; i++ {
		placed := false
		for _, rep := range reps {
			if kmer.SpearmanDistance(vecs[i], vecs[rep]) <= splitRadius {
				assign[i] = assign[rep]
				placed = true
				break
			}
		}
		if !placed {
			assign[i] = next
			next++
			reps = append(reps, i)
		}
	}

	// Phase 2: bottom-up merging of group centroids.
	centroids := make([][]float64, next)
	sizes := make([]int, next)
	dim := len(vecs[0])
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for i, c := range assign {
		for d := 0; d < dim; d++ {
			centroids[c][d] += vecs[i][d]
		}
		sizes[c]++
	}
	for c := range centroids {
		for d := 0; d < dim; d++ {
			centroids[c][d] /= float64(sizes[c])
		}
	}
	parent := make([]int, next)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for a := 0; a < next; a++ {
		for b := a + 1; b < next; b++ {
			if kmer.SpearmanDistance(centroids[a], centroids[b]) <= mergeRadius {
				ra, rb := find(a), find(b)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	// Relabel compactly.
	relabel := map[int]int{}
	out := make(metrics.Clustering, n)
	for i, c := range assign {
		r := find(c)
		l, ok := relabel[r]
		if !ok {
			l = len(relabel)
			relabel[r] = l
		}
		out[i] = l
	}
	return out, nil
}
