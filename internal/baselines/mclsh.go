package baselines

import (
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// MCLSH reimplements the authors' earlier MC-LSH (Rasheed, Rangwala &
// Barbará 2012): greedy clustering where candidate representatives come
// from a banded locality-sensitive-hash index over minhash signatures —
// only bucket-colliding representatives are checked exactly, trading a
// small recall loss for a large constant-factor speedup over scanning all
// representatives.
type MCLSH struct{}

// Name implements Method.
func (MCLSH) Name() string { return "MC-LSH" }

// mclshParams fixes the sketch geometry: 10 bands × 5 rows = 50 hashes,
// giving an S-curve threshold near (1/10)^(1/5) ≈ 0.63, sharpened upward
// by the exact check.
const (
	mclshBands = 10
	mclshRows  = 5
)

// Cluster implements Method.
func (MCLSH) Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	w := opt.WordSize
	if w == 0 {
		w = 10
	}
	n := len(reads)
	sk, err := minhash.NewSketcher(mclshBands*mclshRows, w, opt.Seed)
	if err != nil {
		return nil, err
	}
	e := kmer.MustExtractor(w)
	sigs := make([]minhash.Signature, n)
	for i := range reads {
		sigs[i] = sk.Sketch(e.Set(reads[i].Seq))
	}
	idx, err := minhash.NewBandIndex(mclshBands, mclshRows)
	if err != nil {
		return nil, err
	}
	assign := freshClustering(n)
	repLabel := map[int]int{} // band-index id -> cluster label
	next := 0
	for i := 0; i < n; i++ {
		placed := false
		if !sigs[i].Empty() {
			for _, cand := range idx.Candidates(sigs[i]) {
				if minhash.MatchedPositions.Similarity(sigs[i], idx.Signature(cand)) >= opt.Threshold {
					assign[i] = repLabel[cand]
					placed = true
					break
				}
			}
		}
		if !placed {
			id, err := idx.Add(sigs[i])
			if err != nil {
				return nil, err
			}
			repLabel[id] = next
			assign[i] = next
			next++
		}
	}
	return assign, nil
}
