// Package baselines reimplements the algorithmic cores of the clustering
// tools the paper compares against: CD-HIT, UCLUST, ESPRIT, DOTUR, Mothur,
// the authors' earlier MC-LSH, and MetaCluster. The paper runs the
// original binaries; these are from-scratch Go implementations of each
// tool's published algorithm, sufficient to reproduce the *comparative
// shape* of Tables III–V (cluster counts, quality and runtime ordering).
package baselines

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// Options bundles the knobs shared by every baseline.
type Options struct {
	// Threshold is the similarity threshold in [0,1] (identity for
	// alignment-based tools, Jaccard-like for sketch-based ones).
	Threshold float64
	// WordSize is the seed/word length used by filter heuristics.
	WordSize int
	// Seed drives any randomized component.
	Seed int64
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("baselines: threshold %v out of [0,1]", o.Threshold)
	}
	if o.WordSize < 0 || o.WordSize > kmer.MaxK {
		return fmt.Errorf("baselines: word size %d out of [0,%d]", o.WordSize, kmer.MaxK)
	}
	return nil
}

// Method is a uniform baseline interface: reads in, clustering out.
type Method interface {
	Name() string
	Cluster(reads []fasta.Record, opt Options) (metrics.Clustering, error)
}

// All returns every implemented baseline.
func All() []Method {
	return []Method{
		CDHit{}, UClust{}, Esprit{}, Dotur{}, Mothur{}, MCLSH{}, MetaCluster{},
	}
}

// ByName returns the named baseline.
func ByName(name string) (Method, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown method %q", name)
}

// kmerSets extracts per-read k-mer sets once for reuse.
func kmerSets(reads []fasta.Record, k int) []kmer.Set {
	e := kmer.MustExtractor(k)
	sets := make([]kmer.Set, len(reads))
	for i := range reads {
		sets[i] = e.Set(reads[i].Seq)
	}
	return sets
}

// freshClustering allocates an all-unassigned clustering.
func freshClustering(n int) metrics.Clustering {
	c := make(metrics.Clustering, n)
	for i := range c {
		c[i] = -1
	}
	return c
}
