package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/ingest"
)

func newTestServer(t *testing.T, p Params, cfg ServerConfig, inj *faults.Injector) (*Server, *httptest.Server) {
	t.Helper()
	st, err := Open(t.TempDir(), p, false, inj)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Mux())
	t.Cleanup(func() {
		hts.Close()
		st.Close()
	})
	return srv, hts
}

func postReads(t *testing.T, url string, reads []submitRead) (*http.Response, submitResponse) {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Reads: reads})
	resp, err := http.Post(url+"/v1/reads", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &out)
	return resp, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSubmitAndQuery(t *testing.T) {
	srv, hts := newTestServer(t, testParams(), ServerConfig{}, nil)
	reads := []submitRead{
		{ID: "a", Seq: "ACGTACGTACGTACGTACGTACGTACGT"},
		{ID: "b", Seq: "ACGTACGTACGTACGTACGTACGTACGT"}, // identical -> same cluster
		{ID: "c", Seq: "TTTTTTTTGGGGGGGGCCCCAAAATTGG"},
	}
	resp, out := postReads(t, hts.URL, reads)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %+v", out.Results)
	}
	if out.Results[0].Cluster != out.Results[1].Cluster {
		t.Fatal("identical sequences split across clusters")
	}
	if out.Results[2].Cluster == out.Results[0].Cluster {
		t.Fatal("dissimilar sequence joined the cluster")
	}

	// Re-submitting is idempotent.
	_, again := postReads(t, hts.URL, reads[:1])
	if !again.Results[0].Duplicate || again.Results[0].Cluster != out.Results[0].Cluster {
		t.Fatalf("duplicate resubmit = %+v", again.Results[0])
	}

	var info ReadInfo
	if code := getJSON(t, hts.URL+"/v1/reads/a", &info); code != http.StatusOK {
		t.Fatalf("read lookup status %d", code)
	}
	if info.Cluster != out.Results[0].Cluster {
		t.Fatalf("lookup cluster %d != submit cluster %d", info.Cluster, out.Results[0].Cluster)
	}
	if code := getJSON(t, hts.URL+"/v1/reads/zzz", nil); code != http.StatusNotFound {
		t.Fatalf("missing read status %d", code)
	}

	var div Diversity
	if code := getJSON(t, hts.URL+"/v1/diversity", &div); code != http.StatusOK || div.Reads != 3 {
		t.Fatalf("diversity %+v code %d", div, code)
	}
	var ci ClusterInfo
	if code := getJSON(t, hts.URL+fmt.Sprintf("/v1/clusters/%d", info.Cluster), &ci); code != http.StatusOK {
		t.Fatalf("cluster lookup status %d", code)
	}
	if ci.Size != 2 {
		t.Fatalf("cluster size %d, want 2", ci.Size)
	}

	resp2, err := http.Get(hts.URL + "/v1/assignments")
	if err != nil {
		t.Fatal(err)
	}
	tsv, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if lines := strings.Count(string(tsv), "\n"); lines != 3 {
		t.Fatalf("assignments dump has %d lines:\n%s", lines, tsv)
	}

	if code := getJSON(t, hts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	if code := getJSON(t, hts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz %d", code)
	}
	if srv.Latency.Count() < 2 {
		t.Fatalf("latency histogram saw %d samples", srv.Latency.Count())
	}
	if code := getJSON(t, hts.URL+"/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("pprof %d", code)
	}
}

func TestHTTPRejectsBadInput(t *testing.T) {
	_, hts := newTestServer(t, testParams(), ServerConfig{MaxBatch: 4}, nil)
	if resp, _ := postReads(t, hts.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	if resp, _ := postReads(t, hts.URL, []submitRead{{ID: "", Seq: "ACGT"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id status %d", resp.StatusCode)
	}
	big := make([]submitRead, 5)
	for i := range big {
		big[i] = submitRead{ID: fmt.Sprintf("r%d", i), Seq: "ACGTACGT"}
	}
	if resp, _ := postReads(t, hts.URL, big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	resp, err := http.Post(hts.URL+"/v1/reads", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", resp.StatusCode)
	}
}

// TestLoadSheddingQueueFull stalls the committer (a commit whose result
// channel nobody drains blocks the committer's send), fills the bounded
// queue, and checks the next submit is shed with 503 + Retry-After
// instead of queueing unboundedly.
func TestLoadSheddingQueueFull(t *testing.T) {
	srv, hts := newTestServer(t, testParams(), ServerConfig{QueueDepth: 2, MaxInFlight: 100}, nil)

	// Stall: the committer processes this request but blocks sending the
	// result into an unbuffered done channel nobody reads yet.
	stall := &commitReq{
		batch: []ingest.Sketched{},
		done:  make(chan commitResult), // unbuffered on purpose
	}
	srv.commitCh <- stall
	// Fill the queue behind it.
	fillers := make([]*commitReq, 2)
	for i := range fillers {
		fillers[i] = &commitReq{batch: []ingest.Sketched{}, done: make(chan commitResult, 1)}
		srv.commitCh <- fillers[i]
	}

	resp, _ := postReads(t, hts.URL, []submitRead{{ID: "x", Seq: "ACGTACGTACGTACGT"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if srv.shed.Load() != 1 {
		t.Fatalf("shed counter = %d", srv.shed.Load())
	}

	// Unstall and verify the server recovers.
	<-stall.done
	for _, f := range fillers {
		<-f.done
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postReads(t, hts.URL, []submitRead{{ID: "x", Seq: "ACGTACGTACGTACGT"}})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover after unstalling")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionControlInFlight: beyond MaxInFlight concurrent submits,
// requests shed before doing any work.
func TestAdmissionControlInFlight(t *testing.T) {
	srv, hts := newTestServer(t, testParams(), ServerConfig{MaxInFlight: 1}, nil)
	srv.inFlight.Add(1) // simulate one stuck in-flight request
	resp, _ := postReads(t, hts.URL, []submitRead{{ID: "x", Seq: "ACGTACGT"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit submit status %d", resp.StatusCode)
	}
	if srv.shed.Load() != 1 {
		t.Fatalf("shed = %d", srv.shed.Load())
	}
	srv.inFlight.Add(-1)
	resp, _ = postReads(t, hts.URL, []submitRead{{ID: "x", Seq: "ACGTACGTACGTACGT"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d", resp.StatusCode)
	}
}

// TestServerCrashLatches: an injected service crash still acks the
// triggering batch (it was durable first), then latches the server
// unhealthy, and Drain surfaces the crash error.
func TestServerCrashLatches(t *testing.T) {
	plan, err := faults.ParsePlan("service-crash:after=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, hts := newTestServer(t, testParams(), ServerConfig{}, faults.MustNew(plan))
	resp, out := postReads(t, hts.URL, []submitRead{
		{ID: "a", Seq: "ACGTACGTACGTACGT"},
		{ID: "b", Seq: "TTTTGGGGCCCCAAAA"},
	})
	if resp.StatusCode != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("triggering batch: status %d results %+v", resp.StatusCode, out.Results)
	}
	if srv.Fatal() == nil {
		t.Fatal("crash not latched")
	}
	if code := getJSON(t, hts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after crash = %d", code)
	}
	resp2, _ := postReads(t, hts.URL, []submitRead{{ID: "c", Seq: "ACGT"}})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-crash submit = %d", resp2.StatusCode)
	}
	err = srv.Drain()
	var sc *faults.ServiceCrashError
	if !asServiceCrash(err, &sc) {
		t.Fatalf("Drain err = %v, want service crash", err)
	}
}

// TestDrainStopsIntakeAndCheckpoints: after Drain, readyz flips, new
// submits are refused, and the directory reopens with everything acked.
func TestDrainStopsIntakeAndCheckpoints(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	st, err := Open(dir, p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Mux())
	defer hts.Close()

	resp, _ := postReads(t, hts.URL, []submitRead{{ID: "a", Seq: "ACGTACGTACGTACGT"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %d", resp.StatusCode)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, hts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained = %d", code)
	}
	resp, _ = postReads(t, hts.URL, []submitRead{{ID: "b", Seq: "ACGT"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d", resp.StatusCode)
	}
	st.Close()

	st2, err := Open(dir, p, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Assignment("a"); !ok {
		t.Fatal("acked read lost across drain")
	}
}

// TestStatsAcceptedMatchesAcked: accepted counts only non-duplicate
// HTTP acks, so for HTTP-only intake accepted == acked and
// accepted + duplicates == total submitted reads.
func TestStatsAcceptedMatchesAcked(t *testing.T) {
	srv, hts := newTestServer(t, testParams(), ServerConfig{}, nil)
	reads := []submitRead{
		{ID: "a", Seq: "ACGTACGTACGTACGTACGTACGTACGT"},
		{ID: "b", Seq: "TTTTTTTTGGGGGGGGCCCCAAAATTGG"},
		{ID: "c", Seq: "ACGTACGTACGTACGTACGTACGTACGT"},
	}
	if resp, _ := postReads(t, hts.URL, reads); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %d", resp.StatusCode)
	}
	// Resubmit two (both duplicates) and a batch with an in-batch repeat
	// (one fresh, one duplicate).
	if resp, _ := postReads(t, hts.URL, reads[:2]); resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit %d", resp.StatusCode)
	}
	dup := []submitRead{
		{ID: "d", Seq: "GGGGCCCCAAAATTTTGGGGCCCCAAAA"},
		{ID: "d", Seq: "GGGGCCCCAAAATTTTGGGGCCCCAAAA"},
	}
	if resp, _ := postReads(t, hts.URL, dup); resp.StatusCode != http.StatusOK {
		t.Fatalf("dup batch %d", resp.StatusCode)
	}

	stats := srv.ServerStatsSnapshot()
	if stats.Accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (a, b, c, d)", stats.Accepted)
	}
	if stats.Accepted != stats.Acked {
		t.Fatalf("invariant violated: accepted %d != acked %d", stats.Accepted, stats.Acked)
	}
	if stats.Duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3", stats.Duplicates)
	}
	if submitted := int64(7); stats.Accepted+stats.Duplicates != submitted {
		t.Fatalf("accepted %d + duplicates %d != submitted %d",
			stats.Accepted, stats.Duplicates, submitted)
	}
}

// TestHTTPServerDropsSlowloris: a client that sends a partial request
// and stalls must be disconnected by the server's read deadline instead
// of holding its connection (and, once admitted, an intake slot)
// forever — and the server keeps serving well-behaved clients.
func TestHTTPServerDropsSlowloris(t *testing.T) {
	def := NewHTTPServer(nil, 0)
	if def.ReadTimeout != 30*time.Second || def.ReadHeaderTimeout != 30*time.Second || def.IdleTimeout == 0 {
		t.Fatalf("defaults: read=%v header=%v idle=%v",
			def.ReadTimeout, def.ReadHeaderTimeout, def.IdleTimeout)
	}

	st, err := Open(t.TempDir(), testParams(), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHTTPServer(srv.Mux(), 200*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		st.Close()
	})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request, then silence: headers incomplete, body never sent.
	if _, err := conn.Write([]byte("POST /v1/reads HTTP/1.1\r\nHost: slow\r\nContent-Length: 1000\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatal("server kept the slowloris connection open past its read timeout")
			}
			break // EOF / reset: server dropped the stalled client
		}
	}

	// The stalled client must not have wedged intake for anyone else.
	resp, out := postReads(t, "http://"+ln.Addr().String(), []submitRead{{ID: "x", Seq: "ACGTACGTACGTACGT"}})
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("healthy client after slowloris: status %d results %+v", resp.StatusCode, out.Results)
	}
}

// TestIngesterThroughServerSink runs the pull-ingest path end to end:
// a file-less channel source through the Ingester into the server's
// sink, verifying backpressure-style blocking commits work alongside
// HTTP queries.
func TestIngesterThroughServerSink(t *testing.T) {
	p := testParams()
	srv, hts := newTestServer(t, p, ServerConfig{QueueDepth: 2}, nil)

	src := ingest.NewChanSource(4)
	go func() {
		for i := 0; i < 150; i++ {
			src.Push(context.Background(), ingest.Record{
				ID:  fmt.Sprintf("bulk-%03d", i),
				Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
			})
		}
		src.Finish()
	}()
	ing, err := ingest.New(ingest.Config{
		K: p.K, NumHashes: p.NumHashes, Seed: p.Seed, Canonical: p.Canonical,
		BatchSize: 16, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Run(context.Background(), src, srv.Sink()); err != nil {
		t.Fatal(err)
	}
	var div Diversity
	if code := getJSON(t, hts.URL+"/v1/diversity", &div); code != http.StatusOK {
		t.Fatalf("diversity %d", code)
	}
	if div.Reads != 150 {
		t.Fatalf("reads = %d, want 150", div.Reads)
	}
	if div.Clusters != 1 {
		t.Fatalf("identical reads formed %d clusters", div.Clusters)
	}
}
