package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/ingest"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

func testParams() Params {
	return Params{
		K: 8, NumHashes: 48, Seed: 11, Canonical: true,
		Theta: 0.35, Estimator: minhash.SetOverlap,
	}
}

// makeReads builds a corpus with real cluster structure: reads are
// mutated copies of a few base sequences, so similar reads land in the
// same cluster and the assignment table is non-trivial.
func makeReads(t *testing.T, p Params, n int) []ingest.Sketched {
	t.Helper()
	const bases = "ACGT"
	rng := uint64(12345)
	next := func(m uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % m
	}
	base := make([][]byte, 5)
	for b := range base {
		base[b] = make([]byte, 150)
		for j := range base[b] {
			base[b][j] = bases[next(4)]
		}
	}
	sk, err := minhash.NewSketcher(p.NumHashes, p.K, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ex := &kmer.Extractor{K: p.K, Canonical: p.Canonical}
	out := make([]ingest.Sketched, n)
	for i := range out {
		seq := append([]byte(nil), base[next(uint64(len(base)))]...)
		for m := uint64(0); m < 4; m++ { // a few point mutations
			seq[next(uint64(len(seq)))] = bases[next(4)]
		}
		out[i] = ingest.Sketched{
			ID:  fmt.Sprintf("read-%05d", i),
			Sig: sk.SketchInto(nil, ex.Slice(seq)),
		}
	}
	return out
}

func commitAll(t *testing.T, st *State, reads []ingest.Sketched, batch int) {
	t.Helper()
	for i := 0; i < len(reads); i += batch {
		end := i + batch
		if end > len(reads) {
			end = len(reads)
		}
		if _, err := st.CommitBatch(reads[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

func dump(t *testing.T, st *State) string {
	t.Helper()
	var buf bytes.Buffer
	if err := st.DumpTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCrashRecoveryBitIdentical is the core durability contract: commit
// part of a corpus, crash WITHOUT checkpointing (the WAL is the only
// durable record), reopen with resume, commit the rest — and the final
// assignment table is byte-identical to an uninterrupted run. Exercised
// over full, packed, and LSH-indexed configurations.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"full-exact", func(p *Params) {}},
		{"full-lsh", func(p *Params) { p.UseLSH = true }},
		{"packed-b4", func(p *Params) { p.Bits = 4 }},
		{"packed-b4-lsh", func(p *Params) { p.Bits = 4; p.UseLSH = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testParams()
			tc.mod(&p)
			reads := makeReads(t, p, 300)

			// Reference: one uninterrupted run.
			ref, err := Open(t.TempDir(), p, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			commitAll(t, ref, reads, 32)
			want := dump(t, ref)
			ref.Close()

			// Crashed run: commit 140 reads, then drop the state on the
			// floor (no Checkpoint — simulates SIGKILL after the last ack).
			dir := t.TempDir()
			st1, err := Open(dir, p, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			commitAll(t, st1, reads[:140], 32)
			if err := st1.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover and finish. Re-submitting an overlap (120..140)
			// exercises duplicate suppression across the restart.
			st2, err := Open(dir, p, true, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := st2.Stats().Reads; got != 140 {
				t.Fatalf("recovered %d reads, want 140", got)
			}
			commitAll(t, st2, reads[120:], 32)
			if st2.Stats().Duplicates != 20 {
				t.Fatalf("duplicates = %d, want 20", st2.Stats().Duplicates)
			}
			got := dump(t, st2)
			if got != want {
				t.Fatalf("recovered assignments differ from uninterrupted run:\nrecovered:\n%s\nwant:\n%s",
					head(got, 10), head(want, 10))
			}
			st2.Close()
		})
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestGracefulDrainInvariant: every acknowledged read survives a
// checkpointed shutdown and restart with its assignment intact — and
// the restarted state re-snapshots byte-identically.
func TestGracefulDrainInvariant(t *testing.T) {
	p := testParams()
	reads := makeReads(t, p, 200)
	dir := t.TempDir()
	st, err := Open(dir, p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitAll(t, st, reads, 16)
	want := dump(t, st)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, p, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := dump(t, st2); got != want {
		t.Fatal("assignments changed across graceful drain + restart")
	}
	for _, r := range reads { // every acked read individually queryable
		if _, ok := st2.Assignment(r.ID); !ok {
			t.Fatalf("read %s lost across drain", r.ID)
		}
	}
}

// TestOpenRefusesUnmatchedState guards the two fatal misconfigurations:
// restarting over durable data without resume, and resuming under
// different params.
func TestOpenRefusesUnmatchedState(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	st, err := Open(dir, p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitAll(t, st, makeReads(t, p, 10), 10)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := Open(dir, p, false, nil); err == nil {
		t.Fatal("reopening durable state without resume succeeded")
	}
	p2 := p
	p2.Theta = 0.9
	if _, err := Open(dir, p2, true, nil); err == nil {
		t.Fatal("resume under different params succeeded")
	}
	if _, err := Open(dir, p, true, nil); err != nil {
		t.Fatalf("legitimate resume failed: %v", err)
	}
}

// TestServiceCrashInjection: the faults plan fires once the acked count
// crosses the threshold, and the resulting state recovers everything
// acked before the crash.
func TestServiceCrashInjection(t *testing.T) {
	p := testParams()
	reads := makeReads(t, p, 100)
	plan, err := faults.ParsePlan("service-crash:after=50", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := Open(dir, p, false, faults.MustNew(plan))
	if err != nil {
		t.Fatal(err)
	}
	var crashed *faults.ServiceCrashError
	committed := 0
	for i := 0; i < len(reads); i += 10 {
		acks, err := st.CommitBatch(reads[i : i+10])
		if err != nil {
			var sc *faults.ServiceCrashError
			if !asServiceCrash(err, &sc) {
				t.Fatal(err)
			}
			crashed = sc
			committed = i + len(acks)
			break
		}
		committed = i + 10
	}
	if crashed == nil {
		t.Fatal("service crash never fired")
	}
	if crashed.Acked < 50 {
		t.Fatalf("crashed at %d acked, before threshold", crashed.Acked)
	}
	st.Close() // crash path: no checkpoint

	st2, err := Open(dir, p, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Reads; got != committed {
		t.Fatalf("recovered %d reads, want %d (all acked before crash)", got, committed)
	}
}

func asServiceCrash(err error, out **faults.ServiceCrashError) bool {
	sc, ok := err.(*faults.ServiceCrashError)
	if ok {
		*out = sc
	}
	return ok
}

// TestDiversityAndQueries sanity-checks the query surface over a known
// corpus.
func TestDiversityAndQueries(t *testing.T) {
	p := testParams()
	reads := makeReads(t, p, 120)
	st, err := Open(t.TempDir(), p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	commitAll(t, st, reads, 30)

	d := st.Diversity()
	if d.Reads != 120 || d.Clusters < 1 || d.Clusters > 120 {
		t.Fatalf("diversity = %+v", d)
	}
	if d.Clusters >= 100 {
		t.Fatalf("mutated copies of 5 bases produced %d clusters — no structure", d.Clusters)
	}
	if d.Shannon < 0 || d.Simpson <= 0 || d.Simpson > 1 {
		t.Fatalf("indices out of range: %+v", d)
	}

	info, ok := st.Assignment(reads[7].ID)
	if !ok || info.ID != reads[7].ID {
		t.Fatalf("assignment lookup: %+v ok=%v", info, ok)
	}
	ci, ok := st.Cluster(info.Cluster)
	if !ok || ci.Size < 1 {
		t.Fatalf("cluster lookup: %+v ok=%v", ci, ok)
	}
	// The representative of a read's cluster must itself map to that
	// cluster.
	repInfo, ok := st.Assignment(ci.Representative)
	if !ok || repInfo.Cluster != info.Cluster {
		t.Fatalf("representative %q maps to %+v", ci.Representative, repInfo)
	}
	all := st.Clusters()
	if len(all) != d.Clusters {
		t.Fatalf("Clusters() returned %d, diversity says %d", len(all), d.Clusters)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Size > all[i-1].Size {
			t.Fatal("Clusters() not sorted by size")
		}
	}
	if _, ok := st.Assignment("nope"); ok {
		t.Fatal("unknown read found")
	}
	if _, ok := st.Cluster(10_000); ok {
		t.Fatal("unknown cluster found")
	}
}
