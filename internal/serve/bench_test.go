package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// The serving benchmarks drive the full HTTP request path — JSON decode,
// inline sketch, bounded-queue commit with WAL group fsync, JSON encode —
// under sustained concurrent load, and report tail latency via the
// server's own histogram: p50-ns/req and p99-ns/req land in the
// BENCH_serving.json "extra" object that cmd/benchgate gates in CI.

func benchParams() Params {
	return Params{
		K: 12, NumHashes: 64, Seed: 3, Canonical: true,
		Theta: 0.4, Estimator: minhash.SetOverlap, UseLSH: true,
	}
}

// benchCorpus builds batched JSON submit bodies over a synthetic
// community (mutated copies of base sequences).
func benchCorpus(p Params, batches, batchSize int) [][]byte {
	const bases = "ACGT"
	rng := uint64(99)
	next := func(m uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % m
	}
	base := make([][]byte, 20)
	for b := range base {
		base[b] = make([]byte, 200)
		for j := range base[b] {
			base[b][j] = bases[next(4)]
		}
	}
	out := make([][]byte, batches)
	n := 0
	for i := range out {
		req := submitRequest{Reads: make([]submitRead, batchSize)}
		for j := range req.Reads {
			seq := append([]byte(nil), base[next(uint64(len(base)))]...)
			for m := uint64(0); m < 6; m++ {
				seq[next(uint64(len(seq)))] = bases[next(4)]
			}
			req.Reads[j] = submitRead{ID: fmt.Sprintf("bench-%07d", n), Seq: string(seq)}
			n++
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		out[i] = body
	}
	return out
}

// BenchmarkServingSustainedLoad: 8 concurrent clients submitting
// 32-read batches against a live server. ns/op is per submitted batch;
// the extra metrics carry the end-to-end latency distribution.
func BenchmarkServingSustainedLoad(b *testing.B) {
	st, err := Open(b.TempDir(), benchParams(), false, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv, err := NewServer(st, ServerConfig{MaxInFlight: 256, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	hts := httptest.NewServer(srv.Mux())
	defer hts.Close()

	const batchSize = 32
	bodies := benchCorpus(benchParams(), b.N, batchSize)
	client := hts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 16}

	const workers = 8
	work := make(chan []byte, workers)
	var wg sync.WaitGroup
	var failures int
	var mu sync.Mutex
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range work {
				resp, err := client.Post(hts.URL+"/v1/reads", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}()
	}
	for _, body := range bodies {
		work <- body
	}
	close(work)
	wg.Wait()
	b.StopTimer()
	if failures > 0 {
		b.Fatalf("%d failed submits", failures)
	}
	b.ReportMetric(float64(srv.Latency.Quantile(0.50)), "p50-ns/req")
	b.ReportMetric(float64(srv.Latency.Quantile(0.99)), "p99-ns/req")
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*batchSize)/elapsed.Seconds(), "reads/sec")
	}
}

// BenchmarkServingQuery measures the lock-free query path the way real
// clients hit it: multiple workers, each multiplexing a pipelined
// keep-alive connection, issuing a mixed load of point lookups
// (GET /v1/reads/{id}), cluster listings, and diversity summaries.
// ns/op is per query; queries/sec lands in BENCH_serving.json "extra"
// and is gated by scripts/bench_gate.sh. The raw HTTP/1.1 client keeps
// the measurement on the server — net/http's client transport costs
// more CPU than the epoch-published read path being measured.
func BenchmarkServingQuery(b *testing.B) {
	p := benchParams()
	st, err := Open(b.TempDir(), p, false, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	srv, err := NewServer(st, ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	hts := httptest.NewServer(srv.Mux())
	defer hts.Close()
	const n = 2000
	bodies := benchCorpus(p, n/100, 100)
	client := hts.Client()
	for _, body := range bodies {
		resp, err := client.Post(hts.URL+"/v1/reads", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}

	// The query mix: mostly point lookups, with the memoized summary
	// endpoints interleaved (1/16 each).
	reqs := make([][]byte, 16)
	for i := range reqs {
		switch i {
		case 7:
			reqs[i] = []byte("GET /v1/clusters HTTP/1.1\r\nHost: bench\r\n\r\n")
		case 15:
			reqs[i] = []byte("GET /v1/diversity HTTP/1.1\r\nHost: bench\r\n\r\n")
		default:
			reqs[i] = []byte(fmt.Sprintf("GET /v1/reads/bench-%07d HTTP/1.1\r\nHost: bench\r\n\r\n", (i*131)%n))
		}
	}

	addr := hts.Listener.Addr().String()
	const workers = 8
	const pipeline = 64 // requests written per batch before reading replies
	var next atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				failures.Add(1)
				return
			}
			defer conn.Close()
			br := bufio.NewReaderSize(conn, 64<<10)
			var out bytes.Buffer
			for {
				start := next.Add(pipeline) - pipeline
				if start >= int64(b.N) {
					return
				}
				count := int(min(int64(pipeline), int64(b.N)-start))
				out.Reset()
				for i := 0; i < count; i++ {
					out.Write(reqs[(int(start)+i+worker)%len(reqs)])
				}
				if _, err := conn.Write(out.Bytes()); err != nil {
					failures.Add(1)
					return
				}
				for i := 0; i < count; i++ {
					resp, err := http.ReadResponse(br, nil)
					if err != nil {
						failures.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if f := failures.Load(); f > 0 {
		b.Fatalf("%d failed queries", f)
	}
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/sec")
	}
}
