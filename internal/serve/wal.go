package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// The write-ahead log makes "acknowledged" mean "durable": a read is
// acked to its submitter only after its WAL record has been fsynced.
// Each record frames the read's string ID and FULL signature words —
// even when the store packs to b bits, so replay re-Puts through the
// exact ingest path and packs identically:
//
//	u32 payloadLen | u32 crc32(IEEE, payload) | payload
//	payload: u16 idLen | id | u32 nWords | nWords × u64 LE
//
// A crash can tear the final record; ReplayWAL stops at the first frame
// whose length or checksum fails and reports the durable prefix length,
// which OpenWAL truncates to. Records never change once written, so the
// log is append-only and replay is idempotent (the state layer dedups
// by read ID).

const walMaxRecord = 1 << 24 // 16 MiB: far above any real id+signature

// WAL is a group-commit write-ahead log. Append buffers records in
// memory; Sync writes and fsyncs the buffer — one fsync per committed
// batch, not per read. Not goroutine-safe: the state's single committer
// owns it.
type WAL struct {
	f   *os.File
	buf []byte
}

// OpenWAL opens (creating if needed) the log at path, truncating any
// torn tail past durable.
func OpenWAL(path string, durable int64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(durable); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f}, nil
}

// Append buffers one record; it hits disk at the next Sync.
func (w *WAL) Append(id string, sig minhash.Signature) error {
	if len(id) > 1<<16-1 {
		return fmt.Errorf("serve: read id %d bytes exceeds 64 KiB", len(id))
	}
	payloadLen := 2 + len(id) + 4 + 8*len(sig)
	if payloadLen > walMaxRecord {
		return fmt.Errorf("serve: WAL record %d bytes exceeds limit", payloadLen)
	}
	payload := make([]byte, 0, payloadLen)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(id)))
	payload = append(payload, id...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sig)))
	for _, wd := range sig {
		payload = binary.LittleEndian.AppendUint64(payload, wd)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(payloadLen))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	return nil
}

// Sync flushes buffered records and fsyncs: the group-commit barrier
// after which every appended read is durable.
func (w *WAL) Sync() error {
	if len(w.buf) > 0 {
		if _, err := w.f.Write(w.buf); err != nil {
			return err
		}
		w.buf = w.buf[:0]
	}
	return w.f.Sync()
}

// Truncate discards the log contents (after a snapshot has absorbed
// them) and fsyncs.
func (w *WAL) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayWAL streams every intact record at path to fn and returns the
// durable prefix length (bytes before the first torn or missing frame).
// A missing file is an empty log. Replay stops early on a fn error.
func ReplayWAL(path string, fn func(id string, sig minhash.Signature) error) (int64, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	var (
		off     int64
		records int
	)
	for int(off)+8 <= len(data) {
		payloadLen := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + 8 + int64(payloadLen)
		if payloadLen > walMaxRecord || end > int64(len(data)) {
			break // torn tail: length written but payload incomplete
		}
		payload := data[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or corrupt tail
		}
		id, sig, err := decodeWALPayload(payload)
		if err != nil {
			break
		}
		if err := fn(id, sig); err != nil {
			return off, records, err
		}
		off = end
		records++
	}
	return off, records, nil
}

func decodeWALPayload(p []byte) (string, minhash.Signature, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("serve: WAL payload too short")
	}
	idLen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < idLen+4 {
		return "", nil, fmt.Errorf("serve: WAL payload truncated")
	}
	id := string(p[:idLen])
	p = p[idLen:]
	nWords := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != 8*nWords {
		return "", nil, fmt.Errorf("serve: WAL signature truncated")
	}
	sig := make(minhash.Signature, nWords)
	for i := range sig {
		sig[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return id, sig, nil
}
