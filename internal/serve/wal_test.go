package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/minhash"
)

func testSig(i, n int) minhash.Signature {
	sig := make(minhash.Signature, n)
	state := uint64(i)*0x9e3779b97f4a7c15 + 1
	for j := range sig {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		sig[j] = state
	}
	return sig
}

type walEntry struct {
	id  string
	sig minhash.Signature
}

func replayAll(t *testing.T, path string) ([]walEntry, int64) {
	t.Helper()
	var got []walEntry
	durable, n, err := ReplayWAL(path, func(id string, sig minhash.Signature) error {
		got = append(got, walEntry{id, append(minhash.Signature(nil), sig...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("record count %d vs %d entries", n, len(got))
	}
	return got, durable
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := w.Append(fmt.Sprintf("read-%d", i), testSig(i, 16)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil { // Close syncs the remainder
		t.Fatal(err)
	}
	got, _ := replayAll(t, path)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, e := range got {
		if e.id != fmt.Sprintf("read-%d", i) {
			t.Fatalf("record %d id = %q", i, e.id)
		}
		want := testSig(i, 16)
		for j := range want {
			if e.sig[j] != want[j] {
				t.Fatalf("record %d word %d differs", i, j)
			}
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(fmt.Sprintf("r%d", i), testSig(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: keep all of record 0-3 plus half of record 4.
	_, fullDurable := replayAll(t, path)
	if fullDurable != int64(len(intact)) {
		t.Fatalf("durable %d != file size %d on intact log", fullDurable, len(intact))
	}
	torn := intact[:len(intact)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, durable := replayAll(t, path)
	if len(got) != 4 {
		t.Fatalf("torn log replayed %d records, want 4", len(got))
	}
	// Reopen at the durable prefix: the torn bytes are gone and appends
	// continue from a clean boundary.
	w2, err := OpenWAL(path, durable)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append("r4b", testSig(99, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, path)
	if len(got) != 5 || got[4].id != "r4b" {
		t.Fatalf("after truncate+append: %d records, last %q", len(got), got[len(got)-1].id)
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(fmt.Sprintf("r%d", i), testSig(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // flip a bit in the last record's payload
	os.WriteFile(path, data, 0o644)
	got, _ := replayAll(t, path)
	if len(got) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(got))
	}
}

func TestWALTruncateDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("a", testSig(1, 4))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	w.Append("b", testSig(2, 4))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, path)
	if len(got) != 1 || got[0].id != "b" {
		t.Fatalf("after truncate: %+v", got)
	}
}

func TestWALMissingFileIsEmpty(t *testing.T) {
	got, durable := replayAll(t, filepath.Join(t.TempDir(), "none.log"))
	if len(got) != 0 || durable != 0 {
		t.Fatalf("missing file: %d records, durable %d", len(got), durable)
	}
}
