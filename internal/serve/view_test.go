package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunkedViewsFrozen: a published chunkSlice never sees later
// appends, even when they land in the chunk the view's tail shares with
// the builder (entries past n are invisible by construction).
func TestChunkedViewsFrozen(t *testing.T) {
	var a appendChunks[int32]
	const total = 3*viewChunkLen + 17 // cross several chunk boundaries
	views := make([]chunkSlice[int32], 0, 8)
	for i := 0; i < total; i++ {
		a.append(int32(i))
		if i == 5 || i == viewChunkLen-1 || i == viewChunkLen || i == 2*viewChunkLen+3 {
			views = append(views, a.view())
		}
	}
	views = append(views, a.view())
	for _, v := range views {
		for i := 0; i < v.len(); i++ {
			if v.at(i) != int32(i) {
				t.Fatalf("view(n=%d)[%d] = %d, want %d", v.len(), i, v.at(i), i)
			}
		}
	}
	if views[len(views)-1].len() != total {
		t.Fatalf("final view len = %d, want %d", views[len(views)-1].len(), total)
	}
}

// TestCowChunksCopyOnWrite: in-place increments after a publish must not
// leak into the published view — the first write into a shared chunk
// copies it.
func TestCowChunksCopyOnWrite(t *testing.T) {
	var c cowChunks
	const labels = viewChunkLen + 10 // spans two chunks
	for i := 0; i < labels; i++ {
		c.append(1)
	}
	v1 := c.view()
	// Mutate one label per chunk, and append a brand-new label.
	c.inc(3)
	c.inc(viewChunkLen + 2)
	c.append(7)
	v2 := c.view()

	if v1.len() != labels || v1.at(3) != 1 || v1.at(viewChunkLen+2) != 1 {
		t.Fatalf("published view mutated: len=%d at(3)=%d at(%d)=%d",
			v1.len(), v1.at(3), viewChunkLen+2, v1.at(viewChunkLen+2))
	}
	if v2.at(3) != 2 || v2.at(viewChunkLen+2) != 2 || v2.at(labels) != 7 || v2.len() != labels+1 {
		t.Fatalf("second view wrong: at(3)=%d at(%d)=%d at(%d)=%d",
			v2.at(3), viewChunkLen+2, v2.at(viewChunkLen+2), labels, v2.at(labels))
	}
	// A third round of mutation must not disturb v2 either (chunks were
	// re-marked shared by view()).
	c.inc(3)
	if v2.at(3) != 2 {
		t.Fatal("view() did not re-mark chunks shared")
	}
}

// TestDenseIndexGrowth inserts enough keys to force several table
// growths and checks every key still resolves, misses stay misses, and
// a reader holding a pre-growth table keeps resolving old keys.
func TestDenseIndexGrowth(t *testing.T) {
	d := newDenseIndex(0) // min table: 1024 slots -> grows at 768
	old := d.table.Load()
	const n = 5000
	for i := 0; i < n; i++ {
		d.insert(fmt.Sprintf("key-%05d", i), uint32(i))
	}
	if d.table.Load() == old {
		t.Fatal("table never grew")
	}
	for i := 0; i < n; i++ {
		dense, ok := d.lookup(fmt.Sprintf("key-%05d", i))
		if !ok || dense != uint32(i) {
			t.Fatalf("lookup key-%05d = (%d, %v)", i, dense, ok)
		}
	}
	if _, ok := d.lookup("absent"); ok {
		t.Fatal("lookup invented a key")
	}
	// The stale pre-growth table still answers for its own era.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%05d", i)
		found := false
		for j := fnv1a64(key) & old.mask; ; j = (j + 1) & old.mask {
			e := old.slots[j].Load()
			if e == nil {
				break
			}
			if e.key == key {
				found = e.dense == uint32(i)
				break
			}
		}
		if !found {
			t.Fatalf("pre-growth table lost %s", key)
		}
	}
}

// failAfterWriter accepts limit bytes, then fails every further write
// (taking the partial prefix first, like a dying socket).
type failAfterWriter struct {
	limit int
	buf   bytes.Buffer
}

var errInjectedWrite = errors.New("injected write failure")

func (f *failAfterWriter) Write(p []byte) (int, error) {
	room := f.limit - f.buf.Len()
	if len(p) <= room {
		return f.buf.Write(p)
	}
	if room > 0 {
		f.buf.Write(p[:room])
	}
	return room, errInjectedWrite
}

// TestDumpTSVCleanPrefixOnWriteFailure: a mid-dump write failure must
// surface as an error while the bytes already written stay a clean
// prefix of the full dump — no error text, no torn row semantics beyond
// the cut point.
func TestDumpTSVCleanPrefixOnWriteFailure(t *testing.T) {
	p := testParams()
	st, err := Open(t.TempDir(), p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	commitAll(t, st, makeReads(t, p, 500), 50) // ~9 KB of TSV, several bufio flushes

	full := dump(t, st)
	fw := &failAfterWriter{limit: 2000}
	if err := st.DumpTSV(fw); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("DumpTSV error = %v, want injected failure", err)
	}
	got := fw.buf.String()
	if !strings.HasPrefix(full, got) {
		t.Fatalf("failed dump is not a prefix of the full dump:\n%q", got)
	}
	if strings.Contains(got, "injected") || strings.Contains(got, "failure") {
		t.Fatalf("error text leaked into the dump:\n%q", got)
	}
}

// failingResponseWriter simulates a client connection dying after limit
// body bytes.
type failingResponseWriter struct {
	*httptest.ResponseRecorder
	limit int
	wrote int
}

func (f *failingResponseWriter) Write(p []byte) (int, error) {
	room := f.limit - f.wrote
	if len(p) <= room {
		f.wrote += len(p)
		return f.ResponseRecorder.Write(p)
	}
	if room > 0 {
		f.ResponseRecorder.Write(p[:room])
		f.wrote = f.limit
	}
	return room, errInjectedWrite
}

// TestAssignmentsHandlerNeverAppendsErrorText: the /v1/assignments
// handler must not append error text to a body that already started
// streaming (the old http.Error call corrupted the chaos harness's
// artifact). The truncated body stays a clean prefix and the failure is
// counted in write_errors.
func TestAssignmentsHandlerNeverAppendsErrorText(t *testing.T) {
	p := testParams()
	st, err := Open(t.TempDir(), p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	commitAll(t, st, makeReads(t, p, 500), 50)
	srv, err := NewServer(st, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()

	full := dump(t, st)
	rw := &failingResponseWriter{ResponseRecorder: httptest.NewRecorder(), limit: 2000}
	req := httptest.NewRequest(http.MethodGet, "/v1/assignments", nil)
	srv.Mux().ServeHTTP(rw, req)

	if rw.Code != http.StatusOK {
		t.Fatalf("status = %d", rw.Code)
	}
	got := rw.Body.String()
	if !strings.HasPrefix(full, got) {
		t.Fatalf("truncated body is not a prefix of the dump:\n%q", got)
	}
	if strings.Contains(got, "injected") || strings.Contains(got, "error") {
		t.Fatalf("error text appended to streamed body:\n%q", got)
	}
	if srv.writeErrors.Load() != 1 {
		t.Fatalf("writeErrors = %d, want 1", srv.writeErrors.Load())
	}
	if srv.ServerStatsSnapshot().WriteErrors != 1 {
		t.Fatal("write_errors not surfaced in stats")
	}
}

// checkViewInvariants asserts one loaded view is internally consistent
// — the direct form of "a view is never half-published".
func checkViewInvariants(t *testing.T, v *readView) {
	t.Helper()
	if v.assign.len() != v.reads || v.ids.len() != v.reads {
		t.Errorf("half-published view: reads=%d assign=%d ids=%d", v.reads, v.assign.len(), v.ids.len())
		return
	}
	if v.sizes.len() != v.labels || v.repDense.len() != v.labels || v.repID.len() != v.labels {
		t.Errorf("half-published view: labels=%d sizes=%d repDense=%d repID=%d",
			v.labels, v.sizes.len(), v.repDense.len(), v.repID.len())
		return
	}
	sum := 0
	for l := 0; l < v.labels; l++ {
		s := v.sizes.at(l)
		if s < 1 {
			t.Errorf("label %d has size %d", l, s)
			return
		}
		sum += int(s)
		rep := int(v.repDense.at(l))
		if rep >= v.reads {
			t.Errorf("label %d representative dense %d >= reads %d", l, rep, v.reads)
			return
		}
		if v.ids.at(rep) != v.repID.at(l) {
			t.Errorf("label %d repID %q != ids[%d] %q", l, v.repID.at(l), rep, v.ids.at(rep))
			return
		}
		if int(v.assign.at(rep)) != l {
			t.Errorf("label %d representative assigned to %d", l, v.assign.at(rep))
			return
		}
	}
	if sum != v.reads {
		t.Errorf("sum(sizes)=%d != reads=%d", sum, v.reads)
	}
}

// TestQueryConsistencyUnderCommitsAndDrain hammers all five query
// endpoints from concurrent readers while a writer commits batches
// through the sink and then drains the server. Every response must be
// internally consistent and reads must be monotonic per reader — under
// -race this also proves the query path touches no unsynchronized
// state.
func TestQueryConsistencyUnderCommitsAndDrain(t *testing.T) {
	p := testParams()
	st, err := Open(t.TempDir(), p, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Mux())
	t.Cleanup(func() {
		hts.Close()
		st.Close()
	})

	const total, batch = 400, 20
	reads := makeReads(t, p, total)
	var committed atomic.Int64 // reads acked so far; acked => visible
	done := make(chan struct{})

	var wg sync.WaitGroup
	type statsBody struct {
		Stats ServerStats `json:"stats"`
	}
	client := hts.Client()
	get := func(path string, out any) int {
		resp, err := client.Get(hts.URL + path)
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		code := resp.StatusCode
		if out != nil && code == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Errorf("decoding %s: %v", path, err)
			}
		}
		return code
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			lastReads := 0
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 5 {
				case 0: // point lookup of a read guaranteed visible
					n := committed.Load()
					if n == 0 {
						continue
					}
					idx := (int64(worker)*7919 + int64(i)) % n
					var info ReadInfo
					id := fmt.Sprintf("read-%05d", idx)
					if code := get("/v1/reads/"+id, &info); code != http.StatusOK {
						t.Errorf("acked read %s not visible: %d", id, code)
						return
					}
					if info.ID != id || info.Cluster < 0 || info.Representative == "" {
						t.Errorf("inconsistent lookup: %+v", info)
						return
					}
				case 1:
					var body struct {
						Clusters []ClusterInfo `json:"clusters"`
					}
					if get("/v1/clusters", &body) != http.StatusOK {
						return
					}
					sum := 0
					for j, c := range body.Clusters {
						if c.Size < 1 || c.Representative == "" {
							t.Errorf("bad cluster entry %+v", c)
							return
						}
						if j > 0 && body.Clusters[j-1].Size < c.Size {
							t.Error("clusters not sorted by size")
							return
						}
						sum += c.Size
					}
					if sum < lastReads {
						t.Errorf("clusters view went back in time: %d < %d", sum, lastReads)
						return
					}
					lastReads = sum
				case 2: // single-cluster lookup: label 0 exists once anything committed
					if committed.Load() == 0 {
						continue
					}
					var ci ClusterInfo
					if code := get("/v1/clusters/0", &ci); code != http.StatusOK {
						t.Errorf("cluster 0 lookup: %d", code)
						return
					}
					if ci.Size < 1 || ci.Representative == "" {
						t.Errorf("inconsistent cluster: %+v", ci)
						return
					}
				case 3:
					var d Diversity
					if get("/v1/diversity", &d) != http.StatusOK {
						return
					}
					if d.Reads < lastReads || d.Clusters > d.Reads || d.Singletons > d.Clusters ||
						d.Largest > d.Reads || (d.Reads > 0 && d.Largest < 1) {
						t.Errorf("inconsistent diversity: %+v (lastReads %d)", d, lastReads)
						return
					}
					lastReads = d.Reads
				case 4:
					var sb statsBody
					if get("/v1/stats", &sb) != http.StatusOK {
						return
					}
					if sb.Stats.Reads < lastReads || sb.Stats.Clusters > sb.Stats.Reads {
						t.Errorf("inconsistent stats: %+v (lastReads %d)", sb.Stats, lastReads)
						return
					}
					lastReads = sb.Stats.Reads
				}
			}
		}(r)
	}
	// A direct-view checker: the strongest half-published detector, no
	// HTTP in the way.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			checkViewInvariants(t, st.loadView())
		}
	}()

	sink := srv.Sink()
	for i := 0; i < total; i += batch {
		if err := sink.Commit(context.Background(), reads[i:i+batch]); err != nil {
			t.Errorf("commit: %v", err)
			break
		}
		committed.Store(int64(i + batch))
	}
	if err := srv.Drain(); err != nil {
		t.Errorf("drain: %v", err)
	}
	close(done)
	wg.Wait()

	// After the drain the final view must carry the whole corpus.
	v := st.loadView()
	if v.reads != total {
		t.Fatalf("final view has %d reads, want %d", v.reads, total)
	}
	checkViewInvariants(t, v)
}
