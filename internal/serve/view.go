package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"slices"
	"strconv"
	"sync/atomic"
)

// The lock-free read path: the committer is the only writer, and after
// every committed batch it publishes an immutable readView through
// State.view (an atomic.Pointer). A query does one atomic pointer load
// and then walks structures that will never change again — no mutex, no
// per-request copying, and a guaranteed-consistent snapshot (a view is
// published whole or not at all).
//
// The view's arrays are chunked so publication is cheap: assignments,
// read IDs, and representatives are append-only (labels are stable for
// the clusterer's lifetime), so consecutive views share every full
// chunk and the writer only ever touches entries past the previous
// view's length. Cluster sizes mutate in place, so their chunks are
// copied on first write after a publish. Publishing after a batch is
// O(reads in batch + labels touched), never O(corpus).

const (
	viewChunkShift = 12 // 4096 entries per chunk
	viewChunkLen   = 1 << viewChunkShift
	viewChunkMask  = viewChunkLen - 1
)

// chunkSlice is the reader's frozen window onto a chunked array: a
// spine of chunk pointers plus the entry count the view was published
// at. Entries below n are immutable; the builder keeps appending past n
// into shared tail chunks, which readers of this view never index.
type chunkSlice[T any] struct {
	spine []*[viewChunkLen]T
	n     int
}

func (c chunkSlice[T]) len() int { return c.n }

func (c chunkSlice[T]) at(i int) T {
	return c.spine[i>>viewChunkShift][i&viewChunkMask]
}

// appendChunks is the committer-owned builder for append-only columns.
// view() hands out the current spine header and length; because entries
// are write-once and the spine only grows, later appends stay invisible
// to (and race-free against) every published view.
type appendChunks[T any] struct {
	spine []*[viewChunkLen]T
	n     int
}

func (a *appendChunks[T]) append(v T) {
	if a.n>>viewChunkShift == len(a.spine) {
		a.spine = append(a.spine, new([viewChunkLen]T))
	}
	a.spine[a.n>>viewChunkShift][a.n&viewChunkMask] = v
	a.n++
}

func (a *appendChunks[T]) at(i int) T { return a.spine[i>>viewChunkShift][i&viewChunkMask] }

func (a *appendChunks[T]) view() chunkSlice[T] { return chunkSlice[T]{spine: a.spine, n: a.n} }

// cowChunks is the committer-owned builder for the one mutable column,
// cluster sizes. Published views must stay frozen, so the first write
// into a chunk after a publish copies it; view() snapshots the spine
// (a pointer copy, O(labels/4096)) and marks every chunk shared again.
type cowChunks struct {
	spine []*[viewChunkLen]int32
	owned []bool // chunk is private to the builder, safe to write in place
	n     int
}

func (c *cowChunks) ensure(k int) *[viewChunkLen]int32 {
	if !c.owned[k] {
		cp := *c.spine[k]
		c.spine[k] = &cp
		c.owned[k] = true
	}
	return c.spine[k]
}

func (c *cowChunks) append(v int32) {
	if c.n>>viewChunkShift == len(c.spine) {
		c.spine = append(c.spine, new([viewChunkLen]int32))
		c.owned = append(c.owned, true)
	}
	c.ensure(c.n >> viewChunkShift)[c.n&viewChunkMask] = v
	c.n++
}

func (c *cowChunks) inc(i int) {
	c.ensure(i >> viewChunkShift)[i&viewChunkMask]++
}

func (c *cowChunks) at(i int) int32 { return c.spine[i>>viewChunkShift][i&viewChunkMask] }

func (c *cowChunks) view() chunkSlice[int32] {
	spine := make([]*[viewChunkLen]int32, len(c.spine))
	copy(spine, c.spine)
	for k := range c.owned {
		c.owned[k] = false
	}
	return chunkSlice[int32]{spine: spine, n: c.n}
}

// readView is one published epoch of the corpus. Everything a query
// endpoint needs is resolved here — including the label→representative-ID
// table, so no query ever goes back to the translator's locks — and the
// cross-request summaries (Clusters, Diversity, their JSON encodings)
// are memoized per view: computed at most once per epoch, on first use,
// with idempotent atomic publication instead of a sync.Once mutex.
type readView struct {
	assign   chunkSlice[int32]  // dense id -> cluster label
	ids      chunkSlice[string] // dense id -> external read ID
	sizes    chunkSlice[int32]  // label -> cluster size
	repDense chunkSlice[uint32] // label -> dense id of the representative
	repID    chunkSlice[string] // label -> external ID of the representative
	reads    int
	labels   int
	sigBytes int64

	clusters      atomic.Pointer[[]ClusterInfo]
	clustersJSON  atomic.Pointer[[]byte]
	diversity     atomic.Pointer[Diversity]
	diversityJSON atomic.Pointer[[]byte]
}

// clustersList memoizes the size-sorted cluster summary. Racing callers
// may compute it twice; the result is deterministic, so either store
// wins harmlessly. The returned slice is shared — callers must not
// modify it.
func (v *readView) clustersList() []ClusterInfo {
	if p := v.clusters.Load(); p != nil {
		return *p
	}
	out := make([]ClusterInfo, v.labels)
	for i := range out {
		out[i] = ClusterInfo{Cluster: i, Size: int(v.sizes.at(i)), Representative: v.repID.at(i)}
	}
	slices.SortStableFunc(out, func(a, b ClusterInfo) int { return b.Size - a.Size })
	v.clusters.Store(&out)
	return out
}

// clustersBody memoizes the full /v1/clusters response body.
func (v *readView) clustersBody() []byte {
	if p := v.clustersJSON.Load(); p != nil {
		return *p
	}
	body := encodeJSON(map[string]any{"clusters": v.clustersList()})
	v.clustersJSON.Store(&body)
	return body
}

// diversitySummary memoizes the community summary for this epoch.
func (v *readView) diversitySummary() Diversity {
	if p := v.diversity.Load(); p != nil {
		return *p
	}
	d := Diversity{Reads: v.reads, Clusters: v.labels}
	if v.reads > 0 {
		n := float64(v.reads)
		for i := 0; i < v.labels; i++ {
			s := v.sizes.at(i)
			if s == 1 {
				d.Singletons++
			}
			if int(s) > d.Largest {
				d.Largest = int(s)
			}
			p := float64(s) / n
			d.Shannon -= p * math.Log(p)
			d.Simpson += p * p
		}
	}
	v.diversity.Store(&d)
	return d
}

// diversityBody memoizes the /v1/diversity response body.
func (v *readView) diversityBody() []byte {
	if p := v.diversityJSON.Load(); p != nil {
		return *p
	}
	body := encodeJSON(v.diversitySummary())
	v.diversityJSON.Store(&body)
	return body
}

// encodeJSON matches json.Encoder output (trailing newline) for the
// memoized response bodies.
func encodeJSON(val any) []byte {
	body, err := json.Marshal(val)
	if err != nil {
		// Every memoized value is a plain struct/map of encodable
		// fields; failure here is a programming error.
		panic("serve: encoding memoized view summary: " + err.Error())
	}
	return append(body, '\n')
}

// dumpTSV streams "read_id<TAB>cluster" rows in dense (commit) order
// from this pinned view. Row resolution cannot fail — every dense ID in
// the view has its external ID resolved at commit time — so the only
// possible error is the writer's own, and the rows written before it
// are always a clean prefix of the full dump.
func (v *readView) dumpTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var num [20]byte
	for i := 0; i < v.reads; i++ {
		if _, err := bw.WriteString(v.ids.at(i)); err != nil {
			return err
		}
		bw.WriteByte('\t')
		bw.Write(strconv.AppendInt(num[:0], int64(v.assign.at(i)), 10))
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// denseIndex maps external read IDs to dense IDs without locks: an
// insert-only open-addressing table whose entries and table pointer are
// published atomically. The committer is the only writer (inserts and
// growth need no CAS); readers probe whatever table they load — an old
// table is still correct for every read it covers, and a key inserted
// concurrently with a lookup may legitimately miss, exactly like a
// lookup racing a commit under the old mutex.
type denseIndex struct {
	table atomic.Pointer[indexTable]
	count int // writer-owned
}

type indexTable struct {
	mask  uint64
	slots []atomic.Pointer[indexEntry]
}

type indexEntry struct {
	key   string
	dense uint32
}

func newIndexTable(size int) *indexTable {
	return &indexTable{mask: uint64(size - 1), slots: make([]atomic.Pointer[indexEntry], size)}
}

func newDenseIndex(capacityHint int) *denseIndex {
	size := 1024
	for size < capacityHint*2 {
		size <<= 1
	}
	d := &denseIndex{}
	d.table.Store(newIndexTable(size))
	return d
}

func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// lookup is safe from any goroutine.
func (d *denseIndex) lookup(key string) (uint32, bool) {
	t := d.table.Load()
	for i := fnv1a64(key) & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i].Load()
		if e == nil {
			return 0, false
		}
		if e.key == key {
			return e.dense, true
		}
	}
}

// insert must only be called by the committer; key must not already be
// present.
func (d *denseIndex) insert(key string, dense uint32) {
	t := d.table.Load()
	if uint64(d.count+1)*4 > (t.mask+1)*3 { // grow at 75% load
		t = d.grow(t)
	}
	t.put(&indexEntry{key: key, dense: dense})
	d.count++
}

func (t *indexTable) put(e *indexEntry) {
	for i := fnv1a64(e.key) & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i].Load() == nil {
			t.slots[i].Store(e)
			return
		}
	}
}

// grow re-inserts every entry into a table twice the size and publishes
// it. Readers holding the old table keep resolving everything inserted
// before the growth.
func (d *denseIndex) grow(old *indexTable) *indexTable {
	next := newIndexTable(int(old.mask+1) * 2)
	for i := range old.slots {
		if e := old.slots[i].Load(); e != nil {
			next.put(e)
		}
	}
	d.table.Store(next)
	return next
}
