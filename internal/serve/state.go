// Package serve is the always-on clustering service state: an
// incrementally clustered corpus of minwise signatures that survives
// crashes. Reads are acknowledged only after their WAL record is
// fsynced; assignments are a pure function of commit order (the online
// Algorithm 1 over the signature store), so recovery — restore the last
// content-addressed snapshot, replay the WAL tail, re-run the
// incremental clusterer over dense IDs 0..n-1 — reproduces every
// acknowledged assignment bit-identically.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/ingest"
	"github.com/metagenomics/mrmcminh/internal/minhash"
	"github.com/metagenomics/mrmcminh/internal/sigstore"
)

// Params fixes the sketch and clustering geometry of a service. Every
// parameter changes assignments, so the manifest records all of them
// and Open refuses to resume a data directory written under different
// params — silently different clusters would be worse than an error.
type Params struct {
	K         int               `json:"k"`
	NumHashes int               `json:"num_hashes"`
	Seed      int64             `json:"seed"`
	Canonical bool              `json:"canonical"`
	Theta     float64           `json:"theta"`
	Bits      int               `json:"bits"`
	Estimator minhash.Estimator `json:"estimator"`
	UseLSH    bool              `json:"use_lsh"`
}

// Validate rejects unusable geometry before any state is created.
func (p Params) Validate() error {
	if p.K < 1 || p.K > 31 {
		return fmt.Errorf("serve: k must be in [1,31], got %d", p.K)
	}
	if p.NumHashes < 1 {
		return fmt.Errorf("serve: num hashes must be >= 1, got %d", p.NumHashes)
	}
	if p.Theta < 0 || p.Theta > 1 {
		return fmt.Errorf("serve: theta must be in [0,1], got %v", p.Theta)
	}
	if p.Bits < 0 || p.Bits > 16 {
		return fmt.Errorf("serve: bits must be in [0,16], got %d", p.Bits)
	}
	return nil
}

const (
	manifestFile = "MANIFEST.json"
	walFile      = "wal.log"
)

// manifest is the checkpoint directory's metadata: which snapshot blob
// is current, its content hash, and the params that produced it.
type manifest struct {
	Params   Params `json:"params"`
	Snapshot string `json:"snapshot"` // file name, content-addressed
	SHA256   string `json:"sha256"`   // hex of the snapshot blob
	Reads    int    `json:"reads"`
}

// Ack is the commit result for one submitted read.
type Ack struct {
	ID        string `json:"id"`
	Read      int    `json:"read"`    // dense ID
	Cluster   int    `json:"cluster"` // assigned label
	Duplicate bool   `json:"duplicate,omitempty"`
}

// State is the clustered corpus plus its durability machinery. Commit
// methods must be called from a single goroutine (the server's
// committer); query methods are safe from any goroutine and take no
// locks — they load the latest published readView (one atomic pointer
// load) and walk its immutable arrays.
type State struct {
	params Params
	dir    string
	store  *sigstore.Store
	live   *liveSource
	inc    *cluster.IncrementalSource
	wal    *WAL
	inj    *faults.Injector

	// Committer-owned builders: chunked columns the published views
	// window into. Only the single committer goroutine touches them.
	assignB   appendChunks[int32]  // dense id -> cluster label
	idsB      appendChunks[string] // dense id -> external read ID
	sizesB    cowChunks            // label -> cluster size
	repDenseB appendChunks[uint32] // label -> dense id of the representative
	repIDB    appendChunks[string] // label -> external ID of the representative

	view  atomic.Pointer[readView] // the epoch every query reads
	index *denseIndex              // lock-free external ID -> dense ID

	acked      atomic.Int64 // reads durably acknowledged (excludes duplicates)
	duplicates atomic.Int64
	recovered  int64 // reads present at Open (snapshot + WAL tail)
}

// liveSource is the growing cluster.SigSource the incremental clusterer
// runs over: append-only borrowed rows from the store. Only the
// committer goroutine touches it — the clusterer and the appender are
// the same single thread, so no locking (unlike the store underneath,
// which stays safe for concurrent snapshot readers).
type liveSource struct {
	est       minhash.Estimator
	bits      int
	numHashes int
	sigs      []minhash.Signature
	prep      []minhash.Prepared
	packed    []minhash.BBitSignature
}

func (l *liveSource) Len() int {
	if l.bits == 0 {
		return len(l.sigs)
	}
	return len(l.packed)
}
func (l *liveSource) NumHashes() int { return l.numHashes }
func (l *liveSource) Empty(i int) bool {
	if l.bits == 0 {
		return l.sigs[i].Empty()
	}
	return l.packed[i].Empty()
}
func (l *liveSource) Similarity(i, j int) float64 {
	if l.bits == 0 {
		return l.est.SimilarityPrepared(l.prep[i], l.prep[j])
	}
	return l.packed[i].SimilarityFast(l.packed[j])
}
func (l *liveSource) BandHash(i, band, rows int) uint64 {
	if l.bits == 0 {
		return minhash.BandHash(l.sigs[i], band, rows)
	}
	return l.packed[i].BandHash(band, rows)
}

// appendRow borrows the store row for dense and appends it as source
// element dense (rows arrive in dense order, so indices align).
func (l *liveSource) appendRow(st *sigstore.Store, dense uint32) error {
	if l.bits == 0 {
		sigs, err := st.GetInto(l.sigs, []uint32{dense})
		if err != nil {
			return err
		}
		l.sigs = sigs
		l.prep = append(l.prep, minhash.Prepare(sigs[len(sigs)-1]))
		return nil
	}
	packed, err := st.PackedInto(l.packed, []uint32{dense})
	if err != nil {
		return err
	}
	l.packed = packed
	return nil
}

// Open builds (or recovers) service state in dir. A directory that
// already holds a manifest or WAL refuses to open without resume —
// silently restarting fresh over durable data would discard
// acknowledged reads. inj may be nil (no fault injection).
func Open(dir string, p Params, resume bool, inj *faults.Injector) (*State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(dir, manifestFile)
	walPath := filepath.Join(dir, walFile)
	hasManifest := fileExists(manifestPath)
	walInfo, walErr := os.Stat(walPath)
	hasWAL := walErr == nil && walInfo.Size() > 0
	if (hasManifest || hasWAL) && !resume {
		return nil, fmt.Errorf("serve: data dir %s holds previous state; pass resume to recover it", dir)
	}

	st := &State{params: p, dir: dir, inj: inj}
	if hasManifest {
		m, store, err := loadCheckpoint(dir, manifestPath)
		if err != nil {
			return nil, err
		}
		if m.Params != p {
			return nil, fmt.Errorf("serve: data dir params %+v differ from requested %+v", m.Params, p)
		}
		st.store = store
	} else {
		store, err := sigstore.New(sigstore.Config{NumHashes: p.NumHashes, Bits: p.Bits})
		if err != nil {
			return nil, err
		}
		st.store = store
	}

	st.live = &liveSource{est: p.Estimator, bits: p.Bits, numHashes: p.NumHashes}
	opt := cluster.GreedyOptions{Threshold: p.Theta, Estimator: p.Estimator}
	var geom *cluster.LSHOptions
	if p.UseLSH {
		g := cluster.GeometryFor(p.NumHashes, p.Theta)
		geom = &g
	}
	inc, err := cluster.NewIncrementalSource(st.live, opt, geom)
	if err != nil {
		return nil, err
	}
	st.inc = inc
	st.index = newDenseIndex(st.store.Len())

	// Replay the snapshot corpus: assignments are a pure function of
	// dense order, so re-running the incremental clusterer over
	// 0..Len-1 reproduces every label the pre-crash process handed out.
	for dense := 0; dense < st.store.Len(); dense++ {
		if err := st.applyDense(uint32(dense)); err != nil {
			return nil, fmt.Errorf("serve: replaying snapshot read %d: %w", dense, err)
		}
	}

	// Replay the WAL tail: reads acked after the snapshot. Replay is
	// idempotent — a record whose ID the snapshot already holds (the
	// crash window between WAL sync and snapshot write) is skipped.
	durable, _, err := ReplayWAL(walPath, func(id string, sig minhash.Signature) error {
		if _, ok := st.store.Translator().Lookup(id); ok {
			return nil
		}
		_, err := st.applyRead(id, sig)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("serve: WAL replay: %w", err)
	}
	st.recovered = int64(st.store.Len())
	st.publish()

	wal, err := OpenWAL(walPath, durable)
	if err != nil {
		return nil, err
	}
	st.wal = wal

	// Fold the replayed WAL tail into a fresh snapshot so the next
	// crash replays a short log, and so a recovered directory is
	// immediately re-crash-safe.
	if hasWAL || hasManifest {
		if err := st.Checkpoint(); err != nil {
			st.wal.Close()
			return nil, err
		}
	}
	return st, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// loadCheckpoint reads the manifest and its snapshot, verifying the
// content hash before restoring.
func loadCheckpoint(dir, manifestPath string) (*manifest, *sigstore.Store, error) {
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("serve: manifest: %w", err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot: %w", err)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != m.SHA256 {
		return nil, nil, fmt.Errorf("serve: snapshot %s does not match manifest hash", m.Snapshot)
	}
	store, err := sigstore.Restore(blob)
	if err != nil {
		return nil, nil, err
	}
	if store.Len() != m.Reads {
		return nil, nil, fmt.Errorf("serve: snapshot holds %d reads, manifest says %d", store.Len(), m.Reads)
	}
	return &m, store, nil
}

// applyRead translates, stores, and clusters one new read. Callers must
// have established the ID is not yet stored.
func (st *State) applyRead(id string, sig minhash.Signature) (int, error) {
	dense := st.store.Translator().Translate(id)
	if int(dense) != st.live.Len() {
		return 0, fmt.Errorf("serve: dense ID %d out of commit order (have %d rows)", dense, st.live.Len())
	}
	if err := st.store.Put(dense, sig); err != nil {
		return 0, err
	}
	return st.applyDenseClustered(dense, id)
}

// applyDense clusters an already-stored read (recovery replay), fetching
// its external ID from the restored translator.
func (st *State) applyDense(dense uint32) error {
	id, ok := st.store.Translator().Key(dense)
	if !ok {
		return fmt.Errorf("serve: dense ID %d has no key", dense)
	}
	_, err := st.applyDenseClustered(dense, id)
	return err
}

func (st *State) applyDenseClustered(dense uint32, id string) (int, error) {
	if err := st.live.appendRow(st.store, dense); err != nil {
		return 0, err
	}
	label, err := st.inc.Add(int(dense))
	if err != nil {
		return 0, err
	}
	st.assignB.append(int32(label))
	st.idsB.append(id)
	if label == st.sizesB.n {
		st.sizesB.append(0)
		st.repDenseB.append(dense)
		st.repIDB.append(id)
	}
	st.sizesB.inc(label)
	st.index.insert(id, dense)
	return label, nil
}

// publish freezes the builders into a new readView and swaps it in for
// every subsequent query. Called by the committer after each batch (and
// once at Open): O(reads in batch + labels touched), never O(corpus).
func (st *State) publish() {
	v := &readView{
		assign:   st.assignB.view(),
		ids:      st.idsB.view(),
		sizes:    st.sizesB.view(),
		repDense: st.repDenseB.view(),
		repID:    st.repIDB.view(),
		sigBytes: st.store.ResidentBytes(),
	}
	v.reads = v.assign.len()
	v.labels = v.sizes.len()
	st.view.Store(v)
}

// loadView pins the current epoch for a query.
func (st *State) loadView() *readView { return st.view.Load() }

// CommitBatch durably commits a batch: WAL-append every new read, one
// group fsync, then apply to the store and clusterer. Acks are returned
// in input order; duplicates (by read ID) resolve to the existing
// assignment without re-logging. After the batch is acknowledged the
// fault injector may demand a service crash — the chaos harness's kill
// point — returned as *faults.ServiceCrashError.
func (st *State) CommitBatch(batch []ingest.Sketched) ([]Ack, error) {
	inBatch := make(map[string]bool, len(batch))
	var fresh int64
	for _, s := range batch {
		if _, ok := st.index.lookup(s.ID); ok || inBatch[s.ID] {
			continue
		}
		inBatch[s.ID] = true
		if err := st.wal.Append(s.ID, s.Sig); err != nil {
			return nil, err
		}
	}
	if err := st.wal.Sync(); err != nil {
		return nil, fmt.Errorf("serve: WAL sync: %w", err)
	}
	// Everything below the sync barrier is recoverable: if we crash
	// mid-apply, Open replays these records idempotently.
	acks := make([]Ack, len(batch))
	for i, s := range batch {
		if dense, ok := st.index.lookup(s.ID); ok {
			st.duplicates.Add(1)
			acks[i] = Ack{ID: s.ID, Read: int(dense), Cluster: int(st.assignB.at(int(dense))), Duplicate: true}
			continue
		}
		label, err := st.applyRead(s.ID, s.Sig)
		if err != nil {
			return nil, err
		}
		dense, _ := st.index.lookup(s.ID)
		acks[i] = Ack{ID: s.ID, Read: int(dense), Cluster: label}
		fresh++
	}
	st.publish()
	total := st.acked.Add(fresh)
	if st.inj.ServiceCrashNow(total + st.recovered) {
		return acks, &faults.ServiceCrashError{Acked: total + st.recovered}
	}
	return acks, nil
}

// Checkpoint writes a content-addressed snapshot plus manifest (each
// via tmp+rename) and truncates the WAL the snapshot absorbed. The
// store must be quiescent — the committer calls this, never a request
// goroutine.
func (st *State) Checkpoint() error {
	blob := st.store.Snapshot()
	sum := sha256.Sum256(blob)
	name := fmt.Sprintf("snapshot-%s.bin", hex.EncodeToString(sum[:8]))
	if err := writeFileAtomic(filepath.Join(st.dir, name), blob); err != nil {
		return err
	}
	m := manifest{Params: st.params, Snapshot: name, SHA256: hex.EncodeToString(sum[:]), Reads: st.store.Len()}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(st.dir, manifestFile), raw); err != nil {
		return err
	}
	if err := st.wal.Truncate(); err != nil {
		return err
	}
	// Old snapshots are unreferenced once the manifest points elsewhere.
	entries, err := os.ReadDir(st.dir)
	if err == nil {
		for _, e := range entries {
			n := e.Name()
			if strings.HasPrefix(n, "snapshot-") && strings.HasSuffix(n, ".bin") && n != name {
				os.Remove(filepath.Join(st.dir, n))
			}
		}
	}
	return nil
}

// writeFileAtomic writes via a temp file + rename so readers never see
// a torn file, then fsyncs the data before the rename publishes it.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Close flushes and closes the WAL. It does NOT checkpoint — callers
// decide whether this shutdown is graceful (Checkpoint first) or a
// simulated crash (don't).
func (st *State) Close() error { return st.wal.Close() }

// ---- queries (safe from any goroutine; zero locks) ----
//
// Every query loads the latest readView once and answers entirely from
// it: no mutex, no translator shard locks, no per-request copies, and
// a consistent epoch even while the committer keeps publishing.

// ReadInfo answers "where did my read go".
type ReadInfo struct {
	ID             string `json:"id"`
	Read           int    `json:"read"`
	Cluster        int    `json:"cluster"`
	Representative string `json:"representative"`
}

// Assignment looks a read up by external ID.
func (st *State) Assignment(id string) (ReadInfo, bool) {
	v := st.loadView()
	dense, ok := st.index.lookup(id)
	if !ok || int(dense) >= v.reads {
		// Unknown, or indexed mid-commit but not yet published: a read
		// becomes visible only once its batch's view is up.
		return ReadInfo{}, false
	}
	label := v.assign.at(int(dense))
	return ReadInfo{ID: id, Read: int(dense), Cluster: int(label), Representative: v.repID.at(int(label))}, true
}

// ClusterInfo summarizes one cluster.
type ClusterInfo struct {
	Cluster        int    `json:"cluster"`
	Size           int    `json:"size"`
	Representative string `json:"representative"`
}

// Cluster returns one cluster's summary.
func (st *State) Cluster(label int) (ClusterInfo, bool) {
	v := st.loadView()
	if label < 0 || label >= v.labels {
		return ClusterInfo{}, false
	}
	return ClusterInfo{Cluster: label, Size: int(v.sizes.at(label)), Representative: v.repID.at(label)}, true
}

// Clusters lists every cluster, largest first (ties by label). The
// slice is the view's memoized summary, shared across callers — treat
// it as read-only.
func (st *State) Clusters() []ClusterInfo {
	return st.loadView().clustersList()
}

// Diversity summarizes the community structure the paper's pipeline
// reports: cluster count as species richness plus Shannon and Simpson
// indices over cluster sizes.
type Diversity struct {
	Reads      int     `json:"reads"`
	Clusters   int     `json:"clusters"`
	Singletons int     `json:"singletons"`
	Largest    int     `json:"largest"`
	Shannon    float64 `json:"shannon"`
	Simpson    float64 `json:"simpson"`
}

// Diversity returns the current epoch's memoized summary.
func (st *State) Diversity() Diversity {
	return st.loadView().diversitySummary()
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Reads      int   `json:"reads"`
	Clusters   int   `json:"clusters"`
	Acked      int64 `json:"acked"`
	Recovered  int64 `json:"recovered"`
	Duplicates int64 `json:"duplicates"`
	SigBytes   int64 `json:"sig_bytes"`
}

// Stats snapshots the counters.
func (st *State) Stats() Stats {
	v := st.loadView()
	return Stats{
		Reads:      v.reads,
		Clusters:   v.labels,
		Acked:      st.acked.Load(),
		Recovered:  st.recovered,
		Duplicates: st.duplicates.Load(),
		SigBytes:   v.sigBytes,
	}
}

// DumpTSV writes "read_id<TAB>cluster" rows in dense (commit) order —
// the artifact the chaos harness compares across crash and recovery.
// It streams straight from the pinned view: no full-corpus copy, and
// row resolution cannot fail mid-stream.
func (st *State) DumpTSV(w io.Writer) error {
	return st.loadView().dumpTSV(w)
}
