package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/ingest"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// ServerConfig tunes the request path. Zero values take defaults.
type ServerConfig struct {
	// MaxInFlight bounds concurrently admitted submit requests; beyond
	// it the server sheds load with 503 + Retry-After instead of
	// queueing without bound (default 64).
	MaxInFlight int
	// QueueDepth is the committer's batch queue capacity. A full queue
	// sheds HTTP submits (503) and backpressures pull ingesters
	// (blocking send) — the two intake disciplines (default 16).
	QueueDepth int
	// RequestTimeout caps a submit request's time in the admission +
	// commit pipeline (default 10s). Exceeding it returns 503 and
	// counts a deadline miss; the batch itself may still commit.
	RequestTimeout time.Duration
	// MaxBatch bounds reads per submit request (default 1024).
	MaxBatch int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// ServerStats extends the state counters with request-path counters.
// Accepted counts only non-duplicate reads admitted over HTTP, so for a
// server fed exclusively by HTTP submits, accepted == acked.
type ServerStats struct {
	Stats
	Accepted         int64 `json:"accepted"`
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	WriteErrors      int64 `json:"write_errors"`
	InFlight         int64 `json:"in_flight"`
	Draining         bool  `json:"draining"`
}

type commitResult struct {
	acks []Ack
	err  error
}

type commitReq struct {
	batch []ingest.Sketched
	done  chan commitResult
}

// Server owns the single committer goroutine and the HTTP surface. All
// mutation funnels through commitCh, so the state's single-writer
// contract holds no matter how many intake paths run concurrently.
type Server struct {
	st       *State
	cfg      ServerConfig
	sketcher *minhash.Sketcher

	commitCh      chan *commitReq
	committerDone chan struct{}

	sendMu   sync.RWMutex // draining flag vs channel close
	draining bool

	inFlight         atomic.Int64
	accepted         atomic.Int64
	shed             atomic.Int64
	deadlineExceeded atomic.Int64
	writeErrors      atomic.Int64
	fatal            atomic.Pointer[fatalErr]

	// Latency measures submit requests end to end (admission through
	// durable ack), the histogram behind /v1/stats and BENCH_serving.
	Latency metrics.LatencyHistogram
}

type fatalErr struct{ err error }

// NewServer wraps st and starts the committer.
func NewServer(st *State, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	sk, err := minhash.NewSketcher(st.params.NumHashes, st.params.K, st.params.Seed)
	if err != nil {
		return nil, err
	}
	s := &Server{
		st:            st,
		cfg:           cfg,
		sketcher:      sk,
		commitCh:      make(chan *commitReq, cfg.QueueDepth),
		committerDone: make(chan struct{}),
	}
	go s.committer()
	return s, nil
}

// committer is the single goroutine allowed to mutate state. A fatal
// commit error (injected service crash, disk failure) is latched; every
// queued and future request fails fast with it.
func (s *Server) committer() {
	defer close(s.committerDone)
	for req := range s.commitCh {
		if f := s.fatal.Load(); f != nil {
			req.done <- commitResult{err: f.err}
			continue
		}
		acks, err := s.st.CommitBatch(req.batch)
		if err != nil {
			s.fatal.Store(&fatalErr{err: err})
		}
		req.done <- commitResult{acks: acks, err: err}
	}
}

// Fatal returns the latched fatal commit error, if any.
func (s *Server) Fatal() error {
	if f := s.fatal.Load(); f != nil {
		return f.err
	}
	return nil
}

// errDraining rejects intake during shutdown.
var errDraining = errors.New("serve: draining")

// enqueue hands a batch to the committer. block selects the discipline:
// pull ingesters block (backpressure), HTTP submits don't (load shed).
func (s *Server) enqueue(ctx context.Context, batch []ingest.Sketched, block bool) (*commitReq, error) {
	req := &commitReq{batch: batch, done: make(chan commitResult, 1)}
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.draining {
		return nil, errDraining
	}
	if block {
		select {
		case s.commitCh <- req:
			return req, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	select {
	case s.commitCh <- req:
		return req, nil
	default:
		return nil, errShed
	}
}

var errShed = errors.New("serve: commit queue full")

// Sink returns the ingest.Sink pull sources commit through: blocking
// enqueue (the bounded queue IS the backpressure), then wait for the
// durable ack.
func (s *Server) Sink() ingest.Sink {
	return ingest.SinkFunc(func(ctx context.Context, batch []ingest.Sketched) error {
		req, err := s.enqueue(ctx, batch, true)
		if err != nil {
			return err
		}
		select {
		case res := <-req.done:
			return res.err
		case <-ctx.Done():
			return ctx.Err()
		}
	})
}

// Drain stops intake, waits for the committer to finish every queued
// batch, then checkpoints. Every read acked before Drain returns is in
// the snapshot. Safe to call once.
func (s *Server) Drain() error {
	s.sendMu.Lock()
	if s.draining {
		s.sendMu.Unlock()
		return errors.New("serve: already draining")
	}
	s.draining = true
	close(s.commitCh)
	s.sendMu.Unlock()
	<-s.committerDone
	if err := s.Fatal(); err != nil {
		return err
	}
	return s.st.Checkpoint()
}

// ---- HTTP surface ----

type submitRead struct {
	ID  string `json:"id"`
	Seq string `json:"seq"`
}

type submitRequest struct {
	Reads []submitRead `json:"reads"`
}

type submitResponse struct {
	Results []Ack `json:"results"`
}

// writeJSON encodes the response body. An encode failure after the
// status line is gone cannot be reported to the client, but it must not
// vanish either: log it and count it (surfaced as write_errors in
// /v1/stats).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.writeErrors.Add(1)
		log.Printf("serve: writing %T response: %v", v, err)
	}
}

// writeBody streams pre-encoded bytes with the same log-and-count
// discipline.
func (s *Server) writeBody(w http.ResponseWriter, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Add(1)
		log.Printf("serve: writing %s response: %v", contentType, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}

// shedResponse is the load-shedding reply: 503 with a Retry-After so
// well-behaved clients back off instead of hammering.
func (s *Server) shedResponse(w http.ResponseWriter, msg string) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusServiceUnavailable, msg)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if f := s.Fatal(); f != nil {
		s.writeError(w, http.StatusServiceUnavailable, f.Error())
		return
	}
	// Admission control before reading the body: a saturated server
	// sheds cheaply.
	if n := s.inFlight.Add(1); n > int64(s.cfg.MaxInFlight) {
		s.inFlight.Add(-1)
		s.shedResponse(w, "too many in-flight submissions")
		return
	}
	defer s.inFlight.Add(-1)

	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Reads) == 0 {
		s.writeError(w, http.StatusBadRequest, "no reads")
		return
	}
	if len(req.Reads) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Reads), s.cfg.MaxBatch))
		return
	}
	for _, rd := range req.Reads {
		if rd.ID == "" {
			s.writeError(w, http.StatusBadRequest, "read with empty id")
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Sketch inline on the request goroutine: the CPU-heavy part scales
	// with HTTP concurrency, while the committer stays a pure writer.
	ex := &kmer.Extractor{K: s.st.params.K, Canonical: s.st.params.Canonical}
	var kms []uint64
	batch := make([]ingest.Sketched, len(req.Reads))
	for i, rd := range req.Reads {
		kms = ex.SliceInto(kms[:0], []byte(rd.Seq))
		batch[i] = ingest.Sketched{ID: rd.ID, Sig: s.sketcher.SketchInto(nil, kms)}
	}

	cr, err := s.enqueue(ctx, batch, false)
	switch {
	case err == errShed:
		s.shedResponse(w, "commit queue full")
		return
	case err == errDraining:
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	select {
	case res := <-cr.done:
		if res.err != nil {
			if !errors.As(res.err, new(*faults.ServiceCrashError)) {
				s.writeError(w, http.StatusInternalServerError, res.err.Error())
				return
			}
			// An injected crash still acked the batch durably first.
		}
		// Count only non-duplicate acks: accepted tracks reads admitted
		// into the corpus, so accepted == acked for HTTP-only intake
		// (duplicates are reported separately).
		var fresh int64
		for _, a := range res.acks {
			if !a.Duplicate {
				fresh++
			}
		}
		s.accepted.Add(fresh)
		s.Latency.Observe(time.Since(start))
		s.writeJSON(w, http.StatusOK, submitResponse{Results: res.acks})
	case <-ctx.Done():
		s.deadlineExceeded.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "deadline exceeded waiting for commit")
	}
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.st.Assignment(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown read id")
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	// The body is memoized on the pinned view: encoded once per epoch,
	// shared by every request until the next commit publishes.
	s.writeBody(w, "application/json", s.st.loadView().clustersBody())
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	label, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "cluster id must be an integer")
		return
	}
	info, ok := s.st.Cluster(label)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown cluster")
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDiversity(w http.ResponseWriter, r *http.Request) {
	s.writeBody(w, "application/json", s.st.loadView().diversityBody())
}

// ServerStatsSnapshot collects the full counter set.
func (s *Server) ServerStatsSnapshot() ServerStats {
	s.sendMu.RLock()
	draining := s.draining
	s.sendMu.RUnlock()
	return ServerStats{
		Stats:            s.st.Stats(),
		Accepted:         s.accepted.Load(),
		Shed:             s.shed.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
		WriteErrors:      s.writeErrors.Load(),
		InFlight:         s.inFlight.Load(),
		Draining:         draining,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.ServerStatsSnapshot()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"stats":  stats,
		"p50_ms": float64(s.Latency.Quantile(0.50)) / float64(time.Millisecond),
		"p99_ms": float64(s.Latency.Quantile(0.99)) / float64(time.Millisecond),
	})
}

func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	// Pin one view before the first byte goes out: every row resolves
	// from immutable arrays, so resolution cannot fail mid-stream. The
	// only possible error is the client's connection dying — never
	// append error text to a 200 body (this TSV is the exact artifact
	// the chaos harness compares byte-for-byte), just log and count.
	v := s.st.loadView()
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := v.dumpTSV(w); err != nil {
		s.writeErrors.Add(1)
		log.Printf("serve: streaming assignments dump: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.Fatal(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.sendMu.RLock()
	draining := s.draining
	s.sendMu.RUnlock()
	if draining {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if err := s.Fatal(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Mux wires every endpoint (method + wildcard patterns).
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reads", s.handleSubmit)
	mux.HandleFunc("GET /v1/reads/{id}", s.handleRead)
	mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	mux.HandleFunc("GET /v1/clusters/{id}", s.handleCluster)
	mux.HandleFunc("GET /v1/diversity", s.handleDiversity)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/assignments", s.handleAssignments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// NewHTTPServer wraps h in an http.Server with the timeouts a
// public-facing intake server needs. Without a read deadline, a
// slowloris client that trickles header or body bytes holds its
// connection — and, once the handler starts, an admission slot —
// indefinitely, wedging intake for everyone else. readTimeout caps the
// whole request read (headers + body); 0 takes the 30s default.
// WriteTimeout stays unset on purpose: /v1/assignments streams the
// whole corpus and /debug/pprof/profile runs for 30s by design.
func NewHTTPServer(h http.Handler, readTimeout time.Duration) *http.Server {
	if readTimeout <= 0 {
		readTimeout = 30 * time.Second
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}
