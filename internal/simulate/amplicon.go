package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// The 16S rRNA gene model: a ~1500 bp marker with conserved regions shared
// across all taxa (primer sites) interleaved with hypervariable regions
// (V1–V9-like) that differ between taxa. Amplicon sequencing reads a
// fragment anchored at a conserved primer — short 454 reads (~60–100 bp)
// covering one or two variable regions, which is exactly the regime of the
// paper's 16S benchmarks.

// SixteenSModel holds the shared conserved scaffolding of a 16S gene family.
type SixteenSModel struct {
	conserved [][]byte // C0 .. Cn segments shared by every taxon
	varLens   []int    // lengths of variable segments between them
	seed      int64
}

// New16SModel builds a gene model with the given number of variable
// regions. Region sizes follow the real 16S layout loosely: ~100 bp
// conserved stretches alternating with 60–150 bp variable stretches.
func New16SModel(variableRegions int, seed int64) (*SixteenSModel, error) {
	if variableRegions < 1 {
		return nil, fmt.Errorf("simulate: need at least one variable region")
	}
	rng := rand.New(rand.NewSource(seed))
	m := &SixteenSModel{seed: seed}
	for i := 0; i <= variableRegions; i++ {
		c := make([]byte, 80+rng.Intn(40))
		for j := range c {
			c[j] = "ACGT"[rng.Intn(4)]
		}
		m.conserved = append(m.conserved, c)
	}
	for i := 0; i < variableRegions; i++ {
		m.varLens = append(m.varLens, 60+rng.Intn(90))
	}
	return m, nil
}

// Gene generates the full-length 16S gene of one taxon: shared conserved
// segments with taxon-specific variable regions. Taxa with nearby ids get
// correlated variable regions (sister taxa), stressing clustering at
// OTU-like thresholds.
func (m *SixteenSModel) Gene(taxon int) []byte {
	rng := rand.New(rand.NewSource(m.seed*1000003 + int64(taxon)))
	var gene []byte
	gene = append(gene, m.conserved[0]...)
	for i, vl := range m.varLens {
		v := make([]byte, vl)
		for j := range v {
			v[j] = "ACGT"[rng.Intn(4)]
		}
		gene = append(gene, v...)
		gene = append(gene, m.conserved[i+1]...)
	}
	return gene
}

// AmpliconOptions controls 16S read simulation.
type AmpliconOptions struct {
	// Taxa is the number of distinct 16S genes (the paper's simulated set
	// derives from 43 genomes).
	Taxa int
	// ReadsPerTaxon draws this many amplicons per taxon on average; the
	// actual counts follow the abundance skew.
	ReadsPerTaxon int
	// ReadLength is the amplicon fragment length (Sogin-style ~60 bp).
	ReadLength int
	// ErrorRate is the *maximum* per-base sequencing error: each read
	// draws its own rate uniformly from [0, ErrorRate], matching the
	// paper's "reads upto 3% and 5% errors with respect to reference"
	// phrasing — pyrosequencing error varies per read, and low-error reads
	// form the dense cluster cores.
	ErrorRate float64
	// Skew makes abundances uneven: 0 = uniform; 1 = strongly skewed
	// (rare-biosphere tail as in the environmental samples).
	Skew float64
	// Seed drives everything.
	Seed int64
}

// Validate rejects unusable options.
func (o AmpliconOptions) Validate() error {
	if o.Taxa < 1 {
		return fmt.Errorf("simulate: need at least one taxon")
	}
	if o.ReadsPerTaxon < 1 {
		return fmt.Errorf("simulate: need at least one read per taxon")
	}
	if o.ReadLength < 10 {
		return fmt.Errorf("simulate: amplicon read length %d too short", o.ReadLength)
	}
	if o.ErrorRate < 0 || o.ErrorRate > 1 {
		return fmt.Errorf("simulate: error rate %v out of [0,1]", o.ErrorRate)
	}
	if o.Skew < 0 || o.Skew > 1 {
		return fmt.Errorf("simulate: skew %v out of [0,1]", o.Skew)
	}
	return nil
}

// ampliconPrimerLen is how much of the conserved primer region each
// amplicon read retains before entering the variable region.
const ampliconPrimerLen = 15

// Amplicons simulates a 16S sample: reads are anchored at the conserved
// primer site at the end of the first conserved region (as in real 454
// amplicon sequencing, where every read starts at the PCR primer), so
// same-taxon reads overlap almost completely while different taxa diverge
// in the variable region. Returns reads and index-aligned taxon labels.
func Amplicons(opt AmpliconOptions) ([]fasta.Record, []string, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	model, err := New16SModel(4, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	genes := make([][]byte, opt.Taxa)
	weights := make([]float64, opt.Taxa)
	totalW := 0.0
	for t := 0; t < opt.Taxa; t++ {
		genes[t] = model.Gene(t)
		// Zipf-like skew: weight ∝ 1/(rank^skew).
		w := 1.0
		if opt.Skew > 0 {
			w = 1.0 / math.Pow(float64(t+1), opt.Skew)
		}
		weights[t] = w
		totalW += w
	}
	total := opt.Taxa * opt.ReadsPerTaxon
	reads := make([]fasta.Record, 0, total)
	truth := make([]string, 0, total)
	for i := 0; i < total; i++ {
		// Sample taxon by weight.
		r := rng.Float64() * totalW
		taxon := opt.Taxa - 1
		for t, w := range weights {
			if r < w {
				taxon = t
				break
			}
			r -= w
		}
		gene := genes[taxon]
		length := opt.ReadLength
		if length > len(gene) {
			length = len(gene)
		}
		// Anchor at the primer: the last ampliconPrimerLen bases of the
		// first conserved region, with a few bases of pyrosequencing
		// start jitter.
		anchor := len(model.conserved[0]) - ampliconPrimerLen
		if anchor < 0 {
			anchor = 0
		}
		start := anchor + rng.Intn(4)
		if start+length > len(gene) {
			start = len(gene) - length
		}
		seq := append([]byte{}, gene[start:start+length]...)
		injectErrors(seq, rng.Float64()*opt.ErrorRate, rng)
		reads = append(reads, fasta.Record{
			ID:          fmt.Sprintf("amp_%06d", i),
			Description: fmt.Sprintf("taxon%02d", taxon),
			Seq:         seq,
		})
		truth = append(truth, fmt.Sprintf("taxon%02d", taxon))
	}
	return reads, truth, nil
}
