package simulate

import (
	"math/rand"
)

// 454 pyrosequencing error model. The paper's benchmarks come from
// 454/Roche machines (Sogin et al., Huse et al.), whose dominant error is
// *homopolymer miscall*: a run of identical bases ("AAAA") reads as one
// base too many or too few, because flow intensity — not per-base calls —
// encodes run length. Substitutions are comparatively rare. Huse et al.
// (the paper's 16S-accuracy reference) quantify exactly this, so the
// simulator offers the flowgram-style error channel alongside the plain
// substitution model.

// Error454Options tunes the pyrosequencing channel.
type Error454Options struct {
	// HomopolymerRate is the per-run probability of an indel miscall,
	// scaled by run length (longer runs are harder to resolve).
	HomopolymerRate float64
	// SubstitutionRate is the per-base substitution probability.
	SubstitutionRate float64
}

// DefaultError454 approximates Huse et al.'s observations: homopolymer
// errors dominate, substitutions are an order of magnitude rarer.
var DefaultError454 = Error454Options{
	HomopolymerRate:  0.01,
	SubstitutionRate: 0.001,
}

// Apply454Errors returns a copy of seq passed through the pyrosequencing
// channel: each homopolymer run may gain or lose one base, each base may
// substitute.
func Apply454Errors(seq []byte, opt Error454Options, rng *rand.Rand) []byte {
	out := make([]byte, 0, len(seq)+4)
	for i := 0; i < len(seq); {
		// Identify the homopolymer run starting at i.
		j := i + 1
		for j < len(seq) && seq[j] == seq[i] {
			j++
		}
		runLen := j - i
		// Miscall probability grows with run length (flow saturation).
		p := opt.HomopolymerRate * float64(runLen)
		if p > 0.5 {
			p = 0.5
		}
		emit := runLen
		if rng.Float64() < p {
			if rng.Intn(2) == 0 && runLen > 1 {
				emit = runLen - 1 // undercall
			} else {
				emit = runLen + 1 // overcall
			}
		}
		for k := 0; k < emit; k++ {
			out = append(out, seq[i])
		}
		i = j
	}
	// Substitutions on the emitted bases.
	if opt.SubstitutionRate > 0 {
		for i := range out {
			if rng.Float64() < opt.SubstitutionRate {
				out[i] = substitute(out[i], rng)
			}
		}
	}
	return out
}

// Amplicons454 simulates a 16S sample through the pyrosequencing error
// channel instead of the uniform substitution model: reads are primer-
// anchored like Amplicons, but each passes Apply454Errors, so homopolymer
// indels dominate — the error structure DOTUR-era OTU inflation studies
// (Huse et al.) were written about.
func Amplicons454(opt AmpliconOptions, err454 Error454Options) ([]Record454, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	model, err := New16SModel(4, opt.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 31))
	total := opt.Taxa * opt.ReadsPerTaxon
	out := make([]Record454, 0, total)
	for i := 0; i < total; i++ {
		taxon := rng.Intn(opt.Taxa)
		gene := model.Gene(taxon)
		length := opt.ReadLength
		if length > len(gene) {
			length = len(gene)
		}
		anchor := len(model.conserved[0]) - ampliconPrimerLen
		if anchor < 0 {
			anchor = 0
		}
		start := anchor + rng.Intn(4)
		if start+length > len(gene) {
			start = len(gene) - length
		}
		clean := gene[start : start+length]
		noisy := Apply454Errors(clean, err454, rng)
		out = append(out, Record454{
			ID:    recordID454(i),
			Taxon: taxon,
			Clean: append([]byte{}, clean...),
			Read:  noisy,
		})
	}
	return out, nil
}

// Record454 pairs a noisy pyrosequencing read with its clean source
// fragment, so tests can measure exactly what the channel did.
type Record454 struct {
	ID    string
	Taxon int
	Clean []byte
	Read  []byte
}

// recordID454 formats a read id.
func recordID454(i int) string {
	const digits = "0123456789"
	buf := []byte("fs_000000")
	for p := len(buf) - 1; i > 0 && p >= 3; p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf)
}
