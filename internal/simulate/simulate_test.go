package simulate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/metagenomics/mrmcminh/internal/align"
	"github.com/metagenomics/mrmcminh/internal/fasta"
)

func TestGenerateGenomeGCContent(t *testing.T) {
	for _, gc := range []float64{0.3, 0.5, 0.65} {
		g, err := GenerateGenome("x", 50000, gc, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := fasta.GCContent(g.Seq)
		if math.Abs(got-gc) > 0.02 {
			t.Errorf("target GC %v, got %v", gc, got)
		}
	}
}

func TestGenerateGenomeValidation(t *testing.T) {
	if _, err := GenerateGenome("x", 0, 0.5, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := GenerateGenome("x", 10, 1.5, 1); err == nil {
		t.Error("bad GC accepted")
	}
}

func TestGenerateGenomeDeterministic(t *testing.T) {
	a, _ := GenerateGenome("x", 1000, 0.5, 42)
	b, _ := GenerateGenome("x", 1000, 0.5, 42)
	if string(a.Seq) != string(b.Seq) {
		t.Fatal("same seed produced different genomes")
	}
	c, _ := GenerateGenome("x", 1000, 0.5, 43)
	if string(a.Seq) == string(c.Seq) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestDeriveRelativeDivergenceTracksRank(t *testing.T) {
	base, _ := GenerateGenome("base", 5000, 0.5, 1)
	prevIdentity := 1.0
	for _, rank := range []Rank{RankStrain, RankSpecies, RankGenus, RankFamily, RankOrder, RankPhylum, RankKingdom} {
		rel, err := DeriveRelative(base, "rel", rank.Divergence(), 2)
		if err != nil {
			t.Fatal(err)
		}
		id := align.Global(base.Seq[:1500], rel.Seq[:1500], align.DefaultScoring).Identity()
		if id >= prevIdentity+0.02 {
			t.Errorf("rank %v: identity %v not decreasing (prev %v)", rank, id, prevIdentity)
		}
		prevIdentity = id
	}
	if prevIdentity > 0.75 {
		t.Errorf("kingdom-level relative still %v identical", prevIdentity)
	}
}

func TestDeriveRelativeValidation(t *testing.T) {
	base, _ := GenerateGenome("base", 100, 0.5, 1)
	if _, err := DeriveRelative(base, "rel", -0.1, 1); err == nil {
		t.Error("negative divergence accepted")
	}
	if _, err := DeriveRelative(base, "rel", 1.1, 1); err == nil {
		t.Error("divergence > 1 accepted")
	}
}

func TestRankStrings(t *testing.T) {
	if RankSpecies.String() != "species" || RankKingdom.String() != "kingdom" || Rank(99).String() != "unknown" {
		t.Fatal("rank names wrong")
	}
}

func TestNewCommunityValidation(t *testing.T) {
	g, _ := GenerateGenome("x", 100, 0.5, 1)
	if _, err := NewCommunity(nil, nil); err == nil {
		t.Error("empty community accepted")
	}
	if _, err := NewCommunity([]*Genome{g}, []float64{1, 2}); err == nil {
		t.Error("weight mismatch accepted")
	}
	if _, err := NewCommunity([]*Genome{g}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestReadsAbundanceRatio(t *testing.T) {
	a, _ := GenerateGenome("abundant", 20000, 0.5, 1)
	b, _ := GenerateGenome("rare", 20000, 0.5, 2)
	comm, err := NewCommunity([]*Genome{a, b}, []float64{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	reads, truth, err := comm.Reads(ReadOptions{Count: 9000, Length: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 9000 || len(truth) != 9000 {
		t.Fatalf("got %d reads, %d labels", len(reads), len(truth))
	}
	nA := 0
	for _, l := range truth {
		if l == "abundant" {
			nA++
		}
	}
	frac := float64(nA) / 9000
	if frac < 0.85 || frac > 0.92 {
		t.Fatalf("abundant fraction %v, want ~8/9", frac)
	}
}

func TestReadsErrorRate(t *testing.T) {
	g, _ := GenerateGenome("x", 50000, 0.5, 1)
	comm, _ := NewCommunity([]*Genome{g}, []float64{1})
	reads, _, err := comm.Reads(ReadOptions{Count: 200, Length: 500, ErrorRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Average identity of a read against the genome region it came from
	// should track 1 - errorRate. Rather than recover positions, align the
	// read locally against the genome.
	totID := 0.0
	for _, r := range reads[:20] {
		res := align.Local(r.Seq, g.Seq, align.DefaultScoring)
		totID += res.Identity()
	}
	avg := totID / 20
	if avg < 0.90 || avg > 0.98 {
		t.Fatalf("average identity %v for 5%% error reads", avg)
	}
}

func TestReadsValidation(t *testing.T) {
	g, _ := GenerateGenome("x", 1000, 0.5, 1)
	comm, _ := NewCommunity([]*Genome{g}, []float64{1})
	bad := []ReadOptions{
		{Count: -1, Length: 100},
		{Count: 1, Length: 0},
		{Count: 1, Length: 100, Jitter: 100},
		{Count: 1, Length: 100, ErrorRate: 2},
	}
	for i, o := range bad {
		if _, _, err := comm.Reads(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadsLengthJitter(t *testing.T) {
	g, _ := GenerateGenome("x", 100000, 0.5, 1)
	comm, _ := NewCommunity([]*Genome{g}, []float64{1})
	reads, _, err := comm.Reads(ReadOptions{Count: 500, Length: 100, Jitter: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	minL, maxL := 1<<30, 0
	for _, r := range reads {
		if r.Len() < minL {
			minL = r.Len()
		}
		if r.Len() > maxL {
			maxL = r.Len()
		}
	}
	if minL < 80 || maxL > 120 {
		t.Fatalf("lengths [%d,%d] outside jitter range", minL, maxL)
	}
	if maxL-minL < 10 {
		t.Fatalf("lengths [%d,%d] suspiciously uniform", minL, maxL)
	}
}

func TestReadsDeterministic(t *testing.T) {
	g, _ := GenerateGenome("x", 10000, 0.5, 1)
	comm, _ := NewCommunity([]*Genome{g}, []float64{1})
	opt := ReadOptions{Count: 50, Length: 80, ErrorRate: 0.01, ReverseStrand: true, Seed: 5}
	r1, _, _ := comm.Reads(opt)
	r2, _, _ := comm.Reads(opt)
	for i := range r1 {
		if string(r1[i].Seq) != string(r2[i].Seq) {
			t.Fatal("reads not deterministic")
		}
	}
}

func Test16SModelSharedConservedRegions(t *testing.T) {
	m, err := New16SModel(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	g0, g1 := m.Gene(0), m.Gene(1)
	// Same model: genes share conserved prefix.
	c0 := m.conserved[0]
	if string(g0[:len(c0)]) != string(c0) || string(g1[:len(c0)]) != string(c0) {
		t.Fatal("genes do not share the conserved prefix")
	}
	if string(g0) == string(g1) {
		t.Fatal("distinct taxa produced identical genes")
	}
	// Same taxon is reproducible.
	if string(m.Gene(3)) != string(m.Gene(3)) {
		t.Fatal("gene generation not deterministic")
	}
}

func Test16SModelValidation(t *testing.T) {
	if _, err := New16SModel(0, 1); err == nil {
		t.Fatal("zero variable regions accepted")
	}
}

func TestAmpliconsBasics(t *testing.T) {
	reads, truth, err := Amplicons(AmpliconOptions{
		Taxa: 10, ReadsPerTaxon: 20, ReadLength: 60, ErrorRate: 0.03, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 200 || len(truth) != 200 {
		t.Fatalf("got %d reads", len(reads))
	}
	seen := map[string]bool{}
	for i, r := range reads {
		if r.Len() != 60 {
			t.Fatalf("read %d length %d", i, r.Len())
		}
		seen[truth[i]] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d taxa sampled", len(seen))
	}
}

func TestAmpliconsSkewConcentratesAbundance(t *testing.T) {
	_, truth, err := Amplicons(AmpliconOptions{
		Taxa: 50, ReadsPerTaxon: 20, ReadLength: 60, Skew: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, l := range truth {
		counts[l]++
	}
	if counts["taxon00"] <= counts["taxon49"] {
		t.Fatalf("skew not applied: first %d vs last %d", counts["taxon00"], counts["taxon49"])
	}
}

func TestAmpliconsValidation(t *testing.T) {
	bad := []AmpliconOptions{
		{Taxa: 0, ReadsPerTaxon: 1, ReadLength: 60},
		{Taxa: 1, ReadsPerTaxon: 0, ReadLength: 60},
		{Taxa: 1, ReadsPerTaxon: 1, ReadLength: 5},
		{Taxa: 1, ReadsPerTaxon: 1, ReadLength: 60, ErrorRate: 2},
		{Taxa: 1, ReadsPerTaxon: 1, ReadLength: 60, Skew: 2},
	}
	for i, o := range bad {
		if _, _, err := Amplicons(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTableIIComplete(t *testing.T) {
	specs := TableII()
	if len(specs) != 14 {
		t.Fatalf("got %d specs, want 14", len(specs))
	}
	wantClusters := map[string]int{"S1": 2, "S9": 3, "S11": 4, "S12": 6, "S14": 3}
	for _, s := range specs {
		if len(s.Species) < 2 {
			t.Errorf("%s has %d species", s.SID, len(s.Species))
		}
		if s.Reads <= 0 || s.ReadLength <= 0 {
			t.Errorf("%s has bad sizes", s.SID)
		}
		if want, ok := wantClusters[s.SID]; ok && s.Clusters != want {
			t.Errorf("%s clusters %d, want %d", s.SID, s.Clusters, want)
		}
	}
	if _, err := TableIISpec("S7"); err != nil {
		t.Error(err)
	}
	if _, err := TableIISpec("S99"); err == nil {
		t.Error("unknown SID accepted")
	}
}

func TestBuildWholeMetagenome(t *testing.T) {
	spec, _ := TableIISpec("S9")
	reads, truth, err := BuildWholeMetagenome(spec, 0.01, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(truth) || len(reads) < 100 {
		t.Fatalf("got %d reads", len(reads))
	}
	// Abundance 1:1:8 -> third species ~80%.
	counts := map[string]int{}
	for _, l := range truth {
		counts[l]++
	}
	if len(counts) != 3 {
		t.Fatalf("species %v", counts)
	}
	frac := float64(counts["Nitrobacter hamburgensis"]) / float64(len(truth))
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("dominant fraction %v", frac)
	}
	if _, _, err := BuildWholeMetagenome(spec, 0, 0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestBuildR1(t *testing.T) {
	reads, truth, err := BuildR1(0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(truth) || len(reads) < 100 {
		t.Fatalf("got %d reads", len(reads))
	}
	if _, _, err := BuildR1(2, 2); err == nil {
		t.Fatal("scale 2 accepted")
	}
}

func TestTableIAndEnvironmental(t *testing.T) {
	samples := TableI()
	if len(samples) != 8 {
		t.Fatalf("got %d samples, want 8", len(samples))
	}
	s, err := TableISample("FS312")
	if err != nil || s.Reads != 52569 {
		t.Fatalf("FS312: %+v, %v", s, err)
	}
	if _, err := TableISample("XX"); err == nil {
		t.Fatal("unknown sample accepted")
	}
	reads, truth, err := BuildEnvironmental(samples[0], 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(truth) || len(reads) < 20 {
		t.Fatalf("got %d reads", len(reads))
	}
	for _, r := range reads[:5] {
		if r.Len() != 60 {
			t.Fatalf("read length %d, want 60", r.Len())
		}
	}
}

func TestBuildHuse16S(t *testing.T) {
	reads, truth, err := BuildHuse16S(0.03, 0.002, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(truth) || len(reads) < 86 {
		t.Fatalf("got %d reads", len(reads))
	}
	taxa := map[string]bool{}
	for _, l := range truth {
		taxa[l] = true
	}
	if len(taxa) < 30 || len(taxa) > 43 {
		t.Fatalf("taxa %d, want near 43", len(taxa))
	}
}

func TestReadsAllValidDNA(t *testing.T) {
	f := func(seed int64) bool {
		g, err := GenerateGenome("x", 2000, 0.5, seed)
		if err != nil {
			return false
		}
		comm, err := NewCommunity([]*Genome{g}, []float64{1})
		if err != nil {
			return false
		}
		reads, _, err := comm.Reads(ReadOptions{Count: 20, Length: 50, ErrorRate: 0.1, ReverseStrand: true, Seed: seed})
		if err != nil {
			return false
		}
		for _, r := range reads {
			if r.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
