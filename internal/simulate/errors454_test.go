package simulate

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/align"
)

func TestApply454ErrorsNoErrorIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := []byte("ACGGGTTAACCCGT")
	out := Apply454Errors(seq, Error454Options{}, rng)
	if !bytes.Equal(out, seq) {
		t.Fatalf("zero-rate channel altered the read: %s -> %s", seq, out)
	}
}

func TestApply454ErrorsProducesIndelsInHomopolymers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Long homopolymer runs -> length changes should appear often.
	seq := bytes.Repeat([]byte("AAAAAACCCCCC"), 20)
	changed := 0
	for trial := 0; trial < 50; trial++ {
		out := Apply454Errors(seq, Error454Options{HomopolymerRate: 0.02}, rng)
		if len(out) != len(seq) {
			changed++
		}
	}
	if changed < 25 {
		t.Fatalf("only %d/50 trials changed length in a homopolymer-rich read", changed)
	}
}

func TestApply454ErrorsRareInHomopolymerFreeReads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Alternating bases: every run has length 1, undercall impossible,
	// overcall probability = rate per run.
	seq := bytes.Repeat([]byte("ACGT"), 50)
	diffs := 0
	for trial := 0; trial < 50; trial++ {
		out := Apply454Errors(seq, Error454Options{HomopolymerRate: 0.001}, rng)
		if len(out) != len(seq) {
			diffs++
		}
	}
	if diffs > 25 {
		t.Fatalf("%d/50 trials changed length despite no homopolymers", diffs)
	}
}

func TestApply454ErrorsSubstitutions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := bytes.Repeat([]byte("ACGT"), 250)
	out := Apply454Errors(seq, Error454Options{SubstitutionRate: 0.05}, rng)
	if len(out) != len(seq) {
		t.Fatalf("substitution-only channel changed length")
	}
	diff := 0
	for i := range out {
		if out[i] != seq[i] {
			diff++
		}
	}
	if diff < 20 || diff > 90 {
		t.Fatalf("substitutions %d of 1000, want ~50", diff)
	}
}

func TestApply454ErrorsIdentityStaysHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := GenerateGenome("x", 2000, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Seq[:400]
	out := Apply454Errors(seq, DefaultError454, rng)
	id := align.Global(seq, out, align.DefaultScoring).Identity()
	if id < 0.95 {
		t.Fatalf("default channel identity %.3f, want >= 0.95", id)
	}
}

func TestAmplicons454(t *testing.T) {
	recs, err := Amplicons454(AmpliconOptions{
		Taxa: 8, ReadsPerTaxon: 10, ReadLength: 80, Seed: 7,
	}, DefaultError454)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 80 {
		t.Fatalf("got %d records", len(recs))
	}
	lengthChanged := 0
	for _, r := range recs {
		if r.Taxon < 0 || r.Taxon >= 8 {
			t.Fatalf("taxon %d out of range", r.Taxon)
		}
		if len(r.Clean) != 80 {
			t.Fatalf("clean length %d", len(r.Clean))
		}
		if len(r.Read) != len(r.Clean) {
			lengthChanged++
		}
		if r.ID == "" {
			t.Fatal("missing id")
		}
	}
	if lengthChanged == 0 {
		t.Fatal("pyrosequencing channel produced no indels across 80 reads")
	}
}

func TestAmplicons454Validation(t *testing.T) {
	if _, err := Amplicons454(AmpliconOptions{Taxa: 0, ReadsPerTaxon: 1, ReadLength: 60}, DefaultError454); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestRecordID454(t *testing.T) {
	if got := recordID454(0); got != "fs_000000" {
		t.Fatalf("id %q", got)
	}
	if got := recordID454(42); got != "fs_000042" {
		t.Fatalf("id %q", got)
	}
	if got := recordID454(123456); got != "fs_123456" {
		t.Fatalf("id %q", got)
	}
}
