package simulate

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// SpeciesSpec describes one organism of a Table II mixture.
type SpeciesSpec struct {
	Name string
	GC   float64
	// Weight is the abundance ratio component (e.g. 1, 1, 8).
	Weight float64
	// DivergesFrom is the index of the species this one is derived from
	// (-1 = independent random genome), at the divergence of DivergesAt.
	DivergesFrom int
	DivergesAt   Rank
}

// WholeMetagenomeSpec describes one simulated whole-metagenome sample
// following the paper's Table II.
type WholeMetagenomeSpec struct {
	SID     string
	Species []SpeciesSpec
	// Reads is the paper's read count; builders scale it down.
	Reads int
	// ReadLength is 1000 bp for S1–S12 (Sanger-like), shorter for S13/S14.
	ReadLength int
	// Clusters is the ground-truth cluster count from Table II.
	Clusters int
}

// TableII returns the paper's fourteen simulated whole-metagenome sample
// specs (S1–S14). GC contents and abundance ratios follow Table II; the
// taxonomic difference column maps to pairwise genome divergence.
func TableII() []WholeMetagenomeSpec {
	ind := func(name string, gc, w float64) SpeciesSpec {
		return SpeciesSpec{Name: name, GC: gc, Weight: w, DivergesFrom: -1}
	}
	rel := func(name string, gc, w float64, from int, at Rank) SpeciesSpec {
		return SpeciesSpec{Name: name, GC: gc, Weight: w, DivergesFrom: from, DivergesAt: at}
	}
	return []WholeMetagenomeSpec{
		{SID: "S1", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Bacillus halodurans", 0.44, 1),
			rel("Bacillus subtilis", 0.44, 1, 0, RankSpecies),
		}},
		{SID: "S2", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Gluconobacter oxydans", 0.61, 1),
			rel("Granulobacter bethesdensis", 0.59, 1, 0, RankGenus),
		}},
		{SID: "S3", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Escherichia coli", 0.51, 1),
			rel("Yersinia pestis", 0.48, 1, 0, RankGenus),
		}},
		{SID: "S4", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Rhodopirellula baltica", 0.55, 1),
			rel("Blastopirellula marina", 0.57, 1, 0, RankGenus),
		}},
		{SID: "S5", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Bacillus anthracis", 0.35, 1),
			rel("Listeria monocytogenes", 0.38, 2, 0, RankFamily),
		}},
		{SID: "S6", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Methanocaldococcus jannaschii", 0.31, 1),
			rel("Methanococcus mariplaudis", 0.33, 1, 0, RankFamily),
		}},
		{SID: "S7", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Thermofilum pendens", 0.58, 1),
			rel("Pyrobaculum aerophilum", 0.51, 1, 0, RankFamily),
		}},
		{SID: "S8", Reads: 49998, ReadLength: 1000, Clusters: 2, Species: []SpeciesSpec{
			ind("Gluconobacter oxydans", 0.61, 1),
			rel("Rhodospirillum rubrum", 0.65, 1, 0, RankOrder),
		}},
		{SID: "S9", Reads: 49996, ReadLength: 1000, Clusters: 3, Species: []SpeciesSpec{
			ind("Gluconobacter oxydans", 0.61, 1),
			rel("Granulobacter bethesdensis", 0.59, 1, 0, RankFamily),
			rel("Nitrobacter hamburgensis", 0.62, 8, 0, RankOrder),
		}},
		{SID: "S10", Reads: 49996, ReadLength: 1000, Clusters: 3, Species: []SpeciesSpec{
			ind("Escherichia coli", 0.51, 1),
			rel("Pseudomonas putida", 0.62, 1, 0, RankOrder),
			rel("Bacillus anthracis", 0.35, 8, 0, RankPhylum),
		}},
		{SID: "S11", Reads: 99998, ReadLength: 1000, Clusters: 4, Species: []SpeciesSpec{
			ind("Gluconobacter oxydans", 0.61, 1),
			rel("Granulobacter bethesdensis", 0.59, 1, 0, RankFamily),
			rel("Nitrobacter hamburgensis", 0.62, 4, 0, RankOrder),
			rel("Rhodospirillum rubrum", 0.65, 4, 0, RankOrder),
		}},
		{SID: "S12", Reads: 99994, ReadLength: 1000, Clusters: 6, Species: []SpeciesSpec{
			ind("Escherichia coli", 0.51, 1),
			rel("Pseudomonas putida", 0.62, 1, 0, RankOrder),
			ind("Thermofilum pendens", 0.58, 1),
			rel("Pyrobaculum aerophilum", 0.51, 1, 2, RankFamily),
			rel("Bacillus anthracis", 0.35, 2, 0, RankKingdom),
			rel("Bacillus subtilis", 0.44, 14, 4, RankSpecies),
		}},
		{SID: "S13", Reads: 4000, ReadLength: 800, Clusters: 2, Species: []SpeciesSpec{
			ind("Acinetobacter baumannii SDF", 0.39, 1),
			rel("Pseudomonas entomophila L48", 0.64, 1, 0, RankOrder),
		}},
		{SID: "S14", Reads: 6000, ReadLength: 800, Clusters: 3, Species: []SpeciesSpec{
			ind("Ehrlichia ruminantium Gardel", 0.27, 1),
			rel("Anaplasma centrale Israel", 0.30, 1, 0, RankGenus),
			rel("Neorickettsia sennetsu Miyayama", 0.41, 1, 0, RankFamily),
		}},
	}
}

// TableIISpec returns the spec with the given SID.
func TableIISpec(sid string) (WholeMetagenomeSpec, error) {
	for _, s := range TableII() {
		if s.SID == sid {
			return s, nil
		}
	}
	return WholeMetagenomeSpec{}, fmt.Errorf("simulate: unknown sample %q", sid)
}

// BuildWholeMetagenome materializes a Table II sample. scale in (0,1]
// multiplies the paper's read count (benchmarks run scaled down); genome
// length is sized to give ~50x coverage headroom at the scaled read count.
func BuildWholeMetagenome(spec WholeMetagenomeSpec, scale float64, errorRate float64, seed int64) ([]fasta.Record, []string, error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("simulate: scale %v out of (0,1]", scale)
	}
	count := int(float64(spec.Reads) * scale)
	if count < len(spec.Species)*2 {
		count = len(spec.Species) * 2
	}
	// Size genomes so mean coverage stays ~16x at any scale: read
	// clustering groups reads by transitive overlap, so coverage — not
	// absolute genome size — determines cluster structure. The paper's
	// real genomes see ~12x, but they also carry repeats and conserved
	// operons that add chaining links our uniform-random genomes lack; a
	// few extra fold of coverage keeps overlap percolation robust.
	genomeLen := count * spec.ReadLength / (16 * len(spec.Species))
	if genomeLen < 10*spec.ReadLength {
		genomeLen = 10 * spec.ReadLength
	}
	genomes := make([]*Genome, len(spec.Species))
	for i, sp := range spec.Species {
		var g *Genome
		var err error
		if sp.DivergesFrom < 0 {
			g, err = GenerateGenome(sp.Name, genomeLen, sp.GC, seed+int64(i)*101)
		} else {
			if sp.DivergesFrom >= i {
				return nil, nil, fmt.Errorf("simulate: species %d diverges from later species %d", i, sp.DivergesFrom)
			}
			g, err = DeriveRelative(genomes[sp.DivergesFrom], sp.Name, sp.DivergesAt.Divergence(), seed+int64(i)*101)
		}
		if err != nil {
			return nil, nil, err
		}
		genomes[i] = g
	}
	weights := make([]float64, len(spec.Species))
	for i, sp := range spec.Species {
		weights[i] = sp.Weight
	}
	comm, err := NewCommunity(genomes, weights)
	if err != nil {
		return nil, nil, err
	}
	return comm.Reads(ReadOptions{
		Count:         count,
		Length:        spec.ReadLength,
		Jitter:        spec.ReadLength / 10,
		ErrorRate:     errorRate,
		ReverseStrand: true,
		Seed:          seed + 9999,
	})
}

// BuildR1 simulates the real sharpshooter-gut sample R1: a small insect
// endosymbiont community (Baumannia- and Sulcia-like genomes plus host
// contamination) with no published ground truth — the builder still
// returns labels, but benchmarks treat them as unavailable, as the paper
// does.
func BuildR1(scale float64, seed int64) ([]fasta.Record, []string, error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("simulate: scale %v out of (0,1]", scale)
	}
	count := int(7137 * scale)
	if count < 30 {
		count = 30
	}
	// Genomes sized for ~12x pooled coverage at the scaled read count,
	// split 2:2:3 across the three sources (see BuildWholeMetagenome).
	unit := count * 900 / (12 * 7)
	if unit < 1500 {
		unit = 1500 // genomes must exceed the read length
	}
	base, err := GenerateGenome("Baumannia-like endosymbiont", 2*unit, 0.33, seed)
	if err != nil {
		return nil, nil, err
	}
	sulcia, err := GenerateGenome("Sulcia-like endosymbiont", 2*unit, 0.22, seed+1)
	if err != nil {
		return nil, nil, err
	}
	host, err := GenerateGenome("Homalodisca host fragments", 3*unit, 0.41, seed+2)
	if err != nil {
		return nil, nil, err
	}
	comm, err := NewCommunity([]*Genome{base, sulcia, host}, []float64{5, 3, 1})
	if err != nil {
		return nil, nil, err
	}
	return comm.Reads(ReadOptions{
		Count:         count,
		Length:        900,
		Jitter:        150,
		ErrorRate:     0.005,
		ReverseStrand: true,
		Seed:          seed + 3,
	})
}

// EnvironmentalSample describes one Table I seawater sample.
type EnvironmentalSample struct {
	SID   string
	Site  string
	Reads int
	// Taxa approximates the sample's diversity (the paper reports ~1000–
	// 2000 clusters per sample at 95% similarity).
	Taxa int
}

// TableI returns the paper's eight environmental samples with their read
// counts; taxa counts are set so that clustering at 95% lands near the
// paper's reported cluster counts.
func TableI() []EnvironmentalSample {
	return []EnvironmentalSample{
		{SID: "53R", Site: "Labrador seawater", Reads: 11218, Taxa: 1180},
		{SID: "55R", Site: "Oxygen minimum", Reads: 8680, Taxa: 1205},
		{SID: "112R", Site: "Lower deep water", Reads: 11132, Taxa: 1694},
		{SID: "115R", Site: "Oxygen minimum", Reads: 13441, Taxa: 1217},
		{SID: "137", Site: "Labrador seawater", Reads: 12259, Taxa: 1020},
		{SID: "138", Site: "Labrador seawater", Reads: 11554, Taxa: 1054},
		{SID: "FS312", Site: "Bag City", Reads: 52569, Taxa: 1983},
		{SID: "FS396", Site: "Marker 52", Reads: 73657, Taxa: 1360},
	}
}

// TableISample returns the environmental sample with the given SID.
func TableISample(sid string) (EnvironmentalSample, error) {
	for _, s := range TableI() {
		if s.SID == sid {
			return s, nil
		}
	}
	return EnvironmentalSample{}, fmt.Errorf("simulate: unknown sample %q", sid)
}

// BuildEnvironmental materializes a Table I seawater sample: short 454
// amplicons (avg 60 bp) from a rare-biosphere-skewed taxon distribution.
func BuildEnvironmental(s EnvironmentalSample, scale float64, seed int64) ([]fasta.Record, []string, error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("simulate: scale %v out of (0,1]", scale)
	}
	reads := int(float64(s.Reads) * scale)
	taxa := int(float64(s.Taxa) * scale)
	if taxa < 2 {
		taxa = 2
	}
	if reads < taxa {
		reads = taxa
	}
	perTaxon := reads / taxa
	if perTaxon < 1 {
		perTaxon = 1
	}
	return Amplicons(AmpliconOptions{
		Taxa:          taxa,
		ReadsPerTaxon: perTaxon,
		ReadLength:    60,
		ErrorRate:     0.01,
		Skew:          0.8, // rare biosphere: few abundant, many rare taxa
		Seed:          seed,
	})
}

// BuildHuse16S materializes the Huse et al. 16S simulated benchmark: 43
// reference taxa, pyrosequencing-length reads, at the given error rate
// (the paper evaluates 3% and 5% sets). scale multiplies the read count
// (paper: 345,000).
func BuildHuse16S(errorRate, scale float64, seed int64) ([]fasta.Record, []string, error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("simulate: scale %v out of (0,1]", scale)
	}
	total := int(345000 * scale)
	const taxa = 43
	per := total / taxa
	if per < 2 {
		per = 2
	}
	return Amplicons(AmpliconOptions{
		Taxa:          taxa,
		ReadsPerTaxon: per,
		ReadLength:    100,
		ErrorRate:     errorRate,
		Skew:          0.3,
		Seed:          seed,
	})
}
