package simulate

import (
	"fmt"
	"math/rand"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// Member is one organism in a community with a relative abundance weight.
type Member struct {
	Genome    *Genome
	Abundance float64
}

// Community is a weighted organism mixture.
type Community struct {
	Members []Member
}

// NewCommunity builds a community from genomes and abundance weights
// (weights are normalized internally; e.g. the paper's 1:1:8 ratios).
func NewCommunity(genomes []*Genome, weights []float64) (*Community, error) {
	if len(genomes) == 0 {
		return nil, fmt.Errorf("simulate: community needs at least one genome")
	}
	if len(weights) != len(genomes) {
		return nil, fmt.Errorf("simulate: %d weights for %d genomes", len(weights), len(genomes))
	}
	c := &Community{}
	for i, g := range genomes {
		if weights[i] <= 0 {
			return nil, fmt.Errorf("simulate: abundance weight %v must be positive", weights[i])
		}
		c.Members = append(c.Members, Member{Genome: g, Abundance: weights[i]})
	}
	return c, nil
}

// ReadOptions controls shotgun read simulation.
type ReadOptions struct {
	// Count is the number of reads to draw.
	Count int
	// Length is the mean read length; Jitter the +/- uniform variation
	// (Sanger-like 1000 bp for Table II, 454-like 60 bp for Table I).
	Length int
	Jitter int
	// ErrorRate is the per-base substitution error probability.
	ErrorRate float64
	// ReverseStrand, when set, samples reads from both strands (shotgun
	// sequencing); 16S amplicons keep one orientation.
	ReverseStrand bool
	// Seed drives all sampling.
	Seed int64
}

// Validate rejects unusable options.
func (o ReadOptions) Validate() error {
	if o.Count < 0 {
		return fmt.Errorf("simulate: negative read count %d", o.Count)
	}
	if o.Length < 1 {
		return fmt.Errorf("simulate: read length must be positive, got %d", o.Length)
	}
	if o.Jitter < 0 || o.Jitter >= o.Length {
		return fmt.Errorf("simulate: jitter %d out of [0,length)", o.Jitter)
	}
	if o.ErrorRate < 0 || o.ErrorRate > 1 {
		return fmt.Errorf("simulate: error rate %v out of [0,1]", o.ErrorRate)
	}
	return nil
}

// Reads draws shotgun reads from the community. It returns the reads and
// the index-aligned ground-truth organism names.
func (c *Community) Reads(opt ReadOptions) ([]fasta.Record, []string, error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	total := 0.0
	for _, m := range c.Members {
		total += m.Abundance
	}
	reads := make([]fasta.Record, 0, opt.Count)
	truth := make([]string, 0, opt.Count)
	for i := 0; i < opt.Count; i++ {
		m := c.pick(rng, total)
		length := opt.Length
		if opt.Jitter > 0 {
			length += rng.Intn(2*opt.Jitter+1) - opt.Jitter
		}
		if length > len(m.Genome.Seq) {
			length = len(m.Genome.Seq)
		}
		start := 0
		if len(m.Genome.Seq) > length {
			start = rng.Intn(len(m.Genome.Seq) - length + 1)
		}
		seq := append([]byte{}, m.Genome.Seq[start:start+length]...)
		if opt.ReverseStrand && rng.Intn(2) == 1 {
			seq = fasta.ReverseComplement(seq)
		}
		injectErrors(seq, opt.ErrorRate, rng)
		reads = append(reads, fasta.Record{
			ID:          fmt.Sprintf("read_%06d", i),
			Description: m.Genome.Name,
			Seq:         seq,
		})
		truth = append(truth, m.Genome.Name)
	}
	return reads, truth, nil
}

// pick samples a member proportionally to abundance.
func (c *Community) pick(rng *rand.Rand, total float64) Member {
	r := rng.Float64() * total
	for _, m := range c.Members {
		if r < m.Abundance {
			return m
		}
		r -= m.Abundance
	}
	return c.Members[len(c.Members)-1]
}

// injectErrors applies per-base substitution errors in place.
func injectErrors(seq []byte, rate float64, rng *rand.Rand) {
	if rate <= 0 {
		return
	}
	for i := range seq {
		if rng.Float64() < rate {
			seq[i] = substitute(seq[i], rng)
		}
	}
}
