// Package simulate generates synthetic metagenome benchmarks standing in
// for the paper's datasets (Huse et al. 16S reads, Sogin et al. seawater
// samples, Chatterji et al. S1–S12 mixtures, the sharpshooter-gut R1
// sample). Real data is gated behind accession downloads; the simulator
// reproduces the properties that drive clustering difficulty — species
// count, abundance ratios, taxonomic divergence, GC content, read length
// and sequencing error — with deterministic seeds and free ground truth.
package simulate

import (
	"fmt"
	"math/rand"
)

// Rank indexes taxonomy levels from most to least specific.
type Rank int

// Taxonomic ranks as used in Table II's "Taxonomic Difference" column.
const (
	RankStrain Rank = iota
	RankSpecies
	RankGenus
	RankFamily
	RankOrder
	RankPhylum
	RankKingdom
)

// String names the rank.
func (r Rank) String() string {
	switch r {
	case RankStrain:
		return "strain"
	case RankSpecies:
		return "species"
	case RankGenus:
		return "genus"
	case RankFamily:
		return "family"
	case RankOrder:
		return "order"
	case RankPhylum:
		return "phylum"
	case RankKingdom:
		return "kingdom"
	default:
		return "unknown"
	}
}

// Divergence returns the approximate genome-wide nucleotide divergence
// between two organisms that differ at this rank — the knob controlling
// how hard a pair is to separate (coarser rank = easier).
func (r Rank) Divergence() float64 {
	switch r {
	case RankStrain:
		return 0.005
	case RankSpecies:
		return 0.02
	case RankGenus:
		return 0.06
	case RankFamily:
		return 0.12
	case RankOrder:
		return 0.18
	case RankPhylum:
		return 0.28
	default: // kingdom
		return 0.38
	}
}

// Genome is one synthetic organism.
type Genome struct {
	Name string
	// GC is the target GC content in [0,1] (Table II brackets).
	GC  float64
	Seq []byte
}

// GenerateGenome draws a random genome of the given length and GC content.
func GenerateGenome(name string, length int, gc float64, seed int64) (*Genome, error) {
	if length < 1 {
		return nil, fmt.Errorf("simulate: genome length must be positive, got %d", length)
	}
	if gc < 0 || gc > 1 {
		return nil, fmt.Errorf("simulate: GC content %v out of [0,1]", gc)
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make([]byte, length)
	for i := range seq {
		if rng.Float64() < gc {
			seq[i] = "GC"[rng.Intn(2)]
		} else {
			seq[i] = "AT"[rng.Intn(2)]
		}
	}
	return &Genome{Name: name, GC: gc, Seq: seq}, nil
}

// DeriveRelative derives a genome at the given nucleotide divergence from
// base: each position mutates with probability div (substitutions), plus a
// sprinkling of short indels to keep alignments honest.
func DeriveRelative(base *Genome, name string, div float64, seed int64) (*Genome, error) {
	if div < 0 || div > 1 {
		return nil, fmt.Errorf("simulate: divergence %v out of [0,1]", div)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, len(base.Seq)+16)
	for _, b := range base.Seq {
		r := rng.Float64()
		switch {
		case r < div*0.85: // substitution
			out = append(out, substitute(b, rng))
		case r < div*0.925: // deletion
			// skip base
		case r < div: // insertion
			out = append(out, b, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, base.Seq...)
	}
	return &Genome{Name: name, GC: base.GC, Seq: out}, nil
}

// substitute returns a random base different from b.
func substitute(b byte, rng *rand.Rand) byte {
	for {
		c := "ACGT"[rng.Intn(4)]
		if c != b {
			return c
		}
	}
}
