// Package align implements pairwise DNA sequence alignment: global
// (Needleman–Wunsch), local (Smith–Waterman) and a banded global variant.
//
// The paper's W.Sim metric is the average *global alignment similarity*
// of sequence pairs within a cluster (Huang 1994); this package supplies
// that primitive to internal/metrics and to the alignment-based baselines
// (DOTUR, Mothur, CD-HIT identity checks).
package align

import "fmt"

// Scoring defines match/mismatch/gap scores for alignment.
type Scoring struct {
	Match    int // score for identical bases (positive)
	Mismatch int // score for differing bases (typically negative)
	Gap      int // score per gap position (typically negative)
}

// DefaultScoring is the conventional +1/-1/-2 DNA scheme.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -2}

// UnitScoring scores edit-distance-like alignments: 0 match, -1 otherwise.
var UnitScoring = Scoring{Match: 0, Mismatch: -1, Gap: -1}

// Validate rejects degenerate schemes that would make alignment meaningless.
func (s Scoring) Validate() error {
	if s.Match <= s.Mismatch {
		return fmt.Errorf("align: match score %d must exceed mismatch %d", s.Match, s.Mismatch)
	}
	return nil
}

// Result reports an alignment outcome.
type Result struct {
	Score int
	// Matches is the number of aligned identical base pairs.
	Matches int
	// AlignedLen is the alignment length including gap columns.
	AlignedLen int
}

// Identity returns the fraction of alignment columns that are exact
// matches — the "global sequence alignment similarity" of the paper.
func (r Result) Identity() float64 {
	if r.AlignedLen == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.AlignedLen)
}
