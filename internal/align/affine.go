package align

// Affine-gap global alignment (Gotoh 1982): gap cost = Open + k·Extend
// for a k-base gap, which models sequencing indels far better than the
// linear scheme — one long 454 homopolymer slip should cost little more
// than a short one. Three DP layers track match (M), gap-in-b (X,
// consuming a) and gap-in-a (Y, consuming b) states.

// AffineScoring defines match/mismatch plus affine gap penalties.
type AffineScoring struct {
	Match    int // positive
	Mismatch int // typically negative
	// GapOpen is charged once per gap *opening* (in addition to the first
	// extension), GapExtend per gap position. Both typically negative.
	GapOpen   int
	GapExtend int
}

// DefaultAffineScoring is a conventional DNA scheme: +1/-1, open -3,
// extend -1.
var DefaultAffineScoring = AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1}

// GlobalAffine computes the optimal global alignment score and identity
// statistics under affine gap costs.
func GlobalAffine(a, b []byte, sc AffineScoring) Result {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		gaps := n + m
		score := 0
		if gaps > 0 {
			score = sc.GapOpen + gaps*sc.GapExtend
		}
		return Result{Score: score, AlignedLen: gaps}
	}
	const negInf = int32(-1 << 29)
	// Layer values for the previous and current rows.
	type cell struct{ m, x, y int32 }
	prev := make([]cell, m+1)
	cur := make([]cell, m+1)
	// Traceback: 2 bits per layer per cell — store per-layer moves.
	// moves[layer][i*(m+1)+j]: for M: 0 diag-from-M, 1 diag-from-X,
	// 2 diag-from-Y; for X: 0 open-from-M, 1 extend; for Y likewise.
	sz := (n + 1) * (m + 1)
	mMove := make([]byte, sz)
	xMove := make([]byte, sz)
	yMove := make([]byte, sz)

	open := int32(sc.GapOpen)
	ext := int32(sc.GapExtend)

	prev[0] = cell{m: 0, x: negInf, y: negInf}
	for j := 1; j <= m; j++ {
		prev[j] = cell{m: negInf, x: negInf, y: open + int32(j)*ext}
		yMove[j] = 1
	}
	for i := 1; i <= n; i++ {
		cur[0] = cell{m: negInf, x: open + int32(i)*ext, y: negInf}
		xMove[i*(m+1)] = 1
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			idx := i*(m+1) + j
			sub := int32(sc.Mismatch)
			if ai == b[j-1] {
				sub = int32(sc.Match)
			}
			// M: diagonal from best of prev layers.
			pm := prev[j-1]
			bestM, mv := pm.m, byte(0)
			if pm.x > bestM {
				bestM, mv = pm.x, 1
			}
			if pm.y > bestM {
				bestM, mv = pm.y, 2
			}
			cur[j].m = bestM + sub
			mMove[idx] = mv
			// X: gap in b (consume a) — from previous row.
			openX := prev[j].m + open + ext
			extX := prev[j].x + ext
			if openX >= extX {
				cur[j].x = openX
				xMove[idx] = 0
			} else {
				cur[j].x = extX
				xMove[idx] = 1
			}
			// Y: gap in a (consume b) — from current row.
			openY := cur[j-1].m + open + ext
			extY := cur[j-1].y + ext
			if openY >= extY {
				cur[j].y = openY
				yMove[idx] = 0
			} else {
				cur[j].y = extY
				yMove[idx] = 1
			}
		}
		prev, cur = cur, prev
	}
	final := prev[m]
	layer := 0 // 0=M 1=X 2=Y
	score := final.m
	if final.x > score {
		score, layer = final.x, 1
	}
	if final.y > score {
		score, layer = final.y, 2
	}

	// Traceback.
	matches, length := 0, 0
	i, j := n, m
	for i > 0 || j > 0 {
		idx := i*(m+1) + j
		switch layer {
		case 0:
			length++
			if a[i-1] == b[j-1] {
				matches++
			}
			layer = int(mMove[idx])
			i--
			j--
		case 1:
			length++
			if xMove[idx] == 0 {
				layer = 0
			}
			i--
		default:
			length++
			if yMove[idx] == 0 {
				layer = 0
			}
			j--
		}
	}
	return Result{Score: int(score), Matches: matches, AlignedLen: length}
}
