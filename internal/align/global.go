package align

// Global computes a Needleman–Wunsch global alignment of a and b and
// returns the score plus match/length statistics needed for identity.
//
// Memory: O(len(a)*len(b)) bytes for the traceback matrix plus two O(len(b))
// score rows, comfortable for read-length sequences (≤ a few kb).
func Global(a, b []byte, sc Scoring) Result {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		// Pure-gap alignment: no matches, length = the non-empty side.
		return Result{Score: sc.Gap * (n + m), Matches: 0, AlignedLen: n + m}
	}

	const (
		diag = byte(0)
		up   = byte(1) // gap in b (consume a)
		left = byte(2) // gap in a (consume b)
	)
	trace := make([]byte, (n+1)*(m+1))
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)

	for j := 1; j <= m; j++ {
		prev[j] = int32(sc.Gap) * int32(j)
		trace[j] = left
	}
	for i := 1; i <= n; i++ {
		cur[0] = int32(sc.Gap) * int32(i)
		trace[i*(m+1)] = up
		ai := a[i-1]
		row := trace[i*(m+1):]
		for j := 1; j <= m; j++ {
			sub := int32(sc.Mismatch)
			if ai == b[j-1] {
				sub = int32(sc.Match)
			}
			d := prev[j-1] + sub
			u := prev[j] + int32(sc.Gap)
			l := cur[j-1] + int32(sc.Gap)
			// Prefer diagonal on ties so identities are counted greedily.
			best, dir := d, diag
			if u > best {
				best, dir = u, up
			}
			if l > best {
				best, dir = l, left
			}
			cur[j] = best
			row[j] = dir
		}
		prev, cur = cur, prev
	}
	score := int(prev[m])

	// Traceback to count matches and alignment length.
	matches, length := 0, 0
	i, j := n, m
	for i > 0 || j > 0 {
		length++
		switch trace[i*(m+1)+j] {
		case diag:
			if a[i-1] == b[j-1] {
				matches++
			}
			i--
			j--
		case up:
			i--
		default:
			j--
		}
	}
	return Result{Score: score, Matches: matches, AlignedLen: length}
}

// GlobalIdentity is a convenience wrapper returning only the identity
// fraction of the global alignment under the default scoring.
func GlobalIdentity(a, b []byte) float64 {
	return Global(a, b, DefaultScoring).Identity()
}
