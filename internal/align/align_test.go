package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Scoring{Match: -1, Mismatch: 0, Gap: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("degenerate scoring accepted")
	}
}

func TestGlobalIdentical(t *testing.T) {
	s := []byte("ACGTACGT")
	r := Global(s, s, DefaultScoring)
	if r.Score != 8 || r.Matches != 8 || r.AlignedLen != 8 {
		t.Fatalf("unexpected %+v", r)
	}
	if r.Identity() != 1 {
		t.Fatalf("identity %v", r.Identity())
	}
}

func TestGlobalCompletelyDifferent(t *testing.T) {
	r := Global([]byte("AAAA"), []byte("TTTT"), DefaultScoring)
	if r.Matches != 0 {
		t.Fatalf("matches %d, want 0", r.Matches)
	}
	if r.Identity() != 0 {
		t.Fatalf("identity %v", r.Identity())
	}
}

func TestGlobalEmptySides(t *testing.T) {
	r := Global(nil, []byte("ACGT"), DefaultScoring)
	if r.Score != -8 || r.AlignedLen != 4 || r.Identity() != 0 {
		t.Fatalf("unexpected %+v", r)
	}
	r = Global([]byte("AC"), nil, DefaultScoring)
	if r.Score != -4 || r.AlignedLen != 2 {
		t.Fatalf("unexpected %+v", r)
	}
	r = Global(nil, nil, DefaultScoring)
	if r.Score != 0 || r.AlignedLen != 0 || r.Identity() != 0 {
		t.Fatalf("unexpected %+v", r)
	}
}

func TestGlobalSingleInsertion(t *testing.T) {
	// ACGT vs ACGGT: one gap, four matches.
	r := Global([]byte("ACGT"), []byte("ACGGT"), DefaultScoring)
	if r.Matches != 4 || r.AlignedLen != 5 {
		t.Fatalf("unexpected %+v", r)
	}
	if r.Score != 4*1+(-2) {
		t.Fatalf("score %d", r.Score)
	}
}

func TestGlobalKnownAlignment(t *testing.T) {
	// Classic example: GATTACA vs GCATGCU-style check with our scheme.
	r := Global([]byte("GATTACA"), []byte("GATGACA"), DefaultScoring)
	// One substitution in the middle: 6 matches over length 7.
	if r.Matches != 6 || r.AlignedLen != 7 || r.Score != 6-1 {
		t.Fatalf("unexpected %+v", r)
	}
}

func TestGlobalSymmetricScore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, 5+rng.Intn(60))
		b := randSeq(rng, 5+rng.Intn(60))
		r1 := Global(a, b, DefaultScoring)
		r2 := Global(b, a, DefaultScoring)
		if r1.Score != r2.Score {
			t.Fatalf("asymmetric score %d vs %d", r1.Score, r2.Score)
		}
	}
}

func TestGlobalIdentityRange(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a := make([]byte, len(ra)%64)
		b := make([]byte, len(rb)%64)
		for i := range a {
			a[i] = "ACGT"[int(ra[i])%4]
		}
		for i := range b {
			b[i] = "ACGT"[int(rb[i])%4]
		}
		id := GlobalIdentity(a, b)
		return id >= 0 && id <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAlignedLenBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, rng.Intn(50))
		b := randSeq(rng, rng.Intn(50))
		r := Global(a, b, DefaultScoring)
		longer := len(a)
		if len(b) > longer {
			longer = len(b)
		}
		if r.AlignedLen < longer || r.AlignedLen > len(a)+len(b) {
			t.Fatalf("aligned len %d outside [%d,%d]", r.AlignedLen, longer, len(a)+len(b))
		}
		if r.Matches > r.AlignedLen {
			t.Fatalf("matches %d > length %d", r.Matches, r.AlignedLen)
		}
	}
}

func TestBandedMatchesFullForSimilarSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := randSeq(rng, 200)
		// Mutate ~5% of positions and make one small indel.
		b := append([]byte{}, a...)
		for i := range b {
			if rng.Float64() < 0.05 {
				b[i] = "ACGT"[rng.Intn(4)]
			}
		}
		cut := rng.Intn(len(b) - 2)
		b = append(b[:cut], b[cut+1:]...) // single deletion
		full := Global(a, b, DefaultScoring)
		banded := GlobalBanded(a, b, DefaultScoring, 16)
		if full.Score != banded.Score {
			t.Fatalf("trial %d: banded score %d != full %d", trial, banded.Score, full.Score)
		}
		if full.Matches != banded.Matches || full.AlignedLen != banded.AlignedLen {
			t.Fatalf("trial %d: banded stats %+v != full %+v", trial, banded, full)
		}
	}
}

func TestBandedWideBandDelegatesToFull(t *testing.T) {
	a, b := []byte("ACGTACGT"), []byte("ACTTACGA")
	if GlobalBanded(a, b, DefaultScoring, 100) != Global(a, b, DefaultScoring) {
		t.Fatal("wide band should equal full alignment")
	}
}

func TestBandedEmptySides(t *testing.T) {
	r := GlobalBanded(nil, []byte("ACG"), DefaultScoring, 3)
	if r.AlignedLen != 3 || r.Score != -6 {
		t.Fatalf("unexpected %+v", r)
	}
}

func TestBandedLengthDifferenceWidening(t *testing.T) {
	// Band narrower than the length difference must auto-widen, not crash.
	a := []byte("ACGTACGTACGTACGTACGT")
	b := []byte("ACGT")
	r := GlobalBanded(a, b, DefaultScoring, 1)
	if r.AlignedLen < len(a) {
		t.Fatalf("aligned len %d < %d", r.AlignedLen, len(a))
	}
}

func TestLocalFindsEmbeddedMatch(t *testing.T) {
	a := []byte("TTTTTACGTACGATTTTT")
	b := []byte("GGGGGACGTACGAGGGGG")
	r := Local(a, b, DefaultScoring)
	if r.Matches < 8 {
		t.Fatalf("local alignment found only %d matches: %+v", r.Matches, r)
	}
	if r.Identity() != 1 {
		t.Fatalf("embedded exact match should have identity 1, got %v", r.Identity())
	}
}

func TestLocalEmptyAndDisjoint(t *testing.T) {
	if r := Local(nil, []byte("ACG"), DefaultScoring); r.Score != 0 {
		t.Fatalf("empty local %+v", r)
	}
	r := Local([]byte("AAAA"), []byte("TTTT"), DefaultScoring)
	if r.Score != 0 || r.Matches != 0 {
		t.Fatalf("disjoint local %+v", r)
	}
}

func TestLocalScoreAtLeastGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, 10+rng.Intn(50))
		b := randSeq(rng, 10+rng.Intn(50))
		l := Local(a, b, DefaultScoring)
		g := Global(a, b, DefaultScoring)
		if l.Score < g.Score {
			t.Fatalf("local score %d < global %d", l.Score, g.Score)
		}
		if l.Score < 0 {
			t.Fatalf("local score %d negative", l.Score)
		}
	}
}

func BenchmarkGlobal200bp(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := randSeq(rng, 200), randSeq(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Global(x, y, DefaultScoring)
	}
}

func BenchmarkBanded200bp(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randSeq(rng, 200)
	y := append([]byte{}, x...)
	y[50] = 'A'
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GlobalBanded(x, y, DefaultScoring, 16)
	}
}
