package align

// Local computes a Smith–Waterman local alignment: the best-scoring pair of
// substrings of a and b. Used by seed-extension style baselines to verify
// candidate hits.
func Local(a, b []byte, sc Scoring) Result {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return Result{}
	}
	const (
		stop = byte(0)
		diag = byte(1)
		up   = byte(2)
		left = byte(3)
	)
	trace := make([]byte, (n+1)*(m+1))
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	var bestScore int32
	bestI, bestJ := 0, 0

	for i := 1; i <= n; i++ {
		ai := a[i-1]
		row := trace[i*(m+1):]
		cur[0] = 0
		for j := 1; j <= m; j++ {
			sub := int32(sc.Mismatch)
			if ai == b[j-1] {
				sub = int32(sc.Match)
			}
			best, dir := int32(0), stop
			if d := prev[j-1] + sub; d > best {
				best, dir = d, diag
			}
			if u := prev[j] + int32(sc.Gap); u > best {
				best, dir = u, up
			}
			if l := cur[j-1] + int32(sc.Gap); l > best {
				best, dir = l, left
			}
			cur[j] = best
			row[j] = dir
			if best > bestScore {
				bestScore, bestI, bestJ = best, i, j
			}
		}
		prev, cur = cur, prev
	}

	matches, length := 0, 0
	i, j := bestI, bestJ
	for i > 0 && j > 0 {
		dir := trace[i*(m+1)+j]
		if dir == stop {
			break
		}
		length++
		switch dir {
		case diag:
			if a[i-1] == b[j-1] {
				matches++
			}
			i--
			j--
		case up:
			i--
		default:
			j--
		}
	}
	return Result{Score: int(bestScore), Matches: matches, AlignedLen: length}
}
