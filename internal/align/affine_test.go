package align

import (
	"math/rand"
	"testing"
)

func TestAffineIdentical(t *testing.T) {
	s := []byte("ACGTACGTAC")
	r := GlobalAffine(s, s, DefaultAffineScoring)
	if r.Score != 10 || r.Matches != 10 || r.AlignedLen != 10 || r.Identity() != 1 {
		t.Fatalf("unexpected %+v", r)
	}
}

func TestAffineEmptySides(t *testing.T) {
	sc := DefaultAffineScoring
	r := GlobalAffine(nil, []byte("ACGT"), sc)
	if r.Score != sc.GapOpen+4*sc.GapExtend || r.AlignedLen != 4 {
		t.Fatalf("unexpected %+v", r)
	}
	r = GlobalAffine(nil, nil, sc)
	if r.Score != 0 || r.AlignedLen != 0 {
		t.Fatalf("unexpected %+v", r)
	}
}

func TestAffineReducesToLinearWhenOpenIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		a := randSeq(rng, 5+rng.Intn(40))
		b := randSeq(rng, 5+rng.Intn(40))
		lin := Global(a, b, Scoring{Match: 1, Mismatch: -1, Gap: -2})
		aff := GlobalAffine(a, b, AffineScoring{Match: 1, Mismatch: -1, GapOpen: 0, GapExtend: -2})
		if lin.Score != aff.Score {
			t.Fatalf("trial %d: affine(open=0) score %d != linear %d", trial, aff.Score, lin.Score)
		}
	}
}

func TestAffinePrefersOneLongGap(t *testing.T) {
	// Sequence b = a with a 6-base block deleted. Under affine costs the
	// optimal alignment is one 6-gap (open + 6*extend), which the score
	// should reflect exactly; under the equivalent linear cost the gap
	// would be much more expensive.
	a := []byte("ACGTACGGTTCAGGCATTAC")
	b := append(append([]byte{}, a[:7]...), a[13:]...)
	sc := AffineScoring{Match: 1, Mismatch: -2, GapOpen: -4, GapExtend: -1}
	r := GlobalAffine(a, b, sc)
	wantScore := 14*sc.Match + sc.GapOpen + 6*sc.GapExtend
	if r.Score != wantScore {
		t.Fatalf("score %d, want %d (%+v)", r.Score, wantScore, r)
	}
	if r.Matches != 14 || r.AlignedLen != 20 {
		t.Fatalf("stats %+v", r)
	}
}

func TestAffineTwoGapsCostTwoOpens(t *testing.T) {
	// b misses two separate 2-base blocks: two opens must be paid.
	a := []byte("AACCGGTTAACCGGTT")
	b := []byte("AACCTTAAGGTT") // drop GG (pos 4-5) and CC (pos 10-11)
	sc := AffineScoring{Match: 1, Mismatch: -3, GapOpen: -2, GapExtend: -1}
	r := GlobalAffine(a, b, sc)
	wantScore := 12*sc.Match + 2*(sc.GapOpen+2*sc.GapExtend)
	if r.Score != wantScore {
		t.Fatalf("score %d, want %d", r.Score, wantScore)
	}
}

func TestAffineSymmetricScore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randSeq(rng, 10+rng.Intn(50))
		b := randSeq(rng, 10+rng.Intn(50))
		r1 := GlobalAffine(a, b, DefaultAffineScoring)
		r2 := GlobalAffine(b, a, DefaultAffineScoring)
		if r1.Score != r2.Score {
			t.Fatalf("asymmetric: %d vs %d", r1.Score, r2.Score)
		}
	}
}

func TestAffineStatsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		a := randSeq(rng, rng.Intn(60))
		b := randSeq(rng, rng.Intn(60))
		r := GlobalAffine(a, b, DefaultAffineScoring)
		longer := len(a)
		if len(b) > longer {
			longer = len(b)
		}
		if r.AlignedLen < longer || r.AlignedLen > len(a)+len(b) {
			t.Fatalf("aligned len %d outside bounds", r.AlignedLen)
		}
		if r.Matches < 0 || r.Matches > r.AlignedLen {
			t.Fatalf("matches %d of %d", r.Matches, r.AlignedLen)
		}
	}
}

func TestAffineHomopolymerSlipIsCheap(t *testing.T) {
	// The 454 error case: an 8-A run reads as 9 As. Affine cost charges
	// one open + one extend; identity stays high.
	a := []byte("CGTAAAAAAAACGTCGTCGT")
	b := []byte("CGTAAAAAAAAACGTCGTCGT")
	r := GlobalAffine(a, b, DefaultAffineScoring)
	if r.Matches != 20 || r.AlignedLen != 21 {
		t.Fatalf("stats %+v", r)
	}
	if r.Identity() < 0.95 {
		t.Fatalf("identity %.3f", r.Identity())
	}
}

func BenchmarkAffine200bp(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randSeq(rng, 200), randSeq(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GlobalAffine(x, y, DefaultAffineScoring)
	}
}
