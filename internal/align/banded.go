package align

// GlobalBanded computes a banded Needleman–Wunsch alignment constrained to
// diagonals within `band` of the main diagonal (adjusted for the length
// difference). For highly similar sequences — the regime sequence
// clustering cares about — a narrow band gives the same alignment at a
// fraction of the cost. Cells outside the band are treated as -infinity.
//
// If band < |len(a)-len(b)| the band is widened to make an alignment
// possible at all.
func GlobalBanded(a, b []byte, sc Scoring, band int) Result {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return Result{Score: sc.Gap * (n + m), Matches: 0, AlignedLen: n + m}
	}
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if band < diff+1 {
		band = diff + 1
	}
	if band >= m {
		return Global(a, b, sc) // band covers everything
	}

	const (
		diag = byte(0)
		up   = byte(1)
		left = byte(2)
		none = byte(3)
	)
	negInf := int32(-1 << 30)
	width := 2*band + 1
	// score[i] holds row i over columns j in [i-band, i+band]; index by
	// offset j-(i-band).
	trace := make([]byte, (n+1)*width)
	for i := range trace {
		trace[i] = none
	}
	prev := make([]int32, width)
	cur := make([]int32, width)

	// Row 0: columns 0..band.
	for o := 0; o < width; o++ {
		j := o - band // j - (0 - band) = o
		switch {
		case j < 0 || j > m:
			prev[o] = negInf
		case j == 0:
			prev[o] = 0
		default:
			prev[o] = int32(sc.Gap) * int32(j)
			trace[o] = left
		}
	}
	for i := 1; i <= n; i++ {
		lo, hi := i-band, i+band
		row := trace[i*width:]
		for o := 0; o < width; o++ {
			j := lo + o
			if j < 0 || j > m {
				cur[o] = negInf
				continue
			}
			if j == 0 {
				cur[o] = int32(sc.Gap) * int32(i)
				row[o] = up
				continue
			}
			sub := int32(sc.Mismatch)
			if a[i-1] == b[j-1] {
				sub = int32(sc.Match)
			}
			// prev row offsets: same j is o+1 (row shifts right by 1),
			// j-1 is o.
			best, dir := negInf, none
			if d := prev[o]; d > negInf {
				best, dir = d+sub, diag
			}
			if o+1 < width && prev[o+1] > negInf {
				if u := prev[o+1] + int32(sc.Gap); u > best {
					best, dir = u, up
				}
			}
			if o-1 >= 0 && cur[o-1] > negInf {
				if l := cur[o-1] + int32(sc.Gap); l > best {
					best, dir = l, left
				}
			}
			cur[o] = best
			row[o] = dir
		}
		_ = hi
		prev, cur = cur, prev
	}
	// Final cell: row n, column m -> offset m-(n-band).
	fo := m - (n - band)
	score := int(prev[fo])

	matches, length := 0, 0
	i, j := n, m
	for i > 0 || j > 0 {
		o := j - (i - band)
		length++
		switch trace[i*width+o] {
		case diag:
			if a[i-1] == b[j-1] {
				matches++
			}
			i--
			j--
		case up:
			i--
		case left:
			j--
		default:
			// Outside-band cell reached (shouldn't happen); bail to gaps.
			if i > 0 {
				i--
			} else {
				j--
			}
		}
	}
	return Result{Score: score, Matches: matches, AlignedLen: length}
}
