package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/pig"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Algorithm3Script is the paper's Pig pipeline (Algorithm 3), verbatim in
// structure. Three adjustments keep the under-specified original
// executable: CalculatePairwiseSimilarity additionally receives seqid3 so
// duplicate sketches resolve to distinct matrix rows; J keeps each
// similarity row as one composite field (the paper FLATTENs it, losing the
// row identity the downstream clustering needs); and the greedy branch
// consumes the grouped bag F of relation I directly.
const Algorithm3Script = `
A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV)) AS (minwise:long, seqid3:chararray);
F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);
I = GROUP F ALL;
J = FOREACH F GENERATE CalculatePairwiseSimilarity(minwise, seqid3, I.F) AS similaritymatrix:double;
K = FOREACH J GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, $LINK, $NUMHASH, $CUTOFF)) AS (seqid4:chararray, clusterlabel:int);
L = FOREACH I GENERATE FLATTEN(GreedyClustering(F, $NUMHASH, $CUTOFF)) AS (seqid5:chararray, clusterlabel:int);
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
`

// Algorithm3LSHScript is Algorithm 3 with the O(N²) similarity barrier
// removed: relation J (the all-pairs matrix) is gone, and both clustering
// branches call the LSHClustering UDF, which generates candidate pairs
// from banded MinHash buckets, verifies them at $CUTOFF and clusters each
// connected component with the exact algorithm. Selected by the CLIs'
// -candidate=lsh flag.
const Algorithm3LSHScript = `
A = LOAD '$INPUT' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER)) AS (seqkmer:long, seqid2:chararray);
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV)) AS (minwise:long, seqid3:chararray);
F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);
I = GROUP F ALL;
K = FOREACH I GENERATE FLATTEN(LSHClustering(F, $NUMHASH, $CUTOFF, 'hierarchical', $LINK)) AS (seqid4:chararray, clusterlabel:int);
L = FOREACH I GENERATE FLATTEN(LSHClustering(F, $NUMHASH, $CUTOFF, 'greedy', $LINK)) AS (seqid5:chararray, clusterlabel:int);
STORE K INTO '$OUTPUT1';
STORE L INTO '$OUTPUT2';
`

// ScriptParams binds the Algorithm 3 parameter holes.
type ScriptParams struct {
	Input   string // DFS path of the FASTA input
	Output1 string // hierarchical output directory
	Output2 string // greedy output directory
	K       int    // $KMER
	NumHash int    // $NUMHASH
	Div     uint64 // $DIV: prime > feature-space size; 0 derives 4^k+granularity
	Link    string // $LINK: single | average | complete
	Cutoff  float64
	// Candidate selects the script variant: "" or "exact" runs the
	// paper's Algorithm3Script (all-pairs matrix); "lsh" runs
	// Algorithm3LSHScript (banded candidate generation, no matrix).
	Candidate string
}

// ScriptResult holds both clustering outputs of the Algorithm 3 run.
type ScriptResult struct {
	// Hierarchical maps read id -> cluster label (relation K).
	Hierarchical map[string]int
	// Greedy maps read id -> cluster label (relation L).
	Greedy map[string]int
	// Virtual and Jobs aggregate the underlying MapReduce jobs.
	Virtual time.Duration
	Jobs    int
	// Restored lists STORE outputs served from a validated checkpoint
	// instead of being recomputed (resumed runs only).
	Restored []string
}

// ScriptOptions bundles the optional knobs of an Algorithm 3 run: span
// tracing, fault injection, and STORE-level checkpointing with resume.
type ScriptOptions struct {
	Trace      *trace.Recorder
	Faults     *faults.Injector
	Checkpoint *checkpoint.Journal
	Resume     bool
	// ShuffleBufferBytes caps each map task's sort buffer on the script's
	// jobs (see mapreduce.Job.ShuffleBufferBytes); 0 keeps the in-memory
	// shuffle.
	ShuffleBufferBytes int
	// StoreBits selects the signature backing of the clustering UDFs
	// (see Options.StoreBits): 0 store-backed full width (default),
	// -1 legacy slices, 1..16 b-bit packed.
	StoreBits int
}

// nextPrimeAbove returns the smallest prime > n (trial division; the
// values involved are small enough that this is instantaneous).
func nextPrimeAbove(n uint64) uint64 {
	isPrime := func(v uint64) bool {
		if v < 2 {
			return false
		}
		for d := uint64(2); d*d <= v; d++ {
			if v%d == 0 {
				return false
			}
		}
		return true
	}
	for v := n + 1; ; v++ {
		if isPrime(v) {
			return v
		}
	}
}

// RunScript executes the paper's Algorithm 3 against the given DFS and
// simulated cluster.
func RunScript(fs *dfs.FileSystem, clusterCfg mapreduce.Cluster, p ScriptParams, seed int64) (*ScriptResult, error) {
	return RunScriptTraced(fs, clusterCfg, p, seed, nil)
}

// RunScriptTraced is RunScript with an optional span recorder attached to
// both the DFS and the MapReduce engine; pass nil to run untraced.
func RunScriptTraced(fs *dfs.FileSystem, clusterCfg mapreduce.Cluster, p ScriptParams, seed int64, rec *trace.Recorder) (*ScriptResult, error) {
	return RunScriptOpts(fs, clusterCfg, p, seed, ScriptOptions{Trace: rec})
}

// RunScriptOpts is the fully parameterized Algorithm 3 entry point.
func RunScriptOpts(fs *dfs.FileSystem, clusterCfg mapreduce.Cluster, p ScriptParams, seed int64, so ScriptOptions) (*ScriptResult, error) {
	rec := so.Trace
	if p.K < 1 {
		return nil, fmt.Errorf("core: script needs KMER >= 1")
	}
	if p.NumHash < 1 {
		return nil, fmt.Errorf("core: script needs NUMHASH >= 1")
	}
	if p.Link == "" {
		p.Link = "average"
	}
	div := p.Div
	if div == 0 {
		// The paper requires a prime larger than the feature-set size 4^k.
		div = nextPrimeAbove(uint64(1) << (2 * uint(p.K)))
	}
	engine, err := mapreduce.NewEngine(clusterCfg)
	if err != nil {
		return nil, err
	}
	engine.Trace = rec
	engine.Faults = so.Faults
	if rec.Enabled() {
		fs.SetTrace(rec)
	}
	if so.StoreBits < -1 || so.StoreBits > 16 {
		return nil, fmt.Errorf("core: StoreBits must be -1 (slices), 0 (full store) or 1..16 (packed), got %d", so.StoreBits)
	}
	ctx := &pig.Context{
		FS:                 fs,
		Engine:             engine,
		Registry:           NewRegistry(),
		Seed:               seed,
		Checkpoint:         so.Checkpoint,
		Resume:             so.Resume,
		ShuffleBufferBytes: so.ShuffleBufferBytes,
		StoreBits:          so.StoreBits,
		Params: map[string]string{
			"INPUT":   p.Input,
			"OUTPUT1": p.Output1,
			"OUTPUT2": p.Output2,
			"KMER":    fmt.Sprint(p.K),
			"NUMHASH": fmt.Sprint(p.NumHash),
			"DIV":     fmt.Sprint(div),
			"LINK":    p.Link,
			"CUTOFF":  fmt.Sprint(p.Cutoff),
		},
	}
	source := Algorithm3Script
	switch p.Candidate {
	case "", "exact":
	case "lsh":
		source = Algorithm3LSHScript
	default:
		return nil, fmt.Errorf("core: unknown script candidate generator %q (want exact or lsh)", p.Candidate)
	}
	script, err := pig.Compile(source)
	if err != nil {
		return nil, err
	}
	run, err := script.Run(ctx)
	if err != nil {
		return nil, err
	}
	res := &ScriptResult{
		Hierarchical: labelMap(run.Aliases["K"]),
		Greedy:       labelMap(run.Aliases["L"]),
		Virtual:      run.Virtual,
		Jobs:         run.Jobs,
		Restored:     run.Restored,
	}
	return res, nil
}

// labelMap converts a (seqid, clusterlabel) relation into a map.
func labelMap(rel *pig.Relation) map[string]int {
	if rel == nil {
		return nil
	}
	out := make(map[string]int, len(rel.Tuples))
	for _, tup := range rel.Tuples {
		if len(tup.Fields) < 2 {
			continue
		}
		id, err1 := pig.AsString(tup.Fields[0])
		label, err2 := pig.AsInt(tup.Fields[1])
		if err1 == nil && err2 == nil {
			out[id] = label
		}
	}
	return out
}

// LabelsToClustering converts an id->label map into a Clustering aligned
// with the given read-id order.
func LabelsToClustering(labels map[string]int, ids []string) (metrics.Clustering, error) {
	c := make(metrics.Clustering, len(ids))
	for i, id := range ids {
		l, ok := labels[id]
		if !ok {
			return nil, fmt.Errorf("core: read %q missing from labels", id)
		}
		c[i] = l
	}
	return c, nil
}

// ModelRuntime computes the modelled Figure-2 runtime of the pipeline on
// numReads reads without executing it. The sketch phase costs one map
// record per read; the similarity phase is row-partitioned with per-row
// cost proportional to the candidate set a row is compared against —
// bounded by the banding the system applies at scale (the paper's 10M-read
// hierarchical runs are only feasible with bounded row candidate sets).
func ModelRuntime(numReads int, c mapreduce.Cluster, mode Mode, numHashes int) time.Duration {
	if numReads <= 0 {
		return 0
	}
	// Task granularity: at least two waves per slot, and no split larger
	// than ~64k reads (Hadoop schedules one map task per 64 MB block; at
	// ~1 kb per FASTA record that is ~65k records).
	splits := 2 * c.TotalSlots()
	if byBlock := (numReads + 65535) / 65536; byBlock > splits {
		splits = byBlock
	}
	perSplit := (numReads + splits - 1) / splits
	sketchFactor := float64(numHashes) / 2
	var tasks []mapreduce.TaskCost
	for done := 0; done < numReads; done += perSplit {
		n := perSplit
		if done+n > numReads {
			n = numReads - done
		}
		d := c.Cost.TaskStartup + time.Duration(float64(n)*sketchFactor*float64(c.Cost.MapPerRecord))
		tasks = append(tasks, mapreduce.TaskCost{Duration: d})
	}
	total := c.Cost.JobStartup + c.Makespan(tasks)

	// Clustering phase.
	candidates := 256.0 // bounded per-row comparison set at scale
	if float64(numReads) < candidates {
		candidates = float64(numReads)
	}
	rowFactor := candidates * 0.05
	if mode == GreedyMode {
		rowFactor /= 2 // shrinking representative set
	}
	var phase []mapreduce.TaskCost
	for done := 0; done < numReads; done += perSplit {
		n := perSplit
		if done+n > numReads {
			n = numReads - done
		}
		d := c.Cost.TaskStartup + time.Duration(float64(n)*rowFactor*float64(c.Cost.MapPerRecord))
		phase = append(phase, mapreduce.TaskCost{Duration: d})
	}
	total += c.Cost.JobStartup + c.Makespan(phase)
	return total
}

// SortedClusterIDs returns the distinct labels of a label map, ascending.
func SortedClusterIDs(labels map[string]int) []int {
	seen := map[int]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
