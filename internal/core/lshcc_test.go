package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
)

// lshOptions are the ISSUE's equivalence parameters: k=5, θ=0.9, n=100
// hashes on the small simulated cluster.
func lshOptions(mode Mode, seed int64) Options {
	return Options{
		K: 5, NumHashes: 100, Theta: 0.9, Mode: mode,
		Seed: seed, Cluster: smallCluster(),
	}
}

func runBoth(t *testing.T, reads []fasta.Record, opt Options) (exact, lsh *Result) {
	t.Helper()
	exact, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Candidate = CandidateLSH
	lsh, err = Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	return exact, lsh
}

// TestClusterLSHCCEquivalence pins the LSH+CC path's assignments identical
// to the exact all-pairs path (the oracle) for greedy mode and both
// hierarchical linkages the equivalence argument covers, on n ≤ 200 reads
// in k=5/θ=0.9 whole-metagenome configuration.
func TestClusterLSHCCEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		reads, _ := makeReads(8, 25, 200, 0.004, seed)
		cases := []struct {
			name string
			mode Mode
			link cluster.Linkage
		}{
			{"greedy", GreedyMode, cluster.Single},
			{"single", HierarchicalMode, cluster.Single},
			{"complete", HierarchicalMode, cluster.Complete},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				opt := lshOptions(tc.mode, seed)
				opt.Linkage = tc.link
				// Equivalence needs every ≥θ pair to collide in some band.
				// The default knee geometry (5×17) trades recall at exactly
				// θ for fewer candidates; 20×5 puts the knee at 0.55 so a
				// θ=0.9 pair is missed with probability (1-0.9⁵)²⁰ ≈ 3e-8 —
				// the verify stage still discards every sub-θ candidate.
				opt.LSH = cluster.LSHOptions{Bands: 20, Rows: 5}
				exact, lsh := runBoth(t, reads, opt)
				if !reflect.DeepEqual(lsh.Assignments, exact.Assignments) {
					t.Fatalf("LSH assignments diverge from exact path\n lsh:   %v\n exact: %v",
						lsh.Assignments, exact.Assignments)
				}
				if lsh.Counters["lsh.candidate_pairs"] == 0 {
					t.Fatal("no candidate pairs counted")
				}
				if lsh.Counters["cc.rounds"] == 0 {
					t.Fatal("no connected-components rounds counted")
				}
			})
		}
	}
}

// TestClusterLSHCCExternalShuffleSpill routes every LSH-path job through
// the spill-and-merge external shuffle and requires bit-identical
// assignments.
func TestClusterLSHCCExternalShuffleSpill(t *testing.T) {
	reads, _ := makeReads(6, 20, 200, 0.004, 11)
	opt := lshOptions(GreedyMode, 11)
	opt.Candidate = CandidateLSH
	base, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.ShuffleBufferBytes = 1 << 10
	spilled, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spilled.Assignments, base.Assignments) {
		t.Fatal("external shuffle changed the LSH clustering")
	}
	if spilled.Counters["shuffle.spills"] == 0 {
		t.Fatal("expected map-side spills with a 1KiB sort buffer")
	}
}

// TestClusterLSHCCChaosBitIdentical runs the LSH path under injected task
// crashes and requires the clustering to be bit-identical to the
// fault-free run for every chaos seed — lossless recovery end to end
// through bands, verify, Large-Star/Small-Star and the finish job.
func TestClusterLSHCCChaosBitIdentical(t *testing.T) {
	reads, _ := makeReads(6, 20, 200, 0.004, 5)
	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		opt := lshOptions(mode, 5)
		opt.Candidate = CandidateLSH
		baseline, err := Run(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range resumeSeeds(t) {
			fopt := opt
			fopt.Faults = faults.MustNew(faults.Plan{Seed: seed, TaskCrashProb: 0.15})
			res, err := Run(reads, fopt)
			if err != nil {
				t.Fatalf("%s seed %d: %v", mode, seed, err)
			}
			if !reflect.DeepEqual(res.Assignments, baseline.Assignments) {
				t.Fatalf("%s seed %d: faulted run diverged from fault-free clustering", mode, seed)
			}
			if res.Counters["task.failures"] == 0 {
				t.Fatalf("%s seed %d: no crashes injected", mode, seed)
			}
		}
	}
}

// TestClusterLSHCCResumeBitIdentical kills the driver after every LSH-path
// stage boundary and resumes from the journal, requiring the resumed
// clustering to match an uninterrupted run exactly.
func TestClusterLSHCCResumeBitIdentical(t *testing.T) {
	reads, _ := makeReads(5, 15, 200, 0.004, 3)
	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		opt := lshOptions(mode, 3)
		opt.Candidate = CandidateLSH
		baseline, err := Run(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, crashAfter := range []string{StageSketch, StageLSHEdges, StageCC, StageLSHCluster} {
			dir := t.TempDir()
			run1 := opt
			run1.Checkpoint = openJournal(t, dir)
			run1.Faults = faults.MustNew(faults.Plan{
				DriverCrashes: []faults.DriverCrash{{AfterStage: crashAfter}},
			})
			_, err := Run(reads, run1)
			var dce *faults.DriverCrashError
			if !errors.As(err, &dce) || dce.Stage != crashAfter {
				t.Fatalf("%s crash after %s: got %v", mode, crashAfter, err)
			}

			run2 := opt
			run2.Checkpoint = openJournal(t, dir)
			run2.Resume = ResumeOn
			res, err := Run(reads, run2)
			if err != nil {
				t.Fatalf("%s resume after %s: %v", mode, crashAfter, err)
			}
			if !reflect.DeepEqual(res.Assignments, baseline.Assignments) {
				t.Fatalf("%s resume after %s changed the clustering", mode, crashAfter)
			}
			if len(res.SkippedStages) == 0 {
				t.Fatalf("%s resume after %s re-executed every stage", mode, crashAfter)
			}
		}
	}
}

// TestClusterLSHBucketCapOverflow floods one LSH bucket with identical
// reads and requires the per-bucket cap to fire (bounding pair expansion)
// with the overflow surfaced as a counter.
func TestClusterLSHBucketCapOverflow(t *testing.T) {
	var reads []fasta.Record
	seq := []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")
	for i := 0; i < 40; i++ {
		reads = append(reads, fasta.Record{ID: fmt.Sprintf("dup%d", i), Seq: seq})
	}
	opt := lshOptions(GreedyMode, 1)
	opt.Candidate = CandidateLSH
	opt.LSHBucketCap = 8
	res, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["lsh.bucket_overflow"] == 0 {
		t.Fatal("expected bucket overflow with 40 identical reads and cap 8")
	}
	// Capped buckets bound candidate pairs: at most cap·(cap-1)/2 per
	// bucket instead of 40·39/2.
	if got, max := res.Counters["lsh.candidate_pairs"], int64(8*7/2); got > max {
		t.Fatalf("candidate pairs = %d, want ≤ %d under cap", got, max)
	}
}

// TestClusterLSHCCEmptySignatures checks reads with no k-mers (too short)
// cluster as singletons on both paths identically.
func TestClusterLSHCCEmptySignatures(t *testing.T) {
	reads, _ := makeReads(3, 6, 120, 0.0, 9)
	reads = append(reads,
		fasta.Record{ID: "tiny1", Seq: []byte("AC")},
		fasta.Record{ID: "tiny2", Seq: []byte("GT")},
	)
	exact, lsh := runBoth(t, reads, lshOptions(GreedyMode, 9))
	if !reflect.DeepEqual(lsh.Assignments, exact.Assignments) {
		t.Fatalf("empty-signature reads diverge\n lsh:   %v\n exact: %v", lsh.Assignments, exact.Assignments)
	}
	n := len(reads)
	if lsh.Assignments[n-1] == lsh.Assignments[n-2] {
		t.Fatal("two empty-signature reads landed in one cluster")
	}
}

// TestLSHScriptMatchesExactScript runs Algorithm3LSHScript and the
// paper's Algorithm3Script on the same DFS input and requires identical
// label maps from both clustering branches — the Pig-level equivalence of
// the sub-quadratic path.
func TestLSHScriptMatchesExactScript(t *testing.T) {
	reads, _ := makeReads(4, 6, 200, 0.004, 21)
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 4, BlockSize: 4096, Replication: 2})
	var sb strings.Builder
	for _, r := range reads {
		fmt.Fprintf(&sb, ">%s\n%s\n", r.ID, r.Seq)
	}
	if err := fs.WriteFile("/in/reads.fa", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	params := ScriptParams{
		Input: "/in/reads.fa", Output1: "/out/hier", Output2: "/out/greedy",
		K: 8, NumHash: 50, Link: "single", Cutoff: 0.4,
	}
	exact, err := RunScript(fs, smallCluster(), params, 12)
	if err != nil {
		t.Fatal(err)
	}
	params.Candidate = "lsh"
	params.Output1, params.Output2 = "/out/hier-lsh", "/out/greedy-lsh"
	lsh, err := RunScript(fs, smallCluster(), params, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lsh.Greedy, exact.Greedy) {
		t.Fatalf("greedy branch diverges\n lsh:   %v\n exact: %v", lsh.Greedy, exact.Greedy)
	}
	if !reflect.DeepEqual(lsh.Hierarchical, exact.Hierarchical) {
		t.Fatalf("hierarchical branch diverges\n lsh:   %v\n exact: %v", lsh.Hierarchical, exact.Hierarchical)
	}
	if !fs.Exists("/out/hier-lsh/part-00000") || !fs.Exists("/out/greedy-lsh/part-00000") {
		t.Fatal("LSH script did not store outputs")
	}

	params.Candidate = "fuzzy"
	if _, err := RunScript(fs, smallCluster(), params, 12); err == nil {
		t.Fatal("unknown script candidate accepted")
	}
}

func TestParseCandidateGen(t *testing.T) {
	for s, want := range map[string]CandidateGen{"": CandidateExact, "exact": CandidateExact, "lsh": CandidateLSH} {
		got, err := ParseCandidateGen(s)
		if err != nil || got != want {
			t.Fatalf("ParseCandidateGen(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCandidateGen("fuzzy"); err == nil {
		t.Fatal("expected error for unknown generator")
	}
	if CandidateExact.String() != "exact" || CandidateLSH.String() != "lsh" || CandidateGen(9).String() != "unknown" {
		t.Fatal("CandidateGen names wrong")
	}
}

func TestOptionsValidateLSH(t *testing.T) {
	base := lshOptions(GreedyMode, 1)
	base.Candidate = CandidateLSH

	bad := base
	bad.LSH = cluster.LSHOptions{Bands: 50, Rows: 3} // 150 > 100 slots
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized geometry accepted")
	}
	bad = base
	bad.LSHBucketCap = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative bucket cap accepted")
	}
	bad = base
	bad.Candidate = CandidateGen(7)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid candidate generator accepted")
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid LSH options rejected: %v", err)
	}
}
