package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// The LSH+CC clustering path (Options.Candidate == CandidateLSH). Instead
// of the O(N²) all-pairs barrier it runs:
//
//  1. candidate generation — a map phase hashes each signature's b bands
//     and emits (bandHash, readID); the reduce phase expands every bucket
//     into candidate pairs under a per-bucket size cap,
//  2. verification — each distinct candidate pair is scored once with the
//     zero-alloc SimilarityPrepared kernel; pairs ≥ θ become edges,
//  3. connected components — Rastogi et al.'s alternating Large-Star /
//     Small-Star MapReduce rounds (internal/cluster/cc.go),
//  4. finish — the exact clustering algorithm (greedy or hierarchical)
//     runs independently inside each component, and the driver relabels
//     (component, local label) pairs by first appearance in read order.
//
// Because similarities across components are below θ whenever every ≥θ
// pair collides in some band, step 4 reproduces the exact path's
// assignments bit for bit — the equivalence the lshcc tests pin.

// lshGeometry resolves the banding geometry from the options.
func lshGeometry(opt Options) cluster.LSHOptions {
	if opt.LSH != (cluster.LSHOptions{}) {
		return opt.LSH
	}
	return cluster.GeometryFor(opt.NumHashes, opt.Theta)
}

// lshBucketCap resolves the per-bucket expansion cap.
func lshBucketCap(opt Options) int {
	if opt.LSHBucketCap > 0 {
		return opt.LSHBucketCap
	}
	return DefaultLSHBucketCap
}

// pairKey formats a candidate pair (i < j) as a fixed-width shuffle key.
func pairKey(i, j int) string { return fmt.Sprintf("%012d:%012d", i, j) }

// lshEdgesJobs runs candidate generation and verification as two chained
// MapReduce jobs and returns the verified θ-edges, sorted. Signatures are
// read through the source — band hashes and pair similarities come off
// borrowed store rows (or prepared slices on the legacy path) without
// materializing any per-task signature copies.
func lshEdgesJobs(engine *mapreduce.Engine, src sigSource, opt Options) ([]cluster.Edge, []*mapreduce.Result, error) {
	lsh := lshGeometry(opt)
	cap := lshBucketCap(opt)

	// Empty signatures carry no features: they hash every band to the same
	// value and have similarity 0 to everything, so banding them would
	// only manufacture degenerate buckets. They stay out of the candidate
	// stage and end as singleton components, exactly like the exact path
	// at θ > 0.
	var records []mapreduce.KeyValue
	for i := 0; i < src.Len(); i++ {
		if !src.Empty(i) {
			records = append(records, mapreduce.KeyValue{Key: fmt.Sprintf("%012d", i), Value: i})
		}
	}

	var overflow, buckets atomic.Int64
	bandsJob := &mapreduce.Job{
		Name:               "mrmcminh-lsh-bands",
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: splitSize(len(records), engine.Cluster)},
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// One record hashes b bands of r rows each.
		MapCostFactor: float64(lsh.Bands) / 2,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			i := kv.Value.(int)
			for b := 0; b < lsh.Bands; b++ {
				h := src.BandHash(i, b, lsh.Rows)
				emit(mapreduce.KeyValue{Key: fmt.Sprintf("%03d:%016x", b, h), Value: i})
			}
			return nil
		},
		Reduce: func(_ string, values []any, emit func(mapreduce.KeyValue)) error {
			if len(values) < 2 {
				return nil
			}
			buckets.Add(1)
			ids := make([]int, len(values))
			for i, v := range values {
				ids[i] = v.(int)
			}
			sort.Ints(ids)
			if len(ids) > cap {
				// A degenerate bucket of size B would emit B(B-1)/2 pairs
				// and re-quadratize the run; keep the cap lowest ids (the
				// dropped reads stay reachable through their other bands).
				overflow.Add(int64(len(ids) - cap))
				ids = ids[:cap]
			}
			for a := 0; a < len(ids); a++ {
				for b := a + 1; b < len(ids); b++ {
					emit(mapreduce.KeyValue{Key: pairKey(ids[a], ids[b]), Value: nil})
				}
			}
			return nil
		},
	}
	bandsOut, err := engine.Run(bandsJob)
	if err != nil {
		return nil, nil, err
	}
	bandsOut.Counters.Add("lsh.buckets", buckets.Load())
	bandsOut.Counters.Add("lsh.bucket_overflow", overflow.Load())

	var candidates, edgeCount atomic.Int64
	verifyJob := &mapreduce.Job{
		Name:               "mrmcminh-lsh-verify",
		Input:              mapreduce.MemoryInput{Records: bandsOut.Output, SplitSize: splitSize(len(bandsOut.Output), engine.Cluster)},
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// Grouping by pair key dedups pairs surfaced by several bands, so
		// each candidate is verified exactly once.
		ReduceCostFactor: float64(opt.NumHashes) / 20,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			emit(kv)
			return nil
		},
		Reduce: func(key string, _ []any, emit func(mapreduce.KeyValue)) error {
			var i, j int
			if _, err := fmt.Sscanf(key, "%d:%d", &i, &j); err != nil {
				return fmt.Errorf("core: bad candidate pair key %q: %w", key, err)
			}
			candidates.Add(1)
			if src.Similarity(i, j) >= opt.Theta {
				edgeCount.Add(1)
				emit(mapreduce.KeyValue{Key: key, Value: cluster.Edge{U: i, V: j}})
			}
			return nil
		},
	}
	verifyOut, err := engine.Run(verifyJob)
	if err != nil {
		return nil, nil, err
	}
	verifyOut.Counters.Add("lsh.candidate_pairs", candidates.Load())
	verifyOut.Counters.Add("lsh.edges", edgeCount.Load())

	edges := make([]cluster.Edge, 0, len(verifyOut.Output))
	for _, kv := range verifyOut.Output {
		edges = append(edges, kv.Value.(cluster.Edge))
	}
	// Reduce output is ordered per partition, not globally: sort so the
	// edge list (and its checkpoint bytes) is canonical.
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	return edges, []*mapreduce.Result{bandsOut, verifyOut}, nil
}

// lshFinishJob runs the exact clustering algorithm independently inside
// each connected component (components are grouped in the shuffle, members
// arrive as values) and returns each read's (component, local label)
// resolved to a global label by first appearance in read order.
func lshFinishJob(engine *mapreduce.Engine, src sigSource, comps []int, opt Options) (metrics.Clustering, *mapreduce.Result, error) {
	n := src.Len()
	records := make([]mapreduce.KeyValue, n)
	for i := range records {
		records[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%012d", i), Value: i}
	}
	local := make([]int, n)
	job := &mapreduce.Job{
		Name:               "mrmcminh-lsh-finish",
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: splitSize(n, engine.Cluster)},
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// Per-component clustering costs |C|² in the worst case but
		// components are θ-similarity neighborhoods, far smaller than N.
		ReduceCostFactor: 7.5,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			i := kv.Value.(int)
			emit(mapreduce.KeyValue{Key: fmt.Sprintf("%012d", comps[i]), Value: i})
			return nil
		},
		Reduce: func(_ string, values []any, emit func(mapreduce.KeyValue)) error {
			members := make([]int, len(values))
			for i, v := range values {
				members[i] = v.(int)
			}
			// Global index order within the component: the exact algorithms
			// are order-sensitive and the equivalence proof needs the
			// restriction of the global order.
			sort.Ints(members)
			var labels metrics.Clustering
			if len(members) == 1 {
				labels = metrics.Clustering{0}
			} else {
				// Restrict the source to the component — an index remap, no
				// signature copies — and run the exact algorithm over it.
				// GreedySource/HierarchicalFromSource over a subset are
				// pinned bit-identical to the copied-slice legacy path by
				// the cluster equivalence tests.
				sub := cluster.Subset(src, members)
				var err error
				switch opt.Mode {
				case GreedyMode:
					labels, err = cluster.GreedySource(sub, cluster.GreedyOptions{Threshold: opt.Theta, Estimator: opt.Estimator})
				case HierarchicalMode:
					labels, err = cluster.HierarchicalFromSource(sub, opt.Linkage, opt.Theta)
				}
				if err != nil {
					return err
				}
			}
			for i, m := range members {
				emit(mapreduce.KeyValue{Key: fmt.Sprintf("%012d", m), Value: labels[i]})
			}
			return nil
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	for _, kv := range out.Output {
		var idx int
		if _, err := fmt.Sscanf(kv.Key, "%d", &idx); err != nil {
			return nil, nil, err
		}
		local[idx] = kv.Value.(int)
	}
	// Relabel (component, local) by first appearance in read order. A
	// cluster's smallest-index member is where the exact path created its
	// label, so this reproduces the exact path's label sequence.
	type clusterID struct{ comp, local int }
	global := make(map[clusterID]int)
	assign := make(metrics.Clustering, n)
	next := 0
	for i := 0; i < n; i++ {
		id := clusterID{comp: comps[i], local: local[i]}
		g, ok := global[id]
		if !ok {
			g = next
			global[id] = g
			next++
		}
		assign[i] = g
	}
	return assign, out, nil
}

// clusterLSHCC drives the LSH candidate stage, connected components and
// the per-component finish, threading each stage through the checkpoint
// runner exactly like the exact path's stages.
func clusterLSHCC(engine *mapreduce.Engine, src sigSource, sigsHash string, opt Options, res *Result, ck *ckptRunner, addJob func(*mapreduce.Result)) error {
	lsh := lshGeometry(opt)
	edgeParams := map[string]string{
		"theta":      fmt.Sprint(opt.Theta),
		"estimator":  fmt.Sprint(int(opt.Estimator)),
		"bands":      fmt.Sprint(lsh.Bands),
		"rows":       fmt.Sprint(lsh.Rows),
		"bucket_cap": fmt.Sprint(lshBucketCap(opt)),
	}
	var edges []cluster.Edge
	var edgeBytes []byte
	if data, ok, err := ck.lookup(StageLSHEdges, sigsHash, edgeParams); err != nil {
		return err
	} else if ok {
		if edges, err = decodeEdges(data); err != nil {
			return err
		}
		edgeBytes = data
	} else {
		var results []*mapreduce.Result
		var err error
		if edges, results, err = lshEdgesJobs(engine, src, opt); err != nil {
			return err
		}
		for _, r := range results {
			addJob(r)
		}
		if opt.Checkpoint != nil {
			edgeBytes = encodeEdges(edges)
		}
		if err := ck.commit(StageLSHEdges, sigsHash, edgeParams, func() []byte { return edgeBytes }); err != nil {
			return err
		}
	}
	var edgesHash string
	if opt.Checkpoint != nil {
		edgesHash = checkpoint.HashBytes(edgeBytes)
	}

	ccParams := map[string]string{
		"n":          fmt.Sprint(src.Len()),
		"max_rounds": fmt.Sprint(cluster.DefaultCCMaxRounds),
	}
	var comps []int
	var compBytes []byte
	if data, ok, err := ck.lookup(StageCC, edgesHash, ccParams); err != nil {
		return err
	} else if ok {
		labels, err := decodeLabels(data)
		if err != nil {
			return err
		}
		comps = labels
		compBytes = data
	} else {
		labels, results, _, err := cluster.ConnectedComponentsMR(engine, src.Len(), edges, cluster.CCOptions{
			ShuffleBufferBytes: opt.ShuffleBufferBytes,
		})
		if err != nil {
			return err
		}
		comps = labels
		for _, r := range results {
			addJob(r)
		}
		if opt.Checkpoint != nil {
			compBytes = encodeLabels(comps)
		}
		if err := ck.commit(StageCC, edgesHash, ccParams, func() []byte { return compBytes }); err != nil {
			return err
		}
	}
	var compsHash string
	if opt.Checkpoint != nil {
		compsHash = checkpoint.HashBytes(compBytes)
	}

	finishParams := map[string]string{
		"mode":      fmt.Sprint(int(opt.Mode)),
		"theta":     fmt.Sprint(opt.Theta),
		"linkage":   fmt.Sprint(int(opt.Linkage)),
		"estimator": fmt.Sprint(int(opt.Estimator)),
	}
	if data, ok, err := ck.lookup(StageLSHCluster, compsHash, finishParams); err != nil {
		return err
	} else if ok {
		if res.Assignments, err = decodeLabels(data); err != nil {
			return err
		}
	} else {
		labels, out, err := lshFinishJob(engine, src, comps, opt)
		if err != nil {
			return err
		}
		res.Assignments = labels
		addJob(out)
		if err := ck.commit(StageLSHCluster, compsHash, finishParams, func() []byte { return encodeLabels(labels) }); err != nil {
			return err
		}
	}
	return nil
}
