package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
)

// End-to-end external shuffle: the pipeline with a sort buffer far smaller
// than one signature record — so the greedy job's map tasks spill on every
// emit — must cluster bit-identically to the in-memory shuffle, with and
// without chaos-plan fault injection. The hierarchical pipeline is map-only
// (sketch and similarity rows never shuffle), so its runs document the
// other invariant: map-only jobs ignore the buffer entirely.
func TestPipelineSpillShuffleBitIdenticalUnderChaos(t *testing.T) {
	reads, _ := makeReads(4, 6, 200, 0.01, 5)
	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		t.Run(mode.String(), func(t *testing.T) {
			opt := Options{
				K: 8, NumHashes: 50, Theta: 0.4, Mode: mode,
				Seed: 9, Cluster: smallCluster(),
			}
			baseline, err := Run(reads, opt)
			if err != nil {
				t.Fatal(err)
			}
			if baseline.Counters[mapreduce.CounterShuffleSpills] != 0 {
				t.Fatal("in-memory pipeline recorded spills")
			}

			// A 50-hash signature record is >400 bytes; a 256-byte buffer
			// overflows on every emitted record, i.e. well over twice per
			// map task of the shuffling (greedy) job.
			spillOpt := opt
			spillOpt.ShuffleBufferBytes = 256
			spilled, err := Run(reads, spillOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline.Assignments, spilled.Assignments) {
				t.Fatal("external shuffle changed the clustering")
			}
			spills := spilled.Counters[mapreduce.CounterShuffleSpills]
			if mode == HierarchicalMode {
				// Sketch and similarity jobs are map-only: nothing shuffles,
				// so nothing may spill no matter how small the buffer.
				if spills != 0 {
					t.Fatalf("map-only pipeline spilled %d times", spills)
				}
				return
			}
			mapRecords := spilled.Counters[mapreduce.CounterMapOutputRecords]
			if spills == 0 || spilled.Counters[mapreduce.CounterShuffleSpilledBytes] == 0 {
				t.Fatalf("bounded pipeline did not spill (counters %v)", spilled.Counters)
			}
			// Every reduce-bound record overflowed the buffer on its own;
			// the map-only sketch job contributes half of mapRecords, the
			// greedy job the other half — all of which must have spilled.
			if spills*4 < mapRecords {
				t.Fatalf("spills = %d for %d map records; buffer not forcing per-record spills", spills, mapRecords)
			}
			if spilled.Virtual <= baseline.Virtual {
				t.Fatalf("spill I/O should cost virtual time: %v <= %v", spilled.Virtual, baseline.Virtual)
			}

			for _, seed := range []int64{1, 2, 3} {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					chaos := spillOpt
					chaos.Retry = mapreduce.RetryPolicy{MaxAttempts: 4}
					chaos.Faults = faults.MustNew(faults.ChaosPlan(seed))
					res, err := Run(reads, chaos)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(baseline.Assignments, res.Assignments) {
						t.Fatalf("seed %d: chaos + spill changed the clustering", seed)
					}
					if res.Counters[mapreduce.CounterShuffleSpills] == 0 {
						t.Fatalf("seed %d: chaos run skipped the spill path", seed)
					}
				})
			}
		})
	}
}
