package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
	"github.com/metagenomics/mrmcminh/internal/pig"
)

// makeReads builds g groups of m reads each: members of a group are copies
// of a random template with a small mutation rate, so groups are easy to
// recover at moderate thresholds.
func makeReads(g, m, length int, mutRate float64, seed int64) ([]fasta.Record, []string) {
	rng := rand.New(rand.NewSource(seed))
	var reads []fasta.Record
	var truth []string
	for gi := 0; gi < g; gi++ {
		template := make([]byte, length)
		for i := range template {
			template[i] = "ACGT"[rng.Intn(4)]
		}
		for mi := 0; mi < m; mi++ {
			seq := append([]byte{}, template...)
			for i := range seq {
				if rng.Float64() < mutRate {
					seq[i] = "ACGT"[rng.Intn(4)]
				}
			}
			reads = append(reads, fasta.Record{
				ID:  fmt.Sprintf("g%d_r%d", gi, mi),
				Seq: seq,
			})
			truth = append(truth, fmt.Sprintf("species%d", gi))
		}
	}
	return reads, truth
}

func smallCluster() mapreduce.Cluster {
	return mapreduce.Cluster{Nodes: 4, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
}

func TestModeString(t *testing.T) {
	if GreedyMode.String() != "MrMC-MinH^g" || HierarchicalMode.String() != "MrMC-MinH^h" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{K: -1},
		{K: 40},
		{NumHashes: -5},
		{Theta: 1.5},
		{Theta: -0.1},
		{Mode: Mode(7)},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestRunGreedyRecoversGroups(t *testing.T) {
	reads, truth := makeReads(3, 12, 300, 0.01, 1)
	res, err := Run(reads, Options{
		K: 8, NumHashes: 60, Theta: 0.35, Mode: GreedyMode,
		Cluster: smallCluster(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 3 {
		t.Fatalf("got %d clusters, want 3", res.NumClusters())
	}
	acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 99.9 {
		t.Fatalf("accuracy %.2f", acc)
	}
	if res.Jobs != 2 || res.Virtual <= 0 {
		t.Fatalf("jobs=%d virtual=%v", res.Jobs, res.Virtual)
	}
}

// TestRunHierarchicalMatchesLegacyKernels pins the pipeline's fast path
// (slice-based SketchInto, prepared similarity rows, both-triangle
// assembly) to a from-scratch legacy computation — map-based Sketch,
// per-pair Similarity, sequential matrix — at the paper's
// whole-metagenome defaults (k=5, n=100 hashes, θ=0.9). Clusterings
// must be identical, label for label.
func TestRunHierarchicalMatchesLegacyKernels(t *testing.T) {
	reads, _ := makeReads(5, 10, 200, 0.03, 17)
	opt := Options{K: 5, NumHashes: 100, Theta: 0.9, Mode: HierarchicalMode, Linkage: cluster.Average, Cluster: smallCluster(), Seed: 17}
	res, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}

	sk, err := minhash.NewSketcher(opt.NumHashes, opt.K, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ex := &kmer.Extractor{K: opt.K}
	sigs := make([]minhash.Signature, len(reads))
	for i := range reads {
		sigs[i] = sk.Sketch(ex.Set(reads[i].Seq))
	}
	dend, err := cluster.Hierarchical(cluster.SimilarityMatrix(sigs, minhash.SetOverlap), cluster.HierarchicalOptions{Linkage: cluster.Average})
	if err != nil {
		t.Fatal(err)
	}
	want := dend.CutAt(opt.Theta)
	if len(want) != len(res.Assignments) {
		t.Fatalf("%d labels vs %d", len(want), len(res.Assignments))
	}
	for i := range want {
		if res.Assignments[i] != want[i] {
			t.Fatalf("read %d: pipeline label %d, legacy label %d", i, res.Assignments[i], want[i])
		}
	}
}

func TestRunHierarchicalRecoversGroups(t *testing.T) {
	reads, truth := makeReads(4, 8, 250, 0.01, 3)
	res, err := Run(reads, Options{
		K: 8, NumHashes: 60, Theta: 0.35, Mode: HierarchicalMode,
		Cluster: smallCluster(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 4 {
		t.Fatalf("got %d clusters, want 4", res.NumClusters())
	}
	acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 99.9 {
		t.Fatalf("accuracy %.2f", acc)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	reads, _ := makeReads(2, 6, 200, 0.02, 5)
	opt := Options{K: 6, NumHashes: 40, Theta: 0.4, Mode: HierarchicalMode, Cluster: smallCluster(), Seed: 6}
	r1, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatalf("run not deterministic at read %d", i)
		}
	}
}

func TestRunGreedyFasterModelThanHierarchical(t *testing.T) {
	reads, _ := makeReads(3, 100, 200, 0.02, 7)
	g, err := Run(reads, Options{K: 6, NumHashes: 50, Theta: 0.5, Mode: GreedyMode, Cluster: smallCluster(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Run(reads, Options{K: 6, NumHashes: 50, Theta: 0.5, Mode: HierarchicalMode, Cluster: smallCluster(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.Virtual >= h.Virtual {
		t.Fatalf("greedy model time %v not below hierarchical %v (paper Table III shape)", g.Virtual, h.Virtual)
	}
}

func TestRunEmptyInput(t *testing.T) {
	res, err := Run(nil, Options{Cluster: smallCluster()})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 0 {
		t.Fatalf("clusters %d", res.NumClusters())
	}
}

func TestClustersByID(t *testing.T) {
	reads, _ := makeReads(2, 3, 150, 0.0, 9)
	res, err := Run(reads, Options{K: 6, NumHashes: 30, Theta: 0.9, Mode: GreedyMode, Cluster: smallCluster(), Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	byID := res.ClustersByID()
	total := 0
	for _, ids := range byID {
		total += len(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatal("cluster ids not sorted")
			}
		}
	}
	if total != len(reads) {
		t.Fatalf("%d ids across clusters, want %d", total, len(reads))
	}
}

// TestScriptMatchesPipeline is the core integration check: the paper's
// Algorithm 3 Pig script produces the same partitions as the programmatic
// pipeline for both algorithms.
func TestScriptMatchesPipeline(t *testing.T) {
	reads, _ := makeReads(3, 5, 200, 0.01, 11)
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 4, BlockSize: 4096, Replication: 2})
	var sb strings.Builder
	for _, r := range reads {
		fmt.Fprintf(&sb, ">%s\n%s\n", r.ID, r.Seq)
	}
	if err := fs.WriteFile("/in/reads.fa", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	const k, n, theta = 8, 50, 0.4
	sres, err := RunScript(fs, smallCluster(), ScriptParams{
		Input: "/in/reads.fa", Output1: "/out/hier", Output2: "/out/greedy",
		K: k, NumHash: n, Link: "average", Cutoff: theta,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Hierarchical) != len(reads) || len(sres.Greedy) != len(reads) {
		t.Fatalf("script labelled %d/%d reads, want %d", len(sres.Hierarchical), len(sres.Greedy), len(reads))
	}
	if !fs.Exists("/out/hier/part-00000") || !fs.Exists("/out/greedy/part-00000") {
		t.Fatal("script did not store outputs")
	}
	if sres.Jobs < 5 {
		t.Fatalf("script ran %d jobs, want >= 5", sres.Jobs)
	}

	ids := make([]string, len(reads))
	for i := range reads {
		ids[i] = reads[i].ID
	}
	scriptHier, err := LabelsToClustering(sres.Hierarchical, ids)
	if err != nil {
		t.Fatal(err)
	}
	scriptGreedy, err := LabelsToClustering(sres.Greedy, ids)
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline runs with matching parameters. Note: the script's hash
	// family uses modulus DIV (next prime above 4^k), while the pipeline
	// uses 4^k, so signatures differ in value but partitions should agree
	// on this well-separated input.
	pipeHier, err := Run(reads, Options{K: k, NumHashes: n, Theta: theta, Mode: HierarchicalMode, Cluster: smallCluster(), Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipeGreedy, err := Run(reads, Options{K: k, NumHashes: n, Theta: theta, Mode: GreedyMode, Cluster: smallCluster(), Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(scriptHier, pipeHier.Assignments) {
		t.Fatalf("hierarchical: script %v vs pipeline %v", scriptHier, pipeHier.Assignments)
	}
	if !samePartition(scriptGreedy, pipeGreedy.Assignments) {
		t.Fatalf("greedy: script %v vs pipeline %v", scriptGreedy, pipeGreedy.Assignments)
	}
}

// samePartition compares clusterings up to label renaming.
func samePartition(a, b metrics.Clustering) bool {
	if len(a) != len(b) {
		return false
	}
	fwd, rev := map[int]int{}, map[int]int{}
	for i := range a {
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := rev[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]], rev[b[i]] = b[i], a[i]
	}
	return true
}

func TestRunScriptValidation(t *testing.T) {
	fs := dfs.MustNew(dfs.DefaultConfig)
	if _, err := RunScript(fs, smallCluster(), ScriptParams{K: 0, NumHash: 10}, 1); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := RunScript(fs, smallCluster(), ScriptParams{K: 5, NumHash: 0}, 1); err == nil {
		t.Fatal("NumHash=0 accepted")
	}
	if _, err := RunScript(fs, smallCluster(), ScriptParams{Input: "/missing", K: 5, NumHash: 10}, 1); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestNextPrimeAbove(t *testing.T) {
	cases := map[uint64]uint64{1: 2, 2: 3, 4: 5, 1024: 1031, 6: 7}
	for n, want := range cases {
		if got := nextPrimeAbove(n); got != want {
			t.Errorf("nextPrimeAbove(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLabelsToClustering(t *testing.T) {
	labels := map[string]int{"a": 0, "b": 1}
	c, err := LabelsToClustering(labels, []string{"a", "b"})
	if err != nil || c[0] != 0 || c[1] != 1 {
		t.Fatalf("c=%v err=%v", c, err)
	}
	if _, err := LabelsToClustering(labels, []string{"a", "z"}); err == nil {
		t.Fatal("missing id accepted")
	}
}

func TestSortedClusterIDs(t *testing.T) {
	got := SortedClusterIDs(map[string]int{"a": 2, "b": 0, "c": 2})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ids %v", got)
	}
}

// TestModelRuntimeFigure2Shape checks the two qualitative Figure-2 claims:
// large inputs speed up with more nodes; tiny inputs are overhead-flat.
func TestModelRuntimeFigure2Shape(t *testing.T) {
	mk := func(nodes int) mapreduce.Cluster {
		return mapreduce.Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: mapreduce.DefaultCostModel}
	}
	big2 := ModelRuntime(10_000_000, mk(2), HierarchicalMode, 100)
	big12 := ModelRuntime(10_000_000, mk(12), HierarchicalMode, 100)
	if float64(big12) > 0.5*float64(big2) {
		t.Fatalf("10M reads: 12 nodes %v vs 2 nodes %v — insufficient speedup", big12, big2)
	}
	small2 := ModelRuntime(1000, mk(2), HierarchicalMode, 100)
	small12 := ModelRuntime(1000, mk(12), HierarchicalMode, 100)
	ratio := float64(small2) / float64(small12)
	if ratio > 1.3 {
		t.Fatalf("1k reads: 2 nodes %v vs 12 nodes %v — should be flat", small2, small12)
	}
	// Monotone in reads.
	if ModelRuntime(1000, mk(8), HierarchicalMode, 100) > ModelRuntime(100000, mk(8), HierarchicalMode, 100) {
		t.Fatal("model not monotone in input size")
	}
	if ModelRuntime(0, mk(8), HierarchicalMode, 100) != 0 {
		t.Fatal("zero reads should cost nothing")
	}
	// Greedy models cheaper than hierarchical.
	if ModelRuntime(100000, mk(8), GreedyMode, 100) >= ModelRuntime(100000, mk(8), HierarchicalMode, 100) {
		t.Fatal("greedy model should be cheaper")
	}
}

func TestRegisterUDFsCompleteness(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{
		"StringGenerator", "TranslateToKmer", "CalculateMinwiseHash",
		"CalculatePairwiseSimilarity", "AgglomerativeHierarchicalClustering",
		"GreedyClustering",
	} {
		if _, ok := reg.UDF(name); !ok {
			t.Errorf("UDF %s not registered", name)
		}
	}
	if _, ok := reg.Loader("FastaStorage"); !ok {
		t.Error("FastaStorage loader not registered")
	}
}

func TestUDFArgValidation(t *testing.T) {
	ctx := &pig.Context{Seed: 1}
	if _, err := stringGenerator(ctx, []pig.Value{"ACGT"}); err == nil {
		t.Error("StringGenerator arity not checked")
	}
	if _, err := translateToKmer(ctx, []pig.Value{"0123", "id", int64(99)}); err == nil {
		t.Error("TranslateToKmer k range not checked")
	}
	if _, err := calculateMinwiseHash(ctx, []pig.Value{"notaslice", "id", int64(10), int64(100)}); err == nil {
		t.Error("CalculateMinwiseHash value type not checked")
	}
	if _, err := calculateMinwiseHash(ctx, []pig.Value{[]pig.Value{}, "id", int64(10), int64(1)}); err == nil {
		t.Error("CalculateMinwiseHash div range not checked")
	}
	if _, err := calculatePairwiseSimilarity(ctx, []pig.Value{"notasig", pig.Bag{}}); err == nil {
		t.Error("CalculatePairwiseSimilarity sig type not checked")
	}
	if _, err := agglomerativeClusteringUDF(ctx, []pig.Value{"notrows", "average", int64(10), 0.5}); err == nil {
		t.Error("Agglomerative rows type not checked")
	}
	if _, err := greedyClusteringUDF(ctx, []pig.Value{"notabag", int64(10), 0.5}); err == nil {
		t.Error("Greedy bag type not checked")
	}
}

func TestStringGeneratorEncoding(t *testing.T) {
	v, err := stringGenerator(nil, []pig.Value{"ACGTNacgt", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	tup := v.(pig.Tuple)
	if tup.Fields[0] != "0123.0123" || tup.Fields[1] != "r1" {
		t.Fatalf("encoded %+v", tup)
	}
}

func TestTranslateToKmerWindows(t *testing.T) {
	v, err := translateToKmer(nil, []pig.Value{"0123", "r1", int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	bag := v.(pig.Bag)
	// k-mers: 01, 12, 23 -> packed 0b0001=1, 0b0110=6, 0b1011=11
	want := []int64{1, 6, 11}
	if len(bag) != 3 {
		t.Fatalf("bag %+v", bag)
	}
	for i, w := range want {
		if bag[i].Fields[0].(int64) != w {
			t.Fatalf("kmer %d = %v, want %d", i, bag[i].Fields[0], w)
		}
	}
	// Ambiguity breaks windows.
	v, err = translateToKmer(nil, []pig.Value{"01.23", "r1", int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.(pig.Bag)) != 2 {
		t.Fatalf("ambiguous bag %+v", v)
	}
}

func TestSortTuplesByFirstField(t *testing.T) {
	bag := pig.Bag{pig.NewTuple("b"), pig.NewTuple("a")}
	sortTuplesByFirstField(bag)
	if bag[0].Fields[0] != "a" {
		t.Fatal("sort failed")
	}
}

func TestRunGreedyLSHMatchesExactOnSeparatedGroups(t *testing.T) {
	reads, truth := makeReads(3, 10, 250, 0.01, 21)
	base := Options{K: 8, NumHashes: 100, Theta: 0.4, Mode: GreedyMode, Cluster: smallCluster(), Seed: 22}
	exact, err := Run(reads, base)
	if err != nil {
		t.Fatal(err)
	}
	lshOpt := base
	lshOpt.UseLSH = true
	lsh, err := Run(reads, lshOpt)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumClusters() != lsh.NumClusters() {
		t.Fatalf("exact %d clusters, LSH %d", exact.NumClusters(), lsh.NumClusters())
	}
	acc, err := metrics.WeightedAccuracy(lsh.Assignments, truth)
	if err != nil || acc < 99.9 {
		t.Fatalf("LSH accuracy %.2f err=%v", acc, err)
	}
}

// TestScriptPaperVerbatimTwoArgForm runs a variant of Algorithm 3 using
// the paper's literal 2-argument CalculatePairwiseSimilarity (row located
// by signature equality rather than seqid) and checks it still produces a
// full labelling on reads with distinct sketches.
func TestScriptPaperVerbatimTwoArgForm(t *testing.T) {
	reads, _ := makeReads(2, 4, 150, 0.02, 31)
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 3, BlockSize: 4096, Replication: 2})
	var sb strings.Builder
	for _, r := range reads {
		fmt.Fprintf(&sb, ">%s\n%s\n", r.ID, r.Seq)
	}
	if err := fs.WriteFile("/in/reads.fa", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	script := `
A = LOAD '/in/reads.fa' USING FastaStorage AS (readid:chararray, d:int, seq:bytearray, header:chararray);
B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid)) AS (seq:chararray, seqid:chararray);
C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, 8)) AS (seqkmer:long, seqid2:chararray);
E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, 40, 65537)) AS (minwise:long, seqid3:chararray);
F = FOREACH E GENERATE FLATTEN(minwise), FLATTEN(seqid3);
I = GROUP F ALL;
J = FOREACH F GENERATE CalculatePairwiseSimilarity(minwise, I.F) AS similaritymatrix:double;
K = FOREACH J GENERATE FLATTEN(AgglomerativeHierarchicalClustering(similaritymatrix, 'average', 40, 0.4)) AS (sid:chararray, label:int);
`
	compiled, err := pig.Compile(script)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := mapreduce.NewEngine(smallCluster())
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pig.Context{
		FS: fs, Engine: engine, Registry: NewRegistry(), Seed: 31,
		Params: map[string]string{},
	}
	res, err := compiled.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Aliases["K"]
	if len(k.Tuples) != len(reads) {
		t.Fatalf("labelled %d of %d reads", len(k.Tuples), len(reads))
	}
	labels := map[int]bool{}
	for _, tup := range k.Tuples {
		l, err := pig.AsInt(tup.Fields[1])
		if err != nil {
			t.Fatal(err)
		}
		labels[l] = true
	}
	if len(labels) != 2 {
		t.Fatalf("got %d clusters, want 2", len(labels))
	}
}

func TestRunLevelsCoreAndRepresentatives(t *testing.T) {
	reads, _ := makeReads(2, 6, 200, 0.01, 41)
	opt := Options{K: 8, NumHashes: 60, Mode: HierarchicalMode, Cluster: smallCluster(), Seed: 42}
	lres, err := RunLevels(reads, opt, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(lres.Levels) != 2 || lres.Levels[0].Theta != 0.6 {
		t.Fatalf("levels %+v", lres.Levels)
	}
	if _, err := RunLevels(reads, opt, nil); err == nil {
		t.Fatal("no thresholds accepted")
	}
	if _, err := RunLevels(reads, opt, []float64{-1}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	reps, err := PickRepresentatives(reads, lres.Levels[1].Assignments, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != lres.Levels[1].Assignments.NumClusters() {
		t.Fatalf("reps %d", len(reps))
	}
	if _, err := PickRepresentatives(reads[:1], lres.Levels[1].Assignments, opt); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
