// Package core wires the paper's system together: it implements the seven
// Pig UDFs of Algorithm 3 (FastaStorage, StringGenerator, TranslateToKmer,
// CalculateMinwiseHash, CalculatePairwiseSimilarity,
// AgglomerativeHierarchicalClustering, GreedyClustering), a programmatic
// MapReduce pipeline equivalent to the script, and the MrMC-MinH driver
// used by the public API, the benchmarks and the command-line tools.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
	"github.com/metagenomics/mrmcminh/internal/pig"
	"github.com/metagenomics/mrmcminh/internal/sigstore"
)

// CostFactorSimilarityRow scales the modelled cost of computing one row of
// the all-pairs similarity matrix relative to a plain map record — the
// dominant cost of the hierarchical pipeline (paper §V.A).
const CostFactorSimilarityRow = 400

// sketcherCache memoizes hash families so every reduce group of
// CalculateMinwiseHash uses identical hash functions.
type sketcherCache struct {
	mu sync.Mutex
	m  map[string]*minhash.Sketcher
}

var sketchers = &sketcherCache{m: make(map[string]*minhash.Sketcher)}

// get returns the (n, m, seed) sketcher, creating it once.
func (c *sketcherCache) get(n int, m uint64, seed int64) (*minhash.Sketcher, error) {
	key := fmt.Sprintf("%d/%d/%d", n, m, seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.m[key]; ok {
		return s, nil
	}
	fam, err := minhash.NewHashFamily(n, m, seed)
	if err != nil {
		return nil, err
	}
	s := &minhash.Sketcher{Family: fam}
	c.m[key] = s
	return s, nil
}

// RegisterUDFs installs the paper's UDFs and the FastaStorage loader into
// a Pig registry.
func RegisterUDFs(reg *pig.Registry) {
	reg.RegisterLoader("FastaStorage", fastaStorage)
	reg.MustRegister(pig.UDF{
		Name:        "StringGenerator",
		GroupKeyArg: -1,
		Eval:        stringGenerator,
	})
	reg.MustRegister(pig.UDF{
		Name:        "TranslateToKmer",
		GroupKeyArg: -1,
		Eval:        translateToKmer,
	})
	reg.MustRegister(pig.UDF{
		Name:        "CalculateMinwiseHash",
		GroupKeyArg: 1,
		ValueArg:    0,
		Eval:        calculateMinwiseHash,
	})
	reg.MustRegister(pig.UDF{
		Name:        "CalculatePairwiseSimilarity",
		GroupKeyArg: -1,
		Eval:        calculatePairwiseSimilarity,
		CostFactor:  CostFactorSimilarityRow,
	})
	reg.MustRegister(pig.UDF{
		Name:          "AgglomerativeHierarchicalClustering",
		GroupKeyArg:   -1,
		WholeRelation: true,
		Eval:          agglomerativeClusteringUDF,
		CostFactor:    4,
	})
	reg.MustRegister(pig.UDF{
		Name:        "GreedyClustering",
		GroupKeyArg: -1,
		Eval:        greedyClusteringUDF,
		CostFactor:  40,
	})
	reg.MustRegister(pig.UDF{
		Name:        "LSHClustering",
		GroupKeyArg: -1,
		Eval:        lshClusteringUDF,
		// Sub-quadratic: banded candidate generation replaces the
		// all-pairs scan, so the modelled per-record cost sits near the
		// greedy UDF's, far below CostFactorSimilarityRow.
		CostFactor: 40,
	})
}

// NewRegistry returns a Pig registry preloaded with the paper's UDFs.
func NewRegistry() *pig.Registry {
	reg := pig.NewRegistry()
	RegisterUDFs(reg)
	return reg
}

// fastaStorage loads FASTA text from the DFS as tuples
// (readid, d:int sequence length, seq, header) per Algorithm 3 step 1.
func fastaStorage(ctx *pig.Context, path string, _ []pig.Value) (*pig.Relation, error) {
	data, err := ctx.FS.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, err := fasta.ParseString(string(data))
	if err != nil {
		return nil, err
	}
	rel := &pig.Relation{Schema: pig.Schema{
		{Name: "readid", Type: "chararray"},
		{Name: "d", Type: "int"},
		{Name: "seq", Type: "bytearray"},
		{Name: "header", Type: "chararray"},
	}}
	for _, r := range recs {
		rel.Tuples = append(rel.Tuples, pig.NewTuple(r.ID, int64(r.Len()), string(r.Seq), r.Header()))
	}
	return rel, nil
}

// stringGenerator maps DNA characters onto integer codes (Algorithm 3
// step 2): "ACGT" becomes "0123"; ambiguous bases become "." which later
// breaks k-mer windows.
func stringGenerator(_ *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("StringGenerator expects (seq, readid), got %d args", len(args))
	}
	seq, err := pig.AsString(args[0])
	if err != nil {
		return nil, err
	}
	id, err := pig.AsString(args[1])
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.Grow(len(seq))
	for i := 0; i < len(seq); i++ {
		if c := fasta.BaseCode(seq[i]); c >= 0 {
			sb.WriteByte('0' + byte(c))
		} else {
			sb.WriteByte('.')
		}
	}
	return pig.NewTuple(sb.String(), id), nil
}

// translateToKmer emits the packed k-mers of an integer-encoded sequence
// (Algorithm 3 step 3) as a bag of (seqkmer:long, seqid) tuples.
func translateToKmer(_ *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("TranslateToKmer expects (seq, seqid, k), got %d args", len(args))
	}
	enc, err := pig.AsString(args[0])
	if err != nil {
		return nil, err
	}
	id, err := pig.AsString(args[1])
	if err != nil {
		return nil, err
	}
	k, err := pig.AsInt(args[2])
	if err != nil {
		return nil, err
	}
	if k < 1 || k > kmer.MaxK {
		return nil, fmt.Errorf("TranslateToKmer: k=%d out of range [1,%d]", k, kmer.MaxK)
	}
	var bag pig.Bag
	// Roll over the digit-encoded sequence; '.' (ambiguous) resets.
	var v uint64
	mask := uint64(1)<<(2*k) - 1
	valid := 0
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		if c < '0' || c > '3' {
			valid, v = 0, 0
			continue
		}
		v = ((v << 2) | uint64(c-'0')) & mask
		if valid < k {
			valid++
		}
		if valid == k {
			bag = append(bag, pig.NewTuple(int64(v), id))
		}
	}
	return bag, nil
}

// calculateMinwiseHash is the grouped UDF of Algorithm 3 step 4: all
// k-mers of one read (grouped by seqid) are folded into an n-value
// minwise signature using universal hash functions with modulus range
// $DIV (a prime exceeding the feature-space size).
func calculateMinwiseHash(ctx *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("CalculateMinwiseHash expects (kmers, seqid, numhash, div), got %d args", len(args))
	}
	kmers, ok := args[0].([]pig.Value)
	if !ok {
		return nil, fmt.Errorf("CalculateMinwiseHash: grouped k-mer values missing (got %T)", args[0])
	}
	id, err := pig.AsString(args[1])
	if err != nil {
		return nil, err
	}
	n, err := pig.AsInt(args[2])
	if err != nil {
		return nil, err
	}
	div, err := pig.AsInt(args[3])
	if err != nil {
		return nil, err
	}
	if div < 2 {
		return nil, fmt.Errorf("CalculateMinwiseHash: $DIV must be at least 2, got %d", div)
	}
	sk, err := sketchers.get(n, uint64(div), ctx.Seed)
	if err != nil {
		return nil, err
	}
	packed := make([]uint64, 0, len(kmers))
	for _, v := range kmers {
		x, err := pig.AsInt(v)
		if err != nil {
			return nil, err
		}
		packed = append(packed, uint64(x))
	}
	sig := sk.SketchSlice(packed)
	return pig.NewTuple(sig, id), nil
}

// calculatePairwiseSimilarity computes one row of the all-pairs matrix
// (Algorithm 3 step 5/7): this read's signature against every signature in
// the broadcast bag. Runs in parallel, one map call per row (the paper's
// row-wise partition). Two forms are accepted:
//
//	CalculatePairwiseSimilarity(minwise, I.F)          — paper's 2-arg form
//	CalculatePairwiseSimilarity(minwise, seqid, I.F)   — id-disambiguated
//
// The 2-arg form locates the row by signature equality, which is ambiguous
// when two reads sketch identically; the 3-arg form matches on seqid and is
// what the embedded canonical script uses.
func calculatePairwiseSimilarity(_ *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 2 && len(args) != 3 {
		return nil, fmt.Errorf("CalculatePairwiseSimilarity expects (minwise, [seqid,] allrows), got %d args", len(args))
	}
	sig, ok := args[0].(minhash.Signature)
	if !ok {
		return nil, fmt.Errorf("CalculatePairwiseSimilarity: first arg is %T, want signature", args[0])
	}
	selfID := ""
	bagArg := args[1]
	if len(args) == 3 {
		id, err := pig.AsString(args[1])
		if err != nil {
			return nil, err
		}
		selfID = id
		bagArg = args[2]
	}
	all, ok := bagArg.(pig.Bag)
	if !ok {
		return nil, fmt.Errorf("CalculatePairwiseSimilarity: bag arg is %T, want bag", bagArg)
	}
	row := make([]float64, len(all))
	rowIdx := -1
	for j, tup := range all {
		other, ok := tup.Fields[0].(minhash.Signature)
		if !ok {
			return nil, fmt.Errorf("CalculatePairwiseSimilarity: bag tuple field is %T", tup.Fields[0])
		}
		row[j] = minhash.SetOverlap.Similarity(sig, other)
		if rowIdx < 0 {
			if selfID != "" && len(tup.Fields) > 1 {
				if id, err := pig.AsString(tup.Fields[1]); err == nil && id == selfID {
					rowIdx = j
				}
			} else if selfID == "" && sig.Equal(other) {
				rowIdx = j
			}
		}
	}
	return pig.NewTuple(row, int64(rowIdx), selfID), nil
}

// agglomerativeClusteringUDF is the whole-relation UDF of Algorithm 3
// step 8: assemble the matrix rows, build the dendrogram with the $LINK
// policy and cut at $CUTOFF, emitting (seqid, clusterlabel) tuples (the
// seqid falls back to the row index for 2-arg similarity rows).
func agglomerativeClusteringUDF(_ *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("AgglomerativeHierarchicalClustering expects (matrix, link, numhash, cutoff), got %d args", len(args))
	}
	rows, ok := args[0].([]pig.Value)
	if !ok {
		return nil, fmt.Errorf("AgglomerativeHierarchicalClustering: matrix arg is %T", args[0])
	}
	linkName, err := pig.AsString(args[1])
	if err != nil {
		return nil, err
	}
	link, err := cluster.ParseLinkage(linkName)
	if err != nil {
		return nil, err
	}
	cutoff, err := pig.AsFloat(args[3])
	if err != nil {
		return nil, err
	}
	n := len(rows)
	m, err := cluster.NewMatrix(n)
	if err != nil {
		return nil, err
	}
	ids := make([]string, n)
	for _, rv := range rows {
		tup, ok := rv.(pig.Tuple)
		if !ok || len(tup.Fields) < 2 {
			return nil, fmt.Errorf("AgglomerativeHierarchicalClustering: malformed row %T", rv)
		}
		vals, ok := tup.Fields[0].([]float64)
		if !ok {
			return nil, fmt.Errorf("AgglomerativeHierarchicalClustering: row values are %T", tup.Fields[0])
		}
		idx, err := pig.AsInt(tup.Fields[1])
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("AgglomerativeHierarchicalClustering: row index %d out of range", idx)
		}
		if err := m.SetRow(idx, vals); err != nil {
			return nil, err
		}
		if len(tup.Fields) > 2 {
			if id, err := pig.AsString(tup.Fields[2]); err == nil {
				ids[idx] = id
			}
		}
	}
	// SetRow writes both triangles and the similarity rows are symmetric
	// by construction, so no Symmetrize post-pass is needed.
	dend, err := cluster.Hierarchical(m, cluster.HierarchicalOptions{Linkage: link})
	if err != nil {
		return nil, err
	}
	labels := dend.CutAt(cutoff)
	bag := make(pig.Bag, n)
	for i, l := range labels {
		id := ids[i]
		if id == "" {
			id = fmt.Sprint(i)
		}
		bag[i] = pig.NewTuple(id, int64(l))
	}
	return bag, nil
}

// greedyClusteringUDF is Algorithm 3 step 9: greedy clustering over the
// grouped bag of (signature, seqid) tuples, emitting (seqid, clusterlabel).
func greedyClusteringUDF(_ *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("GreedyClustering expects (bag, numhash, cutoff), got %d args", len(args))
	}
	bag, ok := args[0].(pig.Bag)
	if !ok {
		return nil, fmt.Errorf("GreedyClustering: first arg is %T, want bag", args[0])
	}
	cutoff, err := pig.AsFloat(args[2])
	if err != nil {
		return nil, err
	}
	sigs := make([]minhash.Signature, len(bag))
	ids := make([]string, len(bag))
	for i, tup := range bag {
		sig, ok := tup.Fields[0].(minhash.Signature)
		if !ok {
			return nil, fmt.Errorf("GreedyClustering: bag tuple field is %T", tup.Fields[0])
		}
		sigs[i] = sig
		id, err := pig.AsString(tup.Fields[1])
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	labels, err := cluster.Greedy(sigs, cluster.GreedyOptions{Threshold: cutoff, Estimator: minhash.SetOverlap})
	if err != nil {
		return nil, err
	}
	out := make(pig.Bag, len(bag))
	for i := range bag {
		out[i] = pig.NewTuple(ids[i], int64(labels[i]))
	}
	return out, nil
}

// lshClusteringUDF is the sub-quadratic replacement for Algorithm 3's
// all-pairs branch: LSHClustering(bag, numhash, cutoff, mode, link) over
// the grouped (signature, seqid) bag. Candidate pairs come from a banded
// MinHash index (GeometryFor(numhash, cutoff)), are verified at the cutoff
// with the zero-alloc kernel, joined into connected components with
// union-find, and the exact algorithm selected by mode ('greedy' or
// 'hierarchical' with the link policy) runs per component. Labels are
// renumbered by first appearance in bag order, reproducing the exact UDFs'
// label sequence whenever every ≥cutoff pair band-collides.
func lshClusteringUDF(ctx *pig.Context, args []pig.Value) (pig.Value, error) {
	if len(args) != 5 {
		return nil, fmt.Errorf("LSHClustering expects (bag, numhash, cutoff, mode, link), got %d args", len(args))
	}
	bag, ok := args[0].(pig.Bag)
	if !ok {
		return nil, fmt.Errorf("LSHClustering: first arg is %T, want bag", args[0])
	}
	numhash, err := pig.AsInt(args[1])
	if err != nil {
		return nil, err
	}
	cutoff, err := pig.AsFloat(args[2])
	if err != nil {
		return nil, err
	}
	mode, err := pig.AsString(args[3])
	if err != nil {
		return nil, err
	}
	linkName, err := pig.AsString(args[4])
	if err != nil {
		return nil, err
	}
	if cutoff <= 0 {
		return nil, fmt.Errorf("LSHClustering: cutoff must be > 0, got %v", cutoff)
	}
	sigs := make([]minhash.Signature, len(bag))
	ids := make([]string, len(bag))
	for i, tup := range bag {
		sig, ok := tup.Fields[0].(minhash.Signature)
		if !ok {
			return nil, fmt.Errorf("LSHClustering: bag tuple field is %T", tup.Fields[0])
		}
		sigs[i] = sig
		id, err := pig.AsString(tup.Fields[1])
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	src, err := clusterSource(ctx, numhash, sigs)
	if err != nil {
		return nil, err
	}
	comps, err := lshComponentsSource(src, numhash, cutoff)
	if err != nil {
		return nil, err
	}
	members := make(map[int][]int)
	for i, c := range comps {
		members[c] = append(members[c], i) // ascending by construction
	}
	local := make([]int, len(sigs))
	for _, idxs := range members {
		var labels metrics.Clustering
		if len(idxs) == 1 {
			labels = metrics.Clustering{0}
		} else {
			sub := cluster.Subset(src, idxs)
			var err error
			switch mode {
			case "greedy":
				labels, err = cluster.GreedySource(sub, cluster.GreedyOptions{Threshold: cutoff, Estimator: minhash.SetOverlap})
			case "hierarchical":
				link, lerr := cluster.ParseLinkage(linkName)
				if lerr != nil {
					return nil, lerr
				}
				labels, err = cluster.HierarchicalFromSource(sub, link, cutoff)
			default:
				return nil, fmt.Errorf("LSHClustering: unknown mode %q (want greedy or hierarchical)", mode)
			}
			if err != nil {
				return nil, err
			}
		}
		for i, m := range idxs {
			local[m] = labels[i]
		}
	}
	type clusterID struct{ comp, local int }
	global := make(map[clusterID]int)
	next := 0
	out := make(pig.Bag, len(bag))
	for i := range bag {
		id := clusterID{comp: comps[i], local: local[i]}
		g, ok := global[id]
		if !ok {
			g = next
			global[id] = g
			next++
		}
		out[i] = pig.NewTuple(ids[i], int64(g))
	}
	return out, nil
}

// clusterSource routes a UDF's signature bag onto the configured backing:
// a sharded signature store (ctx.StoreBits >= 0 — 0 full-width, 1..16
// b-bit packed) whose view the clustering borrows from, or legacy
// per-call slices (-1).
func clusterSource(ctx *pig.Context, numhash int, sigs []minhash.Signature) (cluster.SigSource, error) {
	bits := 0
	if ctx != nil {
		bits = ctx.StoreBits
	}
	if bits < 0 {
		return cluster.NewSliceSource(sigs, minhash.SetOverlap), nil
	}
	st, err := sigstore.New(sigstore.Config{NumHashes: numhash, Bits: bits})
	if err != nil {
		return nil, err
	}
	if err := st.PutBatch(0, sigs); err != nil {
		return nil, err
	}
	view, err := st.View(minhash.SetOverlap)
	if err != nil {
		return nil, err
	}
	return view, nil
}

// lshComponentsSource finds the connected components of the verified
// θ-edge graph with an in-process banded index and union-find (the
// UDF-local analogue of the pipeline's bands/verify/CC MapReduce stages).
// It replicates the BandIndex candidate discipline over the source —
// per-band buckets in insertion order, generation-stamped dedup — so the
// edge set matches the slice-based index exactly.
func lshComponentsSource(src cluster.SigSource, numhash int, cutoff float64) ([]int, error) {
	geo := cluster.GeometryFor(numhash, cutoff)
	buckets := make([]map[uint64][]int, geo.Bands)
	for b := range buckets {
		buckets[b] = make(map[uint64][]int)
	}
	var edges []cluster.Edge
	var candBuf []int
	var added []int // band-index id -> read index (empty sigs stay out)
	var marks []uint32
	var gen uint32
	validated := false
	for i := 0; i < src.Len(); i++ {
		if src.Empty(i) {
			continue // no features: singleton component, like the exact path
		}
		if !validated {
			if err := geo.Validate(src.NumHashes()); err != nil {
				return nil, err
			}
			validated = true
		}
		gen++
		if gen == 0 { // generation counter wrapped: invalidate stale marks
			for k := range marks {
				marks[k] = 0
			}
			gen = 1
		}
		candBuf = candBuf[:0]
		for b := 0; b < geo.Bands; b++ {
			h := src.BandHash(i, b, geo.Rows)
			for _, id := range buckets[b][h] {
				if marks[id] != gen {
					marks[id] = gen
					candBuf = append(candBuf, id)
				}
			}
		}
		for _, cand := range candBuf {
			j := added[cand]
			if src.Similarity(j, i) >= cutoff {
				edges = append(edges, cluster.Edge{U: j, V: i})
			}
		}
		id := len(added)
		added = append(added, i)
		marks = append(marks, 0)
		for b := 0; b < geo.Bands; b++ {
			h := src.BandHash(i, b, geo.Rows)
			buckets[b][h] = append(buckets[b][h], id)
		}
	}
	return cluster.ConnectedComponents(src.Len(), edges)
}

// sortTuplesByFirstField orders a bag by its first field's formatted value
// (stable), used by tests to compare outputs deterministically.
func sortTuplesByFirstField(bag pig.Bag) {
	sort.SliceStable(bag, func(i, j int) bool {
		return pig.FormatValue(bag[i].Fields[0]) < pig.FormatValue(bag[j].Fields[0])
	})
}
