package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Checkpoint codecs. Stage outputs are serialized with exact binary
// representations — uint64 signature values, the float32 bit patterns
// the similarity matrix actually stores, integer labels — so a stage
// restored from its checkpoint is bit-identical to one that just ran.
// That exactness is what lets a resumed pipeline reproduce the
// uninterrupted run's clusters byte for byte.

// HashReads content-addresses a read set: the SHA-256 of the canonical
// ">id\nseq\n" rendering, the inputs hash of the sketch stage.
func HashReads(reads []fasta.Record) string {
	var buf []byte
	for _, r := range reads {
		buf = append(buf, '>')
		buf = append(buf, r.ID...)
		buf = append(buf, '\n')
		buf = append(buf, r.Seq...)
		buf = append(buf, '\n')
	}
	return checkpoint.HashBytes(buf)
}

// encodeSignatures renders signatures as little-endian uint64s: count,
// then per signature its length and values.
func encodeSignatures(sigs []minhash.Signature) []byte {
	size := 8
	for _, s := range sigs {
		size += 8 + 8*len(s)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(sigs)))
	for _, s := range sigs {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s)))
		for _, v := range s {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
	}
	return out
}

// decodeSignatures inverts encodeSignatures.
func decodeSignatures(data []byte) ([]minhash.Signature, error) {
	n, data, err := readU64(data)
	if err != nil {
		return nil, err
	}
	sigs := make([]minhash.Signature, n)
	for i := range sigs {
		var m uint64
		if m, data, err = readU64(data); err != nil {
			return nil, err
		}
		sig := make(minhash.Signature, m)
		for j := range sig {
			if sig[j], data, err = readU64(data); err != nil {
				return nil, err
			}
		}
		sigs[i] = sig
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after signatures", len(data))
	}
	return sigs, nil
}

// encodeMatrix renders the strict upper triangle as the float32 bit
// patterns the matrix stores internally, preceded by n.
func encodeMatrix(m *cluster.Matrix) []byte {
	n := m.N()
	out := make([]byte, 0, 8+4*n*(n-1)/2)
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(m.Get(i, j))))
		}
	}
	return out
}

// decodeMatrix inverts encodeMatrix.
func decodeMatrix(data []byte) (*cluster.Matrix, error) {
	n64, data, err := readU64(data)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	m, err := cluster.NewMatrix(n)
	if err != nil {
		return nil, err
	}
	if want := 4 * n * (n - 1) / 2; len(data) != want {
		return nil, fmt.Errorf("core: matrix payload is %d bytes, want %d", len(data), want)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, float64(math.Float32frombits(binary.LittleEndian.Uint32(data))))
			data = data[4:]
		}
	}
	return m, nil
}

// encodeLabels renders cluster labels as little-endian int64s.
func encodeLabels(labels metrics.Clustering) []byte {
	out := make([]byte, 0, 8+8*len(labels))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(labels)))
	for _, l := range labels {
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(l)))
	}
	return out
}

// decodeLabels inverts encodeLabels.
func decodeLabels(data []byte) (metrics.Clustering, error) {
	n, data, err := readU64(data)
	if err != nil {
		return nil, err
	}
	if len(data) != 8*int(n) {
		return nil, fmt.Errorf("core: label payload is %d bytes, want %d", len(data), 8*n)
	}
	labels := make(metrics.Clustering, n)
	for i := range labels {
		var v uint64
		v, data, _ = readU64(data)
		labels[i] = int(int64(v))
	}
	return labels, nil
}

// encodeEdges renders verified candidate edges as little-endian int64
// pairs: count, then per edge U and V.
func encodeEdges(edges []cluster.Edge) []byte {
	out := make([]byte, 0, 8+16*len(edges))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(edges)))
	for _, e := range edges {
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(e.U)))
		out = binary.LittleEndian.AppendUint64(out, uint64(int64(e.V)))
	}
	return out
}

// decodeEdges inverts encodeEdges.
func decodeEdges(data []byte) ([]cluster.Edge, error) {
	n, data, err := readU64(data)
	if err != nil {
		return nil, err
	}
	if len(data) != 16*int(n) {
		return nil, fmt.Errorf("core: edge payload is %d bytes, want %d", len(data), 16*n)
	}
	edges := make([]cluster.Edge, n)
	for i := range edges {
		var u, v uint64
		u, data, _ = readU64(data)
		v, data, _ = readU64(data)
		edges[i] = cluster.Edge{U: int(int64(u)), V: int(int64(v))}
	}
	return edges, nil
}

// readU64 pops one little-endian uint64 off data.
func readU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("core: truncated checkpoint data")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}
