package core

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/faults"
)

// resumeSeeds mirrors the chaos matrix: CHAOS_SEED (set by CI) selects one
// seed, otherwise all five default seeds run.
func resumeSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		return []int64{n}
	}
	return []int64{1, 2, 3, 4, 5}
}

func resumeOptions(mode Mode, seed int64) Options {
	return Options{
		K: 8, NumHashes: 40, Theta: 0.4, Mode: mode,
		Seed: seed, Cluster: smallCluster(),
	}
}

func openJournal(t *testing.T, dir string) *checkpoint.Journal {
	t.Helper()
	store, err := checkpoint.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := checkpoint.Open(store, "/")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// stagesOf lists the pipeline stages of a mode, in execution order.
func stagesOf(mode Mode) []string {
	if mode == GreedyMode {
		return []string{StageSketch, StageGreedy}
	}
	return []string{StageSketch, StageSimilarity, StageCluster}
}

// TestResumeBitIdentical kills the driver after every stage boundary of
// both pipelines, resumes from the on-disk journal in a fresh process
// (modelled by a fresh Journal over the same directory), and requires the
// resumed clustering to be bit-identical to an uninterrupted run —
// re-executing only the stages after the last committed manifest entry.
func TestResumeBitIdentical(t *testing.T) {
	for _, seed := range resumeSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reads, _ := makeReads(4, 6, 200, 0.01, seed)
			for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
				mode := mode
				t.Run(mode.String(), func(t *testing.T) {
					baseline, err := Run(reads, resumeOptions(mode, seed))
					if err != nil {
						t.Fatal(err)
					}
					for _, crashAfter := range stagesOf(mode) {
						dir := t.TempDir()

						// First run: journal every stage, crash after one.
						opt := resumeOptions(mode, seed)
						opt.Checkpoint = openJournal(t, dir)
						opt.Faults = faults.MustNew(faults.Plan{
							DriverCrashes: []faults.DriverCrash{{AfterStage: crashAfter}},
						})
						_, err := Run(reads, opt)
						var dce *faults.DriverCrashError
						if !errors.As(err, &dce) || dce.Stage != crashAfter {
							t.Fatalf("crash after %s: got %v", crashAfter, err)
						}

						// Second run: a fresh journal over the same directory
						// (the dead driver's survivor) with --resume.
						opt2 := resumeOptions(mode, seed)
						opt2.Checkpoint = openJournal(t, dir)
						opt2.Resume = ResumeOn
						res, err := Run(reads, opt2)
						if err != nil {
							t.Fatalf("resume after %s: %v", crashAfter, err)
						}
						if !reflect.DeepEqual(res.Assignments, baseline.Assignments) {
							t.Fatalf("resume after %s changed the clustering", crashAfter)
						}
						// Exactly the stages up to and including the crash
						// point were restored; everything after re-ran.
						var wantSkipped []string
						for _, s := range stagesOf(mode) {
							wantSkipped = append(wantSkipped, s)
							if s == crashAfter {
								break
							}
						}
						if !reflect.DeepEqual(res.SkippedStages, wantSkipped) {
							t.Fatalf("crash after %s: skipped %v, want %v", crashAfter, res.SkippedStages, wantSkipped)
						}
					}
				})
			}
		})
	}
}

// TestResumeSkipsCrashSite proves the crash site is not re-triggered: the
// same fault plan is active on the resumed run, but the crashed stage is
// restored from its checkpoint instead of executed, so the driver sails
// past it.
func TestResumeSkipsCrashSite(t *testing.T) {
	reads, _ := makeReads(3, 5, 180, 0.01, 2)
	dir := t.TempDir()
	plan := faults.Plan{DriverCrashes: []faults.DriverCrash{{AfterStage: StageSketch}}}

	opt := resumeOptions(GreedyMode, 2)
	opt.Checkpoint = openJournal(t, dir)
	opt.Faults = faults.MustNew(plan)
	if _, err := Run(reads, opt); err == nil {
		t.Fatal("planned driver crash did not fire")
	}

	opt2 := resumeOptions(GreedyMode, 2)
	opt2.Checkpoint = openJournal(t, dir)
	opt2.Resume = ResumeOn
	opt2.Faults = faults.MustNew(plan) // same plan, still armed
	if _, err := Run(reads, opt2); err != nil {
		t.Fatalf("resume re-triggered the crash: %v", err)
	}
}

func TestResumeErrors(t *testing.T) {
	reads, _ := makeReads(3, 5, 180, 0.01, 3)

	// Resume without a journal at all.
	opt := resumeOptions(GreedyMode, 3)
	opt.Resume = ResumeOn
	if _, err := Run(reads, opt); err == nil {
		t.Fatal("Resume without Checkpoint accepted")
	}

	// Resume against an empty checkpoint directory.
	opt = resumeOptions(GreedyMode, 3)
	opt.Checkpoint = openJournal(t, t.TempDir())
	opt.Resume = ResumeOn
	_, err := Run(reads, opt)
	var me *checkpoint.MissingError
	if !errors.As(err, &me) {
		t.Fatalf("want MissingError, got %v", err)
	}

	// A parameter change on resume is a typed error naming the parameter.
	dir := t.TempDir()
	opt = resumeOptions(HierarchicalMode, 3)
	opt.Checkpoint = openJournal(t, dir)
	if _, err := Run(reads, opt); err != nil {
		t.Fatal(err)
	}
	changed := resumeOptions(HierarchicalMode, 3)
	changed.Theta = 0.6
	changed.Checkpoint = openJournal(t, dir)
	changed.Resume = ResumeOn
	_, err = Run(reads, changed)
	var pm *checkpoint.ParamMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("want ParamMismatchError, got %v", err)
	}
	if pm.Stage != StageCluster || pm.Param != "theta" {
		t.Fatalf("mismatch misattributed: %+v", pm)
	}

	// A changed dataset invalidates from the first stage.
	otherReads, _ := makeReads(3, 5, 180, 0.01, 99)
	other := resumeOptions(HierarchicalMode, 3)
	other.Checkpoint = openJournal(t, dir)
	other.Resume = ResumeOn
	_, err = Run(otherReads, other)
	var im *checkpoint.InputMismatchError
	if !errors.As(err, &im) || im.Stage != StageSketch {
		t.Fatalf("want InputMismatchError at sketch, got %v", err)
	}

	// ResumeForce discards the stale journal and re-runs cleanly.
	forced := resumeOptions(HierarchicalMode, 3)
	forced.Theta = 0.6
	forced.Checkpoint = openJournal(t, dir)
	forced.Resume = ResumeForce
	res, err := Run(reads, forced)
	if err != nil {
		t.Fatalf("ResumeForce: %v", err)
	}
	if len(res.SkippedStages) != 0 {
		t.Fatalf("forced run skipped stages: %v", res.SkippedStages)
	}
}

// TestCheckpointedRunMatchesPlain guards against the journaling itself
// perturbing the pipeline: with a journal attached but no resume, results
// equal the journal-free run's.
func TestCheckpointedRunMatchesPlain(t *testing.T) {
	reads, _ := makeReads(4, 5, 200, 0.01, 7)
	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		plain, err := Run(reads, resumeOptions(mode, 7))
		if err != nil {
			t.Fatal(err)
		}
		opt := resumeOptions(mode, 7)
		opt.Checkpoint = openJournal(t, t.TempDir())
		journaled, err := Run(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Assignments, journaled.Assignments) {
			t.Fatalf("%v: journaling changed the clustering", mode)
		}
		if want := stagesOf(mode); opt.Checkpoint.Len() != len(want) {
			t.Fatalf("%v: journal has %d entries, want %d", mode, opt.Checkpoint.Len(), len(want))
		}
	}
}

// TestCodecRoundTrips exercises the exact binary codecs resume depends on
// for bit-identical restoration.
func TestCodecRoundTrips(t *testing.T) {
	reads, _ := makeReads(3, 4, 150, 0.02, 11)
	opt := resumeOptions(HierarchicalMode, 11)
	if HashReads(reads) == HashReads(reads[:len(reads)-1]) {
		t.Fatal("reads hash insensitive to content")
	}

	res, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := decodeLabels(encodeLabels(res.Assignments))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, res.Assignments) {
		t.Fatal("labels codec not exact")
	}
	if _, err := decodeLabels([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated labels accepted")
	}
	if _, err := decodeSignatures([]byte{9}); err == nil {
		t.Fatal("truncated signatures accepted")
	}
	if _, err := decodeMatrix([]byte{9}); err == nil {
		t.Fatal("truncated matrix accepted")
	}
}
