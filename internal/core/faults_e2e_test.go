package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// End-to-end fault tolerance: the full MrMC-MinH pipeline — FASTA staged
// through the DFS with a replica lost, task crashes and a node death
// injected into every MapReduce job — must produce clusters bit-identical
// to the fault-free run. Recovery is lossless by construction; only the
// modelled runtime grows.
func TestPipelineBitIdenticalUnderChaos(t *testing.T) {
	reads, _ := makeReads(4, 6, 200, 0.01, 5)

	// Stage the input through the simulated HDFS and lose one replica
	// holder before reading it back: the read must fail over.
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 4, BlockSize: 512, Replication: 3})
	var sb strings.Builder
	for _, r := range reads {
		fmt.Fprintf(&sb, ">%s\n%s\n", r.ID, r.Seq)
	}
	if err := fs.WriteFile("/in/reads.fa", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(faults.MustNew(faults.Plan{
		BlockErrors: []faults.BlockError{{PathPrefix: "/in", Node: 2, Times: 1}},
	}))
	if err := fs.KillDataNode(1); err != nil {
		t.Fatal(err)
	}
	raw, err := fs.ReadFile("/in/reads.fa")
	if err != nil {
		t.Fatal(err)
	}
	staged, err := fasta.ParseString(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) != len(reads) {
		t.Fatalf("DFS round-trip lost reads: %d of %d", len(staged), len(reads))
	}
	if st := fs.Stats(); st.FailedReads == 0 {
		t.Fatalf("expected failover reads (dead replica + injected error), stats %+v", st)
	}

	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		t.Run(mode.String(), func(t *testing.T) {
			opt := Options{
				K: 8, NumHashes: 50, Theta: 0.4, Mode: mode,
				Seed: 9, Cluster: smallCluster(),
			}
			baseline, err := Run(staged, opt)
			if err != nil {
				t.Fatal(err)
			}

			rec := trace.New()
			chaos := opt
			chaos.Trace = rec
			chaos.Retry = mapreduce.RetryPolicy{MaxAttempts: 4}
			plan := faults.ChaosPlan(3)
			plan.Crashes = []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 1}}
			plan.NodeDeaths = []faults.NodeDeath{{Node: 2, At: 25 * time.Second}}
			chaos.Faults = faults.MustNew(plan)
			faulted, err := Run(staged, chaos)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(baseline.Assignments, faulted.Assignments) {
				t.Fatal("fault injection changed the clustering")
			}
			if faulted.NumClusters() != baseline.NumClusters() {
				t.Fatalf("cluster counts diverged: %d vs %d", faulted.NumClusters(), baseline.NumClusters())
			}
			if faulted.Virtual <= baseline.Virtual {
				t.Fatalf("recovery should cost virtual time: %v <= %v", faulted.Virtual, baseline.Virtual)
			}
			if chaos.Faults.Injected() == 0 {
				t.Fatal("the chaos plan injected nothing")
			}
			// The trace must show the recovery: retried attempts and at
			// least one non-success outcome.
			var retried, nonSuccess int
			for _, s := range rec.Spans() {
				if s.Attempt >= 2 {
					retried++
				}
				if s.Status == "crashed" || s.Status == "killed" {
					nonSuccess++
				}
			}
			if retried == 0 || nonSuccess == 0 {
				t.Fatalf("trace shows no recovery (retried=%d nonSuccess=%d)", retried, nonSuccess)
			}

			// Determinism: the same chaos seed reproduces the same schedule.
			again := opt
			again.Retry = chaos.Retry
			again.Faults = faults.MustNew(plan)
			res2, err := Run(staged, again)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res2.Assignments, faulted.Assignments) {
				t.Fatal("faulted runs diverged")
			}
		})
	}
}
