package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
	"github.com/metagenomics/mrmcminh/internal/minhash"
	"github.com/metagenomics/mrmcminh/internal/sigstore"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Mode selects the clustering algorithm.
type Mode int

const (
	// GreedyMode is Algorithm 1 (MrMC-MinH^g).
	GreedyMode Mode = iota
	// HierarchicalMode is Algorithm 2 (MrMC-MinH^h).
	HierarchicalMode
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case GreedyMode:
		return "MrMC-MinH^g"
	case HierarchicalMode:
		return "MrMC-MinH^h"
	default:
		return "unknown"
	}
}

// CandidateGen selects how the pipeline discovers candidate read pairs.
type CandidateGen int

const (
	// CandidateExact is the paper's all-pairs path: every pair is compared
	// (O(N²)), either inside the single greedy reducer or in the
	// row-partitioned similarity matrix.
	CandidateExact CandidateGen = iota
	// CandidateLSH replaces the all-pairs barrier with a banded MinHash
	// candidate-generation MapReduce stage followed by logarithmic-round
	// connected components: only bucket-colliding pairs are verified with
	// SimilarityPrepared, surviving edges feed Large-Star/Small-Star
	// component finding, and the exact clustering algorithm runs per
	// component. Sub-quadratic in the number of reads; equivalent to the
	// exact path whenever every ≥θ pair collides in some band.
	CandidateLSH
)

// String names the candidate generator as the CLIs spell it.
func (c CandidateGen) String() string {
	switch c {
	case CandidateExact:
		return "exact"
	case CandidateLSH:
		return "lsh"
	default:
		return "unknown"
	}
}

// ParseCandidateGen maps the -candidate flag values.
func ParseCandidateGen(s string) (CandidateGen, error) {
	switch s {
	case "", "exact":
		return CandidateExact, nil
	case "lsh":
		return CandidateLSH, nil
	default:
		return 0, fmt.Errorf("core: unknown candidate generator %q (want exact or lsh)", s)
	}
}

// DefaultLSHBucketCap bounds how many reads a single LSH bucket may expand
// into pairs: a degenerate bucket of size B would otherwise emit B(B-1)/2
// candidates and re-quadratize the run.
const DefaultLSHBucketCap = 256

// Options parameterizes an MrMC-MinH run. Zero values select the paper's
// whole-metagenome defaults (k=5, n=100, θ=0.9, average linkage).
type Options struct {
	// K is the k-mer size (paper: 5 for whole metagenome, 15 for 16S).
	K int
	// NumHashes is the signature length n (paper: 100 / 50).
	NumHashes int
	// Theta is the similarity threshold θ.
	Theta float64
	// Mode selects greedy or hierarchical clustering.
	Mode Mode
	// Linkage applies in HierarchicalMode.
	Linkage cluster.Linkage
	// Estimator selects the signature similarity estimate; the default is
	// the paper's set-overlap form.
	Estimator minhash.Estimator
	// Canonical folds reverse complements into one k-mer (recommended for
	// shotgun reads, off for 16S amplicons).
	Canonical bool
	// UseLSH accelerates GreedyMode with a banded LSH index over cluster
	// representatives (the MC-LSH fast path): new reads check only
	// bucket-colliding representatives instead of all of them. Slight
	// recall loss is possible for borderline pairs. Ignored in
	// HierarchicalMode.
	UseLSH bool
	// Candidate selects candidate-pair discovery: CandidateExact (default,
	// the paper's all-pairs path and the equivalence oracle) or
	// CandidateLSH (banded candidate generation + connected components;
	// see ClusterLSHCC). Applies to both modes.
	Candidate CandidateGen
	// LSH sizes the banding geometry of the CandidateLSH stage. The zero
	// value derives it with cluster.GeometryFor(NumHashes, Theta) so the
	// collision S-curve knee sits at the clustering threshold.
	LSH cluster.LSHOptions
	// LSHBucketCap caps how many reads of one LSH bucket expand into
	// candidate pairs (0 = DefaultLSHBucketCap). Overflowing reads are
	// dropped from that bucket (counted in lsh.bucket_overflow) — they
	// stay reachable through their other bands.
	LSHBucketCap int
	// StoreBits selects where signatures live between pipeline stages.
	// 0 (the default): a sharded signature store (internal/sigstore)
	// holds full 64-bit signatures and every downstream stage borrows
	// from its arenas — bit-identical to the legacy slice path.
	// -1: legacy per-run Go slices, kept as the equivalence oracle.
	// 1..16: the store packs signatures to b bits per slot (b-bit
	// minwise hashing, Li & König) for an 8–64× smaller resident
	// footprint; clustering then runs the collision-corrected estimator
	// directly over the packed words — a deliberately lossy
	// configuration, not a bit-identical one. Counters
	// sigstore.resident_bytes / sigstore.reads report the footprint.
	StoreBits int
	// Seed drives hash-function draws.
	Seed int64
	// Cluster is the simulated deployment; zero uses the paper's 8 nodes.
	Cluster mapreduce.Cluster
	// ShuffleBufferBytes caps each map task's sort buffer across the
	// pipeline's jobs, switching them onto the external spill-and-merge
	// shuffle (see mapreduce.Job.ShuffleBufferBytes). 0 keeps the
	// in-memory shuffle. Clustering output is bit-identical either way.
	ShuffleBufferBytes int
	// Trace, when non-nil, receives one span per MapReduce job, task and
	// shuffle across the pipeline's jobs. Nil (the default) disables
	// tracing at no cost.
	Trace *trace.Recorder
	// Faults, when non-nil, injects the plan's failures into every MapReduce
	// job of the pipeline: task crashes retry, node deaths trigger Hadoop's
	// map re-execution, and the virtual runtime reflects the recovery. The
	// clustering result is bit-identical with and without faults.
	Faults *faults.Injector
	// Retry tunes recovery when Faults is set (zero = Hadoop defaults).
	Retry mapreduce.RetryPolicy
	// Checkpoint, when non-nil, journals each stage's committed output so
	// a later run can resume after a driver failure. The journal records
	// a content-addressed manifest entry (inputs hash, parameter hash,
	// output hash) per stage.
	Checkpoint *checkpoint.Journal
	// Resume controls how an existing journal is consulted (requires
	// Checkpoint). ResumeOff re-runs everything (still journaling);
	// ResumeOn skips every stage whose manifest entry validates and fails
	// with a typed error on a missing or mismatched manifest; ResumeForce
	// discards the journal and starts fresh.
	Resume ResumeMode
}

// ResumeMode is the --resume setting.
type ResumeMode int

const (
	// ResumeOff ignores any existing checkpoint journal.
	ResumeOff ResumeMode = iota
	// ResumeOn resumes from the journal, erroring when it is missing or
	// inconsistent with the current run.
	ResumeOn
	// ResumeForce discards the journal and runs from scratch.
	ResumeForce
)

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 5
	}
	if o.NumHashes == 0 {
		o.NumHashes = 100
	}
	if o.Theta == 0 {
		o.Theta = 0.9
	}
	if o.Estimator == 0 {
		o.Estimator = minhash.SetOverlap
	}
	if o.Cluster.Nodes == 0 {
		o.Cluster = mapreduce.DefaultCluster
	}
	return o
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.K < 1 || o.K > kmer.MaxK {
		return fmt.Errorf("core: k=%d out of range [1,%d]", o.K, kmer.MaxK)
	}
	if o.NumHashes < 1 {
		return fmt.Errorf("core: need at least one hash function, got %d", o.NumHashes)
	}
	if o.Theta < 0 || o.Theta > 1 {
		return fmt.Errorf("core: θ=%v out of range [0,1]", o.Theta)
	}
	if o.Mode != GreedyMode && o.Mode != HierarchicalMode {
		return fmt.Errorf("core: invalid mode %d", o.Mode)
	}
	if o.Candidate != CandidateExact && o.Candidate != CandidateLSH {
		return fmt.Errorf("core: invalid candidate generator %d", o.Candidate)
	}
	if o.StoreBits < -1 || o.StoreBits > 16 {
		return fmt.Errorf("core: StoreBits must be -1 (slices), 0 (full store) or 1..16 (packed), got %d", o.StoreBits)
	}
	if o.Candidate == CandidateLSH {
		if o.Theta <= 0 {
			return fmt.Errorf("core: LSH candidate generation needs θ > 0 (got %v)", o.Theta)
		}
		lsh := o.LSH
		if lsh == (cluster.LSHOptions{}) {
			lsh = cluster.GeometryFor(o.NumHashes, o.Theta)
		}
		if err := lsh.Validate(o.NumHashes); err != nil {
			return err
		}
		if o.LSHBucketCap < 0 {
			return fmt.Errorf("core: LSH bucket cap must be ≥ 0, got %d", o.LSHBucketCap)
		}
	}
	return o.Cluster.Validate()
}

// Result is a completed clustering run.
type Result struct {
	// Assignments maps read index -> cluster label.
	Assignments metrics.Clustering
	// ReadIDs are the FASTA ids, index-aligned with Assignments.
	ReadIDs []string
	// Virtual is the modelled cluster wall time (the paper's "Time").
	Virtual time.Duration
	// Real is the measured local execution time.
	Real time.Duration
	// Jobs counts launched MapReduce jobs.
	Jobs int
	// Counters aggregates the engine counters of every executed job
	// (shuffle bytes, spills, merge passes, attempts, ...). Stages
	// restored from a checkpoint contribute nothing. Nil when no job ran.
	Counters map[string]int64
	// SkippedStages lists the stages restored from the checkpoint journal
	// instead of re-executed, in pipeline order (nil on fresh runs).
	SkippedStages []string
}

// NumClusters returns the number of clusters in the result.
func (r *Result) NumClusters() int { return r.Assignments.NumClusters() }

// Pipeline stage names, as they appear in checkpoint manifests and the
// driver-crash fault's AfterStage.
const (
	StageSketch     = "sketch"
	StageGreedy     = "greedy"
	StageSimilarity = "similarity"
	StageCluster    = "cluster"
	// LSH-path stages (Candidate == CandidateLSH).
	StageLSHEdges   = "lsh-edges"
	StageCC         = "components"
	StageLSHCluster = "lsh-cluster"
)

// ckptRunner threads the checkpoint journal and driver-crash fault
// through the pipeline's stages.
type ckptRunner struct {
	journal *checkpoint.Journal
	resume  bool // still inside the validated prefix of the journal
	faults  *faults.Injector
	skipped []string
}

func newCkptRunner(opt Options) (*ckptRunner, error) {
	ck := &ckptRunner{journal: opt.Checkpoint, faults: opt.Faults}
	if opt.Resume == ResumeOff {
		return ck, nil
	}
	if ck.journal == nil {
		return nil, fmt.Errorf("core: Resume requires a Checkpoint journal")
	}
	switch opt.Resume {
	case ResumeForce:
		if err := ck.journal.Discard(); err != nil {
			return nil, err
		}
	case ResumeOn:
		if ck.journal.Empty() {
			return nil, &checkpoint.MissingError{Dir: ck.journal.Dir()}
		}
		ck.resume = true
	}
	return ck, nil
}

// lookup returns a stage's checkpointed bytes when its manifest entry
// validates. The first stage with no entry ends the resumable prefix:
// every stage after it re-executes. A mismatched entry is a typed error.
func (ck *ckptRunner) lookup(stage, inputsHash string, params map[string]string) ([]byte, bool, error) {
	if ck.journal == nil || !ck.resume {
		return nil, false, nil
	}
	e, ok, err := ck.journal.Validate(stage, inputsHash, params)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		ck.resume = false
		return nil, false, nil
	}
	data, err := ck.journal.Load(e)
	if err != nil {
		return nil, false, err
	}
	ck.skipped = append(ck.skipped, stage)
	return data, true, nil
}

// commit journals an executed stage's output, then fires any planned
// driver crash — the crash lands after the checkpoint is durable, so
// the stage is exactly what a resumed run gets to skip.
func (ck *ckptRunner) commit(stage, inputsHash string, params map[string]string, output func() []byte) error {
	if ck.journal != nil {
		if _, err := ck.journal.Commit(stage, inputsHash, params, output()); err != nil {
			return err
		}
	}
	if ck.faults.DriverCrashAfter(stage) {
		return &faults.DriverCrashError{Stage: stage}
	}
	return nil
}

// Run executes the MrMC-MinH pipeline on reads: sketching as a map-only
// job, then either greedy clustering in a single reducer or the
// row-partitioned similarity matrix plus driver-side dendrogram. With
// Options.Checkpoint each stage's output is journaled after it commits,
// and with Options.Resume validated stages are restored instead of
// re-executed; because every stage is deterministic and checkpoints use
// exact binary codecs, a resumed run's clusters are bit-identical to an
// uninterrupted run's.
func Run(reads []fasta.Record, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ck, err := newCkptRunner(opt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	engine, err := mapreduce.NewEngine(opt.Cluster)
	if err != nil {
		return nil, err
	}
	engine.Trace = opt.Trace
	engine.Faults = opt.Faults
	engine.Retry = opt.Retry
	res := &Result{ReadIDs: make([]string, len(reads))}
	for i := range reads {
		res.ReadIDs[i] = reads[i].ID
	}
	// addJob folds one executed MapReduce job into the pipeline result.
	addJob := func(out *mapreduce.Result) {
		res.Virtual += out.Virtual
		res.Jobs++
		if out.Counters == nil {
			return
		}
		if res.Counters == nil {
			res.Counters = make(map[string]int64)
		}
		for k, v := range out.Counters.Snapshot() {
			res.Counters[k] += v
		}
	}

	// Stage inputs are content-addressed: each stage's inputs hash is the
	// hash of the previous stage's committed bytes, so a change anywhere
	// upstream invalidates everything downstream.
	var readsHash string
	if opt.Checkpoint != nil {
		readsHash = HashReads(reads)
	}
	sketchParams := map[string]string{
		"k":          fmt.Sprint(opt.K),
		"num_hashes": fmt.Sprint(opt.NumHashes),
		"canonical":  fmt.Sprint(opt.Canonical),
		"seed":       fmt.Sprint(opt.Seed),
	}
	if opt.StoreBits > 0 {
		// Packed storage changes the sketch stage's committed bytes (a
		// store snapshot instead of the full-signature codec), so mixing
		// packed and unpacked journals must surface as a parameter
		// mismatch, not a corrupt decode.
		sketchParams["store_bits"] = fmt.Sprint(opt.StoreBits)
	}

	var sigs []minhash.Signature
	var store *sigstore.Store
	var sigBytes []byte // encoded sketch output, when journaling
	if data, ok, err := ck.lookup(StageSketch, readsHash, sketchParams); err != nil {
		return nil, err
	} else if ok {
		if opt.StoreBits > 0 {
			if store, err = sigstore.Restore(data); err != nil {
				return nil, err
			}
			if store.NumHashes() != opt.NumHashes || store.Bits() != opt.StoreBits || store.Len() != len(reads) {
				return nil, fmt.Errorf("core: checkpointed store geometry n=%d/b=%d/reads=%d does not match run n=%d/b=%d/reads=%d",
					store.NumHashes(), store.Bits(), store.Len(), opt.NumHashes, opt.StoreBits, len(reads))
			}
		} else if sigs, err = decodeSignatures(data); err != nil {
			return nil, err
		}
		sigBytes = data
	} else {
		var mrout *mapreduce.Result
		if sigs, mrout, err = sketchJob(engine, reads, opt); err != nil {
			return nil, err
		}
		addJob(mrout)
		if opt.StoreBits > 0 {
			if store, err = buildStore(reads, sigs, opt); err != nil {
				return nil, err
			}
			sigs = nil // packed mode never keeps the full signatures resident
			if opt.Checkpoint != nil {
				sigBytes = store.Snapshot()
			}
		} else if opt.Checkpoint != nil {
			sigBytes = encodeSignatures(sigs)
		}
		if err := ck.commit(StageSketch, readsHash, sketchParams, func() []byte { return sigBytes }); err != nil {
			return nil, err
		}
	}
	if opt.StoreBits == 0 {
		// Full-width store: built from the signatures on either path
		// (fresh sketch or checkpoint restore). Its sketch checkpoint
		// stays the legacy signature codec, so journals written by the
		// slice path resume under the store path and vice versa.
		if store, err = buildStore(reads, sigs, opt); err != nil {
			return nil, err
		}
	}
	var src sigSource
	if store != nil {
		view, err := store.View(opt.Estimator)
		if err != nil {
			return nil, err
		}
		src = view
		if res.Counters == nil {
			res.Counters = make(map[string]int64)
		}
		res.Counters["sigstore.resident_bytes"] = store.ResidentBytes()
		res.Counters["sigstore.reads"] = int64(store.Len())
	} else {
		src = cluster.NewSliceSource(sigs, opt.Estimator)
	}
	var sigsHash string
	if opt.Checkpoint != nil {
		sigsHash = checkpoint.HashBytes(sigBytes)
	}

	if opt.Candidate == CandidateLSH {
		if err := clusterLSHCC(engine, src, sigsHash, opt, res, ck, addJob); err != nil {
			return nil, err
		}
		res.SkippedStages = ck.skipped
		res.Real = time.Since(start)
		return res, nil
	}

	switch opt.Mode {
	case GreedyMode:
		greedyParams := map[string]string{
			"theta":     fmt.Sprint(opt.Theta),
			"estimator": fmt.Sprint(int(opt.Estimator)),
			"use_lsh":   fmt.Sprint(opt.UseLSH),
		}
		if data, ok, err := ck.lookup(StageGreedy, sigsHash, greedyParams); err != nil {
			return nil, err
		} else if ok {
			if res.Assignments, err = decodeLabels(data); err != nil {
				return nil, err
			}
		} else {
			labels, mrout, err := greedyJob(engine, src, opt)
			if err != nil {
				return nil, err
			}
			res.Assignments = labels
			addJob(mrout)
			if err := ck.commit(StageGreedy, sigsHash, greedyParams, func() []byte { return encodeLabels(labels) }); err != nil {
				return nil, err
			}
		}
	case HierarchicalMode:
		simParams := map[string]string{
			"estimator": fmt.Sprint(int(opt.Estimator)),
		}
		var m *cluster.Matrix
		var matBytes []byte
		if data, ok, err := ck.lookup(StageSimilarity, sigsHash, simParams); err != nil {
			return nil, err
		} else if ok {
			if m, err = decodeMatrix(data); err != nil {
				return nil, err
			}
			matBytes = data
		} else {
			var mrout *mapreduce.Result
			if m, mrout, err = similarityJob(engine, src, opt); err != nil {
				return nil, err
			}
			addJob(mrout)
			if opt.Checkpoint != nil {
				matBytes = encodeMatrix(m)
			}
			if err := ck.commit(StageSimilarity, sigsHash, simParams, func() []byte { return matBytes }); err != nil {
				return nil, err
			}
		}
		var matHash string
		if opt.Checkpoint != nil {
			matHash = checkpoint.HashBytes(matBytes)
		}
		clusterParams := map[string]string{
			"theta":   fmt.Sprint(opt.Theta),
			"linkage": fmt.Sprint(int(opt.Linkage)),
		}
		if data, ok, err := ck.lookup(StageCluster, matHash, clusterParams); err != nil {
			return nil, err
		} else if ok {
			if res.Assignments, err = decodeLabels(data); err != nil {
				return nil, err
			}
		} else {
			dend, err := cluster.Hierarchical(m, cluster.HierarchicalOptions{Linkage: opt.Linkage})
			if err != nil {
				return nil, err
			}
			res.Assignments = dend.CutAt(opt.Theta)
			if err := ck.commit(StageCluster, matHash, clusterParams, func() []byte { return encodeLabels(res.Assignments) }); err != nil {
				return nil, err
			}
		}
	}
	res.SkippedStages = ck.skipped
	res.Real = time.Since(start)
	return res, nil
}

// sketchJob computes minwise signatures for all reads as a map-only job.
// Map tasks run the slice-based SketchInto kernel: k-mer occurrences are
// streamed into a pooled scratch buffer (duplicates do not change the
// minima) so the hot path never materializes a kmer.Set map.
func sketchJob(engine *mapreduce.Engine, reads []fasta.Record, opt Options) ([]minhash.Signature, *mapreduce.Result, error) {
	sk, err := minhash.NewSketcher(opt.NumHashes, opt.K, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	ex := &kmer.Extractor{K: opt.K, Canonical: opt.Canonical}
	scratch := sync.Pool{New: func() any { return new([]uint64) }}
	records := make([]mapreduce.KeyValue, len(reads))
	for i := range reads {
		records[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%012d", i), Value: i}
	}
	job := &mapreduce.Job{
		Name:               "mrmcminh-sketch",
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: splitSize(len(records), engine.Cluster)},
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// Sketching one read costs ~L·n hash evaluations, far above the
		// baseline per-record map cost.
		MapCostFactor: float64(opt.NumHashes) / 2,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			i := kv.Value.(int)
			buf := scratch.Get().(*[]uint64)
			kms := ex.SliceInto((*buf)[:0], reads[i].Seq)
			sig := sk.SketchInto(nil, kms)
			*buf = kms
			scratch.Put(buf)
			emit(mapreduce.KeyValue{Key: kv.Key, Value: sig})
			return nil
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	sigs := make([]minhash.Signature, len(reads))
	for _, kv := range out.Output {
		var idx int
		if _, err := fmt.Sscanf(kv.Key, "%d", &idx); err != nil {
			return nil, nil, err
		}
		sigs[idx] = kv.Value.(minhash.Signature)
	}
	return sigs, out, nil
}

// sigSource is the pipeline's view of a signature corpus: the cluster
// package's SigSource kernel interface plus borrowed payload access for
// shuffle emission. Satisfied by cluster.SliceSource (legacy,
// StoreBits == -1) and sigstore.View (store-backed, the default).
type sigSource interface {
	cluster.SigSource
	// Sig returns the borrowed full signature for i (nil on packed
	// stores).
	Sig(i int) minhash.Signature
	// PackedSig returns the borrowed packed signature for i (the zero
	// value on full-width sources).
	PackedSig(i int) minhash.BBitSignature
}

// buildStore ingests a sketched corpus into a sharded signature store.
// Rows are keyed by read index (PutBatch from dense ID 0), which keeps
// store-backed runs index-aligned with the legacy path even when a FASTA
// repeats a read ID; the translator additionally registers each read ID
// (duplicates resolve to their first occurrence).
func buildStore(reads []fasta.Record, sigs []minhash.Signature, opt Options) (*sigstore.Store, error) {
	bits := opt.StoreBits
	if bits < 0 {
		bits = 0
	}
	st, err := sigstore.New(sigstore.Config{NumHashes: opt.NumHashes, Bits: bits})
	if err != nil {
		return nil, err
	}
	if err := st.PutBatch(0, sigs); err != nil {
		return nil, err
	}
	keys := make([]string, len(reads))
	for i := range reads {
		keys[i] = reads[i].ID
	}
	st.Translator().TranslateBatch(nil, keys)
	return st, nil
}

// greedyJob runs Algorithm 1 inside a single reducer (the paper's GROUP
// ALL followed by the GreedyClustering UDF). Every read's signature rides
// the shuffle as a borrowed row — full 64-bit words or b-bit packed,
// whichever the store holds — and on the store-backed paths the reducer
// then clusters by borrowing from the store directly instead of
// materializing the shuffled copies.
func greedyJob(engine *mapreduce.Engine, src sigSource, opt Options) (metrics.Clustering, *mapreduce.Result, error) {
	type indexedSig struct {
		idx int
		sig minhash.Signature
	}
	type indexedPacked struct {
		idx   int
		words []uint64
	}
	n := src.Len()
	packed := opt.StoreBits > 0
	records := make([]mapreduce.KeyValue, n)
	for i := 0; i < n; i++ {
		if packed {
			records[i] = mapreduce.KeyValue{Key: "all", Value: indexedPacked{idx: i, words: src.PackedSig(i).Words}}
		} else {
			records[i] = mapreduce.KeyValue{Key: "all", Value: indexedSig{idx: i, sig: src.Sig(i)}}
		}
	}
	labels := make(metrics.Clustering, n)
	job := &mapreduce.Job{
		Name:               "mrmcminh-greedy",
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: splitSize(len(records), engine.Cluster)},
		NumReducers:        1,
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// The greedy sweep compares each read against the shrinking set of
		// cluster representatives — modelled as a bounded constant per
		// read, far below the hierarchical all-pairs row cost.
		ReduceCostFactor: 7.5,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			emit(kv)
			return nil
		},
		Reduce: func(_ string, values []any, emit func(mapreduce.KeyValue)) error {
			gopt := cluster.GreedyOptions{Threshold: opt.Theta, Estimator: opt.Estimator}
			var got metrics.Clustering
			var err error
			if opt.StoreBits < 0 {
				// Legacy slice oracle: rebuild the corpus from the shuffled
				// records, exactly as the pre-store pipeline did.
				ordered := make([]minhash.Signature, len(values))
				for _, v := range values {
					is := v.(indexedSig)
					ordered[is.idx] = is.sig
				}
				if opt.UseLSH {
					got, err = cluster.GreedyLSH(ordered, gopt, cluster.GeometryFor(opt.NumHashes, opt.Theta))
				} else {
					got, err = cluster.Greedy(ordered, gopt)
				}
			} else if opt.UseLSH {
				got, err = cluster.GreedyLSHSource(src, gopt, cluster.GeometryFor(opt.NumHashes, opt.Theta))
			} else {
				got, err = cluster.GreedySource(src, gopt)
			}
			if err != nil {
				return err
			}
			copy(labels, got)
			return nil
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	return labels, out, nil
}

// similarityJob computes the all-pairs matrix with row-partitioned map
// tasks (paper §III-C: "calculation of all pairwise similarity is
// performed in parallel by performing a row-wise partition"). Map tasks
// read pairs straight off the source — prepared slices or store arenas —
// so the O(n²) row scans are allocation-free either way.
func similarityJob(engine *mapreduce.Engine, src cluster.SigSource, opt Options) (*cluster.Matrix, *mapreduce.Result, error) {
	n := src.Len()
	m, err := cluster.NewMatrix(n)
	if err != nil {
		return nil, nil, err
	}
	records := make([]mapreduce.KeyValue, n)
	for i := range records {
		records[i] = mapreduce.KeyValue{Key: fmt.Sprintf("%012d", i), Value: i}
	}
	type rowResult struct {
		idx int
		row []float64
	}
	job := &mapreduce.Job{
		Name:               "mrmcminh-simrows",
		Input:              mapreduce.MemoryInput{Records: records, SplitSize: splitSize(n, engine.Cluster)},
		ShuffleBufferBytes: opt.ShuffleBufferBytes,
		// One record = one matrix row = ~n signature comparisons, each a
		// ~100-value sketch scan plus Hadoop (de)serialization.
		MapCostFactor: float64(n) * 2.5,
		Map: func(kv mapreduce.KeyValue, emit func(mapreduce.KeyValue)) error {
			i := kv.Value.(int)
			row := make([]float64, n)
			for j := i + 1; j < n; j++ {
				row[j] = src.Similarity(i, j)
			}
			emit(mapreduce.KeyValue{Key: kv.Key, Value: rowResult{idx: i, row: row}})
			return nil
		},
	}
	out, err := engine.Run(job)
	if err != nil {
		return nil, nil, err
	}
	for _, kv := range out.Output {
		rr := kv.Value.(rowResult)
		for j := rr.idx + 1; j < n; j++ {
			m.Set(rr.idx, j, rr.row[j])
		}
	}
	return m, out, nil
}

// splitSize sizes in-memory splits for the cluster (two waves per slot).
func splitSize(n int, c mapreduce.Cluster) int {
	waves := 2 * c.TotalSlots()
	size := (n + waves - 1) / waves
	if size < 1 {
		size = 1
	}
	return size
}

// ClustersByID converts a result into clusterID -> read IDs, sorted for
// stable output.
func (r *Result) ClustersByID() map[int][]string {
	out := make(map[int][]string)
	for i, l := range r.Assignments {
		if l >= 0 {
			out[l] = append(out[l], r.ReadIDs[i])
		}
	}
	for _, ids := range out {
		sort.Strings(ids)
	}
	return out
}
