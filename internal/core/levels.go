package core

import (
	"fmt"
	"time"

	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// LevelAssignment is one flat clustering extracted from the shared
// dendrogram.
type LevelAssignment struct {
	Theta       float64
	Assignments metrics.Clustering
}

// LevelsResult is a multi-threshold hierarchical run: the paper's
// "clustering results at different hierarchical taxonomic levels" from a
// single similarity matrix and dendrogram.
type LevelsResult struct {
	ReadIDs []string
	Levels  []LevelAssignment
	Virtual time.Duration
	Jobs    int
}

// RunLevels executes the hierarchical pipeline once and cuts the
// dendrogram at every threshold (finest first). Options' Theta is ignored.
func RunLevels(reads []fasta.Record, opt Options, thetas []float64) (*LevelsResult, error) {
	opt = opt.withDefaults()
	opt.Mode = HierarchicalMode
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(thetas) == 0 {
		return nil, fmt.Errorf("core: RunLevels needs at least one threshold")
	}
	for _, t := range thetas {
		if t < 0 || t > 1 {
			return nil, fmt.Errorf("core: threshold %v out of [0,1]", t)
		}
	}
	engine, err := mapreduce.NewEngine(opt.Cluster)
	if err != nil {
		return nil, err
	}
	engine.Trace = opt.Trace
	res := &LevelsResult{ReadIDs: make([]string, len(reads))}
	for i := range reads {
		res.ReadIDs[i] = reads[i].ID
	}
	sigs, skOut, err := sketchJob(engine, reads, opt)
	if err != nil {
		return nil, err
	}
	res.Virtual += skOut.Virtual
	res.Jobs++
	// Same source routing as Run: the matrix rows read borrowed store rows
	// unless the legacy slice oracle (StoreBits == -1) is requested.
	var src cluster.SigSource = cluster.NewSliceSource(sigs, opt.Estimator)
	if opt.StoreBits >= 0 {
		store, err := buildStore(reads, sigs, opt)
		if err != nil {
			return nil, err
		}
		view, err := store.View(opt.Estimator)
		if err != nil {
			return nil, err
		}
		src = view
	}
	m, simOut, err := similarityJob(engine, src, opt)
	if err != nil {
		return nil, err
	}
	res.Virtual += simOut.Virtual
	res.Jobs++
	dend, err := cluster.Hierarchical(m, cluster.HierarchicalOptions{Linkage: opt.Linkage})
	if err != nil {
		return nil, err
	}
	for _, lv := range dend.CutLevels(thetas) {
		res.Levels = append(res.Levels, LevelAssignment{Theta: lv.Theta, Assignments: lv.Labels})
	}
	return res, nil
}

// PickRepresentatives sketches the reads with the run's parameters and
// returns clusterID -> representative read index (the medoid under the
// configured estimator) — the pre-processing reduction the paper's
// introduction motivates (analyze representatives, not every read).
func PickRepresentatives(reads []fasta.Record, labels metrics.Clustering, opt Options) (map[int]int, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(reads) != len(labels) {
		return nil, fmt.Errorf("core: %d reads for %d labels", len(reads), len(labels))
	}
	engine, err := mapreduce.NewEngine(opt.Cluster)
	if err != nil {
		return nil, err
	}
	engine.Trace = opt.Trace
	sigs, _, err := sketchJob(engine, reads, opt)
	if err != nil {
		return nil, err
	}
	return cluster.Representatives(labels, sigs, opt.Estimator)
}
