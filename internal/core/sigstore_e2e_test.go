package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/checkpoint"
	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/mapreduce"
	"github.com/metagenomics/mrmcminh/internal/metrics"
)

// TestStoreBackedBitIdenticalToSlices pins the store-backed pipeline
// (StoreBits == 0, the default) bit-identical to the legacy slice path
// (StoreBits == -1) across modes, the LSH greedy accelerator and both
// candidate generators, for every chaos seed.
func TestStoreBackedBitIdenticalToSlices(t *testing.T) {
	for _, seed := range resumeSeeds(t) {
		reads, _ := makeReads(4, 6, 200, 0.01, seed)
		cases := []struct {
			name string
			mut  func(*Options)
		}{
			{"greedy", func(o *Options) { o.Mode = GreedyMode }},
			{"greedy-lsh", func(o *Options) { o.Mode = GreedyMode; o.UseLSH = true }},
			{"hierarchical", func(o *Options) { o.Mode = HierarchicalMode }},
			{"greedy-candlsh", func(o *Options) { o.Mode = GreedyMode; o.Candidate = CandidateLSH }},
			{"hierarchical-candlsh", func(o *Options) { o.Mode = HierarchicalMode; o.Candidate = CandidateLSH }},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, tc.name), func(t *testing.T) {
				opt := Options{
					K: 8, NumHashes: 40, Theta: 0.4,
					Seed: seed, Cluster: smallCluster(),
				}
				tc.mut(&opt)

				legacy := opt
				legacy.StoreBits = -1
				want, err := Run(reads, legacy)
				if err != nil {
					t.Fatal(err)
				}
				stored := opt
				stored.StoreBits = 0
				got, err := Run(reads, stored)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Assignments, want.Assignments) {
					t.Fatal("store-backed clustering differs from the slice path")
				}
				if got.Counters["sigstore.resident_bytes"] != int64(len(reads)*opt.NumHashes*8) {
					t.Fatalf("sigstore.resident_bytes = %d, want %d",
						got.Counters["sigstore.resident_bytes"], len(reads)*opt.NumHashes*8)
				}
				if got.Counters["sigstore.reads"] != int64(len(reads)) {
					t.Fatalf("sigstore.reads = %d", got.Counters["sigstore.reads"])
				}
			})
		}
	}
}

// TestStoreBackedBitIdenticalUnderChaosAndSpill drives the store-backed
// default through fault injection and the external spill shuffle at once
// and requires bit-identity with the clean slice-path run.
func TestStoreBackedBitIdenticalUnderChaosAndSpill(t *testing.T) {
	reads, _ := makeReads(4, 6, 200, 0.01, 7)
	for _, mode := range []Mode{GreedyMode, HierarchicalMode} {
		t.Run(mode.String(), func(t *testing.T) {
			opt := Options{
				K: 8, NumHashes: 40, Theta: 0.4, Mode: mode,
				Seed: 7, Cluster: smallCluster(),
			}
			legacy := opt
			legacy.StoreBits = -1
			want, err := Run(reads, legacy)
			if err != nil {
				t.Fatal(err)
			}
			chaos := opt
			chaos.StoreBits = 0
			chaos.ShuffleBufferBytes = 256 // force record-at-a-time spills
			chaos.Retry = mapreduce.RetryPolicy{MaxAttempts: 4}
			plan := faults.ChaosPlan(11)
			plan.NodeDeaths = []faults.NodeDeath{{Node: 1, At: 20 * time.Second}}
			chaos.Faults = faults.MustNew(plan)
			got, err := Run(reads, chaos)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Assignments, want.Assignments) {
				t.Fatal("chaos + spill over the store changed the clustering")
			}
			if chaos.Faults.Injected() == 0 {
				t.Fatal("the chaos plan injected nothing")
			}
			// Only the greedy job shuffles signature records through a
			// reducer; the hierarchical path is map-only and never spills.
			if mode == GreedyMode && got.Counters[mapreduce.CounterShuffleSpills] == 0 {
				t.Fatal("expected external shuffle spills at a 256-byte buffer")
			}
		})
	}
}

// TestStoreBackedResumeInterop proves the sketch checkpoint of the
// full-width store is the legacy signature codec: a journal written by a
// slice-path run resumes under the store path bit-identically, and vice
// versa.
func TestStoreBackedResumeInterop(t *testing.T) {
	reads, _ := makeReads(3, 5, 180, 0.01, 3)
	base := Options{
		K: 8, NumHashes: 40, Theta: 0.4, Mode: GreedyMode,
		Seed: 3, Cluster: smallCluster(),
	}
	want, err := Run(reads, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		name           string
		first, resumed int
	}{
		{"legacy-then-store", -1, 0},
		{"store-then-legacy", 0, -1},
	} {
		t.Run(dir.name, func(t *testing.T) {
			tmp := t.TempDir()
			first := base
			first.StoreBits = dir.first
			first.Checkpoint = openJournal(t, tmp)
			first.Faults = faults.MustNew(faults.Plan{
				DriverCrashes: []faults.DriverCrash{{AfterStage: StageSketch}},
			})
			_, err := Run(reads, first)
			var dce *faults.DriverCrashError
			if !errors.As(err, &dce) {
				t.Fatalf("expected driver crash, got %v", err)
			}

			resumed := base
			resumed.StoreBits = dir.resumed
			resumed.Checkpoint = openJournal(t, tmp)
			resumed.Resume = ResumeOn
			res, err := Run(reads, resumed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Assignments, want.Assignments) {
				t.Fatal("cross-backing resume changed the clustering")
			}
			if !reflect.DeepEqual(res.SkippedStages, []string{StageSketch}) {
				t.Fatalf("skipped %v, want [sketch]", res.SkippedStages)
			}
		})
	}
}

// TestPackedStoreResume checks the packed sketch checkpoint (a store
// snapshot): a packed run resumes bit-identically from its own journal,
// and mixing packed and unpacked journals is a typed parameter mismatch.
func TestPackedStoreResume(t *testing.T) {
	reads, _ := makeReads(3, 5, 180, 0.01, 4)
	packed := Options{
		K: 8, NumHashes: 40, Theta: 0.4, Mode: GreedyMode,
		Seed: 4, Cluster: smallCluster(), StoreBits: 4,
	}
	want, err := Run(reads, packed)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := packed
	first.Checkpoint = openJournal(t, dir)
	first.Faults = faults.MustNew(faults.Plan{
		DriverCrashes: []faults.DriverCrash{{AfterStage: StageSketch}},
	})
	if _, err := Run(reads, first); err == nil {
		t.Fatal("expected driver crash")
	}

	resumed := packed
	resumed.Checkpoint = openJournal(t, dir)
	resumed.Resume = ResumeOn
	res, err := Run(reads, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assignments, want.Assignments) {
		t.Fatal("packed resume changed the clustering")
	}
	if !reflect.DeepEqual(res.SkippedStages, []string{StageSketch}) {
		t.Fatalf("skipped %v", res.SkippedStages)
	}

	// A full-width run against the packed journal must fail typed, not
	// misparse the snapshot as the signature codec.
	mixed := packed
	mixed.StoreBits = 0
	mixed.Checkpoint = openJournal(t, dir)
	mixed.Resume = ResumeOn
	var pme *checkpoint.ParamMismatchError
	if _, err := Run(reads, mixed); !errors.As(err, &pme) {
		t.Fatalf("expected ParamMismatchError, got %v", err)
	}
}

// TestPackedPipelineRecoversGroups is the packed-mode sanity check: b=4
// estimation is lossy, but on well-separated read groups it must recover
// the same partition as the exact full-width run.
func TestPackedPipelineRecoversGroups(t *testing.T) {
	reads, truth := makeReads(4, 6, 200, 0.01, 6)
	for _, bits := range []int{1, 4} {
		t.Run(fmt.Sprintf("b=%d", bits), func(t *testing.T) {
			opt := Options{
				K: 8, NumHashes: 64, Theta: 0.4, Mode: GreedyMode,
				Seed: 6, Cluster: smallCluster(), StoreBits: bits,
			}
			res, err := Run(reads, opt)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := metrics.WeightedAccuracy(res.Assignments, truth)
			if err != nil {
				t.Fatal(err)
			}
			if acc < 99.9 {
				t.Fatalf("b=%d packed clustering accuracy %.2f%%", bits, acc)
			}
			if res.NumClusters() != 4 {
				t.Fatalf("b=%d: %d clusters, want 4", bits, res.NumClusters())
			}
			// Packed mode reports the compressed footprint.
			fullBytes := int64(len(reads) * opt.NumHashes * 8)
			if got := res.Counters["sigstore.resident_bytes"]; got*8 > fullBytes {
				t.Fatalf("packed resident bytes %d not ≥8x below full %d", got, fullBytes)
			}
		})
	}
}
