package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/cluster"
)

// scaleOptions is the shared configuration of the scaling benchmarks: a
// short signature keeps the per-comparison cost low so the *number* of
// comparisons — the quantity the LSH stage attacks — dominates the
// measurement. The explicit 4×6 geometry keeps band-collision recall at
// θ=0.9 high (1-(1-0.9⁶)⁴ ≈ 0.95) without needing 100 hashes.
func scaleOptions() Options {
	return Options{
		K:         8,
		NumHashes: 24,
		Theta:     0.9,
		Mode:      GreedyMode,
		Cluster:   smallCluster(),
	}
}

// lshScaleGeometry is the 24-slot banding used by the scale benchmarks
// and the million-read run (see scaleOptions for the recall math).
var lshScaleGeometry = cluster.LSHOptions{Bands: 4, Rows: 6}

// The benchmark datasets are built in groups of 10 near-duplicates: the
// group count — and with it the number of clusters — grows linearly with
// N, the regime where exact greedy degenerates to Θ(N²/20) representative
// scans (every read is compared against every preceding cluster) while
// the LSH path only ever verifies bucket collisions.

// BenchmarkClusterExactScale measures the exact all-pairs greedy pipeline
// at growing read counts. Together with BenchmarkClusterLSHCCScale this
// feeds BENCH_lsh.json: quadrupling N should roughly 16× the exact path
// but stay well under 8× for the LSH path.
func BenchmarkClusterExactScale(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			reads, _ := makeReads(n/10, 10, 100, 0.004, 1)
			opt := scaleOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(reads, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterLSHCCScale measures the sub-quadratic path — banded
// candidate generation, θ-verification, logarithmic-round connected
// components, per-component clustering — one size further than the exact
// benchmark can afford.
func BenchmarkClusterLSHCCScale(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			reads, _ := makeReads(n/10, 10, 100, 0.004, 1)
			opt := scaleOptions()
			opt.Candidate = CandidateLSH
			opt.LSH = lshScaleGeometry
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(reads, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Counters["lsh.candidate_pairs"]), "cand-pairs")
				}
			}
		})
	}
}

// TestClusterLSHCCMillionReads is the end-to-end scale run of ISSUE 7:
// one million synthetic reads (100k clusters of 10 near-duplicates)
// through the full LSH+CC pipeline with the external spill-and-merge
// shuffle enabled. It takes minutes and real memory, so it only runs when
// explicitly requested:
//
//	LSH_1M=1 go test -run ClusterLSHCCMillionReads -timeout 60m ./internal/core/
//
// The run goes through the sharded signature store (the StoreBits zero
// value); LSH_1M_STORE_BITS selects b-bit packing (e.g. 4) so the
// nightly can exercise the compressed arena at scale.
func TestClusterLSHCCMillionReads(t *testing.T) {
	if os.Getenv("LSH_1M") == "" {
		t.Skip("set LSH_1M=1 to run the million-read end-to-end test")
	}
	const groups, members = 100_000, 10
	reads, _ := makeReads(groups, members, 100, 0.002, 7)
	opt := scaleOptions()
	opt.Candidate = CandidateLSH
	opt.LSH = lshScaleGeometry
	opt.ShuffleBufferBytes = 4 << 20 // force the external shuffle end-to-end
	if s := os.Getenv("LSH_1M_STORE_BITS"); s != "" {
		bits, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("LSH_1M_STORE_BITS=%q: %v", s, err)
		}
		opt.StoreBits = bits
	}
	res, err := Run(reads, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Assignments.NumClusters()
	t.Logf("1M reads -> %d clusters in %v (modelled %v, %d jobs)", n, res.Real, res.Virtual, res.Jobs)
	t.Logf("counters: pairs=%d edges=%d cc.rounds=%d spills=%d",
		res.Counters["lsh.candidate_pairs"], res.Counters["lsh.edges"],
		res.Counters["cc.rounds"], res.Counters["shuffle.spills"])
	t.Logf("sigstore: %d reads, %d resident signature bytes (b=%d)",
		res.Counters["sigstore.reads"], res.Counters["sigstore.resident_bytes"], opt.StoreBits)
	// The grouping is generous (near-duplicate members, θ=0.9): the
	// cluster count must land near the planted 100k, not at 1M singletons
	// (no candidates found) nor collapse toward a handful (bucket soup).
	if n < groups/2 || n > groups*3 {
		t.Fatalf("got %d clusters for %d planted groups", n, groups)
	}
	if res.Counters["shuffle.spills"] == 0 {
		t.Fatal("external shuffle produced no spills at 1M reads")
	}
}
