package ingest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func drain(t *testing.T, src Source) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := src.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestFileSourceFasta(t *testing.T) {
	path := writeFile(t, "reads.fa", ">r1 desc\nACGTACGT\nACGT\n>r2\nTTTTCCCC\n")
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	recs := drain(t, src)
	if len(recs) != 2 || recs[0].ID != "r1" || recs[1].ID != "r2" {
		t.Fatalf("records = %+v", recs)
	}
	if string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Fatalf("multi-line seq = %q", recs[0].Seq)
	}
}

func TestFileSourceFastq(t *testing.T) {
	path := writeFile(t, "reads.fq", "@q1\nACGT\n+\nIIII\n@q2\nGGCC\n+\nIIII\n")
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	recs := drain(t, src)
	if len(recs) != 2 || recs[0].ID != "q1" || string(recs[1].Seq) != "GGCC" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestFileSourceRejectsJunk(t *testing.T) {
	path := writeFile(t, "junk.bin", "\x00\x01\x02")
	if _, err := OpenFile(path); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.fa")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHTTPSourceStreams(t *testing.T) {
	body := ">h1\nACGTACGT\n>h2\nCCCCGGGG\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()
	src := OpenHTTP(srv.URL, srv.Client())
	defer src.Close()
	recs := drain(t, src)
	if len(recs) != 2 || recs[0].ID != "h1" || recs[1].ID != "h2" {
		t.Fatalf("records = %+v", recs)
	}
}

// TestHTTPSourceReconnectResumes: the server tears the connection after
// a few records; the retried Next reconnects and the stream resumes
// without duplicating or dropping reads.
func TestHTTPSourceReconnectResumes(t *testing.T) {
	const n = 12
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, ">rec%02d\n%s\n", i, synthSeq(i, 60))
	}
	full := sb.String()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First connection: send ~a third of the stream, then tear it
			// mid-record by hijacking and closing the socket.
			io.WriteString(w, full[:len(full)/3])
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			return
		}
		io.WriteString(w, full)
	}))
	defer srv.Close()

	src := OpenHTTP(srv.URL, srv.Client())
	defer src.Close()
	var recs []Record
	var transientErrs int
	for {
		rec, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			transientErrs++
			if transientErrs > 5 {
				t.Fatalf("too many transient errors, last: %v", err)
			}
			continue // what the Ingester's retry loop does
		}
		recs = append(recs, rec)
	}
	if transientErrs == 0 {
		t.Fatal("test did not exercise a torn connection")
	}
	if len(recs) != n {
		t.Fatalf("resumed stream delivered %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("rec%02d", i); rec.ID != want {
			t.Fatalf("record %d: got %q, want %q (duplicate or drop across reconnect)", i, rec.ID, want)
		}
	}
	if calls.Load() < 2 {
		t.Fatal("server saw only one connection")
	}
}

func TestHTTPSourceNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	src := OpenHTTP(srv.URL, srv.Client())
	defer src.Close()
	if _, err := src.Next(context.Background()); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want transport error", err)
	}
}
