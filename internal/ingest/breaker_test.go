package ingest

import (
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clk.now})
	if b.Blocked() != 0 {
		t.Fatal("fresh breaker blocked")
	}
	if b.Failure() || b.Failure() {
		t.Fatal("tripped below threshold")
	}
	if !b.Failure() {
		t.Fatal("did not trip at threshold")
	}
	if got := b.Blocked(); got != time.Second {
		t.Fatalf("Blocked() = %v, want full cooldown", got)
	}
	clk.advance(600 * time.Millisecond)
	if got := b.Blocked(); got != 400*time.Millisecond {
		t.Fatalf("Blocked() = %v, want 400ms", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	b.Failure() // opens
	clk.advance(time.Second)
	if b.Blocked() != 0 {
		t.Fatal("cooldown elapsed but still blocked (half-open probe denied)")
	}
	// Probe fails: cooldown restarts immediately.
	if !b.Failure() {
		t.Fatal("failed probe did not report a trip")
	}
	if b.Blocked() != time.Second {
		t.Fatalf("failed probe did not restart cooldown: %v", b.Blocked())
	}
	// Next probe succeeds: circuit closes.
	clk.advance(time.Second)
	if b.Blocked() != 0 {
		t.Fatal("second probe denied")
	}
	b.Success()
	if b.Blocked() != 0 {
		t.Fatal("closed breaker blocked")
	}
	// After closing, failures count from zero again.
	if b.Failure() {
		t.Fatal("single failure after close tripped a threshold-2 breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	if b != nil {
		t.Fatal("Threshold<0 should return a nil (disabled) breaker")
	}
	// nil-safe methods
	if b.Blocked() != 0 || b.Failure() {
		t.Fatal("nil breaker not inert")
	}
	b.Success()
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.Threshold != 5 || cfg.Cooldown != 2*time.Second || cfg.Now == nil {
		t.Fatalf("defaults = %+v", cfg)
	}
}
