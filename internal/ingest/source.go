package ingest

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// seqStream abstracts the two on-disk formats behind one Next call.
type seqStream interface {
	next() (Record, error)
}

type fastaStream struct{ r *fasta.Reader }

func (s fastaStream) next() (Record, error) {
	rec, err := s.r.Next()
	if err != nil {
		return Record{}, err
	}
	return Record{ID: rec.ID, Seq: rec.Seq}, nil
}

type fastqStream struct{ r *fasta.FastqReader }

func (s fastqStream) next() (Record, error) {
	rec, err := s.r.Next()
	if err != nil {
		return Record{}, err
	}
	return Record{ID: rec.ID, Seq: rec.Seq}, nil
}

// sniffStream dispatches on the leading byte ('>' FASTA, '@' FASTQ),
// the same convention as fasta.ReadSequencesFile, but streaming: records
// are decoded one Next at a time instead of loaded wholesale.
func sniffStream(r io.Reader, name string) (seqStream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("ingest: %s is empty", name)
	}
	switch first[0] {
	case '@':
		return fastqStream{fasta.NewFastqReader(br)}, nil
	case '>', ';', '\r', '\n', ' ', '\t':
		return fastaStream{fasta.NewReader(br)}, nil
	default:
		return nil, fmt.Errorf("ingest: %s does not look like FASTA or FASTQ", name)
	}
}

// FileSource streams reads from a FASTA or FASTQ file without loading
// it into memory.
type FileSource struct {
	f      *os.File
	stream seqStream
}

// OpenFile opens path and sniffs its format from the first byte.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	stream, err := sniffStream(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, stream: stream}, nil
}

// Next returns the next record or io.EOF.
func (s *FileSource) Next(ctx context.Context) (Record, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, err
	}
	return s.stream.next()
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// HTTPSource streams reads from a remote FASTA/FASTQ endpoint. A broken
// connection surfaces as a transient error from Next; the next call
// reconnects and skips the records already delivered, so the Ingester's
// retry loop resumes exactly where the stream tore.
type HTTPSource struct {
	url    string
	client *http.Client

	body      io.ReadCloser
	stream    seqStream
	delivered int64 // records handed out across all connections
}

// OpenHTTP prepares a source for url; the first connection is made
// lazily on Next. client may be nil for http.DefaultClient.
func OpenHTTP(url string, client *http.Client) *HTTPSource {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPSource{url: url, client: client}
}

func (s *HTTPSource) connect(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url, nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("ingest: GET %s: %s", s.url, resp.Status)
	}
	stream, err := sniffStream(resp.Body, s.url)
	if err != nil {
		resp.Body.Close()
		return err
	}
	// Skip past the records a previous connection already delivered. The
	// endpoint must serve a stable prefix (same records in the same
	// order), which holds for static files and append-only feeds.
	for skipped := int64(0); skipped < s.delivered; skipped++ {
		if _, err := stream.next(); err != nil {
			resp.Body.Close()
			return fmt.Errorf("ingest: reconnect skip %d/%d: %w", skipped, s.delivered, err)
		}
	}
	s.body, s.stream = resp.Body, stream
	return nil
}

// Next returns the next record, reconnecting if the previous connection
// failed. Connection and mid-stream errors are transient: the caller's
// retry loop calls Next again and resumes from the tear point.
func (s *HTTPSource) Next(ctx context.Context) (Record, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, err
	}
	if s.stream == nil {
		if err := s.connect(ctx); err != nil {
			return Record{}, err
		}
	}
	rec, err := s.stream.next()
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		// Drop the torn connection; the retried Next reconnects.
		s.body.Close()
		s.body, s.stream = nil, nil
		return Record{}, err
	}
	s.delivered++
	return rec, nil
}

// Close releases any live connection.
func (s *HTTPSource) Close() error {
	if s.body != nil {
		err := s.body.Close()
		s.body, s.stream = nil, nil
		return err
	}
	return nil
}

// ChanSource adapts in-process producers (the HTTP submit handler) to
// the Source seam. Push blocks while the Ingester's queues are full —
// the same backpressure the pull sources get for free.
type ChanSource struct {
	ch       chan Record
	closing  chan struct{}
	finished sync.Once
}

// NewChanSource returns a source whose records arrive via Push. buffer
// bounds the hand-off queue.
func NewChanSource(buffer int) *ChanSource {
	if buffer < 0 {
		buffer = 0
	}
	return &ChanSource{ch: make(chan Record, buffer), closing: make(chan struct{})}
}

// Push enqueues one record, blocking until the consumer has room. It
// fails once Finish or Close has been called.
func (s *ChanSource) Push(ctx context.Context, rec Record) error {
	select {
	case <-s.closing:
		return fmt.Errorf("ingest: push on finished source")
	default:
	}
	select {
	case s.ch <- rec:
		return nil
	case <-s.closing:
		return fmt.Errorf("ingest: push on finished source")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Finish marks the end of input; pending pushes drain, then Next
// reports io.EOF.
func (s *ChanSource) Finish() {
	s.finished.Do(func() { close(s.closing) })
}

// Next returns the next pushed record, io.EOF after Finish drains.
func (s *ChanSource) Next(ctx context.Context) (Record, error) {
	select {
	case rec := <-s.ch:
		return rec, nil
	default:
	}
	select {
	case rec := <-s.ch:
		return rec, nil
	case <-s.closing:
		// Drain anything racing with Finish.
		select {
		case rec := <-s.ch:
			return rec, nil
		default:
			return Record{}, io.EOF
		}
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
}

// Close is Finish.
func (s *ChanSource) Close() error { s.Finish(); return nil }
