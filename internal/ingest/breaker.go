package ingest

import "time"

// BreakerConfig tunes the consecutive-failure circuit breaker guarding
// a source. Zero values take defaults; Threshold < 0 disables it.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed through (default 2s).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a closed → open → half-open circuit breaker. It is not
// goroutine-safe: the Ingester drives it from its single reader
// goroutine.
type Breaker struct {
	cfg      BreakerConfig
	failures int
	openedAt time.Time
	open     bool
}

// NewBreaker builds a breaker; nil-safe methods mean callers never
// branch on "breaker disabled".
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	if cfg.Threshold < 0 {
		return nil
	}
	return &Breaker{cfg: cfg}
}

// Blocked reports how much longer the circuit stays open; 0 means a
// call may proceed (closed, or half-open probe).
func (b *Breaker) Blocked() time.Duration {
	if b == nil || !b.open {
		return 0
	}
	remaining := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if remaining <= 0 {
		return 0 // half-open: let one probe through
	}
	return remaining
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.failures = 0
	b.open = false
}

// Failure records a failed call; it returns true when this failure
// trips the circuit open (including a failed half-open probe, which
// restarts the cooldown).
func (b *Breaker) Failure() bool {
	if b == nil {
		return false
	}
	if b.open {
		// Failed half-open probe: restart the cooldown.
		b.openedAt = b.cfg.Now()
		return true
	}
	b.failures++
	if b.failures >= b.cfg.Threshold {
		b.open = true
		b.openedAt = b.cfg.Now()
		return true
	}
	return false
}
