// Package ingest streams sequence reads into the always-on clustering
// service. A pluggable Source (pdk-style: file, HTTP, channel) feeds an
// Ingester that batches records, sketches them on a concurrent worker
// pool, and hands the batches — in arrival order — to a Sink (the
// serving state). Every queue between the stages is bounded, so a slow
// sink applies backpressure all the way to the source instead of growing
// memory without bound; source failures retry with capped exponential
// backoff and deterministic seeded jitter (faults.Backoff), and a
// circuit breaker pauses intake after a streak of consecutive failures.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// Record is one sequence read entering the service.
type Record struct {
	ID  string
	Seq []byte
}

// Source is the pluggable intake seam. Next returns the next record or
// io.EOF when the source is drained; any other error is treated as
// transient and retried by the Ingester (until its retry budget or the
// circuit breaker gives up). Implementations need not be safe for
// concurrent Next calls — the Ingester reads from a single goroutine.
type Source interface {
	Next(ctx context.Context) (Record, error)
	Close() error
}

// Sketched is a read with its minwise signature computed, the unit the
// Ingester commits. Sequences are not retained: the serving state stores
// signatures only.
type Sketched struct {
	ID  string
	Sig minhash.Signature
}

// Sink receives sketched batches in arrival order. Commit must be safe
// to call from the Ingester's sequencer goroutine; it is never called
// concurrently with itself. A Commit error aborts the ingest run.
type Sink interface {
	Commit(ctx context.Context, batch []Sketched) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(ctx context.Context, batch []Sketched) error

// Commit calls f.
func (f SinkFunc) Commit(ctx context.Context, batch []Sketched) error { return f(ctx, batch) }

// Retry governs transient-failure handling of Source.Next calls.
type Retry struct {
	// MaxAttempts is the consecutive-failure budget for one record
	// (including the first try; default 4). Exhausting it aborts the
	// ingest run.
	MaxAttempts int
	// Base is the first retry delay (default 50ms); each further retry
	// multiplies it by Factor (default 2) up to Max (default 5s).
	Base   time.Duration
	Factor float64
	Max    time.Duration
	// Seed drives the deterministic jitter added to every delay
	// (faults.Jitter), so chaos runs sleep reproducible intervals.
	Seed int64
}

func (r Retry) withDefaults() Retry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.Base <= 0 {
		r.Base = 50 * time.Millisecond
	}
	if r.Factor < 1 {
		r.Factor = 2
	}
	if r.Max <= 0 {
		r.Max = 5 * time.Second
	}
	return r
}

// Config sizes an Ingester.
type Config struct {
	// K and NumHashes fix the sketch geometry; Seed the hash family;
	// Canonical folds reverse-complement k-mers.
	K         int
	NumHashes int
	Seed      int64
	Canonical bool
	// Workers is the sketch worker-pool size (default GOMAXPROCS, capped
	// at 8 — sketching saturates memory bandwidth before that).
	Workers int
	// BatchSize is the records per committed batch (default 64).
	BatchSize int
	// QueueDepth bounds the raw and sketched batch queues (default 4
	// batches each). Total buffered records are therefore at most
	// 2*QueueDepth*BatchSize + Workers*BatchSize — the memory bound that
	// turns a slow sink into source backpressure.
	QueueDepth int
	// Retry is the transient source-failure policy.
	Retry Retry
	// Breaker is the consecutive-failure circuit breaker; zero values
	// take defaults. Disable by setting Threshold < 0.
	Breaker BreakerConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Stats counts one ingest run. Snapshot values; read after Run returns
// or via Ingester.Stats during the run.
type Stats struct {
	Records      int64 // records read from the source
	Batches      int64 // batches committed to the sink
	SourceErrors int64 // transient Next failures observed
	Retries      int64 // retried Next calls (after backoff)
	BreakerOpens int64 // times the circuit breaker tripped open
}

// Ingester runs the source → sketch → commit pipeline.
type Ingester struct {
	cfg      Config
	sketcher *minhash.Sketcher

	records      atomic.Int64
	batches      atomic.Int64
	sourceErrors atomic.Int64
	retries      atomic.Int64
	breakerOpens atomic.Int64
}

// New validates the sketch geometry and returns an Ingester.
func New(cfg Config) (*Ingester, error) {
	cfg = cfg.withDefaults()
	sk, err := minhash.NewSketcher(cfg.NumHashes, cfg.K, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return &Ingester{cfg: cfg, sketcher: sk}, nil
}

// Stats snapshots the run counters.
func (in *Ingester) Stats() Stats {
	return Stats{
		Records:      in.records.Load(),
		Batches:      in.batches.Load(),
		SourceErrors: in.sourceErrors.Load(),
		Retries:      in.retries.Load(),
		BreakerOpens: in.breakerOpens.Load(),
	}
}

// numbered pairs a batch with its arrival sequence number so the
// sequencer can restore commit order after the parallel sketch stage.
type numbered struct {
	seq  int64
	recs []Record
	out  []Sketched
}

// Run drains src through the pipeline into sink. It returns when the
// source reports io.EOF and every read has been committed, or on the
// first non-recoverable error (context cancellation, retry budget
// exhausted, sink failure). The source is always closed.
func (in *Ingester) Run(ctx context.Context, src Source, sink Sink) error {
	defer src.Close()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	cfg := in.cfg
	rawCh := make(chan numbered, cfg.QueueDepth)
	doneCh := make(chan numbered, cfg.QueueDepth)

	var (
		readErr error          // reader's terminal error
		sinkErr error          // sequencer's terminal error
		wg      sync.WaitGroup // sketch workers
	)

	// Reader: single goroutine pulling the source with retry + breaker,
	// batching records, applying backpressure via the bounded rawCh.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		defer close(rawCh)
		readErr = in.read(ctx, src, rawCh)
	}()

	// Sketch workers: parallel, order-oblivious.
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			ex := &kmer.Extractor{K: cfg.K, Canonical: cfg.Canonical}
			var kms []uint64
			for nb := range rawCh {
				nb.out = make([]Sketched, len(nb.recs))
				for i, rec := range nb.recs {
					kms = ex.SliceInto(kms[:0], rec.Seq)
					nb.out[i] = Sketched{ID: rec.ID, Sig: in.sketcher.SketchInto(nil, kms)}
				}
				nb.recs = nil
				select {
				case doneCh <- nb:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Sequencer: restores arrival order and commits.
	pending := make(map[int64]numbered)
	var next int64
	for nb := range doneCh {
		pending[nb.seq] = nb
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := sink.Commit(ctx, b.out); err != nil {
				sinkErr = err
				cancel() // unblocks reader and workers
				break
			}
			in.batches.Add(1)
		}
		if sinkErr != nil {
			break
		}
	}
	// Drain any straggler batches so the workers can exit.
	for range doneCh {
	}
	<-readDone
	wg.Wait()

	switch {
	case sinkErr != nil:
		return fmt.Errorf("ingest: sink: %w", sinkErr)
	case readErr != nil:
		return readErr
	case ctx.Err() != nil:
		return ctx.Err()
	}
	return nil
}

// read pulls records from src until EOF, batching into rawCh. Transient
// errors retry with capped exponential backoff + seeded jitter; a streak
// of consecutive failures trips the circuit breaker, which pauses
// intake for its cooldown before probing again.
func (in *Ingester) read(ctx context.Context, src Source, rawCh chan<- numbered) error {
	cfg := in.cfg
	br := NewBreaker(cfg.Breaker)
	var (
		batch []Record
		seq   int64
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		nb := numbered{seq: seq, recs: batch}
		seq++
		batch = nil
		select {
		case rawCh <- nb: // backpressure: blocks while the queue is full
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	attempt := 0
	for {
		if wait := br.Blocked(); wait > 0 {
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
		}
		rec, err := src.Next(ctx)
		switch {
		case err == nil:
			br.Success()
			attempt = 0
			in.records.Add(1)
			batch = append(batch, rec)
			if len(batch) >= cfg.BatchSize {
				if err := flush(); err != nil {
					return err
				}
			}
		case errors.Is(err, io.EOF):
			return flush()
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			in.sourceErrors.Add(1)
			attempt++
			if br.Failure() {
				in.breakerOpens.Add(1)
			}
			if attempt >= cfg.Retry.MaxAttempts {
				return fmt.Errorf("ingest: source failed %d consecutive times: %w", attempt, err)
			}
			in.retries.Add(1)
			delay := faults.Backoff(cfg.Retry.Seed, "ingest/source", attempt,
				cfg.Retry.Base, cfg.Retry.Factor, cfg.Retry.Max)
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
		}
	}
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
