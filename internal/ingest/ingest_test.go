package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/kmer"
	"github.com/metagenomics/mrmcminh/internal/minhash"
)

// synthSeq builds a deterministic DNA string distinct per index.
func synthSeq(i, length int) []byte {
	const bases = "ACGT"
	seq := make([]byte, length)
	state := uint64(i)*2654435761 + 1
	for j := range seq {
		state = state*6364136223846793005 + 1442695040888963407
		seq[j] = bases[(state>>33)%4]
	}
	return seq
}

// sliceSource serves a fixed record list, optionally failing Next at
// scripted call numbers (1-based).
type sliceSource struct {
	recs    []Record
	i       int
	call    int
	failOn  map[int]bool
	closed  bool
	failErr error
}

func (s *sliceSource) Next(ctx context.Context) (Record, error) {
	s.call++
	if s.failOn[s.call] {
		if s.failErr == nil {
			s.failErr = errors.New("scripted failure")
		}
		return Record{}, s.failErr
	}
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	rec := s.recs[s.i]
	s.i++
	return rec, nil
}

func (s *sliceSource) Close() error { s.closed = true; return nil }

// collectSink accumulates committed batches.
type collectSink struct {
	mu      sync.Mutex
	batches [][]Sketched
}

func (c *collectSink) Commit(_ context.Context, batch []Sketched) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]Sketched, len(batch))
	copy(cp, batch)
	c.batches = append(c.batches, cp)
	return nil
}

func (c *collectSink) all() []Sketched {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Sketched
	for _, b := range c.batches {
		out = append(out, b...)
	}
	return out
}

func testConfig() Config {
	return Config{
		K:         8,
		NumHashes: 32,
		Seed:      7,
		Canonical: true,
		Workers:   4,
		BatchSize: 8,
		Retry:     Retry{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
}

func makeRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{ID: fmt.Sprintf("read-%04d", i), Seq: synthSeq(i, 120)}
	}
	return recs
}

// TestRunOrderedAndCorrect pins the two core invariants: every record
// is committed exactly once IN SOURCE ORDER despite the parallel sketch
// stage, and each signature matches a direct single-threaded sketch.
func TestRunOrderedAndCorrect(t *testing.T) {
	recs := makeRecords(103) // deliberately not a batch multiple
	src := &sliceSource{recs: recs}
	sink := &collectSink{}
	ing, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Run(context.Background(), src, sink); err != nil {
		t.Fatal(err)
	}
	if !src.closed {
		t.Fatal("source not closed")
	}
	got := sink.all()
	if len(got) != len(recs) {
		t.Fatalf("committed %d records, want %d", len(got), len(recs))
	}
	cfg := testConfig()
	sk, err := minhash.NewSketcher(cfg.NumHashes, cfg.K, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ex := &kmer.Extractor{K: cfg.K, Canonical: cfg.Canonical}
	for i, s := range got {
		if s.ID != recs[i].ID {
			t.Fatalf("position %d: got %q, want %q (order broken)", i, s.ID, recs[i].ID)
		}
		want := sk.SketchInto(nil, ex.Slice(recs[i].Seq))
		if len(s.Sig) != len(want) {
			t.Fatalf("%s: signature length %d, want %d", s.ID, len(s.Sig), len(want))
		}
		for j := range want {
			if s.Sig[j] != want[j] {
				t.Fatalf("%s: signature word %d differs", s.ID, j)
			}
		}
	}
	st := ing.Stats()
	if st.Records != int64(len(recs)) {
		t.Fatalf("Stats.Records = %d, want %d", st.Records, len(recs))
	}
	if st.Batches != int64(len(sink.batches)) {
		t.Fatalf("Stats.Batches = %d, want %d", st.Batches, len(sink.batches))
	}
}

// TestRunRetriesTransientErrors: scripted failures below the budget are
// retried (with deterministic backoff) and the run still delivers all
// records in order.
func TestRunRetriesTransientErrors(t *testing.T) {
	recs := makeRecords(20)
	src := &sliceSource{recs: recs, failOn: map[int]bool{3: true, 7: true, 8: true}}
	sink := &collectSink{}
	ing, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Run(context.Background(), src, sink); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	if len(got) != len(recs) {
		t.Fatalf("committed %d, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].ID != recs[i].ID {
			t.Fatalf("order broken at %d", i)
		}
	}
	st := ing.Stats()
	if st.SourceErrors != 3 || st.Retries != 3 {
		t.Fatalf("stats = %+v, want 3 errors / 3 retries", st)
	}
}

// TestRunGivesUpAfterMaxAttempts: a persistent failure exhausts the
// consecutive-retry budget and surfaces the source error.
func TestRunGivesUpAfterMaxAttempts(t *testing.T) {
	persistent := errors.New("disk on fire")
	src := &sliceSource{
		recs:    makeRecords(4),
		failOn:  map[int]bool{2: true, 3: true, 4: true, 5: true, 6: true, 7: true},
		failErr: persistent,
	}
	cfg := testConfig()
	cfg.Retry.MaxAttempts = 3
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = ing.Run(context.Background(), src, &collectSink{})
	if !errors.Is(err, persistent) {
		t.Fatalf("err = %v, want wrapped %v", err, persistent)
	}
	if !src.closed {
		t.Fatal("source not closed on failure")
	}
}

// TestRunSinkErrorAborts: a sink failure cancels the pipeline promptly
// and is reported.
func TestRunSinkErrorAborts(t *testing.T) {
	boom := errors.New("sink full")
	var n int
	sink := SinkFunc(func(ctx context.Context, batch []Sketched) error {
		n++
		if n >= 2 {
			return boom
		}
		return nil
	})
	src := &sliceSource{recs: makeRecords(200)}
	ing, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ing.Run(context.Background(), src, sink) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after sink error")
	}
}

// TestRunContextCancel: cancelling mid-run unblocks every stage.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	slow := SinkFunc(func(ctx context.Context, batch []Sketched) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	})
	src := &sliceSource{recs: makeRecords(500)}
	ing, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ing.Run(ctx, src, slow) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from a cancelled run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after cancel")
	}
}

// TestChanSourcePushDrain: records pushed before Finish all come out,
// then io.EOF; pushes after Finish fail.
func TestChanSourcePushDrain(t *testing.T) {
	s := NewChanSource(4)
	ctx := context.Background()
	go func() {
		for i := 0; i < 10; i++ {
			if err := s.Push(ctx, Record{ID: fmt.Sprintf("r%d", i)}); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
		s.Finish()
	}()
	var got int
	for {
		rec, err := s.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.ID != fmt.Sprintf("r%d", got) {
			t.Fatalf("record %d: got %q", got, rec.ID)
		}
		got++
	}
	if got != 10 {
		t.Fatalf("drained %d records, want 10", got)
	}
	if err := s.Push(ctx, Record{ID: "late"}); err == nil {
		t.Fatal("push after Finish succeeded")
	}
}

// TestChanSourceThroughIngester: end-to-end via the ingester with a
// concurrent producer — the realistic serving path.
func TestChanSourceThroughIngester(t *testing.T) {
	recs := makeRecords(64)
	s := NewChanSource(2)
	go func() {
		for _, r := range recs {
			if err := s.Push(context.Background(), r); err != nil {
				t.Error(err)
				return
			}
		}
		s.Finish()
	}()
	sink := &collectSink{}
	ing, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Run(context.Background(), s, sink); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	if len(got) != len(recs) {
		t.Fatalf("committed %d, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].ID != recs[i].ID {
			t.Fatalf("order broken at %d: %q", i, got[i].ID)
		}
	}
}
