// Package chimera simulates and detects PCR chimeras — artefact reads
// spliced from two parent templates during amplification. Chimeras are
// the classic cause of spurious OTUs in 16S studies (the OTU-inflation
// literature the paper's Table IV sits in), and UCHIME-style detection is
// the standard counter: a read whose prefix matches one abundant
// reference and whose suffix matches a different one, with both partial
// matches beating its best full-length match, is flagged.
package chimera

import (
	"fmt"
	"math/rand"

	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/kmer"
)

// Simulate splices chimeric reads from random pairs of parent sequences:
// a breakpoint is drawn in the middle third, the left part comes from one
// parent and the right part from another. Returns the chimeras and the
// parent index pairs.
func Simulate(parents []fasta.Record, count int, seed int64) ([]fasta.Record, [][2]int, error) {
	if len(parents) < 2 {
		return nil, nil, fmt.Errorf("chimera: need at least two parents, got %d", len(parents))
	}
	if count < 0 {
		return nil, nil, fmt.Errorf("chimera: negative count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	reads := make([]fasta.Record, 0, count)
	pairs := make([][2]int, 0, count)
	for i := 0; i < count; i++ {
		a := rng.Intn(len(parents))
		b := rng.Intn(len(parents) - 1)
		if b >= a {
			b++
		}
		pa, pb := parents[a].Seq, parents[b].Seq
		n := len(pa)
		if len(pb) < n {
			n = len(pb)
		}
		if n < 6 {
			return nil, nil, fmt.Errorf("chimera: parents too short (%d bp)", n)
		}
		// Breakpoint in the middle third keeps both segments detectable.
		bp := n/3 + rng.Intn(n/3)
		seq := append(append([]byte{}, pa[:bp]...), pb[bp:n]...)
		reads = append(reads, fasta.Record{
			ID:          fmt.Sprintf("chimera_%04d", i),
			Description: fmt.Sprintf("parents=%s+%s bp=%d", parents[a].ID, parents[b].ID, bp),
			Seq:         seq,
		})
		pairs = append(pairs, [2]int{a, b})
	}
	return reads, pairs, nil
}

// DetectorOptions tunes detection.
type DetectorOptions struct {
	// K is the k-mer size for segment matching.
	K int
	// MinSegment is the minimum fraction of a read on each side of the
	// candidate breakpoint (rejects trivial splits).
	MinSegment float64
	// Gain is how much better the two-parent explanation must be than the
	// best single parent before flagging (UCHIME's score margin).
	Gain float64
}

// withDefaults fills zero values.
func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.K == 0 {
		o.K = 10
	}
	if o.MinSegment == 0 {
		o.MinSegment = 0.2
	}
	if o.Gain == 0 {
		o.Gain = 0.15
	}
	return o
}

// Detector checks reads against reference (parent candidate) sequences.
type Detector struct {
	opt  DetectorOptions
	ex   *kmer.Extractor
	refs []fasta.Record
	sets []kmer.Set
}

// NewDetector indexes the references (typically cluster representatives
// or consensus sequences, ordered by abundance).
func NewDetector(refs []fasta.Record, opt DetectorOptions) (*Detector, error) {
	opt = opt.withDefaults()
	if opt.K < 1 || opt.K > kmer.MaxK {
		return nil, fmt.Errorf("chimera: k=%d out of range", opt.K)
	}
	if opt.MinSegment <= 0 || opt.MinSegment >= 0.5 {
		return nil, fmt.Errorf("chimera: MinSegment %v out of (0,0.5)", opt.MinSegment)
	}
	if len(refs) < 2 {
		return nil, fmt.Errorf("chimera: need at least two references")
	}
	d := &Detector{opt: opt, ex: kmer.MustExtractor(opt.K), refs: refs}
	for _, r := range refs {
		d.sets = append(d.sets, d.ex.Set(r.Seq))
	}
	return d, nil
}

// Verdict is one detection outcome.
type Verdict struct {
	// Chimeric is the call.
	Chimeric bool
	// ParentA and ParentB index the best left/right parents when chimeric.
	ParentA, ParentB int
	// Breakpoint is the approximate split position in the read.
	Breakpoint int
	// Score is the two-parent coverage minus the best single-parent
	// coverage (fraction of read k-mers explained).
	Score float64
}

// Check classifies one read. The algorithm walks candidate breakpoints at
// k-mer resolution: for each, the best left-parent coverage plus best
// right-parent coverage forms the chimeric model; it is compared with the
// best single-parent full coverage.
func (d *Detector) Check(read []byte) (Verdict, error) {
	kms := d.ex.Slice(read)
	if len(kms) < 4 {
		return Verdict{}, fmt.Errorf("chimera: read too short for k=%d", d.opt.K)
	}
	nRefs := len(d.sets)
	// hit[r][i] = 1 if read k-mer i is present in reference r.
	// prefix[r][i] = number of hits among first i k-mers.
	prefix := make([][]int, nRefs)
	for r := 0; r < nRefs; r++ {
		prefix[r] = make([]int, len(kms)+1)
		for i, km := range kms {
			h := 0
			if d.sets[r].Contains(km) {
				h = 1
			}
			prefix[r][i+1] = prefix[r][i] + h
		}
	}
	total := float64(len(kms))
	// Best single-parent coverage.
	bestSingle, bestSingleRef := 0.0, 0
	for r := 0; r < nRefs; r++ {
		cov := float64(prefix[r][len(kms)]) / total
		if cov > bestSingle {
			bestSingle, bestSingleRef = cov, r
		}
	}
	// Best two-parent split.
	minSeg := int(d.opt.MinSegment * float64(len(kms)))
	if minSeg < 1 {
		minSeg = 1
	}
	bestTwo, bestBP, bestA, bestB := 0.0, 0, 0, 0
	for bp := minSeg; bp <= len(kms)-minSeg; bp++ {
		bl, br := 0, 0
		la, rb := 0, 0
		for r := 0; r < nRefs; r++ {
			if prefix[r][bp] > bl {
				bl, la = prefix[r][bp], r
			}
			if right := prefix[r][len(kms)] - prefix[r][bp]; right > br {
				br, rb = right, r
			}
		}
		if la == rb {
			continue // same parent both sides is not a chimera model
		}
		cov := float64(bl+br) / total
		if cov > bestTwo {
			bestTwo, bestBP, bestA, bestB = cov, bp, la, rb
		}
	}
	v := Verdict{Score: bestTwo - bestSingle}
	if bestTwo-bestSingle >= d.opt.Gain {
		v.Chimeric = true
		v.ParentA, v.ParentB = bestA, bestB
		v.Breakpoint = bestBP
	} else {
		v.ParentA, v.ParentB = bestSingleRef, bestSingleRef
	}
	return v, nil
}

// Filter partitions reads into clean and chimeric sets.
func (d *Detector) Filter(reads []fasta.Record) (clean, chimeric []fasta.Record, err error) {
	for _, r := range reads {
		v, err := d.Check(r.Seq)
		if err != nil {
			return nil, nil, fmt.Errorf("read %s: %w", r.ID, err)
		}
		if v.Chimeric {
			chimeric = append(chimeric, r)
		} else {
			clean = append(clean, r)
		}
	}
	return clean, chimeric, nil
}
