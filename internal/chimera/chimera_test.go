package chimera

import (
	"math/rand"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/fasta"
)

// makeParents draws distinct random templates.
func makeParents(n, length int, seed int64) []fasta.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]fasta.Record, n)
	for i := range out {
		seq := make([]byte, length)
		for j := range seq {
			seq[j] = "ACGT"[rng.Intn(4)]
		}
		out[i] = fasta.Record{ID: string(rune('A' + i)), Seq: seq}
	}
	return out
}

func TestSimulateChimeras(t *testing.T) {
	parents := makeParents(4, 300, 1)
	reads, pairs, err := Simulate(parents, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 10 || len(pairs) != 10 {
		t.Fatalf("got %d reads, %d pairs", len(reads), len(pairs))
	}
	for i, r := range reads {
		if pairs[i][0] == pairs[i][1] {
			t.Fatalf("read %d spliced from one parent", i)
		}
		if len(r.Seq) < 200 {
			t.Fatalf("read %d too short: %d", i, len(r.Seq))
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, _, err := Simulate(makeParents(1, 100, 1), 5, 1); err == nil {
		t.Error("single parent accepted")
	}
	if _, _, err := Simulate(makeParents(2, 100, 1), -1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := Simulate(makeParents(2, 4, 1), 1, 1); err == nil {
		t.Error("tiny parents accepted")
	}
}

func TestDetectorFlagsChimerasAndKeepsClean(t *testing.T) {
	parents := makeParents(5, 400, 3)
	det, err := NewDetector(parents, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chimeras, pairs, err := Simulate(parents, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range chimeras {
		v, err := det.Check(r.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Chimeric {
			t.Fatalf("chimera %d not flagged (score %.3f)", i, v.Score)
		}
		// Parents recovered (order may flip with the breakpoint side).
		found := map[int]bool{v.ParentA: true, v.ParentB: true}
		if !found[pairs[i][0]] || !found[pairs[i][1]] {
			t.Fatalf("chimera %d parents %v, want %v", i, []int{v.ParentA, v.ParentB}, pairs[i])
		}
	}
	// Clean reads: exact fragments and noisy copies of single parents.
	rng := rand.New(rand.NewSource(5))
	for i, p := range parents {
		frag := append([]byte{}, p.Seq[50:350]...)
		for j := range frag {
			if rng.Float64() < 0.01 {
				frag[j] = "ACGT"[rng.Intn(4)]
			}
		}
		v, err := det.Check(frag)
		if err != nil {
			t.Fatal(err)
		}
		if v.Chimeric {
			t.Fatalf("clean read %d flagged as chimera (score %.3f)", i, v.Score)
		}
	}
}

func TestDetectorBreakpointAccuracy(t *testing.T) {
	parents := makeParents(2, 300, 7)
	// Hand-spliced at position 150.
	seq := append(append([]byte{}, parents[0].Seq[:150]...), parents[1].Seq[150:]...)
	det, err := NewDetector(parents, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Check(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Chimeric {
		t.Fatalf("hand-spliced chimera not flagged: %+v", v)
	}
	// Breakpoint is in k-mer coordinates; allow k of slack.
	if v.Breakpoint < 130 || v.Breakpoint > 170 {
		t.Fatalf("breakpoint %d, want ~150", v.Breakpoint)
	}
}

func TestDetectorValidation(t *testing.T) {
	parents := makeParents(3, 100, 9)
	if _, err := NewDetector(parents[:1], DetectorOptions{}); err == nil {
		t.Error("single reference accepted")
	}
	if _, err := NewDetector(parents, DetectorOptions{K: 99}); err == nil {
		t.Error("bad k accepted")
	}
	if _, err := NewDetector(parents, DetectorOptions{MinSegment: 0.9}); err == nil {
		t.Error("bad MinSegment accepted")
	}
	det, err := NewDetector(parents, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Check([]byte("ACGT")); err == nil {
		t.Error("tiny read accepted")
	}
}

func TestFilter(t *testing.T) {
	parents := makeParents(4, 300, 11)
	det, err := NewDetector(parents, DetectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chimeras, _, err := Simulate(parents, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	var mixed []fasta.Record
	mixed = append(mixed, chimeras...)
	for _, p := range parents {
		mixed = append(mixed, fasta.Record{ID: "clean_" + p.ID, Seq: p.Seq[20:280]})
	}
	clean, flagged, err := det.Filter(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 5 {
		t.Fatalf("flagged %d, want 5", len(flagged))
	}
	if len(clean) != 4 {
		t.Fatalf("clean %d, want 4", len(clean))
	}
}
