package mapreduce

import (
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
)

func TestBackoffForCapsAtMaxBackoff(t *testing.T) {
	p := RetryPolicy{
		Backoff:       3 * time.Second,
		BackoffFactor: 2,
		MaxBackoff:    20 * time.Second,
	}
	want := []time.Duration{
		3 * time.Second,  // n=1
		6 * time.Second,  // n=2
		12 * time.Second, // n=3
		20 * time.Second, // n=4: 24s capped
		20 * time.Second, // n=5: stays at the ceiling
		20 * time.Second, // n=50: no overflow from the exponent
	}
	for i, n := range []int{1, 2, 3, 4, 5, 50} {
		if got := p.BackoffFor(n); got != want[i] {
			t.Fatalf("BackoffFor(%d) = %v, want %v", n, got, want[i])
		}
	}
}

func TestBackoffForUncappedWhenZero(t *testing.T) {
	p := RetryPolicy{Backoff: time.Second, BackoffFactor: 2}
	if got := p.BackoffFor(6); got != 32*time.Second {
		t.Fatalf("uncapped BackoffFor(6) = %v, want 32s", got)
	}
}

func TestDefaultRetryPolicyHasSaneMaxBackoff(t *testing.T) {
	if DefaultRetryPolicy.MaxBackoff <= 0 {
		t.Fatal("DefaultRetryPolicy.MaxBackoff must be set")
	}
	p := RetryPolicy{}.withDefaults()
	if p.MaxBackoff != DefaultRetryPolicy.MaxBackoff {
		t.Fatalf("withDefaults MaxBackoff = %v, want %v", p.MaxBackoff, DefaultRetryPolicy.MaxBackoff)
	}
	// The canned default must actually bound a long crash streak: after
	// 20 failures the delay equals the ceiling, not 3s*2^19.
	if got := p.BackoffFor(20); got != p.MaxBackoff {
		t.Fatalf("BackoffFor(20) = %v, want ceiling %v", got, p.MaxBackoff)
	}
}

// TestRetryBackoffJitterDeterministic pins that the simulator's retry
// delay (backoff + seeded jitter) is a pure function of the fault site:
// two identical faulted runs schedule retries at identical virtual
// times. The end-to-end bit-identity suites cover output equality; this
// covers the schedule itself via the attempt timeline.
func TestRetryBackoffJitterDeterministic(t *testing.T) {
	plan := faults.Plan{
		Seed:    42,
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 2}},
	}
	lines := manyLines(6)
	a, err := runFaulted(t, plan, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFaulted(t, plan, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Attempts) != len(b.Attempts) {
		t.Fatalf("attempt counts differ: %d vs %d", len(a.Attempts), len(b.Attempts))
	}
	for i := range a.Attempts {
		if a.Attempts[i] != b.Attempts[i] {
			t.Fatalf("attempt %d differs:\n%+v\n%+v", i, a.Attempts[i], b.Attempts[i])
		}
	}
}
