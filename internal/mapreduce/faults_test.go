package mapreduce

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// chaosCluster is the standard deployment for fault tests: big enough to
// survive a node death, small enough to keep schedules readable.
var chaosCluster = Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel}

// manyLines builds n deterministic input lines so jobs have enough map
// tasks for faults to land on.
func manyLines(n int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	lines := make([]string, n)
	for i := range lines {
		lines[i] = words[i%len(words)] + " " + words[(i*3+1)%len(words)]
	}
	return lines
}

// runFaulted executes the wordcount job on a fresh engine with the plan.
func runFaulted(t *testing.T, plan faults.Plan, retry RetryPolicy, lines []string) (*Result, error) {
	t.Helper()
	e := MustEngine(chaosCluster)
	e.Faults = faults.MustNew(plan)
	e.Retry = retry
	return e.Run(wordCountJob(lines, false))
}

func TestFaultedRunIdenticalOutput(t *testing.T) {
	lines := manyLines(16)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	// Attempts 1 and 2 of map task 0 crash; attempt 3 succeeds within the
	// default budget of 4.
	faulted, err := runFaulted(t, faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 2}},
	}, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, faulted.Output) {
		t.Fatal("faulted run changed job output")
	}
	if got := faulted.Counters.Get(CounterTaskFailures); got != 2 {
		t.Fatalf("task.failures = %d, want 2", got)
	}
	if got := faulted.Counters.Get(CounterTaskAttempts); got != baseline.Counters.Get(CounterTaskAttempts)+int64(faulted.MapTasks+faulted.ReduceTask)+2 {
		// Baseline records no attempts counter (fault-free path); faulted
		// run logs one per attempt: every task once plus the two crashes.
		if got != int64(faulted.MapTasks+faulted.ReduceTask)+2 {
			t.Fatalf("task.attempts = %d, want %d", got, faulted.MapTasks+faulted.ReduceTask+2)
		}
	}
	if faulted.Virtual <= baseline.Virtual {
		t.Fatalf("recovery should cost virtual time: faulted %v <= baseline %v", faulted.Virtual, baseline.Virtual)
	}
	// The attempt log must show the retries with exponential backoff.
	var crashes []TaskAttempt
	for _, a := range faulted.Attempts {
		if a.Task == 0 && a.Phase == faults.PhaseMap {
			crashes = append(crashes, a)
		}
	}
	if len(crashes) != 3 {
		t.Fatalf("map task 0 attempts = %d, want 3 (%v)", len(crashes), crashes)
	}
	for i, a := range crashes {
		if a.Attempt != i+1 {
			t.Fatalf("attempt %d numbered %d", i, a.Attempt)
		}
	}
	if crashes[0].Outcome != AttemptCrashed || crashes[1].Outcome != AttemptCrashed || crashes[2].Outcome != AttemptSuccess {
		t.Fatalf("outcomes %v %v %v", crashes[0].Outcome, crashes[1].Outcome, crashes[2].Outcome)
	}
	gap1 := crashes[1].Start - crashes[0].End
	gap2 := crashes[2].Start - crashes[1].End
	if gap1 < DefaultRetryPolicy.Backoff {
		t.Fatalf("first retry backoff %v < %v", gap1, DefaultRetryPolicy.Backoff)
	}
	if gap2 < 2*DefaultRetryPolicy.Backoff {
		t.Fatalf("second retry backoff %v not doubled (%v)", gap2, gap1)
	}
}

func TestTaskExhaustsRetriesTypedError(t *testing.T) {
	_, err := runFaulted(t, faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 1, UpToAttempt: 99}},
	}, RetryPolicy{}, manyLines(8))
	if err == nil {
		t.Fatal("always-crashing task should fail the job")
	}
	var tf *TaskFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("error %v is not a *TaskFailedError", err)
	}
	if tf.Phase != faults.PhaseMap || tf.Task != 1 {
		t.Fatalf("failure site %s/%d, want map/1", tf.Phase, tf.Task)
	}
	if tf.Attempts != DefaultRetryPolicy.MaxAttempts {
		t.Fatalf("attempts %d, want %d", tf.Attempts, DefaultRetryPolicy.MaxAttempts)
	}
}

func TestReduceTaskExhaustsRetries(t *testing.T) {
	_, err := runFaulted(t, faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseReduce, Task: 0, UpToAttempt: 99}},
	}, RetryPolicy{MaxAttempts: 2}, manyLines(8))
	var tf *TaskFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("error %v is not a *TaskFailedError", err)
	}
	if tf.Phase != faults.PhaseReduce || tf.Attempts != 2 {
		t.Fatalf("failure %s after %d attempts, want reduce after 2", tf.Phase, tf.Attempts)
	}
}

func TestNodeDeathInMapPhaseRecovers(t *testing.T) {
	lines := manyLines(16) // 8 map tasks fill all 8 slots in one wave
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 dies 1s into the map window (JobStartup offsets the global
	// clock), killing its two running attempts.
	death := DefaultCostModel.JobStartup + time.Second
	faulted, err := runFaulted(t, faults.Plan{
		NodeDeaths: []faults.NodeDeath{{Node: 1, At: death}},
	}, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, faulted.Output) {
		t.Fatal("node death changed job output")
	}
	if got := faulted.Counters.Get(CounterTaskKilled); got < 1 {
		t.Fatalf("task.killed = %d, want >= 1", got)
	}
	// Killed attempts do not consume the retry budget.
	if got := faulted.Counters.Get(CounterTaskFailures); got != 0 {
		t.Fatalf("task.failures = %d, want 0 (node death is not the task's fault)", got)
	}
	// Nothing schedules on the dead node after its death.
	for _, a := range faulted.Attempts {
		if a.Node == 1 && a.Start >= time.Second {
			t.Fatalf("attempt scheduled on dead node 1 at %v: %+v", a.Start, a)
		}
	}
}

func TestNodeDeathDuringShuffleReexecutesMaps(t *testing.T) {
	lines := manyLines(16)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	// Maps finish around 3s (one wave of TaskStartup-dominated tasks);
	// reducers shuffle until roughly 6s. Killing node 1 at 4.5s lands after
	// the map phase but before the shuffle drains, so its completed map
	// output is lost and Hadoop's rule demands re-execution.
	death := DefaultCostModel.JobStartup + 4500*time.Millisecond
	faulted, err := runFaulted(t, faults.Plan{
		NodeDeaths: []faults.NodeDeath{{Node: 1, At: death}},
	}, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, faulted.Output) {
		t.Fatal("shuffle-window node death changed job output")
	}
	if got := faulted.Counters.Get(CounterMapReexecutions); got < 1 {
		t.Fatalf("map.reexecutions = %d, want >= 1 (lost map output must re-run)", got)
	}
	if got := faulted.Counters.Get(CounterTaskKilled); got < 1 {
		t.Fatalf("task.killed = %d, want >= 1 (reducers lost their fetch)", got)
	}
	// The re-executed maps appear as extra successful attempts after the
	// death, on surviving nodes.
	reexec := 0
	for _, a := range faulted.Attempts {
		if a.Phase == faults.PhaseMap && a.Start >= 4500*time.Millisecond {
			if a.Node == 1 {
				t.Fatalf("re-execution placed on dead node: %+v", a)
			}
			reexec++
		}
	}
	if reexec < 1 {
		t.Fatal("no map attempts after the node death")
	}
	if faulted.Virtual <= baseline.Virtual {
		t.Fatalf("re-execution should cost virtual time: %v <= %v", faulted.Virtual, baseline.Virtual)
	}
}

func TestMapOnlyJobSkipsReexecution(t *testing.T) {
	// A map-only job writes its output straight to the job client; a node
	// death after its tasks completed loses nothing.
	recs := make([]KeyValue, 12)
	for i := range recs {
		recs[i] = KeyValue{Key: fmt.Sprint(i), Value: i}
	}
	job := func() *Job {
		return &Job{
			Name:  "maponly",
			Input: MemoryInput{Records: recs, SplitSize: 2},
			Map: func(kv KeyValue, emit func(KeyValue)) error {
				emit(kv)
				return nil
			},
		}
	}
	e := MustEngine(chaosCluster)
	e.Faults = faults.MustNew(faults.Plan{
		NodeDeaths: []faults.NodeDeath{{Node: 0, At: DefaultCostModel.JobStartup + time.Hour}},
	})
	res, err := e.Run(job())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterMapReexecutions); got != 0 {
		t.Fatalf("map-only job re-executed %d maps after a post-job death", got)
	}
	if len(res.Output) != 12 {
		t.Fatalf("output %d records, want 12", len(res.Output))
	}
}

func TestBlacklistAfterRepeatedCrashes(t *testing.T) {
	lines := manyLines(16)
	faulted, err := runFaulted(t, faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 1}},
	}, RetryPolicy{BlacklistAfter: 1}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Blacklisted) != 1 {
		t.Fatalf("blacklisted = %v, want exactly one node", faulted.Blacklisted)
	}
	if got := faulted.Counters.Get(CounterNodesBlacklisted); got != 1 {
		t.Fatalf("node.blacklisted = %d, want 1", got)
	}
	// After the blacklist takes effect, no further attempts land on the node.
	bad := faulted.Blacklisted[0]
	var crashEnd time.Duration
	for _, a := range faulted.Attempts {
		if a.Outcome == AttemptCrashed {
			crashEnd = a.End
			if a.Node != bad {
				t.Fatalf("crash on node %d but blacklist hit node %d", a.Node, bad)
			}
		}
	}
	for _, a := range faulted.Attempts {
		if a.Node == bad && a.Start > crashEnd {
			t.Fatalf("attempt on blacklisted node %d at %v", bad, a.Start)
		}
	}
}

func TestLastNodeNeverBlacklisted(t *testing.T) {
	// On a one-node cluster every crash hits the only node; blacklisting it
	// would strand the job, so the guard must keep it usable.
	e := MustEngine(Cluster{Nodes: 1, SlotsPerNode: 2, Cost: DefaultCostModel})
	e.Faults = faults.MustNew(faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 2}},
	})
	e.Retry = RetryPolicy{BlacklistAfter: 1}
	res, err := e.Run(wordCountJob(manyLines(6), false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blacklisted) != 0 {
		t.Fatalf("last usable node was blacklisted: %v", res.Blacklisted)
	}
}

func TestAllNodesDeadFailsTyped(t *testing.T) {
	_, err := runFaulted(t, faults.Plan{
		NodeDeaths: []faults.NodeDeath{{Node: 0}, {Node: 1}, {Node: 2}, {Node: 3}},
	}, RetryPolicy{}, manyLines(4))
	var tf *TaskFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("cluster-wide death should yield *TaskFailedError, got %v", err)
	}
}

func TestSlowNodeStretchesVirtualTime(t *testing.T) {
	lines := manyLines(16)
	baseline, err := runFaulted(t, faults.Plan{SlowNodes: []faults.SlowNode{{Node: 0, Factor: 1}}}, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := runFaulted(t, faults.Plan{SlowNodes: []faults.SlowNode{{Node: 0, Factor: 4}}}, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if slowed.Virtual <= baseline.Virtual {
		t.Fatalf("slow node did not stretch the makespan: %v <= %v", slowed.Virtual, baseline.Virtual)
	}
	if !reflect.DeepEqual(baseline.Output, slowed.Output) {
		t.Fatal("slow node changed job output")
	}
}

func TestFaultedRunDeterminism(t *testing.T) {
	lines := manyLines(24)
	plan := faults.ChaosPlan(42)
	plan.NodeDeaths = []faults.NodeDeath{{Node: 2, At: DefaultCostModel.JobStartup + 4*time.Second}}
	a, err := runFaulted(t, plan, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFaulted(t, plan, RetryPolicy{}, lines)
	if err != nil {
		t.Fatal(err)
	}
	if a.Virtual != b.Virtual {
		t.Fatalf("virtual time diverged: %v vs %v", a.Virtual, b.Virtual)
	}
	if !reflect.DeepEqual(a.Attempts, b.Attempts) {
		t.Fatal("attempt logs diverged between identical faulted runs")
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Fatal("outputs diverged between identical faulted runs")
	}
}

// chaosSeeds returns the seeds to sweep: CHAOS_SEED (set by the CI chaos
// matrix) selects one, otherwise all five default seeds run.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		return []int64{n}
	}
	return []int64{1, 2, 3, 4, 5}
}

func TestChaosMatrix(t *testing.T) {
	lines := manyLines(40)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.ChaosPlan(seed)
			plan.NodeDeaths = []faults.NodeDeath{{Node: int(seed) % chaosCluster.Nodes, At: DefaultCostModel.JobStartup + 4*time.Second}}
			res, err := runFaulted(t, plan, RetryPolicy{}, lines)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline.Output, res.Output) {
				t.Fatal("chaos run changed job output")
			}
			if got := res.Counters.Get(CounterTaskKilled) + res.Counters.Get(CounterTaskFailures); got < 1 {
				t.Fatalf("chaos plan injected nothing observable (killed+failed = %d)", got)
			}
			again, err := runFaulted(t, plan, RetryPolicy{}, lines)
			if err != nil {
				t.Fatal(err)
			}
			if again.Virtual != res.Virtual {
				t.Fatalf("seed %d not reproducible: %v vs %v", seed, res.Virtual, again.Virtual)
			}
		})
	}
}

func TestFaultTraceSpans(t *testing.T) {
	rec := trace.New()
	e := MustEngine(chaosCluster)
	e.Trace = rec
	e.Faults = faults.MustNew(faults.Plan{
		Crashes: []faults.TaskCrash{{Phase: faults.PhaseMap, Task: 0, UpToAttempt: 1}},
	})
	if _, err := e.Run(wordCountJob(manyLines(8), true)); err != nil {
		t.Fatal(err)
	}
	var crashed, retried, combines int
	for _, s := range rec.Spans() {
		if s.Kind == trace.KindMap && s.Status == "crashed" {
			crashed++
			if s.Detail == "" {
				t.Fatal("crashed span missing failure reason")
			}
		}
		if s.Kind == trace.KindMap && s.Attempt >= 2 {
			retried++
		}
		if s.Kind == trace.KindCombine {
			combines++
		}
	}
	if crashed != 1 {
		t.Fatalf("crashed map spans = %d, want 1", crashed)
	}
	if retried != 1 {
		t.Fatalf("retry map spans = %d, want 1", retried)
	}
	if combines == 0 {
		t.Fatal("no combine spans on faulted run")
	}
}
