package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/metagenomics/mrmcminh/internal/dfs"
)

// wordCountJob builds the canonical test job over the given lines.
func wordCountJob(lines []string, combiner bool) *Job {
	recs := make([]KeyValue, len(lines))
	for i, l := range lines {
		recs[i] = KeyValue{Key: fmt.Sprint(i), Value: l}
	}
	sum := func(key string, values []any, emit func(KeyValue)) error {
		n := 0
		for _, v := range values {
			n += v.(int)
		}
		emit(KeyValue{Key: key, Value: n})
		return nil
	}
	j := &Job{
		Name:  "wordcount",
		Input: MemoryInput{Records: recs, SplitSize: 2},
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			for _, w := range strings.Fields(kv.Value.(string)) {
				emit(KeyValue{Key: w, Value: 1})
			}
			return nil
		},
		Reduce:      sum,
		NumReducers: 3,
	}
	if combiner {
		j.Combine = sum
	}
	return j
}

func collectCounts(out []KeyValue) map[string]int {
	m := make(map[string]int)
	for _, kv := range out {
		m[kv.Key] += kv.Value.(int)
	}
	return m
}

func TestWordCount(t *testing.T) {
	e := MustEngine(Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel})
	lines := []string{"a b a", "b c", "a", "c c c"}
	res, err := e.Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	got := collectCounts(res.Output)
	want := map[string]int{"a": 3, "b": 2, "c": 4}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if res.MapTasks != 2 || res.ReduceTask != 3 {
		t.Fatalf("tasks %d/%d", res.MapTasks, res.ReduceTask)
	}
}

func TestCombinerSameResultFewerShuffledRecords(t *testing.T) {
	e := MustEngine(DefaultCluster)
	lines := []string{"x x x x", "x x x x", "y"}
	plain, err := e.Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := e.Run(wordCountJob(lines, true))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(collectCounts(plain.Output)) != fmt.Sprint(collectCounts(combined.Output)) {
		t.Fatal("combiner changed results")
	}
	if combined.Counters.Get(CounterShuffleBytes) >= plain.Counters.Get(CounterShuffleBytes) {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d",
			combined.Counters.Get(CounterShuffleBytes), plain.Counters.Get(CounterShuffleBytes))
	}
}

func TestMapOnlyJobPreservesOrder(t *testing.T) {
	e := MustEngine(DefaultCluster)
	recs := make([]KeyValue, 20)
	for i := range recs {
		recs[i] = KeyValue{Key: fmt.Sprint(i), Value: i}
	}
	res, err := e.Run(&Job{
		Name:  "identity",
		Input: MemoryInput{Records: recs, SplitSize: 3},
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			emit(KeyValue{Key: kv.Key, Value: kv.Value.(int) * 10})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 20 {
		t.Fatalf("output size %d", len(res.Output))
	}
	for i, kv := range res.Output {
		if kv.Value.(int) != i*10 {
			t.Fatalf("output[%d] = %v, want %d (order broken)", i, kv.Value, i*10)
		}
	}
	if res.ReduceTask != 0 {
		t.Fatal("map-only job ran reducers")
	}
}

func TestReduceGroupsSortedWithinPartition(t *testing.T) {
	e := MustEngine(DefaultCluster)
	var recs []KeyValue
	for i := 0; i < 30; i++ {
		recs = append(recs, KeyValue{Key: fmt.Sprintf("k%02d", i%10), Value: i})
	}
	var mu sortRecorder
	_, err := e.Run(&Job{
		Name:        "sorted",
		Input:       MemoryInput{Records: recs, SplitSize: 7},
		Map:         func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
		NumReducers: 1,
		Reduce: func(key string, values []any, emit func(KeyValue)) error {
			mu.record(key)
			if len(values) != 3 {
				return fmt.Errorf("key %s got %d values", key, len(values))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(mu.keys) {
		t.Fatalf("reduce keys not sorted: %v", mu.keys)
	}
	if len(mu.keys) != 10 {
		t.Fatalf("saw %d groups, want 10", len(mu.keys))
	}
}

type sortRecorder struct{ keys []string }

func (s *sortRecorder) record(k string) { s.keys = append(s.keys, k) }

func TestJobValidation(t *testing.T) {
	e := MustEngine(DefaultCluster)
	if _, err := e.Run(&Job{Name: "no-input", Map: func(KeyValue, func(KeyValue)) error { return nil }}); err == nil {
		t.Error("job without input accepted")
	}
	if _, err := e.Run(&Job{Name: "no-map", Input: MemoryInput{}}); err == nil {
		t.Error("job without map accepted")
	}
	if _, err := e.Run(&Job{
		Name: "combine-no-reduce", Input: MemoryInput{},
		Map:     func(KeyValue, func(KeyValue)) error { return nil },
		Combine: func(string, []any, func(KeyValue)) error { return nil },
	}); err == nil {
		t.Error("combiner without reducer accepted")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewEngine(Cluster{Nodes: 0, SlotsPerNode: 1}); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewEngine(Cluster{Nodes: 1, SlotsPerNode: 0}); err == nil {
		t.Error("0 slots accepted")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e := MustEngine(DefaultCluster)
	boom := errors.New("boom")
	_, err := e.Run(&Job{
		Name:  "failing-map",
		Input: MemoryInput{Records: []KeyValue{{Key: "a", Value: 1}}},
		Map:   func(KeyValue, func(KeyValue)) error { return boom },
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	e := MustEngine(DefaultCluster)
	boom := errors.New("boom")
	_, err := e.Run(&Job{
		Name:   "failing-reduce",
		Input:  MemoryInput{Records: []KeyValue{{Key: "a", Value: 1}}},
		Map:    func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
		Reduce: func(string, []any, func(KeyValue)) error { return boom },
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadPartitionerRejected(t *testing.T) {
	e := MustEngine(DefaultCluster)
	_, err := e.Run(&Job{
		Name:      "bad-part",
		Input:     MemoryInput{Records: []KeyValue{{Key: "a", Value: 1}}},
		Map:       func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
		Reduce:    func(string, []any, func(KeyValue)) error { return nil },
		Partition: func(string, int) int { return 99 },
	})
	if err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestDefaultPartitionInRange(t *testing.T) {
	f := func(key string, n uint8) bool {
		m := int(n%16) + 1
		p := DefaultPartition(key, m)
		return p >= 0 && p < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Degenerate reducer counts are a sentinel, not a modulo crash; the
	// engine rejects the -1 through its own range check.
	for _, n := range []int{0, -1, -16} {
		if p := DefaultPartition("key", n); p != -1 {
			t.Fatalf("DefaultPartition(key, %d) = %d, want -1", n, p)
		}
	}
}

func TestDefaultPartitionDeterministic(t *testing.T) {
	if DefaultPartition("hello", 7) != DefaultPartition("hello", 7) {
		t.Fatal("partition not deterministic")
	}
}

func TestCountersAccounting(t *testing.T) {
	e := MustEngine(DefaultCluster)
	res, err := e.Run(wordCountJob([]string{"a b", "c"}, false))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Get(CounterMapInputRecords) != 2 {
		t.Fatalf("map input %d", c.Get(CounterMapInputRecords))
	}
	if c.Get(CounterMapOutputRecords) != 3 {
		t.Fatalf("map output %d", c.Get(CounterMapOutputRecords))
	}
	if c.Get(CounterReduceInputGroups) != 3 || c.Get(CounterReduceOutput) != 3 {
		t.Fatalf("reduce counters %v", c.Snapshot())
	}
	if len(c.Names()) == 0 {
		t.Fatal("no counter names")
	}
}

func TestEmptyInput(t *testing.T) {
	e := MustEngine(DefaultCluster)
	res, err := e.Run(&Job{
		Name:   "empty",
		Input:  MemoryInput{},
		Map:    func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
		Reduce: func(string, []any, func(KeyValue)) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("output %v", res.Output)
	}
}

// TestVirtualClockScalesWithNodes is the unit-level Figure 2 check: a large
// job's modelled runtime shrinks as nodes are added, while a tiny job's
// runtime is overhead-dominated and flat.
func TestVirtualClockScalesWithNodes(t *testing.T) {
	bigRecs := make([]KeyValue, 20000)
	for i := range bigRecs {
		bigRecs[i] = KeyValue{Key: fmt.Sprint(i % 100), Value: 1}
	}
	runWith := func(nodes int, recs []KeyValue, splitSize int) time.Duration {
		e := MustEngine(Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: DefaultCostModel})
		job := &Job{
			Name:  "scale",
			Input: MemoryInput{Records: recs, SplitSize: splitSize},
			Map:   func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
			Reduce: func(k string, vs []any, emit func(KeyValue)) error {
				emit(KeyValue{Key: k, Value: len(vs)})
				return nil
			},
			MapCostFactor: 50, // pretend the map work is heavy
		}
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Virtual
	}
	big2 := runWith(2, bigRecs, 500)
	big12 := runWith(12, bigRecs, 500)
	if big12 >= big2 {
		t.Fatalf("12-node virtual time %v not below 2-node %v", big12, big2)
	}
	smallRecs := bigRecs[:100]
	small2 := runWith(2, smallRecs, 500)
	small12 := runWith(12, smallRecs, 500)
	ratio := float64(small2) / float64(small12)
	if ratio > 1.5 {
		t.Fatalf("small job should be overhead-flat: 2-node %v vs 12-node %v", small2, small12)
	}
}

func TestMakespanBasics(t *testing.T) {
	c := Cluster{Nodes: 2, SlotsPerNode: 1, Cost: DefaultCostModel}
	if got := c.Makespan(nil); got != 0 {
		t.Fatalf("empty makespan %v", got)
	}
	// Two equal tasks on two slots run concurrently.
	tasks := []TaskCost{{Duration: time.Minute}, {Duration: time.Minute}}
	if got := c.Makespan(tasks); got != time.Minute {
		t.Fatalf("parallel makespan %v", got)
	}
	// Three tasks on two slots: 2 minutes.
	tasks = append(tasks, TaskCost{Duration: time.Minute})
	if got := c.Makespan(tasks); got != 2*time.Minute {
		t.Fatalf("serialized makespan %v", got)
	}
}

func TestMakespanMonotonicInNodes(t *testing.T) {
	var tasks []TaskCost
	for i := 0; i < 40; i++ {
		tasks = append(tasks, TaskCost{Duration: time.Duration(i+1) * time.Second})
	}
	prev := time.Duration(1 << 62)
	for nodes := 1; nodes <= 12; nodes++ {
		c := Cluster{Nodes: nodes, SlotsPerNode: 2, Cost: DefaultCostModel}
		m := c.Makespan(tasks)
		if m > prev {
			t.Fatalf("makespan grew with more nodes: %v -> %v at %d nodes", prev, m, nodes)
		}
		prev = m
	}
}

func TestDFSLineInputAndWriteOutput(t *testing.T) {
	fs := dfs.MustNew(dfs.Config{NumDataNodes: 3, BlockSize: 32, Replication: 2})
	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines, fmt.Sprintf("line number %d", i))
	}
	if err := fs.WriteLines("/in/data.txt", lines); err != nil {
		t.Fatal(err)
	}
	e := MustEngine(DefaultCluster)
	res, err := e.Run(&Job{
		Name:  "dfs-lines",
		Input: DFSLineInput{FS: fs, Path: "/in/data.txt"},
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			emit(KeyValue{Key: "lines", Value: 1})
			return nil
		},
		Reduce: func(k string, vs []any, emit func(KeyValue)) error {
			emit(KeyValue{Key: k, Value: len(vs)})
			return nil
		},
		NumReducers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Value.(int) != 10 {
		t.Fatalf("output %v", res.Output)
	}
	if err := WriteOutput(fs, "/out", res.Output, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadLines("/out/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "lines\t10" {
		t.Fatalf("part file %v", got)
	}
}

func TestWriteOutputChunksParts(t *testing.T) {
	fs := dfs.MustNew(dfs.DefaultConfig)
	recs := []KeyValue{{Key: "a", Value: 1}, {Key: "b", Value: 2}, {Key: "c", Value: 3}}
	if err := WriteOutput(fs, "/o", recs, 2); err != nil {
		t.Fatal(err)
	}
	parts := fs.List("/o/")
	if len(parts) != 2 {
		t.Fatalf("parts %v", parts)
	}
}

func TestEnginePropertyTotalCountPreserved(t *testing.T) {
	e := MustEngine(Cluster{Nodes: 3, SlotsPerNode: 2, Cost: DefaultCostModel})
	f := func(keys []uint8) bool {
		recs := make([]KeyValue, len(keys))
		for i, k := range keys {
			recs[i] = KeyValue{Key: fmt.Sprint(k % 10), Value: 1}
		}
		res, err := e.Run(&Job{
			Name:  "prop",
			Input: MemoryInput{Records: recs, SplitSize: 4},
			Map:   func(kv KeyValue, emit func(KeyValue)) error { emit(kv); return nil },
			Reduce: func(k string, vs []any, emit func(KeyValue)) error {
				emit(KeyValue{Key: k, Value: len(vs)})
				return nil
			},
		})
		if err != nil {
			return false
		}
		total := 0
		for _, kv := range res.Output {
			total += kv.Value.(int)
		}
		return total == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWordCount10k(b *testing.B) {
	lines := make([]string, 1000)
	for i := range lines {
		lines[i] = strings.Repeat(fmt.Sprintf("w%d ", i%50), 10)
	}
	e := MustEngine(DefaultCluster)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(wordCountJob(lines, true)); err != nil {
			b.Fatal(err)
		}
	}
}
