package mapreduce

import (
	"fmt"
	"sort"
	"time"
)

// CostModel parameterizes the virtual clock. Values are loosely calibrated
// to the paper's Amazon EMR M1 Large deployment so that modelled runtimes
// land in the same minutes-scale regime as Figure 2 and Table III.
type CostModel struct {
	// JobStartup is the fixed per-job overhead (JVM spin-up, scheduling).
	JobStartup time.Duration
	// TaskStartup is the fixed per-task overhead.
	TaskStartup time.Duration
	// MapPerRecord is the modelled cost to map one record.
	MapPerRecord time.Duration
	// ReducePerRecord is the modelled cost to reduce one value.
	ReducePerRecord time.Duration
	// ShufflePerByte is the modelled network cost to move one byte of
	// intermediate data between nodes.
	ShufflePerByte time.Duration
	// SpillPerByte is the modelled local-disk cost to write or read one
	// byte of spilled map output (external shuffle only; Hadoop spills to
	// the tasktracker's local disks, not the DFS). Every spilled byte is
	// charged at least twice — the map-side write and the reducer-side
	// merge read — plus one write+read more per intermediate merge pass.
	SpillPerByte time.Duration
	// RemoteReadPenalty multiplies a map task's input cost when its split
	// is not local to the node it runs on (1.0 = free).
	RemoteReadPenalty float64
	// StragglerFraction is the share of tasks that run slow (failing
	// disks, hot neighbors — the tail Hadoop's speculative execution
	// exists for). 0 disables stragglers.
	StragglerFraction float64
	// StragglerSlowdown multiplies a straggler's duration (≥ 1).
	StragglerSlowdown float64
}

// DefaultCostModel approximates the paper's EMR environment.
var DefaultCostModel = CostModel{
	JobStartup:        20 * time.Second,
	TaskStartup:       3 * time.Second,
	MapPerRecord:      200 * time.Microsecond,
	ReducePerRecord:   150 * time.Microsecond,
	ShufflePerByte:    10 * time.Nanosecond,
	SpillPerByte:      4 * time.Nanosecond, // local disk, ~2.5x the network rate
	RemoteReadPenalty: 1.3,
}

// Cluster describes the simulated deployment.
type Cluster struct {
	// Nodes is the machine count (the paper varies 2..12).
	Nodes int
	// SlotsPerNode is how many concurrent tasks one machine runs
	// (Hadoop's map/reduce slots; M1 Large ≈ 2).
	SlotsPerNode int
	Cost         CostModel
	// Speculative enables Hadoop-style speculative execution in the
	// runtime model: when a straggler task is detected, a backup copy
	// launches on a free slot and the task finishes at the earlier of the
	// two attempts.
	Speculative bool
}

// DefaultCluster mirrors the paper's 8-node evaluation deployment.
var DefaultCluster = Cluster{Nodes: 8, SlotsPerNode: 2, Cost: DefaultCostModel}

// Validate rejects degenerate clusters.
func (c Cluster) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("mapreduce: cluster needs at least one node, got %d", c.Nodes)
	}
	if c.SlotsPerNode < 1 {
		return fmt.Errorf("mapreduce: cluster needs at least one slot per node, got %d", c.SlotsPerNode)
	}
	return nil
}

// TotalSlots returns the cluster-wide concurrent task capacity.
func (c Cluster) TotalSlots() int { return c.Nodes * c.SlotsPerNode }

// TaskCost is the modelled duration of one task.
type TaskCost struct {
	Duration time.Duration
	// PreferredHosts biases placement (data locality); may be empty.
	PreferredHosts []int
}

// TaskPlacement records where and when the virtual scheduler ran one
// task — the per-task timeline a Hadoop JobTracker would report.
type TaskPlacement struct {
	// Task indexes into the scheduled []TaskCost.
	Task int
	// Node and Slot locate the simulated machine (Node = Slot/SlotsPerNode).
	Node int
	Slot int
	// Start and End bound the task on the phase-relative virtual clock.
	Start time.Duration
	End   time.Duration
}

// Makespan schedules task costs onto the cluster's slots and returns the
// finishing time of the last task.
func (c Cluster) Makespan(tasks []TaskCost) time.Duration {
	_, makespan := c.Schedule(tasks)
	return makespan
}

// Schedule assigns task costs onto the cluster's slots greedily (each
// task goes to the slot that frees up first, preferring slots on a host in
// PreferredHosts when the choice is otherwise idle-equal) and returns the
// per-task placements, ordered by task index, plus the makespan. This is
// the virtual-clock analogue of Hadoop's wave scheduling; the placements
// feed the trace recorder's task timeline.
func (c Cluster) Schedule(tasks []TaskCost) ([]TaskPlacement, time.Duration) {
	if len(tasks) == 0 {
		return nil, 0
	}
	slots := make([]time.Duration, c.TotalSlots())
	// Longest-processing-time order stabilizes the estimate across input
	// permutations (Hadoop schedules pending tasks from a pool, so order
	// is not meaningful anyway).
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Duration > tasks[order[b]].Duration
	})
	placements := make([]TaskPlacement, len(tasks))
	var makespan time.Duration
	for _, ti := range order {
		t := tasks[ti]
		d := c.effectiveDuration(ti, t.Duration)
		// Earliest-available slot; ties broken toward preferred hosts.
		best := 0
		for s := 1; s < len(slots); s++ {
			if slots[s] < slots[best] {
				best = s
			} else if slots[s] == slots[best] && c.slotPreferred(s, t.PreferredHosts) && !c.slotPreferred(best, t.PreferredHosts) {
				best = s
			}
		}
		placements[ti] = TaskPlacement{
			Task:  ti,
			Node:  best / c.SlotsPerNode,
			Slot:  best,
			Start: slots[best],
			End:   slots[best] + d,
		}
		slots[best] += d
		if slots[best] > makespan {
			makespan = slots[best]
		}
	}
	return placements, makespan
}

// effectiveDuration applies the straggler model to task ti. Stragglers
// are chosen deterministically by index hash; with speculative execution
// a backup attempt caps the penalty at one extra task startup plus the
// nominal duration (the backup reruns from scratch once the original is
// flagged slow).
func (c Cluster) effectiveDuration(ti int, d time.Duration) time.Duration {
	frac := c.Cost.StragglerFraction
	if frac <= 0 || c.Cost.StragglerSlowdown <= 1 {
		return d
	}
	if !isStraggler(ti, frac) {
		return d
	}
	slow := time.Duration(float64(d) * c.Cost.StragglerSlowdown)
	if !c.Speculative {
		return slow
	}
	backup := d + c.Cost.TaskStartup + d // detection after ~1 nominal duration, then a fresh attempt
	if backup < slow {
		return backup
	}
	return slow
}

// isStraggler deterministically marks ~frac of task indices.
func isStraggler(ti int, frac float64) bool {
	// SplitMix64-style scramble for a uniform pick independent of index
	// locality.
	x := uint64(ti) + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x%10000) < frac*10000
}

// slotPreferred reports whether slot s lives on one of the hosts.
func (c Cluster) slotPreferred(s int, hosts []int) bool {
	node := s / c.SlotsPerNode
	for _, h := range hosts {
		if h%c.Nodes == node {
			return true
		}
	}
	return false
}

// mapTaskCost models one map task over a split.
func (c Cluster) mapTaskCost(split InputSplit, factor float64) TaskCost {
	if factor <= 0 {
		factor = 1
	}
	d := c.Cost.TaskStartup +
		time.Duration(float64(len(split.Records))*factor*float64(c.Cost.MapPerRecord))
	return TaskCost{Duration: d, PreferredHosts: split.Hosts}
}

// reduceTaskCost models one reduce task over a partition. spillIOBytes
// is the external shuffle's local-disk traffic attributed to this
// partition (map-side spill writes plus every merge-pass read/write,
// zero on the in-memory path), charged at SpillPerByte.
func (c Cluster) reduceTaskCost(values int, shuffleBytes int, spillIOBytes int64, factor float64) TaskCost {
	if factor <= 0 {
		factor = 1
	}
	d := c.Cost.TaskStartup +
		time.Duration(float64(values)*factor*float64(c.Cost.ReducePerRecord)) +
		time.Duration(float64(shuffleBytes)*float64(c.Cost.ShufflePerByte)) +
		time.Duration(float64(spillIOBytes)*float64(c.Cost.SpillPerByte))
	return TaskCost{Duration: d}
}
