package mapreduce

import (
	"fmt"
	"strings"

	"github.com/metagenomics/mrmcminh/internal/dfs"
)

// DFSLineInput reads a line-record file from the simulated DFS, producing
// one split per block (Hadoop TextInputFormat). Each record's key is the
// line number within the file (as decimal text) and the value is the line.
type DFSLineInput struct {
	FS   *dfs.FileSystem
	Path string
}

// Splits implements InputSource.
func (d DFSLineInput) Splits() ([]InputSplit, error) {
	raw, err := d.FS.LineSplits(d.Path)
	if err != nil {
		return nil, err
	}
	out := make([]InputSplit, 0, len(raw))
	lineNo := 0
	for _, sp := range raw {
		recs := make([]KeyValue, 0, len(sp.Records))
		bytes := 0
		for _, line := range sp.Records {
			recs = append(recs, KeyValue{Key: fmt.Sprint(lineNo), Value: line})
			lineNo++
			bytes += len(line) + 1
		}
		out = append(out, InputSplit{Records: recs, Hosts: sp.Hosts, Bytes: bytes})
	}
	return out, nil
}

// WriteOutput stores a job's output records to the DFS as Hadoop-style
// part files under dir, one per reduce partition's worth of records
// (here: chunks of chunkSize records; 0 = single part). Records render as
// "key\tvalue" lines.
func WriteOutput(fs *dfs.FileSystem, dir string, records []KeyValue, chunkSize int) error {
	if chunkSize <= 0 {
		chunkSize = len(records)
		if chunkSize == 0 {
			chunkSize = 1
		}
	}
	part := 0
	for off := 0; off < len(records) || (off == 0 && len(records) == 0); off += chunkSize {
		end := off + chunkSize
		if end > len(records) {
			end = len(records)
		}
		var sb strings.Builder
		for _, kv := range records[off:end] {
			sb.WriteString(kv.Key)
			sb.WriteByte('\t')
			fmt.Fprint(&sb, kv.Value)
			sb.WriteByte('\n')
		}
		path := fmt.Sprintf("%s/part-%05d", strings.TrimSuffix(dir, "/"), part)
		if err := fs.WriteFile(path, []byte(sb.String())); err != nil {
			return err
		}
		part++
		if len(records) == 0 {
			break
		}
	}
	return nil
}
