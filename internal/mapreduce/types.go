// Package mapreduce is a Hadoop-style MapReduce engine executing on a
// *simulated cluster*: jobs run for real on goroutine worker pools, while a
// virtual clock models how long the same work would take on N machines with
// per-task startup, per-record compute and per-byte shuffle costs. The
// paper runs its Pig pipelines as Hadoop jobs on Amazon EMR with 2–12
// nodes; this engine supplies the same dataflow (input splits → map →
// combine → partition → sort/shuffle → reduce → output) and the runtime
// model behind the paper's Figure 2 scalability study.
package mapreduce

import (
	"fmt"
	"reflect"
	"time"
)

// KeyValue is one record flowing through a job.
type KeyValue struct {
	Key   string
	Value any
}

// MapFunc transforms one input record into zero or more output records.
type MapFunc func(kv KeyValue, emit func(KeyValue)) error

// ReduceFunc folds all values sharing a key into zero or more records.
// It is also the signature of combiners (mini-reducers run on map output).
type ReduceFunc func(key string, values []any, emit func(KeyValue)) error

// PartitionFunc routes a key to one of n reduce partitions.
type PartitionFunc func(key string, n int) int

// DefaultPartition hashes the key (FNV-1a) modulo n. A degenerate
// partition count (n <= 0) returns -1 — out of every valid range — so
// the engine rejects the job with a clean partitioner error instead of
// the integer-divide panic a bare modulo would hit.
func DefaultPartition(key string, n int) int {
	if n <= 0 {
		return -1
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// InputSplit is one unit of map-task work.
type InputSplit struct {
	Records []KeyValue
	// Hosts are the simulated nodes holding the split's data; the
	// scheduler prefers running the map task there (data locality).
	Hosts []int
	// Bytes approximates the split's on-disk size for the cost model.
	Bytes int
}

// InputSource yields input splits for a job.
type InputSource interface {
	Splits() ([]InputSplit, error)
}

// MemoryInput serves in-memory records chunked into equally sized splits.
type MemoryInput struct {
	Records   []KeyValue
	SplitSize int // records per split; 0 means one split
}

// Splits chunks the records.
func (m MemoryInput) Splits() ([]InputSplit, error) {
	size := m.SplitSize
	if size <= 0 {
		size = len(m.Records)
	}
	if size == 0 {
		size = 1
	}
	var splits []InputSplit
	for off := 0; off < len(m.Records); off += size {
		end := off + size
		if end > len(m.Records) {
			end = len(m.Records)
		}
		chunk := m.Records[off:end]
		b := 0
		for _, kv := range chunk {
			b += len(kv.Key) + approxValueBytes(kv.Value)
		}
		splits = append(splits, InputSplit{Records: chunk, Bytes: b})
	}
	// An empty input yields zero splits (no phantom map task); Run
	// short-circuits a splitless job to an empty result at zero cost.
	return splits, nil
}

// Sizer lets a user value type report its serialized size to the shuffle
// accounting (split sizing, shuffle.bytes, spill-buffer budgeting).
// Implement it on heavy custom payloads where the reflective estimate is
// either wrong or too slow for the emit hot path.
type Sizer interface {
	SizeBytes() int
}

// approxValueBytes estimates serialized size for the cost model. Known
// concrete types are sized directly; a type implementing Sizer reports
// itself; anything else (named slice types, structs, tuples) is walked
// reflectively so struct- and slice-valued jobs charge shuffle bytes
// proportional to their payload instead of a flat constant.
func approxValueBytes(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case string:
		return len(x)
	case []byte:
		return len(x)
	case []uint64:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case int, int64, uint64, float64:
		return 8
	}
	if s, ok := v.(Sizer); ok {
		return s.SizeBytes()
	}
	return reflectValueBytes(reflect.ValueOf(v), maxSizeDepth)
}

// maxSizeDepth bounds the reflective size walk: deeply nested (or cyclic,
// via pointers) values are truncated to a word per unexplored branch.
const maxSizeDepth = 12

// reflectValueBytes walks rv summing an approximate wire size. It never
// calls Interface(), so unexported struct fields (common in job payload
// tuples) are sized like exported ones.
func reflectValueBytes(rv reflect.Value, depth int) int {
	if !rv.IsValid() {
		return 0
	}
	if depth <= 0 {
		return 8
	}
	switch rv.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64,
		reflect.Uintptr, reflect.Float64, reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return rv.Len()
	case reflect.Slice, reflect.Array:
		n := rv.Len()
		if n == 0 {
			return 0
		}
		// Fixed-size element kinds are sized without visiting each element.
		switch rv.Type().Elem().Kind() {
		case reflect.Bool, reflect.Int8, reflect.Uint8:
			return n
		case reflect.Int16, reflect.Uint16:
			return 2 * n
		case reflect.Int32, reflect.Uint32, reflect.Float32:
			return 4 * n
		case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64,
			reflect.Uintptr, reflect.Float64:
			return 8 * n
		}
		total := 0
		for i := 0; i < n; i++ {
			total += reflectValueBytes(rv.Index(i), depth-1)
		}
		return total
	case reflect.Map:
		total := 0
		iter := rv.MapRange()
		for iter.Next() {
			total += reflectValueBytes(iter.Key(), depth-1)
			total += reflectValueBytes(iter.Value(), depth-1)
		}
		return total
	case reflect.Ptr, reflect.Interface:
		if rv.IsNil() {
			return 0
		}
		return reflectValueBytes(rv.Elem(), depth-1)
	case reflect.Struct:
		total := 0
		for i := 0; i < rv.NumField(); i++ {
			total += reflectValueBytes(rv.Field(i), depth-1)
		}
		return total
	default:
		return 8
	}
}

// Validate rejects malformed jobs before execution.
func (j *Job) Validate() error {
	if j.Input == nil {
		return fmt.Errorf("mapreduce: job %q has no input", j.Name)
	}
	if j.Map == nil {
		return fmt.Errorf("mapreduce: job %q has no map function", j.Name)
	}
	if j.NumReducers < 0 {
		return fmt.Errorf("mapreduce: job %q has negative reducer count", j.Name)
	}
	if j.Combine != nil && j.Reduce == nil {
		return fmt.Errorf("mapreduce: job %q has a combiner but no reducer", j.Name)
	}
	return nil
}

// AttemptOutcome classifies how one task attempt ended on the simulated
// cluster.
type AttemptOutcome uint8

// Attempt outcomes.
const (
	// AttemptSuccess: the attempt ran to completion; its output is the
	// task's output.
	AttemptSuccess AttemptOutcome = iota
	// AttemptCrashed: an injected fault failed the attempt; it counts
	// against the task's retry budget and the node's blacklist threshold.
	AttemptCrashed
	// AttemptKilled: the attempt was lost through no fault of its own
	// (node death, or a completed map whose output was lost before the
	// shuffle drained). Killed attempts do not consume the retry budget,
	// matching Hadoop's KILLED vs FAILED distinction.
	AttemptKilled
)

// String names the outcome for traces and errors.
func (o AttemptOutcome) String() string {
	switch o {
	case AttemptSuccess:
		return "success"
	case AttemptCrashed:
		return "crashed"
	case AttemptKilled:
		return "killed"
	default:
		return "unknown"
	}
}

// TaskAttempt is one scheduled attempt on the job's virtual timeline
// (times are relative to the end of job startup). The full attempt log of
// a faulted run is exposed on Result for tests and trace export.
type TaskAttempt struct {
	// Phase is faults.PhaseMap or faults.PhaseReduce.
	Phase string
	// Task indexes the task within its phase; Attempt is 1-based.
	Task    int
	Attempt int
	// Node and Slot locate the simulated machine.
	Node int
	Slot int
	// Start and End bound the attempt on the job-relative virtual clock.
	Start   time.Duration
	End     time.Duration
	Outcome AttemptOutcome
	// Reason explains non-success outcomes ("injected crash", "node 2
	// died", "map output lost").
	Reason string
	// Speculative marks a backup attempt launched for a modelled
	// straggler (Cluster.Speculative).
	Speculative bool
}

// RetryPolicy governs task recovery on the simulated cluster, mirroring
// Hadoop's mapred.map/reduce.max.attempts and host blacklisting.
type RetryPolicy struct {
	// MaxAttempts is the per-task attempt budget including the first run
	// (Hadoop default 4). Crashed attempts consume it; killed ones do not.
	MaxAttempts int
	// Backoff is the virtual-time delay before the first retry; each
	// further retry multiplies it by BackoffFactor (exponential backoff).
	Backoff time.Duration
	// BackoffFactor defaults to 2.
	BackoffFactor float64
	// MaxBackoff caps the exponential growth: no single retry delay
	// exceeds it, however many attempts have failed. 0 means
	// DefaultRetryPolicy.MaxBackoff; a task that legitimately needs
	// uncapped growth can set it to a huge value, but an uncapped
	// default turns a long retry tail into hours of virtual idle time.
	MaxBackoff time.Duration
	// BlacklistAfter is how many crashed attempts on one node blacklist it
	// for the rest of the job (Hadoop's mapred.max.tracker.failures). The
	// last usable node is never blacklisted.
	BlacklistAfter int
}

// DefaultRetryPolicy mirrors a stock Hadoop configuration.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts:    4,
	Backoff:        3 * time.Second,
	BackoffFactor:  2,
	MaxBackoff:     60 * time.Second,
	BlacklistAfter: 3,
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryPolicy.Backoff
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = DefaultRetryPolicy.BackoffFactor
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	if p.BlacklistAfter <= 0 {
		p.BlacklistAfter = DefaultRetryPolicy.BlacklistAfter
	}
	return p
}

// BackoffFor returns the capped exponential delay before the retry that
// follows the n-th crashed attempt (n >= 1): Backoff*BackoffFactor^(n-1),
// never exceeding MaxBackoff (when set). Seeded jitter is layered on top
// by the fault simulator via faults.Backoff.
func (p RetryPolicy) BackoffFor(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	d := float64(p.Backoff)
	for i := 1; i < n; i++ {
		d *= p.BackoffFactor
		if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	return time.Duration(d)
}

// TaskFailedError reports a job killed because one task exhausted its
// retry budget (or ran out of usable nodes) — the simulated analogue of
// Hadoop's "Task failed N times" job failure. Use errors.As to detect it.
type TaskFailedError struct {
	Job      string
	Phase    string
	Task     int
	Attempts int
	Reason   string
}

// Error formats the failure Hadoop-style.
func (e *TaskFailedError) Error() string {
	return fmt.Sprintf("mapreduce: job %q %s task %d failed after %d attempts: %s",
		e.Job, e.Phase, e.Task, e.Attempts, e.Reason)
}

// Job specifies one MapReduce computation.
type Job struct {
	Name  string
	Input InputSource
	Map   MapFunc
	// Combine optionally pre-aggregates map output per task.
	Combine ReduceFunc
	// Reduce folds shuffled groups; nil makes the job map-only (map output
	// is the job output, no shuffle).
	Reduce ReduceFunc
	// NumReducers defaults to the cluster node count.
	NumReducers int
	// Partition defaults to DefaultPartition.
	Partition PartitionFunc
	// MapCostFactor/ReduceCostFactor scale the modelled per-record compute
	// cost of this job's tasks relative to the cost model baseline
	// (1.0 when zero). Heavy UDFs (e.g. all-pairs similarity rows) set >1.
	MapCostFactor    float64
	ReduceCostFactor float64
	// ShuffleBufferBytes caps the map-side sort buffer (Hadoop's
	// io.sort.mb). 0 — the default — keeps the fully in-memory shuffle:
	// every map output is materialized and each reduce partition is
	// sorted whole. A positive cap switches the job to the external
	// shuffle: map output accumulates in a per-task buffer of
	// approximately this many bytes, each overflow is sorted, partitioned
	// and spilled as a segment (running the combiner per spill, as Hadoop
	// does), and reducers stream a k-way merge over the segments instead
	// of holding a partition in memory. Output is bit-identical between
	// the two paths for combiner-less jobs and for jobs whose combiner is
	// associative and commutative.
	ShuffleBufferBytes int
	// MergeFanIn caps how many spill segments one reducer merge pass
	// reads (Hadoop's io.sort.factor); more segments force intermediate
	// merge passes, each charged spill I/O. 0 means DefaultMergeFanIn.
	MergeFanIn int
}
