package mapreduce

import (
	"fmt"
	"math"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
)

// Fault-aware virtual scheduling. When an Engine carries a faults.Injector
// the per-phase list scheduler in costmodel.go is replaced by this
// simulator, which models Hadoop's recovery machinery on the virtual
// clock: task attempts crash and retry with exponential backoff, nodes
// die at planned virtual times (killing their running attempts), nodes
// accumulating too many failures are blacklisted, and completed map tasks
// whose node dies before the shuffle drains are re-executed — Hadoop's
// most distinctive recovery rule. Everything is deterministic: decisions
// come from the seeded injector and scheduling is a pure function of the
// task costs, so a faulted run yields bit-identical job output (recovery
// is lossless) at a larger virtual makespan.

// neverDies marks a node with no planned death.
const neverDies = time.Duration(math.MaxInt64)

// simTask tracks one task's recovery state across attempts.
type simTask struct {
	id      int
	cost    TaskCost
	attempt int           // attempts so far
	crashes int           // crashed attempts so far (retry budget consumed)
	readyAt time.Duration // earliest start of the next attempt
	done    bool
	end     time.Duration // completion time of the final attempt
	node    int           // node of the final attempt
	final   int           // index into faultSim.attempts of the final attempt
}

// faultSim schedules one job's phases under fault injection. One value is
// used per Run call; it is driven from a single goroutine.
type faultSim struct {
	c       Cluster
	inj     *faults.Injector
	pol     RetryPolicy
	jobName string

	slotFree    []time.Duration
	deadAt      []time.Duration // per node, job-relative; neverDies if none
	blacklisted []bool
	nodeCrashes []int

	attempts    []TaskAttempt
	reexecuted  int // map tasks re-executed after losing their node
	blacklistCt int
	speculative int // backup attempts launched for modelled stragglers
}

// newFaultSim builds the simulator for a job starting at global virtual
// time vbase (death times in the plan are on the global clock; the job's
// task timeline starts after JobStartup).
func newFaultSim(c Cluster, inj *faults.Injector, pol RetryPolicy, jobName string, vbase time.Duration) *faultSim {
	s := &faultSim{
		c:           c,
		inj:         inj,
		pol:         pol.withDefaults(),
		jobName:     jobName,
		slotFree:    make([]time.Duration, c.TotalSlots()),
		deadAt:      make([]time.Duration, c.Nodes),
		blacklisted: make([]bool, c.Nodes),
		nodeCrashes: make([]int, c.Nodes),
	}
	for n := 0; n < c.Nodes; n++ {
		s.deadAt[n] = neverDies
		if at, ok := inj.DeathOf(n); ok {
			rel := at - vbase - c.Cost.JobStartup
			if rel < 0 {
				rel = 0
			}
			s.deadAt[n] = rel
		}
	}
	return s
}

// newTasks wraps phase costs as recovery state, ready at startAt.
func (s *faultSim) newTasks(costs []TaskCost, startAt time.Duration) []*simTask {
	tasks := make([]*simTask, len(costs))
	for i, c := range costs {
		tasks[i] = &simTask{id: i, cost: c, readyAt: startAt, node: -1, final: -1}
	}
	return tasks
}

// barrier holds every slot until t — the map→reduce phase boundary, as in
// the fault-free scheduler where reduces start at the map makespan.
func (s *faultSim) barrier(t time.Duration) {
	for i := range s.slotFree {
		if s.slotFree[i] < t {
			s.slotFree[i] = t
		}
	}
}

// runPhase schedules every pending task of one phase to completion,
// injecting crashes and node deaths, until all succeed or one exhausts
// its retry budget (a *TaskFailedError, which fails the job).
func (s *faultSim) runPhase(phase string, tasks []*simTask) error {
	pending := make([]*simTask, 0, len(tasks))
	for _, t := range tasks {
		if !t.done {
			pending = append(pending, t)
		}
	}
	// Safety valve: attempts are bounded by the retry budget plus one kill
	// per planned death, but guard against scheduler bugs looping forever.
	maxTotal := len(pending)*(s.pol.MaxAttempts+len(s.inj.NodeDeaths())+2) + 16
	for placed := 0; len(pending) > 0; placed++ {
		if placed > maxTotal {
			return fmt.Errorf("mapreduce: fault simulator exceeded %d attempts in job %q %s phase", maxTotal, s.jobName, phase)
		}
		// Next task: earliest ready; ties longest-processing-time, then id
		// (matching the fault-free scheduler's LPT order).
		best := 0
		for i := 1; i < len(pending); i++ {
			a, b := pending[i], pending[best]
			switch {
			case a.readyAt != b.readyAt:
				if a.readyAt < b.readyAt {
					best = i
				}
			case a.cost.Duration != b.cost.Duration:
				if a.cost.Duration > b.cost.Duration {
					best = i
				}
			case a.id < b.id:
				best = i
			}
		}
		t := pending[best]
		att, idx, err := s.place(phase, t)
		if err != nil {
			return err
		}
		switch att.Outcome {
		case AttemptSuccess:
			t.done = true
			t.end = att.End
			t.node = att.Node
			t.final = idx
			pending = append(pending[:best], pending[best+1:]...)
		case AttemptCrashed:
			if t.crashes >= s.pol.MaxAttempts {
				return &TaskFailedError{
					Job: s.jobName, Phase: phase, Task: t.id,
					Attempts: t.attempt, Reason: att.Reason,
				}
			}
			// Capped exponential virtual-time backoff before the retry,
			// de-synchronized by seeded jitter (a pure function of the
			// retry site, so faulted makespans stay reproducible).
			backoff := s.pol.BackoffFor(t.crashes)
			site := fmt.Sprintf("retry/%s/%s/%d", s.jobName, phase, t.id)
			t.readyAt = att.End + backoff +
				faults.Jitter(s.inj.Plan().Seed, site, t.crashes, backoff/2)
		case AttemptKilled:
			// Node loss is not the task's fault: retry immediately.
			t.readyAt = att.End
		}
	}
	return nil
}

// place schedules one attempt of t: picks the earliest-available slot on a
// usable node, asks the injector whether the attempt crashes, and resolves
// crash vs node-death ordering. It returns the attempt that completes the
// task's state transition plus its index in s.attempts — with speculative
// execution the returned attempt may be a backup, not the one placed here.
func (s *faultSim) place(phase string, t *simTask) (TaskAttempt, int, error) {
	bestSlot := -1
	var bestStart time.Duration
	for slot := 0; slot < len(s.slotFree); slot++ {
		node := slot / s.c.SlotsPerNode
		if s.blacklisted[node] {
			continue
		}
		start := s.slotFree[slot]
		if start < t.readyAt {
			start = t.readyAt
		}
		if s.deadAt[node] <= start {
			continue // node is gone before this attempt could launch
		}
		if bestSlot < 0 || start < bestStart {
			bestSlot, bestStart = slot, start
			continue
		}
		if start == bestStart &&
			s.c.slotPreferred(slot, t.cost.PreferredHosts) &&
			!s.c.slotPreferred(bestSlot, t.cost.PreferredHosts) {
			bestSlot = slot
		}
	}
	if bestSlot < 0 {
		return TaskAttempt{}, -1, &TaskFailedError{
			Job: s.jobName, Phase: phase, Task: t.id, Attempts: t.attempt,
			Reason: "no usable cluster nodes (all dead or blacklisted)",
		}
	}
	node := bestSlot / s.c.SlotsPerNode
	t.attempt++

	// Nominal duration: straggler model (shared with the fault-free
	// scheduler) dilated by the injector's slow-node factor.
	dur := time.Duration(float64(s.c.effectiveDuration(t.id, t.cost.Duration)) * s.inj.SlowFactor(node))
	if dur < time.Millisecond {
		dur = time.Millisecond
	}
	crash, failPt := s.inj.CrashAttempt(s.jobName, phase, t.id, t.attempt, t.crashes)
	att := TaskAttempt{
		Phase: phase, Task: t.id, Attempt: t.attempt,
		Node: node, Slot: bestSlot,
		Start: bestStart, End: bestStart + dur,
		Outcome: AttemptSuccess,
	}
	if crash {
		crashEnd := bestStart + time.Duration(failPt*float64(dur))
		if crashEnd <= bestStart {
			crashEnd = bestStart + time.Millisecond
		}
		att.End = crashEnd
		att.Outcome = AttemptCrashed
		att.Reason = "injected crash"
	}
	// A node death beats a later (or absent) crash: the attempt dies with
	// the machine.
	if death := s.deadAt[node]; death < att.End {
		att.End = death
		att.Outcome = AttemptKilled
		att.Reason = fmt.Sprintf("node %d died", node)
	}
	s.slotFree[bestSlot] = att.End

	if att.Outcome == AttemptCrashed {
		t.crashes++
		s.nodeCrashes[node]++
		if s.nodeCrashes[node] >= s.pol.BlacklistAfter && !s.blacklisted[node] && s.usableNodesExcept(node, att.End) > 0 {
			s.blacklisted[node] = true
			s.blacklistCt++
		}
	}
	s.attempts = append(s.attempts, att)
	idx := len(s.attempts) - 1

	// Speculative execution: a successful attempt on a modelled straggler
	// node gets a backup copy; the earlier finisher commits through the
	// output committer and the other is KILLED (never FAILED — losing the
	// race consumes no retry budget).
	if att.Outcome == AttemptSuccess && s.c.Speculative && s.inj.SlowFactor(node) > 1 {
		if widx, ok := s.placeBackup(phase, t, idx); ok {
			return s.attempts[widx], widx, nil
		}
	}
	return att, idx, nil
}

// placeBackup launches a speculative copy of t on a node other than the
// straggling primary's. Detection follows the cost model: the straggler
// is flagged one nominal duration after the primary started, and the
// backup runs a fresh copy from there. Whichever attempt finishes first
// wins; the loser is killed at the winner's commit time. Returns the
// winning attempt's index, or ok=false when no backup launches (no
// usable second node, or the backup could not start before the primary
// finishes).
func (s *faultSim) placeBackup(phase string, t *simTask, primaryIdx int) (int, bool) {
	prim := s.attempts[primaryIdx]
	nominal := s.c.effectiveDuration(t.id, t.cost.Duration)
	if nominal < time.Millisecond {
		nominal = time.Millisecond
	}
	detect := prim.Start + nominal
	if detect >= prim.End {
		return 0, false // primary finishes before the straggler is flagged
	}
	bestSlot := -1
	var bestStart time.Duration
	for slot := 0; slot < len(s.slotFree); slot++ {
		node := slot / s.c.SlotsPerNode
		if node == prim.Node || s.blacklisted[node] {
			continue
		}
		start := s.slotFree[slot]
		if start < detect {
			start = detect
		}
		if s.deadAt[node] <= start {
			continue
		}
		if bestSlot < 0 || start < bestStart {
			bestSlot, bestStart = slot, start
		}
	}
	if bestSlot < 0 || bestStart >= prim.End {
		return 0, false // a backup that cannot win is never launched
	}
	bnode := bestSlot / s.c.SlotsPerNode
	t.attempt++
	bdur := time.Duration(float64(nominal) * s.inj.SlowFactor(bnode))
	if bdur < time.Millisecond {
		bdur = time.Millisecond
	}
	batt := TaskAttempt{
		Phase: phase, Task: t.id, Attempt: t.attempt,
		Node: bnode, Slot: bestSlot,
		Start: bestStart, End: bestStart + bdur,
		Outcome: AttemptSuccess, Speculative: true,
	}
	if death := s.deadAt[bnode]; death < batt.End {
		batt.End = death
		batt.Outcome = AttemptKilled
		batt.Reason = fmt.Sprintf("node %d died", bnode)
	}
	s.speculative++
	winner := primaryIdx
	if batt.Outcome == AttemptSuccess && batt.End < prim.End {
		// Backup wins: the primary is killed when the backup commits.
		s.attempts[primaryIdx].Outcome = AttemptKilled
		s.attempts[primaryIdx].End = batt.End
		s.attempts[primaryIdx].Reason = "speculative backup finished first"
		s.slotFree[prim.Slot] = batt.End
		s.attempts = append(s.attempts, batt)
		winner = len(s.attempts) - 1
	} else {
		// Primary wins (or the backup's node died): kill the backup at
		// the primary's commit time.
		if batt.Outcome == AttemptSuccess {
			batt.Outcome = AttemptKilled
			batt.Reason = "speculative attempt lost the race"
			if batt.End > prim.End {
				batt.End = prim.End
			}
		}
		s.attempts = append(s.attempts, batt)
	}
	s.slotFree[bestSlot] = batt.End
	return winner, true
}

// usableNodesExcept counts nodes other than skip still accepting work at
// time now — the guard that keeps blacklisting from stranding the job.
func (s *faultSim) usableNodesExcept(skip int, now time.Duration) int {
	n := 0
	for node := 0; node < s.c.Nodes; node++ {
		if node != skip && !s.blacklisted[node] && s.deadAt[node] > now {
			n++
		}
	}
	return n
}

// reexecuteMapsLostInMapWindow implements Hadoop's rule for node deaths
// during the map phase of a job with reducers: completed map tasks whose
// node died have lost their intermediate output (it lives on local disk,
// not the DFS) and must re-run. Sweeps until no completed map sits on a
// node that died after it finished, extending the map makespan.
func (s *faultSim) reexecuteMapsLostInMapWindow(mapTasks []*simTask) error {
	for {
		mapEnd := maxTaskEnd(mapTasks)
		var redo []*simTask
		for _, d := range s.inj.NodeDeaths() {
			if d.Node >= s.c.Nodes {
				continue
			}
			rel := s.deadAt[d.Node]
			if rel > mapEnd {
				continue // reduce-window death: handled against the shuffle drain
			}
			for _, t := range mapTasks {
				if t.done && t.node == d.Node && t.end <= rel {
					t.done = false
					t.readyAt = rel
					redo = append(redo, t)
				}
			}
		}
		if len(redo) == 0 {
			return nil
		}
		s.reexecuted += len(redo)
		if err := s.runPhase(faults.PhaseMap, redo); err != nil {
			return err
		}
	}
}

// shuffleWindow returns the shuffle interval of a reduce attempt: startup,
// then the partition's bytes at the modelled transfer rate, capped at the
// attempt window (mirrors the trace exporter's phase model).
func (s *faultSim) shuffleWindow(att TaskAttempt, shuffleBytes int) (time.Duration, time.Duration) {
	shufStart := att.Start + s.c.Cost.TaskStartup
	shufDur := time.Duration(float64(shuffleBytes) * float64(s.c.Cost.ShufflePerByte))
	if window := att.End - att.Start - s.c.Cost.TaskStartup; shufDur > window && window > 0 {
		shufDur = window
	}
	return shufStart, shufStart + shufDur
}

// reexecuteMapsLostInShuffle handles node deaths after the map phase: if
// the node held completed map output and at least one reducer had not
// finished fetching (the shuffle had not drained), the lost maps re-run
// and the affected reducers — those still shuffling at the death, or
// started before the re-executed output was back — are killed and rerun
// once the output is available. Deaths are processed in time order so a
// later death sees the repaired schedule.
func (s *faultSim) reexecuteMapsLostInShuffle(mapTasks, reduceTasks []*simTask, shuffleBytes []int) error {
	for _, d := range s.inj.NodeDeaths() {
		if d.Node >= s.c.Nodes {
			continue
		}
		rel := s.deadAt[d.Node]
		mapEnd := maxTaskEnd(mapTasks)
		if rel <= mapEnd {
			continue // map-window death: already handled
		}
		var lost []*simTask
		for _, t := range mapTasks {
			if t.done && t.node == d.Node && t.end <= rel {
				lost = append(lost, t)
			}
		}
		if len(lost) == 0 {
			continue
		}
		// Has the shuffle drained? Check every reducer's fetch window.
		drained := true
		for _, r := range reduceTasks {
			if r.final < 0 {
				continue
			}
			if _, shufEnd := s.shuffleWindow(s.attempts[r.final], shuffleBytes[r.id]); shufEnd > rel {
				drained = false
				break
			}
		}
		if drained {
			continue // every reducer already fetched the lost output
		}
		// Re-execute the lost maps on surviving nodes, from the death time.
		for _, t := range lost {
			t.done = false
			t.readyAt = rel
		}
		s.reexecuted += len(lost)
		if err := s.runPhase(faults.PhaseMap, lost); err != nil {
			return err
		}
		reexecEnd := maxTaskEnd(lost)
		// Reducers that needed the lost output rerun after it is back.
		var redo []*simTask
		for _, r := range reduceTasks {
			if r.final < 0 {
				continue
			}
			att := s.attempts[r.final]
			_, shufEnd := s.shuffleWindow(att, shuffleBytes[r.id])
			if shufEnd <= rel || att.Start >= reexecEnd {
				continue // drained before the death, or fetches repaired output
			}
			abort := rel
			if abort < att.Start {
				abort = att.Start + time.Millisecond
			}
			if abort < att.End {
				s.attempts[r.final].End = abort
			}
			s.attempts[r.final].Outcome = AttemptKilled
			s.attempts[r.final].Reason = fmt.Sprintf("map output lost (node %d died)", d.Node)
			r.done = false
			r.final = -1
			r.readyAt = reexecEnd
			redo = append(redo, r)
		}
		if err := s.runPhase(faults.PhaseReduce, redo); err != nil {
			return err
		}
	}
	return nil
}

// makespan is the finish time of the last completed attempt.
func (s *faultSim) makespan() time.Duration {
	var end time.Duration
	for _, a := range s.attempts {
		if a.End > end {
			end = a.End
		}
	}
	return end
}

// recordCounters publishes the recovery statistics. Every successful
// attempt committed its staged output through the commit protocol and
// every crashed/killed attempt had its staging aborted, so the commit
// counters mirror the attempt outcomes.
func (s *faultSim) recordCounters(c *Counters) {
	var succeeded, failed, killed int64
	for _, a := range s.attempts {
		switch a.Outcome {
		case AttemptSuccess:
			succeeded++
		case AttemptCrashed:
			failed++
		case AttemptKilled:
			killed++
		}
	}
	c.Add(CounterTaskAttempts, int64(len(s.attempts)))
	c.Add(CounterTaskFailures, failed)
	c.Add(CounterTaskKilled, killed)
	c.Add(CounterMapReexecutions, int64(s.reexecuted))
	c.Add(CounterNodesBlacklisted, int64(s.blacklistCt))
	c.Add(CounterSpeculative, int64(s.speculative))
	c.Add(CounterCommitCommitted, succeeded)
	c.Add(CounterCommitAborted, failed+killed)
}

// blacklistedNodes lists blacklisted node ids in order.
func (s *faultSim) blacklistedNodes() []int {
	var out []int
	for node, b := range s.blacklisted {
		if b {
			out = append(out, node)
		}
	}
	return out
}

// maxTaskEnd is the latest completion among done tasks.
func maxTaskEnd(tasks []*simTask) time.Duration {
	var end time.Duration
	for _, t := range tasks {
		if t.done && t.end > end {
			end = t.end
		}
	}
	return end
}
