package mapreduce

import (
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

func committerFS(t *testing.T) *dfs.FileSystem {
	t.Helper()
	return dfs.MustNew(dfs.Config{NumDataNodes: 3, BlockSize: 64, Replication: 2})
}

func TestCommitTaskPromotesAtomically(t *testing.T) {
	fs := committerFS(t)
	oc := NewOutputCommitter(fs, "/out")
	if err := oc.WriteAttemptFile(0, 1, "part-00000", []byte("a\t1\n")); err != nil {
		t.Fatal(err)
	}
	if err := oc.WriteAttemptFile(0, 1, "part-00001", []byte("b\t2\n")); err != nil {
		t.Fatal(err)
	}
	// Staged files live under _temporary and are invisible to readers.
	if got := fs.ListOutputs("/out"); len(got) != 0 {
		t.Fatalf("staged files leaked into the output listing: %v", got)
	}
	if err := oc.CommitTask(0, 1); err != nil {
		t.Fatal(err)
	}
	got := fs.ListOutputs("/out")
	if len(got) != 2 || got[0] != "/out/part-00000" || got[1] != "/out/part-00001" {
		t.Fatalf("commit published %v", got)
	}
	if fs.Exists(oc.AttemptPath(0, 1) + "/part-00000") {
		t.Fatal("staging survived the commit")
	}
}

func TestCommitTaskWithoutStagedOutputFails(t *testing.T) {
	oc := NewOutputCommitter(committerFS(t), "/out")
	if err := oc.CommitTask(3, 1); err == nil {
		t.Fatal("committing an attempt that staged nothing must fail")
	}
}

func TestNoPartialOutputVisible(t *testing.T) {
	fs := committerFS(t)
	oc := NewOutputCommitter(fs, "/out")

	// Attempt 1 stages output and dies before commit: abort discards it.
	if err := oc.WriteAttemptFile(0, 1, "part-00000", []byte("partial junk")); err != nil {
		t.Fatal(err)
	}
	oc.AbortTask(0, 1)
	if got := fs.ListOutputs("/out"); len(got) != 0 {
		t.Fatalf("aborted attempt leaked output: %v", got)
	}

	// Attempt 2 of the same task commits; only its bytes are visible.
	if err := oc.WriteAttemptFile(0, 2, "part-00000", []byte("good\t1\n")); err != nil {
		t.Fatal(err)
	}
	if err := oc.CommitTask(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := oc.CommitJob(); err != nil {
		t.Fatal(err)
	}
	got := fs.ListOutputs("/out")
	if len(got) != 1 || got[0] != "/out/part-00000" {
		t.Fatalf("output listing = %v", got)
	}
	data, err := fs.ReadFile("/out/part-00000")
	if err != nil || string(data) != "good\t1\n" {
		t.Fatalf("committed bytes = %q, %v", data, err)
	}
	// The _SUCCESS marker exists but stays hidden from output listings.
	if !Succeeded(fs, "/out") {
		t.Fatal("no _SUCCESS after CommitJob")
	}
	for _, p := range fs.ListOutputs("/out") {
		if strings.Contains(p, "_SUCCESS") || strings.Contains(p, "_temporary") {
			t.Fatalf("marker or staging visible: %v", p)
		}
	}
}

func TestAbortJobRemovesEverything(t *testing.T) {
	fs := committerFS(t)
	oc := NewOutputCommitter(fs, "/out")
	if err := oc.WriteAttemptFile(0, 1, "part-00000", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := oc.CommitTask(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := oc.WriteAttemptFile(1, 1, "part-00001", []byte("y")); err != nil {
		t.Fatal(err)
	}
	oc.AbortJob()
	if got := fs.List("/out"); len(got) != 0 {
		t.Fatalf("abort left files: %v", got)
	}
	if Succeeded(fs, "/out") {
		t.Fatal("aborted job reports success")
	}
}

func TestCommitterCountersAndSpans(t *testing.T) {
	fs := committerFS(t)
	rec := trace.New()
	counters := NewCounters()
	oc := NewOutputCommitter(fs, "/out")
	oc.SetTrace(rec)
	oc.SetCounters(counters)
	if oc.Dir() != "/out" {
		t.Fatalf("Dir = %q", oc.Dir())
	}
	if err := oc.WriteAttemptFile(0, 1, "part-00000", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := oc.CommitTask(0, 1); err != nil {
		t.Fatal(err)
	}
	oc.AbortTask(1, 1) // aborting with nothing staged is a no-op on disk
	if err := oc.CommitJob(); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get(CounterCommitCommitted); got != 1 {
		t.Fatalf("commit.committed = %d", got)
	}
	if got := counters.Get(CounterCommitAborted); got != 1 {
		t.Fatalf("commit.aborted = %d", got)
	}
	var commits, aborts int
	for _, sp := range rec.Spans() {
		switch sp.Kind {
		case trace.KindCommit:
			commits++
		case trace.KindAbort:
			aborts++
		}
	}
	if commits != 2 || aborts != 1 { // task commit + job commit, one abort
		t.Fatalf("spans: %d commits, %d aborts", commits, aborts)
	}
}

func TestWriteOutputCommitted(t *testing.T) {
	fs := committerFS(t)
	records := []KeyValue{{Key: "a", Value: 1}, {Key: "b", Value: 2}, {Key: "c", Value: 3}}
	if err := WriteOutputCommitted(fs, "/out", records, 2); err != nil {
		t.Fatal(err)
	}
	got := fs.ListOutputs("/out")
	if len(got) != 2 {
		t.Fatalf("parts = %v", got)
	}
	if !Succeeded(fs, "/out") {
		t.Fatal("no _SUCCESS marker")
	}
	var all []string
	for _, p := range got {
		lines, err := fs.ReadLines(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, lines...)
	}
	want := []string{"a\t1", "b\t2", "c\t3"}
	if len(all) != len(want) {
		t.Fatalf("lines = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, all[i], want[i])
		}
	}

	// Zero records still commit an empty part plus the marker.
	if err := WriteOutputCommitted(fs, "/empty", nil, 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.ListOutputs("/empty"); len(got) != 1 {
		t.Fatalf("empty job parts = %v", got)
	}
	if !Succeeded(fs, "/empty") {
		t.Fatal("empty job missing _SUCCESS")
	}
}
