package mapreduce

import (
	"testing"
	"time"
)

// stragglerTasks builds a uniform task list long enough that the
// deterministic straggler pick lands several times.
func stragglerTasks(n int, d time.Duration) []TaskCost {
	tasks := make([]TaskCost, n)
	for i := range tasks {
		tasks[i] = TaskCost{Duration: d}
	}
	return tasks
}

func stragglerCluster(speculative bool) Cluster {
	cost := DefaultCostModel
	cost.StragglerFraction = 0.08
	cost.StragglerSlowdown = 6
	return Cluster{Nodes: 4, SlotsPerNode: 2, Cost: cost, Speculative: speculative}
}

func TestStragglersExtendMakespan(t *testing.T) {
	tasks := stragglerTasks(64, 10*time.Second)
	clean := Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel}
	base := clean.Makespan(tasks)
	slow := stragglerCluster(false).Makespan(tasks)
	if slow <= base {
		t.Fatalf("stragglers did not extend makespan: %v vs %v", slow, base)
	}
}

func TestSpeculativeExecutionRecoversMostOfTheTail(t *testing.T) {
	tasks := stragglerTasks(64, 10*time.Second)
	noSpec := stragglerCluster(false).Makespan(tasks)
	spec := stragglerCluster(true).Makespan(tasks)
	if spec >= noSpec {
		t.Fatalf("speculation did not help: %v vs %v", spec, noSpec)
	}
	clean := Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel}
	base := clean.Makespan(tasks)
	// Speculation should close most of the gap to the clean makespan.
	if float64(spec-base) > 0.6*float64(noSpec-base) {
		t.Fatalf("speculation recovered too little: base=%v spec=%v noSpec=%v", base, spec, noSpec)
	}
}

func TestStragglerModelDisabledByDefault(t *testing.T) {
	tasks := stragglerTasks(16, time.Second)
	c := Cluster{Nodes: 2, SlotsPerNode: 2, Cost: DefaultCostModel}
	if c.Makespan(tasks) != c.Makespan(tasks) {
		t.Fatal("makespan not deterministic")
	}
	// Zero fraction and slowdown <= 1 both disable the model.
	cost := DefaultCostModel
	cost.StragglerFraction = 0.5
	cost.StragglerSlowdown = 1
	c2 := Cluster{Nodes: 2, SlotsPerNode: 2, Cost: cost}
	if c2.Makespan(tasks) != c.Makespan(tasks) {
		t.Fatal("slowdown=1 should be inert")
	}
}

func TestIsStragglerFractionRoughlyHonored(t *testing.T) {
	n := 10000
	hits := 0
	for i := 0; i < n; i++ {
		if isStraggler(i, 0.1) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("straggler fraction %.3f, want ~0.10", frac)
	}
	// Deterministic.
	if isStraggler(42, 0.1) != isStraggler(42, 0.1) {
		t.Fatal("straggler pick not deterministic")
	}
}

func TestEngineRunsWithStragglerModel(t *testing.T) {
	e := MustEngine(stragglerCluster(true))
	res, err := e.Run(wordCountJob([]string{"a b", "b c", "c d"}, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Virtual <= 0 {
		t.Fatal("no virtual time")
	}
}
