package mapreduce

import (
	"reflect"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/faults"
)

// slowNodePlan dilates node 1 heavily so every attempt landing there is a
// straggler the speculative scheduler should back up.
func slowNodePlan() faults.Plan {
	return faults.Plan{SlowNodes: []faults.SlowNode{{Node: 1, Factor: 6}}}
}

func speculativeEngine(t *testing.T, speculative bool) *Engine {
	t.Helper()
	c := chaosCluster
	c.Speculative = speculative
	e := MustEngine(c)
	e.Faults = faults.MustNew(slowNodePlan())
	return e
}

func TestSpeculativeBackupsLaunchOnSlowNodes(t *testing.T) {
	lines := manyLines(24)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := speculativeEngine(t, true).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	// Speculation never changes job output.
	if !reflect.DeepEqual(baseline.Output, res.Output) {
		t.Fatal("speculative run changed job output")
	}
	spec := res.Counters.Get(CounterSpeculative)
	if spec == 0 {
		t.Fatal("no speculative backups launched despite a 6x slow node")
	}
	var backups int
	for _, a := range res.Attempts {
		if a.Speculative {
			backups++
		}
	}
	if int64(backups) != spec {
		t.Fatalf("attempt log has %d backups, counter says %d", backups, spec)
	}
}

func TestSpeculativeLoserKilledNotFailed(t *testing.T) {
	res, err := speculativeEngine(t, true).Run(wordCountJob(manyLines(24), false))
	if err != nil {
		t.Fatal(err)
	}
	// Group attempts per (phase, task); wherever a backup ran, exactly one
	// attempt succeeds and the race's loser is KILLED — losing a race never
	// consumes retry budget, so no speculative pair may contain a failure.
	type key struct {
		phase string
		task  int
	}
	byTask := map[key][]TaskAttempt{}
	for _, a := range res.Attempts {
		k := key{a.Phase, a.Task}
		byTask[k] = append(byTask[k], a)
	}
	checked := 0
	for k, atts := range byTask {
		hasBackup := false
		for _, a := range atts {
			if a.Speculative {
				hasBackup = true
			}
		}
		if !hasBackup {
			continue
		}
		checked++
		var success, killed, crashed int
		for _, a := range atts {
			switch a.Outcome {
			case AttemptSuccess:
				success++
			case AttemptKilled:
				killed++
			case AttemptCrashed:
				crashed++
			}
		}
		if success != 1 {
			t.Fatalf("task %v: %d successes among %v", k, success, atts)
		}
		if crashed != 0 {
			t.Fatalf("task %v: race loser marked FAILED", k)
		}
		if killed == 0 {
			t.Fatalf("task %v: no attempt killed in a speculative pair", k)
		}
		// The loser dies when the winner commits, never after.
		var winEnd int64 = -1
		for _, a := range atts {
			if a.Outcome == AttemptSuccess {
				winEnd = int64(a.End)
			}
		}
		for _, a := range atts {
			if a.Outcome == AttemptKilled && int64(a.End) > winEnd {
				t.Fatalf("task %v: loser outlived the winner's commit", k)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no speculative pairs to check")
	}
	// Commit counters mirror the outcomes: only winners committed.
	var succeeded, others int64
	for _, a := range res.Attempts {
		if a.Outcome == AttemptSuccess {
			succeeded++
		} else {
			others++
		}
	}
	if got := res.Counters.Get(CounterCommitCommitted); got != succeeded {
		t.Fatalf("commit.committed = %d, want %d", got, succeeded)
	}
	if got := res.Counters.Get(CounterCommitAborted); got != others {
		t.Fatalf("commit.aborted = %d, want %d", got, others)
	}
}

func TestSpeculationShortensSlowNodeMakespan(t *testing.T) {
	lines := manyLines(24)
	without, err := speculativeEngine(t, false).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	with, err := speculativeEngine(t, true).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	if with.Virtual >= without.Virtual {
		t.Fatalf("speculation did not shorten the makespan: %v vs %v", with.Virtual, without.Virtual)
	}
	if without.Counters.Get(CounterSpeculative) != 0 {
		t.Fatal("backups launched with speculation disabled")
	}
}
