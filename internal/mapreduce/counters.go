package mapreduce

import (
	"sort"
	"sync"
)

// Counters collects named job statistics, Hadoop-style.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the value of counter name.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the defined counter names, sorted.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Built-in counter names maintained by the engine.
const (
	CounterMapInputRecords    = "map.input.records"
	CounterMapOutputRecords   = "map.output.records"
	CounterCombineInput       = "combine.input.records"
	CounterCombineOutput      = "combine.output.records"
	CounterReduceInputGroups  = "reduce.input.groups"
	CounterReduceInputRecords = "reduce.input.records"
	CounterReduceOutput       = "reduce.output.records"
	CounterShuffleBytes       = "shuffle.bytes"
)

// External-shuffle counter names, maintained when Job.ShuffleBufferBytes
// caps the map-side sort buffer (all zero on the in-memory path).
const (
	// CounterShuffleSpills counts map-side spill events: every flush of a
	// full sort buffer plus each task's final flush.
	CounterShuffleSpills = "shuffle.spills"
	// CounterShuffleSpilledBytes totals the approximate bytes written to
	// simulated local disk across all spills.
	CounterShuffleSpilledBytes = "shuffle.spilled_bytes"
	// CounterShuffleMergePasses counts reducer merge passes (intermediate
	// passes forced by MergeFanIn plus the final streaming pass of every
	// partition with at least one segment).
	CounterShuffleMergePasses = "shuffle.merge_passes"
)

// Recovery counter names, maintained by the fault-aware scheduler when an
// injector is attached (all zero on fault-free runs).
const (
	// CounterTaskAttempts counts every scheduled attempt, retries and
	// re-executions included.
	CounterTaskAttempts = "task.attempts"
	// CounterTaskFailures counts attempts that crashed (consuming retry
	// budget).
	CounterTaskFailures = "task.failures"
	// CounterTaskKilled counts attempts lost to node deaths or discarded
	// map output — Hadoop's KILLED state.
	CounterTaskKilled = "task.killed"
	// CounterMapReexecutions counts completed map tasks re-executed after
	// their node died before the shuffle drained.
	CounterMapReexecutions = "map.reexecutions"
	// CounterNodesBlacklisted counts nodes blacklisted during the job.
	CounterNodesBlacklisted = "node.blacklisted"
	// CounterSpeculative counts backup attempts launched for modelled
	// stragglers when Cluster.Speculative is set.
	CounterSpeculative = "task.speculative"
)

// Commit-protocol counter names, maintained by the OutputCommitter.
const (
	// CounterCommitCommitted counts task attempts whose staged output was
	// atomically promoted into the job output directory.
	CounterCommitCommitted = "commit.committed"
	// CounterCommitAborted counts attempts whose staging directory was
	// discarded (crashed, killed, or speculative losers).
	CounterCommitAborted = "commit.aborted"
)
