package mapreduce

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"
)

// benchWords is a zipf-ish vocabulary so reducer groups have realistic
// skew: a few heavy keys, a long tail of light ones.
func benchWords(n int, rng *rand.Rand) []string {
	vocab := make([]string, 64)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = vocab[rng.Intn(1+rng.Intn(len(vocab)))]
	}
	return out
}

// benchShuffle runs the canonical wordcount over ~2k records per
// iteration with the given shuffle configuration.
func benchShuffle(b *testing.B, bufBytes, fanIn int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	words := benchWords(2048, rng)
	lines := make([]string, 256)
	for i := range lines {
		lines[i] = strings.Join(words[i*8:(i+1)*8], " ")
	}
	e := MustEngine(DefaultCluster)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := wordCountJob(lines, false)
		job.ShuffleBufferBytes = bufBytes
		job.MergeFanIn = fanIn
		if _, err := e.Run(job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffleInMemory(b *testing.B) { benchShuffle(b, 0, 0) }

// 4K holds a whole task's output: one final-flush spill per map task.
func BenchmarkShuffleSpill4K(b *testing.B) { benchShuffle(b, 4<<10, 0) }

// 64 bytes forces a spill every few records: many segments per reducer.
func BenchmarkShuffleSpill64(b *testing.B) { benchShuffle(b, 64, 0) }

// Fan-in 2 on the 64-byte segments adds intermediate merge passes.
func BenchmarkShuffleSpillFanIn2(b *testing.B) { benchShuffle(b, 64, 2) }

// benchPartition builds one reducer partition's worth of records.
func benchPartition(n int) []KeyValue {
	rng := rand.New(rand.NewSource(2))
	words := benchWords(n, rng)
	recs := make([]KeyValue, n)
	for i, w := range words {
		recs[i] = KeyValue{Key: w, Value: 1}
	}
	return recs
}

// BenchmarkPartitionSortSliceStable is the reducer sort the engine shipped
// with: reflection-based sort.SliceStable. Kept as the baseline for the
// slices.SortStableFunc migration below (see BENCH_shuffle.json).
func BenchmarkPartitionSortSliceStable(b *testing.B) {
	recs := benchPartition(8192)
	scratch := make([]KeyValue, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, recs)
		sort.SliceStable(scratch, func(i, j int) bool { return scratch[i].Key < scratch[j].Key })
	}
}

// BenchmarkPartitionSortStableFunc is the current reducer sort: generic
// slices.SortStableFunc with a strings.Compare comparator.
func BenchmarkPartitionSortStableFunc(b *testing.B) {
	recs := benchPartition(8192)
	scratch := make([]KeyValue, len(recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, recs)
		slices.SortStableFunc(scratch, func(x, y KeyValue) int { return strings.Compare(x.Key, y.Key) })
	}
}

// BenchmarkMergeRuns streams a 16-way merge of pre-sorted spill runs.
func BenchmarkMergeRuns(b *testing.B) {
	const runs, perRun = 16, 512
	segs := make([][]spillRecord, runs)
	for r := range segs {
		recs := make([]spillRecord, perRun)
		words := benchWords(perRun, rand.New(rand.NewSource(int64(r))))
		for i, w := range words {
			recs[i] = spillRecord{kv: KeyValue{Key: w, Value: 1}, seq: int64(r)<<40 | int64(i)}
		}
		slices.SortFunc(recs, compareSpill)
		segs[r] = recs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := mergeRuns(segs, func(spillRecord) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != runs*perRun {
			b.Fatalf("merged %d records, want %d", n, runs*perRun)
		}
	}
}
