package mapreduce

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// Result is the outcome of one job.
type Result struct {
	// Output holds the job's records. For jobs with a reducer the records
	// are grouped by partition and sorted by key within each partition
	// (Hadoop part-file order); for map-only jobs they follow input order.
	Output []KeyValue
	// Counters are the engine and user counters.
	Counters *Counters
	// Virtual is the modelled wall time on the simulated cluster.
	Virtual time.Duration
	// Real is the measured execution time on this machine.
	Real       time.Duration
	MapTasks   int
	ReduceTask int
	// Attempts is the full attempt log of a faulted run (nil when the
	// engine has no injector): every scheduled attempt with its node,
	// virtual window and outcome, re-executions included.
	Attempts []TaskAttempt
	// Blacklisted lists nodes blacklisted during the job.
	Blacklisted []int
}

// Engine executes jobs on a simulated cluster.
type Engine struct {
	Cluster Cluster
	// Workers caps real goroutine parallelism; 0 means
	// min(GOMAXPROCS, cluster slots). Run snapshots this value once at
	// entry: mutating Workers while a job is in flight does not affect
	// that job, only jobs started afterwards. (Counters needs no such
	// guard — it is mutex-protected and owned per Run call.)
	Workers int
	// Trace, when non-nil, receives one span per job, map task, combine,
	// shuffle partition transfer, sort and reduce task on the virtual
	// cluster timeline. A nil recorder costs nothing (all emission is
	// guarded, and trace methods are nil-safe no-ops).
	Trace *trace.Recorder
	// Faults, when non-nil and non-empty, switches virtual scheduling to
	// the fault-aware simulator: injected task crashes retry with backoff,
	// planned node deaths kill running attempts and force re-execution of
	// completed maps, and failing nodes are blacklisted — all per Retry.
	// Job output is unaffected (recovery is lossless); only the virtual
	// timeline, counters and trace change.
	Faults *faults.Injector
	// Retry governs attempt budgets, backoff and blacklisting when Faults
	// is set; the zero value means DefaultRetryPolicy.
	Retry RetryPolicy
}

// NewEngine returns an engine for the cluster.
func NewEngine(c Cluster) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cluster: c}, nil
}

// MustEngine is NewEngine panicking on error.
func MustEngine(c Cluster) *Engine {
	e, err := NewEngine(c)
	if err != nil {
		panic(err)
	}
	return e
}

// workerCount resolves the real parallelism from the Workers field. Run
// calls this exactly once per job (see the Workers invariant above).
func (e *Engine) workerCount() int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if s := e.Cluster.TotalSlots(); s < w {
			w = s
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the job and returns its result.
func (e *Engine) Run(job *Job) (*Result, error) {
	start := time.Now()
	if err := job.Validate(); err != nil {
		return nil, err
	}
	// Snapshot the parallelism once: Workers may be reconfigured between
	// jobs, never observed mid-job.
	workers := e.workerCount()
	rec := e.Trace
	splits, err := job.Input.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q input: %w", job.Name, err)
	}
	counters := NewCounters()
	numRed := job.NumReducers
	if numRed <= 0 {
		numRed = e.Cluster.Nodes
	}
	part := job.Partition
	if part == nil {
		part = DefaultPartition
	}

	jobRef := rec.Begin(trace.KindJob, job.Name)
	defer rec.End(jobRef)
	// vbase anchors this job's task spans on the recorder's virtual clock.
	vbase := rec.VirtualNow()

	// An empty input yields zero splits: no tasks run, the output is empty
	// and nothing is charged to the virtual clock.
	if len(splits) == 0 {
		return &Result{Counters: counters, Real: time.Since(start)}, nil
	}

	// The external shuffle applies only when there is a reduce phase to
	// feed; a map-only job's output never crosses a sort buffer.
	extOn := job.ShuffleBufferBytes > 0 && job.Reduce != nil
	var spillBufs []*mapSpillBuffer
	if extOn {
		spillBufs = make([]*mapSpillBuffer, len(splits))
	}

	// ----- Map phase -----
	mapOuts := make([][]KeyValue, len(splits)) // per map task output
	var mapCosts []TaskCost
	for _, sp := range splits {
		mapCosts = append(mapCosts, e.Cluster.mapTaskCost(sp, job.MapCostFactor))
	}
	// With an injector attached, the fault simulator replaces the plain
	// list scheduler. It runs before the real map work so a task that
	// exhausts its retry budget fails the job up front, as Hadoop would.
	inj := e.Faults
	if !inj.Enabled() {
		inj = nil
	}
	var sim *faultSim
	var simMapTasks []*simTask
	if inj != nil {
		sim = newFaultSim(e.Cluster, inj, e.Retry, job.Name, vbase)
		simMapTasks = sim.newTasks(mapCosts, 0)
		if err := sim.runPhase(faults.PhaseMap, simMapTasks); err != nil {
			return nil, err
		}
		if job.Reduce != nil {
			// Map output lost to a node death during the map window must
			// be recomputed before reducers can fetch it.
			if err := sim.reexecuteMapsLostInMapWindow(simMapTasks); err != nil {
				return nil, err
			}
		}
	}
	// Per-task real durations and combine stats, recorded only when
	// tracing (indexed by task, so no locking needed).
	var mapReal, combineReal []time.Duration
	var combineOut []int64
	if rec.Enabled() {
		mapReal = make([]time.Duration, len(splits))
		combineReal = make([]time.Duration, len(splits))
		combineOut = make([]int64, len(splits))
	}
	if err := e.parallel(workers, len(splits), func(ti int) error {
		var t0 time.Time
		if rec.Enabled() {
			t0 = time.Now()
		}
		sp := splits[ti]
		if extOn {
			// Emit into the task's bounded sort buffer; overflows spill
			// sorted, partitioned segments instead of growing the output.
			buf := newMapSpillBuffer(job, ti, numRed, part, counters)
			spillBufs[ti] = buf
			var spillErr error
			emit := func(kv KeyValue) {
				if spillErr == nil {
					spillErr = buf.add(kv)
				}
			}
			for _, kv := range sp.Records {
				if err := job.Map(kv, emit); err != nil {
					return fmt.Errorf("mapreduce: job %q map task %d: %w", job.Name, ti, err)
				}
				if spillErr != nil {
					return spillErr
				}
			}
			if err := buf.close(); err != nil {
				return err
			}
			counters.Add(CounterMapInputRecords, int64(len(sp.Records)))
			counters.Add(CounterMapOutputRecords, buf.emitted)
			if rec.Enabled() {
				mapReal[ti] = time.Since(t0)
			}
			return nil
		}
		var out []KeyValue
		emit := func(kv KeyValue) { out = append(out, kv) }
		for _, kv := range sp.Records {
			if err := job.Map(kv, emit); err != nil {
				return fmt.Errorf("mapreduce: job %q map task %d: %w", job.Name, ti, err)
			}
		}
		counters.Add(CounterMapInputRecords, int64(len(sp.Records)))
		counters.Add(CounterMapOutputRecords, int64(len(out)))
		if rec.Enabled() {
			mapReal[ti] = time.Since(t0)
			t0 = time.Now()
		}
		if job.Combine != nil {
			combined, err := e.combine(job, out, counters)
			if err != nil {
				return err
			}
			out = combined
			if rec.Enabled() {
				combineReal[ti] = time.Since(t0)
				combineOut[ti] = int64(len(combined))
			}
		}
		mapOuts[ti] = out
		return nil
	}); err != nil {
		return nil, err
	}

	var mapMakespan time.Duration
	mapStart := vbase + e.Cluster.Cost.JobStartup
	if sim == nil {
		mapPlacements, makespan := e.Cluster.Schedule(mapCosts)
		mapMakespan = makespan
		if rec.Enabled() {
			for _, pl := range mapPlacements {
				sp := splits[pl.Task]
				id := rec.Emit(trace.Span{
					Parent:  jobRef.ID,
					Kind:    trace.KindMap,
					Name:    fmt.Sprintf("%s/map[%d]", job.Name, pl.Task),
					Node:    pl.Node,
					Records: int64(len(sp.Records)),
					Bytes:   int64(sp.Bytes),
					VStart:  mapStart + pl.Start,
					VDur:    pl.End - pl.Start,
					RStart:  rec.RealNow(),
					RDur:    mapReal[pl.Task],
				})
				if extOn {
					e.emitSpills(rec, id, job, spillBufs[pl.Task], pl.Task, pl.Node, mapStart+pl.End)
				}
				// On the external path the combiner runs inside each spill,
				// so its work shows up in the spill spans instead.
				if job.Combine != nil && !extOn {
					rec.Emit(trace.Span{
						Parent:  jobRef.ID,
						Kind:    trace.KindCombine,
						Name:    fmt.Sprintf("%s/combine[%d]", job.Name, pl.Task),
						Node:    pl.Node,
						Records: combineOut[pl.Task],
						VStart:  mapStart + pl.End,
						RDur:    combineReal[pl.Task],
					})
				}
			}
		}
	} else {
		mapMakespan = maxTaskEnd(simMapTasks)
		if rec.Enabled() {
			e.emitMapAttempts(rec, jobRef, job, sim, simMapTasks, splits, spillBufs, mapStart, mapReal, combineReal, combineOut)
		}
	}

	// Map-only job: concatenate map outputs in input order.
	if job.Reduce == nil {
		var output []KeyValue
		for _, out := range mapOuts {
			output = append(output, out...)
		}
		res := &Result{
			Output:   output,
			Counters: counters,
			Virtual:  e.Cluster.Cost.JobStartup + mapMakespan,
			Real:     time.Since(start),
			MapTasks: len(splits),
		}
		if sim != nil {
			sim.recordCounters(counters)
			res.Attempts = sim.attempts
			res.Blacklisted = sim.blacklistedNodes()
		}
		rec.AdvanceVirtual(res.Virtual)
		return res, nil
	}

	// ----- Shuffle -----
	// The in-memory path materializes each partition whole and defers the
	// sort to the reducer. The external path already partitioned and
	// sorted the records into spill segments on the map side, so here it
	// only gathers segments (in map-task order, preserving determinism)
	// and plans each reducer's k-way merge schedule.
	var partitions [][]KeyValue
	shuffleBytes := make([]int, numRed)
	partRecords := make([]int, numRed)
	var ext *extShuffle
	if extOn {
		ext = &extShuffle{
			segs:   make([][]spillSegment, numRed),
			steps:  make([][]mergeStep, numRed),
			io:     make([]int64, numRed),
			passes: make([]int, numRed),
		}
		for _, buf := range spillBufs {
			for p := 0; p < numRed; p++ {
				ext.segs[p] = append(ext.segs[p], buf.segs[p]...)
			}
		}
		for p := 0; p < numRed; p++ {
			sizes := make([]int64, len(ext.segs[p]))
			var spillWrite int64
			for i, s := range ext.segs[p] {
				sizes[i] = int64(s.bytes)
				spillWrite += int64(s.bytes)
				shuffleBytes[p] += s.bytes
				partRecords[p] += len(s.recs)
			}
			steps, mergeIO, passes := planMerge(sizes, job.MergeFanIn)
			ext.steps[p] = steps
			// Local-disk traffic charged to this reducer: the map-side
			// segment writes plus every merge-pass read and write.
			ext.io[p] = spillWrite + mergeIO
			ext.passes[p] = passes
		}
	} else {
		partitions = make([][]KeyValue, numRed)
		for _, out := range mapOuts {
			for _, kv := range out {
				p := part(kv.Key, numRed)
				if p < 0 || p >= numRed {
					return nil, fmt.Errorf("mapreduce: job %q partitioner returned %d of %d", job.Name, p, numRed)
				}
				partitions[p] = append(partitions[p], kv)
				shuffleBytes[p] += len(kv.Key) + approxValueBytes(kv.Value)
			}
		}
		for p := range partitions {
			partRecords[p] = len(partitions[p])
		}
	}
	for _, b := range shuffleBytes {
		counters.Add(CounterShuffleBytes, int64(b))
	}

	// ----- Reduce phase -----
	reduceOuts := make([][]KeyValue, numRed)
	var reduceCosts []TaskCost
	for p := 0; p < numRed; p++ {
		var spillIO int64
		if ext != nil {
			spillIO = ext.io[p]
		}
		reduceCosts = append(reduceCosts, e.Cluster.reduceTaskCost(partRecords[p], shuffleBytes[p], spillIO, job.ReduceCostFactor))
	}
	var simReduceTasks []*simTask
	if sim != nil {
		// Simulate reduce recovery before the real reduce work so a
		// reducer that exhausts its retry budget fails the job first.
		sim.barrier(mapMakespan)
		simReduceTasks = sim.newTasks(reduceCosts, mapMakespan)
		if err := sim.runPhase(faults.PhaseReduce, simReduceTasks); err != nil {
			return nil, err
		}
		// Nodes dying during the shuffle lose completed map output; Hadoop
		// re-executes those maps and reruns the fetching reducers.
		if err := sim.reexecuteMapsLostInShuffle(simMapTasks, simReduceTasks, shuffleBytes); err != nil {
			return nil, err
		}
	}
	var reduceReal []time.Duration
	if rec.Enabled() {
		reduceReal = make([]time.Duration, numRed)
	}
	if err := e.parallel(workers, numRed, func(p int) error {
		var t0 time.Time
		if rec.Enabled() {
			t0 = time.Now()
		}
		var out []KeyValue
		emit := func(kv KeyValue) { out = append(out, kv) }
		group := func(key string, values []any) error {
			if err := job.Reduce(key, values, emit); err != nil {
				return fmt.Errorf("mapreduce: job %q reduce partition %d key %q: %w", job.Name, p, key, err)
			}
			counters.Add(CounterReduceInputGroups, 1)
			counters.Add(CounterReduceInputRecords, int64(len(values)))
			return nil
		}
		if ext != nil {
			// Stream the planned k-way merge over this partition's spill
			// segments; groups reach the reducer without the partition
			// ever being materialized whole.
			counters.Add(CounterShuffleMergePasses, int64(ext.passes[p]))
			if err := mergePartition(ext.segs[p], ext.steps[p], group); err != nil {
				return err
			}
		} else {
			recs := partitions[p]
			slices.SortStableFunc(recs, func(a, b KeyValue) int { return strings.Compare(a.Key, b.Key) })
			for i := 0; i < len(recs); {
				j := i
				for j < len(recs) && recs[j].Key == recs[i].Key {
					j++
				}
				values := make([]any, 0, j-i)
				for t := i; t < j; t++ {
					values = append(values, recs[t].Value)
				}
				if err := group(recs[i].Key, values); err != nil {
					return err
				}
				i = j
			}
		}
		counters.Add(CounterReduceOutput, int64(len(out)))
		reduceOuts[p] = out
		if rec.Enabled() {
			reduceReal[p] = time.Since(t0)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var reduceMakespan time.Duration
	if sim == nil {
		reducePlacements, makespan := e.Cluster.Schedule(reduceCosts)
		reduceMakespan = makespan
		if rec.Enabled() {
			reduceStart := mapStart + mapMakespan
			e.emitReducePlacements(rec, jobRef, job, reducePlacements, partRecords, shuffleBytes, ext, reduceStart, reduceReal)
		}
	} else if rec.Enabled() {
		e.emitReduceAttempts(rec, jobRef, job, sim, simReduceTasks, partRecords, shuffleBytes, ext, mapStart, reduceReal)
	}

	var output []KeyValue
	for _, out := range reduceOuts {
		output = append(output, out...)
	}
	res := &Result{
		Output:     output,
		Counters:   counters,
		Virtual:    e.Cluster.Cost.JobStartup + mapMakespan + reduceMakespan,
		Real:       time.Since(start),
		MapTasks:   len(splits),
		ReduceTask: numRed,
	}
	if sim != nil {
		// The simulated timeline already contains the reduce phase (and
		// any re-executions), so the job's virtual span is its makespan.
		res.Virtual = e.Cluster.Cost.JobStartup + sim.makespan()
		sim.recordCounters(counters)
		res.Attempts = sim.attempts
		res.Blacklisted = sim.blacklistedNodes()
	}
	rec.AdvanceVirtual(res.Virtual)
	return res, nil
}

// extShuffle carries the external shuffle's per-partition state between
// the shuffle-planning, cost and trace stages of Run.
type extShuffle struct {
	segs   [][]spillSegment
	steps  [][]mergeStep
	io     []int64 // spill writes + merge read/write bytes
	passes []int
}

// emitSpills renders one map task's spill events as KindSpill children of
// its map span, stacked sequentially after the map window (the write-out
// of each buffer flush).
func (e *Engine) emitSpills(rec *trace.Recorder, parent int64, job *Job, buf *mapSpillBuffer, task, node int, vstart time.Duration) {
	if buf == nil {
		return
	}
	for si, ev := range buf.events {
		d := time.Duration(float64(ev.bytes) * float64(e.Cluster.Cost.SpillPerByte))
		rec.Emit(trace.Span{
			Parent:  parent,
			Kind:    trace.KindSpill,
			Name:    fmt.Sprintf("%s/spill[%d.%d]", job.Name, task, si),
			Node:    node,
			Records: ev.records,
			Bytes:   ev.bytes,
			VStart:  vstart,
			VDur:    d,
		})
		vstart += d
	}
}

// emitMerge renders one reducer's merge phase as a KindMerge child of its
// reduce span, sized by the partition's total local-disk traffic.
func (e *Engine) emitMerge(rec *trace.Recorder, parent int64, job *Job, ext *extShuffle, p, node int, records int64, vstart time.Duration) {
	if ext.passes[p] == 0 {
		return
	}
	rec.Emit(trace.Span{
		Parent:  parent,
		Kind:    trace.KindMerge,
		Name:    fmt.Sprintf("%s/merge[%d]", job.Name, p),
		Node:    node,
		Records: records,
		Bytes:   ext.io[p],
		Detail:  fmt.Sprintf("passes=%d segments=%d", ext.passes[p], len(ext.segs[p])),
		VStart:  vstart,
		VDur:    time.Duration(float64(ext.io[p]) * float64(e.Cluster.Cost.SpillPerByte)),
	})
}

// emitReducePlacements renders the fault-free reduce schedule as trace
// spans: one reduce span per task with a shuffle child, plus either a
// sort marker (in-memory path) or a merge child (external path).
func (e *Engine) emitReducePlacements(rec *trace.Recorder, jobRef trace.SpanRef, job *Job, reducePlacements []TaskPlacement, partRecords []int, shuffleBytes []int, ext *extShuffle, reduceStart time.Duration, reduceReal []time.Duration) {
	for _, pl := range reducePlacements {
		p := pl.Task
		id := rec.Emit(trace.Span{
			Parent:  jobRef.ID,
			Kind:    trace.KindReduce,
			Name:    fmt.Sprintf("%s/reduce[%d]", job.Name, p),
			Node:    pl.Node,
			Records: int64(partRecords[p]),
			Bytes:   int64(shuffleBytes[p]),
			VStart:  reduceStart + pl.Start,
			VDur:    pl.End - pl.Start,
			RStart:  rec.RealNow(),
			RDur:    reduceReal[p],
		})
		// The reduce window models startup, then the shuffle transfer
		// of this partition's bytes, then sort/merge + reduce compute.
		// Emit the transfer as a child interval and the sort or merge
		// after it, mirroring Hadoop's task phases.
		shufDur := time.Duration(float64(shuffleBytes[p]) * float64(e.Cluster.Cost.ShufflePerByte))
		if window := pl.End - pl.Start - e.Cluster.Cost.TaskStartup; shufDur > window && window > 0 {
			shufDur = window
		}
		shufStart := reduceStart + pl.Start + e.Cluster.Cost.TaskStartup
		rec.Emit(trace.Span{
			Parent: id,
			Kind:   trace.KindShuffle,
			Name:   fmt.Sprintf("%s/shuffle[%d]", job.Name, p),
			Node:   pl.Node,
			Bytes:  int64(shuffleBytes[p]),
			VStart: shufStart,
			VDur:   shufDur,
		})
		if ext != nil {
			e.emitMerge(rec, id, job, ext, p, pl.Node, int64(partRecords[p]), shufStart+shufDur)
			continue
		}
		rec.Emit(trace.Span{
			Parent:  id,
			Kind:    trace.KindSort,
			Name:    fmt.Sprintf("%s/sort[%d]", job.Name, p),
			Node:    pl.Node,
			Records: int64(partRecords[p]),
			VStart:  shufStart + shufDur,
		})
	}
}

// emitMapAttempts renders a faulted map phase: one span per attempt
// (crashed and killed ones included, with attempt number, status and
// reason) and combine spans for the attempts whose output survived. Real
// durations attach to final attempts only — that is the execution that
// actually ran on this machine.
func (e *Engine) emitMapAttempts(rec *trace.Recorder, jobRef trace.SpanRef, job *Job, sim *faultSim, tasks []*simTask, splits []InputSplit, spillBufs []*mapSpillBuffer, mapStart time.Duration, mapReal, combineReal []time.Duration, combineOut []int64) {
	for i, a := range sim.attempts {
		if a.Phase != faults.PhaseMap {
			continue
		}
		sp := splits[a.Task]
		final := tasks[a.Task].final == i
		span := trace.Span{
			Parent:  jobRef.ID,
			Kind:    trace.KindMap,
			Name:    fmt.Sprintf("%s/map[%d]", job.Name, a.Task),
			Node:    a.Node,
			Records: int64(len(sp.Records)),
			Bytes:   int64(sp.Bytes),
			Detail:  a.Reason,
			Attempt: a.Attempt,
			Status:  a.Outcome.String(),
			VStart:  mapStart + a.Start,
			VDur:    a.End - a.Start,
		}
		if final {
			span.RStart = rec.RealNow()
			span.RDur = mapReal[a.Task]
		}
		id := rec.Emit(span)
		if final && spillBufs != nil {
			e.emitSpills(rec, id, job, spillBufs[a.Task], a.Task, a.Node, mapStart+a.End)
		}
		if final && job.Combine != nil && spillBufs == nil {
			rec.Emit(trace.Span{
				Parent:  jobRef.ID,
				Kind:    trace.KindCombine,
				Name:    fmt.Sprintf("%s/combine[%d]", job.Name, a.Task),
				Node:    a.Node,
				Records: combineOut[a.Task],
				Attempt: a.Attempt,
				VStart:  mapStart + a.End,
				RDur:    combineReal[a.Task],
			})
		}
	}
}

// emitReduceAttempts renders a faulted reduce phase: every attempt as a
// span, with shuffle plus sort (in-memory) or merge (external) children
// on the surviving attempts.
func (e *Engine) emitReduceAttempts(rec *trace.Recorder, jobRef trace.SpanRef, job *Job, sim *faultSim, tasks []*simTask, partRecords []int, shuffleBytes []int, ext *extShuffle, mapStart time.Duration, reduceReal []time.Duration) {
	for i, a := range sim.attempts {
		if a.Phase != faults.PhaseReduce {
			continue
		}
		p := a.Task
		final := tasks[p].final == i
		span := trace.Span{
			Parent:  jobRef.ID,
			Kind:    trace.KindReduce,
			Name:    fmt.Sprintf("%s/reduce[%d]", job.Name, p),
			Node:    a.Node,
			Records: int64(partRecords[p]),
			Bytes:   int64(shuffleBytes[p]),
			Detail:  a.Reason,
			Attempt: a.Attempt,
			Status:  a.Outcome.String(),
			VStart:  mapStart + a.Start,
			VDur:    a.End - a.Start,
		}
		if final {
			span.RStart = rec.RealNow()
			span.RDur = reduceReal[p]
		}
		id := rec.Emit(span)
		if !final {
			continue
		}
		shufStart, shufEnd := sim.shuffleWindow(a, shuffleBytes[p])
		rec.Emit(trace.Span{
			Parent: id,
			Kind:   trace.KindShuffle,
			Name:   fmt.Sprintf("%s/shuffle[%d]", job.Name, p),
			Node:   a.Node,
			Bytes:  int64(shuffleBytes[p]),
			VStart: mapStart + shufStart,
			VDur:   shufEnd - shufStart,
		})
		if ext != nil {
			e.emitMerge(rec, id, job, ext, p, a.Node, int64(partRecords[p]), mapStart+shufEnd)
			continue
		}
		rec.Emit(trace.Span{
			Parent:  id,
			Kind:    trace.KindSort,
			Name:    fmt.Sprintf("%s/sort[%d]", job.Name, p),
			Node:    a.Node,
			Records: int64(partRecords[p]),
			Attempt: a.Attempt,
			VStart:  mapStart + shufEnd,
		})
	}
}

// combine applies the combiner to one map task's output.
func (e *Engine) combine(job *Job, out []KeyValue, counters *Counters) ([]KeyValue, error) {
	slices.SortStableFunc(out, func(a, b KeyValue) int { return strings.Compare(a.Key, b.Key) })
	var combined []KeyValue
	emit := func(kv KeyValue) { combined = append(combined, kv) }
	for i := 0; i < len(out); {
		j := i
		for j < len(out) && out[j].Key == out[i].Key {
			j++
		}
		values := make([]any, 0, j-i)
		for t := i; t < j; t++ {
			values = append(values, out[t].Value)
		}
		if err := job.Combine(out[i].Key, values, emit); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q combine key %q: %w", job.Name, out[i].Key, err)
		}
		i = j
	}
	counters.Add(CounterCombineInput, int64(len(out)))
	counters.Add(CounterCombineOutput, int64(len(combined)))
	return combined, nil
}

// parallel runs fn(0..n-1) on a worker pool of the given size, stopping at
// the first error.
func (e *Engine) parallel(workers, n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if first != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
