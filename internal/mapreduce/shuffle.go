package mapreduce

// External (memory-bounded) shuffle. Hadoop never holds a map task's
// output in memory: records accumulate in a fixed-size sort buffer
// (io.sort.mb) and every overflow is sorted, partitioned and spilled to
// the tasktracker's local disk; reducers fetch the sorted runs and
// stream a k-way merge (bounded by io.sort.factor) into the reduce
// function, so no partition is ever materialized whole. This file
// supplies that machinery for the simulated engine: a per-map-task
// spill buffer capped at Job.ShuffleBufferBytes, sorted spill segments,
// a deterministic merge schedule, and a heap-based streaming merge that
// feeds ReduceFunc group by group.
//
// Bit-identity with the in-memory path is guaranteed by a total record
// order: every emitted record carries a global sequence number
// (task<<40 | emission index), segments are sorted by (key, seq), and
// merges compare (key, seq) — so the merged stream of a partition equals
// a stable sort by key of the records in (map task, emission) order,
// which is exactly what the in-memory path computes.
//
// Only the records are real; the disk is virtual. Spill writes and merge
// reads are charged to the cost model at CostModel.SpillPerByte,
// surfaced through the shuffle.spills / shuffle.spilled_bytes /
// shuffle.merge_passes counters and KindSpill / KindMerge trace spans.

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"
	"strings"
)

// DefaultMergeFanIn is the reducer merge width used when Job.MergeFanIn
// is zero (Hadoop's io.sort.factor default is 10; we run a little wider
// because segments are virtual).
const DefaultMergeFanIn = 16

// spillRecord pairs a record with its global emission sequence, the
// tie-break that keeps external merges bit-identical to the in-memory
// stable sort.
type spillRecord struct {
	kv  KeyValue
	seq int64
}

// compareSpill orders records by (key, seq).
func compareSpill(a, b spillRecord) int {
	if c := strings.Compare(a.kv.Key, b.kv.Key); c != 0 {
		return c
	}
	return cmp.Compare(a.seq, b.seq)
}

// spillSegment is one sorted run of one reduce partition, produced by a
// single map-side spill.
type spillSegment struct {
	recs  []spillRecord // sorted by (key, seq)
	bytes int           // approximate serialized size
}

// spillEvent summarizes one map-side spill (all partitions of one buffer
// flush) for counters and trace spans.
type spillEvent struct {
	records int64
	bytes   int64
}

// mapSpillBuffer is the map-side sort buffer of one task. It is owned by
// a single map worker goroutine; only the Counters it updates are shared.
type mapSpillBuffer struct {
	job      *Job
	part     PartitionFunc
	numRed   int
	capBytes int
	seq      int64 // next global sequence: task<<40 | local counter
	emitted  int64 // raw map output records, pre-combine
	recs     []spillRecord
	bytes    int
	segs     [][]spillSegment // per partition, in spill order
	events   []spillEvent
	counters *Counters
}

// newMapSpillBuffer builds the buffer for map task ti.
func newMapSpillBuffer(job *Job, ti, numRed int, part PartitionFunc, counters *Counters) *mapSpillBuffer {
	return &mapSpillBuffer{
		job:      job,
		part:     part,
		numRed:   numRed,
		capBytes: job.ShuffleBufferBytes,
		seq:      int64(ti) << 40,
		segs:     make([][]spillSegment, numRed),
		counters: counters,
	}
}

// add buffers one emitted record, spilling when the buffer overflows.
func (b *mapSpillBuffer) add(kv KeyValue) error {
	b.recs = append(b.recs, spillRecord{kv: kv, seq: b.seq})
	b.seq++
	b.emitted++
	b.bytes += len(kv.Key) + approxValueBytes(kv.Value)
	if b.bytes >= b.capBytes {
		return b.spill()
	}
	return nil
}

// close flushes whatever remains in the buffer as the task's final spill
// (Hadoop always writes at least one spill file for a non-empty output).
func (b *mapSpillBuffer) close() error {
	if len(b.recs) == 0 {
		return nil
	}
	return b.spill()
}

// spill sorts and partitions the buffered records into one segment per
// non-empty partition, running the combiner per spill as Hadoop does,
// then resets the buffer.
func (b *mapSpillBuffer) spill() error {
	byPart := make([][]spillRecord, b.numRed)
	for _, r := range b.recs {
		p := b.part(r.kv.Key, b.numRed)
		if p < 0 || p >= b.numRed {
			return fmt.Errorf("mapreduce: job %q partitioner returned %d of %d", b.job.Name, p, b.numRed)
		}
		byPart[p] = append(byPart[p], r)
	}
	var ev spillEvent
	for p, recs := range byPart {
		if len(recs) == 0 {
			continue
		}
		slices.SortFunc(recs, compareSpill)
		if b.job.Combine != nil {
			var err error
			if recs, err = b.combineRun(recs); err != nil {
				return err
			}
		}
		bytes := 0
		for _, r := range recs {
			bytes += len(r.kv.Key) + approxValueBytes(r.kv.Value)
		}
		b.segs[p] = append(b.segs[p], spillSegment{recs: recs, bytes: bytes})
		ev.records += int64(len(recs))
		ev.bytes += int64(bytes)
	}
	b.events = append(b.events, ev)
	b.counters.Add(CounterShuffleSpills, 1)
	b.counters.Add(CounterShuffleSpilledBytes, ev.bytes)
	b.recs = b.recs[:0]
	b.bytes = 0
	return nil
}

// combineRun applies the job's combiner to one sorted partition run.
// Combined records take fresh sequence numbers (still below any later
// spill's), and the run is re-sorted in case the combiner reorders keys.
func (b *mapSpillBuffer) combineRun(recs []spillRecord) ([]spillRecord, error) {
	var combined []spillRecord
	emit := func(kv KeyValue) {
		combined = append(combined, spillRecord{kv: kv, seq: b.seq})
		b.seq++
	}
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].kv.Key == recs[i].kv.Key {
			j++
		}
		values := make([]any, 0, j-i)
		for t := i; t < j; t++ {
			values = append(values, recs[t].kv.Value)
		}
		if err := b.job.Combine(recs[i].kv.Key, values, emit); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q combine key %q: %w", b.job.Name, recs[i].kv.Key, err)
		}
		i = j
	}
	b.counters.Add(CounterCombineInput, int64(len(recs)))
	b.counters.Add(CounterCombineOutput, int64(len(combined)))
	slices.SortFunc(combined, compareSpill)
	return combined, nil
}

// mergeStep is one pass of a reducer's merge schedule: the listed run
// ids (initial segments first, then merged runs in creation order) are
// read together; an intermediate step writes a new run, the final step
// streams straight into the reduce function.
type mergeStep struct {
	inputs []int
	final  bool
}

// planMerge computes the deterministic merge schedule for a partition's
// segment sizes. While more than fanIn runs remain, the fanIn smallest
// (ties broken by run id) merge into a new run, charged one read and one
// write of the merged bytes; the final pass reads every surviving run
// once. The returned ioBytes excludes the map-side spill writes, which
// the engine charges separately; passes counts every step including the
// final one.
func planMerge(sizes []int64, fanIn int) (steps []mergeStep, ioBytes int64, passes int) {
	if len(sizes) == 0 {
		return nil, 0, 0
	}
	if fanIn < 2 {
		fanIn = DefaultMergeFanIn
	}
	type run struct {
		id   int
		size int64
	}
	runs := make([]run, len(sizes))
	for i, s := range sizes {
		runs[i] = run{id: i, size: s}
	}
	next := len(sizes)
	for len(runs) > fanIn {
		order := make([]int, len(runs))
		for i := range order {
			order[i] = i
		}
		slices.SortStableFunc(order, func(a, b int) int { return cmp.Compare(runs[a].size, runs[b].size) })
		pick := append([]int(nil), order[:fanIn]...)
		slices.Sort(pick)
		picked := make(map[int]bool, fanIn)
		var step mergeStep
		var merged int64
		for _, pos := range pick {
			picked[pos] = true
			step.inputs = append(step.inputs, runs[pos].id)
			merged += runs[pos].size
		}
		ioBytes += 2 * merged // read every input, write the merged run
		kept := make([]run, 0, len(runs)-fanIn+1)
		for pos, r := range runs {
			if !picked[pos] {
				kept = append(kept, r)
			}
		}
		runs = append(kept, run{id: next, size: merged})
		next++
		steps = append(steps, step)
	}
	final := mergeStep{final: true}
	for _, r := range runs {
		final.inputs = append(final.inputs, r.id)
		ioBytes += r.size
	}
	steps = append(steps, final)
	return steps, ioBytes, len(steps)
}

// segCursor walks one sorted run during a merge.
type segCursor struct {
	recs []spillRecord
	pos  int
}

// cursorHeap is a min-heap of cursors on their current record's
// (key, seq) — the loser-tree equivalent via container/heap.
type cursorHeap []*segCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return compareSpill(h[i].recs[h[i].pos], h[j].recs[h[j].pos]) < 0
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*segCursor)) }
func (h *cursorHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// mergeRuns streams the union of the sorted runs in (key, seq) order,
// stopping at the first visit error.
func mergeRuns(runs [][]spillRecord, visit func(spillRecord) error) error {
	h := make(cursorHeap, 0, len(runs))
	for _, recs := range runs {
		if len(recs) > 0 {
			h = append(h, &segCursor{recs: recs})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		c := h[0]
		if err := visit(c.recs[c.pos]); err != nil {
			return err
		}
		c.pos++
		if c.pos == len(c.recs) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return nil
}

// streamGroups merges the runs and feeds consecutive equal-key records
// to groupFn as one reduce group. Each group gets a freshly allocated
// values slice, matching the in-memory path's contract (a ReduceFunc may
// retain it).
func streamGroups(runs [][]spillRecord, groupFn func(key string, values []any) error) error {
	var key string
	var values []any
	err := mergeRuns(runs, func(r spillRecord) error {
		if len(values) > 0 && r.kv.Key != key {
			if err := groupFn(key, values); err != nil {
				return err
			}
			values = nil
		}
		key = r.kv.Key
		values = append(values, r.kv.Value)
		return nil
	})
	if err != nil {
		return err
	}
	if len(values) > 0 {
		return groupFn(key, values)
	}
	return nil
}

// mergePartition executes one partition's merge schedule over its spill
// segments: intermediate steps materialize merged runs, the final step
// streams groups into groupFn. An empty schedule (no segments) is a
// no-op — the reducer had nothing to fetch.
func mergePartition(segs []spillSegment, steps []mergeStep, groupFn func(key string, values []any) error) error {
	if len(steps) == 0 {
		return nil
	}
	runs := make([][]spillRecord, len(segs), len(segs)+len(steps))
	for i, s := range segs {
		runs[i] = s.recs
	}
	for _, st := range steps {
		ins := make([][]spillRecord, len(st.inputs))
		total := 0
		for i, id := range st.inputs {
			ins[i] = runs[id]
			total += len(runs[id])
		}
		if st.final {
			return streamGroups(ins, groupFn)
		}
		merged := make([]spillRecord, 0, total)
		if err := mergeRuns(ins, func(r spillRecord) error {
			merged = append(merged, r)
			return nil
		}); err != nil {
			return err
		}
		runs = append(runs, merged)
	}
	return nil
}
