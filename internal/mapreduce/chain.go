package mapreduce

import (
	"fmt"
	"time"
)

// Chain runs a sequence of dependent jobs: each stage receives the
// previous stage's output records as its input (Pig compiles linear
// scripts to exactly such chains). Virtual time and counters accumulate
// across stages.
type Chain struct {
	engine *Engine
	// stages are applied in order.
	stages []ChainStage
}

// ChainStage builds the next job from the records flowing into it. The
// Job's Input field is overridden by the chain.
type ChainStage struct {
	Name string
	// SplitSize chunks the incoming records (0 = one split per 2 waves).
	SplitSize int
	// Build receives the stage input and returns the job to run. The
	// returned job's Input is set by the chain.
	Build func(input []KeyValue) (*Job, error)
}

// NewChain returns a chain executing on the engine.
func NewChain(engine *Engine) *Chain {
	return &Chain{engine: engine}
}

// Then appends a stage.
func (c *Chain) Then(stage ChainStage) *Chain {
	c.stages = append(c.stages, stage)
	return c
}

// ChainResult is the outcome of a chain run.
type ChainResult struct {
	// Output is the final stage's output.
	Output []KeyValue
	// Virtual sums the modelled time of every stage.
	Virtual time.Duration
	// Stages holds each stage's individual result.
	Stages []*Result
}

// Run feeds initial through every stage.
func (c *Chain) Run(initial []KeyValue) (*ChainResult, error) {
	if len(c.stages) == 0 {
		return nil, fmt.Errorf("mapreduce: chain has no stages")
	}
	res := &ChainResult{}
	records := initial
	for i, stage := range c.stages {
		if stage.Build == nil {
			return nil, fmt.Errorf("mapreduce: chain stage %d (%s) has no builder", i, stage.Name)
		}
		job, err := stage.Build(records)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: chain stage %d (%s): %w", i, stage.Name, err)
		}
		split := stage.SplitSize
		if split <= 0 {
			waves := 2 * c.engine.Cluster.TotalSlots()
			split = (len(records) + waves - 1) / waves
			if split < 1 {
				split = 1
			}
		}
		job.Input = MemoryInput{Records: records, SplitSize: split}
		if job.Name == "" {
			job.Name = stage.Name
		}
		stageRes, err := c.engine.Run(job)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: chain stage %d (%s): %w", i, stage.Name, err)
		}
		res.Stages = append(res.Stages, stageRes)
		res.Virtual += stageRes.Virtual
		records = stageRes.Output
	}
	res.Output = records
	return res, nil
}
