package mapreduce

import (
	"fmt"

	"github.com/metagenomics/mrmcminh/internal/dfs"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// OutputCommitter implements Hadoop's FileOutputCommitter v1 protocol on
// the simulated DFS. Each task attempt writes into a private staging
// directory
//
//	<out>/_temporary/attempt_<task>_<n>/
//
// and nothing under a "_"-prefixed segment is visible to readers that use
// ListOutputs. Committing an attempt is a single atomic directory rename
// into <out>; aborting deletes the staging tree. Because the rename is
// one namenode metadata operation, a crashed, killed or speculative-loser
// attempt can never leak partial records into the job output: either the
// rename happened (all files visible at once) or it did not (none are).
// CommitJob finalizes with a _SUCCESS marker after removing the whole
// _temporary tree.
type OutputCommitter struct {
	fs       *dfs.FileSystem
	dir      string
	trace    *trace.Recorder
	counters *Counters
}

// NewOutputCommitter creates a committer for job output directory dir.
func NewOutputCommitter(fs *dfs.FileSystem, dir string) *OutputCommitter {
	return &OutputCommitter{fs: fs, dir: dir}
}

// SetTrace attaches a span recorder; commit/abort each emit one span.
func (oc *OutputCommitter) SetTrace(r *trace.Recorder) { oc.trace = r }

// SetCounters attaches a counter set for commit.committed/commit.aborted.
func (oc *OutputCommitter) SetCounters(c *Counters) { oc.counters = c }

// Dir returns the job output directory.
func (oc *OutputCommitter) Dir() string { return oc.dir }

// AttemptPath returns the staging directory for one task attempt.
func (oc *OutputCommitter) AttemptPath(task, attempt int) string {
	return fmt.Sprintf("%s/_temporary/attempt_%d_%d", oc.dir, task, attempt)
}

// WriteAttemptFile stages one file (named rel, e.g. "part-00000") under
// the attempt's staging directory.
func (oc *OutputCommitter) WriteAttemptFile(task, attempt int, rel string, data []byte) error {
	return oc.fs.WriteFile(oc.AttemptPath(task, attempt)+"/"+rel, data)
}

// CommitTask atomically promotes the attempt's staged files into the job
// output directory. Committing an attempt that staged nothing is an
// error: the protocol requires the attempt to have produced its output
// before commit.
func (oc *OutputCommitter) CommitTask(task, attempt int) error {
	staged := oc.AttemptPath(task, attempt)
	if err := oc.fs.RenameDir(staged, oc.dir); err != nil {
		return fmt.Errorf("mapreduce: commit of task %d attempt %d: %w", task, attempt, err)
	}
	if oc.counters != nil {
		oc.counters.Add(CounterCommitCommitted, 1)
	}
	if oc.trace.Enabled() {
		oc.trace.Emit(trace.Span{
			Kind:   trace.KindCommit,
			Name:   fmt.Sprintf("commit.task[%d]", task),
			Node:   -1,
			Detail: fmt.Sprintf("%s attempt %d", oc.dir, attempt),
			Status: "committed",
			VStart: oc.trace.VirtualNow(),
			RStart: oc.trace.RealNow(),
		})
	}
	return nil
}

// AbortTask discards the attempt's staging directory. Aborting an attempt
// that staged nothing is a no-op (the attempt may have crashed before its
// first write).
func (oc *OutputCommitter) AbortTask(task, attempt int) {
	n := oc.fs.RemoveAll(oc.AttemptPath(task, attempt))
	if oc.counters != nil {
		oc.counters.Add(CounterCommitAborted, 1)
	}
	if oc.trace.Enabled() {
		oc.trace.Emit(trace.Span{
			Kind:   trace.KindAbort,
			Name:   fmt.Sprintf("abort.task[%d]", task),
			Node:   -1,
			Detail: fmt.Sprintf("%s attempt %d (%d staged files dropped)", oc.dir, attempt, n),
			Status: "aborted",
			VStart: oc.trace.VirtualNow(),
			RStart: oc.trace.RealNow(),
		})
	}
}

// CommitJob finalizes the output directory: the whole _temporary tree is
// removed (any staging left by uncommitted attempts goes with it) and a
// _SUCCESS marker is written, signalling downstream stages the directory
// is complete.
func (oc *OutputCommitter) CommitJob() error {
	oc.fs.RemoveAll(oc.dir + "/_temporary")
	if err := oc.fs.WriteFile(oc.dir+"/_SUCCESS", nil); err != nil {
		return err
	}
	if oc.trace.Enabled() {
		oc.trace.Emit(trace.Span{
			Kind:   trace.KindCommit,
			Name:   "commit.job",
			Detail: oc.dir,
			Status: "committed",
			VStart: oc.trace.VirtualNow(),
			RStart: oc.trace.RealNow(),
		})
	}
	return nil
}

// AbortJob removes the entire output directory, staged and committed
// files alike, returning the directory to its pre-job state.
func (oc *OutputCommitter) AbortJob() {
	n := oc.fs.RemoveAll(oc.dir)
	if oc.trace.Enabled() {
		oc.trace.Emit(trace.Span{
			Kind:   trace.KindAbort,
			Name:   "abort.job",
			Detail: fmt.Sprintf("%s (%d files dropped)", oc.dir, n),
			Status: "aborted",
			VStart: oc.trace.VirtualNow(),
			RStart: oc.trace.RealNow(),
		})
	}
}

// Succeeded reports whether dir holds a committed job (_SUCCESS marker).
func Succeeded(fs *dfs.FileSystem, dir string) bool {
	return fs.Exists(dir + "/_SUCCESS")
}

// WriteOutputCommitted stores records as part files like WriteOutput, but
// through the commit protocol: each part is staged under a per-part
// attempt directory and promoted by an atomic rename, and the job is
// finalized with a _SUCCESS marker. Readers using ListOutputs never see a
// partially written part file.
func WriteOutputCommitted(fs *dfs.FileSystem, dir string, records []KeyValue, chunkSize int) error {
	oc := NewOutputCommitter(fs, dir)
	if chunkSize <= 0 {
		chunkSize = len(records)
		if chunkSize == 0 {
			chunkSize = 1
		}
	}
	part := 0
	for off := 0; off < len(records) || (off == 0 && len(records) == 0); off += chunkSize {
		end := off + chunkSize
		if end > len(records) {
			end = len(records)
		}
		data := renderRecords(records[off:end])
		rel := fmt.Sprintf("part-%05d", part)
		if err := oc.WriteAttemptFile(part, 0, rel, data); err != nil {
			return err
		}
		if err := oc.CommitTask(part, 0); err != nil {
			return err
		}
		part++
		if len(records) == 0 {
			break
		}
	}
	return oc.CommitJob()
}

// renderRecords formats records as "key\tvalue" lines.
func renderRecords(records []KeyValue) []byte {
	var out []byte
	for _, kv := range records {
		out = append(out, kv.Key...)
		out = append(out, '\t')
		out = fmt.Appendf(out, "%v", kv.Value)
		out = append(out, '\n')
	}
	return out
}
