package mapreduce

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/faults"
	"github.com/metagenomics/mrmcminh/internal/trace"
)

// spillingWordCount builds the canonical wordcount job with the external
// shuffle forced on. A 24-byte buffer holds at most one record of the
// manyLines vocabulary (12-15 bytes each), so every second add spills.
func spillingWordCount(lines []string, combiner bool, bufBytes int) *Job {
	j := wordCountJob(lines, combiner)
	j.ShuffleBufferBytes = bufBytes
	return j
}

func TestSpillShuffleBitIdenticalToInMemory(t *testing.T) {
	lines := manyLines(20)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := MustEngine(chaosCluster).Run(spillingWordCount(lines, false, 24))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, spilled.Output) {
		t.Fatalf("external shuffle changed job output:\n in-memory %v\n spilled   %v",
			baseline.Output, spilled.Output)
	}
	if got := spilled.Counters.Get(CounterShuffleSpills); got == 0 {
		t.Fatal("external shuffle recorded no spills")
	}
	if got := spilled.Counters.Get(CounterShuffleSpilledBytes); got == 0 {
		t.Fatal("external shuffle recorded no spilled bytes")
	}
	if got := spilled.Counters.Get(CounterShuffleMergePasses); got < int64(spilled.ReduceTask) {
		t.Fatalf("merge passes %d < one final pass per reducer (%d)", got, spilled.ReduceTask)
	}
	if baseline.Counters.Get(CounterShuffleSpills) != 0 {
		t.Fatal("in-memory path recorded spills")
	}
	// Shuffle accounting must agree across paths: same records, same bytes.
	if b, s := baseline.Counters.Get(CounterShuffleBytes), spilled.Counters.Get(CounterShuffleBytes); b != s {
		t.Fatalf("shuffle.bytes diverged: in-memory %d, spilled %d", b, s)
	}
}

func TestSpillShuffleMemoryBound(t *testing.T) {
	lines := manyLines(12)
	job := spillingWordCount(lines, false, 24)
	res, err := MustEngine(chaosCluster).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// Each map task covers 2 lines (SplitSize 2) and emits 4 records of
	// 12-15 bytes; a 24-byte cap forces a spill every second record, i.e.
	// at least two spills per map task (the acceptance bar).
	if got, want := res.Counters.Get(CounterShuffleSpills), int64(2*res.MapTasks); got < want {
		t.Fatalf("spills = %d, want >= %d (2 per map task)", got, want)
	}
	unbounded, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unbounded.Output, res.Output) {
		t.Fatal("memory-bounded run changed job output")
	}
	// Spill traffic is modelled I/O: the bounded run must cost virtual time.
	if res.Virtual <= unbounded.Virtual {
		t.Fatalf("spill I/O should cost virtual time: bounded %v <= unbounded %v", res.Virtual, unbounded.Virtual)
	}
}

func TestSpillMultiPassMergeBitIdentical(t *testing.T) {
	lines := manyLines(24)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	job := spillingWordCount(lines, false, 24)
	job.MergeFanIn = 2 // force intermediate merge passes
	res, err := MustEngine(chaosCluster).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, res.Output) {
		t.Fatal("multi-pass merge changed job output")
	}
	// With fan-in 2 and a dozen segments per partition, merging cannot
	// finish in one pass per reducer.
	if got := res.Counters.Get(CounterShuffleMergePasses); got <= int64(res.ReduceTask) {
		t.Fatalf("merge passes %d implies single-pass merges despite fan-in 2", got)
	}
	wide := spillingWordCount(lines, false, 24)
	wide.MergeFanIn = 64
	wideRes, err := MustEngine(chaosCluster).Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline.Output, wideRes.Output) {
		t.Fatal("wide-fan-in merge changed job output")
	}
	if res.Virtual <= wideRes.Virtual {
		t.Fatalf("extra merge passes should cost virtual time: fan-in 2 %v <= fan-in 64 %v",
			res.Virtual, wideRes.Virtual)
	}
}

// TestSpillCombinerPropertyEquivalence drives randomized jobs through all
// four configurations — {in-memory, spilled} x {combiner off, on} — and
// requires bit-identical output. Wordcount's reduce emits exactly one
// record per key, and partitions are key-ordered, so the combiner cannot
// legitimately change the output stream either.
func TestSpillCombinerPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"a", "bb", "ccc", "dd", "e", "ffff", "g"}
	for trial := 0; trial < 40; trial++ {
		nLines := 1 + rng.Intn(24)
		lines := make([]string, nLines)
		for i := range lines {
			n := rng.Intn(7)
			ws := make([]string, n)
			for j := range ws {
				ws[j] = words[rng.Intn(len(words))]
			}
			lines[i] = strings.Join(ws, " ")
		}
		bufBytes := 10 + rng.Intn(120)
		fanIn := 2 + rng.Intn(5)
		configure := func(combiner, spill bool) *Job {
			j := wordCountJob(lines, combiner)
			j.Input = MemoryInput{Records: j.Input.(MemoryInput).Records, SplitSize: 1 + rng.Intn(4)}
			j.NumReducers = 1 + rng.Intn(4)
			if spill {
				j.ShuffleBufferBytes = bufBytes
				j.MergeFanIn = fanIn
			}
			return j
		}
		// The split size and reducer count are drawn per variant from the
		// same rng; reseed the stream per variant so all four match.
		state := rng.Int63()
		variant := func(combiner, spill bool) *Result {
			t.Helper()
			rng.Seed(state)
			res, err := MustEngine(chaosCluster).Run(configure(combiner, spill))
			if err != nil {
				t.Fatalf("trial %d (combiner=%v spill=%v): %v", trial, combiner, spill, err)
			}
			return res
		}
		oracle := variant(false, false)
		for _, cfg := range []struct{ combiner, spill bool }{{false, true}, {true, false}, {true, true}} {
			res := variant(cfg.combiner, cfg.spill)
			if !reflect.DeepEqual(oracle.Output, res.Output) {
				t.Fatalf("trial %d: combiner=%v spill=%v diverged from oracle\n oracle %v\n got    %v",
					trial, cfg.combiner, cfg.spill, oracle.Output, res.Output)
			}
		}
	}
}

func TestSpillChaosMatrixBitIdentical(t *testing.T) {
	lines := manyLines(40)
	baseline, err := MustEngine(chaosCluster).Run(wordCountJob(lines, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.ChaosPlan(seed)
			plan.NodeDeaths = []faults.NodeDeath{{Node: int(seed) % chaosCluster.Nodes, At: DefaultCostModel.JobStartup + 4*time.Second}}
			e := MustEngine(chaosCluster)
			e.Faults = faults.MustNew(plan)
			res, err := e.Run(spillingWordCount(lines, false, 24))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline.Output, res.Output) {
				t.Fatal("chaos + spill run changed job output")
			}
			if res.Counters.Get(CounterShuffleSpills) == 0 {
				t.Fatal("chaos run did not exercise the spill path")
			}
			again, err := func() (*Result, error) {
				e := MustEngine(chaosCluster)
				e.Faults = faults.MustNew(plan)
				return e.Run(spillingWordCount(lines, false, 24))
			}()
			if err != nil {
				t.Fatal(err)
			}
			if again.Virtual != res.Virtual {
				t.Fatalf("seed %d not reproducible on spill path: %v vs %v", seed, res.Virtual, again.Virtual)
			}
		})
	}
}

func TestSpillEmptyInputShortCircuits(t *testing.T) {
	job := spillingWordCount(nil, false, 24)
	job.Input = MemoryInput{SplitSize: 2}
	res, err := MustEngine(chaosCluster).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 || res.MapTasks != 0 || res.ReduceTask != 0 {
		t.Fatalf("empty input ran work: %d records, %d/%d tasks", len(res.Output), res.MapTasks, res.ReduceTask)
	}
	if res.Virtual != 0 {
		t.Fatalf("empty input cost virtual time %v", res.Virtual)
	}
}

func TestSpillMapOnlyJobNeverSpills(t *testing.T) {
	recs := make([]KeyValue, 10)
	for i := range recs {
		recs[i] = KeyValue{Key: fmt.Sprint(i), Value: i}
	}
	res, err := MustEngine(chaosCluster).Run(&Job{
		Name:               "identity",
		Input:              MemoryInput{Records: recs, SplitSize: 3},
		ShuffleBufferBytes: 1, // would spill on every record if honored
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			emit(kv)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterShuffleSpills); got != 0 {
		t.Fatalf("map-only job spilled %d times", got)
	}
	for i, kv := range res.Output {
		if kv.Value.(int) != i {
			t.Fatalf("map-only output order broken at %d: %v", i, kv.Value)
		}
	}
}

func TestSpillTraceSpans(t *testing.T) {
	rec := trace.New()
	e := MustEngine(chaosCluster)
	e.Trace = rec
	if _, err := e.Run(spillingWordCount(manyLines(8), true, 24)); err != nil {
		t.Fatal(err)
	}
	var spills, merges, sorts, combines int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.KindSpill:
			spills++
			if s.Bytes == 0 || s.Records == 0 {
				t.Fatalf("spill span carries no payload: %+v", s)
			}
		case trace.KindMerge:
			merges++
			if !strings.Contains(s.Detail, "passes=") {
				t.Fatalf("merge span detail %q missing pass count", s.Detail)
			}
		case trace.KindSort:
			sorts++
		case trace.KindCombine:
			combines++
		}
	}
	if spills == 0 {
		t.Fatal("no spill spans recorded")
	}
	if merges == 0 {
		t.Fatal("no merge spans recorded")
	}
	if sorts != 0 {
		t.Fatalf("external path emitted %d reducer sort spans", sorts)
	}
	if combines != 0 {
		t.Fatalf("external path emitted %d combine spans (combining happens inside spills)", combines)
	}
}

func TestPlanMergeSchedule(t *testing.T) {
	steps, io, passes := planMerge([]int64{10, 20, 30, 40, 50}, 2)
	want := []mergeStep{
		{inputs: []int{0, 1}},
		{inputs: []int{2, 5}},
		{inputs: []int{3, 4}},
		{inputs: []int{6, 7}, final: true},
	}
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("schedule %+v, want %+v", steps, want)
	}
	// Intermediate passes read+write 30, 60 and 90 bytes; the final pass
	// reads the surviving 60- and 90-byte runs once.
	if io != 2*30+2*60+2*90+150 {
		t.Fatalf("ioBytes = %d, want 510", io)
	}
	if passes != 4 {
		t.Fatalf("passes = %d, want 4", passes)
	}

	// Fan-in wider than the segment count: a single streaming pass, each
	// segment read once.
	steps, io, passes = planMerge([]int64{5, 5, 5}, 0)
	if len(steps) != 1 || !steps[0].final || passes != 1 || io != 15 {
		t.Fatalf("wide merge: steps %+v io %d passes %d", steps, io, passes)
	}

	if steps, io, passes = planMerge(nil, 2); steps != nil || io != 0 || passes != 0 {
		t.Fatalf("empty merge plan: %+v %d %d", steps, io, passes)
	}
}

// signature mimics minhash.Signature: a named slice type that the fast
// type switch in approxValueBytes does not cover, exercising the
// reflective fallback that replaced the old flat 8-byte guess.
type signature []uint64

// sizedPayload pins its own serialized size via the Sizer interface.
type sizedPayload struct{ weight int }

func (p sizedPayload) SizeBytes() int { return p.weight }

// payloadJob emits n records of one struct-typed value per key "k<i>".
func payloadJob(n int, value any) *Job {
	recs := make([]KeyValue, n)
	for i := range recs {
		recs[i] = KeyValue{Key: fmt.Sprint(i), Value: i}
	}
	return &Job{
		Name:  "payload",
		Input: MemoryInput{Records: recs, SplitSize: 2},
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			emit(KeyValue{Key: "k" + kv.Key, Value: value})
			return nil
		},
		Reduce: func(key string, values []any, emit func(KeyValue)) error {
			emit(KeyValue{Key: key, Value: len(values)})
			return nil
		},
		NumReducers: 2,
	}
}

func TestShuffleBytesScaleWithStructPayload(t *testing.T) {
	run := func(value any) int64 {
		t.Helper()
		res, err := MustEngine(chaosCluster).Run(payloadJob(6, value))
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Get(CounterShuffleBytes)
	}
	small := run(signature(make([]uint64, 4)))
	large := run(signature(make([]uint64, 400)))
	if large <= small {
		t.Fatalf("shuffle bytes ignore payload size: %d-element %d vs 4-element %d", 400, large, small)
	}
	if large < 10*small {
		t.Fatalf("shuffle bytes not proportional to payload: %d vs %d", large, small)
	}
	// Struct-wrapped slices go through the same reflective walk.
	type wrapped struct {
		ID  int64
		Sig signature
	}
	ws := run(wrapped{ID: 1, Sig: make(signature, 400)})
	if ws <= small {
		t.Fatalf("struct-wrapped payload undersized: %d vs %d", ws, small)
	}
}

func TestSizerOverridesEstimate(t *testing.T) {
	res, err := MustEngine(chaosCluster).Run(payloadJob(1, sizedPayload{weight: 4096}))
	if err != nil {
		t.Fatal(err)
	}
	// One record, key "k0": shuffle bytes are exactly key + SizeBytes.
	if got := res.Counters.Get(CounterShuffleBytes); got != int64(len("k0")+4096) {
		t.Fatalf("shuffle.bytes = %d, want %d", got, len("k0")+4096)
	}
	// The Sizer-backed spill buffer must overflow accordingly.
	job := payloadJob(4, sizedPayload{weight: 4096})
	job.ShuffleBufferBytes = 8192
	spilled, err := MustEngine(chaosCluster).Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := spilled.Counters.Get(CounterShuffleSpills); got == 0 {
		t.Fatal("Sizer payloads did not trip the spill threshold")
	}
}
