package mapreduce

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/metagenomics/mrmcminh/internal/trace"
)

// wordJob builds a small full-MR job (word count) over n records.
func wordJob(n int) *Job {
	records := make([]KeyValue, n)
	for i := range records {
		records[i] = KeyValue{Key: fmt.Sprint(i), Value: fmt.Sprintf("w%d", i%7)}
	}
	return &Job{
		Name:  "wordcount",
		Input: MemoryInput{Records: records, SplitSize: 8},
		Map: func(kv KeyValue, emit func(KeyValue)) error {
			emit(KeyValue{Key: kv.Value.(string), Value: 1})
			return nil
		},
		Combine: func(key string, values []any, emit func(KeyValue)) error {
			emit(KeyValue{Key: key, Value: len(values)})
			return nil
		},
		Reduce: func(key string, values []any, emit func(KeyValue)) error {
			total := 0
			for _, v := range values {
				total += v.(int)
			}
			emit(KeyValue{Key: key, Value: total})
			return nil
		},
	}
}

// TestEngineTraceSpans runs a traced job and checks the span set: one job
// span, one map span per split with a node placement, shuffle/sort/reduce
// spans per partition, and virtual-time consistency with Result.Virtual.
func TestEngineTraceSpans(t *testing.T) {
	c := Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel}
	e := MustEngine(c)
	rec := trace.New()
	e.Trace = rec

	res, err := e.Run(wordJob(64))
	if err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	byKind := map[trace.Kind][]trace.Span{}
	for _, s := range spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	if len(byKind[trace.KindJob]) != 1 {
		t.Fatalf("got %d job spans, want 1", len(byKind[trace.KindJob]))
	}
	job := byKind[trace.KindJob][0]
	if job.VDur != res.Virtual {
		t.Fatalf("job span VDur = %v, Result.Virtual = %v", job.VDur, res.Virtual)
	}
	if got := len(byKind[trace.KindMap]); got != res.MapTasks {
		t.Fatalf("got %d map spans, want %d", got, res.MapTasks)
	}
	if got := len(byKind[trace.KindCombine]); got != res.MapTasks {
		t.Fatalf("got %d combine spans, want %d", got, res.MapTasks)
	}
	for _, k := range []trace.Kind{trace.KindReduce, trace.KindShuffle, trace.KindSort} {
		if got := len(byKind[k]); got != res.ReduceTask {
			t.Fatalf("got %d %v spans, want %d", got, k, res.ReduceTask)
		}
	}
	var records int64
	for _, s := range byKind[trace.KindMap] {
		if s.Parent != job.ID {
			t.Fatalf("map span parent = %d, want job %d", s.Parent, job.ID)
		}
		if s.Node < 0 || s.Node >= c.Nodes {
			t.Fatalf("map span node %d out of range", s.Node)
		}
		if end := s.VStart + s.VDur; end > job.VStart+job.VDur {
			t.Fatalf("map span ends at %v, after job end %v", end, job.VStart+job.VDur)
		}
		records += s.Records
	}
	if records != 64 {
		t.Fatalf("map spans carry %d records, want 64", records)
	}
	var shuffled int64
	for _, s := range byKind[trace.KindShuffle] {
		shuffled += s.Bytes
	}
	if want := res.Counters.Get(CounterShuffleBytes); shuffled != want {
		t.Fatalf("shuffle spans carry %d bytes, counters say %d", shuffled, want)
	}
	// The recorder's virtual clock advanced by exactly the job's duration.
	if got := rec.VirtualNow(); got != res.Virtual {
		t.Fatalf("virtual clock = %v, want %v", got, res.Virtual)
	}

	// A second job stacks after the first on the virtual timeline.
	res2, err := e.Run(wordJob(16))
	if err != nil {
		t.Fatal(err)
	}
	spans = rec.Spans()
	last := spans[len(spans)-1]
	var job2 trace.Span
	for _, s := range spans {
		if s.Kind == trace.KindJob && s.ID != job.ID {
			job2 = s
		}
	}
	if job2.VStart != res.Virtual {
		t.Fatalf("second job starts at %v, want %v", job2.VStart, res.Virtual)
	}
	if got := rec.VirtualNow(); got != res.Virtual+res2.Virtual {
		t.Fatalf("virtual clock = %v, want %v", got, res.Virtual+res2.Virtual)
	}
	_ = last

	// The utilization summary sees the node-attributed task spans.
	sum := trace.UtilizationSummary(spans)
	if !strings.Contains(sum, "node") {
		t.Fatalf("summary missing node rows:\n%s", sum)
	}
}

// TestEngineTraceMapOnly checks the map-only job path emits no reduce-side
// spans.
func TestEngineTraceMapOnly(t *testing.T) {
	e := MustEngine(Cluster{Nodes: 2, SlotsPerNode: 2, Cost: DefaultCostModel})
	rec := trace.New()
	e.Trace = rec
	job := wordJob(10)
	job.Combine, job.Reduce = nil, nil
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.KindReduce, trace.KindShuffle, trace.KindSort, trace.KindCombine:
			t.Fatalf("map-only job emitted %v span %q", s.Kind, s.Name)
		}
	}
	if got := rec.VirtualNow(); got != res.Virtual {
		t.Fatalf("virtual clock = %v, want %v", got, res.Virtual)
	}
}

// TestEngineUntracedUnchanged pins the disabled-trace path: identical
// results and no spans.
func TestEngineUntracedUnchanged(t *testing.T) {
	e := MustEngine(Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel})
	res, err := e.Run(wordJob(32))
	if err != nil {
		t.Fatal(err)
	}
	et := MustEngine(Cluster{Nodes: 4, SlotsPerNode: 2, Cost: DefaultCostModel})
	et.Trace = trace.New()
	res2, err := et.Run(wordJob(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Virtual != res2.Virtual {
		t.Fatalf("tracing changed Virtual: %v vs %v", res.Virtual, res2.Virtual)
	}
	if len(res.Output) != len(res2.Output) {
		t.Fatalf("tracing changed output size: %d vs %d", len(res.Output), len(res2.Output))
	}
}

// TestScheduleMatchesMakespan pins the Schedule/Makespan refactor: the
// placements' latest End equals the reported makespan, placements cover
// every task exactly once, and no slot runs two tasks at once.
func TestScheduleMatchesMakespan(t *testing.T) {
	c := Cluster{Nodes: 3, SlotsPerNode: 2, Cost: DefaultCostModel}
	var tasks []TaskCost
	for i := 0; i < 17; i++ {
		tasks = append(tasks, TaskCost{Duration: time.Duration(i%5+1) * time.Second, PreferredHosts: []int{i % 3}})
	}
	placements, makespan := c.Schedule(tasks)
	if got := c.Makespan(tasks); got != makespan {
		t.Fatalf("Makespan = %v, Schedule makespan = %v", got, makespan)
	}
	if len(placements) != len(tasks) {
		t.Fatalf("got %d placements, want %d", len(placements), len(tasks))
	}
	var latest time.Duration
	perSlot := map[int][]TaskPlacement{}
	for i, pl := range placements {
		if pl.Task != i {
			t.Fatalf("placement %d has Task %d (want index order)", i, pl.Task)
		}
		if pl.End > latest {
			latest = pl.End
		}
		if pl.Node != pl.Slot/c.SlotsPerNode {
			t.Fatalf("placement node %d inconsistent with slot %d", pl.Node, pl.Slot)
		}
		perSlot[pl.Slot] = append(perSlot[pl.Slot], pl)
	}
	if latest != makespan {
		t.Fatalf("latest placement end %v != makespan %v", latest, makespan)
	}
	for slot, pls := range perSlot {
		for i := range pls {
			for j := i + 1; j < len(pls); j++ {
				a, b := pls[i], pls[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("slot %d runs tasks %d and %d concurrently", slot, a.Task, b.Task)
				}
			}
		}
	}
}
