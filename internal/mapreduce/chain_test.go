package mapreduce

import (
	"fmt"
	"strings"
	"testing"
)

func TestChainTwoStages(t *testing.T) {
	e := MustEngine(DefaultCluster)
	lines := []KeyValue{
		{Key: "0", Value: "a b a"},
		{Key: "1", Value: "b c"},
	}
	chain := NewChain(e).
		Then(ChainStage{
			Name: "split",
			Build: func(_ []KeyValue) (*Job, error) {
				return &Job{
					Map: func(kv KeyValue, emit func(KeyValue)) error {
						for _, w := range strings.Fields(kv.Value.(string)) {
							emit(KeyValue{Key: w, Value: 1})
						}
						return nil
					},
					Reduce: func(k string, vs []any, emit func(KeyValue)) error {
						emit(KeyValue{Key: k, Value: len(vs)})
						return nil
					},
					NumReducers: 2,
				}, nil
			},
		}).
		Then(ChainStage{
			Name: "filter-heavy",
			Build: func(_ []KeyValue) (*Job, error) {
				return &Job{
					Map: func(kv KeyValue, emit func(KeyValue)) error {
						if kv.Value.(int) >= 2 {
							emit(kv)
						}
						return nil
					},
				}, nil
			},
		})
	res, err := chain.Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, kv := range res.Output {
		counts[kv.Key] = kv.Value.(int)
	}
	if len(counts) != 2 || counts["a"] != 2 || counts["b"] != 2 {
		t.Fatalf("chain output %v", counts)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages %d", len(res.Stages))
	}
	if res.Virtual != res.Stages[0].Virtual+res.Stages[1].Virtual {
		t.Fatal("virtual time does not accumulate")
	}
}

func TestChainStageCanInspectInput(t *testing.T) {
	e := MustEngine(DefaultCluster)
	chain := NewChain(e).Then(ChainStage{
		Name: "adaptive",
		Build: func(input []KeyValue) (*Job, error) {
			n := len(input)
			return &Job{
				Map: func(kv KeyValue, emit func(KeyValue)) error {
					emit(KeyValue{Key: kv.Key, Value: n})
					return nil
				},
			}, nil
		},
	})
	res, err := chain.Run([]KeyValue{{Key: "a"}, {Key: "b"}, {Key: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 || res.Output[0].Value.(int) != 3 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestChainValidation(t *testing.T) {
	e := MustEngine(DefaultCluster)
	if _, err := NewChain(e).Run(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := NewChain(e).Then(ChainStage{Name: "nil-builder"}).Run(nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	failing := NewChain(e).Then(ChainStage{
		Name:  "bad",
		Build: func([]KeyValue) (*Job, error) { return nil, fmt.Errorf("boom") },
	})
	if _, err := failing.Run(nil); err == nil {
		t.Fatal("builder error swallowed")
	}
}

func TestChainStageJobErrorPropagates(t *testing.T) {
	e := MustEngine(DefaultCluster)
	chain := NewChain(e).Then(ChainStage{
		Name: "failing-job",
		Build: func([]KeyValue) (*Job, error) {
			return &Job{
				Map: func(KeyValue, func(KeyValue)) error { return fmt.Errorf("map exploded") },
			}, nil
		},
	})
	if _, err := chain.Run([]KeyValue{{Key: "x"}}); err == nil {
		t.Fatal("job error swallowed")
	}
}
