package fasta

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleFastq = "@r1 first read\nACGT\n+\nIIII\n@r2\nTTAA\n+\n!!II\n"

func TestFastqReaderBasics(t *testing.T) {
	recs, err := ReadAllFastq(strings.NewReader(sampleFastq))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.ID != "r1" || r.Description != "first read" || string(r.Seq) != "ACGT" || string(r.Qual) != "IIII" {
		t.Fatalf("record %+v", r)
	}
}

func TestFastqReaderErrors(t *testing.T) {
	cases := map[string]string{
		"missing @":       ">r1\nACGT\n+\nIIII\n",
		"missing plus":    "@r1\nACGT\nIIII\nIIII\n",
		"truncated":       "@r1\nACGT\n+\n",
		"length mismatch": "@r1\nACGT\n+\nIII\n",
		"invalid quality": "@r1\nACGT\n+\nII\tI\n",
	}
	for name, src := range cases {
		if _, err := ReadAllFastq(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFastqReaderEOF(t *testing.T) {
	fr := NewFastqReader(strings.NewReader(sampleFastq))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("err %v, want io.EOF", err)
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs, err := ReadAllFastq(strings.NewReader(sampleFastq))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAllFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || string(back[0].Qual) != "IIII" || back[0].Description != "first read" {
		t.Fatalf("round trip %+v", back)
	}
}

func TestWriteFastqValidates(t *testing.T) {
	bad := []FastqRecord{{ID: "x", Seq: []byte("AC"), Qual: []byte("I")}}
	if err := WriteFastq(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid record written")
	}
}

func TestPhredAndErrorProbability(t *testing.T) {
	r := FastqRecord{ID: "x", Seq: []byte("AC"), Qual: []byte("I!")}
	if r.PhredScore(0) != 40 || r.PhredScore(1) != 0 {
		t.Fatalf("phred %d %d", r.PhredScore(0), r.PhredScore(1))
	}
	if p := r.ErrorProbability(0); math.Abs(p-1e-4) > 1e-9 {
		t.Fatalf("p(0) = %v", p)
	}
	if p := r.ErrorProbability(1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("p(1) = %v", p)
	}
	if ee := r.ExpectedErrors(); math.Abs(ee-1.0001) > 1e-3 {
		t.Fatalf("expected errors %v", ee)
	}
}

func TestTrimToQuality(t *testing.T) {
	r := FastqRecord{ID: "x", Seq: []byte("ACGTACGT"), Qual: []byte("IIII!III")}
	kept := r.TrimToQuality(20)
	if kept != 4 || string(r.Seq) != "ACGT" || len(r.Qual) != 4 {
		t.Fatalf("trim kept %d: %+v", kept, r)
	}
	// All high quality: untouched.
	r2 := FastqRecord{ID: "y", Seq: []byte("AC"), Qual: []byte("II")}
	if r2.TrimToQuality(20) != 2 {
		t.Fatal("high-quality read trimmed")
	}
	// First base low: trimmed to zero.
	r3 := FastqRecord{ID: "z", Seq: []byte("AC"), Qual: []byte("!I")}
	if r3.TrimToQuality(20) != 0 || len(r3.Seq) != 0 {
		t.Fatal("low-quality read not emptied")
	}
}

func TestFastqRecordConversion(t *testing.T) {
	fq := []FastqRecord{{ID: "a", Description: "d", Seq: []byte("ACGT"), Qual: []byte("IIII")}}
	recs := FastqToRecords(fq)
	if len(recs) != 1 || recs[0].ID != "a" || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("converted %+v", recs)
	}
}

func TestReadSequencesFileDispatch(t *testing.T) {
	dir := t.TempDir()
	fastaPath := filepath.Join(dir, "reads.fa")
	if err := WriteFile(fastaPath, []Record{{ID: "f", Seq: []byte("ACGT")}}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSequencesFile(fastaPath)
	if err != nil || len(recs) != 1 || recs[0].ID != "f" {
		t.Fatalf("fasta dispatch: %v %v", recs, err)
	}

	fastqPath := filepath.Join(dir, "reads.fq")
	if err := writeStringFile(fastqPath, sampleFastq); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadSequencesFile(fastqPath)
	if err != nil || len(recs) != 2 || recs[0].ID != "r1" {
		t.Fatalf("fastq dispatch: %v %v", recs, err)
	}

	junkPath := filepath.Join(dir, "junk.txt")
	if err := writeStringFile(junkPath, "not sequences"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSequencesFile(junkPath); err == nil {
		t.Fatal("junk accepted")
	}
	emptyPath := filepath.Join(dir, "empty")
	if err := writeStringFile(emptyPath, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSequencesFile(emptyPath); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := ReadSequencesFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadFastqFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.fq")
	if err := writeStringFile(path, sampleFastq); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFastqFile(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs %v err %v", recs, err)
	}
	if _, err := ReadFastqFile(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// writeStringFile is a tiny test helper.
func writeStringFile(path, content string) error {
	return writeBytesFile(path, []byte(content))
}

// writeBytesFile writes a file for tests.
func writeBytesFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
