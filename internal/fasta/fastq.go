package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// FASTQ support. Modern read archives ship FASTQ (sequence + per-base
// Phred quality); the clustering pipeline accepts either format, and the
// quality column feeds error-aware tooling (expected error counts, qualty
// trimming) without changing the Record type downstream.

// FastqRecord is one FASTQ entry.
type FastqRecord struct {
	ID          string
	Description string
	Seq         []byte
	// Qual holds Phred+33 encoded qualities, one byte per base.
	Qual []byte
}

// Record converts to a plain FASTA record (quality dropped).
func (r *FastqRecord) Record() Record {
	return Record{ID: r.ID, Description: r.Description, Seq: r.Seq}
}

// Validate checks structural invariants.
func (r *FastqRecord) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("fastq: record has empty ID")
	}
	if len(r.Seq) == 0 {
		return fmt.Errorf("fastq: record %q has empty sequence", r.ID)
	}
	if len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("fastq: record %q has %d qualities for %d bases", r.ID, len(r.Qual), len(r.Seq))
	}
	for i, q := range r.Qual {
		if q < '!' || q > '~' {
			return fmt.Errorf("fastq: record %q has invalid quality byte %q at %d", r.ID, q, i)
		}
	}
	return nil
}

// PhredScore returns the Phred quality of base i.
func (r *FastqRecord) PhredScore(i int) int { return int(r.Qual[i]) - 33 }

// ErrorProbability returns the error probability of base i: 10^(-Q/10).
func (r *FastqRecord) ErrorProbability(i int) float64 {
	return math.Pow(10, -float64(r.PhredScore(i))/10)
}

// ExpectedErrors sums per-base error probabilities — the "maximum expected
// error" filter statistic popularized by USEARCH.
func (r *FastqRecord) ExpectedErrors() float64 {
	sum := 0.0
	for i := range r.Qual {
		sum += r.ErrorProbability(i)
	}
	return sum
}

// TrimToQuality truncates the read at the first position where quality
// drops below minPhred (simple 454-style end trimming). The record is
// modified in place; trimming to zero length is allowed and flagged by
// the return value.
func (r *FastqRecord) TrimToQuality(minPhred int) (kept int) {
	cut := len(r.Seq)
	for i := range r.Qual {
		if r.PhredScore(i) < minPhred {
			cut = i
			break
		}
	}
	r.Seq = r.Seq[:cut]
	r.Qual = r.Qual[:cut]
	return cut
}

// FastqReader parses FASTQ records.
type FastqReader struct {
	br   *bufio.Reader
	line int
}

// NewFastqReader wraps r.
func NewFastqReader(r io.Reader) *FastqReader {
	return &FastqReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record or io.EOF.
func (fr *FastqReader) Next() (FastqRecord, error) {
	header, err := fr.nonEmptyLine()
	if err != nil {
		return FastqRecord{}, err
	}
	if !strings.HasPrefix(header, "@") {
		return FastqRecord{}, fmt.Errorf("fastq: line %d: expected '@' header, got %.20q", fr.line, header)
	}
	id, desc := splitHeader(strings.TrimPrefix(header, "@"))
	seq, err := fr.requiredLine("sequence")
	if err != nil {
		return FastqRecord{}, err
	}
	plus, err := fr.requiredLine("'+' separator")
	if err != nil {
		return FastqRecord{}, err
	}
	if !strings.HasPrefix(plus, "+") {
		return FastqRecord{}, fmt.Errorf("fastq: line %d: expected '+', got %.20q", fr.line, plus)
	}
	qual, err := fr.requiredLine("quality")
	if err != nil {
		return FastqRecord{}, err
	}
	rec := FastqRecord{ID: id, Description: desc, Seq: []byte(seq), Qual: []byte(qual)}
	if err := rec.Validate(); err != nil {
		return FastqRecord{}, fmt.Errorf("%w (near line %d)", err, fr.line)
	}
	return rec, nil
}

// nonEmptyLine skips blank lines; io.EOF at end.
func (fr *FastqReader) nonEmptyLine() (string, error) {
	for {
		line, err := fr.br.ReadString('\n')
		if len(line) == 0 && err != nil {
			return "", io.EOF
		}
		fr.line++
		line = strings.TrimRight(line, "\r\n")
		if line != "" {
			return line, nil
		}
		if err != nil {
			return "", io.EOF
		}
	}
}

// requiredLine errors (not EOF) when a record is truncated mid-way.
func (fr *FastqReader) requiredLine(what string) (string, error) {
	line, err := fr.nonEmptyLine()
	if err != nil {
		return "", fmt.Errorf("fastq: line %d: truncated record, missing %s", fr.line, what)
	}
	return line, nil
}

// ReadAllFastq parses every record from r.
func ReadAllFastq(r io.Reader) ([]FastqRecord, error) {
	fr := NewFastqReader(r)
	var recs []FastqRecord
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadFastqFile parses every record from the named file.
func ReadFastqFile(path string) ([]FastqRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAllFastq(f)
}

// WriteFastq emits records in four-line FASTQ form.
func WriteFastq(w io.Writer, recs []FastqRecord) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range recs {
		r := &recs[i]
		if err := r.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", headerOf(r), r.Seq, r.Qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// headerOf renders the full header text.
func headerOf(r *FastqRecord) string {
	if r.Description == "" {
		return r.ID
	}
	return r.ID + " " + r.Description
}

// FastqToRecords converts FASTQ records to plain records.
func FastqToRecords(recs []FastqRecord) []Record {
	out := make([]Record, len(recs))
	for i := range recs {
		out[i] = recs[i].Record()
	}
	return out
}

// ReadSequencesFile loads either FASTA or FASTQ based on the leading
// byte of the file ('>' vs '@'), returning plain records either way.
func ReadSequencesFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("fasta: %s is empty", path)
	}
	switch first[0] {
	case '>':
		return ReadAll(br)
	case '@':
		fq, err := ReadAllFastq(br)
		if err != nil {
			return nil, err
		}
		return FastqToRecords(fq), nil
	default:
		// Tolerate leading comments/blank lines by falling back to FASTA.
		if bytes.ContainsAny(first, ";\r\n \t") {
			return ReadAll(br)
		}
		return nil, fmt.Errorf("fasta: %s does not look like FASTA or FASTQ", path)
	}
}
