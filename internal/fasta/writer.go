package fasta

import (
	"bufio"
	"io"
	"os"
)

// Writer emits FASTA records, wrapping sequence lines at a configurable
// column width (the conventional 70/80 columns; 0 disables wrapping).
type Writer struct {
	bw    *bufio.Writer
	Width int
}

// NewWriter returns a Writer targeting w with 70-column wrapping.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), Width: 70}
}

// Write emits one record.
func (fw *Writer) Write(rec Record) error {
	if err := fw.bw.WriteByte('>'); err != nil {
		return err
	}
	if _, err := fw.bw.WriteString(rec.Header()); err != nil {
		return err
	}
	if err := fw.bw.WriteByte('\n'); err != nil {
		return err
	}
	seq := rec.Seq
	if fw.Width <= 0 {
		if _, err := fw.bw.Write(seq); err != nil {
			return err
		}
		return fw.bw.WriteByte('\n')
	}
	for len(seq) > 0 {
		n := fw.Width
		if n > len(seq) {
			n = len(seq)
		}
		if _, err := fw.bw.Write(seq[:n]); err != nil {
			return err
		}
		if err := fw.bw.WriteByte('\n'); err != nil {
			return err
		}
		seq = seq[n:]
	}
	return nil
}

// Flush writes buffered output to the underlying stream.
func (fw *Writer) Flush() error { return fw.bw.Flush() }

// WriteAll emits all records to w and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	fw := NewWriter(w)
	for i := range recs {
		if err := fw.Write(recs[i]); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// WriteFile writes all records to the named file, creating or truncating it.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAll(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
