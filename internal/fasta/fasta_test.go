package fasta

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestReaderSingleRecord(t *testing.T) {
	recs, err := ParseString(">r1 sample read\nACGT\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != "r1" || r.Description != "sample read" || string(r.Seq) != "ACGT" {
		t.Fatalf("unexpected record %+v", r)
	}
}

func TestReaderMultiLineSequence(t *testing.T) {
	recs, err := ParseString(">r1\nACGT\nTTAA\nGG\n>r2\nCCCC\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if string(recs[0].Seq) != "ACGTTTAAGG" {
		t.Fatalf("r1 seq = %q", recs[0].Seq)
	}
	if string(recs[1].Seq) != "CCCC" {
		t.Fatalf("r2 seq = %q", recs[1].Seq)
	}
}

func TestReaderCRLFAndComments(t *testing.T) {
	recs, err := ParseString("; a comment\r\n>r1 desc here\r\nAC\r\nGT\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("unexpected records %+v", recs)
	}
	if recs[0].Description != "desc here" {
		t.Fatalf("desc = %q", recs[0].Description)
	}
}

func TestReaderBlankLines(t *testing.T) {
	recs, err := ParseString("\n\n>r1\n\nACGT\n\n>r2\nTT\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestReaderMissingHeaderFails(t *testing.T) {
	_, err := ParseString("ACGT\n")
	if err == nil {
		t.Fatal("expected error for missing header")
	}
}

func TestReaderEmptySequenceFails(t *testing.T) {
	_, err := ParseString(">r1\n>r2\nACGT\n")
	if err == nil {
		t.Fatal("expected error for empty sequence")
	}
}

func TestReaderEOFWithoutTrailingNewline(t *testing.T) {
	recs, err := ParseString(">r1\nACGT")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("unexpected records %+v", recs)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	recs, err := ParseString("")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records, want 0", len(recs))
	}
}

func TestNextReturnsEOF(t *testing.T) {
	fr := NewReader(strings.NewReader(">a\nAC\n"))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("got err %v, want io.EOF", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	in := []Record{
		{ID: "a", Description: "first", Seq: []byte("ACGTACGTACGT")},
		{ID: "b", Seq: []byte(strings.Repeat("ACGT", 50))},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Seq, in[i].Seq) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestWriterWrapsLines(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	fw.Width = 4
	if err := fw.Write(Record{ID: "x", Seq: []byte("ACGTACGTAC")}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">x\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fa")
	in := []Record{{ID: "r1", Seq: []byte("ACGTN")}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].Seq) != "ACGTN" {
		t.Fatalf("unexpected %+v", out)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		rec Record
		ok  bool
	}{
		{Record{ID: "a", Seq: []byte("ACGT")}, true},
		{Record{ID: "a", Seq: []byte("acgtn")}, true},
		{Record{ID: "a", Seq: []byte("ACRYSWKMBDHVN")}, true},
		{Record{ID: "", Seq: []byte("ACGT")}, false},
		{Record{ID: "a", Seq: nil}, false},
		{Record{ID: "a", Seq: []byte("ACX")}, false},
		{Record{ID: "a", Seq: []byte("AC GT")}, false},
	}
	for i, c := range cases {
		err := c.rec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestHeaderAndString(t *testing.T) {
	r := Record{ID: "id", Description: "desc", Seq: []byte("AC")}
	if r.Header() != "id desc" {
		t.Fatalf("header %q", r.Header())
	}
	if r.String() != ">id desc\nAC\n" {
		t.Fatalf("string %q", r.String())
	}
	r2 := Record{ID: "id", Seq: []byte("AC")}
	if r2.Header() != "id" {
		t.Fatalf("header %q", r2.Header())
	}
}

func TestClone(t *testing.T) {
	r := Record{ID: "a", Seq: []byte("ACGT")}
	c := r.Clone()
	c.Seq[0] = 'T'
	if r.Seq[0] != 'A' {
		t.Fatal("Clone shares sequence storage")
	}
}

func TestBaseCode(t *testing.T) {
	for i, want := range map[byte]int8{'A': 0, 'C': 1, 'G': 2, 'T': 3, 'a': 0, 't': 3, 'U': 3, 'N': -1, 'X': -1} {
		if got := BaseCode(i); got != want {
			t.Errorf("BaseCode(%q) = %d, want %d", i, got, want)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	codes := Encode([]byte("ACGTN"))
	want := []int8{0, 1, 2, 3, -1}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("Encode mismatch at %d: %v", i, codes)
		}
	}
	if string(Decode(codes)) != "ACGTN" {
		t.Fatalf("Decode = %q", Decode(codes))
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTN"))
	if string(got) != "NACGT" {
		t.Fatalf("ReverseComplement = %q", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = "ACGT"[int(b)%4]
		}
		return string(ReverseComplement(ReverseComplement(seq))) == string(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCContent(t *testing.T) {
	cases := []struct {
		seq  string
		want float64
	}{
		{"GGCC", 1},
		{"AATT", 0},
		{"ACGT", 0.5},
		{"NNNN", 0},
		{"GCNN", 1},
		{"", 0},
	}
	for _, c := range cases {
		if got := GCContent([]byte(c.seq)); got != c.want {
			t.Errorf("GCContent(%q) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := [][2]int8{{0, 3}, {1, 2}, {2, 1}, {3, 0}, {-1, -1}}
	for _, p := range pairs {
		if got := Complement(p[0]); got != p[1] {
			t.Errorf("Complement(%d) = %d, want %d", p[0], got, p[1])
		}
	}
}
