package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Reader parses FASTA records from an underlying stream. It tolerates
// multi-line sequences, Windows line endings, leading blank lines and
// ';'-style comment lines (an old FASTA convention).
type Reader struct {
	br   *bufio.Reader
	line int
	// pending holds the header line of the next record once the previous
	// record's sequence has been fully consumed.
	pending string
	done    bool
}

// NewReader returns a Reader consuming FASTA text from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF when the stream is exhausted.
func (fr *Reader) Next() (Record, error) {
	header, err := fr.nextHeader()
	if err != nil {
		return Record{}, err
	}
	id, desc := splitHeader(header)
	var seq bytes.Buffer
	for {
		line, err := fr.readLine()
		if err == io.EOF {
			fr.done = true
			break
		}
		if err != nil {
			return Record{}, err
		}
		if strings.HasPrefix(line, ">") {
			fr.pending = line
			break
		}
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		seq.WriteString(line)
	}
	rec := Record{ID: id, Description: desc, Seq: seq.Bytes()}
	if len(rec.Seq) == 0 {
		return rec, fmt.Errorf("fasta: record %q near line %d has no sequence", id, fr.line)
	}
	return rec, nil
}

// nextHeader advances to the next '>' header line.
func (fr *Reader) nextHeader() (string, error) {
	if fr.pending != "" {
		h := fr.pending
		fr.pending = ""
		return strings.TrimPrefix(h, ">"), nil
	}
	if fr.done {
		return "", io.EOF
	}
	for {
		line, err := fr.readLine()
		if err != nil {
			return "", err
		}
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, ">") {
			return strings.TrimPrefix(line, ">"), nil
		}
		return "", fmt.Errorf("fasta: line %d: expected '>' header, got %.20q", fr.line, line)
	}
}

// readLine returns the next line with trailing whitespace removed.
func (fr *Reader) readLine() (string, error) {
	line, err := fr.br.ReadString('\n')
	if len(line) == 0 && err != nil {
		return "", err
	}
	fr.line++
	return strings.TrimRight(line, "\r\n \t"), nil
}

// splitHeader separates a header line into ID (first token) and description.
func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewReader(r)
	var recs []Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile parses every record from the named file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// ParseString parses records from an in-memory FASTA string.
func ParseString(s string) ([]Record, error) {
	return ReadAll(strings.NewReader(s))
}
