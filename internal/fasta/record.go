// Package fasta provides FASTA parsing, writing and DNA alphabet encoding
// for metagenome sequence reads.
//
// The package corresponds to the paper's FastaStorage and StringGenerator
// user-defined functions: it loads variable-length reads from FASTA text and
// maps the DNA alphabet onto small integers so that downstream k-mer
// extraction can pack subsequences into machine words.
package fasta

import (
	"fmt"
	"strings"
)

// Record is a single FASTA entry: an identifier, an optional free-form
// description (the remainder of the header line), and the sequence bytes.
type Record struct {
	ID          string
	Description string
	Seq         []byte
}

// Len returns the sequence length in bases.
func (r *Record) Len() int { return len(r.Seq) }

// Header reconstructs the full header line content (without the leading '>').
func (r *Record) Header() string {
	if r.Description == "" {
		return r.ID
	}
	return r.ID + " " + r.Description
}

// Validate checks that the record has an ID and that every base is an
// accepted IUPAC nucleotide code (ACGT plus ambiguity codes and N, any case).
func (r *Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("fasta: record has empty ID")
	}
	if len(r.Seq) == 0 {
		return fmt.Errorf("fasta: record %q has empty sequence", r.ID)
	}
	for i, b := range r.Seq {
		if !validBase(b) {
			return fmt.Errorf("fasta: record %q has invalid base %q at position %d", r.ID, b, i)
		}
	}
	return nil
}

// validBase reports whether b is an accepted nucleotide character.
func validBase(b byte) bool {
	switch b {
	case 'A', 'C', 'G', 'T', 'U', 'N',
		'a', 'c', 'g', 't', 'u', 'n',
		'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V',
		'r', 'y', 's', 'w', 'k', 'm', 'b', 'd', 'h', 'v':
		return true
	}
	return false
}

// String renders the record in FASTA format with a single sequence line.
func (r *Record) String() string {
	var sb strings.Builder
	sb.WriteByte('>')
	sb.WriteString(r.Header())
	sb.WriteByte('\n')
	sb.Write(r.Seq)
	sb.WriteByte('\n')
	return sb.String()
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() Record {
	seq := make([]byte, len(r.Seq))
	copy(seq, r.Seq)
	return Record{ID: r.ID, Description: r.Description, Seq: seq}
}
