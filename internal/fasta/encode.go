package fasta

// DNA alphabet encoding — the paper's StringGenerator UDF maps nucleotide
// characters onto small integers before k-mer extraction. We use the
// conventional 2-bit code A=0 C=1 G=2 T=3; ambiguity codes and N map to -1
// and break k-mer windows (the window containing them is skipped).

// BaseCode returns the 2-bit code for base b, or -1 for an ambiguous or
// invalid character. U is treated as T so RNA-style records also encode.
func BaseCode(b byte) int8 {
	return baseTable[b]
}

var baseTable = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	t['A'], t['a'] = 0, 0
	t['C'], t['c'] = 1, 1
	t['G'], t['g'] = 2, 2
	t['T'], t['t'] = 3, 3
	t['U'], t['u'] = 3, 3
	return t
}()

// CodeBase is the inverse of BaseCode for codes 0..3.
func CodeBase(c int8) byte {
	return "ACGT"[c&3]
}

// Encode maps a sequence to per-base codes. Ambiguous bases become -1.
func Encode(seq []byte) []int8 {
	out := make([]int8, len(seq))
	for i, b := range seq {
		out[i] = baseTable[b]
	}
	return out
}

// Decode maps 2-bit codes back to an upper-case DNA string; code -1 becomes N.
func Decode(codes []int8) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		if c < 0 {
			out[i] = 'N'
		} else {
			out[i] = CodeBase(c)
		}
	}
	return out
}

// Complement returns the complement code of a 2-bit base code.
func Complement(c int8) int8 {
	if c < 0 {
		return -1
	}
	return 3 - c
}

// ReverseComplement returns the reverse complement of a DNA sequence in
// place-independent fashion (a new slice is returned). Ambiguous characters
// map to N.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		c := baseTable[b]
		j := len(seq) - 1 - i
		if c < 0 {
			out[j] = 'N'
		} else {
			out[j] = CodeBase(3 - c)
		}
	}
	return out
}

// GCContent returns the fraction of G/C bases among unambiguous bases.
// It returns 0 for sequences with no unambiguous bases.
func GCContent(seq []byte) float64 {
	gc, total := 0, 0
	for _, b := range seq {
		switch baseTable[b] {
		case 1, 2:
			gc++
			total++
		case 0, 3:
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gc) / float64(total)
}
