package checkpoint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirStore adapts a local OS directory to the Store interface so the
// CLIs can checkpoint across process lifetimes: the simulated DFS dies
// with the driver, but a --checkpoint-dir on disk survives it, which is
// what makes `mrmcminh --resume` after a driver crash possible. Journal
// paths ("/sketch/data") map to files under the root; Replace uses
// os.Rename, which is atomic on POSIX filesystems.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and wraps the directory root.
func NewDirStore(root string) (*DirStore, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: resolving %q: %w", root, err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %q: %w", abs, err)
	}
	return &DirStore{root: abs}, nil
}

// Root returns the absolute root directory.
func (d *DirStore) Root() string { return d.root }

// local maps a journal path to a file under the root, rejecting escapes.
func (d *DirStore) local(path string) (string, error) {
	clean := filepath.Clean("/" + strings.TrimPrefix(path, "/"))
	if clean == "/" {
		return "", fmt.Errorf("checkpoint: empty path")
	}
	return filepath.Join(d.root, filepath.FromSlash(clean)), nil
}

// WriteFile stores data at path, creating parent directories.
func (d *DirStore) WriteFile(path string, data []byte) error {
	p, err := d.local(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// ReadFile returns the contents of path.
func (d *DirStore) ReadFile(path string) ([]byte, error) {
	p, err := d.local(path)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Exists reports whether path names a regular file.
func (d *DirStore) Exists(path string) bool {
	p, err := d.local(path)
	if err != nil {
		return false
	}
	info, err := os.Stat(p)
	return err == nil && info.Mode().IsRegular()
}

// Replace atomically moves from onto to (os.Rename overwrites).
func (d *DirStore) Replace(from, to string) error {
	src, err := d.local(from)
	if err != nil {
		return err
	}
	dst, err := d.local(to)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return os.Rename(src, dst)
}

// List returns the journal paths of all regular files under prefix,
// sorted.
func (d *DirStore) List(prefix string) []string {
	var out []string
	_ = filepath.WalkDir(d.root, func(p string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(d.root, p)
		if rerr != nil {
			return nil
		}
		jp := "/" + filepath.ToSlash(rel)
		if strings.HasPrefix(jp, prefix) {
			out = append(out, jp)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// Remove deletes path.
func (d *DirStore) Remove(path string) error {
	p, err := d.local(path)
	if err != nil {
		return err
	}
	return os.Remove(p)
}
