package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/metagenomics/mrmcminh/internal/dfs"
)

// The simulated DFS must satisfy Store structurally, so pipelines can
// checkpoint straight into the cluster's file system.
var _ Store = (*dfs.FileSystem)(nil)

func tempJournal(t *testing.T) (*Journal, *DirStore) {
	t.Helper()
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(store, "/")
	if err != nil {
		t.Fatal(err)
	}
	return j, store
}

func TestOpenValidation(t *testing.T) {
	store, _ := NewDirStore(t.TempDir())
	if _, err := Open(store, "relative"); err == nil {
		t.Fatal("relative dir accepted")
	}
	j, err := Open(store, "/runs/a/")
	if err != nil {
		t.Fatal(err)
	}
	if j.Dir() != "/runs/a" {
		t.Fatalf("trailing slash kept: %q", j.Dir())
	}
	if !j.Empty() || j.Len() != 0 {
		t.Fatal("fresh journal not empty")
	}
}

func TestCommitValidateLoadRoundTrip(t *testing.T) {
	j, store := tempJournal(t)
	params := map[string]string{"k": "5", "theta": "0.9"}
	out := []byte("stage one output")
	e, err := j.Commit("sketch", HashBytes([]byte("reads")), params, out)
	if err != nil {
		t.Fatal(err)
	}
	if e.OutputHash != HashBytes(out) || e.Output != j.StagePath("sketch") {
		t.Fatalf("entry wrong: %+v", e)
	}

	// A fresh Journal over the same store (a new driver process) must see
	// the committed entry and validate it.
	j2, err := Open(store, "/")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 || j2.Stages()[0] != "sketch" {
		t.Fatalf("reopened journal lost the entry: %v", j2.Stages())
	}
	got, skip, err := j2.Validate("sketch", HashBytes([]byte("reads")), params)
	if err != nil || !skip {
		t.Fatalf("validate: skip=%v err=%v", skip, err)
	}
	data, err := j2.Load(got)
	if err != nil || string(data) != string(out) {
		t.Fatalf("load: %q, %v", data, err)
	}

	// A stage with no entry is (false, nil): it simply has not run.
	if _, skip, err := j2.Validate("cluster", "x", nil); skip || err != nil {
		t.Fatalf("unknown stage: skip=%v err=%v", skip, err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	j, _ := tempJournal(t)
	params := map[string]string{"theta": "0.4", "linkage": "average"}
	if _, err := j.Commit("cluster", "in-hash", params, []byte("labels")); err != nil {
		t.Fatal(err)
	}

	// Changed input data.
	_, _, err := j.Validate("cluster", "other-hash", params)
	var im *InputMismatchError
	if !errors.As(err, &im) || im.Stage != "cluster" {
		t.Fatalf("want InputMismatchError, got %v", err)
	}

	// Changed parameter: the error names the differing key and both values.
	_, _, err = j.Validate("cluster", "in-hash", map[string]string{"theta": "0.6", "linkage": "average"})
	var pm *ParamMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("want ParamMismatchError, got %v", err)
	}
	if pm.Param != "theta" || pm.Got != "0.6" || pm.Recorded != "0.4" {
		t.Fatalf("mismatch detail wrong: %+v", pm)
	}
	if !strings.Contains(pm.Error(), "theta=0.6") || !strings.Contains(pm.Error(), "--resume=force") {
		t.Fatalf("message unhelpful: %s", pm.Error())
	}

	// Tampered committed output.
	if err := j.store.WriteFile(j.StagePath("cluster"), []byte("rotted")); err != nil {
		t.Fatal(err)
	}
	_, _, err = j.Validate("cluster", "in-hash", params)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Stage != "cluster" {
		t.Fatalf("want CorruptError, got %v", err)
	}

	// Deleted committed output.
	if err := j.store.Remove(j.StagePath("cluster")); err != nil {
		t.Fatal(err)
	}
	if _, _, err = j.Validate("cluster", "in-hash", params); !errors.As(err, &ce) {
		t.Fatalf("want CorruptError for missing output, got %v", err)
	}
}

func TestCommitReplacesEntry(t *testing.T) {
	j, _ := tempJournal(t)
	if _, err := j.Commit("sketch", "a", nil, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit("greedy", "b", nil, []byte("g")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit("sketch", "a2", nil, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("recommit duplicated the entry: %v", j.Stages())
	}
	e, skip, err := j.Validate("sketch", "a2", nil)
	if err != nil || !skip {
		t.Fatalf("recommitted entry invalid: %v", err)
	}
	if data, _ := j.Load(e); string(data) != "v2" {
		t.Fatalf("old bytes survived: %q", data)
	}
}

func TestDiscard(t *testing.T) {
	j, store := tempJournal(t)
	if _, err := j.Commit("sketch", "a", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Discard(); err != nil {
		t.Fatal(err)
	}
	if !j.Empty() {
		t.Fatal("discard left entries")
	}
	if got := store.List("/"); len(got) != 0 {
		t.Fatalf("discard left files: %v", got)
	}
	// The journal stays usable after a discard.
	if _, err := j.Commit("sketch", "a", nil, []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestHashParamsCanonical(t *testing.T) {
	a := HashParams(map[string]string{"k": "5", "theta": "0.9"})
	b := HashParams(map[string]string{"theta": "0.9", "k": "5"})
	if a != b {
		t.Fatal("hash depends on map order")
	}
	if a == HashParams(map[string]string{"k": "5", "theta": "0.8"}) {
		t.Fatal("different params hash equal")
	}
	if HashParams(nil) != HashParams(map[string]string{}) {
		t.Fatal("nil and empty params differ")
	}
}

func TestSlugify(t *testing.T) {
	if got := slugify("store:/out/clusters"); got != "store--out-clusters" {
		t.Fatalf("slugify = %q", got)
	}
	if got := slugify("sketch"); got != "sketch" {
		t.Fatalf("slugify mangled a clean name: %q", got)
	}
}

func TestMissingErrorMessage(t *testing.T) {
	err := &MissingError{Dir: "/tmp/ck"}
	if !strings.Contains(err.Error(), "/tmp/ck") || !strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("message unhelpful: %s", err.Error())
	}
}

func TestDirStorePathMapping(t *testing.T) {
	root := t.TempDir()
	store, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if !filepath.IsAbs(store.Root()) {
		t.Fatalf("root not absolute: %q", store.Root())
	}
	if err := store.WriteFile("/a/b/data", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !store.Exists("/a/b/data") || store.Exists("/a/b") {
		t.Fatal("Exists wrong: directories must not count as files")
	}
	// Escapes are confined to the root.
	if err := store.WriteFile("/../escape", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "escape")); err != nil {
		t.Fatal("traversal escaped the root")
	}
	if err := store.WriteFile("/", nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := store.Replace("/a/b/data", "/a/final"); err != nil {
		t.Fatal(err)
	}
	if store.Exists("/a/b/data") || !store.Exists("/a/final") {
		t.Fatal("Replace did not move the file")
	}
	got := store.List("/a/")
	if len(got) != 1 || got[0] != "/a/final" {
		t.Fatalf("List = %v", got)
	}
	if err := store.Remove("/a/final"); err != nil {
		t.Fatal(err)
	}
	if store.Exists("/a/final") {
		t.Fatal("Remove left the file")
	}
}

func TestJournalOnSimulatedDFS(t *testing.T) {
	fs, err := dfs.New(dfs.Config{NumDataNodes: 3, BlockSize: 64, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(fs, "/ck")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit("sketch", "h", map[string]string{"k": "5"}, []byte("sigs")); err != nil {
		t.Fatal(err)
	}
	if _, skip, err := j.Validate("sketch", "h", map[string]string{"k": "5"}); !skip || err != nil {
		t.Fatalf("DFS-backed validate failed: skip=%v err=%v", skip, err)
	}
}

func TestResumeFlag(t *testing.T) {
	var f ResumeFlag
	if !f.IsBoolFlag() {
		t.Fatal("must be a bool flag so bare -resume works")
	}
	cases := []struct {
		in        string
		on, force bool
		str       string
	}{
		{"", true, false, "true"},
		{"true", true, false, "true"},
		{"force", true, true, "force"},
		{"false", false, false, "false"},
	}
	for _, c := range cases {
		f = ResumeFlag{}
		if err := f.Set(c.in); err != nil {
			t.Fatalf("Set(%q): %v", c.in, err)
		}
		if f.On != c.on || f.Force != c.force || f.String() != c.str {
			t.Fatalf("Set(%q) = %+v (String %q)", c.in, f, f.String())
		}
	}
	if err := f.Set("bogus"); err == nil {
		t.Fatal("bogus value accepted")
	}
}
