package checkpoint

import "fmt"

// ResumeFlag is the CLIs' --resume flag: bare `-resume` resumes from the
// journal, `-resume=force` discards it first, `-resume=false` disables.
// It implements flag.Value with IsBoolFlag so the bare form works.
type ResumeFlag struct {
	On    bool
	Force bool
}

// String renders the current setting.
func (r *ResumeFlag) String() string {
	switch {
	case r != nil && r.Force:
		return "force"
	case r != nil && r.On:
		return "true"
	default:
		return "false"
	}
}

// Set parses "", "true", "false" or "force".
func (r *ResumeFlag) Set(v string) error {
	switch v {
	case "", "true":
		r.On, r.Force = true, false
	case "false":
		r.On, r.Force = false, false
	case "force":
		r.On, r.Force = true, true
	default:
		return fmt.Errorf("want true, false or force, got %q", v)
	}
	return nil
}

// IsBoolFlag lets bare `-resume` mean `-resume=true`.
func (r *ResumeFlag) IsBoolFlag() bool { return true }
