// Package checkpoint journals the committed outputs of pipeline stages
// so a re-run driver can resume from the last durable stage instead of
// the raw reads — the cross-job half of the fault-tolerance story (the
// fault simulator in internal/mapreduce is the within-job half).
//
// The journal is a content-addressed manifest: each entry binds a stage
// name to the SHA-256 of its inputs, the SHA-256 of its relevant
// parameters, and the path of its committed output (whose own hash is
// recorded too). On resume, a stage is skipped only when all three still
// validate; the first stage with no entry is where execution restarts.
// A mismatched entry is a typed error naming the offending stage and the
// differing parameter — never a silent full re-run.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Store is the durable medium the journal lives on. dfs.FileSystem
// satisfies it structurally; DirStore adapts a local OS directory so a
// fresh process can resume a run a dead driver left behind.
type Store interface {
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	Exists(path string) bool
	// Replace atomically moves from onto to, overwriting to if present.
	Replace(from, to string) error
	// List returns the paths under prefix, sorted.
	List(prefix string) []string
	Remove(path string) error
}

// Entry records one committed stage.
type Entry struct {
	// Stage names the pipeline stage ("sketch", "similarity", "greedy",
	// "cluster", or "store:<path>" for a Pig STORE).
	Stage string `json:"stage"`
	// InputsHash is the SHA-256 of the stage's input content.
	InputsHash string `json:"inputs"`
	// ParamsHash is the SHA-256 of the canonical rendering of Params.
	ParamsHash string `json:"params_hash"`
	// Params holds the stage-relevant parameters by name, so a mismatch
	// can be reported as the specific differing parameter.
	Params map[string]string `json:"params"`
	// Output is the journal-relative path of the committed stage output.
	Output string `json:"output"`
	// OutputHash is the SHA-256 of the committed output bytes.
	OutputHash string `json:"output_hash"`
}

// MissingError reports a resume against a checkpoint directory with no
// manifest at all — the caller asked to resume a run that never started
// (or whose journal was lost).
type MissingError struct {
	Dir string
}

func (e *MissingError) Error() string {
	return fmt.Sprintf("checkpoint: no manifest under %q — nothing to resume (run without --resume, or check --checkpoint-dir)", e.Dir)
}

// ParamMismatchError reports a manifest entry whose parameters differ
// from the current run's: resuming would silently mix configurations.
type ParamMismatchError struct {
	Stage string
	// Param is the first differing parameter name ("" when the recorded
	// entry predates parameter capture).
	Param    string
	Got      string // current run's value
	Recorded string // checkpointed value
}

func (e *ParamMismatchError) Error() string {
	if e.Param == "" {
		return fmt.Sprintf("checkpoint: stage %q was checkpointed with different parameters (use --resume=force to discard)", e.Stage)
	}
	return fmt.Sprintf("checkpoint: stage %q parameter %s=%s differs from checkpointed %s=%s (use --resume=force to discard)",
		e.Stage, e.Param, e.Got, e.Param, e.Recorded)
}

// InputMismatchError reports a manifest entry recorded against different
// input content — the dataset changed under the checkpoint.
type InputMismatchError struct {
	Stage string
}

func (e *InputMismatchError) Error() string {
	return fmt.Sprintf("checkpoint: stage %q was checkpointed against different input data (use --resume=force to discard)", e.Stage)
}

// CorruptError reports a committed output whose bytes no longer match
// the hash the manifest recorded (or which disappeared entirely).
type CorruptError struct {
	Stage  string
	Output string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: stage %q output %q is corrupt: %s (use --resume=force to discard)", e.Stage, e.Output, e.Reason)
}

// Journal is the manifest of committed stages under one checkpoint
// directory. Not safe for concurrent use; the driver owns it.
type Journal struct {
	store   Store
	dir     string
	entries []Entry
}

// Open loads (or initializes) the journal under dir on store ("/" roots
// the journal at the store's top level). A missing manifest is not an
// error here — Validate distinguishes fresh runs from broken resumes.
func Open(store Store, dir string) (*Journal, error) {
	if !strings.HasPrefix(dir, "/") {
		return nil, fmt.Errorf("checkpoint: directory must be absolute, got %q", dir)
	}
	dir = strings.TrimSuffix(dir, "/")
	j := &Journal{store: store, dir: dir}
	if !store.Exists(j.manifestPath()) {
		return j, nil
	}
	raw, err := store.ReadFile(j.manifestPath())
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("checkpoint: manifest line %d: %w", ln+1, err)
		}
		j.entries = append(j.entries, e)
	}
	return j, nil
}

// Dir returns the checkpoint directory.
func (j *Journal) Dir() string { return j.dir }

// Len returns the number of committed stage entries.
func (j *Journal) Len() int { return len(j.entries) }

// Empty reports whether the journal holds no committed stages.
func (j *Journal) Empty() bool { return len(j.entries) == 0 }

func (j *Journal) manifestPath() string { return j.dir + "/MANIFEST" }

// StagePath returns where a stage's committed data lives.
func (j *Journal) StagePath(stage string) string {
	return j.dir + "/" + slugify(stage) + "/data"
}

// lookup finds a stage's entry.
func (j *Journal) lookup(stage string) (Entry, bool) {
	for _, e := range j.entries {
		if e.Stage == stage {
			return e, true
		}
	}
	return Entry{}, false
}

// Validate checks a stage's entry against the current run: inputs hash,
// parameters, and committed-output integrity. It returns (entry, true,
// nil) when the stage can be skipped, (_, false, nil) when the stage has
// no entry (it simply has not run yet), and a typed error when an entry
// exists but does not match — the caller must not silently re-run.
func (j *Journal) Validate(stage, inputsHash string, params map[string]string) (Entry, bool, error) {
	e, ok := j.lookup(stage)
	if !ok {
		return Entry{}, false, nil
	}
	if e.InputsHash != inputsHash {
		return Entry{}, false, &InputMismatchError{Stage: stage}
	}
	if e.ParamsHash != HashParams(params) {
		// Name the first differing parameter, in sorted order for
		// deterministic messages.
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		for k := range e.Params {
			if _, dup := params[k]; !dup {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			if params[k] != e.Params[k] {
				return Entry{}, false, &ParamMismatchError{
					Stage: stage, Param: k, Got: params[k], Recorded: e.Params[k],
				}
			}
		}
		return Entry{}, false, &ParamMismatchError{Stage: stage}
	}
	data, err := j.store.ReadFile(e.Output)
	if err != nil {
		return Entry{}, false, &CorruptError{Stage: stage, Output: e.Output, Reason: "committed output missing"}
	}
	if HashBytes(data) != e.OutputHash {
		return Entry{}, false, &CorruptError{Stage: stage, Output: e.Output, Reason: "content hash mismatch"}
	}
	return e, true, nil
}

// Load returns the committed output bytes of a validated entry.
func (j *Journal) Load(e Entry) ([]byte, error) {
	return j.store.ReadFile(e.Output)
}

// Commit durably records a stage: the output bytes are staged under
// _temporary and promoted by an atomic Replace, then the manifest is
// rewritten the same way. A crash between the two leaves the previous
// manifest intact — the stage simply re-runs. Committing a stage that
// already has an entry replaces it.
func (j *Journal) Commit(stage, inputsHash string, params map[string]string, output []byte) (Entry, error) {
	out := j.StagePath(stage)
	tmp := j.dir + "/_temporary/" + slugify(stage) + ".data"
	if err := j.store.WriteFile(tmp, output); err != nil {
		return Entry{}, fmt.Errorf("checkpoint: staging %s: %w", stage, err)
	}
	if err := j.store.Replace(tmp, out); err != nil {
		return Entry{}, fmt.Errorf("checkpoint: committing %s: %w", stage, err)
	}
	e := Entry{
		Stage:      stage,
		InputsHash: inputsHash,
		ParamsHash: HashParams(params),
		Params:     copyParams(params),
		Output:     out,
		OutputHash: HashBytes(output),
	}
	kept := j.entries[:0]
	for _, old := range j.entries {
		if old.Stage != stage {
			kept = append(kept, old)
		}
	}
	j.entries = append(kept, e)
	if err := j.writeManifest(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// writeManifest atomically rewrites the manifest as JSONL.
func (j *Journal) writeManifest() error {
	var sb strings.Builder
	for _, e := range j.entries {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("checkpoint: encoding manifest: %w", err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	tmp := j.dir + "/_temporary/MANIFEST"
	if err := j.store.WriteFile(tmp, []byte(sb.String())); err != nil {
		return fmt.Errorf("checkpoint: staging manifest: %w", err)
	}
	if err := j.store.Replace(tmp, j.manifestPath()); err != nil {
		return fmt.Errorf("checkpoint: committing manifest: %w", err)
	}
	return nil
}

// Discard deletes the journal and every committed stage output — the
// --resume=force path. The journal is reusable (empty) afterwards.
func (j *Journal) Discard() error {
	for _, p := range j.store.List(j.dir + "/") {
		if err := j.store.Remove(p); err != nil {
			return fmt.Errorf("checkpoint: discarding %s: %w", p, err)
		}
	}
	if j.store.Exists(j.manifestPath()) {
		if err := j.store.Remove(j.manifestPath()); err != nil {
			return err
		}
	}
	j.entries = nil
	return nil
}

// Stages lists the committed stage names in commit order.
func (j *Journal) Stages() []string {
	out := make([]string, len(j.entries))
	for i, e := range j.entries {
		out[i] = e.Stage
	}
	return out
}

// HashBytes returns the hex SHA-256 of data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashParams canonically hashes a parameter map: keys sorted, rendered
// as "k=v" lines. Equal maps hash equal regardless of insertion order.
func HashParams(params map[string]string) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(params[k])
		sb.WriteByte('\n')
	}
	return HashBytes([]byte(sb.String()))
}

func copyParams(params map[string]string) map[string]string {
	out := make(map[string]string, len(params))
	for k, v := range params {
		out[k] = v
	}
	return out
}

// slugify makes a stage name path-safe ("store:/out/clusters" →
// "store--out-clusters").
func slugify(stage string) string {
	var sb strings.Builder
	for _, r := range stage {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
