package bench

import (
	"github.com/metagenomics/mrmcminh/internal/baselines"
	"github.com/metagenomics/mrmcminh/internal/cluster"
	"github.com/metagenomics/mrmcminh/internal/core"
	"github.com/metagenomics/mrmcminh/internal/fasta"
	"github.com/metagenomics/mrmcminh/internal/simulate"
)

// Table III — clustering performance on simulated and real whole
// metagenome reads: MrMC-MinH^h vs MrMC-MinH^g vs MetaCluster over S1–S12
// and R1, reporting #Cluster / W.Acc / W.Sim / Time.
//
// Parameter notes versus the paper ("5 k-mer and 100 hash functions"):
// our synthetic genomes lack the homologous shared background of real
// bacterial genomes, and at k=5 a 1000 bp read saturates the 4^5 = 1024
// k-mer space (every read contains nearly every 5-mer, making all
// signatures identical). We therefore use k=12 with the same 100 hash
// functions; EXPERIMENTS.md discusses the substitution.
const (
	table3K      = 20
	table3Hashes = 100
	// table3Theta sits between the Jaccard of well-overlapping same-genome
	// reads (~0.6+ via transitive chaining at 12x coverage) and that of
	// fully-overlapping reads from species-level relatives
	// (0.98^20/(2-0.98^20) ≈ 0.50), so same-genome reads chain while even
	// the closest cross-genome pairs stay mostly separated.
	table3Theta = 0.55
	// table3ThetaGreedy is lower: greedy clusters are representative
	// stars, not chains, so a read must overlap the representative itself
	// — a tighter geometric constraint needing a looser cut. The paper's
	// greedy correspondingly trades accuracy for speed (Table III).
	table3ThetaGreedy = 0.30
	table3ErrRate     = 0.005
)

// Table3Samples lists the dataset ids of the Table III experiment.
func Table3Samples() []string {
	return []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "R1"}
}

// Table3 runs the whole-metagenome comparison. Samples may narrow the run
// (nil = all of S1–S12 and R1).
func Table3(cfg Config, samples []string) ([]Row, error) {
	if samples == nil {
		samples = Table3Samples()
	}
	cfg.TrimCounts = true
	var rows []Row
	for _, sid := range samples {
		reads, truth, err := table3Dataset(sid, cfg)
		if err != nil {
			return nil, err
		}
		if sid == "R1" {
			truth = nil // the paper has no ground truth for R1
		}
		hierOpt := core.Options{
			K: table3K, NumHashes: table3Hashes, Theta: table3Theta,
			Mode: core.HierarchicalMode, Linkage: cluster.Single,
			Canonical: true, Seed: cfg.Seed, Cluster: cfg.Cluster,
		}
		r, err := runMrMC("MrMC-MinH^h", reads, truth, hierOpt, cfg)
		if err != nil {
			return nil, err
		}
		r.Dataset = sid
		rows = append(rows, r)

		greedyOpt := hierOpt
		greedyOpt.Mode = core.GreedyMode
		greedyOpt.Theta = table3ThetaGreedy
		r, err = runMrMC("MrMC-MinH^g", reads, truth, greedyOpt, cfg)
		if err != nil {
			return nil, err
		}
		r.Dataset = sid
		rows = append(rows, r)

		r, err = runBaseline(baselines.MetaCluster{}, reads, truth,
			baselines.Options{Threshold: 0.93, Seed: cfg.Seed}, cfg)
		if err != nil {
			return nil, err
		}
		r.Dataset = sid
		rows = append(rows, r)
	}
	return rows, nil
}

// table3Dataset materializes one Table III sample at the configured scale.
func table3Dataset(sid string, cfg Config) ([]fasta.Record, []string, error) {
	if sid == "R1" {
		return simulate.BuildR1(cfg.Scale, cfg.Seed)
	}
	spec, err := simulate.TableIISpec(sid)
	if err != nil {
		return nil, nil, err
	}
	return simulate.BuildWholeMetagenome(spec, cfg.Scale, table3ErrRate, cfg.Seed)
}
